// Network-substrate tests: event loop determinism, topology routing,
// inter-AS delivery, fault injection, intra-AS switch.
#include <gtest/gtest.h>

#include "net/network.h"
#include "net/sim.h"
#include "net/topology.h"

namespace apna::net {
namespace {

TEST(EventLoop, OrdersByTimeThenFifo) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_in(100, [&] { order.push_back(2); });
  loop.schedule_in(50, [&] { order.push_back(1); });
  loop.schedule_in(100, [&] { order.push_back(3); });  // same time: FIFO
  loop.schedule_in(200, [&] { order.push_back(4); });
  EXPECT_EQ(loop.run(), 4u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(loop.now(), 200u);
}

TEST(EventLoop, NestedSchedulingAdvancesTime) {
  EventLoop loop;
  TimeUs seen = 0;
  loop.schedule_in(10, [&] {
    loop.schedule_in(5, [&] { seen = loop.now(); });
  });
  loop.run();
  EXPECT_EQ(seen, 15u);
}

TEST(EventLoop, RunUntilStopsEarly) {
  EventLoop loop;
  int fired = 0;
  loop.schedule_in(10, [&] { ++fired; });
  loop.schedule_in(100, [&] { ++fired; });
  EXPECT_EQ(loop.run_until(50), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.now(), 50u);
  loop.run();
  EXPECT_EQ(fired, 2);
}

TEST(EventLoop, PastDeadlineClampsToCurrentTickAfterQueuedEvents) {
  // Regression: schedule_at() with a deadline already in the past must run
  // the event on the CURRENT tick — after everything already queued for
  // that tick (seq_ FIFO tiebreak), never before — and count the clamp in
  // clamped_deadlines() instead of silently rewriting the deadline.
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_in(10, [&] {
    order.push_back(1);
    loop.schedule_at(3, [&] { order.push_back(3); });  // past → clamped
    loop.schedule_at(loop.now(), [&] { order.push_back(4); });  // exact now
  });
  loop.schedule_in(10, [&] { order.push_back(2); });  // pre-queued same tick
  EXPECT_EQ(loop.clamped_deadlines(), 0u);
  loop.run();
  // The pre-queued same-tick event (2) holds an earlier seq_ than the
  // clamped one (3), so the clamp cannot jump the FIFO.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(loop.now(), 10u);           // the clamp never rewinds the clock
  EXPECT_EQ(loop.clamped_deadlines(), 1u);  // only t=3 was in the past
}

TEST(EventLoop, NowSecondsTracksEpoch) {
  EventLoop loop;
  EXPECT_EQ(loop.now_seconds(), kEpochSeconds);
  loop.advance(3 * kUsPerSecond);
  EXPECT_EQ(loop.now_seconds(), kEpochSeconds + 3);
}

TEST(Topology, NextHopOnChain) {
  Topology t;
  t.add_link(1, 2, 10);
  t.add_link(2, 3, 10);
  t.add_link(3, 4, 10);
  EXPECT_EQ(t.next_hop(1, 4).value(), 2u);
  EXPECT_EQ(t.next_hop(2, 4).value(), 3u);
  EXPECT_EQ(t.next_hop(4, 1).value(), 3u);
  EXPECT_EQ(t.next_hop(2, 2).value(), 2u);
}

TEST(Topology, PathAndNoRoute) {
  Topology t;
  t.add_link(1, 2, 10);
  t.add_link(2, 3, 10);
  t.add_as(99);  // isolated
  EXPECT_EQ(t.path(1, 3), (std::vector<std::uint32_t>{1, 2, 3}));
  EXPECT_EQ(t.next_hop(1, 99).code(), Errc::no_route);
  EXPECT_TRUE(t.path(1, 99).empty());
  EXPECT_EQ(t.next_hop(1, 12345).code(), Errc::no_route);
}

TEST(Topology, PrefersShortestHopCount) {
  Topology t;
  // 1-2-3-4 chain plus a 1-4 direct link.
  t.add_link(1, 2, 1);
  t.add_link(2, 3, 1);
  t.add_link(3, 4, 1);
  t.add_link(1, 4, 100);
  EXPECT_EQ(t.next_hop(1, 4).value(), 4u);  // one hop beats three
}

TEST(Topology, CacheInvalidatedByNewLinks) {
  Topology t;
  t.add_link(1, 2, 1);
  t.add_link(2, 3, 1);
  EXPECT_EQ(t.next_hop(1, 3).value(), 2u);
  t.add_link(1, 3, 1);  // direct link appears
  EXPECT_EQ(t.next_hop(1, 3).value(), 3u);
}

wire::PacketBuf packet_to(std::uint32_t dst_aid) {
  wire::Packet p;
  p.src_aid = 1;
  p.dst_aid = dst_aid;
  p.payload = to_bytes("x");
  return p.seal();
}

TEST(InterAsNetwork, DeliversWithLinkLatency) {
  EventLoop loop;
  Topology topo;
  topo.add_link(1, 2, 1234);
  InterAsNetwork net(loop, topo);

  std::uint32_t got = 0;
  TimeUs at = 0;
  net.register_border_router(2, [&](wire::PacketBuf p) {
    got = p.view().dst_aid();
    at = loop.now();
  });
  EXPECT_TRUE(net.send(1, 2, packet_to(2)).ok());
  loop.run();
  EXPECT_EQ(got, 2u);
  EXPECT_EQ(at, 1234u);
  EXPECT_EQ(net.stats().transmitted, 1u);
}

TEST(InterAsNetwork, RejectsNonAdjacentSend) {
  EventLoop loop;
  Topology topo;
  topo.add_link(1, 2, 10);
  topo.add_link(2, 3, 10);
  InterAsNetwork net(loop, topo);
  net.register_border_router(3, [](wire::PacketBuf) {});
  EXPECT_EQ(net.send(1, 3, packet_to(3)).code(), Errc::no_route);
}

TEST(InterAsNetwork, TapsObserveAllTraffic) {
  // The §II adversary: sees every packet on links it controls.
  EventLoop loop;
  Topology topo;
  topo.add_link(1, 2, 10);
  InterAsNetwork net(loop, topo);
  net.register_border_router(2, [](wire::PacketBuf) {});
  std::size_t observed = 0;
  net.add_tap([&](std::uint32_t, std::uint32_t, const wire::PacketView&) {
    ++observed;
  });
  for (int i = 0; i < 5; ++i) (void)net.send(1, 2, packet_to(2));
  loop.run();
  EXPECT_EQ(observed, 5u);
}

TEST(InterAsNetwork, ReregistrationWhilePacketInFlight) {
  // Regression: send() used to capture a reference to the handler map
  // entry; a register_border_router() between schedule and delivery
  // (overwrite, or a rehash from new registrations) invalidated it.
  // Handlers are now resolved at delivery time.
  EventLoop loop;
  Topology topo;
  topo.add_link(1, 2, 10);
  InterAsNetwork net(loop, topo);
  int old_handler = 0, new_handler = 0;
  net.register_border_router(2, [&](wire::PacketBuf) { ++old_handler; });
  EXPECT_TRUE(net.send(1, 2, packet_to(2)).ok());
  // Overwrite the in-flight packet's handler and force a rehash.
  net.register_border_router(2, [&](wire::PacketBuf) { ++new_handler; });
  for (std::uint32_t aid = 100; aid < 164; ++aid)
    net.register_border_router(aid, [](wire::PacketBuf) {});
  loop.run();
  EXPECT_EQ(old_handler, 0);
  EXPECT_EQ(new_handler, 1);
}

TEST(IntraSwitch, DetachWhilePacketInFlight) {
  // The same delivery-time-lookup rule on the intra-AS switch: a port
  // detached during the hop latency silently absorbs the packet instead
  // of dereferencing a dangling handler.
  EventLoop loop;
  IntraSwitch sw(loop, 5);
  int delivered = 0;
  sw.attach(9, [&](wire::PacketBuf) { ++delivered; });
  EXPECT_TRUE(sw.deliver(9, packet_to(1)).ok());
  sw.detach(9);
  loop.run();
  EXPECT_EQ(delivered, 0);
}

TEST(InterAsNetwork, DropInjection) {
  EventLoop loop;
  Topology topo;
  topo.add_link(1, 2, 10);
  InterAsNetwork net(loop, topo);
  std::size_t delivered = 0;
  net.register_border_router(2, [&](wire::PacketBuf) { ++delivered; });
  int countdown = 0;
  FaultModel f;
  f.coin = [&] { return (++countdown % 2) == 0; };  // drop every 2nd
  net.set_faults(std::move(f));
  for (int i = 0; i < 10; ++i) (void)net.send(1, 2, packet_to(2));
  loop.run();
  EXPECT_EQ(delivered, 5u);
  EXPECT_EQ(net.stats().dropped, 5u);
}

TEST(InterAsNetwork, TamperInjection) {
  EventLoop loop;
  Topology topo;
  topo.add_link(1, 2, 10);
  InterAsNetwork net(loop, topo);
  Bytes seen;
  net.register_border_router(2, [&](wire::PacketBuf p) {
    const ByteSpan body = p.view().payload();
    seen.assign(body.begin(), body.end());
  });
  FaultModel f;
  f.tamper = [](wire::PacketBuf& p) {
    // Bit-flip the first payload byte in the wire image.
    const std::size_t off = p.view().payload().data() - p.view().bytes().data();
    p.mutable_bytes()[off] ^= 0xff;
  };
  net.set_faults(std::move(f));
  (void)net.send(1, 2, packet_to(2));
  loop.run();
  EXPECT_EQ(seen[0], 'x' ^ 0xff);
}

TEST(InterAsNetwork, StructuralTamperDiesOnTheWire) {
  // A tamper that flips a FLAG bit changes the wire layout. The fabric
  // re-binds after tamper: if the image no longer parses, the frame is
  // dropped like any corrupt frame — the receiver's view can never read
  // past the buffer (regression for the view-desync hazard).
  EventLoop loop;
  Topology topo;
  topo.add_link(1, 2, 10);
  InterAsNetwork net(loop, topo);
  std::size_t delivered = 0;
  net.register_border_router(2, [&](wire::PacketBuf p) {
    ++delivered;
    // Whatever arrives must be self-consistent.
    EXPECT_EQ(p.view().wire_size(), p.view().bytes().size());
  });
  FaultModel f;
  f.tamper = [](wire::PacketBuf& p) {
    // Claim a nonce extension that the 1-byte-payload image cannot hold.
    p.mutable_bytes()[wire::kOffFlags] ^= wire::kFlagHasNonce;
  };
  net.set_faults(std::move(f));
  (void)net.send(1, 2, packet_to(2));
  loop.run();
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(net.stats().dropped, 1u);
}

TEST(IntraSwitch, DeliversByHidWithHopLatency) {
  EventLoop loop;
  IntraSwitch sw(loop, 77);
  std::uint32_t got = 0;
  TimeUs at = 0;
  sw.attach(42, [&](wire::PacketBuf) {
    got = 42;
    at = loop.now();
  });
  EXPECT_TRUE(sw.deliver(42, packet_to(1)).ok());
  EXPECT_EQ(sw.deliver(43, packet_to(1)).code(), Errc::unknown_host);
  loop.run();
  EXPECT_EQ(got, 42u);
  EXPECT_EQ(at, 77u);
  EXPECT_EQ(sw.stats().delivered, 1u);
}

TEST(IntraSwitch, DetachStopsDelivery) {
  EventLoop loop;
  IntraSwitch sw(loop, 1);
  sw.attach(7, [](wire::PacketBuf) {});
  EXPECT_TRUE(sw.attached(7));
  sw.detach(7);
  EXPECT_FALSE(sw.attached(7));
  EXPECT_FALSE(sw.deliver(7, packet_to(1)).ok());
}

}  // namespace
}  // namespace apna::net

// Durability layer tests (ROADMAP item 4): CRC32C KATs, journal framing
// under every truncation point and bit flip, snapshot container round
// trips (MemVfs and the real filesystem), fault-injected degraded modes
// (short writes, fsync failures), and full AsState snapshot + journal
// recovery — including the property that recovery from ANY journal
// prefix equals a reference rebuild of the same mutation prefix, the
// corrupt-snapshot generation fallback, and concurrent sink appends.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <unistd.h>
#include <utility>
#include <vector>

#include "core/as_persist.h"
#include "core/as_state.h"
#include "crypto/rng.h"
#include "persist/crc32c.h"
#include "persist/journal.h"
#include "persist/snapshot.h"
#include "persist/vfs.h"
#include "services/persist_coordinator.h"

namespace apna {
namespace {

using core::AsState;
using persist::crc32c;

Bytes bytes_of(const std::string& s) { return to_bytes(s); }

ByteSpan span_of(const Bytes& b) { return ByteSpan(b.data(), b.size()); }

// ---- CRC32C ------------------------------------------------------------------

TEST(Crc32c, KnownAnswers) {
  // The canonical Castagnoli check value.
  const Bytes check = bytes_of("123456789");
  EXPECT_EQ(crc32c(span_of(check)), 0xE3069283u);
  const Bytes empty;
  EXPECT_EQ(crc32c(span_of(empty)), 0u);
}

TEST(Crc32c, IncrementalMatchesOneShot) {
  crypto::ChaChaRng rng(7);
  const Bytes data = rng.bytes(257);
  const std::uint32_t whole = crc32c(span_of(data));
  for (std::size_t split : {std::size_t{0}, std::size_t{1}, std::size_t{128},
                            data.size() - 1, data.size()}) {
    const std::uint32_t head = crc32c(ByteSpan(data.data(), split));
    EXPECT_EQ(crc32c(ByteSpan(data.data() + split, data.size() - split), head),
              whole);
  }
}

// ---- journal framing ---------------------------------------------------------

struct Record {
  std::uint8_t type;
  Bytes payload;
  bool operator==(const Record&) const = default;
};

std::vector<Record> make_records(std::size_t n, std::uint64_t seed) {
  crypto::ChaChaRng rng(seed);
  std::vector<Record> out;
  for (std::size_t i = 0; i < n; ++i) {
    Record r;
    r.type = static_cast<std::uint8_t>(1 + i % 8);
    r.payload = rng.bytes(i % 3 == 0 ? 0 : rng.next_u32() % 48);
    out.push_back(std::move(r));
  }
  return out;
}

void write_records(persist::JournalWriter& w, const std::vector<Record>& recs) {
  for (const Record& r : recs)
    ASSERT_TRUE(w.append(r.type, span_of(r.payload)));
  ASSERT_TRUE(w.commit().ok());
}

std::vector<Record> replay_all(ByteSpan data, persist::ReplayResult* res) {
  std::vector<Record> seen;
  const auto r = persist::replay_journal(data, [&](std::uint8_t t, ByteSpan p) {
    seen.push_back(Record{t, Bytes(p.begin(), p.end())});
  });
  if (res) *res = r;
  return seen;
}

TEST(Journal, RoundTrip) {
  persist::MemVfs vfs;
  const auto recs = make_records(32, 11);
  {
    persist::JournalWriter w(vfs, "d/j.log", true);
    write_records(w, recs);
    EXPECT_FALSE(w.degraded());
    EXPECT_EQ(w.stats().appended, recs.size());
    EXPECT_EQ(w.stats().dropped, 0u);
  }
  persist::ReplayResult res;
  std::vector<Record> seen;
  const auto rr = persist::replay_journal_file(
      vfs, "d/j.log", [&](std::uint8_t t, ByteSpan p) {
        seen.push_back(Record{t, Bytes(p.begin(), p.end())});
      });
  EXPECT_EQ(rr.records, recs.size());
  EXPECT_EQ(rr.bytes_discarded, 0u);
  EXPECT_FALSE(rr.torn());
  EXPECT_EQ(seen, recs);
  // A missing journal is empty, not an error.
  const auto missing = persist::replay_journal_file(
      vfs, "d/absent.log", [](std::uint8_t, ByteSpan) { FAIL(); });
  EXPECT_EQ(missing.records, 0u);
}

TEST(Journal, GroupCommitFlushesOnRecordThreshold) {
  persist::MemVfs vfs;
  persist::JournalConfig jc;
  jc.group_commit_records = 4;
  persist::JournalWriter w(vfs, "j.log", true, jc);
  const auto recs = make_records(7, 3);
  for (const Record& r : recs) ASSERT_TRUE(w.append(r.type, span_of(r.payload)));
  // 7 appends = one auto-commit at 4; records 5..7 still buffered.
  EXPECT_EQ(w.stats().commits, 1u);
  std::size_t on_disk = 0;
  persist::replay_journal_file(vfs, "j.log",
                               [&](std::uint8_t, ByteSpan) { ++on_disk; });
  EXPECT_EQ(on_disk, 4u);
  ASSERT_TRUE(w.commit().ok());
  on_disk = 0;
  persist::replay_journal_file(vfs, "j.log",
                               [&](std::uint8_t, ByteSpan) { ++on_disk; });
  EXPECT_EQ(on_disk, 7u);
}

/// Satellite property: for EVERY truncation point, the journal's effective
/// content is the longest valid frame prefix — never garbage, never a
/// throw, and consumed + discarded always accounts for every byte.
TEST(Journal, EveryTruncationYieldsLongestValidPrefix) {
  persist::MemVfs vfs;
  const auto recs = make_records(16, 23);
  {
    persist::JournalWriter w(vfs, "j.log", true);
    write_records(w, recs);
  }
  const Bytes full = vfs.read_all("j.log").take();
  // Frame boundaries: prefix sums of 8 + (1 + payload).
  std::vector<std::size_t> ends;
  std::size_t pos = 0;
  for (const Record& r : recs) {
    pos += 8 + 1 + r.payload.size();
    ends.push_back(pos);
  }
  ASSERT_EQ(pos, full.size());

  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    persist::ReplayResult res;
    const auto seen = replay_all(ByteSpan(full.data(), cut), &res);
    std::size_t expect = 0;
    while (expect < ends.size() && ends[expect] <= cut) ++expect;
    ASSERT_EQ(seen.size(), expect) << "cut at " << cut;
    for (std::size_t i = 0; i < expect; ++i) ASSERT_EQ(seen[i], recs[i]);
    ASSERT_EQ(res.bytes_consumed + res.bytes_discarded, cut);
    ASSERT_EQ(res.torn(), cut != (expect == 0 ? 0 : ends[expect - 1]) ||
                              (expect == 0 && cut != 0));
  }
}

/// Flipping any single byte never crashes the reader; every record it
/// still reports is a bona fide prefix record (CRC killed the rest).
TEST(Journal, BitFlipsDropTheSuffixNeverGarbage) {
  persist::MemVfs vfs;
  const auto recs = make_records(12, 31);
  {
    persist::JournalWriter w(vfs, "j.log", true);
    write_records(w, recs);
  }
  const Bytes full = vfs.read_all("j.log").take();
  for (std::size_t off = 0; off < full.size(); ++off) {
    Bytes mut = full;
    mut[off] ^= 0x40;
    const auto seen = replay_all(span_of(mut), nullptr);
    ASSERT_LE(seen.size(), recs.size());
    for (std::size_t i = 0; i < seen.size(); ++i) {
      // A flipped length prefix can only shrink the valid prefix; records
      // reported before the damage must match the originals byte for byte.
      ASSERT_EQ(seen[i], recs[i]) << "flip at " << off;
    }
  }
}

// ---- fault injection ---------------------------------------------------------

TEST(Journal, ShortWriteEntersCountedDegradedMode) {
  persist::MemVfs mem;
  persist::FaultVfs vfs(mem);
  persist::JournalConfig jc;
  jc.group_commit_records = 1;  // flush per record so the fault lands now
  persist::JournalWriter w(vfs, "j.log", true, jc);

  const Bytes p0 = bytes_of("first-record-payload");
  ASSERT_TRUE(w.append(1, span_of(p0)));
  ASSERT_FALSE(w.degraded());

  // Budget allows 10 more bytes: the next frame tears mid-write.
  vfs.faults().append_byte_budget = 10;
  const Bytes p1 = bytes_of("doomed-record-payload");
  EXPECT_FALSE(w.append(2, span_of(p1)));
  EXPECT_TRUE(w.degraded());
  EXPECT_EQ(vfs.counters().appends_failed, 1u);

  // Sticky: later appends are counted drops, the writer never throws.
  EXPECT_FALSE(w.append(3, span_of(p0)));
  const auto st = w.stats();
  EXPECT_EQ(st.appended, 1u);
  EXPECT_EQ(st.dropped, 2u);

  // The torn tail truncates at the last valid frame on replay.
  persist::ReplayResult res;
  const auto seen =
      replay_all(span_of(mem.read_all("j.log").take()), &res);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].payload, p0);
  EXPECT_TRUE(res.torn());
  EXPECT_EQ(res.bytes_discarded, 10u);
}

TEST(Journal, FsyncFailureIsCountedNotSticky) {
  persist::MemVfs mem;
  persist::FaultVfs vfs(mem);
  persist::JournalConfig jc;
  jc.fsync = persist::FsyncPolicy::every_commit;
  persist::JournalWriter w(vfs, "j.log", true, jc);
  vfs.faults().fail_next_syncs = 1;

  const Bytes p = bytes_of("payload");
  ASSERT_TRUE(w.append(1, span_of(p)));
  EXPECT_FALSE(w.commit().ok());  // the barrier failed...
  EXPECT_FALSE(w.degraded());     // ...but the data reached the file
  EXPECT_EQ(w.stats().sync_failures, 1u);
  ASSERT_TRUE(w.append(2, span_of(p)));
  EXPECT_TRUE(w.commit().ok());

  std::size_t n = 0;
  persist::replay_journal_file(vfs, "j.log",
                               [&](std::uint8_t, ByteSpan) { ++n; });
  EXPECT_EQ(n, 2u);
}

// ---- snapshot container ------------------------------------------------------

TEST(Snapshot, RoundTripAndAtomicPublish) {
  persist::MemVfs vfs;
  crypto::ChaChaRng rng(5);
  const Bytes payload = rng.bytes(4096);
  persist::SnapshotInfo info;
  info.generation = 7;
  info.seed = 42;
  info.git_sha = "deadbeef";
  ASSERT_TRUE(
      persist::write_snapshot_file(vfs, "s/snap", info, span_of(payload)).ok());
  EXPECT_FALSE(vfs.exists("s/snap.tmp"));  // temp file renamed away

  auto loaded = persist::read_snapshot_file(vfs, "s/snap");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->info.generation, 7u);
  EXPECT_EQ(loaded->info.seed, 42u);
  EXPECT_EQ(loaded->info.git_sha, "deadbeef");
  EXPECT_EQ(loaded->payload, payload);
}

TEST(Snapshot, AnySingleByteCorruptionIsDetected) {
  persist::MemVfs vfs;
  crypto::ChaChaRng rng(9);
  const Bytes payload = rng.bytes(512);
  persist::SnapshotInfo info;
  info.generation = 1;
  info.git_sha = "x";
  ASSERT_TRUE(
      persist::write_snapshot_file(vfs, "snap", info, span_of(payload)).ok());
  const std::size_t sz = vfs.file_size("snap");
  for (std::size_t off = 0; off < sz; ++off) {
    ASSERT_TRUE(vfs.corrupt("snap", off, 0x01).ok());
    EXPECT_FALSE(persist::read_snapshot_file(vfs, "snap").ok())
        << "flip at " << off << " went undetected";
    ASSERT_TRUE(vfs.corrupt("snap", off, 0x01).ok());  // restore
  }
  EXPECT_TRUE(persist::read_snapshot_file(vfs, "snap").ok());
}

TEST(Snapshot, TruncationsAreDetected) {
  persist::MemVfs vfs;
  const Bytes payload = bytes_of("snapshot-payload-bytes");
  persist::SnapshotInfo info;
  info.generation = 3;
  ASSERT_TRUE(
      persist::write_snapshot_file(vfs, "snap", info, span_of(payload)).ok());
  const Bytes full = vfs.read_all("snap").take();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    ASSERT_TRUE(vfs.truncate("snap", cut).ok());
    EXPECT_FALSE(persist::read_snapshot_file(vfs, "snap").ok())
        << "truncation to " << cut << " went undetected";
    // Restore for the next iteration.
    auto f = vfs.open_append("snap", true).take();
    ASSERT_TRUE(f->append(span_of(full)).ok());
  }
}

TEST(Snapshot, SystemVfsRoundTrip) {
  char tmpl[] = "/tmp/apna_persist_XXXXXX";
  char* base = ::mkdtemp(tmpl);
  ASSERT_NE(base, nullptr);
  const std::string dir = std::string(base) + "/nested/deep";
  persist::SystemVfs vfs;
  ASSERT_TRUE(vfs.mkdirs(dir).ok());

  const Bytes payload = bytes_of("real-disk-payload");
  persist::SnapshotInfo info;
  info.generation = 2;
  info.git_sha = "cafe";
  const std::string snap = dir + "/snapshot-2.snap";
  ASSERT_TRUE(persist::write_snapshot_file(vfs, snap, info, span_of(payload)).ok());
  auto loaded = persist::read_snapshot_file(vfs, snap);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->payload, payload);
  EXPECT_EQ(loaded->info.generation, 2u);

  const auto recs = make_records(9, 77);
  const std::string jpath = dir + "/journal-2.log";
  {
    persist::JournalWriter w(vfs, jpath, true);
    write_records(w, recs);
  }
  persist::ReplayResult res;
  std::vector<Record> seen;
  persist::replay_journal_file(vfs, jpath, [&](std::uint8_t t, ByteSpan p) {
    seen.push_back(Record{t, Bytes(p.begin(), p.end())});
  });
  EXPECT_EQ(seen, recs);
  const auto names = vfs.list(dir);
  EXPECT_EQ(names.size(), 2u);

  for (const auto& n : names) (void)vfs.remove(dir + "/" + n);
  ::rmdir(dir.c_str());
  ::rmdir((std::string(base) + "/nested").c_str());
  ::rmdir(base);
}

// ---- AsState snapshot + journal recovery -------------------------------------

core::DnsRecord make_dns(const std::string& name, std::uint32_t ipv4) {
  core::DnsRecord rec;
  rec.name = name;
  rec.ipv4 = ipv4;
  rec.cert.aid = 64512;
  rec.cert.exp_time = 1'000'000;
  return rec;
}

/// The reference model a recovery must reproduce: plain maps driven by
/// the same mutation sequence.
struct Shadow {
  std::map<core::Hid, core::HostAsKeys> hosts;
  std::set<std::string> revoked_hex;  // EphId.hex() of revoked EphIDs
  std::set<core::Hid> revoked_hids;
  std::set<std::string> blocked;
  std::map<std::string, std::uint32_t> dns;  // name -> ipv4
  std::size_t issued = 0;
};

/// One deterministic mutation applied to (AsState, Shadow) and journaled
/// through `sink`. Returns the number of journal records emitted.
struct Mutator {
  AsState& as;
  Shadow& shadow;
  persist::Sink* sink;
  crypto::ChaChaRng rng{99};
  core::Hid next_hid = 100;
  std::vector<std::pair<core::EphId, core::Hid>> live_ephids{};

  std::size_t step(std::uint32_t op) {
    switch (op % 6) {
      case 0:
      case 1: {  // host upsert (the dominant record type)
        core::HostRecord rec;
        rec.hid = next_hid++;
        rng.fill(MutByteSpan(rec.keys.enc.data(), rec.keys.enc.size()));
        rng.fill(MutByteSpan(rec.keys.mac.data(), rec.keys.mac.size()));
        rec.subscriber_id = 1;
        as.host_db.upsert(rec);
        shadow.hosts[rec.hid] = rec.keys;
        core::emit_host_upsert(sink, rec);
        return 1;
      }
      case 2: {  // revoke a fresh EphID
        const core::Hid hid = 100 + rng.next_u32() % std::max<core::Hid>(
                                        1, next_hid - 100);
        const core::EphId e = as.codec.issue(hid, 2'000'000, rng);
        as.revoked.revoke_ephid(e, 2'000'000, hid);
        shadow.revoked_hex.insert(e.hex());
        live_ephids.emplace_back(e, hid);
        core::emit_revoke_ephid(sink, e, 2'000'000, hid);
        return 1;
      }
      case 3: {  // erase the oldest host still present
        if (shadow.hosts.empty()) return 0;
        const core::Hid hid = shadow.hosts.begin()->first;
        as.host_db.erase(hid);
        shadow.hosts.erase(hid);
        core::emit_host_erase(sink, hid);
        return 1;
      }
      case 4: {  // DNS publish (+ sometimes a block or erase)
        const std::string name =
            "svc" + std::to_string(rng.next_u32() % 64) + ".example";
        if (rng.next_u32() % 4 == 0 && !shadow.dns.empty()) {
          const std::string victim = shadow.dns.begin()->first;
          shadow.dns.erase(victim);
          core::emit_dns_erase(sink, victim);
          return 1;
        }
        const std::uint32_t ipv4 = rng.next_u32();
        shadow.dns[name] = ipv4;
        core::emit_dns_put(sink, make_dns(name, ipv4));
        return 1;
      }
      default: {  // issuance metadata, occasionally an escalation or block
        const std::uint32_t sub = rng.next_u32() % 3;
        if (sub == 0 && !live_ephids.empty()) {
          const core::Hid hid = live_ephids.back().second;
          as.revoked.revoke_hid(hid);
          shadow.revoked_hids.insert(hid);
          core::emit_revoke_hid(sink, hid);
          return 1;
        }
        if (sub == 1) {
          const std::string d =
              "blocked" + std::to_string(rng.next_u32() % 16) + ".example";
          shadow.blocked.insert(d);
          core::emit_domain_block(sink, d);
          return 1;
        }
        const core::Hid hid = 100 + rng.next_u32() % std::max<core::Hid>(
                                        1, next_hid - 100);
        const core::EphId e = as.codec.issue(hid, 3'000'000, rng);
        ++shadow.issued;
        core::emit_ephid_issued(sink, e, 3'000'000, hid);
        return 1;
      }
    }
  }
};

void expect_matches_shadow(const AsState& as, const core::AsStateRecovery& rv,
                           const Shadow& shadow, core::Hid hid_limit) {
  for (core::Hid hid = 100; hid < hid_limit; ++hid) {
    const auto it = shadow.hosts.find(hid);
    const auto got = as.host_db.find(hid);
    ASSERT_EQ(got.has_value(), it != shadow.hosts.end()) << "hid " << hid;
    if (got) {
      EXPECT_EQ(got->keys.enc, it->second.enc);
      EXPECT_EQ(got->keys.mac, it->second.mac);
    }
    EXPECT_EQ(as.revoked.is_hid_revoked(hid), shadow.revoked_hids.count(hid) > 0);
  }
  EXPECT_EQ(as.host_db.size(), shadow.hosts.size());
  EXPECT_EQ(as.revoked.size(), shadow.revoked_hex.size());
  EXPECT_EQ(rv.issued.size(), shadow.issued);
  std::set<std::string> blocked(rv.blocked_domains.begin(),
                                rv.blocked_domains.end());
  EXPECT_EQ(blocked, shadow.blocked);
  std::map<std::string, std::uint32_t> dns;
  for (const auto& r : rv.dns_records) dns[r.name] = r.ipv4;
  ASSERT_EQ(dns.size(), shadow.dns.size());
  EXPECT_EQ(dns, shadow.dns);
}

TEST(AsRecovery, SnapshotPlusJournalSuffixRebuildsEverything) {
  persist::MemVfs vfs;
  crypto::ChaChaRng rng(1);
  AsState as(64512, core::AsSecrets::generate(rng));

  services::PersistCoordinator::Config cc;
  cc.git_sha = "test";
  services::PersistCoordinator coord(vfs, "as", as, cc);
  ASSERT_TRUE(coord.start().ok());

  Shadow shadow;
  Mutator mut{as, shadow, &coord};
  // Mutations straddle a mid-sequence snapshot: recovery must merge the
  // gen-2 image with the gen-2 journal suffix.
  for (std::uint32_t i = 0; i < 120; ++i) mut.step(i * 2654435761u);
  ASSERT_TRUE(coord.write_snapshot().ok());
  for (std::uint32_t i = 120; i < 240; ++i) mut.step(i * 2654435761u);
  ASSERT_TRUE(coord.commit().ok());

  auto rec = AsState::recover(vfs, "as");
  ASSERT_TRUE(rec.ok()) << rec.error().detail;
  auto rv = rec.take();
  EXPECT_EQ(rv.snapshot_generation, 2u);
  EXPECT_EQ(rv.records_malformed, 0u);
  EXPECT_EQ(rv.snapshots_skipped, 0u);
  EXPECT_EQ(rv.journal_bytes_discarded, 0u);
  expect_matches_shadow(*rv.as, rv, shadow, mut.next_hid);
  // One-bump contract: the recovered epoch moves strictly past the
  // snapshot's stored epoch exactly once, regardless of how many replayed
  // records were revocations (replay restores without bumping).
  EXPECT_GT(rv.as->epoch.current(), rv.snapshot_epoch);
}

/// The satellite property test: recovery from ANY prefix of the journal
/// equals a reference rebuild of the same mutation prefix — and from any
/// mid-frame truncation, the longest-valid-frame-prefix rule applies.
TEST(AsRecovery, EveryJournalPrefixEqualsReferenceRebuild) {
  persist::MemVfs vfs;
  crypto::ChaChaRng rng(2);
  AsState as(64512, core::AsSecrets::generate(rng));
  services::PersistCoordinator::Config cc;
  cc.git_sha = "test";
  services::PersistCoordinator coord(vfs, "as", as, cc);
  ASSERT_TRUE(coord.start().ok());

  // All mutations land in generation 1's journal; shadows[k] is the model
  // after the first k journal records.
  Shadow shadow;
  Mutator mut{as, shadow, &coord};
  std::vector<Shadow> shadows{shadow};
  std::vector<core::Hid> hid_limits{mut.next_hid};
  for (std::uint32_t i = 0; i < 96; ++i) {
    if (mut.step(i * 0x9e3779b9u) == 1) {
      shadows.push_back(shadow);
      hid_limits.push_back(mut.next_hid);
    }
  }
  ASSERT_TRUE(coord.commit().ok());

  const std::string jpath = core::journal_path("as", 1);
  const Bytes full = vfs.read_all(jpath).take();
  // Frame boundary offsets (frame i ends at ends[i]).
  std::vector<std::size_t> ends;
  {
    std::size_t pos = 0;
    persist::replay_journal(span_of(full), [&](std::uint8_t, ByteSpan p) {
      pos += 8 + 1 + p.size();
      ends.push_back(pos);
    });
  }
  ASSERT_EQ(ends.size(), shadows.size() - 1);

  for (std::size_t cut = 0; cut <= full.size(); cut += 3) {
    ASSERT_TRUE(vfs.truncate(jpath, cut).ok());
    auto rec = AsState::recover(vfs, "as");
    ASSERT_TRUE(rec.ok()) << "cut at " << cut;
    auto rv = rec.take();
    std::size_t k = 0;
    while (k < ends.size() && ends[k] <= cut) ++k;
    ASSERT_EQ(rv.journal_records_replayed, k) << "cut at " << cut;
    expect_matches_shadow(*rv.as, rv, shadows[k], hid_limits[k]);
    // Restore the full journal for the next truncation point.
    auto f = vfs.open_append(jpath, true).take();
    ASSERT_TRUE(f->append(span_of(full)).ok());
  }
}

TEST(AsRecovery, CorruptNewestSnapshotFallsBackAGeneration) {
  persist::MemVfs vfs;
  crypto::ChaChaRng rng(3);
  AsState as(64512, core::AsSecrets::generate(rng));
  services::PersistCoordinator::Config cc;
  cc.git_sha = "test";
  cc.keep_generations = 3;
  services::PersistCoordinator coord(vfs, "as", as, cc);
  ASSERT_TRUE(coord.start().ok());

  Shadow shadow;
  Mutator mut{as, shadow, &coord};
  for (std::uint32_t i = 0; i < 60; ++i) mut.step(i * 2654435761u);
  ASSERT_TRUE(coord.write_snapshot().ok());  // generation 2
  for (std::uint32_t i = 60; i < 120; ++i) mut.step(i * 2654435761u);
  ASSERT_TRUE(coord.commit().ok());

  // Rot the newest snapshot. Recovery falls back to generation 1 and
  // replays journals 1 AND 2 — ending at the exact same state.
  const std::string snap2 = core::snapshot_path("as", 2);
  ASSERT_TRUE(vfs.corrupt(snap2, vfs.file_size(snap2) / 2, 0xff).ok());

  auto rec = AsState::recover(vfs, "as");
  ASSERT_TRUE(rec.ok());
  auto rv = rec.take();
  EXPECT_EQ(rv.snapshot_generation, 1u);
  EXPECT_EQ(rv.snapshots_skipped, 1u);
  expect_matches_shadow(*rv.as, rv, shadow, mut.next_hid);
}

TEST(AsRecovery, MalformedPayloadInsideValidFrameIsSkippedAndCounted) {
  persist::MemVfs vfs;
  crypto::ChaChaRng rng(4);
  AsState as(64512, core::AsSecrets::generate(rng));
  persist::SnapshotInfo info;
  info.generation = 1;
  core::AsSnapshotExtras extras;
  ASSERT_TRUE(vfs.mkdirs("as").ok());
  ASSERT_TRUE(core::write_as_snapshot(vfs, "as", as, extras, info).ok());

  persist::JournalWriter jw(vfs, core::journal_path("as", 1), true);
  core::HostRecord hr;
  hr.hid = 100;
  rng.fill(MutByteSpan(hr.keys.enc.data(), hr.keys.enc.size()));
  core::emit_host_upsert(&jw, hr);
  // CRC-valid frame, garbage payload: a host_upsert needs ~88 bytes.
  const Bytes junk = bytes_of("zx");
  ASSERT_TRUE(jw.append(
      static_cast<std::uint8_t>(core::PersistRecordType::host_upsert),
      span_of(junk)));
  core::emit_host_erase(&jw, 999);  // valid record AFTER the bad one
  ASSERT_TRUE(jw.commit().ok());

  auto rec = AsState::recover(vfs, "as");
  ASSERT_TRUE(rec.ok());
  auto rv = rec.take();
  // Replayed counts records that APPLIED; the junk frame is tallied as
  // malformed instead, never dropped on the floor.
  EXPECT_EQ(rv.journal_records_replayed, 2u);
  EXPECT_EQ(rv.records_malformed, 1u);
  EXPECT_TRUE(rv.as->host_db.find(100).has_value());  // survivors applied
}

TEST(AsRecovery, EmptyDirectoryIsACleanError) {
  persist::MemVfs vfs;
  auto rec = AsState::recover(vfs, "nowhere");
  EXPECT_FALSE(rec.ok());
}

// ---- coordinator lifecycle ---------------------------------------------------

TEST(Coordinator, AutoSnapshotRotatesAndPrunesGenerations) {
  persist::MemVfs vfs;
  crypto::ChaChaRng rng(6);
  AsState as(64512, core::AsSecrets::generate(rng));
  services::PersistCoordinator::Config cc;
  cc.snapshot_every_records = 10;
  cc.keep_generations = 2;
  cc.git_sha = "test";
  services::PersistCoordinator coord(vfs, "as", as, cc);
  ASSERT_TRUE(coord.start().ok());

  Shadow shadow;
  Mutator mut{as, shadow, &coord};
  for (std::uint32_t i = 0; i < 45; ++i) mut.step(i);
  ASSERT_TRUE(coord.commit().ok());

  const auto st = coord.stats();
  EXPECT_GE(st.generation, 4u);  // 45 records / 10 per snapshot
  EXPECT_EQ(st.snapshots_written, st.generation);
  EXPECT_FALSE(coord.degraded());

  // Pruned to the last keep_generations snapshot/journal pairs.
  std::size_t snaps = 0;
  for (const auto& name : vfs.list("as"))
    if (name.find("snapshot-") == 0) ++snaps;
  EXPECT_EQ(snaps, 2u);
  // The retained tail still recovers to the reference state.
  auto rec = AsState::recover(vfs, "as");
  ASSERT_TRUE(rec.ok());
  auto rv = rec.take();
  EXPECT_EQ(rv.snapshot_generation, st.generation);
  expect_matches_shadow(*rv.as, rv, shadow, mut.next_hid);
}

TEST(Coordinator, RestartResumesAtNextGeneration) {
  persist::MemVfs vfs;
  crypto::ChaChaRng rng(8);
  AsState as(64512, core::AsSecrets::generate(rng));
  Shadow shadow;
  {
    services::PersistCoordinator coord(vfs, "as", as);
    ASSERT_TRUE(coord.start().ok());
    Mutator mut{as, shadow, &coord};
    for (std::uint32_t i = 0; i < 20; ++i) mut.step(i);
  }  // dtor commits

  auto rec = AsState::recover(vfs, "as");
  ASSERT_TRUE(rec.ok());
  auto rv = rec.take();

  // A new coordinator over the recovered state starts at generation 2 and
  // leaves generation 1 on disk as the fallback.
  services::PersistCoordinator coord2(vfs, "as", *rv.as);
  coord2.seed(std::move(rv.issued), std::move(rv.blocked_domains),
              std::move(rv.dns_records));
  ASSERT_TRUE(coord2.start().ok());
  EXPECT_EQ(coord2.stats().generation, 2u);
  EXPECT_TRUE(vfs.exists(core::snapshot_path("as", 1)));
  EXPECT_TRUE(vfs.exists(core::snapshot_path("as", 2)));
}

TEST(Coordinator, ConcurrentSinkAppendsRecoverCompletely) {
  persist::MemVfs vfs;
  crypto::ChaChaRng rng(10);
  AsState as(64512, core::AsSecrets::generate(rng));
  services::PersistCoordinator coord(vfs, "as", as);
  ASSERT_TRUE(coord.start().ok());

  // The real contention shape: the AA revokes from several threads while
  // the RS enrolls, all funneling through one sink (exercised under TSan
  // by the `persist` concurrency leg).
  constexpr int kThreads = 4;
  constexpr int kPerThread = 400;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      crypto::ChaChaRng trng(1000 + t);
      for (int i = 0; i < kPerThread; ++i) {
        const core::Hid hid = static_cast<core::Hid>(100 + t);
        const core::EphId e = as.codec.issue(hid, 2'000'000, trng);
        as.revoked.revoke_ephid(e, 2'000'000, hid);
        core::emit_revoke_ephid(&coord, e, 2'000'000, hid);
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_TRUE(coord.commit().ok());
  EXPECT_EQ(coord.stats().journal.appended,
            static_cast<std::uint64_t>(kThreads * kPerThread));

  auto rec = AsState::recover(vfs, "as");
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->as->revoked.size(),
            static_cast<std::size_t>(kThreads * kPerThread));
}

}  // namespace
}  // namespace apna

// AS-fabric and service edge cases: packet handling at wrong endpoints,
// service authentication of their own traffic, bootstrap error paths and
// the AutonomousSystem wiring itself.
#include <gtest/gtest.h>

#include "apna/internet.h"
#include "core/packet_auth.h"

namespace apna {
namespace {

struct FabricWorld {
  Internet net{88};
  AutonomousSystem* as_a;
  AutonomousSystem* as_b;
  FabricWorld() {
    as_a = &net.add_as(100, "A");
    as_b = &net.add_as(300, "B");
    net.link(100, 300, 1000);
  }
};

TEST(Fabric, ServiceRepliesCarryValidSourceMacs) {
  // Every infrastructure reply (MS, DNS, AA) must itself pass the egress
  // MAC check — services are accountable like any host (§VIII-B).
  FabricWorld w;
  host::Host& h = w.as_b->add_host("client-in-b");  // cross-AS DNS session
  ASSERT_TRUE(provision_ephids(h, w.net.loop(), 1).ok());

  // Resolve against AS A's DNS from AS B: the DNS replies must traverse
  // AS A's egress border router, which verifies their MACs.
  host::Host& publisher = w.as_a->add_host("pub");
  ASSERT_TRUE(provision_ephids(publisher, w.net.loop(), 1).ok());
  bool pub_ok = false;
  publisher.publish_name("svc.a", publisher.pool().entries().front()->cert,
                         0, [&](Result<void> r) { pub_ok = r.ok(); });
  w.net.run();
  ASSERT_TRUE(pub_ok);

  std::optional<core::DnsRecord> rec;
  h.resolve_via(publisher.dns_cert(), "svc.a",
                [&](Result<core::DnsRecord> r) {
                  if (r.ok()) rec = *r;
                });
  w.net.run();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(w.as_a->br().stats().drop_bad_mac, 0u);
  EXPECT_GT(w.as_a->br().stats().forwarded_out, 0u);
}

TEST(Fabric, MsIgnoresNonControlPackets) {
  FabricWorld w;
  host::Host& h = w.as_a->add_host("h");
  ASSERT_TRUE(provision_ephids(h, w.net.loop(), 1).ok());

  // Hand-craft a DATA packet addressed to the MS EphID: the MS must reject
  // it without a reply.
  wire::Packet pkt;
  pkt.src_aid = 100;
  pkt.src_ephid = h.pool().entries().front()->cert.ephid.bytes;
  pkt.dst_aid = 100;
  pkt.dst_ephid = w.as_a->ms().cert().ephid.bytes;
  pkt.proto = wire::NextProto::data;
  pkt.payload = to_bytes("nonsense");
  auto resp = w.as_a->ms().handle_packet(pkt.seal().view());
  EXPECT_FALSE(resp.ok());
  EXPECT_EQ(resp.code(), Errc::malformed);
}

TEST(Fabric, AaRejectsUnknownShutoffKind) {
  FabricWorld w;
  wire::Packet pkt;
  pkt.src_aid = 300;
  pkt.dst_aid = 100;
  pkt.proto = wire::NextProto::shutoff;
  pkt.payload = {0x77, 0x01, 0x02};  // bogus kind
  const wire::PacketBuf sealed = pkt.seal();
  auto resp = w.as_a->aa().handle_packet(sealed.view());
  ASSERT_TRUE(resp.ok());  // the AA answers with a status, not silence
  wire::Reader r(resp->view().payload());
  EXPECT_EQ(r.u8().value(),
            static_cast<std::uint8_t>(core::ShutoffKind::response));
  auto status = core::ShutoffResponse::parse(r.rest());
  ASSERT_TRUE(status.ok());
  EXPECT_NE(status->status, 0);
  EXPECT_EQ(w.as_a->aa().stats().rejected_malformed, 1u);
}

TEST(Fabric, SubscriberEnrollmentIsolated) {
  FabricWorld w;
  const auto acc1 = w.as_a->enroll_subscriber();
  const auto acc2 = w.as_a->enroll_subscriber();
  EXPECT_NE(acc1.subscriber_id, acc2.subscriber_id);
  EXPECT_NE(hex_encode(acc1.credential), hex_encode(acc2.credential));
  // Credentials work only for their own subscriber.
  EXPECT_TRUE(w.as_a->subscribers().authenticate(acc1.subscriber_id,
                                                 acc1.credential));
  EXPECT_FALSE(w.as_a->subscribers().authenticate(acc1.subscriber_id,
                                                  acc2.credential));
  EXPECT_FALSE(w.as_a->subscribers().authenticate(acc2.subscriber_id,
                                                  acc1.credential));
}

TEST(Fabric, HostCountAndDbSizesConsistent) {
  FabricWorld w;
  const std::size_t services = w.as_a->state().host_db.size();
  for (int i = 0; i < 5; ++i) w.as_a->add_host("h" + std::to_string(i));
  EXPECT_EQ(w.as_a->hosts().size(), 5u);
  EXPECT_EQ(w.as_a->state().host_db.size(), services + 5);
}

TEST(Fabric, CrossAsControlPacketCannotReachForeignMs) {
  // A host in AS B addresses AS A's MS EphID directly: the packet routes,
  // but the MS cannot authenticate the foreign control EphID and drops it.
  FabricWorld w;
  host::Host& foreign = w.as_b->add_host("foreign");
  ASSERT_TRUE(provision_ephids(foreign, w.net.loop(), 1).ok());

  wire::Packet pkt;
  pkt.src_aid = 300;
  pkt.src_ephid = foreign.ctrl_ephid().bytes;  // AS B control EphID
  pkt.dst_aid = 100;
  pkt.dst_ephid = w.as_a->ms().cert().ephid.bytes;
  pkt.proto = wire::NextProto::control;
  pkt.payload = to_bytes("opaque");
  const auto issued_before = w.as_a->ms().stats().issued;
  auto resp = w.as_a->ms().handle_packet(pkt.seal().view());
  EXPECT_FALSE(resp.ok());
  EXPECT_EQ(w.as_a->ms().stats().issued, issued_before);
}

TEST(Fabric, IcmpErrorsAuthenticatedByRouterIdentity) {
  // BR-originated ICMP (packet-too-big) carries a valid MAC under the
  // router's own kHA — network feedback is attributable too (§VIII-B).
  Internet net{89};
  AutonomousSystem::Config cfg;
  cfg.aid = 100;
  cfg.name = "A";
  cfg.br.mtu = 200;
  auto& as_a = net.add_as(std::move(cfg));
  auto& as_b = net.add_as(300, "B");
  net.link(100, 300, 1000);
  host::Host& a = as_a.add_host("a");
  host::Host& b = as_b.add_host("b");
  ASSERT_TRUE(provision_ephids(a, net.loop(), 1).ok());
  ASSERT_TRUE(provision_ephids(b, net.loop(), 1).ok());

  int icmp_count = 0;
  a.set_icmp_handler([&](const core::Endpoint&, const core::IcmpMessage& m) {
    if (m.type == core::IcmpType::packet_too_big) ++icmp_count;
  });
  auto sid = a.connect(b.pool().entries().front()->cert, {},
                       [](Result<std::uint64_t>) {});
  net.run();
  (void)a.send_data(*sid, Bytes(400, 'x'));
  net.run();
  EXPECT_EQ(icmp_count, 1);
  EXPECT_EQ(as_a.br().stats().icmp_sent, 1u);
}

TEST(Fabric, RunIsDeterministicPerSeed) {
  // Two identically-seeded worlds produce identical stats.
  auto run_world = [](std::uint64_t seed) {
    Internet net{seed};
    auto& as_a = net.add_as(100, "A");
    auto& as_b = net.add_as(300, "B");
    net.link(100, 300, 1000);
    host::Host& a = as_a.add_host("a");
    host::Host& b = as_b.add_host("b");
    (void)provision_ephids(a, net.loop(), 2);
    (void)provision_ephids(b, net.loop(), 2);
    auto sid = a.connect(b.pool().entries().front()->cert, {},
                         [](Result<std::uint64_t>) {});
    for (int i = 0; i < 10; ++i) (void)a.send_data(*sid, to_bytes("x"));
    net.run();
    return std::tuple{a.stats().packets_sent, b.stats().packets_received,
                      as_a.br().stats().forwarded_out,
                      a.pool().entries().front()->cert.ephid.hex()};
  };
  EXPECT_EQ(run_world(1234), run_world(1234));
  EXPECT_NE(std::get<3>(run_world(1234)), std::get<3>(run_world(1235)));
}

}  // namespace
}  // namespace apna

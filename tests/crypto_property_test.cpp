// Parameterized property sweeps for the crypto substrate — broad-range
// checks complementing the KATs in crypto_test.cpp.
#include <gtest/gtest.h>

#include <memory>

#include "crypto/aead.h"
#include "crypto/aes.h"
#include "crypto/chacha20.h"
#include "crypto/ed25519.h"
#include "crypto/fe25519.h"
#include "crypto/gcm.h"
#include "crypto/hmac.h"
#include "crypto/modes.h"
#include "crypto/rng.h"
#include "crypto/sha2.h"
#include "crypto/x25519.h"
#include "util/hex.h"

namespace apna::crypto {
namespace {

// ---- CMAC length sweep: streaming/two-span implementation vs a simple
// reference built directly from RFC 4493 pseudo-code. -------------------------

std::array<std::uint8_t, 16> reference_cmac(const Aes128& aes,
                                            const std::array<std::uint8_t, 16>& k1,
                                            const std::array<std::uint8_t, 16>& k2,
                                            ByteSpan m) {
  const std::size_t n = (m.size() + 15) / 16;
  std::array<std::uint8_t, 16> x{};
  auto xor_block = [&](const std::uint8_t* p) {
    for (int i = 0; i < 16; ++i) x[i] ^= p[i];
  };
  if (n == 0) {
    std::uint8_t last[16] = {0x80};
    xor_block(last);
    for (int i = 0; i < 16; ++i) x[i] ^= k2[i];
    aes.encrypt_block(x.data(), x.data());
    return x;
  }
  for (std::size_t b = 0; b + 1 < n; ++b) {
    xor_block(m.data() + 16 * b);
    aes.encrypt_block(x.data(), x.data());
  }
  const std::size_t rem = m.size() - 16 * (n - 1);
  std::uint8_t last[16] = {};
  std::memcpy(last, m.data() + 16 * (n - 1), rem);
  const std::array<std::uint8_t, 16>* subkey = &k1;
  if (rem < 16) {
    last[rem] = 0x80;
    subkey = &k2;
  }
  xor_block(last);
  for (int i = 0; i < 16; ++i) x[i] ^= (*subkey)[i];
  aes.encrypt_block(x.data(), x.data());
  return x;
}

class CmacLengthSweep : public ::testing::TestWithParam<int> {};

TEST_P(CmacLengthSweep, MatchesReferenceAndSplitInvariance) {
  ChaChaRng rng(1000 + GetParam());
  const Bytes key = rng.bytes(16);
  const AesCmac cmac(key);
  const Bytes msg = rng.bytes(GetParam());

  // Recompute the RFC 4493 subkeys independently.
  Aes128 aes(key);
  std::array<std::uint8_t, 16> l{};
  aes.encrypt_block(l.data(), l.data());
  auto dbl = [](std::array<std::uint8_t, 16> v) {
    const std::uint8_t carry = v[0] >> 7;
    for (int i = 0; i < 15; ++i)
      v[i] = static_cast<std::uint8_t>((v[i] << 1) | (v[i + 1] >> 7));
    v[15] = static_cast<std::uint8_t>(v[15] << 1);
    if (carry) v[15] ^= 0x87;
    return v;
  };
  const auto k1 = dbl(l);
  const auto k2 = dbl(k1);

  const auto expect = reference_cmac(aes, k1, k2, msg);
  EXPECT_EQ(hex_encode(cmac.mac(msg)), hex_encode(expect));

  // Split invariance at several cut points.
  for (std::size_t cut : {std::size_t{0}, msg.size() / 3, msg.size() / 2,
                          msg.size()}) {
    EXPECT_EQ(hex_encode(cmac.mac2(ByteSpan(msg.data(), cut),
                                   ByteSpan(msg.data() + cut,
                                            msg.size() - cut))),
              hex_encode(expect))
        << "len=" << msg.size() << " cut=" << cut;
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, CmacLengthSweep,
                         ::testing::Values(0, 1, 15, 16, 17, 31, 32, 33, 47,
                                           48, 63, 64, 65, 127, 128, 129,
                                           255, 256, 1000, 1460, 4096));

TEST(CmacManyProperty, InterleavedLanesMatchScalarAcrossShapes) {
  // aes_cmac_many interleaves up to 8 chains with DIFFERENT keys and
  // lockstep-retires lanes of different lengths; every (a, b) extent shape
  // (empty input, a-only, straddle, b-only, complete vs padded final
  // block) must produce the scalar mac2 tag bit-for-bit.
  ChaChaRng rng(7707);
  constexpr std::size_t kJobs = 19;  // > 2 lane groups, ragged tail
  const std::size_t lens[] = {0,  1,  15, 16,  17,  31,  32,  44, 52, 63,
                              64, 65, 80, 127, 200, 460, 512, 733, 1000};
  std::vector<AesCmac> keys;
  std::vector<Bytes> as, bs;
  for (std::size_t i = 0; i < kJobs; ++i) {
    keys.emplace_back(rng.bytes(16));
    as.push_back(rng.bytes(lens[i % std::size(lens)]));
    bs.push_back(rng.bytes(lens[(i * 7 + 3) % std::size(lens)]));
  }
  std::vector<CmacJob> jobs;
  for (std::size_t i = 0; i < kJobs; ++i)
    jobs.push_back(CmacJob{&keys[i], as[i], bs[i]});
  std::array<std::uint8_t, 16> tags[kJobs];
  aes_cmac_many(jobs, tags);
  for (std::size_t i = 0; i < kJobs; ++i)
    EXPECT_EQ(hex_encode(tags[i]), hex_encode(keys[i].mac2(as[i], bs[i])))
        << "job " << i << " a=" << as[i].size() << " b=" << bs[i].size();
}

// ---- Software backend parity ------------------------------------------------------
// On AES-NI hosts the soft backend otherwise only runs in one direct test;
// force it through the public API so portability is continuously verified.

TEST(SoftBackend, Fips197KnownAnswer) {
  Aes128 soft(must_hex("000102030405060708090a0b0c0d0e0f"),
              Aes128::Backend::soft);
  EXPECT_STREQ(soft.backend(), "soft");
  const Bytes pt = must_hex("00112233445566778899aabbccddeeff");
  std::uint8_t ct[16];
  soft.encrypt_block(pt.data(), ct);
  EXPECT_EQ(hex_encode(ByteSpan(ct, 16)), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(SoftBackend, AgreesWithAutoBackendEverywhere) {
  ChaChaRng rng(14);
  for (int trial = 0; trial < 8; ++trial) {
    const Bytes key = rng.bytes(16);
    Aes128 auto_aes(key);
    Aes128 soft_aes(key, Aes128::Backend::soft);

    // Block + batch.
    const Bytes blocks = rng.bytes(16 * 7);
    Bytes out_auto(blocks.size()), out_soft(blocks.size());
    auto_aes.encrypt_blocks(blocks.data(), out_auto.data(), 7);
    soft_aes.encrypt_blocks(blocks.data(), out_soft.data(), 7);
    EXPECT_EQ(hex_encode(out_auto), hex_encode(out_soft));

    // CTR.
    const Bytes iv = rng.bytes(16);
    const Bytes msg = rng.bytes(123);
    EXPECT_EQ(hex_encode(aes_ctr(auto_aes, iv.data(), msg)),
              hex_encode(aes_ctr(soft_aes, iv.data(), msg)));

    // CBC-MAC chain (the fused kernel vs the scalar loop).
    std::uint8_t x_auto[16] = {}, x_soft[16] = {};
    const Bytes chain = rng.bytes(16 * 5);
    auto_aes.cbc_mac_absorb(x_auto, chain.data(), 5);
    soft_aes.cbc_mac_absorb(x_soft, chain.data(), 5);
    EXPECT_EQ(hex_encode(ByteSpan(x_auto, 16)),
              hex_encode(ByteSpan(x_soft, 16)));
  }
}

// ---- AES CTR vs ECB cross-check ------------------------------------------------

TEST(AesProperty, CtrKeystreamMatchesManualEcb) {
  ChaChaRng rng(2);
  const Bytes key = rng.bytes(16);
  Aes128 aes(key);
  std::uint8_t ctr[16];
  Bytes iv = rng.bytes(16);
  std::memcpy(ctr, iv.data(), 16);

  const Bytes zeros(48, 0);
  const Bytes ks = aes_ctr(aes, iv.data(), zeros);
  for (int blk = 0; blk < 3; ++blk) {
    std::uint8_t expect[16];
    aes.encrypt_block(ctr, expect);
    EXPECT_EQ(hex_encode(ByteSpan(ks.data() + 16 * blk, 16)),
              hex_encode(ByteSpan(expect, 16)));
    for (int i = 15; i >= 12; --i)
      if (++ctr[i] != 0) break;
  }
}

// ---- AEAD cross-suite independence ------------------------------------------------

TEST(AeadProperty, SuitesAreMutuallyIncompatible) {
  ChaChaRng rng(3);
  const Bytes key = rng.bytes(32);
  const Bytes nonce = rng.bytes(12);
  const Bytes pt = rng.bytes(64);
  auto chacha = Aead::create(AeadSuite::chacha20_poly1305, key);
  auto gcm = Aead::create(AeadSuite::aes128_gcm, key);
  auto etm = Aead::create(AeadSuite::aes128_ctr_cmac, key);
  const Bytes sealed = chacha->seal(nonce, {}, pt);
  EXPECT_FALSE(gcm->open(nonce, {}, sealed).has_value());
  EXPECT_FALSE(etm->open(nonce, {}, sealed).has_value());
  const Bytes sealed_gcm = gcm->seal(nonce, {}, pt);
  EXPECT_FALSE(etm->open(nonce, {}, sealed_gcm).has_value());
}

TEST(AeadProperty, AadOnlyMessages) {
  ChaChaRng rng(4);
  for (auto suite : {AeadSuite::chacha20_poly1305, AeadSuite::aes128_gcm,
                     AeadSuite::aes128_ctr_cmac}) {
    auto aead = Aead::create(suite, rng.bytes(32));
    const Bytes nonce = rng.bytes(12);
    const Bytes aad = rng.bytes(100);
    const Bytes sealed = aead->seal(nonce, aad, {});
    EXPECT_EQ(sealed.size(), Aead::kTagSize);
    auto opened = aead->open(nonce, aad, sealed);
    ASSERT_TRUE(opened.has_value());
    EXPECT_TRUE(opened->empty());
    Bytes wrong_aad = aad;
    wrong_aad[50] ^= 1;
    EXPECT_FALSE(aead->open(nonce, wrong_aad, sealed).has_value());
  }
}

// ---- Field arithmetic: ring axioms over random elements ----------------------------

class FeAxioms : public ::testing::TestWithParam<int> {};

TEST_P(FeAxioms, AssociativityDistributivity) {
  ChaChaRng rng(5000 + GetParam());
  auto random_fe = [&] {
    Bytes b = rng.bytes(32);
    b[31] &= 0x3f;
    return fe_frombytes(b.data());
  };
  const Fe a = random_fe(), b = random_fe(), c = random_fe();
  // (a*b)*c == a*(b*c)
  EXPECT_TRUE(fe_equal(fe_mul(fe_mul(a, b), c), fe_mul(a, fe_mul(b, c))));
  // a*(b+c) == a*b + a*c
  EXPECT_TRUE(fe_equal(fe_mul(a, fe_add(b, c)),
                       fe_add(fe_mul(a, b), fe_mul(a, c))));
  // (a-b)+b == a
  EXPECT_TRUE(fe_equal(fe_add(fe_sub(a, b), b), a));
  // neg(neg(a)) == a
  EXPECT_TRUE(fe_equal(fe_neg(fe_neg(a)), a));
  // a^2 == a*a via fe_sq
  EXPECT_TRUE(fe_equal(fe_sq(a), fe_mul(a, a)));
  // small-scalar mul agrees with repeated addition
  EXPECT_TRUE(fe_equal(fe_mul_small(a, 3), fe_add(fe_add(a, a), a)));
}

INSTANTIATE_TEST_SUITE_P(Random, FeAxioms, ::testing::Range(0, 12));

// ---- X25519: contributory-ish sanity + basepoint consistency -----------------------

TEST(X25519Property, LadderMatchesIteratedBase) {
  // x25519(a, x25519(b, G)) == x25519(b, x25519(a, G)) — the DH property,
  // swept across several pairs.
  ChaChaRng rng(6);
  for (int i = 0; i < 4; ++i) {
    auto a = X25519KeyPair::generate(rng);
    auto b = X25519KeyPair::generate(rng);
    EXPECT_EQ(hex_encode(x25519(a.priv, b.pub)),
              hex_encode(x25519(b.priv, a.pub)));
  }
}

TEST(X25519Property, ClampingMakesLowBitsIrrelevant) {
  ChaChaRng rng(7);
  X25519PrivateKey k{};
  rng.fill(MutByteSpan(k.data(), 32));
  X25519PrivateKey k2 = k;
  k2[0] ^= 0x07;  // clamped away
  EXPECT_EQ(hex_encode(x25519_base(k)), hex_encode(x25519_base(k2)));
  X25519PrivateKey k3 = k;
  k3[15] ^= 0x10;  // a real scalar bit
  EXPECT_NE(hex_encode(x25519_base(k)), hex_encode(x25519_base(k3)));
}

// ---- Ed25519: message-length sweep -----------------------------------------------

class Ed25519Lengths : public ::testing::TestWithParam<int> {};

TEST_P(Ed25519Lengths, SignVerifyRoundtrip) {
  ChaChaRng rng(9000 + GetParam());
  auto kp = Ed25519KeyPair::generate(rng);
  const Bytes msg = rng.bytes(GetParam());
  const auto sig = kp.sign(msg);
  EXPECT_TRUE(ed25519_verify(kp.pub, msg, sig));
  if (!msg.empty()) {
    Bytes bad = msg;
    bad[msg.size() / 2] ^= 1;
    EXPECT_FALSE(ed25519_verify(kp.pub, bad, sig));
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, Ed25519Lengths,
                         ::testing::Values(0, 1, 32, 64, 100, 1000));

TEST(Ed25519Property, DistinctSeedsDistinctKeys) {
  ChaChaRng rng(8);
  std::set<std::string> pubs;
  for (int i = 0; i < 16; ++i)
    pubs.insert(hex_encode(Ed25519KeyPair::generate(rng).pub));
  EXPECT_EQ(pubs.size(), 16u);
}

TEST(Ed25519Property, SignatureNotValidForOtherKey) {
  ChaChaRng rng(9);
  auto kp1 = Ed25519KeyPair::generate(rng);
  auto kp2 = Ed25519KeyPair::generate(rng);
  const Bytes msg = to_bytes("cross-key");
  EXPECT_FALSE(ed25519_verify(kp2.pub, msg, kp1.sign(msg)));
}

// ---- Hash/HKDF edge cases ----------------------------------------------------------

TEST(ShaProperty, BlockBoundaryLengths) {
  // Lengths straddling the padding boundaries must hash consistently
  // between incremental and one-shot paths.
  ChaChaRng rng(10);
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 127u,
                          128u, 129u}) {
    const Bytes data = rng.bytes(len);
    Sha256 inc;
    for (std::size_t i = 0; i < data.size(); ++i)
      inc.update(ByteSpan(data.data() + i, 1));
    EXPECT_EQ(hex_encode(inc.finish()), hex_encode(Sha256::hash(data)))
        << len;

    Sha512 inc512;
    for (std::size_t i = 0; i < data.size(); ++i)
      inc512.update(ByteSpan(data.data() + i, 1));
    EXPECT_EQ(hex_encode(inc512.finish()), hex_encode(Sha512::hash(data)))
        << len;
  }
}

TEST(HkdfProperty, OutputLengthsAndPrefixProperty) {
  ChaChaRng rng(11);
  const Bytes ikm = rng.bytes(32);
  const Bytes salt = rng.bytes(13);
  const Bytes info = to_bytes("ctx");
  const Bytes long_out = hkdf(salt, ikm, info, 96);
  EXPECT_EQ(long_out.size(), 96u);
  // HKDF output is prefix-consistent for the same inputs.
  const Bytes short_out = hkdf(salt, ikm, info, 32);
  EXPECT_TRUE(std::equal(short_out.begin(), short_out.end(),
                         long_out.begin()));
  // Different salt/info breaks it.
  EXPECT_NE(hex_encode(hkdf(salt, ikm, to_bytes("ctx2"), 32)),
            hex_encode(short_out));
}

// ---- ChaCha20 counter independence ---------------------------------------------------

TEST(ChaChaProperty, BlocksAreIndependentByCounter) {
  ChaChaRng rng(12);
  const Bytes key = rng.bytes(32);
  const Bytes nonce = rng.bytes(12);
  std::uint8_t b0[64], b1[64], b0_again[64];
  chacha20_block(key.data(), 0, nonce.data(), b0);
  chacha20_block(key.data(), 1, nonce.data(), b1);
  chacha20_block(key.data(), 0, nonce.data(), b0_again);
  EXPECT_NE(hex_encode(ByteSpan(b0, 64)), hex_encode(ByteSpan(b1, 64)));
  EXPECT_EQ(hex_encode(ByteSpan(b0, 64)), hex_encode(ByteSpan(b0_again, 64)));

  // Streaming at an offset equals block-by-block XOR.
  const Bytes pt = rng.bytes(130);
  Bytes ct(pt.size());
  chacha20_xcrypt(key.data(), 0, nonce.data(), pt, ct);
  for (std::size_t i = 0; i < 64; ++i)
    EXPECT_EQ(ct[i], pt[i] ^ b0[i]);
  for (std::size_t i = 64; i < 128; ++i)
    EXPECT_EQ(ct[i], pt[i] ^ b1[i - 64]);
}

// ---- GCM vs CTR consistency ----------------------------------------------------------

TEST(GcmProperty, CiphertextPrefixMatchesCtrAtCounter2) {
  // GCM encrypts with CTR starting at counter 2 under J0 = nonce ‖ 1.
  ChaChaRng rng(13);
  const Bytes key = rng.bytes(16);
  const Bytes nonce = rng.bytes(12);
  const Bytes pt = rng.bytes(40);
  AesGcm gcm(key);
  const Bytes sealed = gcm.seal(nonce, {}, pt);

  Aes128 aes(key);
  std::uint8_t ctr[16];
  std::memcpy(ctr, nonce.data(), 12);
  store_be32(ctr + 12, 2);
  const Bytes expect_ct = aes_ctr(aes, ctr, pt);
  EXPECT_EQ(hex_encode(ByteSpan(sealed.data(), pt.size())),
            hex_encode(expect_ct));
}

// ---- Backend-tier equivalence -----------------------------------------------------
// Every compiled AES tier (soft / aesni / avx2 / vaes_avx512) must produce
// bit-identical output through every public entry point; forcing a tier the
// CPU lacks silently downgrades, so the loop below self-skips without ever
// crashing on narrower hosts.

std::vector<Aes128::Backend> compiled_tiers() {
  std::vector<Aes128::Backend> tiers = {Aes128::Backend::soft};
  for (const Aes128::Backend b :
       {Aes128::Backend::aesni, Aes128::Backend::avx2,
        Aes128::Backend::vaes_avx512}) {
    if (Aes128::resolve_backend(b) == b) tiers.push_back(b);
  }
  return tiers;
}

TEST(BackendTiers, ForcedSoftCmacMatchesHardware) {
  // The explicit non-AESNI fallback check: a CMAC computed entirely on the
  // portable bitsliced path equals the hardware tiers for every extent
  // shape the lane kernels handle (empty / partial / multi-block).
  ChaChaRng rng(4242);
  for (const std::size_t len : {std::size_t{0}, std::size_t{1},
                                std::size_t{16}, std::size_t{47},
                                std::size_t{256}, std::size_t{1000}}) {
    const Bytes key = rng.bytes(16);
    const Bytes a = rng.bytes(len);
    const Bytes b = rng.bytes((len * 3 + 5) % 97);
    const AesCmac soft(key, Aes128::Backend::soft);
    const AesCmac hw(key);
    EXPECT_STREQ(soft.backend(), "soft");
    EXPECT_EQ(hex_encode(soft.mac(a)), hex_encode(hw.mac(a))) << len;
    EXPECT_EQ(hex_encode(soft.mac2(a, b)), hex_encode(hw.mac2(a, b))) << len;
  }
}

TEST(BackendTiers, EncryptBlocksAgreesOnEveryCompiledTier) {
  ChaChaRng rng(515);
  const Bytes key = rng.bytes(16);
  // 37 blocks: exercises the 16-wide main loop, an 8-wide step, and a
  // scalar tail on every tier.
  const Bytes pt = rng.bytes(37 * 16);
  Bytes want(pt.size());
  Aes128 soft(key, Aes128::Backend::soft);
  soft.encrypt_blocks(pt.data(), want.data(), 37);
  for (const Aes128::Backend tier : compiled_tiers()) {
    Aes128 aes(key, tier);
    ASSERT_EQ(aes.tier(), tier);
    Bytes got(pt.size());
    aes.encrypt_blocks(pt.data(), got.data(), 37);
    EXPECT_EQ(hex_encode(got), hex_encode(want)) << aes.backend();
  }
}

TEST(BackendTiers, CmacManyMixedTierGroupsMatchScalar) {
  // aes_cmac_many groups consecutive hardware keys by their MINIMUM tier
  // and widens to 16 lanes when the group supports it; soft keys fall out
  // as scalar jobs. Mixing all compiled tiers in one batch must still give
  // scalar-identical tags for every job.
  ChaChaRng rng(616);
  const auto tiers = compiled_tiers();
  constexpr std::size_t kJobs = 41;  // 16-wide + 8-wide + ragged tail
  std::vector<AesCmac> keys;
  std::vector<Bytes> as, bs;
  keys.reserve(kJobs);
  for (std::size_t i = 0; i < kJobs; ++i) {
    keys.emplace_back(rng.bytes(16), tiers[i % tiers.size()]);
    as.push_back(rng.bytes((i * 29) % 301));
    bs.push_back(rng.bytes((i * 13 + 7) % 129));
  }
  std::vector<CmacJob> jobs;
  for (std::size_t i = 0; i < kJobs; ++i)
    jobs.push_back(CmacJob{&keys[i], as[i], bs[i]});
  std::vector<std::array<std::uint8_t, 16>> tags(kJobs);
  aes_cmac_many(jobs, tags.data());
  for (std::size_t i = 0; i < kJobs; ++i)
    EXPECT_EQ(hex_encode(tags[i]), hex_encode(keys[i].mac2(as[i], bs[i])))
        << "job " << i << " tier " << keys[i].backend();
}

TEST(BackendTiers, ChaChaWideKernelsMatchScalarBlocks) {
  // The 4-way SSE2 and 8-way AVX2 kernels must reproduce the scalar block
  // sequence exactly, including the 32-bit counter wrap.
  ChaChaRng rng(717);
  const Bytes key = rng.bytes(32);
  const Bytes nonce = rng.bytes(12);
  for (const std::uint32_t counter : {0u, 1u, 0xfffffffdu}) {
    std::uint8_t want[512];
    for (int b = 0; b < 8; ++b)
      chacha20_block(key.data(), counter + static_cast<std::uint32_t>(b),
                     nonce.data(), want + 64 * b);
    std::uint8_t got4[256];
    detail::chacha20_blocks4_sse2(key.data(), counter, nonce.data(), got4);
    EXPECT_EQ(hex_encode(ByteSpan(got4, 256)),
              hex_encode(ByteSpan(want, 256)))
        << "sse2 counter=" << counter;
    if (detail::chacha20_avx2_supported()) {
      std::uint8_t got8[512];
      detail::chacha20_blocks8_avx2(key.data(), counter, nonce.data(), got8);
      EXPECT_EQ(hex_encode(ByteSpan(got8, 512)),
                hex_encode(ByteSpan(want, 512)))
          << "avx2 counter=" << counter;
    }
  }
}

TEST(BackendTiers, ChaChaXcryptMatchesScalarReferenceAcrossLengths) {
  // chacha20_xcrypt internally mixes 8/4/1-block strides; every length
  // around the stride boundaries must equal the scalar XOR reference.
  ChaChaRng rng(818);
  const Bytes key = rng.bytes(32);
  const Bytes nonce = rng.bytes(12);
  for (const std::size_t len :
       {std::size_t{0}, std::size_t{1}, std::size_t{63}, std::size_t{64},
        std::size_t{65}, std::size_t{255}, std::size_t{256}, std::size_t{257},
        std::size_t{511}, std::size_t{512}, std::size_t{513},
        std::size_t{1337}}) {
    const Bytes pt = rng.bytes(len);
    Bytes want(len);
    std::uint8_t block[64];
    for (std::size_t off = 0; off < len; off += 64) {
      chacha20_block(key.data(), 1 + static_cast<std::uint32_t>(off / 64),
                     nonce.data(), block);
      for (std::size_t i = off; i < std::min(len, off + 64); ++i)
        want[i] = static_cast<std::uint8_t>(pt[i] ^ block[i - off]);
    }
    Bytes got(len);
    chacha20_xcrypt(key.data(), 1, nonce.data(), pt, got);
    EXPECT_EQ(hex_encode(got), hex_encode(want)) << "len=" << len;
  }
}

// ---- Ed25519 batch verification ---------------------------------------------------
// The accept/reject SETS must be bit-identical to per-signature
// ed25519_verify under randomized corruption (the bisection fallback
// contract consumed by ServicePool's PoP sweep).

struct BatchFixture {
  std::vector<std::array<std::uint8_t, 32>> seeds, pubs;
  std::vector<Bytes> msgs;
  std::vector<Ed25519Signature> sigs;

  explicit BatchFixture(std::size_t n, ChaChaRng& rng) {
    for (std::size_t i = 0; i < n; ++i) {
      std::array<std::uint8_t, 32> seed{};
      rng.fill(seed);
      const auto pub = ed25519_public_key(seed);
      Bytes msg = rng.bytes(rng.next_u64() % 96);
      sigs.push_back(ed25519_sign(seed, pub, msg));
      seeds.push_back(seed);
      pubs.push_back(pub);
      msgs.push_back(std::move(msg));
    }
  }

  std::vector<Ed25519BatchItem> items() const {
    std::vector<Ed25519BatchItem> out;
    for (std::size_t i = 0; i < sigs.size(); ++i)
      out.push_back({&pubs[i], msgs[i], &sigs[i]});
    return out;
  }

  void check_matches_scalar(ChaChaRng& zrng) const {
    const auto batch_items = items();
    const auto out = std::make_unique<bool[]>(batch_items.size());
    const bool all = ed25519_verify_batch(
        {batch_items.data(), batch_items.size()}, out.get(), zrng);
    bool expect_all = true;
    for (std::size_t i = 0; i < batch_items.size(); ++i) {
      const bool scalar = ed25519_verify(pubs[i], msgs[i], sigs[i]);
      EXPECT_EQ(out[i], scalar) << "item " << i;
      expect_all = expect_all && scalar;
    }
    EXPECT_EQ(all, expect_all);
  }
};

TEST(Ed25519Batch, AllValidBatchesAccept) {
  ChaChaRng rng(2024), zrng(5150);
  for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                              std::size_t{16}, std::size_t{33}}) {
    BatchFixture f(n, rng);
    f.check_matches_scalar(zrng);
  }
}

TEST(Ed25519Batch, RandomizedCorruptionsMatchScalarExactly) {
  ChaChaRng rng(31337), zrng(999);
  for (int round = 0; round < 12; ++round) {
    const std::size_t n = 1 + rng.next_u64() % 24;
    BatchFixture f(n, rng);
    // Corrupt a random subset in randomized ways; bisection must isolate
    // exactly the scalar-rejected items.
    const std::size_t bad = rng.next_u64() % (n + 1);
    for (std::size_t k = 0; k < bad; ++k) {
      const std::size_t i = rng.next_u64() % n;
      switch (rng.next_u64() % 5) {
        case 0: f.sigs[i][rng.next_u64() % 32] ^= 1 << (rng.next_u64() % 8);
          break;  // corrupt R half
        case 1: f.sigs[i][32 + rng.next_u64() % 31] ^= 1; break;  // S half
        case 2:
          if (!f.msgs[i].empty())
            f.msgs[i][rng.next_u64() % f.msgs[i].size()] ^= 0x40;
          else
            f.msgs[i].push_back(0x5a);
          break;
        case 3: f.pubs[i][rng.next_u64() % 32] ^= 0x04; break;
        case 4: f.sigs[i][63] |= 0xe0; break;  // non-canonical S
      }
    }
    f.check_matches_scalar(zrng);
  }
}

TEST(Ed25519Batch, SwappedSignaturesBothRejected) {
  ChaChaRng rng(606), zrng(707);
  BatchFixture f(8, rng);
  std::swap(f.sigs[2], f.sigs[5]);
  f.check_matches_scalar(zrng);
}

TEST(Ed25519Batch, EmptyBatchAccepts) {
  ChaChaRng zrng(1);
  EXPECT_TRUE(ed25519_verify_batch({}, nullptr, zrng));
}

}  // namespace
}  // namespace apna::crypto

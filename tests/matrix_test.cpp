// Cross-product sweep: every AEAD suite × every EphID granularity runs a
// complete bootstrap→issue→handshake→data→reply exchange over the simulated
// Internet. Guards against configuration-specific regressions anywhere in
// the stack.
#include <gtest/gtest.h>

#include "apna/internet.h"

namespace apna {
namespace {

using Combo = std::tuple<crypto::AeadSuite, host::Granularity>;

class StackMatrix : public ::testing::TestWithParam<Combo> {};

TEST_P(StackMatrix, EndToEndExchange) {
  const auto [suite, granularity] = GetParam();

  Internet net{static_cast<std::uint64_t>(static_cast<int>(suite)) * 100 +
               static_cast<std::uint64_t>(granularity)};
  auto& as_a = net.add_as(100, "A");
  auto& as_b = net.add_as(300, "B");
  net.link(100, 300, 3000);

  host::Host& client = as_a.add_host("client", granularity, suite);
  host::Host& server = as_b.add_host("server");
  ASSERT_TRUE(provision_ephids(client, net.loop(), 3).ok());
  ASSERT_TRUE(provision_ephids(server, net.loop(), 2).ok());

  std::vector<std::string> server_got;
  server.set_data_handler([&](std::uint64_t sid, ByteSpan d) {
    server_got.push_back(to_string(d));
    (void)server.send_data(sid, to_bytes("echo:" + to_string(d)));
  });
  std::vector<std::string> client_got;
  client.set_data_handler([&](std::uint64_t, ByteSpan d) {
    client_got.push_back(to_string(d));
  });

  // Two concurrent flows (exercises the granularity policy), several
  // messages each.
  auto s1 = client.connect(server.pool().entries()[0]->cert, {},
                           [](Result<std::uint64_t>) {});
  host::Host::ConnectOptions o2;
  o2.flow = "second";
  auto s2 = client.connect(server.pool().entries()[1]->cert, o2,
                           [](Result<std::uint64_t>) {});
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client.send_data(*s1, to_bytes("a" + std::to_string(i))).ok());
    ASSERT_TRUE(client.send_data(*s2, to_bytes("b" + std::to_string(i))).ok());
  }
  net.run();

  EXPECT_EQ(server_got.size(), 6u);
  EXPECT_EQ(client_got.size(), 6u);
  EXPECT_EQ(client.stats().decrypt_drops, 0u);
  EXPECT_EQ(server.stats().decrypt_drops, 0u);
  EXPECT_EQ(as_a.br().stats().total_drops(), 0u);

  // Granularity-specific wire property.
  auto e1 = client.session_ephids(*s1);
  auto e2 = client.session_ephids(*s2);
  ASSERT_TRUE(e1 && e2);
  if (granularity == host::Granularity::per_host) {
    EXPECT_TRUE(e1->first == e2->first);
  } else if (granularity == host::Granularity::per_flow) {
    EXPECT_FALSE(e1->first == e2->first);
  }
}

std::string combo_name(const ::testing::TestParamInfo<Combo>& info) {
  const auto [suite, g] = info.param;
  std::string s;
  switch (suite) {
    case crypto::AeadSuite::chacha20_poly1305: s = "ChaCha"; break;
    case crypto::AeadSuite::aes128_gcm: s = "Gcm"; break;
    case crypto::AeadSuite::aes128_ctr_cmac: s = "EtM"; break;
  }
  switch (g) {
    case host::Granularity::per_host: return s + "PerHost";
    case host::Granularity::per_application: return s + "PerApp";
    case host::Granularity::per_flow: return s + "PerFlow";
    case host::Granularity::per_packet: return s + "PerPacket";
  }
  return s;
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, StackMatrix,
    ::testing::Combine(
        ::testing::Values(crypto::AeadSuite::chacha20_poly1305,
                          crypto::AeadSuite::aes128_gcm,
                          crypto::AeadSuite::aes128_ctr_cmac),
        ::testing::Values(host::Granularity::per_host,
                          host::Granularity::per_application,
                          host::Granularity::per_flow)),
    combo_name);

// Per-packet granularity with sessions: frames from one flow rotate source
// EphIDs, which breaks (mine, peer) demux by design — the paper notes an
// "additional protocol is necessary to demultiplex packets" [23]. We pin
// the current behaviour: data still flows when the pool holds ONE usable
// EphID (rotation degenerates), documenting the [23] dependency otherwise.
TEST(StackMatrixEdge, PerPacketWithSingletonPool) {
  Internet net{999};
  auto& as_a = net.add_as(100, "A");
  auto& as_b = net.add_as(300, "B");
  net.link(100, 300, 3000);
  host::Host& client =
      as_a.add_host("client", host::Granularity::per_packet);
  host::Host& server = as_b.add_host("server");
  ASSERT_TRUE(provision_ephids(client, net.loop(), 1).ok());
  ASSERT_TRUE(provision_ephids(server, net.loop(), 1).ok());
  int got = 0;
  server.set_data_handler([&](std::uint64_t, ByteSpan) { ++got; });
  auto sid = client.connect(server.pool().entries().front()->cert, {},
                            [](Result<std::uint64_t>) {});
  ASSERT_TRUE(sid.ok());
  for (int i = 0; i < 5; ++i)
    ASSERT_TRUE(client.send_data(*sid, to_bytes("p")).ok());
  net.run();
  EXPECT_EQ(got, 5);
}

}  // namespace
}  // namespace apna

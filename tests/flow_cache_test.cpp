// Verified-flow cache semantics (core/flow_cache.h + the cached classify
// pipelines of router/border_router.cpp):
//  * FlowCache container behavior: hit/miss, same-key refresh, stale-gen
//    invalidation, bounded capacity with earliest-expiry eviction;
//  * verdict equivalence — cached (fused and scalar kernels) vs uncached
//    classification over randomized bursts, bit-identical including the
//    drop arms;
//  * expiry at the clock edge: a cached verdict flips to Errc::expired at
//    exactly the same tick as the uncached path;
//  * epoch invalidation: EphID revocation, HID revocation, host
//    de-registration and host key replacement each bump AsState::epoch and
//    instantly invalidate cached verdicts (revocation straddles produce
//    identical verdicts with and without the cache).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/flow_cache.h"
#include "core/packet_auth.h"
#include "router/border_router.h"

namespace apna::core {
namespace {

EphId random_ephid(crypto::Rng& rng) {
  EphId e;
  rng.fill(MutByteSpan(e.bytes.data(), 16));
  return e;
}

std::shared_ptr<const crypto::AesCmac> test_cmac(std::uint8_t fill) {
  std::array<std::uint8_t, 16> key{};
  key.fill(fill);
  return std::make_shared<const crypto::AesCmac>(ByteSpan(key.data(), 16));
}

TEST(FlowCache, HitMissAndRefresh) {
  FlowCache cache(64);
  crypto::ChaChaRng rng{1};
  const EphId a = random_ephid(rng);
  const EphId b = random_ephid(rng);

  EXPECT_EQ(cache.find(a, 1), nullptr);
  cache.insert(a, 7, 1000, 1, test_cmac(1));
  const FlowCache::Entry* e = cache.find(a, 1);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->hid, 7u);
  EXPECT_EQ(e->exp_time, 1000u);
  EXPECT_EQ(cache.find(b, 1), nullptr);

  // Same-key insert refreshes in place (no second slot, no eviction).
  cache.insert(a, 7, 2000, 1, test_cmac(1));
  e = cache.find(a, 1);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->exp_time, 2000u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(FlowCache, StaleGenerationIsAMiss) {
  FlowCache cache(64);
  crypto::ChaChaRng rng{2};
  const EphId a = random_ephid(rng);
  cache.insert(a, 7, 1000, 1, test_cmac(1));
  ASSERT_NE(cache.find(a, 1), nullptr);
  // The epoch moved on: the entry must not be served any more.
  EXPECT_EQ(cache.find(a, 2), nullptr);
  EXPECT_GT(cache.stats().stale_gen, 0u);
  // Re-verification under the new generation overwrites the stale slot.
  cache.insert(a, 7, 1000, 2, test_cmac(1));
  EXPECT_NE(cache.find(a, 2), nullptr);
  EXPECT_EQ(cache.stats().evictions, 0u);  // stale slots are free victims
}

TEST(FlowCache, BoundedCapacityEvictsEarliestExpiry) {
  // One bucket (kWays entries): the kWays+1-th distinct key must evict the
  // entry that would become useless soonest.
  FlowCache cache(FlowCache::kWays);
  ASSERT_EQ(cache.capacity(), FlowCache::kWays);
  crypto::ChaChaRng rng{3};
  std::vector<EphId> ids;
  for (std::size_t i = 0; i < FlowCache::kWays + 1; ++i)
    ids.push_back(random_ephid(rng));
  // exp_time ascending: ids[0] expires first.
  for (std::size_t i = 0; i < FlowCache::kWays; ++i)
    cache.insert(ids[i], static_cast<Hid>(i), 100 + static_cast<ExpTime>(i),
                 1, test_cmac(1));
  cache.insert(ids[FlowCache::kWays], 99, 500, 1, test_cmac(1));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.find(ids[0], 1), nullptr);  // earliest expiry went
  for (std::size_t i = 1; i <= FlowCache::kWays; ++i)
    EXPECT_NE(cache.find(ids[i], 1), nullptr) << "entry " << i;
}

// ---- Cached vs uncached classification equivalence ---------------------------

struct RouterFixture {
  crypto::ChaChaRng rng{515};
  AsState as{64512, AsSecrets::generate(rng)};
  ExpTime now = 1'700'000'000;
  std::vector<HostAsKeys> host_keys;
  std::unique_ptr<router::BorderRouter> br;

  static constexpr Hid kHosts = 32;

  RouterFixture() {
    for (Hid hid = 1; hid <= kHosts; ++hid) {
      crypto::SharedSecret seed{};
      rng.fill(MutByteSpan(seed.data(), 32));
      HostRecord rec;
      rec.hid = hid;
      rec.keys = HostAsKeys::derive(seed);
      as.host_db.upsert(rec);
      host_keys.push_back(rec.keys);
    }
    router::BorderRouter::Callbacks cb;
    cb.now = [this] { return now; };
    br = std::make_unique<router::BorderRouter>(as, std::move(cb));
  }

  wire::Packet egress_packet(Hid hid, const EphId& src) {
    wire::Packet pkt;
    pkt.src_aid = as.aid;
    pkt.src_ephid = src.bytes;
    pkt.dst_aid = 64513;
    rng.fill(MutByteSpan(pkt.dst_ephid.data(), 16));
    pkt.proto = wire::NextProto::data;
    pkt.payload = rng.bytes(64);
    stamp_packet_mac(
        crypto::AesCmac(ByteSpan(host_keys[hid - 1].mac.data(), 16)), pkt);
    return pkt;
  }

  wire::Packet ingress_packet(const EphId& dst, Aid dst_aid = 64512) {
    wire::Packet pkt;
    pkt.src_aid = 64513;
    rng.fill(MutByteSpan(pkt.src_ephid.data(), 16));
    pkt.dst_aid = dst_aid;
    pkt.dst_ephid = dst.bytes;
    pkt.proto = wire::NextProto::data;
    pkt.payload = rng.bytes(64);
    return pkt;
  }
};

struct SealedBurst {
  std::vector<wire::PacketBuf> bufs;
  std::vector<wire::PacketView> views;
  void push(const wire::Packet& p) {
    bufs.push_back(p.seal());
    views.push_back(bufs.back().view());
  }
};

using Verdicts = std::vector<router::BorderRouter::Verdict>;

Verdicts classify_out(RouterFixture& f, const SealedBurst& burst, bool batched,
                      FlowCache* cache) {
  Verdicts v(burst.views.size());
  router::BorderRouter::Stats stats;
  f.br->classify_outgoing_burst(burst.views, f.now, v, stats, batched, cache);
  return v;
}

Verdicts classify_in(RouterFixture& f, const SealedBurst& burst, bool batched,
                     FlowCache* cache) {
  Verdicts v(burst.views.size());
  router::BorderRouter::Stats stats;
  f.br->classify_ingress_burst(burst.views, f.now, v, stats, batched, cache);
  return v;
}

void expect_same_verdicts(const Verdicts& a, const Verdicts& b,
                          const char* what) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(static_cast<int>(a[i].err), static_cast<int>(b[i].err))
        << what << " packet " << i;
    EXPECT_EQ(a[i].local, b[i].local) << what << " packet " << i;
    EXPECT_EQ(a[i].hid, b[i].hid) << what << " packet " << i;
  }
}

/// A randomized egress burst mixing every arm: valid (with repeats — the
/// cacheable flows), forged EphIDs, corrupted MACs, expired EphIDs,
/// unknown hosts.
SealedBurst random_egress_burst(RouterFixture& f, std::size_t n,
                                std::vector<EphId>* flow_ids = nullptr) {
  std::vector<EphId> flows;
  for (Hid hid = 1; hid <= RouterFixture::kHosts; ++hid)
    flows.push_back(f.as.codec.issue(hid, f.now + 900, f.rng));
  if (flow_ids) *flow_ids = flows;

  SealedBurst burst;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t pick = f.rng.next_u32() % 100;
    const Hid hid = 1 + (f.rng.next_u32() % RouterFixture::kHosts);
    if (pick < 70) {  // flow-repeating valid packet
      burst.push(f.egress_packet(hid, flows[hid - 1]));
    } else if (pick < 78) {  // forged EphID
      burst.push(f.egress_packet(hid, random_ephid(f.rng)));
    } else if (pick < 86) {  // bad MAC
      auto pkt = f.egress_packet(hid, flows[hid - 1]);
      pkt.mac[0] ^= 1;
      burst.push(pkt);
    } else if (pick < 94) {  // expired EphID
      burst.push(f.egress_packet(
          hid, f.as.codec.issue(hid, f.now - 1 - (f.rng.next_u32() % 100),
                                f.rng)));
    } else {  // unknown host
      burst.push(f.egress_packet(
          hid, f.as.codec.issue(RouterFixture::kHosts + 7, f.now + 900,
                                f.rng)));
    }
  }
  return burst;
}

TEST(FlowCacheEquivalence, RandomizedEgressBurstsMatchUncached) {
  RouterFixture f;
  FlowCache fused_cache(1024);
  FlowCache scalar_cache(1024);

  for (int round = 0; round < 8; ++round) {
    SealedBurst burst = random_egress_burst(f, 192);
    const Verdicts uncached = classify_out(f, burst, true, nullptr);
    const Verdicts uncached_scalar = classify_out(f, burst, false, nullptr);
    // Cold AND warm rounds against the SAME caches: both first-seen and
    // memoized verdicts must agree with the uncached reference.
    const Verdicts fused = classify_out(f, burst, true, &fused_cache);
    const Verdicts fused_warm = classify_out(f, burst, true, &fused_cache);
    const Verdicts scalar = classify_out(f, burst, false, &scalar_cache);
    expect_same_verdicts(uncached, uncached_scalar, "scalar-ref");
    expect_same_verdicts(uncached, fused, "fused-cold");
    expect_same_verdicts(uncached, fused_warm, "fused-warm");
    expect_same_verdicts(uncached, scalar, "scalar-cached");
  }
  // The flow repeats must actually have hit.
  EXPECT_GT(fused_cache.stats().hits, 0u);
  EXPECT_GT(scalar_cache.stats().hits, 0u);
}

TEST(FlowCacheEquivalence, RandomizedIngressBurstsMatchUncached) {
  RouterFixture f;
  FlowCache cache(1024);

  for (int round = 0; round < 8; ++round) {
    SealedBurst burst;
    for (std::size_t i = 0; i < 128; ++i) {
      const std::uint32_t pick = f.rng.next_u32() % 100;
      const Hid hid = 1 + (f.rng.next_u32() % RouterFixture::kHosts);
      if (pick < 60) {
        burst.push(f.ingress_packet(
            f.as.codec.issue(hid, f.now + 900, f.rng)));
      } else if (pick < 75) {  // transit
        burst.push(f.ingress_packet(random_ephid(f.rng), 64999));
      } else if (pick < 90) {  // forged destination
        burst.push(f.ingress_packet(random_ephid(f.rng)));
      } else {  // expired destination
        burst.push(f.ingress_packet(f.as.codec.issue(hid, f.now - 3, f.rng)));
      }
    }
    const Verdicts uncached = classify_in(f, burst, true, nullptr);
    const Verdicts fused = classify_in(f, burst, true, &cache);
    const Verdicts fused_warm = classify_in(f, burst, true, &cache);
    const Verdicts scalar = classify_in(f, burst, false, &cache);
    expect_same_verdicts(uncached, fused, "ingress-cold");
    expect_same_verdicts(uncached, fused_warm, "ingress-warm");
    expect_same_verdicts(uncached, scalar, "ingress-scalar");
  }
  EXPECT_GT(cache.stats().hits, 0u);
}

TEST(FlowCacheEquivalence, ExpiryFlipsAtTheClockEdge) {
  RouterFixture f;
  FlowCache cache(64);
  const ExpTime exp = f.now + 10;
  const EphId eph = f.as.codec.issue(3, exp, f.rng);
  SealedBurst burst;
  burst.push(f.egress_packet(3, eph));

  // Warm the cache while the EphID is valid.
  EXPECT_EQ(classify_out(f, burst, true, &cache)[0].err, Errc::ok);
  ASSERT_GT(cache.stats().insertions, 0u);

  // now == exp: still valid (the uncached check is exp < now).
  f.now = exp;
  EXPECT_EQ(classify_out(f, burst, true, &cache)[0].err, Errc::ok);
  EXPECT_EQ(classify_out(f, burst, true, nullptr)[0].err, Errc::ok);

  // One tick later the cached verdict must flip exactly like the uncached
  // one — served from the cache (no re-verification resurrects it).
  f.now = exp + 1;
  EXPECT_EQ(classify_out(f, burst, true, &cache)[0].err, Errc::expired);
  EXPECT_EQ(classify_out(f, burst, true, nullptr)[0].err, Errc::expired);
  EXPECT_EQ(classify_out(f, burst, false, &cache)[0].err, Errc::expired);
}

TEST(FlowCacheEquivalence, RevocationInvalidatesInstantly) {
  RouterFixture f;
  FlowCache cache(256);
  const EphId eph = f.as.codec.issue(5, f.now + 900, f.rng);
  SealedBurst burst;
  burst.push(f.egress_packet(5, eph));

  EXPECT_EQ(classify_out(f, burst, true, &cache)[0].err, Errc::ok);
  EXPECT_EQ(classify_out(f, burst, true, &cache)[0].err, Errc::ok);
  const std::uint64_t hits_before = cache.stats().hits;
  EXPECT_GT(hits_before, 0u);

  // Fig 5: the AA revokes the EphID. The very next classify must drop —
  // the bumped epoch makes the cached verdict unreachable.
  f.as.revoked.revoke_ephid(eph, f.now + 900, 5);
  EXPECT_EQ(classify_out(f, burst, true, &cache)[0].err, Errc::revoked);
  EXPECT_EQ(classify_out(f, burst, false, &cache)[0].err, Errc::revoked);
  EXPECT_EQ(classify_out(f, burst, true, nullptr)[0].err, Errc::revoked);
}

TEST(FlowCacheEquivalence, HidRevocationAndHostChurnInvalidate) {
  RouterFixture f;
  FlowCache cache(256);
  const EphId e9 = f.as.codec.issue(9, f.now + 900, f.rng);
  const EphId e11 = f.as.codec.issue(11, f.now + 900, f.rng);
  SealedBurst b9, b11;
  b9.push(f.egress_packet(9, e9));
  b11.push(f.egress_packet(11, e11));

  EXPECT_EQ(classify_out(f, b9, true, &cache)[0].err, Errc::ok);
  EXPECT_EQ(classify_out(f, b11, true, &cache)[0].err, Errc::ok);

  // §VIII-G2 escalation: the HID itself is revoked.
  f.as.revoked.revoke_hid(9);
  EXPECT_EQ(classify_out(f, b9, true, &cache)[0].err, Errc::revoked);

  // Host de-registration: the cached verdict for host 11 dies with it.
  f.as.host_db.erase(11);
  EXPECT_EQ(classify_out(f, b11, true, &cache)[0].err, Errc::unknown_host);

  // Re-enrollment with the same keys: verdicts recover and re-cache.
  HostRecord rec;
  rec.hid = 11;
  rec.keys = f.host_keys[10];
  f.as.host_db.upsert(rec);
  EXPECT_EQ(classify_out(f, b11, true, &cache)[0].err, Errc::ok);  // re-cached

  // kHA replacement: the packet was MAC'd under the old key, so the
  // refreshed verdict must reject it — a cache that kept serving the old
  // pre-scheduled CMAC would wrongly accept.
  crypto::SharedSecret seed{};
  f.rng.fill(MutByteSpan(seed.data(), 32));
  rec.keys = HostAsKeys::derive(seed);
  rec.cmac = nullptr;
  f.as.host_db.upsert(rec);  // key replacement bumps the epoch
  EXPECT_EQ(classify_out(f, b11, true, &cache)[0].err, Errc::bad_mac);
  EXPECT_EQ(classify_out(f, b11, true, nullptr)[0].err, Errc::bad_mac);
}

TEST(FlowCacheEquivalence, RevocationStraddlingRandomizedBursts) {
  // The acceptance shape: bursts classified before, across and after a
  // batch of revocations must produce verdicts bit-identical to the
  // uncached path at every step.
  RouterFixture f;
  FlowCache cache(1024);
  std::vector<EphId> flows;
  SealedBurst burst = random_egress_burst(f, 256, &flows);

  expect_same_verdicts(classify_out(f, burst, true, nullptr),
                       classify_out(f, burst, true, &cache), "pre-revoke");

  for (int wave = 0; wave < 6; ++wave) {
    // Revoke a couple of live flows (and one HID) between bursts.
    const Hid h1 = 1 + (f.rng.next_u32() % RouterFixture::kHosts);
    const Hid h2 = 1 + (f.rng.next_u32() % RouterFixture::kHosts);
    f.as.revoked.revoke_ephid(flows[h1 - 1], f.now + 900, h1);
    if (wave == 3) f.as.revoked.revoke_hid(h2);
    const Verdicts uncached = classify_out(f, burst, true, nullptr);
    const Verdicts fused = classify_out(f, burst, true, &cache);
    const Verdicts scalar = classify_out(f, burst, false, &cache);
    expect_same_verdicts(uncached, fused, "straddle-fused");
    expect_same_verdicts(uncached, scalar, "straddle-scalar");
  }
  EXPECT_GT(cache.stats().stale_gen, 0u);  // the straddles actually stale'd
}

TEST(FlowCacheEquivalence, ForgedFingerprintCollisionCannotBorrowVerdict) {
  // An attacker crafting an EphID that shares the 8-byte fingerprint (and
  // thus the bucket) with a cached flow must still be rejected: the probe
  // full-compares the EphID.
  RouterFixture f;
  FlowCache cache(64);
  const EphId real = f.as.codec.issue(2, f.now + 900, f.rng);
  SealedBurst good;
  good.push(f.egress_packet(2, real));
  EXPECT_EQ(classify_out(f, good, true, &cache)[0].err, Errc::ok);

  EphId forged = real;
  forged.bytes[12] ^= 0xff;  // same first 8 bytes, different MAC tail
  SealedBurst bad;
  bad.push(f.egress_packet(2, forged));
  EXPECT_EQ(classify_out(f, bad, true, &cache)[0].err, Errc::decrypt_failed);
}

}  // namespace
}  // namespace apna::core

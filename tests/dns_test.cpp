// DNS subsystem tests (§VII-A): wire codec (boundary names, frame pinning,
// per-byte truncation), domain trie (exact/parent/sibling/override), the
// sharded TTL/negative cache (epoch invalidation, LRU, negative bounds),
// the resolver (cached ≡ uncached across zone updates, upstream
// timeout/backoff), the zone store and the DnsService front (migrated from
// services_test when the resolver subsystem landed).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dns/dns_cache.h"
#include "dns/dns_service.h"
#include "dns/dns_wire.h"
#include "dns/domain_trie.h"
#include "dns/resolver.h"
#include "dns/udp_upstream.h"
#include "services/accountability_agent.h"
#include "services/dns_zone.h"
#include "services/service_identity.h"

namespace apna::dns {
namespace {

// ---- name codec --------------------------------------------------------------

TEST(DnsWire, CanonicalAndValidation) {
  EXPECT_EQ(canonical_name("Shop.Example"), "shop.example");
  EXPECT_TRUE(validate_name("shop.example").ok());
  EXPECT_TRUE(validate_name("a-b_c.d9").ok());
  EXPECT_FALSE(validate_name("").ok());
  EXPECT_FALSE(validate_name("Shop.example").ok());  // reject, don't fold
  EXPECT_FALSE(validate_name(".example").ok());
  EXPECT_FALSE(validate_name("example.").ok());
  EXPECT_FALSE(validate_name("a..b").ok());
  EXPECT_FALSE(validate_name("sp ace.example").ok());
  EXPECT_FALSE(validate_name("uni\xc3\xa9.example").ok());
}

TEST(DnsWire, LabelBoundary) {
  const std::string max_label(kMaxLabelLen, 'a');  // 63 bytes: ok
  EXPECT_TRUE(validate_name(max_label).ok());
  EXPECT_TRUE(validate_name(max_label + ".example").ok());
  const std::string over_label(kMaxLabelLen + 1, 'a');  // 64: rejected
  EXPECT_FALSE(validate_name(over_label).ok());
  EXPECT_FALSE(validate_name(over_label + ".example").ok());
}

TEST(DnsWire, NameLengthBoundary) {
  // Dotted size 253 → encoded 255 (the max): three 63-byte labels plus one
  // 61-byte label.
  const std::string l63(63, 'x');
  const std::string max_name =
      l63 + "." + l63 + "." + l63 + "." + std::string(61, 'x');
  ASSERT_EQ(max_name.size(), 253u);
  ASSERT_EQ(encoded_name_size(max_name), kMaxNameLen);
  EXPECT_TRUE(validate_name(max_name).ok());

  const std::string over_name =
      l63 + "." + l63 + "." + l63 + "." + std::string(62, 'x');
  ASSERT_EQ(encoded_name_size(over_name), kMaxNameLen + 1);
  EXPECT_FALSE(validate_name(over_name).ok());
}

TEST(DnsWire, NameRoundtripAndRejects) {
  wire::MsgWriter w(64);
  ASSERT_TRUE(encode_name(w, "shop.example").ok());
  wire::MsgReader r(w.span());
  auto back = decode_name(r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, "shop.example");
  EXPECT_TRUE(r.done());

  // Encoder refuses non-canonical input outright.
  wire::MsgWriter w2(64);
  EXPECT_FALSE(encode_name(w2, "Shop.example").ok());

  // Decoder refuses non-canonical bytes on the wire (uppercase label).
  Bytes evil = {4, 'S', 'h', 'o', 'p', 0};
  wire::MsgReader r2(ByteSpan(evil.data(), evil.size()));
  EXPECT_FALSE(decode_name(r2).ok());

  // Oversize label length byte.
  Bytes bad_len = {64};
  bad_len.resize(66, 'a');
  bad_len.push_back(0);
  wire::MsgReader r3(ByteSpan(bad_len.data(), bad_len.size()));
  EXPECT_FALSE(decode_name(r3).ok());
}

// ---- frames ------------------------------------------------------------------

core::DnsRecord make_record(const std::string& name, std::uint32_t ipv4) {
  core::DnsRecord rec;
  rec.name = name;
  rec.ipv4 = ipv4;
  rec.cert.aid = 64512;
  rec.cert.exp_time = 1'700'000'900;
  return rec;
}

TEST(DnsWire, QueryFramePinnedAndRoundtrips) {
  QueryFrame q;
  q.id = 0xbeef;
  q.name = "shop.example";

  auto ref = q.serialize();
  ASSERT_TRUE(ref.ok());
  wire::MsgWriter w(64);
  ASSERT_TRUE(q.encode(w).ok());
  // Hot-path codec is byte-identical to the reference codec.
  ASSERT_EQ(w.span().size(), ref->size());
  EXPECT_TRUE(std::equal(ref->begin(), ref->end(), w.span().begin()));

  auto back = QueryFrame::parse(ByteSpan(ref->data(), ref->size()));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->id, q.id);
  EXPECT_EQ(back->name, q.name);
}

TEST(DnsWire, ResponseFramePinnedAndRoundtrips) {
  ResponseFrame resp;
  resp.id = 7;
  resp.rcode = Rcode::ok;
  resp.ttl = 300;
  resp.name = "shop.example";
  resp.record = make_record("shop.example", 0x0a00002a);

  auto ref = resp.serialize();
  ASSERT_TRUE(ref.ok());
  wire::MsgWriter w(600);
  ASSERT_TRUE(resp.encode(w).ok());
  ASSERT_EQ(w.span().size(), ref->size());
  EXPECT_TRUE(std::equal(ref->begin(), ref->end(), w.span().begin()));

  auto back = ResponseFrame::parse(ByteSpan(ref->data(), ref->size()));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->id, resp.id);
  EXPECT_EQ(back->rcode, Rcode::ok);
  EXPECT_EQ(back->ttl, 300u);
  ASSERT_TRUE(back->record.has_value());
  EXPECT_EQ(back->record->name, "shop.example");
  EXPECT_EQ(back->record->ipv4, 0x0a00002au);
}

TEST(DnsWire, RecordPresentIffOk) {
  ResponseFrame nx;
  nx.id = 8;
  nx.rcode = Rcode::nxdomain;
  nx.ttl = 30;
  nx.name = "missing.example";
  auto bytes = nx.serialize();
  ASSERT_TRUE(bytes.ok());
  auto back = ResponseFrame::parse(ByteSpan(bytes->data(), bytes->size()));
  ASSERT_TRUE(back.ok());
  EXPECT_FALSE(back->record.has_value());

  // rcode==ok without a record must not serialize.
  ResponseFrame broken;
  broken.rcode = Rcode::ok;
  broken.name = "x.example";
  EXPECT_FALSE(broken.serialize().ok());
  // ... and nxdomain WITH a record must not either.
  nx.record = make_record("missing.example", 1);
  EXPECT_FALSE(nx.serialize().ok());
}

TEST(DnsWire, PerByteTruncationRejected) {
  QueryFrame q;
  q.id = 321;
  q.name = "a.bb.ccc.dddd.example";
  auto qb = q.serialize();
  ASSERT_TRUE(qb.ok());
  for (std::size_t len = 0; len < qb->size(); ++len)
    EXPECT_FALSE(QueryFrame::parse(ByteSpan(qb->data(), len)).ok())
        << "query prefix " << len;
  Bytes extended = *qb;
  extended.push_back(0);  // trailing byte: whole-buffer strictness
  EXPECT_FALSE(
      QueryFrame::parse(ByteSpan(extended.data(), extended.size())).ok());

  ResponseFrame resp;
  resp.id = 99;
  resp.rcode = Rcode::ok;
  resp.ttl = 60;
  resp.name = "shop.example";
  resp.record = make_record("shop.example", 42);
  auto rb = resp.serialize();
  ASSERT_TRUE(rb.ok());
  for (std::size_t len = 0; len < rb->size(); ++len)
    EXPECT_FALSE(ResponseFrame::parse(ByteSpan(rb->data(), len)).ok())
        << "response prefix " << len;
  Bytes rext = *rb;
  rext.push_back(7);
  EXPECT_FALSE(ResponseFrame::parse(ByteSpan(rext.data(), rext.size())).ok());
}

// ---- domain trie -------------------------------------------------------------

TEST(DomainTrie, ExactParentSibling) {
  DomainTrie<int> trie;
  trie.insert("evil.com", 1);
  trie.insert("good.example", 2);

  std::string matched;
  // Exact match.
  ASSERT_NE(trie.match("evil.com", &matched), nullptr);
  EXPECT_EQ(matched, "evil.com");
  // Parent-suffix match: a rule at evil.com covers every subdomain.
  ASSERT_NE(trie.match("a.b.evil.com", &matched), nullptr);
  EXPECT_EQ(*trie.match("a.b.evil.com", nullptr), 1);
  EXPECT_EQ(matched, "evil.com");
  // Sibling must NOT match: label-boundary, not string-suffix, semantics.
  EXPECT_EQ(trie.match("notevil.com", nullptr), nullptr);
  EXPECT_EQ(trie.match("com", nullptr), nullptr);
  EXPECT_EQ(trie.match("evil.com.example", nullptr), nullptr);
  EXPECT_NE(trie.match("good.example", nullptr), nullptr);
  EXPECT_EQ(trie.size(), 2u);
}

TEST(DomainTrie, LongestMatchWinsAndSplit) {
  DomainTrie<int> trie;
  trie.insert("evil.com", 1);
  trie.insert("ok.evil.com", 2);  // splits the compressed edge
  EXPECT_EQ(*trie.match("x.evil.com", nullptr), 1);
  EXPECT_EQ(*trie.match("ok.evil.com", nullptr), 2);
  EXPECT_EQ(*trie.match("deep.ok.evil.com", nullptr), 2);

  // Sibling insert under the split point.
  trie.insert("bad.evil.com", 3);
  EXPECT_EQ(*trie.match("bad.evil.com", nullptr), 3);
  EXPECT_EQ(*trie.match("ok.evil.com", nullptr), 2);

  EXPECT_TRUE(trie.erase("ok.evil.com"));
  EXPECT_EQ(*trie.match("ok.evil.com", nullptr), 1);  // parent rule again
  EXPECT_FALSE(trie.erase("never-inserted.com"));
  EXPECT_GT(trie.memory_bytes(), 0u);
}

// ---- cache -------------------------------------------------------------------

DnsCache::Config small_cache(std::size_t capacity) {
  DnsCache::Config cfg;
  cfg.capacity = capacity;
  cfg.shard_count = 1;  // deterministic occupancy in tests
  return cfg;
}

TEST(DnsCache, HitExpiryAndEpochInvalidation) {
  core::VerdictEpoch epoch;
  DnsCache cache(small_cache(64), epoch);
  const auto rec = make_record("shop.example", 42);

  cache.insert("shop.example", rec, /*expires_at=*/1000, epoch.current());
  core::DnsRecord out;
  EXPECT_EQ(cache.lookup("shop.example", 500, &out), DnsCache::Outcome::hit);
  EXPECT_EQ(out.name, "shop.example");
  EXPECT_EQ(out.ipv4, 42u);

  // TTL expiry is checked on read and the entry erased.
  EXPECT_EQ(cache.lookup("shop.example", 1000, &out), DnsCache::Outcome::miss);
  EXPECT_EQ(cache.stats().expired, 1u);
  EXPECT_EQ(cache.size(), 0u);

  // A zone-epoch bump kills entries stamped under the old generation.
  cache.insert("shop.example", rec, 1000, epoch.current());
  epoch.bump();
  EXPECT_EQ(cache.lookup("shop.example", 500, &out), DnsCache::Outcome::miss);
  EXPECT_EQ(cache.stats().stale_epoch, 1u);
}

TEST(DnsCache, InsertStampedBeforeBumpIsStillborn) {
  // The epoch the CALLER observed before its zone read is what gets
  // stamped; if the zone mutates in between, the entry must die.
  core::VerdictEpoch epoch;
  DnsCache cache(small_cache(64), epoch);
  const std::uint64_t gen = epoch.current();
  epoch.bump();  // zone mutated between the caller's read and the insert
  cache.insert("race.example", make_record("race.example", 1), 1000, gen);
  core::DnsRecord out;
  EXPECT_EQ(cache.lookup("race.example", 1, &out), DnsCache::Outcome::miss);
}

TEST(DnsCache, LruEvictionOrder) {
  core::VerdictEpoch epoch;
  DnsCache cache(small_cache(4), epoch);  // one stripe, 4 slots
  for (int i = 0; i < 4; ++i)
    cache.insert("n" + std::to_string(i) + ".example", make_record("x", i),
                 1000, epoch.current());
  // Touch n0 so n1 becomes LRU.
  core::DnsRecord out;
  EXPECT_EQ(cache.lookup("n0.example", 1, &out), DnsCache::Outcome::hit);
  cache.insert("n4.example", make_record("x", 4), 1000, epoch.current());
  EXPECT_EQ(cache.lookup("n1.example", 1, &out), DnsCache::Outcome::miss);
  EXPECT_EQ(cache.lookup("n0.example", 1, &out), DnsCache::Outcome::hit);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(DnsCache, NegativeTtlBound) {
  core::VerdictEpoch epoch;
  auto cfg = small_cache(64);
  cfg.max_negative_ttl = 5;
  DnsCache cache(cfg, epoch);
  // Ask for a huge TTL; the clamp wins.
  cache.insert_negative("gone.example", /*now=*/100, /*ttl=*/100000,
                        epoch.current());
  EXPECT_EQ(cache.lookup("gone.example", 104, nullptr),
            DnsCache::Outcome::negative);
  EXPECT_EQ(cache.lookup("gone.example", 105, nullptr),
            DnsCache::Outcome::miss);  // expired at now + 5
}

TEST(DnsCache, NegativeOccupancyBoundAndNoPositiveEviction) {
  core::VerdictEpoch epoch;
  auto cfg = small_cache(64);
  cfg.negative_percent = 25;  // 16 of 64 slots
  DnsCache cache(cfg, epoch);

  // A storm of random NXDOMAINs stays inside its slice.
  for (int i = 0; i < 200; ++i)
    cache.insert_negative("junk" + std::to_string(i) + ".example", 1, 30,
                          epoch.current());
  EXPECT_LE(cache.negative_size(), cache.negative_capacity());
  EXPECT_EQ(cache.negative_capacity(), 16u);

  // Fill the whole stripe with positives (displacing the negatives is
  // allowed — positives always win slots)...
  for (int i = 0; i < 64; ++i)
    cache.insert("site" + std::to_string(i) + ".example", make_record("x", i),
                 1000, epoch.current());
  EXPECT_EQ(cache.size(), 64u);
  // ... then a negative insert against a full-of-positives stripe must NOT
  // evict a positive: it is simply not cached.
  const auto before = cache.stats();
  cache.insert_negative("flood.example", 1, 30, epoch.current());
  EXPECT_EQ(cache.stats().negative_uncached, before.negative_uncached + 1);
  EXPECT_EQ(cache.stats().evictions, before.evictions);
  for (int i = 0; i < 64; ++i)
    EXPECT_EQ(
        cache.lookup("site" + std::to_string(i) + ".example", 1, nullptr),
        DnsCache::Outcome::hit)
        << i;
}

TEST(DnsCache, MemoryStatsSanity) {
  core::VerdictEpoch epoch;
  DnsCache cache(small_cache(1024), epoch);
  for (int i = 0; i < 512; ++i)
    cache.insert("host" + std::to_string(i) + ".zone.example",
                 make_record("x", i), 1000, epoch.current());
  const auto m = cache.memory_stats();
  EXPECT_EQ(m.entries, 512u);
  EXPECT_GT(m.name_bytes, 0u);
  EXPECT_GT(m.record_bytes, 0u);
  EXPECT_GT(m.total(), 0u);
  EXPECT_GT(m.bytes_per_name(), 0.0);
}

// ---- zone --------------------------------------------------------------------

TEST(DnsZone, StatsAndBorrowPath) {
  services::DnsZone zone;
  const std::uint64_t gen0 = zone.epoch().current();
  zone.put(make_record("shop.example", 42));
  EXPECT_GT(zone.epoch().current(), gen0);  // inserts bump too (negatives!)

  std::uint32_t seen = 0;
  EXPECT_TRUE(zone.with_record(
      "shop.example", [&](const core::DnsRecord& r) { seen = r.ipv4; }));
  EXPECT_EQ(seen, 42u);
  EXPECT_FALSE(
      zone.with_record("missing.example", [&](const core::DnsRecord&) {}));

  ASSERT_TRUE(zone.get("shop.example").has_value());
  const std::uint64_t gen1 = zone.epoch().current();
  EXPECT_TRUE(zone.erase("shop.example"));
  EXPECT_GT(zone.epoch().current(), gen1);
  EXPECT_FALSE(zone.erase("shop.example"));  // no bump, no count

  const auto s = zone.stats();
  EXPECT_EQ(s.inserts, 1u);
  EXPECT_EQ(s.erases, 1u);
  EXPECT_EQ(s.hits, 2u);    // borrow hit + get hit
  EXPECT_EQ(s.misses, 1u);  // borrow miss
}

// ---- resolver ----------------------------------------------------------------

struct ResolverFixture {
  services::DnsZone zone;
  net::EventLoop loop;
  Resolver::Config cfg;
  ResolverFixture() {
    cfg.cache.capacity = 256;
    cfg.cache.shard_count = 1;
  }
};

TEST(Resolver, CachedEqualsUncachedAcrossZoneUpdates) {
  ResolverFixture f;
  Resolver resolver(f.zone, f.loop, f.cfg);
  f.zone.put(make_record("shop.example", 1));
  const core::ExpTime now = f.loop.now_seconds();

  const auto cold = resolver.resolve("shop.example", now);
  ASSERT_EQ(cold.status, Resolver::Status::ok);
  EXPECT_EQ(cold.source, Resolver::Source::zone);
  const auto warm = resolver.resolve("shop.example", now);
  ASSERT_EQ(warm.status, Resolver::Status::ok);
  EXPECT_EQ(warm.source, Resolver::Source::cache);
  // Cached answer is identical to the zone answer.
  EXPECT_EQ(warm.record.name, cold.record.name);
  EXPECT_EQ(warm.record.ipv4, cold.record.ipv4);
  EXPECT_EQ(warm.record.cert, cold.record.cert);

  // Zone UPDATE: the epoch bump invalidates the cached answer, so the next
  // lookup serves the new truth — cached ≡ uncached across updates.
  f.zone.put(make_record("shop.example", 2));
  const auto fresh = resolver.resolve("shop.example", now);
  ASSERT_EQ(fresh.status, Resolver::Status::ok);
  EXPECT_EQ(fresh.source, Resolver::Source::zone);
  EXPECT_EQ(fresh.record.ipv4, 2u);
  EXPECT_GE(resolver.stats().cache_hits, 1u);

  // Zone ERASE: cached positive dies with the epoch, answer flips to
  // NXDOMAIN immediately.
  resolver.resolve("shop.example", now);  // warm the cache again
  f.zone.erase("shop.example");
  EXPECT_EQ(resolver.resolve("shop.example", now).status,
            Resolver::Status::nxdomain);
}

TEST(Resolver, NegativeCachingIsTtlBoundedAndInsertInvalidates) {
  ResolverFixture f;
  f.cfg.negative_ttl = 1000;         // resolver asks big...
  f.cfg.cache.max_negative_ttl = 5;  // ...cache clamps hard
  Resolver resolver(f.zone, f.loop, f.cfg);
  const core::ExpTime now = f.loop.now_seconds();

  EXPECT_EQ(resolver.resolve("new.example", now).status,
            Resolver::Status::nxdomain);
  // Second lookup hits the negative cache.
  const auto neg = resolver.resolve("new.example", now);
  EXPECT_EQ(neg.status, Resolver::Status::nxdomain);
  EXPECT_EQ(neg.source, Resolver::Source::negative_cache);

  // The TTL bound holds regardless of the configured negative_ttl.
  EXPECT_EQ(resolver.resolve("new.example", now + 5).source,
            Resolver::Source::zone);

  // A zone INSERT invalidates cached negatives (the put bumps the epoch):
  // no stale NXDOMAIN after publication.
  resolver.resolve("new.example", now);  // re-warm negative
  f.zone.put(make_record("new.example", 7));
  const auto a = resolver.resolve("new.example", now);
  EXPECT_EQ(a.status, Resolver::Status::ok);
  EXPECT_EQ(a.record.ipv4, 7u);
}

TEST(Resolver, PolicyBlocksSubdomainsNeverWarmsCache) {
  ResolverFixture f;
  Resolver resolver(f.zone, f.loop, f.cfg);
  f.zone.put(make_record("a.b.evil.example", 1));
  resolver.policy().block("evil.example");
  const core::ExpTime now = f.loop.now_seconds();

  const auto blocked = resolver.resolve("a.b.evil.example", now);
  EXPECT_EQ(blocked.status, Resolver::Status::blocked);
  EXPECT_EQ(blocked.source, Resolver::Source::policy);
  EXPECT_EQ(resolver.cache().size(), 0u);

  // Siblings unaffected; monitor rules observe but do not block.
  f.zone.put(make_record("notevil.example", 2));
  EXPECT_EQ(resolver.resolve("notevil.example", now).status,
            Resolver::Status::ok);
  resolver.policy().monitor("watched.example");
  f.zone.put(make_record("x.watched.example", 3));
  EXPECT_EQ(resolver.resolve("x.watched.example", now).status,
            Resolver::Status::ok);
  EXPECT_EQ(resolver.stats().monitored, 1u);
  EXPECT_EQ(resolver.stats().policy_blocked, 1u);
}

TEST(Resolver, InvalidNamesRejectedAndCanonicalized) {
  ResolverFixture f;
  Resolver resolver(f.zone, f.loop, f.cfg);
  const core::ExpTime now = f.loop.now_seconds();
  EXPECT_EQ(resolver.resolve("bad..name", now).status,
            Resolver::Status::invalid);
  EXPECT_EQ(resolver.resolve("", now).status, Resolver::Status::invalid);
  // Mixed case folds at the resolver edge.
  f.zone.put(make_record("shop.example", 9));
  EXPECT_EQ(resolver.resolve("SHOP.Example", now).status,
            Resolver::Status::ok);
}

// Upstream forwarding: a client resolver (empty zone) forwarding to an
// authoritative server resolver over a lossy "wire".
struct ForwardingFixture {
  net::EventLoop loop;
  services::DnsZone client_zone;
  services::DnsZone server_zone;
  Resolver::Config cfg;
  Resolver client{client_zone, loop, cfg};
  Resolver server{server_zone, loop, cfg};
  std::size_t dropped = 0;
  bool drop_all = false;

  ForwardingFixture() {
    server_zone.put(make_record("far.example", 77));
    client.set_upstream([this](Bytes frame) {
      if (drop_all) {
        ++dropped;
        return;
      }
      Bytes resp = server.answer_query(ByteSpan(frame.data(), frame.size()));
      if (!resp.empty())
        client.on_upstream_frame(ByteSpan(resp.data(), resp.size()));
    });
  }
};

TEST(Resolver, ForwardsUpstreamAndCachesAnswer) {
  ForwardingFixture f;
  std::vector<Resolver::Answer> got;
  f.client.resolve_async("far.example",
                         [&](const Resolver::Answer& a) { got.push_back(a); });
  f.loop.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].status, Resolver::Status::ok);
  EXPECT_EQ(got[0].source, Resolver::Source::upstream);
  EXPECT_EQ(got[0].record.ipv4, 77u);
  EXPECT_EQ(f.client.stats().forwarded, 1u);

  // The answer was cached: the next lookup is local.
  got.clear();
  f.client.resolve_async("far.example",
                         [&](const Resolver::Answer& a) { got.push_back(a); });
  ASSERT_EQ(got.size(), 1u);  // answered inline
  EXPECT_EQ(got[0].source, Resolver::Source::cache);

  // Upstream NXDOMAIN lands in the negative cache.
  got.clear();
  f.client.resolve_async("nothere.example",
                         [&](const Resolver::Answer& a) { got.push_back(a); });
  f.loop.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].status, Resolver::Status::nxdomain);
  EXPECT_EQ(f.client.cache().negative_size(), 1u);
}

TEST(Resolver, UpstreamTimeoutBacksOffThenServfail) {
  ForwardingFixture f;
  f.drop_all = true;
  std::vector<Resolver::Answer> got;
  const net::TimeUs t0 = f.loop.now();
  f.client.resolve_async("far.example",
                         [&](const Resolver::Answer& a) { got.push_back(a); });
  f.loop.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].status, Resolver::Status::servfail);
  // 3 attempts total: initial + 2 retransmits, each sent on the wire.
  EXPECT_EQ(f.dropped, 3u);
  EXPECT_EQ(f.client.stats().retransmits, 2u);
  EXPECT_EQ(f.client.stats().upstream_timeouts, 1u);
  // Exponential backoff: 250ms + 500ms + 1000ms before giving up.
  EXPECT_EQ(f.loop.now() - t0, 250'000u + 500'000u + 1'000'000u);
  // servfail is NEVER cached: a later attempt goes back on the wire.
  f.drop_all = false;
  got.clear();
  f.client.resolve_async("far.example",
                         [&](const Resolver::Answer& a) { got.push_back(a); });
  f.loop.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].status, Resolver::Status::ok);
}

TEST(Resolver, MismatchedUpstreamAnswerNeverFillsCache) {
  ForwardingFixture f;
  // Capture the outgoing query so we can forge answers against its id.
  std::optional<QueryFrame> seen;
  f.client.set_upstream([&](Bytes frame) {
    auto q = QueryFrame::parse(ByteSpan(frame.data(), frame.size()));
    if (q && !seen) seen = *q;
  });
  std::vector<Resolver::Answer> got;
  f.client.resolve_async("far.example",
                         [&](const Resolver::Answer& a) { got.push_back(a); });
  ASSERT_TRUE(seen.has_value());

  // Right id, WRONG question name — the off-path forgery shape.
  ResponseFrame forged;
  forged.id = seen->id;
  forged.rcode = Rcode::ok;
  forged.ttl = 300;
  forged.name = "attacker.example";
  forged.record = make_record("attacker.example", 666);
  auto fb = forged.serialize();
  ASSERT_TRUE(fb.ok());
  f.client.on_upstream_frame(ByteSpan(fb->data(), fb->size()));
  EXPECT_TRUE(got.empty());  // pending query unaffected
  EXPECT_EQ(f.client.stats().upstream_mismatched, 1u);
  EXPECT_EQ(f.client.cache().size(), 0u);
  f.loop.run();  // drain the timeout chain
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].status, Resolver::Status::servfail);
}

// ---- service + accountability integration ------------------------------------

struct DnsServiceFixture {
  crypto::ChaChaRng rng{2026};
  net::EventLoop loop;
  core::AsState as{64512, core::AsSecrets::generate(rng)};
  core::AsDirectory dir;
  services::ServiceIdentity aa_ident = services::make_service_identity(
      as, 2, loop.now_seconds() + 86400, 0, nullptr, rng);
  services::ServiceIdentity dns_ident = services::make_service_identity(
      as, 3, loop.now_seconds() + 86400, 0, &aa_ident.cert.ephid, rng);
  services::AccountabilityAgent aa{as, dir, loop, aa_ident};
  services::DnsZone zone;
  Resolver resolver{zone, loop, [] {
                      Resolver::Config cfg;
                      cfg.cache.capacity = 256;
                      return cfg;
                    }()};
  DnsService dns{as, dir, loop, rng, dns_ident, resolver};

  // A customer host EphID published under records (OUR AS — revocable).
  core::EphIdKeyPair host_kp = core::EphIdKeyPair::generate(rng);
  core::EphIdCertificate host_cert;

  DnsServiceFixture() {
    core::AsPublicInfo info;
    info.aid = as.aid;
    info.sign_pub = as.secrets.sign.pub;
    info.dh_pub = as.secrets.dh.pub;
    info.aa_ephid = aa_ident.cert.ephid;
    dir.register_as(info);

    resolver.set_accountability(&aa);
    aa.set_domain_policy(&resolver.policy());

    host_cert.ephid = as.codec.issue(4242, loop.now_seconds() + 900, rng);
    host_cert.exp_time = loop.now_seconds() + 900;
    host_cert.pub = host_kp.pub;
    host_cert.aid = as.aid;
    host_cert.aa_ephid = aa_ident.cert.ephid;
    host_cert.sign_with(as.secrets.sign);
  }

  core::DnsPublish make_publish(const std::string& name, std::uint32_t ipv4) {
    core::DnsPublish p;
    p.name = name;
    p.cert = host_cert;
    p.ipv4 = ipv4;
    return p;
  }
};

TEST(DnsService, PublishResolveRoundtrip) {
  DnsServiceFixture f;
  ASSERT_TRUE(f.dns.publish(f.make_publish("shop.example", 0x0a00002a)).ok());
  EXPECT_EQ(f.zone.size(), 1u);

  core::DnsQuery q;
  q.name = "shop.example";
  auto resp = f.dns.resolve(q);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 0);
  ASSERT_TRUE(resp->record.has_value());
  EXPECT_EQ(resp->record->cert, f.host_cert);
  EXPECT_EQ(resp->record->ipv4, 0x0a00002au);
  // Record carries a valid DNSSEC-style signature.
  EXPECT_TRUE(crypto::ed25519_verify(f.dns.record_key(), resp->record->tbs(),
                                     resp->record->sig));

  // Cached answer (second resolve) is identical — ed25519 re-signing is
  // deterministic, so cached ≡ uncached at the service level too.
  auto again = f.dns.resolve(q);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->record->sig, resp->record->sig);
  EXPECT_GE(f.resolver.stats().cache_hits, 1u);
}

TEST(DnsService, NxDomain) {
  DnsServiceFixture f;
  core::DnsQuery q;
  q.name = "missing.example";
  auto resp = f.dns.resolve(q);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 1);
  EXPECT_FALSE(resp->record.has_value());
  EXPECT_EQ(f.dns.stats().nxdomain, 1u);
}

TEST(DnsService, PublishRejectsInvalidCert) {
  DnsServiceFixture f;
  core::DnsPublish pub;
  pub.name = "bogus.example";
  pub.cert.aid = 4243;  // unknown AS, unsigned cert
  EXPECT_FALSE(f.dns.publish(pub).ok());
  EXPECT_EQ(f.zone.size(), 0u);
}

TEST(DnsService, SharedZoneAcrossServices) {
  // Two DNS services over one zone: publication through one is visible via
  // the other (the "public DNS" model). Each has its own resolver cache.
  DnsServiceFixture f;
  services::ServiceIdentity other_ident = services::make_service_identity(
      f.as, 9, f.loop.now_seconds() + 86400, 0, &f.aa_ident.cert.ephid,
      f.rng);
  Resolver other_resolver(f.zone, f.loop, Resolver::Config{});
  DnsService other(f.as, f.dir, f.loop, f.rng, other_ident, other_resolver);

  ASSERT_TRUE(f.dns.publish(f.make_publish("mirror.example", 1)).ok());
  core::DnsQuery q;
  q.name = "mirror.example";
  auto resp = other.resolve(q);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 0);
}

TEST(DnsService, DomainPolicyBlocksThroughShutoffPath) {
  DnsServiceFixture f;
  // Publish first, then block the parent domain: the sweep must revoke the
  // publishing EphID through the AA's Fig-5 tail and erase the record.
  ASSERT_TRUE(f.dns.publish(f.make_publish("a.b.evil.example", 5)).ok());
  ASSERT_TRUE(f.dns.publish(f.make_publish("fine.example", 6)).ok());

  const std::size_t swept =
      f.resolver.block_domain("evil.example", f.loop.now_seconds());
  EXPECT_EQ(swept, 1u);
  // The EphID under the blocked name is revoked via the real revocation
  // path (MAC_kAS instruction → revoked_ids), and the record is gone.
  EXPECT_TRUE(f.as.revoked.is_revoked(f.host_cert.ephid));
  EXPECT_EQ(f.aa.stats().domain_blocks, 1u);
  EXPECT_GE(f.aa.stats().revocation_instructions, 1u);
  EXPECT_FALSE(f.zone.get("a.b.evil.example").has_value());
  ASSERT_TRUE(f.zone.get("fine.example").has_value());

  // Queries for ANY subdomain of the blocked parent refuse (status 2).
  core::DnsQuery q;
  q.name = "c.evil.example";
  auto resp = f.dns.resolve(q);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 2);
  EXPECT_EQ(f.dns.stats().blocked, 1u);
  // Siblings still resolve.
  q.name = "fine.example";
  EXPECT_EQ(f.dns.resolve(q)->status, 0);

  // New publications under the blocked parent are refused AND revoked.
  auto r = f.dns.publish(f.make_publish("new.evil.example", 7));
  EXPECT_EQ(r.code(), Errc::unauthorized);
  EXPECT_EQ(f.zone.get("new.evil.example").has_value(), false);
  EXPECT_EQ(f.aa.stats().domain_blocks, 2u);
  EXPECT_EQ(f.resolver.stats().publish_blocked, 1u);
}

// ---- real-socket upstream (§VII-A forwarding over net::UdpTransport) ---------

// Same forwarding contract as ForwardingFixture, but the QueryFrame /
// ResponseFrame exchange crosses two real kernel UDP sockets on loopback,
// wrapped in APNA control packets by UdpUpstream / UdpUpstreamServer.
//
// NOTE: the resolver's retransmit timers live on the VIRTUAL-time event
// loop — loop.run() would fast-forward straight to servfail before any
// real datagram arrives. Pump the transports directly instead.
TEST(UdpUpstream, LoopbackRoundTrip) {
  net::UdpTransport::Config tc;
  auto client_t = net::UdpTransport::open(tc);
  auto server_t = net::UdpTransport::open(tc);
  if (!client_t.ok() || !server_t.ok())
    GTEST_SKIP() << "no loopback UDP sockets in this sandbox";

  auto server_peer =
      (*client_t)->add_peer("127.0.0.1", (*server_t)->local_port());
  auto client_peer =
      (*server_t)->add_peer("127.0.0.1", (*client_t)->local_port());
  ASSERT_TRUE(server_peer.ok());
  ASSERT_TRUE(client_peer.ok());

  net::EventLoop loop;
  Resolver::Config cfg;
  services::DnsZone client_zone;
  services::DnsZone server_zone;
  Resolver client(client_zone, loop, cfg);
  Resolver server(server_zone, loop, cfg);
  server_zone.put(make_record("far.example", 77));

  UdpUpstreamServer srv(**server_t, /*local_aid=*/2);
  srv.attach(server);
  UdpUpstream up(**client_t, *server_peer, /*local_aid=*/1, /*server_aid=*/2);
  up.attach(client);

  std::vector<Resolver::Answer> got;
  client.resolve_async("far.example",
                       [&](const Resolver::Answer& a) { got.push_back(a); });
  for (int i = 0; i < 200 && got.empty(); ++i) {
    srv.poll(10);
    up.poll(10);
  }
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].status, Resolver::Status::ok);
  EXPECT_EQ(got[0].source, Resolver::Source::upstream);
  EXPECT_EQ(got[0].record.ipv4, 77u);
  EXPECT_EQ(up.stats().queries_sent, 1u);
  EXPECT_EQ(up.stats().responses_delivered, 1u);
  EXPECT_EQ(up.stats().send_errors, 0u);
  EXPECT_EQ(srv.stats().queries_answered, 1u);

  // The answer landed in the client cache: the repeat never touches the
  // socket pair again.
  got.clear();
  client.resolve_async("far.example",
                       [&](const Resolver::Answer& a) { got.push_back(a); });
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].source, Resolver::Source::cache);
  EXPECT_EQ(up.stats().queries_sent, 1u);
}

}  // namespace
}  // namespace apna::dns

// Tests for the §VIII discussion-section extensions:
//   * voluntary EphID revocation (§VIII-G2),
//   * path-stamped on-path shutoff authorization (§VIII-C),
//   * in-network replay filtering at the source AS (§VIII-D future work).
#include <gtest/gtest.h>

#include "apna/internet.h"
#include "util/hex.h"

namespace apna {
namespace {

AutonomousSystem::Config stamped_as(core::Aid aid, const std::string& name,
                                    bool replay_filter = false) {
  AutonomousSystem::Config cfg;
  cfg.aid = aid;
  cfg.name = name;
  cfg.br.stamp_path = true;
  cfg.br.replay_filter = replay_filter;
  return cfg;
}

// ---- Path stamp wire format ----------------------------------------------------

TEST(PathStamp, SerializeParseRoundtrip) {
  wire::Packet p;
  p.src_aid = 1;
  p.dst_aid = 2;
  p.payload = to_bytes("x");
  p.set_nonce(99);
  p.stamp_path(100);
  p.stamp_path(200);
  p.stamp_path(300);
  auto parsed = wire::Packet::parse(p.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->has_path_stamp());
  EXPECT_EQ(parsed->path_stamp, (std::vector<wire::Aid>{100, 200, 300}));
  EXPECT_EQ(parsed->nonce, 99u);
}

TEST(PathStamp, DoesNotInvalidateSourceMac) {
  // Routers stamp in flight; the source MAC must survive (§VIII-C design).
  crypto::ChaChaRng rng(3);
  const crypto::AesCmac key(rng.bytes(16));
  wire::Packet p;
  p.src_aid = 1;
  p.dst_aid = 2;
  p.payload = rng.bytes(50);
  core::stamp_packet_mac(key, p);
  ASSERT_TRUE(core::verify_packet_mac(key, p));

  wire::Packet stamped = p;
  stamped.stamp_path(777);
  stamped.stamp_path(778);
  EXPECT_TRUE(core::verify_packet_mac(key, stamped));
  // But the payload is still protected.
  stamped.payload[0] ^= 1;
  EXPECT_FALSE(core::verify_packet_mac(key, stamped));
}

// ---- On-path shutoff (§VIII-C) ---------------------------------------------------

struct StampedWorld {
  Internet net{55};
  AutonomousSystem* src_as;
  AutonomousSystem* transit;
  AutonomousSystem* dst_as;

  StampedWorld() {
    src_as = &net.add_as(stamped_as(100, "src"));
    transit = &net.add_as(stamped_as(200, "transit"));
    dst_as = &net.add_as(stamped_as(300, "dst"));
    net.link(100, 200, 2000);
    net.link(200, 300, 2000);
  }
};

TEST(OnPathShutoff, TransitAsStampsAppearInDeliveredPackets) {
  StampedWorld w;
  host::Host& a = w.src_as->add_host("a");
  host::Host& b = w.dst_as->add_host("b");
  ASSERT_TRUE(provision_ephids(a, w.net.loop(), 1).ok());
  ASSERT_TRUE(provision_ephids(b, w.net.loop(), 1).ok());

  std::optional<wire::Packet> at_dst;
  w.net.network().add_tap(
      [&](std::uint32_t, std::uint32_t to, const wire::PacketView& p) {
        if (to == 300 && p.proto() == wire::NextProto::data)
          at_dst = p.to_owned();
      });
  auto sid = a.connect(b.pool().entries().front()->cert, {},
                       [](Result<std::uint64_t>) {});
  (void)a.send_data(*sid, to_bytes("payload"));
  w.net.run();
  ASSERT_TRUE(at_dst.has_value());
  // Source AS stamped at egress; transit stamped while forwarding.
  EXPECT_EQ(at_dst->path_stamp, (std::vector<wire::Aid>{100, 200}));
  // The packet still passed every MAC check en route and was delivered.
  EXPECT_GT(b.stats().data_frames_received, 0u);
}

TEST(OnPathShutoff, TransitAaCanRevoke) {
  StampedWorld w;
  host::Host& attacker = w.src_as->add_host("attacker");
  host::Host& victim = w.dst_as->add_host("victim");
  ASSERT_TRUE(provision_ephids(attacker, w.net.loop(), 1).ok());
  ASSERT_TRUE(provision_ephids(victim, w.net.loop(), 1).ok());

  std::optional<wire::Packet> observed;
  w.net.network().add_tap(
      [&](std::uint32_t from, std::uint32_t to, const wire::PacketView& p) {
        // The transit AS observes the packet on its egress link (already
        // carrying both stamps).
        if (from == 200 && to == 300 && p.proto() == wire::NextProto::data)
          observed = p.to_owned();
      });
  auto sid = attacker.connect(victim.pool().entries().front()->cert, {},
                              [](Result<std::uint64_t>) {});
  (void)attacker.send_data(*sid, to_bytes("flood"));
  w.net.run();
  ASSERT_TRUE(observed.has_value());
  ASSERT_EQ(observed->path_stamp.size(), 2u);

  // The TRANSIT AS's agent files the request with the SOURCE AS's agent.
  const wire::PacketBuf observed_buf = observed->seal();
  const auto req = w.transit->aa().make_onpath_request(observed_buf.view());
  const auto result =
      w.src_as->aa().process(req, w.net.loop().now_seconds());
  EXPECT_TRUE(result.ok()) << errc_name(result.code());
  EXPECT_EQ(w.src_as->aa().stats().onpath_accepted, 1u);

  core::EphId src;
  src.bytes = observed->src_ephid;
  EXPECT_TRUE(w.src_as->state().revoked.is_revoked(src));
}

TEST(OnPathShutoff, OffPathAsRejected) {
  StampedWorld w;
  // A fourth AS that is NOT on the path.
  auto& off_path = w.net.add_as(stamped_as(400, "off-path"));
  w.net.link(300, 400, 2000);

  host::Host& attacker = w.src_as->add_host("attacker");
  host::Host& victim = w.dst_as->add_host("victim");
  ASSERT_TRUE(provision_ephids(attacker, w.net.loop(), 1).ok());
  ASSERT_TRUE(provision_ephids(victim, w.net.loop(), 1).ok());

  std::optional<wire::Packet> observed;
  w.net.network().add_tap(
      [&](std::uint32_t, std::uint32_t to, const wire::PacketView& p) {
        if (to == 300 && p.proto() == wire::NextProto::data)
          observed = p.to_owned();
      });
  auto sid = attacker.connect(victim.pool().entries().front()->cert, {},
                              [](Result<std::uint64_t>) {});
  (void)attacker.send_data(*sid, to_bytes("flood"));
  w.net.run();
  ASSERT_TRUE(observed.has_value());

  const wire::PacketBuf observed_buf = observed->seal();
  const auto req = off_path.aa().make_onpath_request(observed_buf.view());
  EXPECT_EQ(w.src_as->aa().process(req, w.net.loop().now_seconds()).code(),
            Errc::unauthorized);
}

TEST(OnPathShutoff, HostCannotForgeStampAuthorization) {
  // A non-service certificate never qualifies via the path stamp, even if
  // the AID matches: the on-path rule applies only to AS infrastructure.
  StampedWorld w;
  host::Host& attacker = w.src_as->add_host("attacker");
  host::Host& bystander = w.transit->add_host("bystander");
  host::Host& victim = w.dst_as->add_host("victim");
  ASSERT_TRUE(provision_ephids(attacker, w.net.loop(), 1).ok());
  ASSERT_TRUE(provision_ephids(bystander, w.net.loop(), 1).ok());
  ASSERT_TRUE(provision_ephids(victim, w.net.loop(), 1).ok());

  std::optional<wire::Packet> observed;
  w.net.network().add_tap(
      [&](std::uint32_t, std::uint32_t to, const wire::PacketView& p) {
        if (to == 300 && p.proto() == wire::NextProto::data)
          observed = p.to_owned();
      });
  auto sid = attacker.connect(victim.pool().entries().front()->cert, {},
                              [](Result<std::uint64_t>) {});
  (void)attacker.send_data(*sid, to_bytes("flood"));
  w.net.run();
  ASSERT_TRUE(observed.has_value());

  // A host in the transit AS (AID 200 IS on the stamp) signs the request
  // with its ordinary host certificate — must be rejected.
  core::ShutoffRequest req;
  req.offending_packet = observed->serialize();
  const auto& owned = *bystander.pool().entries().front();
  req.sig = owned.kp.sign(req.offending_packet);
  req.dst_cert = owned.cert;
  EXPECT_EQ(w.src_as->aa().process(req, w.net.loop().now_seconds()).code(),
            Errc::unauthorized);
}

// ---- Voluntary revocation (§VIII-G2) ------------------------------------------------

TEST(VoluntaryRevoke, HostRetiresItsOwnEphId) {
  Internet net{56};
  auto& as_a = net.add_as(100, "A");
  auto& as_b = net.add_as(300, "B");
  net.link(100, 300, 2000);
  host::Host& a = as_a.add_host("a");
  host::Host& b = as_b.add_host("b");
  ASSERT_TRUE(provision_ephids(a, net.loop(), 2).ok());
  ASSERT_TRUE(provision_ephids(b, net.loop(), 1).ok());

  const core::EphId target = a.pool().entries().front()->cert.ephid;
  std::optional<Result<void>> result;
  ASSERT_TRUE(a.revoke_own_ephid(target, [&](Result<void> r) {
    result = std::move(r);
  }).ok());
  net.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok());
  EXPECT_TRUE(as_a.state().revoked.is_revoked(target));
  EXPECT_EQ(as_a.aa().stats().voluntary_revocations, 1u);
  // The pool no longer hands it out.
  EXPECT_TRUE(a.pool().entries().front()->revoked_locally);

  // The second EphID still works end to end.
  std::string got;
  b.set_data_handler([&](std::uint64_t, ByteSpan d) { got = to_string(d); });
  auto sid = a.connect(b.pool().entries().front()->cert, {},
                       [](Result<std::uint64_t>) {});
  ASSERT_TRUE(sid.ok());
  (void)a.send_data(*sid, to_bytes("still fine"));
  net.run();
  EXPECT_EQ(got, "still fine");
}

TEST(VoluntaryRevoke, CannotRevokeSomeoneElsesEphId) {
  Internet net{57};
  auto& as_a = net.add_as(100, "A");
  host::Host& a = as_a.add_host("a");
  host::Host& mallory = as_a.add_host("mallory");
  ASSERT_TRUE(provision_ephids(a, net.loop(), 1).ok());
  ASSERT_TRUE(provision_ephids(mallory, net.loop(), 1).ok());

  // Mallory forges a revoke request against a's EphID: she has a's cert
  // (public) but not the EphID's signing key.
  const auto& victim_cert = a.pool().entries().front()->cert;
  core::EphIdRevokeRequest req;
  req.ephid = victim_cert.ephid;
  req.cert = victim_cert;
  req.sig = mallory.pool().entries().front()->kp.sign(
      core::EphIdRevokeRequest::revoke_tbs(req.ephid));
  EXPECT_EQ(as_a.aa().process_revoke(req, net.loop().now_seconds()).code(),
            Errc::bad_signature);
  EXPECT_FALSE(as_a.state().revoked.is_revoked(victim_cert.ephid));

  // Nor with a mismatched certificate (her own cert, a's EphID).
  core::EphIdRevokeRequest req2;
  req2.ephid = victim_cert.ephid;
  req2.cert = mallory.pool().entries().front()->cert;
  req2.sig = mallory.pool().entries().front()->kp.sign(
      core::EphIdRevokeRequest::revoke_tbs(req2.ephid));
  EXPECT_EQ(as_a.aa().process_revoke(req2, net.loop().now_seconds()).code(),
            Errc::bad_certificate);
}

TEST(VoluntaryRevoke, CountsTowardEscalationLimit) {
  // §VIII-G2: "an AS can set a maximum number of EphIDs that can be
  // preemptively revoked for each host".
  Internet net{58};
  auto& as_a = net.add_as(100, "A");
  host::Host& a = as_a.add_host("a");
  const std::uint32_t limit = 16;
  ASSERT_TRUE(provision_ephids(a, net.loop(), limit).ok());
  int done = 0;
  for (const auto& e : a.pool().entries()) {
    (void)a.revoke_own_ephid(e->cert.ephid, [&](Result<void>) { ++done; });
    net.run();
  }
  // The final confirmation is undeliverable: processing the 16th revoke
  // escalates and revokes the host's HID, so the AA's reply itself dies at
  // the border router — the host has been cut off.
  EXPECT_EQ(done, static_cast<int>(limit) - 1);
  EXPECT_TRUE(as_a.state().revoked.is_hid_revoked(a.hid()));
  EXPECT_EQ(as_a.aa().stats().hid_escalations, 1u);
  EXPECT_GT(as_a.br().stats().drop_revoked, 0u);
}

// ---- Session lifecycle (close + retire) -----------------------------------------------

TEST(SessionClose, ClosedSessionStopsReceiving) {
  Internet net{61};
  auto& as_a = net.add_as(100, "A");
  auto& as_b = net.add_as(300, "B");
  net.link(100, 300, 2000);
  host::Host& a = as_a.add_host("a");
  host::Host& b = as_b.add_host("b");
  ASSERT_TRUE(provision_ephids(a, net.loop(), 1).ok());
  ASSERT_TRUE(provision_ephids(b, net.loop(), 1).ok());

  int frames = 0;
  b.set_data_handler([&](std::uint64_t, ByteSpan) { ++frames; });
  auto a_sid = a.connect(b.pool().entries().front()->cert, {},
                         [](Result<std::uint64_t>) {});
  (void)a.send_data(*a_sid, to_bytes("one"));
  net.run();
  EXPECT_EQ(frames, 1);

  // b closes its (responder) session: further frames become unsolicited.
  // Responder session id: b accepted exactly one handshake → id 1.
  ASSERT_TRUE(b.close_session(1).ok());
  (void)a.send_data(*a_sid, to_bytes("two"));
  net.run();
  EXPECT_EQ(frames, 1);
  EXPECT_EQ(b.stats().unsolicited, 1u);
  EXPECT_EQ(b.close_session(1).code(), Errc::not_found);
}

TEST(SessionClose, RetireRevokesEphIdWhenLastUser) {
  Internet net{62};
  auto& as_a = net.add_as(100, "A");
  auto& as_b = net.add_as(300, "B");
  net.link(100, 300, 2000);
  host::Host& a = as_a.add_host("a");
  host::Host& b = as_b.add_host("b");
  ASSERT_TRUE(provision_ephids(a, net.loop(), 1).ok());
  ASSERT_TRUE(provision_ephids(b, net.loop(), 2).ok());

  auto sid = a.connect(b.pool().entries().front()->cert, {},
                       [](Result<std::uint64_t>) {});
  net.run();
  const auto eph = a.session_ephids(*sid)->first;

  ASSERT_TRUE(a.close_session(*sid, /*retire_ephid=*/true).ok());
  net.run();
  EXPECT_TRUE(as_a.state().revoked.is_revoked(eph));
  EXPECT_EQ(as_a.aa().stats().voluntary_revocations, 1u);
}

TEST(SessionClose, RetireKeepsEphIdWhileSharedByAnotherSession) {
  // Per-host granularity: two flows share one EphID — closing one flow with
  // retire must NOT revoke it (fate-sharing, §III-B).
  Internet net{63};
  auto& as_a = net.add_as(100, "A");
  auto& as_b = net.add_as(300, "B");
  net.link(100, 300, 2000);
  host::Host& a = as_a.add_host("a", host::Granularity::per_host);
  host::Host& b = as_b.add_host("b");
  ASSERT_TRUE(provision_ephids(a, net.loop(), 1).ok());
  ASSERT_TRUE(provision_ephids(b, net.loop(), 2).ok());

  auto s1 = a.connect(b.pool().entries()[0]->cert, {},
                      [](Result<std::uint64_t>) {});
  host::Host::ConnectOptions o2;
  o2.flow = "two";
  auto s2 = a.connect(b.pool().entries()[1]->cert, o2,
                      [](Result<std::uint64_t>) {});
  net.run();
  const auto eph = a.session_ephids(*s1)->first;
  EXPECT_EQ(a.session_ephids(*s2)->first, eph);  // shared (per-host)

  ASSERT_TRUE(a.close_session(*s1, /*retire_ephid=*/true).ok());
  net.run();
  EXPECT_FALSE(as_a.state().revoked.is_revoked(eph));

  // Closing the last user retires it.
  ASSERT_TRUE(a.close_session(*s2, /*retire_ephid=*/true).ok());
  net.run();
  EXPECT_TRUE(as_a.state().revoked.is_revoked(eph));
}

// ---- Low-order DH key rejection -------------------------------------------------------

TEST(SmallSubgroup, HandshakeRejectsLowOrderPeerKey) {
  // A certificate whose DH key is a small-subgroup point (u = 0) would
  // force an all-zero shared secret; every handshake role must reject it.
  crypto::ChaChaRng rng(64);
  crypto::Ed25519KeyPair as_key = crypto::Ed25519KeyPair::generate(rng);
  core::AsDirectory dir;
  core::AsPublicInfo info;
  info.aid = 1;
  info.sign_pub = as_key.pub;
  dir.register_as(info);
  core::EphIdCodec codec{Bytes(16, 5)};

  auto make_cert = [&](const core::EphIdPublicKeys& pub) {
    core::EphIdCertificate c;
    c.ephid = codec.issue(1, 10'000, rng);
    c.exp_time = 10'000;
    c.pub = pub;
    c.aid = 1;
    c.sign_with(as_key);
    return c;
  };

  core::EphIdKeyPair honest = core::EphIdKeyPair::generate(rng);
  const auto honest_cert = make_cert(honest.pub);

  core::EphIdKeyPair evil = core::EphIdKeyPair::generate(rng);
  core::EphIdPublicKeys evil_pub = evil.pub;
  evil_pub.dh.fill(0);  // the u = 0 low-order point
  const auto evil_cert = make_cert(evil_pub);

  // Initiator dials a low-order server key.
  auto start = core::handshake_initiate(
      evil_cert, dir, 100, honest, honest_cert,
      crypto::AeadSuite::chacha20_poly1305, {}, 1);
  EXPECT_EQ(start.code(), Errc::bad_certificate);

  // Responder receives a low-order client key.
  auto good_start = core::handshake_initiate(
      honest_cert, dir, 100, honest, honest_cert,
      crypto::AeadSuite::chacha20_poly1305, {}, 1);
  ASSERT_TRUE(good_start.ok());
  core::HandshakeInit init = good_start->init;
  init.client_cert = evil_cert;
  auto resp = core::handshake_respond(init, dir, 100, honest, honest_cert,
                                      honest, honest_cert, 2);
  EXPECT_EQ(resp.code(), Errc::bad_certificate);
}

// ---- In-network replay filtering (§VIII-D) -------------------------------------------

TEST(InNetworkReplay, EgressFiltersReplayedPackets) {
  Internet net{59};
  AutonomousSystem::Config cfg;
  cfg.aid = 100;
  cfg.name = "A";
  cfg.br.replay_filter = true;
  auto& as_a = net.add_as(std::move(cfg));
  auto& as_b = net.add_as(300, "B");
  net.link(100, 300, 2000);

  host::Host& a = as_a.add_host("a");
  host::Host& b = as_b.add_host("b");
  ASSERT_TRUE(provision_ephids(a, net.loop(), 1).ok());
  ASSERT_TRUE(provision_ephids(b, net.loop(), 1).ok());

  std::optional<wire::Packet> captured;
  net.network().add_tap(
      [&](std::uint32_t, std::uint32_t to, const wire::PacketView& p) {
        if (to == 300 && p.proto() == wire::NextProto::data && !captured)
          captured = p.to_owned();
      });
  auto sid = a.connect(b.pool().entries().front()->cert, {},
                       [](Result<std::uint64_t>) {});
  (void)a.send_data(*sid, to_bytes("original"));
  net.run();
  ASSERT_TRUE(captured.has_value());

  // An attacker inside AS A replays the captured packet toward the egress
  // BR: the in-network filter kills it BEFORE it leaves the AS.
  const auto transmitted_before = net.network().stats().transmitted;
  as_a.br().on_outgoing(captured->seal());
  net.run();
  EXPECT_EQ(as_a.br().stats().drop_replayed, 1u);
  EXPECT_EQ(net.network().stats().transmitted, transmitted_before);
}

TEST(InNetworkReplay, FreshPacketsUnaffected) {
  Internet net{60};
  AutonomousSystem::Config cfg;
  cfg.aid = 100;
  cfg.name = "A";
  cfg.br.replay_filter = true;
  auto& as_a = net.add_as(std::move(cfg));
  auto& as_b = net.add_as(300, "B");
  net.link(100, 300, 2000);
  host::Host& a = as_a.add_host("a");
  host::Host& b = as_b.add_host("b");
  ASSERT_TRUE(provision_ephids(a, net.loop(), 1).ok());
  ASSERT_TRUE(provision_ephids(b, net.loop(), 1).ok());
  int frames = 0;
  b.set_data_handler([&](std::uint64_t, ByteSpan) { ++frames; });
  auto sid = a.connect(b.pool().entries().front()->cert, {},
                       [](Result<std::uint64_t>) {});
  for (int i = 0; i < 20; ++i) (void)a.send_data(*sid, to_bytes("pkt"));
  net.run();
  EXPECT_EQ(frames, 20);
  EXPECT_EQ(as_a.br().stats().drop_replayed, 0u);
}

}  // namespace
}  // namespace apna

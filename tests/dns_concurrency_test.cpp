// Concurrency coverage for the DNS resolver subsystem: many reader threads
// hammering Resolver::resolve while writers mutate the zone and the domain
// policy (the TSan target), plus ResolverPool determinism — pooled answers
// must match a sequential pass and per-slot stats must merge to the burst
// totals.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "dns/resolver.h"
#include "services/dns_zone.h"

namespace apna::dns {
namespace {

core::DnsRecord make_record(const std::string& name, std::uint32_t ipv4) {
  core::DnsRecord rec;
  rec.name = name;
  rec.ipv4 = ipv4;
  rec.cert.aid = 64512;
  rec.cert.exp_time = 1'700'000'900;
  return rec;
}

std::string nth_name(std::size_t i) {
  return "host" + std::to_string(i) + ".zone.example";
}

TEST(DnsConcurrency, ResolveRacesZoneAndPolicyMutation) {
  services::DnsZone zone;
  net::EventLoop loop;
  Resolver::Config cfg;
  cfg.cache.capacity = 1 << 10;
  Resolver resolver(zone, loop, cfg);

  constexpr std::size_t kNames = 256;
  for (std::size_t i = 0; i < kNames; ++i)
    zone.put(make_record(nth_name(i), static_cast<std::uint32_t>(i + 1)));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> bogus{0};

  // Readers: every answer must be self-consistent — ok answers carry the
  // queried name and the ipv4 the writers ever stored for it (i+1 or
  // 1000+i), blocked answers only while a block rule can exist.
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      std::uint64_t local_bogus = 0;
      for (std::size_t round = 0; !stop.load(std::memory_order_relaxed);
           ++round) {
        const std::size_t i = (round * 7 + static_cast<std::size_t>(t) * 13) %
                              kNames;
        const auto a = resolver.resolve(nth_name(i), /*now=*/1);
        switch (a.status) {
          case Resolver::Status::ok:
            if (a.record.name != nth_name(i)) ++local_bogus;
            if (a.record.ipv4 != i + 1 && a.record.ipv4 != 1000 + i)
              ++local_bogus;
            break;
          case Resolver::Status::nxdomain:
          case Resolver::Status::blocked:
            break;  // both legal mid-mutation
          default:
            ++local_bogus;  // servfail/invalid impossible here
        }
      }
      bogus.fetch_add(local_bogus, std::memory_order_relaxed);
    });
  }

  // Writer 1: flips records between their two legal values and erases /
  // re-inserts a sliding window.
  std::thread zone_writer([&] {
    for (int round = 0; round < 200; ++round) {
      const std::size_t i = static_cast<std::size_t>(round) % kNames;
      zone.put(make_record(nth_name(i),
                           static_cast<std::uint32_t>(1000 + i)));
      zone.erase(nth_name((i + kNames / 2) % kNames));
      zone.put(make_record(nth_name((i + kNames / 2) % kNames),
                           static_cast<std::uint32_t>((i + kNames / 2) % kNames + 1)));
    }
  });

  // Writer 2: policy churn — block/unblock the shared parent suffix.
  std::thread policy_writer([&] {
    for (int round = 0; round < 200; ++round) {
      resolver.policy().block("zone.example");
      resolver.policy().erase("zone.example");
      resolver.policy().monitor("zone.example");
      resolver.policy().erase("zone.example");
    }
  });

  zone_writer.join();
  policy_writer.join();
  stop.store(true, std::memory_order_relaxed);
  for (auto& r : readers) r.join();

  EXPECT_EQ(bogus.load(), 0u);
  const auto s = resolver.stats();
  EXPECT_GT(s.lookups, 0u);
  EXPECT_EQ(s.lookups,
            s.cache_hits + s.negative_hits + s.zone_hits + s.nxdomain +
                s.policy_blocked + s.invalid_name);
}

TEST(DnsConcurrency, ResolverPoolMatchesSequentialAndMergesStats) {
  services::DnsZone zone;
  net::EventLoop loop;
  Resolver::Config cfg;
  cfg.cache.capacity = 1 << 12;

  constexpr std::size_t kNames = 512;
  for (std::size_t i = 0; i < kNames; i += 2)  // odd names are NXDOMAIN
    zone.put(make_record(nth_name(i), static_cast<std::uint32_t>(i + 1)));

  // Sequential reference pass on its own resolver (same zone, own cache).
  Resolver reference(zone, loop, cfg);
  reference.policy().block("host13.zone.example");
  std::vector<std::string> names;
  std::vector<Resolver::Answer> expected;
  for (std::size_t i = 0; i < kNames * 2; ++i) {
    names.push_back(nth_name(i % kNames));
    expected.push_back(reference.resolve(names.back(), /*now=*/1));
  }

  Resolver pooled(zone, loop, cfg);
  pooled.policy().block("host13.zone.example");
  ResolverPool::Config pool_cfg;
  pool_cfg.threads = 4;
  pool_cfg.chunk = 32;
  ResolverPool pool(pooled, pool_cfg);
  std::vector<Resolver::Answer> out(names.size());
  pool.process_lookups(names, /*now=*/1, out);

  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(out[i].status, expected[i].status) << names[i];
    if (out[i].status == Resolver::Status::ok) {
      EXPECT_EQ(out[i].record.name, expected[i].record.name);
      EXPECT_EQ(out[i].record.ipv4, expected[i].record.ipv4);
    }
  }

  // Per-slot stats merge to the burst totals.
  const auto ps = pool.stats();
  EXPECT_EQ(ps.lookups, names.size());
  std::size_t ok = 0, nx = 0, blocked = 0;
  for (const auto& a : out) {
    ok += a.status == Resolver::Status::ok;
    nx += a.status == Resolver::Status::nxdomain;
    blocked += a.status == Resolver::Status::blocked;
  }
  EXPECT_EQ(ps.ok, ok);
  EXPECT_EQ(ps.nxdomain, nx);
  EXPECT_EQ(ps.blocked, blocked);
  EXPECT_EQ(ps.ok + ps.nxdomain + ps.blocked, names.size());

  // A second burst through the same pool reuses the warm cache and still
  // matches (cached ≡ uncached).
  std::vector<Resolver::Answer> out2(names.size());
  pool.process_lookups(names, /*now=*/1, out2);
  for (std::size_t i = 0; i < names.size(); ++i)
    EXPECT_EQ(out2[i].status, expected[i].status) << names[i];
  EXPECT_GT(pool.stats().cache_hits, 0u);
}

}  // namespace
}  // namespace apna::dns

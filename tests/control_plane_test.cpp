// Control-plane fabric tests:
//  * MsgWriter/MsgReader ↔ legacy serialize()/parse byte agreement on
//    randomized messages (the two codecs must never drift),
//  * per-byte truncation rejection through the strict span decoder,
//  * PacketWriter ↔ Packet::seal wire-image equivalence,
//  * ServiceDispatcher routing by destination EphID,
//  * ServicePool issuance determinism: M workers emit bit-identical
//    responses to the single-threaded pool, plus pooled shutoff bursts.
#include <gtest/gtest.h>

#include "core/packet_auth.h"
#include "crypto/x25519.h"
#include "host/ephid_pool.h"
#include "services/accountability_agent.h"
#include "dns/dns_service.h"
#include "services/management_service.h"
#include "services/registry_service.h"
#include "services/service_identity.h"
#include "services/service_runtime.h"
#include "services/subscriber_registry.h"
#include "wire/msg_codec.h"

namespace apna {
namespace {

// ---- Randomized message corpus ----------------------------------------------

struct Gen {
  crypto::ChaChaRng rng{20260726};

  template <std::size_t N>
  std::array<std::uint8_t, N> arr() {
    std::array<std::uint8_t, N> out;
    rng.fill(MutByteSpan(out.data(), N));
    return out;
  }
  core::EphId ephid() {
    core::EphId e;
    e.bytes = arr<16>();
    return e;
  }
  std::string name(std::size_t max = 24) {
    const std::size_t n = 1 + rng.next_u64() % max;
    std::string s;
    for (std::size_t i = 0; i < n; ++i)
      s.push_back(static_cast<char>('a' + rng.next_u64() % 26));
    return s;
  }
  core::EphIdCertificate cert() {
    core::EphIdCertificate c;
    c.ephid = ephid();
    c.exp_time = static_cast<core::ExpTime>(rng.next_u64());
    c.pub.dh = arr<32>();
    c.pub.sig = arr<32>();
    c.aid = static_cast<core::Aid>(rng.next_u64());
    c.aa_ephid = ephid();
    c.flags = static_cast<std::uint8_t>(rng.next_u64() % 4);
    c.sig = arr<64>();
    return c;
  }
};

/// One encode-agreement + round-trip + truncation pass for a message.
template <class M>
void check_codec(const M& msg) {
  // 1. Byte agreement: the span codec must emit exactly the legacy bytes.
  const Bytes legacy = msg.serialize();
  wire::MsgWriter w(16);
  msg.encode(w);
  ASSERT_EQ(legacy.size(), w.size());
  ASSERT_TRUE(std::equal(legacy.begin(), legacy.end(), w.span().begin()));

  // 2. Round trip: decode(encode(m)) re-encodes to the same bytes.
  auto back = core::decode_msg<M>(w.span());
  ASSERT_TRUE(back.ok()) << errc_name(back.code());
  wire::MsgWriter w2(16);
  back->encode(w2);
  ASSERT_EQ(w.size(), w2.size());
  ASSERT_TRUE(std::equal(w.span().begin(), w.span().end(), w2.span().begin()));

  // 3. Every strict prefix is rejected (truncation at each byte boundary).
  for (std::size_t cut = 0; cut < legacy.size(); ++cut) {
    auto t = core::decode_msg<M>(ByteSpan(legacy.data(), cut));
    EXPECT_FALSE(t.ok()) << "prefix of " << cut << "/" << legacy.size()
                         << " bytes decoded";
  }
}

TEST(MsgCodec, AgreesWithLegacySerializeOnRandomizedMessages) {
  Gen g;
  for (int iter = 0; iter < 25; ++iter) {
    {
      core::BootstrapRequest m;
      m.subscriber_id = static_cast<std::uint32_t>(g.rng.next_u64());
      m.credential = g.rng.bytes(1 + g.rng.next_u64() % 40);
      m.host_pub = g.arr<32>();
      check_codec(m);
    }
    {
      core::BootstrapResponse m;
      m.hid = static_cast<core::Hid>(g.rng.next_u64());
      m.ctrl_ephid = g.ephid();
      m.ctrl_exp_time = static_cast<core::ExpTime>(g.rng.next_u64());
      m.id_info_sig = g.arr<64>();
      m.ms_cert = g.cert();
      m.dns_cert = g.cert();
      m.aid = static_cast<core::Aid>(g.rng.next_u64());
      m.aa_ephid = g.ephid();
      check_codec(m);
    }
    {
      core::EphIdRequest m;
      m.ephid_pub.dh = g.arr<32>();
      m.ephid_pub.sig = g.arr<32>();
      m.flags = g.rng.next_u64() % 2 ? core::kRequestReceiveOnly : 0;
      m.lifetime = static_cast<core::EphIdLifetime>(g.rng.next_u64() % 3);
      m.pop_sig = g.arr<64>();
      check_codec(m);
    }
    {
      core::EphIdResponse m;
      m.cert = g.cert();
      check_codec(m);
    }
    {
      core::HandshakeInit m;
      m.client_cert = g.cert();
      m.client_nonce = g.rng.next_u64();
      m.suite = static_cast<crypto::AeadSuite>(1 + g.rng.next_u64() % 3);
      if (g.rng.next_u64() % 2) m.early_data = g.rng.bytes(g.rng.next_u64() % 64);
      check_codec(m);
    }
    {
      core::HandshakeResponse m;
      m.serving_cert = g.cert();
      m.server_nonce = g.rng.next_u64();
      m.suite = static_cast<crypto::AeadSuite>(1 + g.rng.next_u64() % 3);
      check_codec(m);
    }
    {
      core::DnsQuery m;
      m.name = g.name();
      check_codec(m);
    }
    {
      core::DnsResponse m;
      m.status = g.rng.next_u64() % 2;
      if (m.status == 0) {
        core::DnsRecord rec;
        rec.name = g.name();
        rec.cert = g.cert();
        rec.ipv4 = static_cast<std::uint32_t>(g.rng.next_u64());
        rec.sig = g.arr<64>();
        m.record = rec;
      }
      check_codec(m);
    }
    {
      core::DnsPublish m;
      m.name = g.name();
      m.cert = g.cert();
      m.ipv4 = static_cast<std::uint32_t>(g.rng.next_u64());
      check_codec(m);
    }
    {
      core::ShutoffRequest m;
      m.offending_packet = g.rng.bytes(1 + g.rng.next_u64() % 128);
      m.sig = g.arr<64>();
      m.dst_cert = g.cert();
      check_codec(m);
    }
    {
      core::EphIdRevokeRequest m;
      m.ephid = g.ephid();
      m.sig = g.arr<64>();
      m.cert = g.cert();
      check_codec(m);
    }
    {
      core::ShutoffResponse m;
      m.status = static_cast<std::uint8_t>(g.rng.next_u64());
      check_codec(m);
    }
    {
      core::IcmpMessage m;
      m.type = static_cast<core::IcmpType>(g.rng.next_u64() % 5);
      m.code = static_cast<std::uint32_t>(g.rng.next_u64());
      m.data = g.rng.bytes(g.rng.next_u64() % 64);
      check_codec(m);
    }
  }
}

TEST(MsgCodec, CertEncodeIntoMatchesSerializeInto) {
  Gen g;
  for (int i = 0; i < 20; ++i) {
    const core::EphIdCertificate c = g.cert();
    const Bytes legacy = c.serialize();
    wire::MsgWriter w(16);
    c.encode_into(w);
    ASSERT_EQ(legacy.size(), w.size());
    EXPECT_TRUE(std::equal(legacy.begin(), legacy.end(), w.span().begin()));
  }
}

TEST(MsgCodec, SealControlIntoMatchesSealControl) {
  Gen g;
  core::HostAsKeys keys{};
  g.rng.fill(MutByteSpan(keys.enc.data(), keys.enc.size()));
  g.rng.fill(MutByteSpan(keys.mac.data(), keys.mac.size()));
  for (int i = 0; i < 8; ++i) {
    const Bytes pt = g.rng.bytes(1 + g.rng.next_u64() % 96);
    const std::uint64_t nonce = g.rng.next_u64();
    const bool from_host = i % 2 == 0;
    const Bytes legacy = core::seal_control(keys, nonce, from_host, pt);
    wire::MsgWriter w(16);
    core::seal_control_into(w, keys, nonce, from_host, pt);
    ASSERT_EQ(legacy.size(), w.size());
    ASSERT_TRUE(std::equal(legacy.begin(), legacy.end(), w.span().begin()));
    // And it opens.
    auto opened = core::open_control(keys, from_host, w.span());
    ASSERT_TRUE(opened.ok());
    EXPECT_EQ(*opened, pt);
  }
}

TEST(MsgCodec, PacketWriterMatchesPacketSeal) {
  Gen g;
  for (int i = 0; i < 16; ++i) {
    wire::Packet p;
    p.src_aid = static_cast<core::Aid>(g.rng.next_u64());
    p.src_ephid = g.arr<16>();
    p.dst_ephid = g.arr<16>();
    p.dst_aid = static_cast<core::Aid>(g.rng.next_u64());
    p.proto = static_cast<wire::NextProto>(g.rng.next_u64() % 5);
    const Bytes payload = g.rng.bytes(g.rng.next_u64() % 200);
    p.payload = payload;
    std::optional<std::uint64_t> nonce;
    if (i % 2 == 0) {
      nonce = g.rng.next_u64();
      p.set_nonce(*nonce);
    }

    wire::PacketBuf legacy = p.seal();
    wire::PacketWriter pw(p.src_aid, p.src_ephid, p.dst_aid, p.dst_ephid,
                          p.proto, nonce);
    pw.raw(payload);
    wire::PacketBuf direct = pw.finish();

    ASSERT_EQ(legacy.wire_size(), direct.wire_size());
    EXPECT_TRUE(std::equal(legacy.view().bytes().begin(),
                           legacy.view().bytes().end(),
                           direct.view().bytes().begin()));
    EXPECT_EQ(legacy.view().payload().size(), direct.view().payload().size());
  }
}

// ---- Service fixture (mirrors services_test's AsFixture) --------------------

struct Fixture {
  crypto::ChaChaRng rng{7001};
  net::EventLoop loop;
  core::AsState as{64512, core::AsSecrets::generate(rng)};
  core::AsDirectory dir;
  services::SubscriberRegistry subs;
  services::RegistryService rs{as, subs, loop, rng};
  services::ServiceIdentity aa_ident = services::make_service_identity(
      as, rs.allocate_hid(), loop.now_seconds() + 86400, 0, nullptr, rng);
  services::ServiceIdentity ms_ident = services::make_service_identity(
      as, rs.allocate_hid(), loop.now_seconds() + 86400, 0,
      &aa_ident.cert.ephid, rng);
  services::ServiceIdentity dns_ident = services::make_service_identity(
      as, rs.allocate_hid(), loop.now_seconds() + 86400, 0,
      &aa_ident.cert.ephid, rng);
  services::ManagementService ms{as, loop, rng, ms_ident};
  services::AccountabilityAgent aa{as, dir, loop, aa_ident};
  services::DnsZone zone;
  dns::Resolver resolver{zone, loop, dns::Resolver::Config{}};
  dns::DnsService dns{as, dir, loop, rng, dns_ident, resolver};

  core::Hid hid = 0;
  core::EphId ctrl;
  core::HostAsKeys keys;

  Fixture() {
    core::AsPublicInfo info;
    info.aid = as.aid;
    info.sign_pub = as.secrets.sign.pub;
    info.dh_pub = as.secrets.dh.pub;
    info.aa_ephid = aa_ident.cert.ephid;
    dir.register_as(info);
    subs.add_subscriber(1, to_bytes("pw"));

    auto lt = crypto::X25519KeyPair::generate(rng);
    core::BootstrapRequest req;
    req.subscriber_id = 1;
    req.credential = to_bytes("pw");
    req.host_pub = lt.pub;
    auto resp = rs.bootstrap(req);
    hid = resp->hid;
    ctrl = resp->ctrl_ephid;
    keys = core::HostAsKeys::derive(
        crypto::x25519_shared(lt.priv, as.secrets.dh.pub));
  }

  /// Pre-seals `n` EphID requests under kHA (client side of Fig 3).
  std::vector<Bytes> make_requests(std::size_t n, std::uint64_t nonce0) {
    std::vector<Bytes> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      auto kp = core::EphIdKeyPair::generate(rng);
      core::EphIdRequest req;
      req.ephid_pub = kp.pub;
      req.flags = 0;
      req.lifetime =
          static_cast<core::EphIdLifetime>(i % host::kLifetimeClasses);
      req.pop_sig = kp.sign(req.pop_tbs());
      out.push_back(core::seal_control(keys, nonce0 + i, true,
                                       req.serialize()));
    }
    return out;
  }

  /// A control packet addressed to `dst` carrying `payload`.
  wire::PacketBuf make_control_packet(const core::EphId& dst,
                                      wire::NextProto proto, ByteSpan payload) {
    wire::PacketWriter pw(as.aid, ctrl.bytes, as.aid, dst.bytes, proto);
    pw.raw(payload);
    return pw.finish();
  }
};

// ---- Dispatcher routing ------------------------------------------------------

TEST(ServiceDispatcher, RoutesByDestinationEphId) {
  Fixture f;
  std::vector<wire::PacketBuf> replies;
  services::ServiceDispatcher disp(
      [&](wire::PacketBuf reply) { replies.push_back(std::move(reply)); });
  disp.add(f.ms);
  disp.add(f.aa);
  disp.add(f.dns);
  EXPECT_EQ(disp.service_count(), 3u);

  EXPECT_EQ(disp.route(f.ms.service_ephid()), &f.ms);
  EXPECT_EQ(disp.route(f.aa.service_ephid()), &f.aa);
  EXPECT_EQ(disp.route(f.dns.service_ephid()), &f.dns);
  EXPECT_EQ(disp.route(f.ctrl), nullptr);

  // A real issuance RPC through the dispatcher: reply comes from the MS
  // EphID, addressed back to the control EphID, and decrypts to a valid
  // certificate.
  const auto reqs = f.make_requests(1, 1);
  disp.dispatch(f.make_control_packet(f.ms.service_ephid(),
                                      wire::NextProto::control, reqs[0]));
  ASSERT_EQ(replies.size(), 1u);
  const wire::PacketView& v = replies[0].view();
  EXPECT_EQ(v.src_ephid(), f.ms.service_ephid().bytes);
  EXPECT_EQ(v.dst_ephid(), f.ctrl.bytes);
  auto opened = core::open_control(f.keys, false, v.payload());
  ASSERT_TRUE(opened.ok());
  auto resp = core::decode_msg<core::EphIdResponse>(*opened);
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(resp->cert.verify(f.as.secrets.sign.pub,
                                f.loop.now_seconds()).ok());
  EXPECT_EQ(disp.stats().dispatched, 1u);
  EXPECT_EQ(disp.stats().replies, 1u);

  // Unknown destination EphID: counted, no reply, no crash.
  core::EphId stranger;
  f.rng.fill(MutByteSpan(stranger.bytes.data(), 16));
  disp.dispatch(f.make_control_packet(stranger, wire::NextProto::control,
                                      reqs[0]));
  EXPECT_EQ(disp.stats().unrouted, 1u);
  EXPECT_EQ(replies.size(), 1u);

  // Wrong proto for the routed service: the service rejects, the
  // dispatcher counts it as a service error and forwards nothing.
  disp.dispatch(f.make_control_packet(f.ms.service_ephid(),
                                      wire::NextProto::data, reqs[0]));
  EXPECT_EQ(disp.stats().service_errors, 1u);
  EXPECT_EQ(replies.size(), 1u);
}

// ---- Pooled issuance ---------------------------------------------------------

TEST(ServicePool, PooledIssuanceIsDeterministicVsSingleThreaded) {
  constexpr std::size_t kN = 96;

  // Two identical worlds (same seeds end to end), different thread counts.
  auto run = [&](std::size_t threads) {
    Fixture f;
    services::ServicePool::Config cfg;
    cfg.threads = threads;
    cfg.chunk_jobs = 8;
    services::ServicePool pool(f.ms, &f.aa, cfg);

    const auto requests = f.make_requests(kN, 1);
    std::vector<services::ServicePool::IssueJob> jobs(kN);
    for (std::size_t i = 0; i < kN; ++i)
      jobs[i] = {f.ctrl, requests[i]};
    std::vector<Result<Bytes>> results(kN, Result<Bytes>(Errc::internal));
    pool.process_issuance(jobs, f.loop.now_seconds(), results);

    EXPECT_EQ(pool.stats().issuance_jobs, kN);
    EXPECT_EQ(pool.stats().failed_jobs, 0u);
    EXPECT_EQ(f.ms.stats().issued, kN);

    std::vector<Bytes> out;
    out.reserve(kN);
    for (auto& r : results) {
      EXPECT_TRUE(r.ok());
      // Every response decrypts to a certificate bound to our HID.
      auto opened = core::open_control(f.keys, false, *r);
      EXPECT_TRUE(opened.ok());
      auto resp = core::decode_msg<core::EphIdResponse>(*opened);
      EXPECT_TRUE(resp.ok());
      auto plain = f.as.codec.open(resp->cert.ephid);
      EXPECT_TRUE(plain.ok());
      EXPECT_EQ(plain->hid, f.hid);
      out.push_back(r.take());
    }
    return out;
  };

  const auto single = run(1);
  const auto quad = run(4);
  ASSERT_EQ(single.size(), quad.size());
  for (std::size_t i = 0; i < single.size(); ++i)
    EXPECT_EQ(single[i], quad[i]) << "response " << i
                                  << " differs across thread counts";
}

TEST(ServicePool, MixedValidAndInvalidRequests) {
  Fixture f;
  services::ServicePool::Config cfg;
  cfg.threads = 4;
  cfg.chunk_jobs = 4;
  services::ServicePool pool(f.ms, nullptr, cfg);

  constexpr std::size_t kN = 32;
  auto requests = f.make_requests(kN, 1);
  std::vector<services::ServicePool::IssueJob> jobs(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    if (i % 4 == 3) requests[i][requests[i].size() / 2] ^= 1;  // garble
    jobs[i] = {f.ctrl, requests[i]};
  }
  std::vector<Result<Bytes>> results(kN, Result<Bytes>(Errc::internal));
  pool.process_issuance(jobs, f.loop.now_seconds(), results);

  for (std::size_t i = 0; i < kN; ++i) {
    if (i % 4 == 3)
      EXPECT_EQ(results[i].code(), Errc::decrypt_failed) << i;
    else
      EXPECT_TRUE(results[i].ok()) << i;
  }
  EXPECT_EQ(pool.stats().failed_jobs, kN / 4);
  EXPECT_EQ(f.ms.stats().issued, kN - kN / 4);
  EXPECT_EQ(f.ms.stats().rejected_bad_payload, kN / 4);
}

TEST(ServicePool, PooledIssuanceIsChunkSizeInvariant) {
  // chunk_jobs is also the ed25519_verify_batch PoP width; sweeping it must
  // not change a single output byte (the batch-vs-scalar equivalence
  // contract, observed end to end through the pool).
  constexpr std::size_t kN = 48;
  auto run = [&](std::size_t chunk) {
    Fixture f;
    services::ServicePool::Config cfg;
    cfg.threads = 2;
    cfg.chunk_jobs = chunk;
    services::ServicePool pool(f.ms, nullptr, cfg);
    const auto requests = f.make_requests(kN, 1);
    std::vector<services::ServicePool::IssueJob> jobs(kN);
    for (std::size_t i = 0; i < kN; ++i) jobs[i] = {f.ctrl, requests[i]};
    std::vector<Result<Bytes>> results(kN, Result<Bytes>(Errc::internal));
    pool.process_issuance(jobs, f.loop.now_seconds(), results);
    std::vector<Bytes> out;
    for (auto& r : results) {
      EXPECT_TRUE(r.ok());
      out.push_back(r.take());
    }
    return out;
  };
  const auto chunk1 = run(1);   // every batch degenerates to one signature
  const auto chunk16 = run(16);
  const auto chunk64 = run(64);  // one batch spans the whole burst
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(chunk1[i], chunk16[i]) << i;
    EXPECT_EQ(chunk16[i], chunk64[i]) << i;
  }
}

TEST(ServicePool, BadPopInChunkRejectsOnlyThatRequest) {
  // One forged proof-of-possession inside an otherwise-valid chunk: the
  // batch RLC check fails, bisection isolates the forgery, and every other
  // request in the same chunk still issues — outcomes identical to scalar
  // verification.
  Fixture f;
  services::ServicePool::Config cfg;
  cfg.threads = 2;
  cfg.chunk_jobs = 16;
  services::ServicePool pool(f.ms, nullptr, cfg);

  constexpr std::size_t kN = 16;
  std::vector<Bytes> requests;
  for (std::size_t i = 0; i < kN; ++i) {
    auto kp = core::EphIdKeyPair::generate(f.rng);
    core::EphIdRequest req;
    req.ephid_pub = kp.pub;
    req.flags = 0;
    req.lifetime = core::EphIdLifetime::short_term;
    req.pop_sig = kp.sign(req.pop_tbs());
    if (i == 9) req.pop_sig[11] ^= 0x08;  // forge exactly one
    requests.push_back(
        core::seal_control(f.keys, 1 + i, true, req.serialize()));
  }
  std::vector<services::ServicePool::IssueJob> jobs(kN);
  for (std::size_t i = 0; i < kN; ++i) jobs[i] = {f.ctrl, requests[i]};
  std::vector<Result<Bytes>> results(kN, Result<Bytes>(Errc::internal));
  pool.process_issuance(jobs, f.loop.now_seconds(), results);

  for (std::size_t i = 0; i < kN; ++i) {
    if (i == 9)
      EXPECT_EQ(results[i].code(), Errc::bad_signature) << i;
    else
      EXPECT_TRUE(results[i].ok()) << i;
  }
  EXPECT_EQ(f.ms.stats().issued, kN - 1);
  EXPECT_EQ(f.ms.stats().rejected_bad_pop, 1u);
  EXPECT_EQ(pool.stats().failed_jobs, 1u);
}

TEST(ServicePool, PooledShutoffVerification) {
  Fixture f;

  // A victim in a second AS, with a certificate this AS can verify.
  crypto::ChaChaRng rng_b{7002};
  core::AsState as_b{64513, core::AsSecrets::generate(rng_b)};
  core::AsPublicInfo info_b;
  info_b.aid = as_b.aid;
  info_b.sign_pub = as_b.secrets.sign.pub;
  info_b.dh_pub = as_b.secrets.dh.pub;
  f.dir.register_as(info_b);
  core::EphIdKeyPair victim_kp = core::EphIdKeyPair::generate(rng_b);
  core::EphIdCertificate victim_cert;
  victim_cert.ephid = as_b.codec.issue(77, f.loop.now_seconds() + 900, rng_b);
  victim_cert.exp_time = f.loop.now_seconds() + 900;
  victim_cert.pub = victim_kp.pub;
  victim_cert.aid = as_b.aid;
  victim_cert.aa_ephid = as_b.codec.issue(1, f.loop.now_seconds() + 900, rng_b);
  victim_cert.sign_with(as_b.secrets.sign);

  const auto host_rec = f.as.host_db.find(f.hid);
  ASSERT_TRUE(host_rec.has_value());

  // One offending packet per attacker EphID (per-flow granularity). Stay
  // below the §VIII-G2 escalation limit (16 revocations erase the HID).
  constexpr std::size_t kN = 12;
  std::vector<core::ShutoffRequest> reqs(kN);
  std::vector<core::EphId> attacker_ephids(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    attacker_ephids[i] =
        f.as.codec.issue(f.hid, f.loop.now_seconds() + 900, f.rng);
    wire::Packet pkt;
    pkt.src_aid = f.as.aid;
    pkt.src_ephid = attacker_ephids[i].bytes;
    pkt.dst_aid = as_b.aid;
    pkt.dst_ephid = victim_cert.ephid.bytes;
    pkt.proto = wire::NextProto::data;
    pkt.payload = to_bytes("flood");
    core::stamp_packet_mac(*host_rec->cmac, pkt);
    reqs[i].offending_packet = pkt.serialize();
    reqs[i].sig = victim_kp.sign(reqs[i].offending_packet);
    reqs[i].dst_cert = victim_cert;
  }
  // Garble one signature: exactly one job must fail.
  reqs[kN - 1].sig[0] ^= 1;

  services::ServicePool::Config cfg;
  cfg.threads = 4;
  cfg.chunk_jobs = 4;
  services::ServicePool pool(f.ms, &f.aa, cfg);
  std::vector<Result<void>> results(kN);
  pool.process_shutoffs(reqs, f.loop.now_seconds(), results);

  for (std::size_t i = 0; i + 1 < kN; ++i) {
    EXPECT_TRUE(results[i].ok()) << i;
    EXPECT_TRUE(f.as.revoked.is_revoked(attacker_ephids[i])) << i;
  }
  EXPECT_EQ(results[kN - 1].code(), Errc::bad_signature);
  EXPECT_FALSE(f.as.revoked.is_revoked(attacker_ephids[kN - 1]));
  EXPECT_EQ(pool.stats().shutoff_jobs, kN);
  EXPECT_EQ(pool.stats().failed_jobs, 1u);
  EXPECT_EQ(f.aa.stats().accepted, kN - 1);
  EXPECT_EQ(f.aa.stats().rejected_bad_sig, 1u);
}

// ---- Lifecycle-manager planning (host/ephid_pool.h) -------------------------

TEST(EphIdLifecycleManager, PlansDeficitsPerClassAndBacksOff) {
  host::EphIdPool pool;
  const core::ExpTime now = 1'700'000'000;

  // One short-term EphID about to expire, one healthy medium-term.
  auto add = [&](core::EphIdLifetime lt, core::ExpTime exp) {
    core::EphIdCertificate c;
    c.exp_time = exp;
    crypto::ChaChaRng r{exp};
    r.fill(MutByteSpan(c.ephid.bytes.data(), 16));
    pool.add(core::EphIdKeyPair{}, std::move(c), lt);
  };
  add(core::EphIdLifetime::short_term, now + 60);     // inside the lead
  add(core::EphIdLifetime::medium_term, now + 7200);  // healthy

  host::EphIdLifecycleManager::Config cfg;
  cfg.classes[0] = host::RenewalPolicy{.min_ready = 2, .lead_s = 120};
  cfg.classes[1] = host::RenewalPolicy{.min_ready = 1, .lead_s = 120};
  // class 2 (long_term) disabled.
  host::EphIdLifecycleManager mgr(cfg);

  net::TimeUs now_us = 1000;
  auto plan = mgr.plan(pool, now, now_us);
  // Short-term: the near-expiry EphID does not count toward readiness.
  EXPECT_EQ(plan[0], 2u);
  EXPECT_EQ(plan[1], 0u);
  EXPECT_EQ(plan[2], 0u);

  // In-flight requests suppress re-planning of the same deficit.
  mgr.on_requested(core::EphIdLifetime::short_term, now_us);
  mgr.on_requested(core::EphIdLifetime::short_term, now_us);
  plan = mgr.plan(pool, now, now_us);
  EXPECT_EQ(plan[0], 0u);

  // A request whose reply never arrives (lost packet / MS-side error with
  // no response) times out: the deficit reopens and backoff engages
  // instead of the planner wedging on a phantom in-flight entry.
  now_us += cfg.request_timeout_us + 1;
  plan = mgr.plan(pool, now, now_us);
  EXPECT_EQ(plan[0], 2u);
  EXPECT_EQ(mgr.in_flight(core::EphIdLifetime::short_term), 0u);
  EXPECT_EQ(mgr.stats().timed_out, 2u);
  EXPECT_EQ(mgr.consecutive_failures(), 2u);
  mgr.on_requested(core::EphIdLifetime::short_term, now_us);
  mgr.on_issued(core::EphIdLifetime::short_term);
  EXPECT_EQ(mgr.consecutive_failures(), 0u);

  // Failure: backoff stretches the next delay exponentially, success
  // resets it.
  crypto::ChaChaRng rng{99};
  const net::TimeUs base = mgr.next_delay(rng);
  EXPECT_GE(base, cfg.check_interval_us);
  EXPECT_LT(base, cfg.check_interval_us + cfg.jitter_us);
  mgr.on_failed(core::EphIdLifetime::short_term);
  mgr.on_failed(core::EphIdLifetime::short_term);
  EXPECT_EQ(mgr.consecutive_failures(), 2u);
  const net::TimeUs backed_off = mgr.next_delay(rng);
  EXPECT_GE(backed_off, cfg.check_interval_us << 2);
  mgr.on_requested(core::EphIdLifetime::short_term, now_us);
  mgr.on_issued(core::EphIdLifetime::short_term);
  EXPECT_EQ(mgr.consecutive_failures(), 0u);
  EXPECT_EQ(mgr.stats().renewed, 2u);
  EXPECT_EQ(mgr.stats().failed, 4u);  // 2 timeouts + 2 explicit failures
}

}  // namespace
}  // namespace apna

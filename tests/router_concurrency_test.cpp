// Concurrency coverage for the sharded multi-threaded data plane, running
// entirely over the zero-copy wire images (wire::PacketView bursts):
//  * TSan-targeted stress — M threads hammering check_outgoing /
//    check_incoming against the lock-striped AS state while a writer
//    revokes EphIDs/HIDs, churns host_info and purges expired entries;
//  * the sharded replay filter's at-most-once guarantee under full-overlap
//    parallel accepts;
//  * ForwardingPool per-thread stats merged on read, validated against a
//    single-threaded reference run;
//  * bit-for-bit determinism of the batched kernels (EphID open_batch,
//    verify_packet_macs, classify_*_burst) against their scalar twins.
//
// Iteration counts are sized for the TSan leg of ci.sh (bounded runtime).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "core/packet_auth.h"
#include "router/border_router.h"
#include "router/forwarding_pool.h"

namespace apna::router {
namespace {

constexpr core::Hid kHosts = 64;

struct ConcurrencyFixture {
  crypto::ChaChaRng rng{4242};
  core::AsState as{64512, core::AsSecrets::generate(rng)};
  core::ExpTime now = 1'700'000'000;
  std::vector<core::HostAsKeys> host_keys;

  ConcurrencyFixture() {
    host_keys.reserve(kHosts);
    for (core::Hid hid = 1; hid <= kHosts; ++hid) {
      crypto::SharedSecret seed{};
      rng.fill(MutByteSpan(seed.data(), 32));
      core::HostRecord rec;
      rec.hid = hid;
      rec.keys = core::HostAsKeys::derive(seed);
      as.host_db.upsert(rec);
      host_keys.push_back(rec.keys);
    }
  }

  std::unique_ptr<BorderRouter> make_router(BorderRouter::Config cfg = {}) {
    BorderRouter::Callbacks cb;
    cb.send_external = [](wire::PacketBuf) { return Result<void>::success(); };
    cb.deliver_internal = [](core::Hid, wire::PacketBuf) {
      return Result<void>::success();
    };
    cb.now = [this] { return now; };
    return std::make_unique<BorderRouter>(as, std::move(cb), cfg);
  }

  wire::Packet outgoing_packet(core::Hid hid, const core::EphId& src) {
    wire::Packet pkt;
    pkt.src_aid = as.aid;
    pkt.src_ephid = src.bytes;
    pkt.dst_aid = 64513;
    rng.fill(MutByteSpan(pkt.dst_ephid.data(), 16));
    pkt.proto = wire::NextProto::data;
    pkt.payload = rng.bytes(64);
    core::stamp_packet_mac(
        crypto::AesCmac(ByteSpan(host_keys[hid - 1].mac.data(), 16)), pkt);
    return pkt;
  }

  wire::Packet incoming_packet(const core::EphId& dst) {
    wire::Packet pkt;
    pkt.src_aid = 64513;
    rng.fill(MutByteSpan(pkt.src_ephid.data(), 16));
    pkt.dst_aid = as.aid;
    pkt.dst_ephid = dst.bytes;
    pkt.proto = wire::NextProto::data;
    pkt.payload = rng.bytes(64);
    return pkt;
  }
};

/// Seals a builder burst into pooled buffers + the view span the fast path
/// consumes. Views stay valid across bufs growth (vector moves the
/// PacketBuf, which keeps its heap storage — and thus the view — stable).
struct SealedBurst {
  std::vector<wire::PacketBuf> bufs;
  std::vector<wire::PacketView> views;

  SealedBurst() = default;
  explicit SealedBurst(const std::vector<wire::Packet>& pkts) {
    for (const auto& p : pkts) push(p);
  }
  void push(const wire::Packet& p) {
    bufs.push_back(p.seal());
    views.push_back(bufs.back().view());
  }
};

// ---- Sharded state under concurrent readers + writers ------------------------

TEST(ShardedState, ConcurrentChecksWithRevocations) {
  ConcurrencyFixture f;
  auto br = f.make_router();

  // Hosts [1, kStable] are never touched by the writer: their packets must
  // pass on every iteration. Hosts (kStable, kHosts] get their EphIDs
  // revoked / HIDs erased mid-flight: every legal outcome is accepted.
  constexpr core::Hid kStable = kHosts / 2;
  SealedBurst out_pkts;
  SealedBurst in_pkts;
  std::vector<core::EphId> ephids;
  for (core::Hid hid = 1; hid <= kHosts; ++hid) {
    const auto eph = f.as.codec.issue(hid, f.now + 900, f.rng);
    ephids.push_back(eph);
    out_pkts.push(f.outgoing_packet(hid, eph));
    in_pkts.push(f.incoming_packet(eph));
  }

  constexpr int kIters = 4000;
  constexpr int kReaders = 3;
  std::atomic<bool> failed{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      for (int i = 0; i < kIters && !failed.load(); ++i) {
        const std::size_t idx = (i + static_cast<std::size_t>(r) * 17) % kHosts;
        const Errc out = br->check_outgoing(out_pkts.views[idx], f.now).code();
        const Errc in = br->check_incoming(in_pkts.views[idx], f.now).code();
        if (idx < kStable) {
          if (out != Errc::ok || in != Errc::ok) failed.store(true);
        } else {
          const bool out_legal = out == Errc::ok || out == Errc::revoked ||
                                 out == Errc::unknown_host;
          const bool in_legal = in == Errc::ok || in == Errc::revoked ||
                                in == Errc::unknown_host;
          if (!out_legal || !in_legal) failed.store(true);
        }
      }
    });
  }

  std::thread writer([&] {
    crypto::ChaChaRng wrng{777};
    for (int i = 0; i < kIters / 4; ++i) {
      const core::Hid hid = kStable + 1 +
                            static_cast<core::Hid>(i % (kHosts - kStable));
      f.as.revoked.revoke_ephid(ephids[hid - 1], f.now + 900, hid);
      f.as.revoked.is_hid_revoked(hid);
      if (i % 7 == 0) {
        // Host churn: erase and re-enroll with the same keys.
        f.as.host_db.erase(hid);
        core::HostRecord rec;
        rec.hid = hid;
        rec.keys = f.host_keys[hid - 1];
        f.as.host_db.upsert(rec);
      }
      if (i % 97 == 0) f.as.revoked.purge_expired(f.now - 1);
    }
  });

  for (auto& t : readers) t.join();
  writer.join();
  EXPECT_FALSE(failed.load());
  // The writer's revocations are visible once the threads joined.
  EXPECT_TRUE(f.as.revoked.is_revoked(ephids[kHosts - 1]));
  EXPECT_FALSE(f.as.revoked.is_revoked(ephids[0]));
}

// ---- Sharded replay filter ---------------------------------------------------

TEST(ShardedReplayFilterTest, AtMostOnceUnderFullContention) {
  core::ShardedReplayFilter filter(core::ShardedReplayFilter::Config{
      8, 128, core::ReplayWindow::StartPolicy::grace});

  constexpr std::size_t kSources = 16;
  constexpr std::uint64_t kNonces = 200;
  crypto::ChaChaRng rng{99};
  std::vector<core::EphId> sources(kSources);
  for (auto& s : sources) rng.fill(MutByteSpan(s.bytes.data(), 16));

  // Every thread races to accept EVERY (source, nonce) pair; each pair must
  // be accepted exactly once across all threads.
  std::vector<std::atomic<int>> accepted(kSources * kNonces);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::size_t s = 0; s < kSources; ++s)
        for (std::uint64_t n = 1; n <= kNonces; ++n)
          if (filter.accept(sources[s], n).ok())
            accepted[s * kNonces + (n - 1)].fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();

  for (std::size_t i = 0; i < accepted.size(); ++i)
    EXPECT_EQ(accepted[i].load(), 1) << "pair " << i;
  EXPECT_EQ(filter.size(), kSources);
}

// ---- ForwardingPool ----------------------------------------------------------

// Builds the mixed egress burst every drop arm appears in.
std::vector<wire::Packet> mixed_egress_burst(ConcurrencyFixture& f,
                                             std::uint64_t nonce_base) {
  std::vector<wire::Packet> burst;
  for (core::Hid hid = 1; hid <= 40; ++hid) {
    const auto eph = f.as.codec.issue(hid, f.now + 900, f.rng);
    auto pkt = f.outgoing_packet(hid, eph);
    pkt.set_nonce(nonce_base + hid);
    core::stamp_packet_mac(
        crypto::AesCmac(ByteSpan(f.host_keys[hid - 1].mac.data(), 16)), pkt);
    burst.push_back(pkt);
  }
  {  // bad MAC
    const auto eph = f.as.codec.issue(3, f.now + 900, f.rng);
    auto pkt = f.outgoing_packet(3, eph);
    pkt.mac[0] ^= 1;
    burst.push_back(pkt);
  }
  {  // forged EphID
    core::EphId forged;
    f.rng.fill(MutByteSpan(forged.bytes.data(), 16));
    burst.push_back(f.outgoing_packet(5, forged));
  }
  {  // expired
    const auto eph = f.as.codec.issue(7, f.now - 5, f.rng);
    burst.push_back(f.outgoing_packet(7, eph));
  }
  {  // unknown host
    const auto eph = f.as.codec.issue(kHosts + 100, f.now + 900, f.rng);
    auto pkt = f.outgoing_packet(9, eph);  // MAC'd under host 9's key
    burst.push_back(pkt);
  }
  {  // duplicate nonce (caught by the replay filter when enabled)
    const auto eph = f.as.codec.issue(11, f.now + 900, f.rng);
    auto pkt = f.outgoing_packet(11, eph);
    pkt.set_nonce(nonce_base + 1);  // same nonce twice from one source
    core::stamp_packet_mac(
        crypto::AesCmac(ByteSpan(f.host_keys[10].mac.data(), 16)), pkt);
    burst.push_back(pkt);
    burst.push_back(pkt);
  }
  return burst;
}

TEST(ShardedState, ConcurrentClassifyOverSharedViewBurst) {
  // M threads run classify_outgoing_burst over the SAME PacketView span
  // (read-only aliases of one set of wire images) while a writer churns
  // revocations — the TSan leg proves the zero-copy burst shape is as
  // race-free as the per-packet checks.
  ConcurrencyFixture f;
  BorderRouter::Config cfg;
  cfg.replay_filter = true;
  auto br = f.make_router(cfg);

  const SealedBurst burst(mixed_egress_burst(f, 1));
  const std::span<const wire::PacketView> views(burst.views);

  constexpr int kIters = 300;
  constexpr int kThreads = 3;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<BorderRouter::Verdict> verdicts(views.size());
      BorderRouter::Stats stats;
      for (int i = 0; i < kIters && !failed.load(); ++i) {
        br->classify_outgoing_burst(views, f.now, verdicts, stats,
                                    /*batched=*/(t % 2) == 0);
        // The structurally-bad packets must fail under every interleaving.
        if (verdicts[40].err != Errc::bad_mac) failed.store(true);
        if (verdicts[41].err != Errc::decrypt_failed) failed.store(true);
        if (verdicts[42].err != Errc::expired) failed.store(true);
      }
    });
  }
  std::thread writer([&] {
    for (int i = 0; i < kIters; ++i) {
      const core::Hid hid = 20 + static_cast<core::Hid>(i % 8);
      const auto eph = f.as.codec.issue(hid, f.now + 900, f.rng);
      f.as.revoked.revoke_ephid(eph, f.now + 900, hid);
      if (i % 31 == 0) f.as.revoked.purge_expired(f.now - 1);
    }
  });
  for (auto& t : threads) t.join();
  writer.join();
  EXPECT_FALSE(failed.load());
}

TEST(FlowCacheConcurrency, PerThreadCachesWithConcurrentRevocations) {
  // M classify threads, each with its OWN core::FlowCache (the
  // ForwardingPool arrangement), race a writer that revokes EphIDs/HIDs
  // and churns host_info. TSan-visible state: the striped tables and the
  // AsState epoch (atomic); the caches themselves are never shared.
  // Verdict legality is asserted per iteration, and once the writer is
  // done every warm cache must agree with the uncached reference exactly
  // (epoch invalidation has flushed all stale verdicts).
  ConcurrencyFixture f;
  auto br = f.make_router();

  constexpr core::Hid kStable = 8;     // never touched
  constexpr core::Hid kRevoked = 16;   // (kStable, kRevoked]: EphIDs revoked
  constexpr core::Hid kChurned = 20;   // (kRevoked, kChurned]: host churn
  SealedBurst burst;
  std::vector<core::EphId> ephids;
  for (core::Hid hid = 1; hid <= kChurned; ++hid) {
    const auto eph = f.as.codec.issue(hid, f.now + 900, f.rng);
    ephids.push_back(eph);
    burst.push(f.outgoing_packet(hid, eph));
  }
  {  // canaries: structurally bad whatever the writer does
    auto bad_mac = f.outgoing_packet(2, ephids[1]);
    bad_mac.mac[0] ^= 1;
    burst.push(bad_mac);
    core::EphId forged;
    f.rng.fill(MutByteSpan(forged.bytes.data(), 16));
    burst.push(f.outgoing_packet(3, forged));
  }
  const std::size_t kBadMacAt = kChurned;
  const std::size_t kForgedAt = kChurned + 1;

  constexpr int kIters = 400;
  constexpr int kThreads = 3;
  std::atomic<bool> failed{false};
  std::vector<std::thread> readers;
  std::vector<std::unique_ptr<core::FlowCache>> caches;
  for (int t = 0; t < kThreads; ++t)
    caches.push_back(std::make_unique<core::FlowCache>(256));
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      std::vector<BorderRouter::Verdict> verdicts(burst.views.size());
      BorderRouter::Stats stats;
      for (int i = 0; i < kIters && !failed.load(); ++i) {
        br->classify_outgoing_burst(burst.views, f.now, verdicts, stats,
                                    /*batched=*/(t % 2) == 0,
                                    caches[t].get());
        for (core::Hid hid = 1; hid <= kStable; ++hid)
          if (verdicts[hid - 1].err != Errc::ok) failed.store(true);
        for (core::Hid hid = kStable + 1; hid <= kRevoked; ++hid) {
          const Errc e = verdicts[hid - 1].err;
          if (e != Errc::ok && e != Errc::revoked) failed.store(true);
        }
        for (core::Hid hid = kRevoked + 1; hid <= kChurned; ++hid) {
          const Errc e = verdicts[hid - 1].err;
          if (e != Errc::ok && e != Errc::unknown_host) failed.store(true);
        }
        if (verdicts[kBadMacAt].err != Errc::bad_mac) failed.store(true);
        if (verdicts[kForgedAt].err != Errc::decrypt_failed)
          failed.store(true);
      }
    });
  }
  std::thread writer([&] {
    for (int i = 0; i < kIters / 2; ++i) {
      const core::Hid rev =
          kStable + 1 + static_cast<core::Hid>(i % (kRevoked - kStable));
      f.as.revoked.revoke_ephid(ephids[rev - 1], f.now + 900, rev);
      const core::Hid churn =
          kRevoked + 1 + static_cast<core::Hid>(i % (kChurned - kRevoked));
      f.as.host_db.erase(churn);
      core::HostRecord rec;
      rec.hid = churn;
      rec.keys = f.host_keys[churn - 1];
      f.as.host_db.upsert(rec);
      if (i % 13 == 0) f.as.revoked.purge_expired(f.now - 1);
    }
  });
  for (auto& t : readers) t.join();
  writer.join();
  EXPECT_FALSE(failed.load());

  // Quiescent equivalence: every warm per-thread cache now produces the
  // uncached verdicts bit-for-bit (all revocations visible).
  std::vector<BorderRouter::Verdict> ref(burst.views.size());
  BorderRouter::Stats ref_stats;
  br->classify_outgoing_burst(burst.views, f.now, ref, ref_stats,
                              /*batched=*/true, nullptr);
  for (core::Hid hid = kStable + 1; hid <= kRevoked; ++hid)
    EXPECT_EQ(static_cast<int>(ref[hid - 1].err),
              static_cast<int>(Errc::revoked));
  for (int t = 0; t < kThreads; ++t) {
    std::vector<BorderRouter::Verdict> got(burst.views.size());
    BorderRouter::Stats stats;
    br->classify_outgoing_burst(burst.views, f.now, got, stats,
                                /*batched=*/(t % 2) == 0, caches[t].get());
    for (std::size_t i = 0; i < burst.views.size(); ++i)
      EXPECT_EQ(static_cast<int>(got[i].err), static_cast<int>(ref[i].err))
          << "cache " << t << " packet " << i;
    EXPECT_GT(caches[t]->stats().hits, 0u);
  }
}

TEST(ForwardingPool, MergedStatsMatchSingleThreadedReference) {
  ConcurrencyFixture f;
  BorderRouter::Config cfg;
  cfg.replay_filter = true;
  auto pooled_br = f.make_router(cfg);
  auto reference_br = f.make_router(cfg);

  const SealedBurst burst(mixed_egress_burst(f, 1));

  ForwardingPool::Config pool_cfg;
  pool_cfg.threads = 4;
  pool_cfg.steering = ForwardingPool::Steering::chunk;  // legacy dispatch
  pool_cfg.chunk_packets = 8;  // force multi-chunk distribution
  pool_cfg.kernel = ForwardingPool::Kernel::batched;
  ForwardingPool pool(*pooled_br, pool_cfg);

  constexpr int kRounds = 50;
  BorderRouter::Stats ref_stats;
  for (int round = 0; round < kRounds; ++round) {
    pool.process_outgoing(burst.views, f.now);
    std::vector<BorderRouter::Verdict> verdicts(burst.views.size());
    reference_br->classify_outgoing_burst(burst.views, f.now, verdicts,
                                          ref_stats, /*batched=*/false);
    reference_br->apply_outgoing_verdicts(burst.views, verdicts, ref_stats);
  }

  const auto merged = pool.stats();
  EXPECT_EQ(merged.forwarded_out, ref_stats.forwarded_out);
  EXPECT_EQ(merged.drop_bad_mac, ref_stats.drop_bad_mac);
  EXPECT_EQ(merged.drop_bad_ephid, ref_stats.drop_bad_ephid);
  EXPECT_EQ(merged.drop_expired, ref_stats.drop_expired);
  EXPECT_EQ(merged.drop_unknown_host, ref_stats.drop_unknown_host);
  EXPECT_EQ(merged.drop_replayed, ref_stats.drop_replayed);
  EXPECT_EQ(merged.total_drops(), ref_stats.total_drops());
  // The duplicated-nonce packet is accepted once and replayed once per
  // round after the first window sighting.
  EXPECT_GT(merged.drop_replayed, 0u);
}

/// An egress burst of `reps` repetitions of `flows.size()` valid flows,
/// interleaved so every chunk_packets-sized window mixes distinct flows —
/// the shape where chunk-claiming scatters one flow across workers.
SealedBurst repeated_flow_burst(ConcurrencyFixture& f,
                                const std::vector<core::EphId>& flows,
                                int reps) {
  SealedBurst burst;
  for (int r = 0; r < reps; ++r)
    for (std::size_t i = 0; i < flows.size(); ++i)
      burst.push(f.outgoing_packet(static_cast<core::Hid>(i + 1), flows[i]));
  return burst;
}

TEST(ForwardingPool, FlowHashSteeringMatchesReferenceWithDisjointCaches) {
  ConcurrencyFixture f;
  auto pooled_br = f.make_router();
  auto reference_br = f.make_router();

  std::vector<core::EphId> flows;
  for (core::Hid hid = 1; hid <= 16; ++hid)
    flows.push_back(f.as.codec.issue(hid, f.now + 900, f.rng));
  const SealedBurst burst = repeated_flow_burst(f, flows, 16);

  ForwardingPool::Config pool_cfg;
  pool_cfg.threads = 4;
  pool_cfg.steering = ForwardingPool::Steering::flow_hash;  // the default
  ForwardingPool pool(*pooled_br, pool_cfg);

  BorderRouter::Stats ref_stats;
  for (int round = 0; round < 10; ++round) {
    pool.process_outgoing(burst.views, f.now);
    std::vector<BorderRouter::Verdict> verdicts(burst.views.size());
    reference_br->classify_outgoing_burst(burst.views, f.now, verdicts,
                                          ref_stats, /*batched=*/false);
    reference_br->apply_outgoing_verdicts(burst.views, verdicts, ref_stats);
  }
  const auto merged = pool.stats();
  EXPECT_EQ(merged.forwarded_out, ref_stats.forwarded_out);
  EXPECT_EQ(merged.total_drops(), ref_stats.total_drops());

  // The steering invariant: one flow → one worker, so no EphID is ever
  // cached by two processing contexts. This holds DETERMINISTICALLY —
  // steer_worker is a pure hash — unlike chunk claiming below.
  const auto cache = pool.flow_cache_stats();
  EXPECT_GT(cache.hits, 0u);
  EXPECT_EQ(cache.cross_worker_duplicates, 0u);
}

TEST(ForwardingPool, ChunkClaimingDuplicatesHotFlowsAcrossWorkers) {
  // The bug flow-hash steering fixes: dynamic chunk claiming hands one
  // flow's packets to whichever workers grab its chunks, so the flow's
  // verdict is re-verified and cached once per claiming worker. WHICH
  // worker claims a chunk is scheduling-dependent, so this test loops
  // until the duplication is observed and skips (rather than flakes) if
  // the scheduler never lets a second worker claim — e.g. a single-core
  // host where the calling thread drains every chunk itself.
  ConcurrencyFixture f;
  auto br = f.make_router();

  std::vector<core::EphId> flows;
  for (core::Hid hid = 1; hid <= 16; ++hid)
    flows.push_back(f.as.codec.issue(hid, f.now + 900, f.rng));
  const SealedBurst burst = repeated_flow_burst(f, flows, 16);

  ForwardingPool::Config pool_cfg;
  pool_cfg.threads = 4;
  pool_cfg.steering = ForwardingPool::Steering::chunk;
  pool_cfg.chunk_packets = 8;  // 32 chunks per burst, every flow in many
  ForwardingPool pool(*br, pool_cfg);

  std::uint64_t duplicates = 0;
  for (int round = 0; round < 300 && duplicates == 0; ++round) {
    pool.process_outgoing(burst.views, f.now);
    duplicates = pool.flow_cache_stats().cross_worker_duplicates;
  }
  if (duplicates == 0)
    GTEST_SKIP() << "scheduler never interleaved workers on this host "
                    "(duplication needs two workers claiming chunks of one "
                    "flow); the flow_hash twin asserts the zero side";
  EXPECT_GT(duplicates, 0u);
}

TEST(ForwardingPool, IngressDeliversAndTransits) {
  ConcurrencyFixture f;
  auto br = f.make_router();

  SealedBurst burst;
  for (core::Hid hid = 1; hid <= 16; ++hid) {
    const auto eph = f.as.codec.issue(hid, f.now + 900, f.rng);
    burst.push(f.incoming_packet(eph));
  }
  for (int i = 0; i < 8; ++i) {  // transit packets for a third AS
    wire::Packet pkt;
    pkt.src_aid = 64513;
    pkt.dst_aid = 64999;
    f.rng.fill(MutByteSpan(pkt.src_ephid.data(), 16));
    f.rng.fill(MutByteSpan(pkt.dst_ephid.data(), 16));
    burst.push(pkt);
  }
  {  // garbage destination EphID
    core::EphId forged;
    f.rng.fill(MutByteSpan(forged.bytes.data(), 16));
    burst.push(f.incoming_packet(forged));
  }

  ForwardingPool::Config pool_cfg;
  pool_cfg.threads = 4;
  pool_cfg.chunk_packets = 4;
  ForwardingPool pool(*br, pool_cfg);
  pool.process_ingress(burst.views, f.now);

  const auto stats = pool.stats();
  EXPECT_EQ(stats.delivered_in, 16u);
  EXPECT_EQ(stats.transited, 8u);
  EXPECT_EQ(stats.drop_bad_ephid, 1u);
}

// ---- Batched kernels agree with their scalar twins ---------------------------

TEST(BatchDeterminism, EphIdOpenBatchEqualsScalar) {
  ConcurrencyFixture f;
  // 77 exercises the chunk remainder (32 + 32 + 13).
  constexpr std::size_t kN = 77;
  std::vector<core::EphId> ids(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    if (i % 3 == 0) {
      f.rng.fill(MutByteSpan(ids[i].bytes.data(), 16));  // forged
    } else {
      ids[i] = f.as.codec.issue(static_cast<core::Hid>(i + 1),
                                f.now + static_cast<core::ExpTime>(i), f.rng);
      if (i % 5 == 0) ids[i].bytes[2] ^= 1;  // corrupted ciphertext
    }
  }
  std::vector<core::EphIdPlain> plain(kN);
  std::vector<std::uint8_t> ok(kN);
  f.as.codec.open_batch(ids.data(), kN, plain.data(), ok.data());
  for (std::size_t i = 0; i < kN; ++i) {
    const auto scalar = f.as.codec.open(ids[i]);
    ASSERT_EQ(ok[i] != 0, scalar.ok()) << "element " << i;
    if (scalar.ok()) {
      EXPECT_EQ(plain[i].hid, scalar->hid);
      EXPECT_EQ(plain[i].exp_time, scalar->exp_time);
    }
  }
}

TEST(BatchDeterminism, MacVerifyBatchedEqualsScalar) {
  ConcurrencyFixture f;
  std::vector<wire::Packet> pkts;
  std::vector<crypto::AesCmac> keys;
  keys.reserve(kHosts);
  for (core::Hid hid = 1; hid <= kHosts; ++hid)
    keys.emplace_back(ByteSpan(f.host_keys[hid - 1].mac.data(), 16));
  for (core::Hid hid = 1; hid <= kHosts; ++hid) {
    const auto eph = f.as.codec.issue(hid, f.now + 900, f.rng);
    auto pkt = f.outgoing_packet(hid, eph);
    if (hid % 4 == 0) pkt.mac[hid % 8] ^= 1;      // tampered tag
    if (hid % 5 == 0) pkt.payload.back() ^= 1;    // tampered payload
    pkts.push_back(std::move(pkt));
  }
  const SealedBurst sealed(pkts);

  std::vector<core::PacketMacJob> jobs;
  for (std::size_t i = 0; i < sealed.views.size(); ++i)
    jobs.push_back(core::PacketMacJob{&sealed.views[i], &keys[i]});
  jobs.push_back(core::PacketMacJob{&sealed.views[0], nullptr});  // no key

  std::vector<std::uint8_t> verdicts(jobs.size());
  core::verify_packet_macs(jobs, verdicts);
  for (std::size_t i = 0; i < sealed.views.size(); ++i) {
    // Batched (views) == scalar-over-view == scalar-over-builder.
    EXPECT_EQ(verdicts[i] != 0,
              core::verify_packet_mac(keys[i], sealed.views[i]))
        << "packet " << i;
    EXPECT_EQ(verdicts[i] != 0, core::verify_packet_mac(keys[i], pkts[i]))
        << "packet " << i;
  }
  EXPECT_EQ(verdicts.back(), 0u);
}

TEST(BatchDeterminism, ClassifyBatchedEqualsScalar) {
  ConcurrencyFixture f;
  BorderRouter::Config cfg;
  cfg.replay_filter = true;
  cfg.mtu = 256;  // small MTU so the too_big arm fires for some payloads
  auto batched_br = f.make_router(cfg);
  auto scalar_br = f.make_router(cfg);

  auto pkts = mixed_egress_burst(f, 1);
  pkts[0].payload = f.rng.bytes(400);  // oversize after the MTU change
  core::stamp_packet_mac(
      crypto::AesCmac(ByteSpan(f.host_keys[0].mac.data(), 16)), pkts[0]);
  const SealedBurst sealed(pkts);
  const auto& burst = sealed.views;

  std::vector<BorderRouter::Verdict> vb(burst.size());
  std::vector<BorderRouter::Verdict> vs(burst.size());
  BorderRouter::Stats sb, ss;
  batched_br->classify_outgoing_burst(burst, f.now, vb, sb, /*batched=*/true);
  scalar_br->classify_outgoing_burst(burst, f.now, vs, ss, /*batched=*/false);

  for (std::size_t i = 0; i < burst.size(); ++i)
    EXPECT_EQ(static_cast<int>(vb[i].err), static_cast<int>(vs[i].err))
        << "egress packet " << i;
  EXPECT_EQ(sb.total_drops(), ss.total_drops());
  EXPECT_GT(sb.total_drops(), 0u);

  // Ingress twin.
  SealedBurst in_burst;
  for (core::Hid hid = 1; hid <= 20; ++hid) {
    const auto eph = f.as.codec.issue(
        hid, hid % 4 == 0 ? f.now - 1 : f.now + 900, f.rng);
    in_burst.push(f.incoming_packet(eph));
  }
  {
    wire::Packet transit;
    transit.src_aid = 64513;
    transit.dst_aid = 64999;
    in_burst.push(transit);
  }
  std::vector<BorderRouter::Verdict> ivb(in_burst.views.size());
  std::vector<BorderRouter::Verdict> ivs(in_burst.views.size());
  BorderRouter::Stats isb, iss;
  batched_br->classify_ingress_burst(in_burst.views, f.now, ivb, isb, true);
  scalar_br->classify_ingress_burst(in_burst.views, f.now, ivs, iss, false);
  for (std::size_t i = 0; i < in_burst.views.size(); ++i) {
    EXPECT_EQ(static_cast<int>(ivb[i].err), static_cast<int>(ivs[i].err))
        << "ingress packet " << i;
    EXPECT_EQ(ivb[i].local, ivs[i].local);
    EXPECT_EQ(ivb[i].hid, ivs[i].hid);
  }
}

}  // namespace
}  // namespace apna::router

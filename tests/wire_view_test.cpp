// Zero-copy wire image tests: PacketView::bind / Packet::seal round-trip
// properties, parse/bind agreement on malformed inputs, BufferPool
// recycling, in-place MAC stamping and in-flight path-stamp splicing.
//
// The core property: for EVERY byte string w, Packet::parse(w) and
// PacketView::bind(w) accept exactly the same set of inputs, and for every
// accepted input the parsed fields agree — so the parse-by-copy control
// plane and the bind-in-place data plane can never disagree about which
// packets are Errc::malformed.
#include <gtest/gtest.h>

#include "core/packet_auth.h"
#include "crypto/rng.h"
#include "wire/apna_header.h"
#include "wire/packet_buf.h"

namespace apna::wire {
namespace {

/// Randomized but deterministic builder covering every extension shape.
Packet random_packet(crypto::Rng& rng, std::size_t payload_size,
                     bool with_nonce, std::size_t stamp_count) {
  Packet p;
  p.src_aid = static_cast<Aid>(rng.next_u64());
  p.dst_aid = static_cast<Aid>(rng.next_u64());
  rng.fill(MutByteSpan(p.src_ephid.data(), p.src_ephid.size()));
  rng.fill(MutByteSpan(p.dst_ephid.data(), p.dst_ephid.size()));
  rng.fill(MutByteSpan(p.mac.data(), p.mac.size()));
  p.proto = static_cast<NextProto>(rng.next_u64() % 5);
  if (with_nonce) p.set_nonce(rng.next_u64());
  for (std::size_t i = 0; i < stamp_count; ++i)
    p.stamp_path(static_cast<Aid>(rng.next_u64()));
  p.payload = rng.bytes(payload_size);
  return p;
}

void expect_view_matches(const Packet& p, const PacketView& v) {
  EXPECT_EQ(v.src_aid(), p.src_aid);
  EXPECT_EQ(v.dst_aid(), p.dst_aid);
  EXPECT_EQ(v.src_ephid(), p.src_ephid);
  EXPECT_EQ(v.dst_ephid(), p.dst_ephid);
  EXPECT_TRUE(ct_equal(v.mac_span(), ByteSpan(p.mac.data(), p.mac.size())));
  EXPECT_EQ(v.proto(), p.proto);
  EXPECT_EQ(v.flags(), p.flags);
  EXPECT_EQ(v.has_nonce(), p.has_nonce());
  if (p.has_nonce()) {
    EXPECT_EQ(v.nonce(), p.nonce);
  }
  EXPECT_EQ(v.has_path_stamp(), p.has_path_stamp());
  ASSERT_EQ(v.path_stamp_count(), p.path_stamp.size());
  for (std::size_t i = 0; i < p.path_stamp.size(); ++i)
    EXPECT_EQ(v.path_stamp_at(i), p.path_stamp[i]);
  EXPECT_TRUE(ct_equal(v.payload(), ByteSpan(p.payload.data(),
                                             p.payload.size())));
  EXPECT_EQ(v.wire_size(), p.wire_size());
}

TEST(PacketViewRoundTrip, SealBindFieldForFieldOverRandomShapes) {
  crypto::ChaChaRng rng(20260726);
  const std::size_t payload_sizes[] = {0, 1, 2, 7, 64, 255, 256,
                                       1000, 1466, 4000};
  for (const std::size_t payload : payload_sizes) {
    for (const bool nonce : {false, true}) {
      for (const std::size_t stamps : {std::size_t{0}, std::size_t{1},
                                       std::size_t{3}, std::size_t{17}}) {
        const Packet p = random_packet(rng, payload, nonce, stamps);
        const PacketBuf buf = p.seal();
        // seal() == serialize(): one wire format, two producers.
        EXPECT_EQ(Bytes(buf.view().bytes().begin(), buf.view().bytes().end()),
                  p.serialize());
        expect_view_matches(p, buf.view());
        // to_owned() inverts seal().
        const Packet back = buf.view().to_owned();
        EXPECT_EQ(back.serialize(), p.serialize());
        // parse() accepts what bind() accepted and agrees field-for-field.
        auto parsed = Packet::parse(buf.view().bytes());
        ASSERT_TRUE(parsed.ok());
        EXPECT_EQ(parsed->serialize(), p.serialize());
      }
    }
  }
}

TEST(PacketViewRoundTrip, TruncationAtEveryBoundaryIsMalformedForBoth) {
  crypto::ChaChaRng rng(7);
  for (const bool nonce : {false, true}) {
    for (const std::size_t stamps : {std::size_t{0}, std::size_t{2}}) {
      const Packet p = random_packet(rng, 37, nonce, stamps);
      const Bytes wire = p.serialize();
      for (std::size_t cut = 0; cut < wire.size(); ++cut) {
        const ByteSpan prefix(wire.data(), cut);
        EXPECT_EQ(PacketView::bind(prefix).code(), Errc::malformed)
            << "bind accepted a " << cut << "-byte prefix";
        EXPECT_EQ(Packet::parse(prefix).code(), Errc::malformed)
            << "parse accepted a " << cut << "-byte prefix";
      }
      // Trailing garbage is equally malformed for both.
      Bytes extended = wire;
      extended.push_back(0xAB);
      EXPECT_EQ(PacketView::bind(extended).code(), Errc::malformed);
      EXPECT_EQ(Packet::parse(extended).code(), Errc::malformed);
    }
  }
}

TEST(PacketViewRoundTrip, ParseAndBindAgreeOnMutatedInputs) {
  // Fuzz-ish agreement check: flip bytes/lengths and require that parse
  // and bind return the same accept/reject verdict on every mutant.
  crypto::ChaChaRng rng(99);
  const Packet p = random_packet(rng, 50, true, 2);
  const Bytes wire = p.serialize();
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes mutant = wire;
    // 1-3 random single-byte mutations (may hit flags, lengths, counts).
    const int flips = 1 + static_cast<int>(rng.next_u64() % 3);
    for (int f = 0; f < flips; ++f) {
      const std::size_t at = rng.next_u64() % mutant.size();
      mutant[at] = static_cast<std::uint8_t>(rng.next_u64());
    }
    // Occasionally resize too.
    if (trial % 5 == 0)
      mutant.resize(rng.next_u64() % (mutant.size() + 8));

    const bool bind_ok = PacketView::bind(mutant).ok();
    const bool parse_ok = Packet::parse(mutant).ok();
    EXPECT_EQ(bind_ok, parse_ok) << "divergence on trial " << trial;
  }
}

TEST(PacketViewRoundTrip, UnknownFlagBitsAndProtosRejected) {
  crypto::ChaChaRng rng(5);
  const Packet p = random_packet(rng, 10, false, 0);
  Bytes wire = p.serialize();
  for (const std::uint8_t bad_flags : {0x04, 0x80, 0xFC}) {
    Bytes w = wire;
    w[kOffFlags] = bad_flags;
    EXPECT_EQ(PacketView::bind(w).code(), Errc::malformed);
    EXPECT_EQ(Packet::parse(w).code(), Errc::malformed);
  }
  Bytes w = wire;
  w[kOffProto] = 5;  // one past NextProto::shutoff
  EXPECT_EQ(PacketView::bind(w).code(), Errc::malformed);
  EXPECT_EQ(Packet::parse(w).code(), Errc::malformed);
}

TEST(PacketViewRoundTrip, AdoptValidatesAndKeepsBytes) {
  crypto::ChaChaRng rng(6);
  const Packet p = random_packet(rng, 33, true, 1);
  auto adopted = PacketBuf::adopt(p.serialize());
  ASSERT_TRUE(adopted.ok());
  expect_view_matches(p, adopted->view());

  Bytes broken = p.serialize();
  broken.pop_back();
  EXPECT_EQ(PacketBuf::adopt(std::move(broken)).code(), Errc::malformed);
}

// ---- BufferPool recycling ----------------------------------------------------

TEST(BufferPoolTest, SteadyStateRecyclesBuffers) {
  crypto::ChaChaRng rng(11);
  const Packet p = random_packet(rng, 200, true, 0);
  BufferPool& pool = BufferPool::local();
  // Warm: one buffer enters the free list when the PacketBuf dies.
  { const PacketBuf warm = p.seal(); }
  const auto before = pool.stats();
  for (int i = 0; i < 100; ++i) {
    const PacketBuf buf = p.seal();
    EXPECT_EQ(buf.wire_size(), p.wire_size());
  }
  const auto after = pool.stats();
  // Every iteration reuses the buffer released by the previous one.
  EXPECT_EQ(after.hits, before.hits + 100);
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_EQ(after.recycled, before.recycled + 100);
}

TEST(BufferPoolTest, CopyAuditCountsTheExplicitCopyPoints) {
  crypto::ChaChaRng rng(12);
  const Packet p = random_packet(rng, 64, false, 0);
  const CopyAudit before = copy_audit();
  const PacketBuf buf = p.seal();
  const PacketBuf copy = PacketBuf::copy_of(buf.view());
  const Packet owned = copy.view().to_owned();
  const CopyAudit after = copy_audit();
  EXPECT_EQ(after.seals, before.seals + 1);
  EXPECT_EQ(after.copies, before.copies + 1);
  EXPECT_EQ(after.to_owned, before.to_owned + 1);
  EXPECT_EQ(after.copy_bytes - before.copy_bytes, buf.wire_size());
  EXPECT_EQ(owned.serialize(), p.serialize());
}

// ---- In-place MAC stamping ---------------------------------------------------

TEST(InPlaceMac, BufferStampEqualsBuilderStamp) {
  crypto::ChaChaRng rng(13);
  const crypto::AesCmac key(rng.bytes(16));
  for (const bool nonce : {false, true}) {
    Packet p = random_packet(rng, 80, nonce, 0);

    // Builder shape: stamp the struct, then seal.
    Packet builder = p;
    core::stamp_packet_mac(key, builder);
    const PacketBuf a = builder.seal();

    // Data-plane shape: seal first, stamp the wire image in place.
    PacketBuf b = p.seal();
    core::stamp_packet_mac(key, b);

    EXPECT_TRUE(ct_equal(a.view().bytes(), b.view().bytes()));
    EXPECT_TRUE(core::verify_packet_mac(key, b.view()));
    // Tampering any payload byte in place breaks it.
    b.mutable_bytes()[b.wire_size() - 1] ^= 1;
    EXPECT_FALSE(core::verify_packet_mac(key, b.view()));
  }
}

// ---- In-flight path stamping -------------------------------------------------

TEST(PathStampSplice, AppendMatchesBuilderStamp) {
  crypto::ChaChaRng rng(14);
  const crypto::AesCmac key(rng.bytes(16));
  for (const bool nonce : {false, true}) {
    for (const std::size_t initial : {std::size_t{0}, std::size_t{3}}) {
      Packet p = random_packet(rng, 120, nonce, initial);
      core::stamp_packet_mac(key, p);
      const PacketBuf buf = p.seal();

      const PacketBuf spliced = append_path_stamp(buf.view(), 0xAABBCCDD);

      Packet reference = p;
      reference.stamp_path(0xAABBCCDD);
      EXPECT_EQ(Bytes(spliced.view().bytes().begin(),
                      spliced.view().bytes().end()),
                reference.serialize());
      // §VIII-C: stamping in flight must not invalidate the source MAC.
      EXPECT_TRUE(core::verify_packet_mac(key, spliced.view()));
    }
  }
}

}  // namespace
}  // namespace apna::wire

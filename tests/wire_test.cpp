// Wire-format tests: codec primitives, the Fig 7 header, IPv4/GRE (Fig 9).
#include <gtest/gtest.h>

#include "crypto/rng.h"
#include "util/hex.h"
#include "wire/apna_header.h"
#include "wire/codec.h"
#include "wire/ipv4.h"

namespace apna::wire {
namespace {

// ---- Writer/Reader ----------------------------------------------------------

TEST(Codec, ScalarRoundtrip) {
  Writer w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  Reader r(w.bytes());
  EXPECT_EQ(r.u8().value(), 0xab);
  EXPECT_EQ(r.u16().value(), 0x1234);
  EXPECT_EQ(r.u32().value(), 0xdeadbeefu);
  EXPECT_EQ(r.u64().value(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.done());
}

TEST(Codec, VarFieldsRoundtrip) {
  Writer w;
  w.var(to_bytes("hello"));
  w.str("world");
  w.var({});
  Reader r(w.bytes());
  EXPECT_EQ(to_string(r.var().value()), "hello");
  EXPECT_EQ(r.str().value(), "world");
  EXPECT_EQ(r.var().value().size(), 0u);
  EXPECT_TRUE(r.done());
}

TEST(Codec, ShortReadsReportMalformed) {
  Writer w;
  w.u16(0x0102);
  Reader r(w.bytes());
  EXPECT_TRUE(r.u8().ok());
  EXPECT_TRUE(r.u8().ok());
  EXPECT_EQ(r.u8().code(), Errc::malformed);
  EXPECT_EQ(r.u32().code(), Errc::malformed);
  EXPECT_EQ(r.raw(1).code(), Errc::malformed);
}

TEST(Codec, VarLengthExceedingBufferRejected) {
  Bytes bad = {0xff, 0xff, 0x01};  // claims 65535-byte field, has 1 byte
  Reader r(bad);
  EXPECT_EQ(r.var().code(), Errc::malformed);
}

TEST(Codec, FixedArrayRoundtrip) {
  std::array<std::uint8_t, 16> a;
  for (int i = 0; i < 16; ++i) a[i] = static_cast<std::uint8_t>(i);
  Writer w;
  w.raw(a);
  Reader r(w.bytes());
  EXPECT_EQ(r.arr<16>().value(), a);
}

// ---- APNA header (Fig 7) -----------------------------------------------------

Packet sample_packet(crypto::Rng& rng, std::size_t payload_len) {
  Packet p;
  p.src_aid = 0x0101;
  p.dst_aid = 0x0202;
  rng.fill(MutByteSpan(p.src_ephid.data(), 16));
  rng.fill(MutByteSpan(p.dst_ephid.data(), 16));
  rng.fill(MutByteSpan(p.mac.data(), 8));
  p.proto = NextProto::data;
  p.payload = rng.bytes(payload_len);
  return p;
}

TEST(ApnaHeader, HeaderIsExactly48Bytes) {
  // §V-B1: "The fields in the packet header sum up to 48 B."
  crypto::ChaChaRng rng(1);
  Packet p = sample_packet(rng, 0);
  const Bytes wire = p.serialize();
  // 48 B header + 4 B extension (proto, flags, length), no payload.
  EXPECT_EQ(wire.size(), kApnaHeaderSize + 4u);
  EXPECT_EQ(kApnaHeaderSize, 48u);
}

TEST(ApnaHeader, FieldOrderMatchesFig7) {
  crypto::ChaChaRng rng(2);
  Packet p = sample_packet(rng, 0);
  const Bytes wire = p.serialize();
  EXPECT_EQ(load_be32(wire.data()), p.src_aid);                    // AID_S
  EXPECT_TRUE(std::equal(p.src_ephid.begin(), p.src_ephid.end(),
                         wire.begin() + 4));                       // EphID_s
  EXPECT_TRUE(std::equal(p.dst_ephid.begin(), p.dst_ephid.end(),
                         wire.begin() + 20));                      // EphID_d
  EXPECT_EQ(load_be32(wire.data() + 36), p.dst_aid);               // AID_D
  EXPECT_TRUE(std::equal(p.mac.begin(), p.mac.end(), wire.begin() + 40));
}

TEST(ApnaHeader, RoundtripWithPayloadAndNonce) {
  crypto::ChaChaRng rng(3);
  for (std::size_t len : {0u, 1u, 100u, 1470u}) {
    Packet p = sample_packet(rng, len);
    p.set_nonce(0x1122334455667788ULL);
    auto parsed = Packet::parse(p.serialize());
    ASSERT_TRUE(parsed.ok()) << len;
    EXPECT_EQ(parsed->src_aid, p.src_aid);
    EXPECT_EQ(parsed->dst_aid, p.dst_aid);
    EXPECT_EQ(parsed->src_ephid, p.src_ephid);
    EXPECT_EQ(parsed->dst_ephid, p.dst_ephid);
    EXPECT_EQ(parsed->mac, p.mac);
    EXPECT_EQ(parsed->proto, p.proto);
    EXPECT_TRUE(parsed->has_nonce());
    EXPECT_EQ(parsed->nonce, p.nonce);
    EXPECT_EQ(hex_encode(parsed->payload), hex_encode(p.payload));
  }
}

TEST(ApnaHeader, MacInputExcludesMacField) {
  crypto::ChaChaRng rng(4);
  Packet p = sample_packet(rng, 32);
  const Bytes before = p.mac_input();
  p.mac[0] ^= 0xff;  // changing the MAC must not change the MAC input
  EXPECT_EQ(hex_encode(p.mac_input()), hex_encode(before));
  p.payload[0] ^= 1;  // changing payload must change it
  EXPECT_NE(hex_encode(p.mac_input()), hex_encode(before));
}

TEST(ApnaHeader, ParseRejectsTruncationAnywhere) {
  crypto::ChaChaRng rng(5);
  Packet p = sample_packet(rng, 25);
  const Bytes wire = p.serialize();
  for (std::size_t len = 0; len < wire.size(); len += 3) {
    EXPECT_FALSE(Packet::parse(ByteSpan(wire.data(), len)).ok()) << len;
  }
}

TEST(ApnaHeader, ParseRejectsTrailingGarbage) {
  crypto::ChaChaRng rng(6);
  Packet p = sample_packet(rng, 10);
  Bytes wire = p.serialize();
  wire.push_back(0x00);
  EXPECT_EQ(Packet::parse(wire).code(), Errc::malformed);
}

TEST(ApnaHeader, ParseRejectsUnknownProto) {
  crypto::ChaChaRng rng(7);
  Packet p = sample_packet(rng, 0);
  Bytes wire = p.serialize();
  wire[48] = 0x7f;  // proto byte
  EXPECT_EQ(Packet::parse(wire).code(), Errc::malformed);
}

// ---- IPv4 / GRE (Fig 9) --------------------------------------------------------

TEST(Ipv4, HeaderChecksumValidates) {
  Ipv4Header h;
  h.src = 0x0a000001;
  h.dst = 0x0a000002;
  h.proto = IpProto::udp;
  const Bytes wire = h.serialize(100);
  EXPECT_EQ(ipv4_checksum(ByteSpan(wire.data(), 20)), 0);
  Bytes bad = wire;
  bad[12] ^= 1;  // corrupt source address
  Reader r(bad);
  EXPECT_FALSE(Ipv4Header::parse(r).ok());
}

TEST(Ipv4, PacketRoundtripWithPorts) {
  crypto::ChaChaRng rng(8);
  Ipv4Packet p;
  p.hdr.src = 0xc0a80001;
  p.hdr.dst = 0xc0a80002;
  p.hdr.proto = IpProto::tcp;
  p.src_port = 443;
  p.dst_port = 51515;
  p.payload = rng.bytes(64);
  auto parsed = Ipv4Packet::parse(p.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->hdr.src, p.hdr.src);
  EXPECT_EQ(parsed->hdr.dst, p.hdr.dst);
  EXPECT_EQ(parsed->src_port, 443);
  EXPECT_EQ(parsed->dst_port, 51515);
  EXPECT_EQ(hex_encode(parsed->payload), hex_encode(p.payload));
}

TEST(Gre, ApnaOverGreRoundtrip) {
  // Fig 9: IPv4 ‖ GRE(Protocol Type = APNA) ‖ APNA header ‖ payload.
  crypto::ChaChaRng rng(9);
  GreApnaPacket g;
  g.outer.src = 0x0a0a0a01;  // APNA router addresses (they serve as AIDs)
  g.outer.dst = 0x0a0a0a02;
  g.apna = sample_packet(rng, 50);
  const Bytes wire = g.serialize();

  // The GRE protocol-type field announces APNA.
  EXPECT_EQ(load_be16(wire.data() + kIpv4HeaderSize + 2), kGreProtoApna);

  auto parsed = GreApnaPacket::parse(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->outer.src, g.outer.src);
  EXPECT_EQ(parsed->apna.src_aid, g.apna.src_aid);
  EXPECT_EQ(hex_encode(parsed->apna.payload), hex_encode(g.apna.payload));
}

TEST(Gre, RejectsNonApnaProtocolType) {
  crypto::ChaChaRng rng(10);
  GreApnaPacket g;
  g.outer.src = 1;
  g.outer.dst = 2;
  g.apna = sample_packet(rng, 0);
  Bytes wire = g.serialize();
  store_be16(wire.data() + kIpv4HeaderSize + 2, 0x0800);  // IPv4 ethertype
  EXPECT_EQ(GreApnaPacket::parse(wire).code(), Errc::malformed);
}

TEST(Gre, RejectsNonGreIpProtocol) {
  crypto::ChaChaRng rng(11);
  GreApnaPacket g;
  g.outer.src = 1;
  g.outer.dst = 2;
  g.apna = sample_packet(rng, 0);
  Bytes wire = g.serialize();
  wire[9] = static_cast<std::uint8_t>(IpProto::udp);  // proto field
  // Fix the checksum for the mutated header so only the proto check fires.
  store_be16(wire.data() + 10, 0);
  const std::uint16_t csum = ipv4_checksum(ByteSpan(wire.data(), 20));
  store_be16(wire.data() + 10, csum);
  EXPECT_EQ(GreApnaPacket::parse(wire).code(), Errc::malformed);
}

TEST(FlowKey, HashAndEquality) {
  FlowKey5 a{1, 2, 3, 4, 6};
  FlowKey5 b{1, 2, 3, 4, 6};
  FlowKey5 c{1, 2, 3, 5, 6};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(FlowKey5Hash{}(a), FlowKey5Hash{}(b));
}

}  // namespace
}  // namespace apna::wire

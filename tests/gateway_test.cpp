// Gateway tests: NAT-mode AP (§VII-B), bridge-mode AP, the IPv4 gateway
// (§VII-D) and APNA-as-a-Service (§VIII-E), end to end over the simulator.
#include <gtest/gtest.h>

#include "apna/internet.h"
#include "gateway/apnaas.h"
#include "gateway/bridge_ap.h"
#include "gateway/ipv4_gateway.h"
#include "gateway/nat_ap.h"

namespace apna::gw {
namespace {

struct GwWorld {
  Internet net{21};
  AutonomousSystem* as_a = nullptr;
  AutonomousSystem* as_b = nullptr;

  GwWorld() {
    as_a = &net.add_as(100, "AS-A");
    as_b = &net.add_as(300, "AS-B");
    net.link(100, 300, 4000);
  }
};

// ---- NAT-mode AP ------------------------------------------------------------

TEST(NatAp, InnerHostBootstrapsAndGetsRealAsEphIds) {
  GwWorld w;
  NatAccessPoint ap({.name = "cafe-ap"}, *w.as_a, w.net.directory());
  host::Host& inner = ap.add_inner_host("laptop");
  ASSERT_TRUE(inner.bootstrapped());
  EXPECT_EQ(inner.aid(), 0xFF000001u);  // private realm

  auto owned = acquire_ephid(inner, w.net.loop());
  ASSERT_TRUE(owned.ok());
  // The certificate names the REAL AS and is signed by it.
  EXPECT_EQ((*owned)->cert.aid, 100u);
  EXPECT_TRUE((*owned)->cert
                  .verify(w.as_a->state().secrets.sign.pub,
                          w.net.loop().now_seconds())
                  .ok());
  // ... and the EphID decodes to the AP's HID at the AS (the AS sees only
  // the AP).
  auto plain = w.as_a->state().codec.open((*owned)->cert.ephid);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->hid, ap.ap_host().hid());
  // The AP can identify its inner host behind the EphID (AA role).
  auto who = ap.identify((*owned)->cert.ephid);
  ASSERT_TRUE(who.ok());
  EXPECT_EQ(*who, inner.hid());
  EXPECT_EQ(ap.stats().proxied_ephids, 1u);
}

TEST(NatAp, InnerHostTalksToTheInternet) {
  GwWorld w;
  NatAccessPoint ap({.name = "home-ap"}, *w.as_a, w.net.directory());
  host::Host& laptop = ap.add_inner_host("laptop");
  host::Host& server = w.as_b->add_host("server");
  ASSERT_TRUE(provision_ephids(laptop, w.net.loop(), 1).ok());
  ASSERT_TRUE(provision_ephids(server, w.net.loop(), 1).ok());

  std::string server_got;
  server.set_data_handler([&](std::uint64_t sid, ByteSpan d) {
    server_got = to_string(d);
    (void)server.send_data(sid, to_bytes("pong"));
  });
  std::string laptop_got;
  laptop.set_data_handler([&](std::uint64_t, ByteSpan d) {
    laptop_got = to_string(d);
  });

  bool connected = false;
  auto sid = laptop.connect(server.pool().entries().front()->cert, {},
                            [&](Result<std::uint64_t> r) {
                              connected = r.ok();
                            });
  ASSERT_TRUE(sid.ok());
  ASSERT_TRUE(laptop.send_data(*sid, to_bytes("ping from behind NAT")).ok());
  w.net.run();

  EXPECT_TRUE(connected);
  EXPECT_EQ(server_got, "ping from behind NAT");
  EXPECT_EQ(laptop_got, "pong");
  EXPECT_GT(ap.stats().inner_out, 0u);
  EXPECT_GT(ap.stats().inner_in, 0u);
  // Packets passed the parent AS's egress checks (re-MAC'd by the AP).
  EXPECT_GT(w.as_a->br().stats().forwarded_out, 0u);
  EXPECT_EQ(w.as_a->br().stats().drop_bad_mac, 0u);
}

TEST(NatAp, TwoInnerHostsDistinguished) {
  GwWorld w;
  NatAccessPoint ap({.name = "ap"}, *w.as_a, w.net.directory());
  host::Host& h1 = ap.add_inner_host("h1");
  host::Host& h2 = ap.add_inner_host("h2");
  ASSERT_TRUE(provision_ephids(h1, w.net.loop(), 1).ok());
  ASSERT_TRUE(provision_ephids(h2, w.net.loop(), 1).ok());

  const auto& e1 = h1.pool().entries().front()->cert.ephid;
  const auto& e2 = h2.pool().entries().front()->cert.ephid;
  EXPECT_EQ(ap.identify(e1).value(), h1.hid());
  EXPECT_EQ(ap.identify(e2).value(), h2.hid());
  EXPECT_NE(h1.hid(), h2.hid());

  core::EphId bogus;
  EXPECT_EQ(ap.identify(bogus).code(), Errc::not_found);
}

TEST(NatAp, SpoofingInnerHostDropped) {
  // An inner host cannot use another inner host's EphID: the inner MAC
  // check fails at the AP router.
  GwWorld w;
  NatAccessPoint ap({.name = "ap"}, *w.as_a, w.net.directory());
  host::Host& honest = ap.add_inner_host("honest");
  host::Host& evil = ap.add_inner_host("evil");
  ASSERT_TRUE(provision_ephids(honest, w.net.loop(), 1).ok());
  ASSERT_TRUE(provision_ephids(evil, w.net.loop(), 1).ok());
  host::Host& server = w.as_b->add_host("server");
  ASSERT_TRUE(provision_ephids(server, w.net.loop(), 1).ok());

  // Evil crafts a packet claiming honest's EphID; it cannot produce the MAC
  // under honest's inner kHA, so the AP router drops it at the uplink.
  wire::Packet forged;
  forged.src_aid = 0xFF000001;
  forged.src_ephid = honest.pool().entries().front()->cert.ephid.bytes;
  forged.dst_aid = 300;
  forged.dst_ephid = server.pool().entries().front()->cert.ephid.bytes;
  forged.proto = wire::NextProto::data;
  forged.payload = to_bytes("spoofed");
  crypto::ChaChaRng rng(1);
  rng.fill(MutByteSpan(forged.mac.data(), 8));

  const auto egress_before = w.as_a->br().stats().forwarded_out;
  ap.inject_inner(forged.seal());
  w.net.run();
  EXPECT_EQ(ap.stats().drop_bad_inner_mac, 1u);
  EXPECT_EQ(ap.stats().inner_out, 0u);
  EXPECT_EQ(w.as_a->br().stats().forwarded_out, egress_before);

  // An EphID never issued through this AP is dropped as unknown.
  wire::Packet alien = forged;
  rng.fill(MutByteSpan(alien.src_ephid.data(), 16));
  ap.inject_inner(alien.seal());
  w.net.run();
  EXPECT_EQ(ap.stats().drop_unknown_ephid, 1u);
  (void)evil;
}

TEST(NatAp, BurstUplinkMatchesScalarVerdicts) {
  // inject_inner_burst runs the inner MAC checks through the batched
  // verifier and re-MACs survivors through the batched stamping path; the
  // per-packet verdicts and counters must match the scalar inject_inner
  // semantics, and the re-MAC'd packets must satisfy the parent AS's
  // egress MAC verification.
  GwWorld w;
  NatAccessPoint ap({.name = "ap"}, *w.as_a, w.net.directory());
  host::Host& honest = ap.add_inner_host("honest");
  ASSERT_TRUE(provision_ephids(honest, w.net.loop(), 1).ok());
  host::Host& server = w.as_b->add_host("server");
  ASSERT_TRUE(provision_ephids(server, w.net.loop(), 1).ok());

  // Capture the honest host's (inner-MAC'd) uplink frames instead of
  // delivering them, then re-inject them as one burst of views.
  std::vector<wire::PacketBuf> bufs;
  honest.set_uplink([&](wire::PacketBuf p) { bufs.push_back(std::move(p)); });
  ASSERT_TRUE(honest
                  .connect(server.pool().entries().front()->cert, {},
                           [](Result<std::uint64_t>) {})
                  .ok());
  ASSERT_FALSE(bufs.empty());
  const std::size_t valid = bufs.size();

  wire::Packet forged = bufs.front().view().to_owned();
  forged.mac[0] ^= 1;  // breaks the inner MAC
  wire::Packet alien = bufs.front().view().to_owned();
  crypto::ChaChaRng rng(2);
  rng.fill(MutByteSpan(alien.src_ephid.data(), 16));  // never issued here
  bufs.push_back(forged.seal());
  bufs.push_back(alien.seal());
  std::vector<wire::PacketView> burst;
  for (const auto& b : bufs) burst.push_back(b.view());

  const auto egress_before = w.as_a->br().stats().forwarded_out;
  ap.inject_inner_burst(burst);
  w.net.run();

  EXPECT_EQ(ap.stats().inner_out, valid);
  EXPECT_EQ(ap.stats().drop_bad_inner_mac, 1u);
  EXPECT_EQ(ap.stats().drop_unknown_ephid, 1u);
  // Batched re-MAC (forward_as_own_burst) satisfies the Fig 4 egress check.
  EXPECT_EQ(w.as_a->br().stats().forwarded_out, egress_before + valid);
  EXPECT_EQ(w.as_a->br().stats().drop_bad_mac, 0u);
}

// ---- Bridge-mode AP -----------------------------------------------------------

TEST(BridgeAp, HostsAreDirectCustomers) {
  GwWorld w;
  BridgeAccessPoint bridge("bridge", *w.as_a);
  host::Host& h = bridge.add_host("desk");
  ASSERT_TRUE(h.bootstrapped());
  // Direct authentication: the host's HID is in the AS's own host_info.
  EXPECT_EQ(h.aid(), 100u);
  EXPECT_TRUE(w.as_a->state().host_db.contains(h.hid()));

  auto owned = acquire_ephid(h, w.net.loop());
  ASSERT_TRUE(owned.ok());
  // EphID decodes to the HOST's HID, not the bridge's (unlike NAT mode).
  auto plain = w.as_a->state().codec.open((*owned)->cert.ephid);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->hid, h.hid());
  EXPECT_GT(bridge.stats().relayed_up, 0u);
  EXPECT_GT(bridge.stats().relayed_down, 0u);
}

TEST(BridgeAp, EndToEndThroughBridge) {
  GwWorld w;
  BridgeAccessPoint bridge("bridge", *w.as_a);
  host::Host& inside = bridge.add_host("inside");
  host::Host& outside = w.as_b->add_host("outside");
  ASSERT_TRUE(provision_ephids(inside, w.net.loop(), 1).ok());
  ASSERT_TRUE(provision_ephids(outside, w.net.loop(), 1).ok());

  std::string got;
  outside.set_data_handler([&](std::uint64_t, ByteSpan d) {
    got = to_string(d);
  });
  auto sid = inside.connect(outside.pool().entries().front()->cert, {},
                            [](Result<std::uint64_t>) {});
  ASSERT_TRUE(sid.ok());
  (void)inside.send_data(*sid, to_bytes("via bridge"));
  w.net.run();
  EXPECT_EQ(got, "via bridge");
}

// ---- IPv4 gateway ---------------------------------------------------------------

TEST(Ipv4Gateway, DnsInterceptionAssignsSyntheticIp) {
  GwWorld w;
  // An APNA server publishes a name.
  host::Host& server = w.as_b->add_host("server");
  ASSERT_TRUE(provision_ephids(server, w.net.loop(), 1,
                               core::EphIdLifetime::long_term,
                               core::kRequestReceiveOnly).ok());
  ASSERT_TRUE(provision_ephids(server, w.net.loop(), 1).ok());
  const core::EphIdCertificate* ro = nullptr;
  for (const auto& e : server.pool().entries())
    if (e->receive_only()) ro = &e->cert;
  bool pub = false;
  server.publish_name("legacy.example", *ro, 0,
                      [&](Result<void> r) { pub = r.ok(); });
  w.net.run();
  ASSERT_TRUE(pub);

  Ipv4Gateway gw({}, *w.as_a);
  ASSERT_TRUE(provision_ephids(gw.gw_host(), w.net.loop(), 2).ok());

  std::optional<std::uint32_t> ip;
  gw.legacy_resolve("legacy.example",
                    [&](Result<std::uint32_t> r) { if (r.ok()) ip = *r; });
  w.net.run();
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(*ip & 0xFFFF0000, 0x0A630000u);  // synthetic pool

  // Cached on second resolution.
  std::optional<std::uint32_t> ip2;
  gw.legacy_resolve("legacy.example",
                    [&](Result<std::uint32_t> r) { if (r.ok()) ip2 = *r; });
  w.net.run();
  EXPECT_EQ(*ip, *ip2);

  std::optional<Result<std::uint32_t>> missing;
  gw.legacy_resolve("nope.example",
                    [&](Result<std::uint32_t> r) { missing = std::move(r); });
  w.net.run();
  ASSERT_TRUE(missing.has_value());
  EXPECT_FALSE(missing->ok());
}

TEST(Ipv4Gateway, LegacyClientReachesApnaServer) {
  GwWorld w;
  host::Host& server = w.as_b->add_host("server");
  ASSERT_TRUE(provision_ephids(server, w.net.loop(), 2).ok());
  bool pub = false;
  server.publish_name("svc.example", server.pool().entries().front()->cert,
                      0, [&](Result<void> r) { pub = r.ok(); });
  w.net.run();
  ASSERT_TRUE(pub);

  std::string server_got;
  server.set_data_handler([&](std::uint64_t sid, ByteSpan d) {
    server_got = to_string(d);
    (void)server.send_data(sid, to_bytes("apna reply"));
  });

  Ipv4Gateway gw({}, *w.as_a);
  ASSERT_TRUE(provision_ephids(gw.gw_host(), w.net.loop(), 4).ok());

  // The legacy client at 192.168.1.2.
  std::vector<wire::Ipv4Packet> client_rx;
  gw.attach_legacy_host(0xC0A80102, [&](const wire::Ipv4Packet& p) {
    client_rx.push_back(p);
  });

  std::uint32_t dst_ip = 0;
  gw.legacy_resolve("svc.example",
                    [&](Result<std::uint32_t> r) { dst_ip = r.ok() ? *r : 0; });
  w.net.run();
  ASSERT_NE(dst_ip, 0u);

  wire::Ipv4Packet pkt;
  pkt.hdr.src = 0xC0A80102;
  pkt.hdr.dst = dst_ip;
  pkt.hdr.proto = wire::IpProto::tcp;
  pkt.src_port = 50000;
  pkt.dst_port = 80;
  pkt.payload = to_bytes("legacy request");
  gw.on_legacy_packet(pkt);
  w.net.run();

  EXPECT_EQ(server_got, "legacy request");
  ASSERT_EQ(client_rx.size(), 1u);
  EXPECT_EQ(to_string(client_rx[0].payload), "apna reply");
  // The reply arrives FROM the synthetic IP TO the client, ports mirrored.
  EXPECT_EQ(client_rx[0].hdr.src, dst_ip);
  EXPECT_EQ(client_rx[0].hdr.dst, 0xC0A80102u);
  EXPECT_EQ(client_rx[0].dst_port, 50000);
  EXPECT_EQ(gw.stats().flows_created, 1u);

  // Second packet on the same flow reuses the session.
  gw.on_legacy_packet(pkt);
  w.net.run();
  EXPECT_EQ(gw.stats().flows_created, 1u);
  EXPECT_EQ(gw.stats().out_translated, 2u);
}

TEST(Ipv4Gateway, UnresolvedDestinationDropped) {
  GwWorld w;
  Ipv4Gateway gw({}, *w.as_a);
  wire::Ipv4Packet pkt;
  pkt.hdr.src = 0xC0A80102;
  pkt.hdr.dst = 0x08080808;  // never resolved through the gateway
  pkt.hdr.proto = wire::IpProto::udp;
  pkt.payload = to_bytes("x");
  gw.on_legacy_packet(pkt);
  w.net.run();
  EXPECT_EQ(gw.stats().no_mapping_drops, 1u);
  EXPECT_EQ(gw.stats().flows_created, 0u);
}

TEST(Ipv4Gateway, ApnaClientReachesLegacyServer) {
  // Server side: an APNA host connects to a legacy IPv4 server through the
  // server's gateway (virtual endpoints).
  GwWorld w;
  Ipv4Gateway gw({.name = "server-gw"}, *w.as_b);
  ASSERT_TRUE(provision_ephids(gw.gw_host(), w.net.loop(), 2).ok());
  gw.register_server(0x0A000050);  // legacy server 10.0.0.80

  // The legacy server echoes through the gateway.
  std::vector<wire::Ipv4Packet> server_rx;
  gw.attach_legacy_host(0x0A000050, [&](const wire::Ipv4Packet& p) {
    server_rx.push_back(p);
    wire::Ipv4Packet reply;
    reply.hdr.src = 0x0A000050;
    reply.hdr.dst = p.hdr.src;  // the virtual endpoint
    reply.hdr.proto = p.hdr.proto;
    reply.src_port = p.dst_port;
    reply.dst_port = p.src_port;
    reply.payload = to_bytes("legacy server reply");
    gw.on_legacy_packet(reply);
  });

  host::Host& client = w.as_a->add_host("apna-client");
  ASSERT_TRUE(provision_ephids(client, w.net.loop(), 1).ok());
  std::string client_got;
  client.set_data_handler([&](std::uint64_t, ByteSpan d) {
    client_got = to_string(d);
  });

  auto sid = client.connect(gw.gw_host().pool().entries().front()->cert, {},
                            [](Result<std::uint64_t>) {});
  ASSERT_TRUE(sid.ok());
  (void)client.send_data(*sid, to_bytes("hello legacy"));
  w.net.run();

  ASSERT_EQ(server_rx.size(), 1u);
  EXPECT_EQ(to_string(server_rx[0].payload), "hello legacy");
  // The APNA peer appears as a virtual endpoint from the private pool.
  EXPECT_EQ(server_rx[0].hdr.src & 0xFFFF0000, 0x0A640000u);
  EXPECT_EQ(client_got, "legacy server reply");
}

// ---- APNA-as-a-Service -----------------------------------------------------------

TEST(ApnaAsAService, DownstreamCustomersUseUpstreamEphIds) {
  GwWorld w;
  DownstreamAs customer_as({.name = "small-isp"}, *w.as_a,
                           w.net.directory());
  host::Host& cust = customer_as.add_customer("cust-1");
  ASSERT_TRUE(cust.bootstrapped());
  ASSERT_TRUE(provision_ephids(cust, w.net.loop(), 1).ok());

  const auto& eph = cust.pool().entries().front()->cert;
  // §VIII-E privacy benefit: the certificate names the UPSTREAM ISP, so the
  // customer mixes into the upstream anonymity set.
  EXPECT_EQ(eph.aid, 100u);
  EXPECT_EQ(customer_as.upstream_aid(), 100u);
  // The downstream operator can still identify its own customer.
  EXPECT_EQ(customer_as.identify(eph.ephid).value(), cust.hid());

  // End-to-end traffic with a host in another AS.
  host::Host& remote = w.as_b->add_host("remote");
  ASSERT_TRUE(provision_ephids(remote, w.net.loop(), 1).ok());
  std::string got;
  remote.set_data_handler([&](std::uint64_t, ByteSpan d) {
    got = to_string(d);
  });
  auto sid = cust.connect(remote.pool().entries().front()->cert, {},
                          [](Result<std::uint64_t>) {});
  ASSERT_TRUE(sid.ok());
  (void)cust.send_data(*sid, to_bytes("via APNAaaS"));
  w.net.run();
  EXPECT_EQ(got, "via APNAaaS");
}

}  // namespace
}  // namespace apna::gw

// Core-module tests: the Fig 6 EphID construction (including the CCA
// property §VI-A), certificates, host DB, revocation (§VIII-G2), replay
// windows (§VIII-D), sessions/PFS (§VI-B), handshakes (§IV-D1, §VII-A) and
// the control-message codecs.
#include <gtest/gtest.h>

#include "core/as_directory.h"
#include "core/cert.h"
#include "core/ephid.h"
#include "core/handshake.h"
#include "core/host_db.h"
#include "core/keys.h"
#include "core/messages.h"
#include "core/packet_auth.h"
#include "core/replay.h"
#include "core/revocation.h"
#include "core/session.h"
#include "crypto/ed25519.h"
#include "util/hex.h"

namespace apna::core {
namespace {

crypto::ChaChaRng& test_rng() {
  static crypto::ChaChaRng rng(777);
  return rng;
}

EphIdCodec make_codec(std::uint64_t seed = 1) {
  crypto::ChaChaRng rng(seed);
  return EphIdCodec(rng.bytes(16));
}

// ---- EphID (Fig 6) -------------------------------------------------------------

TEST(EphId, RoundtripHidAndExpTime) {
  const EphIdCodec codec = make_codec();
  for (Hid hid : {Hid{1}, Hid{0xdeadbeef}, Hid{0}, Hid{0xffffffff}}) {
    for (ExpTime exp : {ExpTime{0}, ExpTime{1'700'000'123}, ExpTime{0xffffffff}}) {
      const EphId e = codec.issue(hid, exp, test_rng());
      auto plain = codec.open(e);
      ASSERT_TRUE(plain.ok());
      EXPECT_EQ(plain->hid, hid);
      EXPECT_EQ(plain->exp_time, exp);
    }
  }
}

TEST(EphId, SixteenBytesWithFig6Layout) {
  const EphIdCodec codec = make_codec();
  const std::uint32_t iv = 0xcafebabe;
  const EphId e = codec.issue_with_iv(7, 42, iv);
  EXPECT_EQ(e.bytes.size(), 16u);
  // IV occupies bytes 8..11 in clear (Fig 6: EphID = CT ‖ IV ‖ MAC).
  EXPECT_EQ(load_be32(e.bytes.data() + EphIdCodec::kIvOffset), iv);
}

TEST(EphId, SameHidDifferentIvsUnlinkable) {
  // "the use of the IV allows us to generate multiple EphIDs for a single
  // HID" — and the ciphertexts must differ.
  const EphIdCodec codec = make_codec();
  const EphId a = codec.issue_with_iv(7, 42, 1);
  const EphId b = codec.issue_with_iv(7, 42, 2);
  EXPECT_NE(hex_encode(ByteSpan(a.bytes.data(), 8)),
            hex_encode(ByteSpan(b.bytes.data(), 8)));
  EXPECT_TRUE(codec.open(a).ok());
  EXPECT_TRUE(codec.open(b).ok());
}

TEST(EphId, DeterministicForSameIv) {
  const EphIdCodec codec = make_codec();
  EXPECT_EQ(codec.issue_with_iv(7, 42, 9).hex(),
            codec.issue_with_iv(7, 42, 9).hex());
}

TEST(EphId, DifferentAsKeysCannotOpen) {
  const EphIdCodec codec_a = make_codec(1);
  const EphIdCodec codec_b = make_codec(2);
  const EphId e = codec_a.issue(7, 42, test_rng());
  EXPECT_EQ(codec_b.open(e).code(), Errc::decrypt_failed);
}

/// CCA property (§VI-A "Unauthorized EphID Generation"): flipping ANY bit
/// of an EphID must make it invalid. Parameterized over all 128 positions.
class EphIdBitFlip : public ::testing::TestWithParam<int> {};

TEST_P(EphIdBitFlip, AnySingleBitFlipRejected) {
  const EphIdCodec codec = make_codec();
  const EphId e = codec.issue_with_iv(0x01020304, 0x05060708, 0x090a0b0c);
  EphId bad = e;
  const int bit = GetParam();
  bad.bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  EXPECT_EQ(codec.open(bad).code(), Errc::decrypt_failed) << "bit " << bit;
}

INSTANTIATE_TEST_SUITE_P(All128Bits, EphIdBitFlip, ::testing::Range(0, 128));

TEST(EphId, ForgeryWithoutKeyFails) {
  // An adversary stitching random bytes together wins with prob ~2^-32 per
  // try (4-byte tag); 1000 tries must all fail.
  const EphIdCodec codec = make_codec();
  crypto::ChaChaRng rng(99);
  for (int i = 0; i < 1000; ++i) {
    EphId forged;
    rng.fill(MutByteSpan(forged.bytes.data(), 16));
    EXPECT_FALSE(codec.open(forged).ok());
  }
}

// ---- Certificates ---------------------------------------------------------------

struct CertFixture {
  crypto::ChaChaRng rng{55};
  crypto::Ed25519KeyPair as_key = crypto::Ed25519KeyPair::generate(rng);
  EphIdKeyPair host_kp = EphIdKeyPair::generate(rng);
  EphIdCodec codec = EphIdCodec(Bytes(16, 0x42));

  EphIdCertificate make(ExpTime exp, std::uint8_t flags = 0) {
    EphIdCertificate c;
    c.ephid = codec.issue(7, exp, rng);
    c.exp_time = exp;
    c.pub = host_kp.pub;
    c.aid = 64512;
    c.aa_ephid = codec.issue(1, exp, rng);
    c.flags = flags;
    c.sign_with(as_key);
    return c;
  }
};

TEST(Cert, SignVerifyRoundtrip) {
  CertFixture f;
  const auto cert = f.make(1000);
  EXPECT_TRUE(cert.verify(f.as_key.pub, 500).ok());
}

TEST(Cert, ExpiredRejected) {
  CertFixture f;
  const auto cert = f.make(1000);
  EXPECT_EQ(cert.verify(f.as_key.pub, 1001).code(), Errc::expired);
  EXPECT_TRUE(cert.verify(f.as_key.pub, 1000).ok());  // boundary inclusive
}

TEST(Cert, WrongSignerRejected) {
  CertFixture f;
  const auto cert = f.make(1000);
  crypto::ChaChaRng rng2(56);
  const auto other = crypto::Ed25519KeyPair::generate(rng2);
  EXPECT_EQ(cert.verify(other.pub, 500).code(), Errc::bad_signature);
}

TEST(Cert, AnyFieldTamperInvalidatesSignature) {
  CertFixture f;
  auto base = f.make(1000);
  auto tamper = [&](auto mutate) {
    auto c = base;
    mutate(c);
    EXPECT_EQ(c.verify(f.as_key.pub, 500).code(), Errc::bad_signature);
  };
  tamper([](EphIdCertificate& c) { c.ephid.bytes[0] ^= 1; });
  tamper([](EphIdCertificate& c) { c.exp_time += 1; });
  tamper([](EphIdCertificate& c) { c.pub.dh[0] ^= 1; });
  tamper([](EphIdCertificate& c) { c.pub.sig[0] ^= 1; });
  tamper([](EphIdCertificate& c) { c.aid ^= 1; });
  tamper([](EphIdCertificate& c) { c.aa_ephid.bytes[5] ^= 1; });
  tamper([](EphIdCertificate& c) { c.flags ^= kCertReceiveOnly; });
}

TEST(Cert, SerializeParseRoundtrip) {
  CertFixture f;
  const auto cert = f.make(123456, kCertReceiveOnly);
  auto parsed = EphIdCertificate::parse(cert.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, cert);
  EXPECT_TRUE(parsed->receive_only());
  EXPECT_TRUE(parsed->verify(f.as_key.pub, 1).ok());
}

TEST(Cert, ParseRejectsTruncation) {
  CertFixture f;
  const Bytes wire = f.make(1).serialize();
  for (std::size_t len = 0; len < wire.size(); len += 13)
    EXPECT_FALSE(EphIdCertificate::parse(ByteSpan(wire.data(), len)).ok());
}

// ---- Host DB / revocation --------------------------------------------------------

TEST(HostDb, UpsertFindErase) {
  HostDb db;
  HostRecord rec;
  rec.hid = 42;
  rec.subscriber_id = 7;
  db.upsert(rec);
  EXPECT_TRUE(db.contains(42));
  EXPECT_EQ(db.find(42)->subscriber_id, 7u);
  EXPECT_FALSE(db.contains(43));
  EXPECT_FALSE(db.find(43).has_value());
  db.erase(42);
  EXPECT_FALSE(db.contains(42));
  EXPECT_EQ(db.size(), 0u);
}

TEST(Revocation, EphIdAndHidRevocation) {
  RevocationList rl(4);
  EphIdCodec codec = make_codec();
  crypto::ChaChaRng rng(3);
  const EphId e = codec.issue(9, 100, rng);
  EXPECT_FALSE(rl.is_revoked(e));
  rl.revoke_ephid(e, 100, 9);
  EXPECT_TRUE(rl.is_revoked(e));
  EXPECT_FALSE(rl.is_hid_revoked(9));
  rl.revoke_hid(9);
  EXPECT_TRUE(rl.is_hid_revoked(9));
}

TEST(Revocation, PurgeExpiredShrinksList) {
  // §VIII-G2: "the expired EphIDs can be removed from revoked_EphIDs".
  RevocationList rl;
  EphIdCodec codec = make_codec();
  crypto::ChaChaRng rng(4);
  for (ExpTime exp = 1; exp <= 10; ++exp)
    rl.revoke_ephid(codec.issue(exp, exp * 100, rng), exp * 100, exp);
  EXPECT_EQ(rl.size(), 10u);
  EXPECT_EQ(rl.purge_expired(550), 5u);  // exp 100..500 purged
  EXPECT_EQ(rl.size(), 5u);
}

TEST(Revocation, PerHostEscalationThreshold) {
  RevocationList rl(3);
  EphIdCodec codec = make_codec();
  crypto::ChaChaRng rng(5);
  EXPECT_FALSE(rl.over_limit(7));
  rl.revoke_ephid(codec.issue(7, 100, rng), 100, 7);
  rl.revoke_ephid(codec.issue(7, 100, rng), 100, 7);
  EXPECT_FALSE(rl.over_limit(7));
  rl.revoke_ephid(codec.issue(7, 100, rng), 100, 7);
  EXPECT_TRUE(rl.over_limit(7));
  EXPECT_FALSE(rl.over_limit(8));  // other hosts unaffected
}

// ---- Replay window (§VIII-D) --------------------------------------------------------

TEST(Replay, AcceptsFreshRejectsDuplicates) {
  ReplayWindow w(64);
  EXPECT_TRUE(w.accept(1).ok());
  EXPECT_TRUE(w.accept(2).ok());
  EXPECT_EQ(w.accept(1).code(), Errc::replayed);
  EXPECT_EQ(w.accept(2).code(), Errc::replayed);
  EXPECT_TRUE(w.accept(3).ok());
}

TEST(Replay, OutOfOrderWithinWindowAccepted) {
  ReplayWindow w(64);
  EXPECT_TRUE(w.accept(50).ok());
  EXPECT_TRUE(w.accept(10).ok());   // late but inside window
  EXPECT_TRUE(w.accept(49).ok());
  EXPECT_EQ(w.accept(10).code(), Errc::replayed);
}

TEST(Replay, TooOldRejectedConservatively) {
  ReplayWindow w(64);
  EXPECT_TRUE(w.accept(1000).ok());
  EXPECT_EQ(w.accept(1000 - 64).code(), Errc::replayed);
  EXPECT_TRUE(w.accept(1000 - 63).ok());
}

TEST(Replay, LargeJumpClearsWindow) {
  ReplayWindow w(64);
  EXPECT_TRUE(w.accept(5).ok());
  EXPECT_TRUE(w.accept(100000).ok());
  EXPECT_TRUE(w.accept(99990).ok());   // within the new window, unseen
  EXPECT_EQ(w.accept(5).code(), Errc::replayed);  // far behind
}

TEST(Replay, AnchorPolicyFirstNonceDefinesFloorDocumented) {
  // The conservative default: the FIRST observed nonce anchors the window,
  // so a huge first nonce permanently brands all earlier nonces as replays.
  // This is the documented trade-off that StartPolicy::grace exists for.
  ReplayWindow w(64);  // StartPolicy::anchor
  EXPECT_TRUE(w.accept(1'000'000).ok());
  EXPECT_EQ(w.accept(10).code(), Errc::replayed);       // legitimate, early
  EXPECT_EQ(w.accept(999'900).code(), Errc::replayed);  // even near the head
  EXPECT_TRUE(w.accept(1'000'000 - 63).ok());           // inside the window
}

TEST(Replay, GracePolicyAcceptsPreFirstNoncesOnceEach) {
  ReplayWindow w(64, ReplayWindow::StartPolicy::grace);
  EXPECT_TRUE(w.accept(1000).ok());
  // One window below the first-seen nonce: accepted exactly once each.
  EXPECT_TRUE(w.accept(950).ok());
  EXPECT_EQ(w.accept(950).code(), Errc::replayed);
  EXPECT_TRUE(w.accept(936).ok());  // 1000 - 64, the grace floor
  EXPECT_EQ(w.accept(936).code(), Errc::replayed);
  // Below the grace range: still conservatively rejected.
  EXPECT_EQ(w.accept(935).code(), Errc::replayed);
  EXPECT_EQ(w.accept(10).code(), Errc::replayed);
  // The live window is unaffected.
  EXPECT_TRUE(w.accept(1001).ok());
  EXPECT_EQ(w.accept(1001).code(), Errc::replayed);
}

TEST(Replay, GraceSlotBurnedEvenWhenAcceptedInsideLiveWindow) {
  // A pre-first-seen nonce accepted while still inside the live window must
  // not be accepted AGAIN via the grace bitmap after the window slides on.
  ReplayWindow w(64, ReplayWindow::StartPolicy::grace);
  EXPECT_TRUE(w.accept(50).ok());
  EXPECT_TRUE(w.accept(40).ok());  // pre-first, but inside the live window
  EXPECT_TRUE(w.accept(500).ok());  // window slides far past 40
  EXPECT_EQ(w.accept(40).code(), Errc::replayed);
}

TEST(Replay, GraceSweepPropertyAtMostOnce) {
  // The at-most-once property holds under grace too.
  ReplayWindow w(128, ReplayWindow::StartPolicy::grace);
  crypto::ChaChaRng rng(61);
  std::unordered_map<std::uint64_t, int> accepted;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t n = 200 + rng.uniform(512);
    if (w.accept(n).ok()) accepted[n]++;
  }
  for (const auto& [n, count] : accepted)
    EXPECT_EQ(count, 1) << "nonce " << n << " accepted twice";
}

TEST(Replay, WindowSweepProperty) {
  // Every nonce accepted at most once over a random sequence.
  ReplayWindow w(128);
  crypto::ChaChaRng rng(6);
  std::unordered_map<std::uint64_t, int> accepted;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t n = rng.uniform(512);
    if (w.accept(n).ok()) accepted[n]++;
  }
  for (const auto& [n, count] : accepted)
    EXPECT_EQ(count, 1) << "nonce " << n << " accepted twice";
}

// ---- Packet MAC (§IV-D2) ---------------------------------------------------------------

TEST(PacketAuth, StampAndVerify) {
  crypto::ChaChaRng rng(7);
  const crypto::AesCmac key(rng.bytes(16));
  wire::Packet pkt;
  pkt.src_aid = 1;
  pkt.dst_aid = 2;
  pkt.payload = rng.bytes(64);
  stamp_packet_mac(key, pkt);
  EXPECT_TRUE(verify_packet_mac(key, pkt));

  // Any header/payload change invalidates it.
  auto tampered = pkt;
  tampered.dst_aid = 3;
  EXPECT_FALSE(verify_packet_mac(key, tampered));
  tampered = pkt;
  tampered.payload[10] ^= 1;
  EXPECT_FALSE(verify_packet_mac(key, tampered));
  tampered = pkt;
  tampered.src_ephid[0] ^= 1;
  EXPECT_FALSE(verify_packet_mac(key, tampered));

  // Another host's key cannot validate it (EphID spoofing defence, §VI-A).
  const crypto::AesCmac other(rng.bytes(16));
  EXPECT_FALSE(verify_packet_mac(other, pkt));
}

// ---- Sessions and PFS (§VI-B) -----------------------------------------------------------

struct SessionFixture {
  crypto::ChaChaRng rng{88};
  EphIdKeyPair a_kp = EphIdKeyPair::generate(rng);
  EphIdKeyPair b_kp = EphIdKeyPair::generate(rng);
  EphIdCodec codec = EphIdCodec(Bytes(16, 0x24));
  EphId a_eph = codec.issue(1, 100, rng);
  EphId b_eph = codec.issue(2, 100, rng);

  std::pair<Session, Session> make_pair(
      crypto::AeadSuite suite = crypto::AeadSuite::chacha20_poly1305) {
    return {Session::derive(a_kp, a_eph, b_kp.pub.dh, b_eph, suite, true),
            Session::derive(b_kp, b_eph, a_kp.pub.dh, a_eph, suite, false)};
  }
};

TEST(Session, BidirectionalRoundtrip) {
  SessionFixture f;
  auto [a, b] = f.make_pair();
  for (int i = 0; i < 5; ++i) {
    const Bytes msg = to_bytes("ping " + std::to_string(i));
    auto opened = b.open(a.seal(msg));
    ASSERT_TRUE(opened.ok());
    EXPECT_EQ(to_string(*opened), to_string(msg));
    auto opened2 = a.open(b.seal(to_bytes("pong")));
    ASSERT_TRUE(opened2.ok());
  }
}

TEST(Session, DirectionKeysAreIndependent) {
  SessionFixture f;
  auto [a, b] = f.make_pair();
  const Bytes frame = a.seal(to_bytes("hello"));
  // a cannot open its own frame (it is keyed for b's receive side).
  EXPECT_FALSE(a.open(frame).ok());
}

TEST(Session, ReplayedFrameRejected) {
  SessionFixture f;
  auto [a, b] = f.make_pair();
  const Bytes frame = a.seal(to_bytes("once"));
  EXPECT_TRUE(b.open(frame).ok());
  EXPECT_EQ(b.open(frame).code(), Errc::replayed);
}

TEST(Session, TamperedFrameRejected) {
  SessionFixture f;
  auto [a, b] = f.make_pair();
  Bytes frame = a.seal(to_bytes("payload"));
  for (std::size_t i = 0; i < frame.size(); i += 5) {
    Bytes bad = frame;
    bad[i] ^= 0x10;
    auto r = b.open(bad);
    EXPECT_FALSE(r.ok()) << "byte " << i;
  }
  EXPECT_TRUE(b.open(frame).ok());  // original still fine afterwards
}

TEST(Session, DifferentEphIdPairsDeriveDifferentKeys) {
  SessionFixture f;
  auto [a1, b1] = f.make_pair();
  // Same key pairs, different EphIDs ⇒ different session keys.
  const EphId other = f.codec.issue(3, 100, f.rng);
  Session a2 = Session::derive(f.a_kp, f.a_eph, f.b_kp.pub.dh, other,
                               crypto::AeadSuite::chacha20_poly1305, true);
  const Bytes frame = a2.seal(to_bytes("x"));
  EXPECT_FALSE(b1.open(frame).ok());
}

TEST(Session, PerfectForwardSecrecyStructure) {
  // §VI-B: the session key derives ONLY from the EphID key pairs. Wipe
  // them, and nothing that remains (certificates, long-term AS/host keys,
  // transcript) can decrypt recorded traffic. We model the adversary who
  // has everything except the ephemeral private keys: decrypting with keys
  // derived from public material must fail.
  SessionFixture f;
  auto [a, b] = f.make_pair();
  const Bytes recorded = a.seal(to_bytes("secret meeting at noon"));

  // Adversary attempt: derive a "session" from public halves only — they
  // only have pub keys, so the best they can do is guess a DH value. Use a
  // zero-key session as the stand-in for any key not derived from the
  // true ECDH secret.
  EphIdKeyPair fake{};
  fake.pub = f.a_kp.pub;
  Session eavesdropper =
      Session::derive(fake, f.a_eph, f.b_kp.pub.dh, f.b_eph,
                      crypto::AeadSuite::chacha20_poly1305, false);
  EXPECT_FALSE(eavesdropper.open(recorded).ok());
}

// ---- Handshake (§IV-D1 / §VII-A) -------------------------------------------------------

struct HandshakeFixture {
  crypto::ChaChaRng rng{99};
  crypto::Ed25519KeyPair as_a = crypto::Ed25519KeyPair::generate(rng);
  crypto::Ed25519KeyPair as_b = crypto::Ed25519KeyPair::generate(rng);
  AsDirectory dir;
  EphIdCodec codec_a = EphIdCodec(Bytes(16, 1));
  EphIdCodec codec_b = EphIdCodec(Bytes(16, 2));

  EphIdKeyPair client_kp = EphIdKeyPair::generate(rng);
  EphIdKeyPair server_r_kp = EphIdKeyPair::generate(rng);  // receive-only
  EphIdKeyPair server_s_kp = EphIdKeyPair::generate(rng);  // serving
  EphIdCertificate client_cert, server_r_cert, server_s_cert;

  HandshakeFixture() {
    AsPublicInfo ia;
    ia.aid = 1;
    ia.sign_pub = as_a.pub;
    dir.register_as(ia);
    AsPublicInfo ib;
    ib.aid = 2;
    ib.sign_pub = as_b.pub;
    dir.register_as(ib);

    client_cert = make_cert(codec_a, as_a, 1, client_kp, 0);
    server_r_cert = make_cert(codec_b, as_b, 2, server_r_kp, kCertReceiveOnly);
    server_s_cert = make_cert(codec_b, as_b, 2, server_s_kp, 0);
  }

  EphIdCertificate make_cert(EphIdCodec& codec,
                             const crypto::Ed25519KeyPair& as_key, Aid aid,
                             const EphIdKeyPair& kp, std::uint8_t flags) {
    EphIdCertificate c;
    c.ephid = codec.issue(static_cast<Hid>(rng.next_u32()), 10'000, rng);
    c.exp_time = 10'000;
    c.pub = kp.pub;
    c.aid = aid;
    c.aa_ephid = codec.issue(1, 10'000, rng);
    c.flags = flags;
    c.sign_with(as_key);
    return c;
  }
};

TEST(Handshake, HostToHostEstablishesMatchingSessions) {
  HandshakeFixture f;
  auto start = handshake_initiate(f.server_s_cert, f.dir, 100, f.client_kp,
                                  f.client_cert,
                                  crypto::AeadSuite::chacha20_poly1305, {}, 1);
  ASSERT_TRUE(start.ok());
  auto resp = handshake_respond(start->init, f.dir, 100, f.server_s_kp,
                                f.server_s_cert, f.server_s_kp,
                                f.server_s_cert, 2);
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(resp->early_data.empty());
  EXPECT_FALSE(resp->early_session.has_value());

  // serving == contacted ⇒ the client keeps its early session.
  Session& client_sess = start->early_session;
  auto opened = resp->session.open(client_sess.seal(to_bytes("hi")));
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(to_string(*opened), "hi");
}

TEST(Handshake, ZeroRttEarlyDataDelivered) {
  HandshakeFixture f;
  auto start = handshake_initiate(
      f.server_s_cert, f.dir, 100, f.client_kp, f.client_cert,
      crypto::AeadSuite::chacha20_poly1305, to_bytes("GET / HTTP/1.1"), 1);
  ASSERT_TRUE(start.ok());
  ASSERT_FALSE(start->init.early_data.empty());
  auto resp = handshake_respond(start->init, f.dir, 100, f.server_s_kp,
                                f.server_s_cert, f.server_s_kp,
                                f.server_s_cert, 2);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(to_string(resp->early_data), "GET / HTTP/1.1");
}

TEST(Handshake, ReceiveOnlyContactedServesFromDifferentEphId) {
  HandshakeFixture f;
  auto start = handshake_initiate(f.server_r_cert, f.dir, 100, f.client_kp,
                                  f.client_cert,
                                  crypto::AeadSuite::chacha20_poly1305, {}, 1);
  ASSERT_TRUE(start.ok());
  auto resp = handshake_respond(start->init, f.dir, 100, f.server_r_kp,
                                f.server_r_cert, f.server_s_kp,
                                f.server_s_cert, 2);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->response.serving_cert.ephid, f.server_s_cert.ephid);
  ASSERT_TRUE(resp->early_session.has_value());

  auto client_final = handshake_finish(resp->response, f.dir, 100,
                                       f.client_kp, f.client_cert,
                                       f.server_r_cert);
  ASSERT_TRUE(client_final.ok());
  auto opened = resp->session.open(client_final->seal(to_bytes("query")));
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(to_string(*opened), "query");
}

TEST(Handshake, ServingFromReceiveOnlyRejected) {
  // The server must not serve from the receive-only EphID (§VII-A).
  HandshakeFixture f;
  auto start = handshake_initiate(f.server_r_cert, f.dir, 100, f.client_kp,
                                  f.client_cert,
                                  crypto::AeadSuite::chacha20_poly1305, {}, 1);
  ASSERT_TRUE(start.ok());
  auto resp = handshake_respond(start->init, f.dir, 100, f.server_r_kp,
                                f.server_r_cert, f.server_r_kp,
                                f.server_r_cert, 2);
  EXPECT_EQ(resp.code(), Errc::unauthorized);
}

TEST(Handshake, ReceiveOnlyClientRejected) {
  HandshakeFixture f;
  EphIdKeyPair ro_kp = EphIdKeyPair::generate(f.rng);
  auto ro_cert = f.make_cert(f.codec_a, f.as_a, 1, ro_kp, kCertReceiveOnly);
  auto start = handshake_initiate(f.server_s_cert, f.dir, 100, ro_kp, ro_cert,
                                  crypto::AeadSuite::chacha20_poly1305, {}, 1);
  EXPECT_EQ(start.code(), Errc::unauthorized);
}

TEST(Handshake, MitmCertificateSwapFails) {
  // §VI-B: a malicious AS replaces the server's certificate with its own.
  HandshakeFixture f;
  crypto::ChaChaRng mallory_rng(123);
  crypto::Ed25519KeyPair mallory_as = crypto::Ed25519KeyPair::generate(mallory_rng);
  EphIdKeyPair mallory_kp = EphIdKeyPair::generate(mallory_rng);
  // Mallory's AS (aid 3) is NOT the AS that issued the contacted cert.
  EphIdCertificate fake = f.server_s_cert;
  fake.pub = mallory_kp.pub;
  fake.sign_with(mallory_as);  // not AS B's key

  // Client validates the fake certificate against AS B's published key.
  auto start = handshake_initiate(fake, f.dir, 100, f.client_kp,
                                  f.client_cert,
                                  crypto::AeadSuite::chacha20_poly1305, {}, 1);
  EXPECT_EQ(start.code(), Errc::bad_signature);
}

TEST(Handshake, ServingCertFromDifferentAsRejected) {
  HandshakeFixture f;
  auto start = handshake_initiate(f.server_r_cert, f.dir, 100, f.client_kp,
                                  f.client_cert,
                                  crypto::AeadSuite::chacha20_poly1305, {}, 1);
  ASSERT_TRUE(start.ok());
  // A (valid) certificate from AS 1 posing as the serving cert.
  HandshakeResponse forged;
  forged.serving_cert = f.client_cert;  // issued by AS 1, not AS 2
  forged.server_nonce = 9;
  forged.suite = crypto::AeadSuite::chacha20_poly1305;
  auto finished = handshake_finish(forged, f.dir, 100, f.client_kp,
                                   f.client_cert, f.server_r_cert);
  EXPECT_EQ(finished.code(), Errc::bad_certificate);
}

TEST(Handshake, ExpiredPeerCertRejected) {
  HandshakeFixture f;
  auto start = handshake_initiate(f.server_s_cert, f.dir, 20'000, f.client_kp,
                                  f.client_cert,
                                  crypto::AeadSuite::chacha20_poly1305, {}, 1);
  EXPECT_EQ(start.code(), Errc::expired);
}

// ---- Control sealing (Fig 3 encryption) -----------------------------------------------

TEST(ControlSeal, RoundtripAndDirectionSeparation) {
  crypto::ChaChaRng rng(11);
  crypto::SharedSecret dh{};
  rng.fill(MutByteSpan(dh.data(), dh.size()));
  const HostAsKeys keys = HostAsKeys::derive(dh);

  const Bytes pt = to_bytes("ephid request");
  const Bytes sealed = seal_control(keys, 7, true, pt);
  auto opened = open_control(keys, true, sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(to_string(*opened), "ephid request");
  // Same counter, opposite direction must NOT decrypt (nonce separation).
  EXPECT_FALSE(open_control(keys, false, sealed).ok());
}

TEST(ControlSeal, WrongKeyRejected) {
  crypto::ChaChaRng rng(12);
  crypto::SharedSecret dh1{}, dh2{};
  rng.fill(MutByteSpan(dh1.data(), 32));
  rng.fill(MutByteSpan(dh2.data(), 32));
  const auto k1 = HostAsKeys::derive(dh1);
  const auto k2 = HostAsKeys::derive(dh2);
  const Bytes sealed = seal_control(k1, 1, true, to_bytes("x"));
  EXPECT_FALSE(open_control(k2, true, sealed).ok());
}

// ---- Message codecs ----------------------------------------------------------------------

TEST(Messages, EphIdRequestRoundtrip) {
  crypto::ChaChaRng rng(13);
  auto kp = EphIdKeyPair::generate(rng);
  EphIdRequest req;
  req.ephid_pub = kp.pub;
  req.flags = kRequestReceiveOnly;
  req.lifetime = EphIdLifetime::medium_term;
  req.pop_sig = kp.sign(req.pop_tbs());
  auto parsed = EphIdRequest::parse(req.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->ephid_pub, req.ephid_pub);
  EXPECT_EQ(parsed->flags, req.flags);
  EXPECT_EQ(parsed->lifetime, req.lifetime);
  EXPECT_EQ(parsed->pop_sig, req.pop_sig);
  // The proof-of-possession covers the key material and survives parsing.
  EXPECT_TRUE(crypto::ed25519_verify(parsed->ephid_pub.sig, parsed->pop_tbs(),
                                     parsed->pop_sig));
}

TEST(Messages, BootstrapRequestRoundtrip) {
  crypto::ChaChaRng rng(14);
  BootstrapRequest req;
  req.subscriber_id = 1234;
  req.credential = rng.bytes(20);
  req.host_pub = crypto::X25519KeyPair::generate(rng).pub;
  auto parsed = BootstrapRequest::parse(req.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->subscriber_id, 1234u);
  EXPECT_EQ(hex_encode(parsed->credential), hex_encode(req.credential));
}

TEST(Messages, ShutoffRequestRoundtrip) {
  CertFixture f;
  ShutoffRequest req;
  req.offending_packet = f.rng.bytes(80);
  f.rng.fill(MutByteSpan(req.sig.data(), 64));
  req.dst_cert = f.make(500);
  auto parsed = ShutoffRequest::parse(req.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(hex_encode(parsed->offending_packet),
            hex_encode(req.offending_packet));
  EXPECT_EQ(parsed->dst_cert, req.dst_cert);
}

TEST(Messages, DnsRecordSignedRoundtrip) {
  CertFixture f;
  crypto::Ed25519KeyPair dns_key = crypto::Ed25519KeyPair::generate(f.rng);
  DnsRecord rec;
  rec.name = "shop.example";
  rec.cert = f.make(500, kCertReceiveOnly);
  rec.ipv4 = 0x0a000042;
  rec.sig = dns_key.sign(rec.tbs());

  DnsResponse resp;
  resp.status = 0;
  resp.record = rec;
  auto parsed = DnsResponse::parse(resp.serialize());
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(parsed->record.has_value());
  EXPECT_EQ(parsed->record->name, "shop.example");
  EXPECT_TRUE(crypto::ed25519_verify(dns_key.pub, parsed->record->tbs(),
                                     parsed->record->sig));
  // Tampered name invalidates the DNSSEC-style signature.
  auto bad = *parsed->record;
  bad.name = "evil.example";
  EXPECT_FALSE(crypto::ed25519_verify(dns_key.pub, bad.tbs(), bad.sig));
}

TEST(Messages, IcmpRoundtripAndBadTypeRejected) {
  IcmpMessage m;
  m.type = IcmpType::packet_too_big;
  m.code = 1280;
  m.data = to_bytes("hdr");
  auto parsed = IcmpMessage::parse(m.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->type, IcmpType::packet_too_big);
  EXPECT_EQ(parsed->code, 1280u);

  Bytes bad = m.serialize();
  bad[0] = 0x66;
  EXPECT_FALSE(IcmpMessage::parse(bad).ok());
}

TEST(Messages, HandshakeInitRoundtrip) {
  CertFixture f;
  HandshakeInit init;
  init.client_cert = f.make(100);
  init.client_nonce = 0x1234;
  init.suite = crypto::AeadSuite::aes128_gcm;
  init.early_data = f.rng.bytes(32);
  auto parsed = HandshakeInit::parse(init.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->client_cert, init.client_cert);
  EXPECT_EQ(parsed->suite, crypto::AeadSuite::aes128_gcm);
  EXPECT_EQ(hex_encode(parsed->early_data), hex_encode(init.early_data));
}

// ---- EphID key pairs -----------------------------------------------------------------------

TEST(Keys, EphIdKeyPairDeterministicFromSeed) {
  const Bytes seed(32, 0x11);
  auto a = EphIdKeyPair::from_seed(seed);
  auto b = EphIdKeyPair::from_seed(seed);
  EXPECT_EQ(a.pub, b.pub);
  const Bytes other(32, 0x12);
  EXPECT_FALSE(EphIdKeyPair::from_seed(other).pub == a.pub);
}

TEST(Keys, SignWithEphIdKeyVerifies) {
  crypto::ChaChaRng rng(15);
  auto kp = EphIdKeyPair::generate(rng);
  const Bytes msg = to_bytes("shutoff evidence");
  EXPECT_TRUE(crypto::ed25519_verify(kp.pub.sig, msg, kp.sign(msg)));
}

TEST(Keys, HostAsKeysDeterministicAndSplit) {
  crypto::SharedSecret dh{};
  dh[3] = 7;
  auto k1 = HostAsKeys::derive(dh);
  auto k2 = HostAsKeys::derive(dh);
  EXPECT_EQ(hex_encode(k1.enc), hex_encode(k2.enc));
  EXPECT_EQ(hex_encode(k1.mac), hex_encode(k2.mac));
  EXPECT_NE(hex_encode(ByteSpan(k1.enc.data(), 16)), hex_encode(k1.mac));
}

// ---- ShardedMap stripe accounting (scenario-engine memory reports) -----------

TEST(ShardedMap, StripeStatsSumToSizeAndGrowWithEntries) {
  ShardedMap<Hid, ExpTime> map(4);
  const std::size_t empty_bytes = map.approx_memory_bytes();
  EXPECT_GT(empty_bytes, 0u);  // stripe headers are real memory

  constexpr std::size_t kN = 1000;
  for (Hid hid = 1; hid <= kN; ++hid)
    map.insert_or_assign(hid, static_cast<ExpTime>(hid));

  const auto per_stripe = map.stripe_stats();
  ASSERT_EQ(per_stripe.size(), map.shard_count());
  std::size_t entries = 0, bytes = 0;
  for (const auto& s : per_stripe) {
    // Sequential HIDs spread across every stripe — no stripe is starved.
    EXPECT_GT(s.entries, 0u);
    EXPECT_GE(s.buckets, s.entries / 2);  // load factor stayed sane
    entries += s.entries;
    bytes += s.bytes;
  }
  EXPECT_EQ(entries, map.size());
  EXPECT_EQ(entries, kN);
  // The aggregate equals the per-stripe sum (plus the container header) and
  // the per-entry model actually charges for the inserted entries.
  EXPECT_EQ(map.approx_memory_bytes(), bytes + sizeof(map));
  EXPECT_GE(map.approx_memory_bytes(),
            empty_bytes + kN * sizeof(std::pair<const Hid, ExpTime>));
}

}  // namespace
}  // namespace apna::core

// Trace-generator tests (workload substrate S9): determinism, calibration
// targets and shape properties.
#include <gtest/gtest.h>

#include <cmath>

#include "trace/trace_gen.h"

namespace apna::trace {
namespace {

TraceConfig quick_config() {
  TraceConfig cfg;
  cfg.scale = 64;  // quick: ~2.8 M arrivals
  return cfg;
}

TEST(TraceGen, DeterministicPerSeed) {
  TraceConfig cfg = quick_config();
  TraceGenerator g1(cfg), g2(cfg);
  const auto s1 = g1.run();
  const auto s2 = g2.run();
  EXPECT_EQ(s1.total_entries, s2.total_entries);
  EXPECT_EQ(s1.peak_arrivals_per_s, s2.peak_arrivals_per_s);
  EXPECT_EQ(s1.unique_hosts, s2.unique_hosts);

  cfg.seed = 43;
  TraceGenerator g3(cfg);
  EXPECT_NE(g3.run().total_entries, s1.total_entries);
}

TEST(TraceGen, DiurnalEnvelopeShape) {
  TraceGenerator g(quick_config());
  // Minimum at t=0 (night), maximum mid-day.
  const double night = g.rate_at(0);
  const double noonish = g.rate_at(12 * 3600);
  EXPECT_LT(night, noonish);
  EXPECT_NEAR(night, g.config().night_floor_per_s / g.config().scale, 1.0);
  EXPECT_NEAR(noonish, g.config().day_peak_per_s / g.config().scale, 1.0);
}

TEST(TraceGen, PeakNearMidday) {
  const auto stats = TraceGenerator(quick_config()).run();
  EXPECT_GT(stats.peak_arrival_second, 6u * 3600);
  EXPECT_LT(stats.peak_arrival_second, 18u * 3600);
}

TEST(TraceGen, DurationCalibrationMatchesPaper) {
  // ~98 % of flows under 15 minutes (the [11] statistic used in §VIII-G1).
  const auto stats = TraceGenerator(quick_config()).run();
  EXPECT_GT(stats.fraction_under_15min, 0.97);
  EXPECT_LT(stats.fraction_under_15min, 0.99);
}

TEST(TraceGen, PeakRateMatchesConfiguredEnvelope) {
  TraceConfig cfg = quick_config();
  const auto stats = TraceGenerator(cfg).run();
  const double expected_peak = cfg.day_peak_per_s / cfg.scale;
  // Poisson noise: the max over 86400 draws sits a few sigmas above the
  // envelope peak; allow 6σ plus slack.
  EXPECT_GT(stats.peak_arrivals_per_s, expected_peak * 0.9);
  EXPECT_LT(stats.peak_arrivals_per_s,
            expected_peak + 6.0 * std::sqrt(expected_peak) + 5.0);
}

TEST(TraceGen, MostHostsAppear) {
  // With ~2.2 arrivals per host even at scale, most of the population
  // should appear at least once.
  TraceConfig cfg = quick_config();
  const auto stats = TraceGenerator(cfg).run();
  const std::uint64_t hosts = cfg.num_hosts / cfg.scale;
  EXPECT_GT(stats.unique_hosts, hosts * 7 / 10);
  EXPECT_LE(stats.unique_hosts, hosts);
}

TEST(TraceGen, ArrivalsPerSecondMatchesRunTotals) {
  TraceConfig cfg = quick_config();
  cfg.duration_s = 3600;  // one hour is enough for this identity
  TraceGenerator g(cfg);
  const auto per_second = g.arrivals_per_second();
  ASSERT_EQ(per_second.size(), cfg.duration_s);
  std::uint64_t sum = 0;
  std::uint32_t peak = 0;
  for (auto a : per_second) {
    sum += a;
    peak = std::max(peak, a);
  }
  const auto stats = g.run();
  EXPECT_EQ(stats.total_entries, sum);
  EXPECT_EQ(stats.peak_arrivals_per_s, peak);
}

TEST(TraceGen, ConcurrencyExceedsArrivalRate) {
  // Flows last ~minutes, so concurrent flows far exceed per-second
  // arrivals — the distinction behind the paper's "3,888 sessions/s".
  const auto stats = TraceGenerator(quick_config()).run();
  EXPECT_GT(stats.peak_concurrent, stats.peak_arrivals_per_s * 5u);
}

TEST(TraceGen, FullScaleEnvelopeMatchesPaperNumbers) {
  // Without sampling the full day at scale 1 (expensive), check the
  // configured envelope reproduces the paper's headline numbers.
  TraceConfig cfg;
  EXPECT_EQ(cfg.num_hosts, 1'266'598u);
  EXPECT_NEAR(cfg.day_peak_per_s, 3888.0, 1e-9);
  // Mean rate ≈ (floor+peak)/2 → total entries ≈ 178 M/day, matching the
  // 104 M + 74 M HTTP(S) entries.
  const double mean = (cfg.night_floor_per_s + cfg.day_peak_per_s) / 2.0;
  EXPECT_NEAR(mean * 86400, 178e6, 4e6);
}

}  // namespace
}  // namespace apna::trace

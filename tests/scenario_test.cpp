// Scenario-engine properties (src/scenario) — the scale-sensitive
// invariants the integration examples were too small to exercise:
//  * never-cache-negatives under attack: a pure bogus-EphID flood drops
//    every packet at authenticated EphID decryption and inserts NOTHING
//    into any worker's FlowCache;
//  * resilience: legitimate-traffic hit rates recover to baseline after a
//    flood and after mass-revocation epoch churn;
//  * mass-revocation soak: cached and uncached classification stay verdict-
//    identical across 10k-revocation waves interleaved with classify
//    bursts (the VerdictEpoch invalidation contract at scale);
//  * determinism: two engines with the same seed produce identical
//    deterministic phase counters; different seeds diverge.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/packet_auth.h"
#include "scenario/scenario.h"

namespace apna::scenario {
namespace {

Engine::Config small_config(std::uint64_t seed = 7) {
  Engine::Config cfg;
  cfg.seed = seed;
  cfg.threads = 2;
  cfg.active_flows = 64;
  return cfg;
}

// ---- Flood properties --------------------------------------------------------

TEST(ScenarioFlood, BogusEphIdsNeverPopulateAnyFlowCache) {
  Engine engine(small_config());
  engine.run_phase(Phase::register_hosts("prov", 2'000));

  // 100% forged EphIDs, no garbage frames: every packet parses, reaches
  // classification and must die at authenticated EphID decryption.
  Phase flood = Phase::flood("pure_flood", 8, 256, /*bogus=*/1.0,
                             /*garbage=*/0.0);
  const PhaseReport r = engine.run_phase(flood);

  ASSERT_GT(r.packets, 0u);
  EXPECT_EQ(r.rx_rejected, 0u);  // all frames were well-formed
  EXPECT_EQ(r.router.drop_bad_ephid, r.packets);
  EXPECT_EQ(r.router.forwarded_out, 0u);
  // The never-cache-negatives property, summed over every worker's cache:
  // drops are never memoized, so the flood inserts nothing and hits nothing.
  EXPECT_EQ(r.cache.insertions, 0u);
  EXPECT_EQ(r.cache.hits, 0u);
}

TEST(ScenarioFlood, GarbageFramesDieAtBindBeforeTheRouter) {
  Engine engine(small_config());
  engine.run_phase(Phase::register_hosts("prov", 500));

  Phase flood = Phase::flood("garbage_only", 4, 128, /*bogus=*/0.0,
                             /*garbage=*/1.0);
  const PhaseReport r = engine.run_phase(flood);

  // Unparseable frames are counted at the transport (rx_rejected) and
  // never reach classification — the classified-packet count is zero.
  EXPECT_EQ(r.packets, 0u);
  EXPECT_EQ(r.rx_rejected, 4u * 128u);
  EXPECT_EQ(r.router.total_drops(), 0u);
  EXPECT_EQ(r.cache.insertions, 0u);
}

TEST(ScenarioFlood, HitRateRecoversAfterFlood) {
  Engine engine(small_config());
  engine.run_phase(Phase::register_hosts("prov", 2'000));

  const PhaseReport baseline =
      engine.run_phase(Phase::traffic("baseline", 16, 256));
  engine.run_phase(Phase::flood("flood", 8, 512, 0.8, 0.1));
  const PhaseReport recovery =
      engine.run_phase(Phase::traffic("recovery", 16, 256));

  ASSERT_GT(baseline.cache.hit_rate(), 0.5);
  // The flood neither poisoned nor displaced the legitimate working set's
  // cache efficiency: the post-storm phase (a structurally identical
  // traffic script) recovers to baseline.
  EXPECT_GE(recovery.cache.hit_rate(), baseline.cache.hit_rate() - 0.05);
  EXPECT_EQ(recovery.router.total_drops(), 0u);
}

// ---- Mass-revocation soak ----------------------------------------------------

/// Standalone soak fixture: one AS, a burst of sealed legitimate packets,
/// one router classifying the SAME burst with and without a FlowCache while
/// revocation waves hammer VerdictEpoch between rounds.
struct SoakFixture {
  crypto::ChaChaRng rng{99};
  core::AsState as{64512, core::AsSecrets::generate(rng)};
  core::ExpTime now = 1'700'000'000;
  static constexpr core::Hid kHosts = 256;
  std::vector<core::HostAsKeys> keys;
  std::vector<core::EphId> flows;
  std::unique_ptr<router::BorderRouter> br;

  SoakFixture() {
    for (core::Hid hid = 1; hid <= kHosts; ++hid) {
      core::HostRecord rec;
      rec.hid = hid;
      rng.fill(MutByteSpan(rec.keys.enc.data(), rec.keys.enc.size()));
      rng.fill(MutByteSpan(rec.keys.mac.data(), rec.keys.mac.size()));
      as.host_db.upsert(rec);
      keys.push_back(rec.keys);
      flows.push_back(as.codec.issue(hid, now + 7200, rng));
    }
    router::BorderRouter::Callbacks cb;
    cb.now = [this] { return now; };
    br = std::make_unique<router::BorderRouter>(as, std::move(cb));
  }

  wire::Packet egress_packet(core::Hid hid) {
    wire::Packet pkt;
    pkt.src_aid = as.aid;
    pkt.src_ephid = flows[hid - 1].bytes;
    pkt.dst_aid = 64513;
    rng.fill(MutByteSpan(pkt.dst_ephid.data(), 16));
    pkt.proto = wire::NextProto::data;
    pkt.payload = rng.bytes(48);
    core::stamp_packet_mac(
        crypto::AesCmac(ByteSpan(keys[hid - 1].mac.data(), 16)), pkt);
    return pkt;
  }
};

TEST(ScenarioSoak, CachedVerdictsMatchUncachedAcross10kRevocations) {
  SoakFixture f;
  core::FlowCache cache(1024);

  // A Zipf-ish burst over the flow set (hot flows repeat — the cacheable
  // case that must keep re-verifying correctly as the epoch advances).
  std::vector<wire::PacketBuf> bufs;
  std::vector<wire::PacketView> views;
  for (std::size_t i = 0; i < 512; ++i) {
    const core::Hid hid =
        1 + static_cast<core::Hid>(f.rng.next_u32() %
                                   (i % 4 == 0 ? SoakFixture::kHosts : 16));
    bufs.push_back(f.egress_packet(hid).seal());
    views.push_back(bufs.back().view());
  }

  constexpr std::size_t kWaves = 10, kRevocationsPerWave = 1'000;
  std::uint64_t revoked_verdicts = 0;
  for (std::size_t wave = 0; wave <= kWaves; ++wave) {
    std::vector<router::BorderRouter::Verdict> cached(views.size());
    std::vector<router::BorderRouter::Verdict> uncached(views.size());
    router::BorderRouter::Stats cs, us;
    f.br->classify_outgoing_burst(views, f.now, cached, cs, true, &cache);
    f.br->classify_outgoing_burst(views, f.now, uncached, us, true, nullptr);
    for (std::size_t i = 0; i < views.size(); ++i) {
      ASSERT_EQ(static_cast<int>(cached[i].err),
                static_cast<int>(uncached[i].err))
          << "wave " << wave << " packet " << i;
      ASSERT_EQ(cached[i].hid, uncached[i].hid)
          << "wave " << wave << " packet " << i;
      if (cached[i].err == Errc::revoked) ++revoked_verdicts;
    }
    if (wave == kWaves) break;

    // The wave: 1k revocations — one hits a hot live flow (so revoked
    // verdicts actually appear in the next burst), the rest are fresh
    // EphIDs of random hosts (pure epoch churn).
    f.as.revoked.revoke_ephid(f.flows[wave], f.now + 7200,
                              static_cast<core::Hid>(wave + 1));
    for (std::size_t i = 1; i < kRevocationsPerWave; ++i) {
      const core::Hid hid =
          1 + static_cast<core::Hid>(f.rng.next_u32() % SoakFixture::kHosts);
      f.as.revoked.revoke_ephid(f.as.codec.issue(hid, f.now + 7200, f.rng),
                                f.now + 7200, hid);
    }
  }

  // 10k revocations really were applied, epoch churn really invalidated
  // cached verdicts, and revoked flows really started dropping.
  EXPECT_GE(f.as.revoked.size(), kWaves * kRevocationsPerWave);
  EXPECT_GT(cache.stats().stale_gen, 0u);
  EXPECT_GT(revoked_verdicts, 0u);
}

TEST(ScenarioSoak, EngineRevocationWaveKeepsClassifying) {
  Engine engine(small_config());
  engine.run_phase(Phase::register_hosts("prov", 5'000));
  engine.run_phase(Phase::traffic("warm", 8, 256));

  const PhaseReport wave = engine.run_phase(
      Phase::revocation_wave("wave", 10'000, 10, 4, 256));
  EXPECT_EQ(wave.revocations_applied, 10'000u);
  EXPECT_GE(wave.epoch, 10'000u);          // every revocation bumped it
  EXPECT_GT(wave.cache.stale_gen, 0u);     // caches were invalidated...
  EXPECT_GT(wave.router.forwarded_out, 0u);  // ...yet traffic kept flowing
  EXPECT_GT(wave.router.drop_revoked, 0u);   // and revoked flows dropped

  const PhaseReport recovery =
      engine.run_phase(Phase::traffic("recover", 8, 256));
  EXPECT_GT(recovery.cache.hit_rate(), 0.5);
}

// ---- Shutoff storms ----------------------------------------------------------

TEST(ScenarioStorm, ShutoffStormRevokesAndEscalates) {
  Engine engine(small_config());
  engine.run_phase(Phase::register_hosts("prov", 1'000));

  // 8 attackers × 20 requests each: every attacker crosses the §VIII-G2
  // threshold (16) mid-storm.
  const PhaseReport r =
      engine.run_phase(Phase::shutoff_storm("storm", 160));
  EXPECT_EQ(r.shutoff_requests, 160u);
  EXPECT_GT(r.aa_accepted, 0u);
  EXPECT_GT(r.aa_hid_escalations, 0u);
  EXPECT_GT(r.epoch, 1u);                 // revocation instructions landed
  EXPECT_GT(r.revoked_entries, 0u);
}

// ---- Determinism -------------------------------------------------------------

std::vector<Phase> determinism_script() {
  return {
      Phase::register_hosts("prov", 3'000),
      Phase::traffic("traffic", 8, 256),
      Phase::flood("flood", 4, 256, 0.8, 0.1),
      Phase::shutoff_storm("storm", 48),
      Phase::revocation_wave("wave", 2'000, 4, 2, 128),
      Phase::replay_tamper("replay", 4, 128),
  };
}

void expect_same_deterministic_fields(const PhaseReport& a,
                                      const PhaseReport& b,
                                      bool compare_cache = true) {
  EXPECT_EQ(a.packets, b.packets) << a.name;
  EXPECT_EQ(a.joins, b.joins) << a.name;
  EXPECT_EQ(a.leaves, b.leaves) << a.name;
  EXPECT_EQ(a.shutoff_requests, b.shutoff_requests) << a.name;
  EXPECT_EQ(a.revocations_applied, b.revocations_applied) << a.name;
  EXPECT_EQ(a.router.forwarded_out, b.router.forwarded_out) << a.name;
  EXPECT_EQ(a.router.total_drops(), b.router.total_drops()) << a.name;
  EXPECT_EQ(a.router.drop_bad_ephid, b.router.drop_bad_ephid) << a.name;
  EXPECT_EQ(a.router.drop_revoked, b.router.drop_revoked) << a.name;
  EXPECT_EQ(a.router.drop_replayed, b.router.drop_replayed) << a.name;
  if (compare_cache) {
    // Per-worker cache counters are deterministic only for a FIXED thread
    // count: a flow that migrates between workers re-misses in each
    // worker's cache (the cross_worker_duplicates gauge measures exactly
    // this), so the split of hits/misses depends on the worker count.
    EXPECT_EQ(a.cache.hits, b.cache.hits) << a.name;
    EXPECT_EQ(a.cache.misses, b.cache.misses) << a.name;
    EXPECT_EQ(a.cache.insertions, b.cache.insertions) << a.name;
  }
  EXPECT_EQ(a.rx_rejected, b.rx_rejected) << a.name;
  EXPECT_EQ(a.rx_delivered, b.rx_delivered) << a.name;
  EXPECT_EQ(a.aa_accepted, b.aa_accepted) << a.name;
  EXPECT_EQ(a.aa_rejected, b.aa_rejected) << a.name;
  EXPECT_EQ(a.aa_hid_escalations, b.aa_hid_escalations) << a.name;
  EXPECT_EQ(a.epoch, b.epoch) << a.name;
  EXPECT_EQ(a.live_hosts, b.live_hosts) << a.name;
  EXPECT_EQ(a.revoked_entries, b.revoked_entries) << a.name;
  EXPECT_EQ(a.host_db_bytes, b.host_db_bytes) << a.name;
  EXPECT_EQ(a.revocation_bytes, b.revocation_bytes) << a.name;
}

TEST(ScenarioDeterminism, SameSeedSameCountersAcrossEngines) {
  Engine a(small_config(42));
  Engine b(small_config(42));
  const auto ra = a.run_script(determinism_script());
  const auto rb = b.run_script(determinism_script());
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i)
    expect_same_deterministic_fields(ra[i], rb[i]);
}

TEST(ScenarioDeterminism, DifferentSeedsDiverge) {
  Engine a(small_config(1));
  Engine b(small_config(2));
  // The flood phase's forged EphIDs and traffic mix are seed-driven; two
  // seeds agreeing on every drop counter would mean the seed is ignored.
  const auto script = std::vector<Phase>{
      Phase::register_hosts("prov", 1'000),
      Phase::flood("flood", 4, 256, 0.5, 0.3),
  };
  const auto ra = a.run_script(script);
  const auto rb = b.run_script(script);
  EXPECT_NE(ra[1].rx_rejected, rb[1].rx_rejected);
}

TEST(ScenarioDeterminism, ThreadCountDoesNotChangeRouterCounters) {
  Engine::Config one = small_config(11);
  one.threads = 1;
  Engine::Config four = small_config(11);
  four.threads = 4;
  Engine a(one), b(four);
  const auto script = std::vector<Phase>{
      Phase::register_hosts("prov", 2'000),
      Phase::traffic("traffic", 8, 256),
      Phase::flood("flood", 4, 256, 0.8, 0.1),
  };
  const auto ra = a.run_script(script);
  const auto rb = b.run_script(script);
  for (std::size_t i = 0; i < ra.size(); ++i)
    expect_same_deterministic_fields(ra[i], rb[i], /*compare_cache=*/false);
}

// ---- Churn + memory accounting -----------------------------------------------

TEST(ScenarioChurn, DiurnalChurnRetiresOldestAndBumpsEpoch) {
  Engine engine(small_config());
  // live_hosts counts the whole HostDb, infrastructure identities (the AA)
  // included — hence relative assertions against the provisioned baseline.
  const auto prov = engine.run_phase(Phase::register_hosts("prov", 4'000));
  EXPECT_GE(prov.live_hosts, 4'000u);

  const auto churn =
      engine.run_phase(Phase::churn("day", 500, 300, 4, 128));
  EXPECT_EQ(churn.live_hosts, prov.live_hosts + 500 - 300);
  EXPECT_EQ(churn.joins, 500u);
  EXPECT_EQ(churn.leaves, 300u);
  EXPECT_GE(churn.epoch, 300u);  // every de-registration bumped the epoch
  // The ≤200 B/host budget is an AMORTIZED claim (the schedule cache is a
  // fixed cost) — asserted at 10⁶ hosts by the internet_scale ctest entry,
  // not here. At 4k hosts we only require the accounting to be sane.
  EXPECT_GT(churn.host_db_bytes, 0u);
  EXPECT_GT(churn.host_db_bytes_per_host, 0.0);
}

TEST(ScenarioMultiAs, PopulationSpreadsAndTrafficFlows) {
  MultiAsConfig cfg;
  cfg.seed = 5;
  cfg.as_count = 16;
  cfg.hosts_per_as = 200;
  cfg.bursts = 8;
  cfg.burst_packets = 64;
  const MultiAsReport rep = run_multi_as(cfg);
  EXPECT_EQ(rep.as_count, 16u);
  EXPECT_EQ(rep.total_hosts, 16u * 200u);  // churn is leave+join symmetric
  EXPECT_GT(rep.forwarded_out, 0u);
  EXPECT_GT(rep.transited, 0u);
  EXPECT_GT(rep.delivered_in, 0u);
  EXPECT_EQ(rep.total_drops, 0u);
  EXPECT_GT(rep.churned, 0u);

  // Determinism holds for the multi-AS sweep too.
  const MultiAsReport rep2 = run_multi_as(cfg);
  EXPECT_EQ(rep.forwarded_out, rep2.forwarded_out);
  EXPECT_EQ(rep.delivered_in, rep2.delivered_in);
  EXPECT_EQ(rep.total_host_db_bytes, rep2.total_host_db_bytes);
}

// ---- DNS storm ---------------------------------------------------------------

TEST(ScenarioDnsStorm, NegativeBoundsHoldAndHitRateRecovers) {
  Engine engine(small_config());
  constexpr std::uint64_t kNames = 5'000;
  constexpr std::uint64_t kJunk = 50'000;

  const PhaseReport baseline =
      engine.run_phase(Phase::dns_storm("baseline", kNames, 0, 8, 512));
  const PhaseReport storm =
      engine.run_phase(Phase::dns_storm("storm", kNames, kJunk, 8, 512));
  const PhaseReport recovery =
      engine.run_phase(Phase::dns_storm("recovery", kNames, 0, 8, 512));

  // Per-phase counter deltas, like the other storms: the storm phase's
  // lookup count is exactly its two positive passes plus the junk flood.
  EXPECT_EQ(storm.dns_lookups, 2u * 8u * 512u + kJunk);
  EXPECT_EQ(storm.packets, storm.dns_lookups);
  // Every junk lookup was answered negatively — authoritatively or from
  // the negative cache, never from a positive entry.
  EXPECT_EQ(storm.dns_nxdomain + storm.dns_negative_hits, kJunk);

  // The negative-cache bound: a 50k-name NXDOMAIN flood stays inside the
  // cache's bounded negative slice.
  EXPECT_GT(storm.dns_negative_capacity, 0u);
  EXPECT_LE(storm.dns_negative_entries, storm.dns_negative_capacity);

  // The positive hit rate recovers after the storm: the post-storm pass
  // inside the storm phase AND the whole recovery phase match baseline.
  ASSERT_GT(baseline.dns_recovery_hit_rate, 0.5);
  EXPECT_GE(storm.dns_recovery_hit_rate,
            baseline.dns_recovery_hit_rate - 0.05);
  EXPECT_GE(recovery.dns_recovery_hit_rate,
            baseline.dns_recovery_hit_rate - 0.05);

  // Non-DNS phases report zero DNS activity.
  const PhaseReport prov =
      engine.run_phase(Phase::register_hosts("prov", 100));
  EXPECT_EQ(prov.dns_lookups, 0u);
  EXPECT_EQ(prov.dns_negative_entries, 0u);
}

}  // namespace
}  // namespace apna::scenario

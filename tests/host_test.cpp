// Host-stack tests: EphID pool policies (§VIII-A), host error paths, ICMP
// including path-MTU discovery (§VIII-B, §II-C), DNS through foreign
// resolvers (§VII-A), and session demultiplexing.
#include <gtest/gtest.h>

#include "apna/internet.h"
#include "host/ephid_pool.h"

namespace apna::host {
namespace {

// ---- EphIdPool unit tests ------------------------------------------------------

struct PoolFixture {
  crypto::ChaChaRng rng{71};
  core::EphIdCodec codec{Bytes(16, 9)};
  EphIdPool pool;
  core::ExpTime now = 1'700'000'000;

  const OwnedEphId* add(core::ExpTime exp, std::uint8_t flags = 0) {
    core::EphIdKeyPair kp = core::EphIdKeyPair::generate(rng);
    core::EphIdCertificate cert;
    cert.ephid = codec.issue(1, exp, rng);
    cert.exp_time = exp;
    cert.pub = kp.pub;
    cert.flags = flags;
    return pool.add(std::move(kp), std::move(cert));
  }
};

TEST(EphIdPool, PerHostAlwaysSameEphId) {
  PoolFixture f;
  f.add(f.now + 100);
  f.add(f.now + 100);
  auto* a = f.pool.pick(Granularity::per_host, "web", "f1", 0, f.now);
  auto* b = f.pool.pick(Granularity::per_host, "mail", "f2", 1, f.now);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, b);
}

TEST(EphIdPool, PerFlowStickyAndDistinct) {
  PoolFixture f;
  for (int i = 0; i < 3; ++i) f.add(f.now + 100);
  auto* f1 = f.pool.pick(Granularity::per_flow, "web", "f1", 0, f.now);
  auto* f2 = f.pool.pick(Granularity::per_flow, "web", "f2", 1, f.now);
  auto* f1_again = f.pool.pick(Granularity::per_flow, "web", "f1", 2, f.now);
  ASSERT_NE(f1, nullptr);
  ASSERT_NE(f2, nullptr);
  EXPECT_NE(f1, f2);         // fresh EphID per flow
  EXPECT_EQ(f1, f1_again);   // sticky for the flow's lifetime
}

TEST(EphIdPool, PerFlowReusesLeastLoadedWhenExhausted) {
  PoolFixture f;
  f.add(f.now + 100);
  f.add(f.now + 100);
  auto* f1 = f.pool.pick(Granularity::per_flow, "a", "f1", 0, f.now);
  auto* f2 = f.pool.pick(Granularity::per_flow, "a", "f2", 0, f.now);
  auto* f3 = f.pool.pick(Granularity::per_flow, "a", "f3", 0, f.now);
  EXPECT_NE(f1, f2);
  // Third flow must reuse one of the two (pool exhausted) instead of nullptr.
  ASSERT_NE(f3, nullptr);
  EXPECT_EQ(f.pool.max_flows_per_ephid(), 2u);
}

TEST(EphIdPool, PerApplicationGroupsByApp) {
  PoolFixture f;
  for (int i = 0; i < 4; ++i) f.add(f.now + 100);
  auto* web1 = f.pool.pick(Granularity::per_application, "web", "f1", 0, f.now);
  auto* web2 = f.pool.pick(Granularity::per_application, "web", "f2", 1, f.now);
  auto* mail = f.pool.pick(Granularity::per_application, "mail", "f3", 2, f.now);
  EXPECT_EQ(web1, web2);
  EXPECT_NE(web1, mail);
}

TEST(EphIdPool, PerPacketRotates) {
  PoolFixture f;
  for (int i = 0; i < 3; ++i) f.add(f.now + 100);
  std::set<const OwnedEphId*> seen;
  for (std::uint64_t seq = 0; seq < 9; ++seq)
    seen.insert(f.pool.pick(Granularity::per_packet, "a", "f", seq, f.now));
  EXPECT_EQ(seen.size(), 3u);  // cycles over the whole pool
}

TEST(EphIdPool, SkipsExpiredRevokedAndReceiveOnly) {
  PoolFixture f;
  f.add(f.now - 1);                        // expired
  f.add(f.now + 100, core::kCertReceiveOnly);  // receive-only
  auto* revoked = const_cast<OwnedEphId*>(f.add(f.now + 100));
  revoked->revoked_locally = true;
  EXPECT_EQ(f.pool.pick(Granularity::per_host, "a", "f", 0, f.now), nullptr);
  EXPECT_EQ(f.pool.usable_count(f.now), 0u);
  auto* good = f.add(f.now + 100);
  EXPECT_EQ(f.pool.pick(Granularity::per_host, "a", "f", 0, f.now), good);
}

TEST(EphIdPool, ServingPickExcludesContactedAndReceiveOnly) {
  PoolFixture f;
  const auto* ro = f.add(f.now + 100, core::kCertReceiveOnly);
  EXPECT_EQ(f.pool.pick_serving(ro->cert.ephid, f.now), nullptr);
  const auto* srv = f.add(f.now + 100);
  EXPECT_EQ(f.pool.pick_serving(ro->cert.ephid, f.now), srv);
  EXPECT_EQ(f.pool.pick_serving(srv->cert.ephid, f.now), nullptr);
}

TEST(EphIdPool, FindByEphId) {
  PoolFixture f;
  const auto* e = f.add(f.now + 100);
  EXPECT_EQ(f.pool.find(e->cert.ephid), e);
  core::EphId missing;
  EXPECT_EQ(f.pool.find(missing), nullptr);
}

// ---- Host behaviour over the simulated Internet ----------------------------------

struct HostWorld {
  Internet net{31};
  AutonomousSystem* as_a;
  AutonomousSystem* as_b;
  HostWorld() {
    as_a = &net.add_as(100, "A");
    as_b = &net.add_as(300, "B");
    net.link(100, 300, 2000);
  }
};

TEST(HostStack, ConnectWithoutEphIdsFailsCleanly) {
  HostWorld w;
  host::Host& a = w.as_a->add_host("a");
  host::Host& b = w.as_b->add_host("b");
  ASSERT_TRUE(provision_ephids(b, w.net.loop(), 1).ok());
  auto sid = a.connect(b.pool().entries().front()->cert, {},
                       [](Result<std::uint64_t>) {});
  EXPECT_EQ(sid.code(), Errc::exhausted);
}

TEST(HostStack, SendOnUnknownSessionFails) {
  HostWorld w;
  host::Host& a = w.as_a->add_host("a");
  EXPECT_EQ(a.send_data(424242, to_bytes("x")).code(), Errc::not_found);
}

TEST(HostStack, DataQueuedUntilHandshakeCompletes) {
  HostWorld w;
  host::Host& a = w.as_a->add_host("a");
  host::Host& b = w.as_b->add_host("b");
  ASSERT_TRUE(provision_ephids(a, w.net.loop(), 1).ok());
  ASSERT_TRUE(provision_ephids(b, w.net.loop(), 1).ok());
  std::vector<std::string> got;
  b.set_data_handler([&](std::uint64_t, ByteSpan d) {
    got.push_back(to_string(d));
  });
  auto sid = a.connect(b.pool().entries().front()->cert, {},
                       [](Result<std::uint64_t>) {});
  // Queue three messages before the handshake possibly completed.
  (void)a.send_data(*sid, to_bytes("one"));
  (void)a.send_data(*sid, to_bytes("two"));
  (void)a.send_data(*sid, to_bytes("three"));
  w.net.run();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], "one");
  EXPECT_EQ(got[1], "two");
  EXPECT_EQ(got[2], "three");
}

TEST(HostStack, MultipleConcurrentSessionsDemux) {
  HostWorld w;
  host::Host& a = w.as_a->add_host("a");
  host::Host& b = w.as_b->add_host("b");
  host::Host& c = w.as_b->add_host("c");
  ASSERT_TRUE(provision_ephids(a, w.net.loop(), 2).ok());
  ASSERT_TRUE(provision_ephids(b, w.net.loop(), 1).ok());
  ASSERT_TRUE(provision_ephids(c, w.net.loop(), 1).ok());

  std::string b_got, c_got;
  b.set_data_handler([&](std::uint64_t, ByteSpan d) { b_got = to_string(d); });
  c.set_data_handler([&](std::uint64_t, ByteSpan d) { c_got = to_string(d); });

  auto s1 = a.connect(b.pool().entries().front()->cert, {},
                      [](Result<std::uint64_t>) {});
  host::Host::ConnectOptions o2;
  o2.flow = "other";
  auto s2 = a.connect(c.pool().entries().front()->cert, o2,
                      [](Result<std::uint64_t>) {});
  (void)a.send_data(*s1, to_bytes("for b"));
  (void)a.send_data(*s2, to_bytes("for c"));
  w.net.run();
  EXPECT_EQ(b_got, "for b");
  EXPECT_EQ(c_got, "for c");
}

TEST(HostStack, ServerHandlesManyClients) {
  HostWorld w;
  host::Host& server = w.as_b->add_host("server");
  ASSERT_TRUE(provision_ephids(server, w.net.loop(), 1).ok());
  int requests = 0;
  server.set_data_handler([&](std::uint64_t sid, ByteSpan) {
    ++requests;
    (void)server.send_data(sid, to_bytes("ok"));
  });

  std::vector<host::Host*> clients;
  for (int i = 0; i < 8; ++i) {
    host::Host& cl = w.as_a->add_host("client-" + std::to_string(i));
    ASSERT_TRUE(provision_ephids(cl, w.net.loop(), 1).ok());
    clients.push_back(&cl);
  }
  int replies = 0;
  for (auto* cl : clients) {
    cl->set_data_handler([&](std::uint64_t, ByteSpan) { ++replies; });
    auto sid = cl->connect(server.pool().entries().front()->cert, {},
                           [](Result<std::uint64_t>) {});
    ASSERT_TRUE(sid.ok());
    (void)cl->send_data(*sid, to_bytes("req"));
  }
  w.net.run();
  EXPECT_EQ(requests, 8);
  EXPECT_EQ(replies, 8);
  EXPECT_EQ(server.stats().handshakes_accepted, 8u);
}

TEST(HostStack, PathMtuDiscovery) {
  // §II-C: ICMP supports "performance optimizations (e.g., MTU discovery)".
  // The egress BR enforces a small MTU; the host learns the limit from the
  // packet_too_big message and retransmits in chunks.
  Internet net{32};
  AutonomousSystem::Config cfg_a;
  cfg_a.aid = 100;
  cfg_a.name = "A";
  cfg_a.br.mtu = 300;
  auto& as_a = net.add_as(std::move(cfg_a));
  auto& as_b = net.add_as(300, "B");
  net.link(100, 300, 2000);

  host::Host& a = as_a.add_host("a");
  host::Host& b = as_b.add_host("b");
  ASSERT_TRUE(provision_ephids(a, net.loop(), 1).ok());
  ASSERT_TRUE(provision_ephids(b, net.loop(), 1).ok());

  std::optional<std::uint32_t> learned_mtu;
  a.set_icmp_handler([&](const core::Endpoint&, const core::IcmpMessage& m) {
    if (m.type == core::IcmpType::packet_too_big) learned_mtu = m.code;
  });
  std::string got;
  b.set_data_handler([&](std::uint64_t, ByteSpan d) { got += to_string(d); });

  auto sid = a.connect(b.pool().entries().front()->cert, {},
                       [](Result<std::uint64_t>) {});
  net.run();
  // A 1000-byte write exceeds the 300-byte MTU and triggers feedback.
  (void)a.send_data(*sid, Bytes(1000, 'X'));
  net.run();
  ASSERT_TRUE(learned_mtu.has_value());
  EXPECT_EQ(*learned_mtu, 300u);
  EXPECT_TRUE(got.empty());

  // Retransmit within the discovered MTU (header+ext+nonce+frame overhead).
  const std::size_t chunk = *learned_mtu - 100;
  for (std::size_t off = 0; off < 1000; off += chunk)
    (void)a.send_data(*sid, Bytes(std::min(chunk, 1000 - off), 'X'));
  net.run();
  EXPECT_EQ(got.size(), 1000u);
}

TEST(HostStack, PingUnknownEphIdGetsNoReply) {
  HostWorld w;
  host::Host& a = w.as_a->add_host("a");
  ASSERT_TRUE(provision_ephids(a, w.net.loop(), 1).ok());
  core::Endpoint target;
  target.aid = 300;
  // A random (undecodable) EphID: the destination BR drops it.
  crypto::ChaChaRng rng(9);
  rng.fill(MutByteSpan(target.ephid.bytes.data(), 16));
  bool replied = false;
  ASSERT_TRUE(a.ping(target, [&](net::TimeUs) { replied = true; }).ok());
  w.net.run();
  EXPECT_FALSE(replied);
  EXPECT_GT(w.as_b->br().stats().drop_bad_ephid, 0u);
}

TEST(HostStack, ResolveViaForeignDns) {
  // §VII-A "Protecting DNS Queries": the host queries a trusted DNS in a
  // DIFFERENT AS so its own AS never sees the query content.
  HostWorld w;
  host::Host& a = w.as_a->add_host("a");
  host::Host& publisher = w.as_b->add_host("pub");
  ASSERT_TRUE(provision_ephids(a, w.net.loop(), 1).ok());
  ASSERT_TRUE(provision_ephids(publisher, w.net.loop(), 1).ok());

  bool ok = false;
  publisher.publish_name("far.example",
                         publisher.pool().entries().front()->cert, 0,
                         [&](Result<void> r) { ok = r.ok(); });
  w.net.run();
  ASSERT_TRUE(ok);

  // a resolves via AS B's DNS service (the publisher's bootstrap cert).
  std::optional<core::DnsRecord> rec;
  a.resolve_via(publisher.dns_cert(), "far.example",
                [&](Result<core::DnsRecord> r) {
                  if (r.ok()) rec = *r;
                });
  w.net.run();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->name, "far.example");
  EXPECT_EQ(w.as_b->dns().stats().queries, 1u);
  EXPECT_EQ(w.as_a->dns().stats().queries, 0u);  // home AS saw nothing
}

TEST(HostStack, DnsNxdomainSurfacesNotFound) {
  HostWorld w;
  host::Host& a = w.as_a->add_host("a");
  ASSERT_TRUE(provision_ephids(a, w.net.loop(), 1).ok());
  std::optional<Errc> code;
  a.resolve("does-not-exist.example",
            [&](Result<core::DnsRecord> r) { code = r.code(); });
  w.net.run();
  ASSERT_TRUE(code.has_value());
  EXPECT_EQ(*code, Errc::not_found);
}

TEST(HostStack, GranularityPoliciesVisibleOnWire) {
  // Per-host vs per-flow as observed from source EphIDs on egress traffic.
  for (auto g : {Granularity::per_host, Granularity::per_flow}) {
    Internet net{static_cast<std::uint64_t>(g) + 77};
    auto& as_a = net.add_as(100, "A");
    auto& as_b = net.add_as(300, "B");
    net.link(100, 300, 2000);
    host::Host& a = as_a.add_host("a", g);
    host::Host& b1 = as_b.add_host("b1");
    host::Host& b2 = as_b.add_host("b2");
    ASSERT_TRUE(provision_ephids(a, net.loop(), 2).ok());
    ASSERT_TRUE(provision_ephids(b1, net.loop(), 1).ok());
    ASSERT_TRUE(provision_ephids(b2, net.loop(), 1).ok());

    std::set<std::string> srcs;
    net.network().add_tap([&](std::uint32_t from, std::uint32_t,
                              const wire::PacketView& p) {
      if (from != 100) return;
      core::EphId e;
      e.bytes = p.src_ephid();
      srcs.insert(e.hex());
    });
    auto s1 = a.connect(b1.pool().entries().front()->cert, {},
                        [](Result<std::uint64_t>) {});
    host::Host::ConnectOptions o2;
    o2.flow = "f2";
    auto s2 = a.connect(b2.pool().entries().front()->cert, o2,
                        [](Result<std::uint64_t>) {});
    (void)a.send_data(*s1, to_bytes("x"));
    (void)a.send_data(*s2, to_bytes("y"));
    net.run();
    if (g == Granularity::per_host) {
      EXPECT_EQ(srcs.size(), 1u) << granularity_name(g);
    } else {
      EXPECT_GE(srcs.size(), 2u) << granularity_name(g);
    }
  }
}

TEST(HostStack, ShutoffRequiresOwnedDestinationEphId) {
  HostWorld w;
  host::Host& a = w.as_a->add_host("a");
  ASSERT_TRUE(provision_ephids(a, w.net.loop(), 1).ok());
  wire::Packet not_for_us;
  crypto::ChaChaRng rng(5);
  rng.fill(MutByteSpan(not_for_us.dst_ephid.data(), 16));
  not_for_us.src_aid = 300;
  const wire::PacketBuf sealed = not_for_us.seal();
  auto r = a.request_shutoff(sealed.view(), [](Result<void>) {});
  EXPECT_EQ(r.code(), Errc::unauthorized);
}

TEST(HostStack, EphIdRequestAfterCtrlExpiryFails) {
  HostWorld w;
  host::Host& a = w.as_a->add_host("a");
  // Default control lifetime is 24 h; jump past it.
  w.net.loop().advance(std::uint64_t{25} * 3600 * net::kUsPerSecond);
  std::optional<Errc> code;
  a.request_ephid(core::EphIdLifetime::short_term, 0,
                  [&](Result<const OwnedEphId*> r) { code = r.code(); });
  w.net.run();
  ASSERT_TRUE(code.has_value());
  EXPECT_EQ(*code, Errc::expired);
}

TEST(HostStack, NoZeroRttWithoutOptIn) {
  // Regression: data written before the handshake completes must QUEUE —
  // never ride the early session keyed to the (possibly receive-only)
  // contacted EphID — unless the caller opted into 0-RTT via early_data.
  // Otherwise pre-establishment traffic silently inherits the §VII-C
  // early-data caveat and, worse, floods name a receive-only EphID as its
  // destination.
  HostWorld w;
  host::Host& client = w.as_a->add_host("client");
  host::Host& server = w.as_b->add_host("server");
  ASSERT_TRUE(provision_ephids(client, w.net.loop(), 1).ok());
  ASSERT_TRUE(provision_ephids(server, w.net.loop(), 1,
                               core::EphIdLifetime::long_term,
                               core::kRequestReceiveOnly).ok());
  ASSERT_TRUE(provision_ephids(server, w.net.loop(), 1).ok());

  const core::EphIdCertificate* ro = nullptr;
  for (const auto& e : server.pool().entries())
    if (e->receive_only()) ro = &e->cert;
  ASSERT_NE(ro, nullptr);

  // Observe destination EphIDs of client data packets on the wire.
  std::vector<core::EphId> data_dsts;
  w.net.network().add_tap(
      [&](std::uint32_t from, std::uint32_t, const wire::PacketView& p) {
        if (from == 100 && p.proto() == wire::NextProto::data) {
          core::EphId d;
          d.bytes = p.dst_ephid();
          data_dsts.push_back(d);
        }
      });

  auto sid = client.connect(*ro, {}, [](Result<std::uint64_t>) {});
  ASSERT_TRUE(sid.ok());
  // Written immediately — before the serving certificate can have arrived.
  ASSERT_TRUE(client.send_data(*sid, to_bytes("early write")).ok());
  w.net.run();

  ASSERT_FALSE(data_dsts.empty());
  for (const auto& d : data_dsts)
    EXPECT_FALSE(d == ro->ephid)
        << "data packet addressed the receive-only EphID";
  EXPECT_GT(server.stats().data_frames_received, 0u);
}

TEST(HostStack, ShutoffWorksForReceiveOnlyVictimEphId) {
  // Regression: a 0-RTT flood names a receive-only EphID as destination;
  // the victim must still be able to file a shutoff (the request is signed
  // with the receive-only key but SOURCED from a sendable EphID, §VII-A).
  HostWorld w;
  host::Host& bot = w.as_a->add_host("bot");
  host::Host& victim = w.as_b->add_host("victim");
  ASSERT_TRUE(provision_ephids(bot, w.net.loop(), 1).ok());
  ASSERT_TRUE(provision_ephids(victim, w.net.loop(), 1,
                               core::EphIdLifetime::long_term,
                               core::kRequestReceiveOnly).ok());
  ASSERT_TRUE(provision_ephids(victim, w.net.loop(), 1).ok());

  const core::EphIdCertificate* ro = nullptr;
  for (const auto& e : victim.pool().entries())
    if (e->receive_only()) ro = &e->cert;

  std::optional<wire::PacketBuf> evidence;
  w.net.network().add_tap(
      [&](std::uint32_t, std::uint32_t to, const wire::PacketView& p) {
        core::EphId d;
        d.bytes = p.dst_ephid();
        // The tap's view dies with the call — taking evidence off the wire
        // is an explicit copy.
        if (to == 300 && p.proto() == wire::NextProto::data && d == ro->ephid)
          evidence = wire::PacketBuf::copy_of(p);
      });

  // 0-RTT flood straight at the receive-only EphID.
  host::Host::ConnectOptions opts;
  opts.early_data = to_bytes("flood");
  auto sid = bot.connect(*ro, opts, [](Result<std::uint64_t>) {});
  ASSERT_TRUE(sid.ok());
  (void)bot.send_data(*sid, to_bytes("more flood"));
  w.net.run();
  ASSERT_TRUE(evidence.has_value());

  std::optional<Result<void>> result;
  ASSERT_TRUE(victim.request_shutoff(evidence->view(), [&](Result<void> r) {
    result = std::move(r);
  }).ok());
  w.net.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok());
  core::EphId bot_src;
  bot_src.bytes = evidence->view().src_ephid();
  EXPECT_TRUE(w.as_a->state().revoked.is_revoked(bot_src));
}

TEST(HostStack, UnsolicitedDataRecordedForShutoff) {
  HostWorld w;
  host::Host& a = w.as_a->add_host("a");
  host::Host& b = w.as_b->add_host("b");
  ASSERT_TRUE(provision_ephids(a, w.net.loop(), 1).ok());
  ASSERT_TRUE(provision_ephids(b, w.net.loop(), 1).ok());

  // Craft a raw data packet to b's EphID with no session: it must be
  // counted unsolicited and retained as potential shutoff evidence.
  wire::Packet junk;
  junk.src_aid = 100;
  junk.src_ephid = a.pool().entries().front()->cert.ephid.bytes;
  junk.dst_aid = 300;
  junk.dst_ephid = b.pool().entries().front()->cert.ephid.bytes;
  junk.proto = wire::NextProto::data;
  junk.payload = to_bytes("garbage");
  b.on_packet(junk.seal());
  EXPECT_EQ(b.stats().unsolicited, 1u);
  ASSERT_TRUE(b.last_unsolicited().has_value());
  EXPECT_EQ(to_string(b.last_unsolicited()->view().payload()), "garbage");
}


// ---- EphID lifecycle manager: end-to-end auto-renewal (§VIII-G1) -------------

TEST(EphIdLifecycle, AutoRenewKeepsEveryClassStockedAcrossExpiry) {
  HostWorld w;
  host::Host& h = w.as_a->add_host("renewer");

  EphIdLifecycleManager::Config cfg;
  cfg.classes[lifetime_index(core::EphIdLifetime::short_term)] =
      RenewalPolicy{.min_ready = 2, .lead_s = 120};
  cfg.classes[lifetime_index(core::EphIdLifetime::medium_term)] =
      RenewalPolicy{.min_ready = 1, .lead_s = 300};
  cfg.check_interval_us = 30 * net::kUsPerSecond;
  cfg.jitter_us = 5 * net::kUsPerSecond;
  h.start_auto_renew(cfg);
  ASSERT_TRUE(h.auto_renew_active());

  // Walk three hours of simulated time — twelve full short-term (15 min)
  // certificate lifetimes — checking at every minute that each enabled
  // class holds at least one valid EphID (the renewal acceptance bar) and
  // that the short class tracks its min_ready target.
  const net::TimeUs step = 60 * net::kUsPerSecond;
  const net::TimeUs horizon = 3 * 3600 * net::kUsPerSecond;
  for (net::TimeUs t = step; t <= horizon; t += step) {
    w.net.loop().run_until(t);
    const core::ExpTime now = w.net.loop().now_seconds();
    EXPECT_GE(h.pool().usable_count(core::EphIdLifetime::short_term, now), 1u)
        << "t=" << t;
    EXPECT_GE(h.pool().usable_count(core::EphIdLifetime::medium_term, now), 1u)
        << "t=" << t;
  }
  ASSERT_NE(h.lifecycle(), nullptr);
  // ~12 short lifetimes consumed: renewal actually cycled, and every
  // request that was sent came back (no in-flight leak, no failures).
  EXPECT_GE(h.lifecycle()->stats().renewed, 12u);
  EXPECT_EQ(h.lifecycle()->stats().failed, 0u);
  EXPECT_EQ(h.lifecycle()->in_flight(core::EphIdLifetime::short_term), 0u);

  // stop_auto_renew(): the already-scheduled tick becomes a no-op and the
  // loop drains (no self-rescheduling leak).
  h.stop_auto_renew();
  w.net.run();
  EXPECT_TRUE(w.net.loop().idle());
}

TEST(EphIdLifecycle, RolloverKeepsLiveSessionsPinnedToIssuingEphId) {
  HostWorld w;
  host::Host& a = w.as_a->add_host("a");
  host::Host& b = w.as_b->add_host("b");
  ASSERT_TRUE(provision_ephids(a, w.net.loop(), 1).ok());
  ASSERT_TRUE(provision_ephids(b, w.net.loop(), 1).ok());

  std::size_t got = 0;
  b.set_data_handler([&](std::uint64_t, ByteSpan) { ++got; });
  auto sid = a.connect(b.pool().entries().front()->cert, {},
                       [](Result<std::uint64_t>) {});
  ASSERT_TRUE(sid.ok());
  w.net.run();
  const auto before = a.session_ephids(*sid);
  ASSERT_TRUE(before.has_value());

  // Renewal adds fresh short-term EphIDs while the session is alive.
  EphIdLifecycleManager::Config cfg;
  cfg.classes[lifetime_index(core::EphIdLifetime::short_term)] =
      RenewalPolicy{.min_ready = 3, .lead_s = 120};
  cfg.check_interval_us = 10 * net::kUsPerSecond;
  a.start_auto_renew(cfg);
  w.net.loop().run_until(w.net.loop().now() + 120 * net::kUsPerSecond);
  ASSERT_GE(a.pool().usable_count(
                core::EphIdLifetime::short_term,
                w.net.loop().now_seconds()), 3u);

  // Pinning: the session still uses its issuing EphID ...
  const auto after = a.session_ephids(*sid);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(before->first, after->first);
  EXPECT_EQ(before->second, after->second);
  // ... and still carries data.
  ASSERT_TRUE(a.send_data(*sid, to_bytes("still pinned")).ok());
  w.net.loop().run_until(w.net.loop().now() + net::kUsPerSecond);
  EXPECT_EQ(got, 1u);

  // A NEW flow rolls over to a fresh (unused, freshest-expiry) EphID.
  auto sid2 = a.connect(b.pool().entries().front()->cert, {},
                        [](Result<std::uint64_t>) {});
  ASSERT_TRUE(sid2.ok());
  const auto fresh = a.session_ephids(*sid2);
  ASSERT_TRUE(fresh.has_value());
  EXPECT_FALSE(fresh->first == before->first);

  a.stop_auto_renew();
  w.net.run();
}

}  // namespace
}  // namespace apna::host

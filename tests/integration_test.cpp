// End-to-end integration tests over the simulated Internet: the full Fig 1
// lifecycle, cross-AS encrypted communication through transit ASes, DNS
// client-server establishment with receive-only EphIDs, ICMP, the shutoff
// protocol, replay handling and the privacy/accountability properties the
// security analysis (§VI) claims.
#include <gtest/gtest.h>

#include "apna/internet.h"
#include "util/hex.h"

namespace apna {
namespace {

struct World {
  Internet net{7};
  AutonomousSystem* as_a = nullptr;
  AutonomousSystem* as_b = nullptr;
  AutonomousSystem* transit = nullptr;

  World() {
    as_a = &net.add_as(100, "AS-A");
    transit = &net.add_as(200, "AS-T");
    as_b = &net.add_as(300, "AS-B");
    net.link(100, 200, 4000);   // 4 ms one-way
    net.link(200, 300, 4000);
  }
};

TEST(Integration, BootstrapAttachesHostsAndProvisionsDb) {
  World w;
  host::Host& h = w.as_a->add_host("alice");
  EXPECT_TRUE(h.bootstrapped());
  EXPECT_EQ(h.aid(), 100u);
  EXPECT_TRUE(w.as_a->state().host_db.contains(h.hid()));
  // The control EphID decodes to the host's HID — only inside the AS.
  auto plain = w.as_a->state().codec.open(h.ctrl_ephid());
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->hid, h.hid());
  // ... and is opaque to another AS.
  EXPECT_FALSE(w.as_b->state().codec.open(h.ctrl_ephid()).ok());
}

TEST(Integration, EphIdIssuanceOverTheNetwork) {
  World w;
  host::Host& h = w.as_a->add_host("alice");
  auto owned = acquire_ephid(h, w.net.loop());
  ASSERT_TRUE(owned.ok());
  EXPECT_TRUE((*owned)->cert.verify(w.as_a->state().secrets.sign.pub,
                                    w.net.loop().now_seconds()).ok());
  // EphID decodes to alice's HID inside her AS.
  auto plain = w.as_a->state().codec.open((*owned)->cert.ephid);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->hid, h.hid());
  EXPECT_EQ(h.pool().size(), 1u);
}

TEST(Integration, CrossAsEncryptedEcho) {
  World w;
  host::Host& alice = w.as_a->add_host("alice");
  host::Host& bob = w.as_b->add_host("bob");
  ASSERT_TRUE(provision_ephids(alice, w.net.loop(), 1).ok());
  ASSERT_TRUE(provision_ephids(bob, w.net.loop(), 1).ok());

  // Bob echos everything back.
  bob.set_data_handler([&bob](std::uint64_t sid, ByteSpan data) {
    Bytes reply = to_bytes("echo: ");
    append(reply, data);
    (void)bob.send_data(sid, reply);
  });

  std::string alice_got;
  alice.set_data_handler([&](std::uint64_t, ByteSpan data) {
    alice_got = to_string(data);
  });

  const auto& bob_cert = bob.pool().entries().front()->cert;
  bool connected = false;
  auto sid = alice.connect(bob_cert, {}, [&](Result<std::uint64_t> r) {
    connected = r.ok();
  });
  ASSERT_TRUE(sid.ok());
  ASSERT_TRUE(alice.send_data(*sid, to_bytes("hello bob")).ok());
  w.net.run();

  EXPECT_TRUE(connected);
  EXPECT_EQ(alice_got, "echo: hello bob");
  // Data crossed the transit AS without it learning identities: transit
  // forwarded packets but never decrypted an EphID of A or B.
  EXPECT_GT(w.transit->br().stats().transited, 0u);
  EXPECT_EQ(w.transit->br().stats().delivered_in, 0u);
}

TEST(Integration, ZeroRttEarlyDataArrivesWithFirstPacket) {
  World w;
  host::Host& alice = w.as_a->add_host("alice");
  host::Host& bob = w.as_b->add_host("bob");
  ASSERT_TRUE(provision_ephids(alice, w.net.loop(), 1).ok());
  ASSERT_TRUE(provision_ephids(bob, w.net.loop(), 1).ok());

  std::string got;
  bob.set_data_handler([&](std::uint64_t, ByteSpan d) { got = to_string(d); });

  host::Host::ConnectOptions opts;
  opts.early_data = to_bytes("GET /");
  auto sid = alice.connect(bob.pool().entries().front()->cert, opts,
                           [](Result<std::uint64_t>) {});
  ASSERT_TRUE(sid.ok());
  w.net.run();
  EXPECT_EQ(got, "GET /");
}

TEST(Integration, DnsPublishResolveConnect) {
  // The full §VII-A story: bob publishes a receive-only EphID under a name;
  // alice resolves it (over an encrypted DNS session) and connects; bob
  // serves from a different EphID.
  World w;
  host::Host& alice = w.as_a->add_host("alice");
  host::Host& bob = w.as_b->add_host("bob");
  ASSERT_TRUE(provision_ephids(alice, w.net.loop(), 2).ok());
  // Bob: one receive-only EphID to publish + one serving EphID.
  ASSERT_TRUE(provision_ephids(bob, w.net.loop(), 1,
                               core::EphIdLifetime::long_term,
                               core::kRequestReceiveOnly).ok());
  ASSERT_TRUE(provision_ephids(bob, w.net.loop(), 1).ok());

  const core::EphIdCertificate* ro_cert = nullptr;
  for (const auto& e : bob.pool().entries())
    if (e->receive_only()) ro_cert = &e->cert;
  ASSERT_NE(ro_cert, nullptr);

  bool published = false;
  bob.publish_name("shop.example", *ro_cert, 0,
                   [&](Result<void> r) { published = r.ok(); });
  w.net.run();
  ASSERT_TRUE(published);

  std::optional<core::DnsRecord> rec;
  alice.resolve("shop.example", [&](Result<core::DnsRecord> r) {
    if (r.ok()) rec = *r;
  });
  w.net.run();
  ASSERT_TRUE(rec.has_value());
  EXPECT_TRUE(rec->cert.receive_only());
  EXPECT_EQ(rec->cert.ephid, ro_cert->ephid);

  // Connect via the resolved record.
  std::string bob_got;
  bob.set_data_handler([&](std::uint64_t, ByteSpan d) {
    bob_got = to_string(d);
  });
  bool connected = false;
  auto sid = alice.connect(rec->cert, {}, [&](Result<std::uint64_t> r) {
    connected = r.ok();
  });
  ASSERT_TRUE(sid.ok());
  ASSERT_TRUE(alice.send_data(*sid, to_bytes("order #1")).ok());
  w.net.run();
  EXPECT_TRUE(connected);
  EXPECT_EQ(bob_got, "order #1");
  // Alice ended up talking to the SERVING EphID, not the receive-only one.
  auto eph = alice.session_ephids(*sid);
  ASSERT_TRUE(eph.has_value());
  EXPECT_FALSE(eph->second == ro_cert->ephid);
}

TEST(Integration, IcmpEchoAcrossAses) {
  World w;
  host::Host& alice = w.as_a->add_host("alice");
  host::Host& bob = w.as_b->add_host("bob");
  ASSERT_TRUE(provision_ephids(alice, w.net.loop(), 1).ok());
  ASSERT_TRUE(provision_ephids(bob, w.net.loop(), 1).ok());

  core::Endpoint target;
  target.aid = bob.aid();
  target.ephid = bob.pool().entries().front()->cert.ephid;

  std::optional<net::TimeUs> rtt;
  ASSERT_TRUE(alice.ping(target, [&](net::TimeUs t) { rtt = t; }).ok());
  w.net.run();
  ASSERT_TRUE(rtt.has_value());
  // Path: host→AS hop (50) + 2 inter-AS links (4000 each) + AS→host hop,
  // each way. RTT must exceed the pure propagation 2*(8000+100) µs.
  EXPECT_GE(*rtt, 16'200u);
}

TEST(Integration, ShutoffEndToEnd) {
  // A DDoS victim shuts the attacker's EphID off at the attacker's own AS
  // (Fig 5 through the real network path).
  World w;
  host::Host& attacker = w.as_a->add_host("mallory");
  host::Host& victim = w.as_b->add_host("victim");
  ASSERT_TRUE(provision_ephids(attacker, w.net.loop(), 1).ok());
  ASSERT_TRUE(provision_ephids(victim, w.net.loop(), 1).ok());

  // Attacker floods the victim (session-level flood).
  auto sid = attacker.connect(victim.pool().entries().front()->cert, {},
                              [](Result<std::uint64_t>) {});
  ASSERT_TRUE(sid.ok());
  for (int i = 0; i < 10; ++i)
    ASSERT_TRUE(attacker.send_data(*sid, to_bytes("flood")).ok());
  w.net.run();
  EXPECT_GT(victim.stats().data_frames_received, 0u);

  // The victim takes the last flood packet as evidence. We reconstruct one
  // from the attacker's session EphIDs.
  auto eph = attacker.session_ephids(*sid);
  ASSERT_TRUE(eph.has_value());
  // Send one more packet and capture it at the victim via a tap.
  std::optional<wire::PacketBuf> evidence;
  w.net.network().add_tap(
      [&](std::uint32_t, std::uint32_t to, const wire::PacketView& p) {
        if (to == 300 && p.proto() == wire::NextProto::data)
          evidence = wire::PacketBuf::copy_of(p);
      });
  ASSERT_TRUE(attacker.send_data(*sid, to_bytes("flood-more")).ok());
  w.net.run();
  ASSERT_TRUE(evidence.has_value());

  std::optional<Result<void>> shutoff_result;
  ASSERT_TRUE(victim.request_shutoff(evidence->view(), [&](Result<void> r) {
    shutoff_result = std::move(r);
  }).ok());
  w.net.run();
  ASSERT_TRUE(shutoff_result.has_value());
  EXPECT_TRUE(shutoff_result->ok());

  // The EphID is revoked at AS A: further flood packets die at the egress
  // border router.
  EXPECT_TRUE(w.as_a->state().revoked.is_revoked(eph->first));
  const auto before = w.as_a->br().stats().drop_revoked;
  ASSERT_TRUE(attacker.send_data(*sid, to_bytes("after-shutoff")).ok());
  const auto victim_frames = victim.stats().data_frames_received;
  w.net.run();
  EXPECT_GT(w.as_a->br().stats().drop_revoked, before);
  EXPECT_EQ(victim.stats().data_frames_received, victim_frames);
}

TEST(Integration, ShutoffDoesNotAffectOtherFlows) {
  // Per-flow EphIDs: shutting off one flow leaves the other intact (§VIII-A).
  World w;
  host::Host& src = w.as_a->add_host("src");
  host::Host& dst = w.as_b->add_host("dst");
  ASSERT_TRUE(provision_ephids(src, w.net.loop(), 2).ok());
  ASSERT_TRUE(provision_ephids(dst, w.net.loop(), 2).ok());

  auto s1 = src.connect(dst.pool().entries()[0]->cert, {},
                        [](Result<std::uint64_t>) {});
  host::Host::ConnectOptions opts2;
  opts2.flow = "second";
  auto s2 = src.connect(dst.pool().entries()[1]->cert, opts2,
                        [](Result<std::uint64_t>) {});
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  w.net.run();

  // Flows use distinct EphIDs (per-flow granularity).
  auto e1 = src.session_ephids(*s1);
  auto e2 = src.session_ephids(*s2);
  ASSERT_TRUE(e1 && e2);
  EXPECT_FALSE(e1->first == e2->first);

  // Victim shuts off flow 1 only.
  std::optional<wire::PacketBuf> evidence;
  w.net.network().add_tap(
      [&](std::uint32_t, std::uint32_t to, const wire::PacketView& p) {
        core::EphId src_e;
        src_e.bytes = p.src_ephid();
        if (to == 300 && src_e == e1->first)
          evidence = wire::PacketBuf::copy_of(p);
      });
  ASSERT_TRUE(src.send_data(*s1, to_bytes("x")).ok());
  w.net.run();
  ASSERT_TRUE(evidence.has_value());
  bool ok = false;
  ASSERT_TRUE(dst.request_shutoff(evidence->view(),
                                  [&](Result<void> r) { ok = r.ok(); }).ok());
  w.net.run();
  ASSERT_TRUE(ok);

  // Flow 2 still works.
  std::string got;
  dst.set_data_handler([&](std::uint64_t, ByteSpan d) { got = to_string(d); });
  ASSERT_TRUE(src.send_data(*s2, to_bytes("still alive")).ok());
  w.net.run();
  EXPECT_EQ(got, "still alive");
}

TEST(Integration, ReplayedDataPacketDiscarded) {
  // §VIII-D: an in-network adversary replays a captured packet; the
  // destination host discards the duplicate.
  World w;
  host::Host& alice = w.as_a->add_host("alice");
  host::Host& bob = w.as_b->add_host("bob");
  ASSERT_TRUE(provision_ephids(alice, w.net.loop(), 1).ok());
  ASSERT_TRUE(provision_ephids(bob, w.net.loop(), 1).ok());

  int frames = 0;
  bob.set_data_handler([&](std::uint64_t, ByteSpan) { ++frames; });

  std::optional<wire::PacketBuf> captured;
  w.net.network().add_tap(
      [&](std::uint32_t, std::uint32_t to, const wire::PacketView& p) {
        if (to == 300 && p.proto() == wire::NextProto::data && !captured)
          captured = wire::PacketBuf::copy_of(p);
      });

  auto sid = alice.connect(bob.pool().entries().front()->cert, {},
                           [](Result<std::uint64_t>) {});
  ASSERT_TRUE(sid.ok());
  ASSERT_TRUE(alice.send_data(*sid, to_bytes("unique")).ok());
  w.net.run();
  ASSERT_TRUE(captured.has_value());
  EXPECT_EQ(frames, 1);

  // Replay the captured packet into AS B's border router.
  const auto replays_before = bob.stats().replay_drops;
  w.as_b->br().on_ingress(std::move(*captured));
  w.net.run();
  EXPECT_EQ(frames, 1);  // not delivered twice
  EXPECT_EQ(bob.stats().replay_drops, replays_before + 1);
}

TEST(Integration, SenderFlowUnlinkabilityAgainstObserver) {
  // §II-B: an observer sees all inter-AS traffic. With per-flow EphIDs, two
  // flows from the same host expose no shared identifier: source EphIDs
  // differ, and neither equals anything linkable to the HID.
  World w;
  host::Host& alice = w.as_a->add_host("alice");
  host::Host& bob = w.as_b->add_host("bob");
  host::Host& carol = w.as_b->add_host("carol");
  ASSERT_TRUE(provision_ephids(alice, w.net.loop(), 2).ok());
  ASSERT_TRUE(provision_ephids(bob, w.net.loop(), 1).ok());
  ASSERT_TRUE(provision_ephids(carol, w.net.loop(), 1).ok());

  std::vector<wire::Packet> observed;
  w.net.network().add_tap(
      [&](std::uint32_t from, std::uint32_t, const wire::PacketView& p) {
        if (from == 100) observed.push_back(p.to_owned());  // AS A's egress
      });

  auto s1 = alice.connect(bob.pool().entries().front()->cert, {},
                          [](Result<std::uint64_t>) {});
  host::Host::ConnectOptions o2;
  o2.flow = "f2";
  auto s2 = alice.connect(carol.pool().entries().front()->cert, o2,
                          [](Result<std::uint64_t>) {});
  ASSERT_TRUE(s1.ok() && s2.ok());
  (void)alice.send_data(*s1, to_bytes("to bob"));
  (void)alice.send_data(*s2, to_bytes("to carol"));
  w.net.run();

  // Partition observed packets by source EphID: the two flows must use
  // different EphIDs, and no observed identifier reveals the HID.
  std::set<std::string> src_ephids;
  for (const auto& p : observed) {
    core::EphId e;
    e.bytes = p.src_ephid;
    src_ephids.insert(e.hex());
    // The observer cannot decode any EphID (only AS A can).
    EXPECT_FALSE(w.as_b->state().codec.open(e).ok());
  }
  EXPECT_GE(src_ephids.size(), 2u);
}

TEST(Integration, EveryDeliveredPacketIsAttributable) {
  // Source accountability (§II-A): for every packet that left AS A, the AS
  // can produce the sending HID.
  World w;
  host::Host& alice = w.as_a->add_host("alice");
  host::Host& bob = w.as_b->add_host("bob");
  ASSERT_TRUE(provision_ephids(alice, w.net.loop(), 2).ok());
  ASSERT_TRUE(provision_ephids(bob, w.net.loop(), 1).ok());

  std::vector<wire::PacketBuf> egress;
  w.net.network().add_tap(
      [&](std::uint32_t from, std::uint32_t, const wire::PacketView& p) {
        if (from == 100) egress.push_back(wire::PacketBuf::copy_of(p));
      });

  auto sid = alice.connect(bob.pool().entries().front()->cert, {},
                           [](Result<std::uint64_t>) {});
  ASSERT_TRUE(sid.ok());
  (void)alice.send_data(*sid, to_bytes("attributable"));
  w.net.run();

  ASSERT_FALSE(egress.empty());
  for (const auto& buf : egress) {
    const wire::PacketView& p = buf.view();
    core::EphId e;
    e.bytes = p.src_ephid();
    auto plain = w.as_a->state().codec.open(e);
    ASSERT_TRUE(plain.ok());
    EXPECT_EQ(plain->hid, alice.hid());
    // ... and the MAC binds the packet to that host's kHA.
    const auto rec = w.as_a->state().host_db.find(plain->hid);
    ASSERT_TRUE(rec.has_value());
    EXPECT_TRUE(core::verify_packet_mac(
        crypto::AesCmac(ByteSpan(rec->keys.mac.data(), 16)), p));
  }
}

TEST(Integration, ExpiredEphIdsStopWorking) {
  World w;
  host::Host& alice = w.as_a->add_host("alice");
  host::Host& bob = w.as_b->add_host("bob");
  ASSERT_TRUE(provision_ephids(alice, w.net.loop(), 1).ok());
  ASSERT_TRUE(provision_ephids(bob, w.net.loop(), 1).ok());

  auto sid = alice.connect(bob.pool().entries().front()->cert, {},
                           [](Result<std::uint64_t>) {});
  ASSERT_TRUE(sid.ok());
  w.net.run();

  // Advance past the short-term EphID lifetime (15 min).
  w.net.loop().advance(16 * 60 * net::kUsPerSecond);
  const auto drops_before = w.as_a->br().stats().drop_expired;
  ASSERT_TRUE(alice.send_data(*sid, to_bytes("too late")).ok());
  w.net.run();
  EXPECT_GT(w.as_a->br().stats().drop_expired, drops_before);
}

TEST(Integration, IntraAsCommunicationStaysLocal) {
  World w;
  host::Host& h1 = w.as_a->add_host("h1");
  host::Host& h2 = w.as_a->add_host("h2");
  ASSERT_TRUE(provision_ephids(h1, w.net.loop(), 1).ok());
  ASSERT_TRUE(provision_ephids(h2, w.net.loop(), 1).ok());

  std::string got;
  h2.set_data_handler([&](std::uint64_t, ByteSpan d) { got = to_string(d); });
  auto sid = h1.connect(h2.pool().entries().front()->cert, {},
                        [](Result<std::uint64_t>) {});
  ASSERT_TRUE(sid.ok());
  (void)h1.send_data(*sid, to_bytes("local"));
  const auto external_before = w.net.network().stats().transmitted;
  w.net.run();
  EXPECT_EQ(got, "local");
  EXPECT_EQ(w.net.network().stats().transmitted, external_before);
}

TEST(Integration, PacketsAreEncryptedOnTheWire) {
  // Pervasive data encryption (§I): the plaintext never appears in any
  // observed packet.
  World w;
  host::Host& alice = w.as_a->add_host("alice");
  host::Host& bob = w.as_b->add_host("bob");
  ASSERT_TRUE(provision_ephids(alice, w.net.loop(), 1).ok());
  ASSERT_TRUE(provision_ephids(bob, w.net.loop(), 1).ok());

  const std::string secret = "EXTREMELY-SECRET-PAYLOAD-0xDEADBEEF";
  std::vector<Bytes> wire_payloads;
  w.net.network().add_tap(
      [&](std::uint32_t, std::uint32_t, const wire::PacketView& p) {
        wire_payloads.emplace_back(p.bytes().begin(), p.bytes().end());
      });

  host::Host::ConnectOptions opts;
  opts.early_data = to_bytes(secret);  // even 0-RTT data must be sealed
  auto sid = alice.connect(bob.pool().entries().front()->cert, opts,
                           [](Result<std::uint64_t>) {});
  ASSERT_TRUE(sid.ok());
  (void)alice.send_data(*sid, to_bytes(secret));
  w.net.run();

  ASSERT_FALSE(wire_payloads.empty());
  for (const auto& wp : wire_payloads) {
    const std::string as_str(wp.begin(), wp.end());
    EXPECT_EQ(as_str.find(secret), std::string::npos);
  }
}

TEST(Integration, AeadSuitesInteroperateAcrossHosts) {
  // Suite negotiation: a GCM client talks to any server.
  World w;
  host::Host& alice =
      w.as_a->add_host("alice", host::Granularity::per_flow,
                       crypto::AeadSuite::aes128_gcm);
  host::Host& bob = w.as_b->add_host("bob");
  ASSERT_TRUE(provision_ephids(alice, w.net.loop(), 1).ok());
  ASSERT_TRUE(provision_ephids(bob, w.net.loop(), 1).ok());
  std::string got;
  bob.set_data_handler([&](std::uint64_t, ByteSpan d) { got = to_string(d); });
  auto sid = alice.connect(bob.pool().entries().front()->cert, {},
                           [](Result<std::uint64_t>) {});
  ASSERT_TRUE(sid.ok());
  (void)alice.send_data(*sid, to_bytes("gcm works"));
  w.net.run();
  EXPECT_EQ(got, "gcm works");
}

}  // namespace
}  // namespace apna

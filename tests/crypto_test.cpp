// Known-answer and property tests for the crypto substrate.
//
// Every primitive is anchored by published vectors (FIPS-197, SP 800-38A/D,
// RFC 4493, RFC 4231, RFC 5869, RFC 7748, RFC 8032, RFC 8439) and then
// exercised with parameterized roundtrip/tamper properties.
#include <gtest/gtest.h>

#include "crypto/aead.h"
#include "crypto/aes.h"
#include "crypto/chacha20.h"
#include "crypto/ed25519.h"
#include "crypto/fe25519.h"
#include "crypto/gcm.h"
#include "crypto/hmac.h"
#include "crypto/modes.h"
#include "crypto/rng.h"
#include "crypto/sha2.h"
#include "crypto/x25519.h"
#include "util/hex.h"

namespace apna::crypto {
namespace {

// ---- AES -------------------------------------------------------------------

TEST(Aes, Fips197KnownAnswer) {
  const Bytes key = must_hex("000102030405060708090a0b0c0d0e0f");
  const Bytes pt = must_hex("00112233445566778899aabbccddeeff");
  Aes128 aes(key);
  std::uint8_t ct[16];
  aes.encrypt_block(pt.data(), ct);
  EXPECT_EQ(hex_encode(ByteSpan(ct, 16)), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes, Sp800_38aEcbVector) {
  const Bytes key = must_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const Bytes pt = must_hex("6bc1bee22e409f96e93d7e117393172a");
  Aes128 aes(key);
  std::uint8_t ct[16];
  aes.encrypt_block(pt.data(), ct);
  EXPECT_EQ(hex_encode(ByteSpan(ct, 16)), "3ad77bb40d7a3660a89ecaf32466ef97");
}

TEST(Aes, SoftAndNiBackendsAgree) {
  // Directly compares the two backends on random blocks (meaningful only
  // when AES-NI is present; otherwise both paths are the software one).
  ChaChaRng rng(42);
  for (int i = 0; i < 64; ++i) {
    Bytes key = rng.bytes(16);
    Bytes block = rng.bytes(16);
    std::uint8_t rk_soft[176], rk_ni[176];
    detail::soft_expand_key128(key.data(), rk_soft);
    std::uint8_t out_soft[16];
    detail::soft_encrypt_block(rk_soft, block.data(), out_soft);
    if (Aes128::has_aesni()) {
      detail::aesni_expand_key128(key.data(), rk_ni);
      EXPECT_EQ(hex_encode(ByteSpan(rk_soft, 176)),
                hex_encode(ByteSpan(rk_ni, 176)));
      std::uint8_t out_ni[16];
      detail::aesni_encrypt_blocks(rk_ni, block.data(), out_ni, 1);
      EXPECT_EQ(hex_encode(ByteSpan(out_soft, 16)),
                hex_encode(ByteSpan(out_ni, 16)));
    }
  }
}

TEST(Aes, MultiBlockPipelineMatchesSingle) {
  ChaChaRng rng(7);
  Bytes key = rng.bytes(16);
  Aes128 aes(key);
  Bytes in = rng.bytes(16 * 9);
  Bytes batched(in.size()), single(in.size());
  aes.encrypt_blocks(in.data(), batched.data(), 9);
  for (int i = 0; i < 9; ++i)
    aes.encrypt_block(in.data() + 16 * i, single.data() + 16 * i);
  EXPECT_EQ(hex_encode(batched), hex_encode(single));
}

// ---- CTR -------------------------------------------------------------------

TEST(Ctr, Sp800_38aVector) {
  const Bytes key = must_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const Bytes ctr = must_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  const Bytes pt = must_hex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  Aes128 aes(key);
  const Bytes ct = aes_ctr(aes, ctr.data(), pt);
  EXPECT_EQ(hex_encode(ct),
            "874d6191b620e3261bef6864990db6ce"
            "9806f66b7970fdff8617187bb9fffdff"
            "5ae4df3edbd5d35e5b4f09020db03eab"
            "1e031dda2fbe03d1792170a0f3009cee");
}

TEST(Ctr, IsInvolution) {
  ChaChaRng rng(1);
  Bytes key = rng.bytes(16);
  Aes128 aes(key);
  for (std::size_t len : {0u, 1u, 15u, 16u, 17u, 100u, 1000u}) {
    Bytes iv = rng.bytes(16);
    Bytes pt = rng.bytes(len);
    Bytes ct = aes_ctr(aes, iv.data(), pt);
    Bytes back = aes_ctr(aes, iv.data(), ct);
    EXPECT_EQ(hex_encode(back), hex_encode(pt)) << "len=" << len;
  }
}

TEST(Ctr, CounterWrapsAcrossBlockBoundary) {
  // Counter blocks near the 32-bit boundary must not collide.
  Bytes key = must_hex("000102030405060708090a0b0c0d0e0f");
  Aes128 aes(key);
  Bytes iv = must_hex("000102030405060708090a0bfffffffe");
  Bytes pt(64, 0);
  Bytes ct = aes_ctr(aes, iv.data(), pt);
  // Keystream blocks must all differ.
  for (int i = 0; i < 4; ++i)
    for (int j = i + 1; j < 4; ++j)
      EXPECT_NE(hex_encode(ByteSpan(ct.data() + 16 * i, 16)),
                hex_encode(ByteSpan(ct.data() + 16 * j, 16)));
}

// ---- CBC-MAC / CMAC --------------------------------------------------------

TEST(CbcMac, SingleBlockIsRawAes) {
  Bytes key = must_hex("2b7e151628aed2a6abf7158809cf4f3c");
  Bytes block = must_hex("6bc1bee22e409f96e93d7e117393172a");
  Aes128 aes(key);
  const auto mac = aes_cbc_mac(aes, block);
  std::uint8_t direct[16];
  aes.encrypt_block(block.data(), direct);
  EXPECT_EQ(hex_encode(mac), hex_encode(ByteSpan(direct, 16)));
}

TEST(CbcMac, TwoBlockChaining) {
  ChaChaRng rng(3);
  Bytes key = rng.bytes(16);
  Aes128 aes(key);
  Bytes data = rng.bytes(32);
  const auto mac = aes_cbc_mac(aes, data);
  // Manual chain.
  std::uint8_t x[16];
  aes.encrypt_block(data.data(), x);
  for (int i = 0; i < 16; ++i) x[i] ^= data[16 + i];
  aes.encrypt_block(x, x);
  EXPECT_EQ(hex_encode(mac), hex_encode(ByteSpan(x, 16)));
}

TEST(Cmac, Rfc4493Vectors) {
  Bytes key = must_hex("2b7e151628aed2a6abf7158809cf4f3c");
  AesCmac cmac(key);
  EXPECT_EQ(hex_encode(cmac.mac({})), "bb1d6929e95937287fa37d129b756746");
  EXPECT_EQ(hex_encode(cmac.mac(must_hex("6bc1bee22e409f96e93d7e117393172a"))),
            "070a16b46b4d4144f79bdd9dd04a287c");
  EXPECT_EQ(hex_encode(cmac.mac(must_hex(
                "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af"
                "8e5130c81c46a35ce411"))),
            "dfa66747de9ae63030ca32611497c827");
  EXPECT_EQ(hex_encode(cmac.mac(must_hex(
                "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af"
                "8e5130c81c46a35ce411e5fbc1191a0a52eff69f2445df4f9b17ad2b417b"
                "e66c3710"))),
            "51f0bebf7e3b9d92fc49741779363cfe");
}

TEST(Cmac, SplitMacMatchesConcatenated) {
  ChaChaRng rng(4);
  Bytes key = rng.bytes(16);
  AesCmac cmac(key);
  for (std::size_t a_len : {0u, 1u, 15u, 16u, 17u, 48u}) {
    for (std::size_t b_len : {0u, 1u, 16u, 33u}) {
      Bytes a = rng.bytes(a_len);
      Bytes b = rng.bytes(b_len);
      Bytes joined = a;
      append(joined, b);
      EXPECT_EQ(hex_encode(cmac.mac2(a, b)), hex_encode(cmac.mac(joined)))
          << a_len << "+" << b_len;
    }
  }
}

TEST(Cmac, VerifyTruncatedTag) {
  ChaChaRng rng(5);
  Bytes key = rng.bytes(16);
  AesCmac cmac(key);
  Bytes msg = rng.bytes(100);
  auto tag = cmac.mac(msg);
  EXPECT_TRUE(cmac.verify(msg, ByteSpan(tag.data(), 8)));
  tag[3] ^= 1;
  EXPECT_FALSE(cmac.verify(msg, ByteSpan(tag.data(), 8)));
  EXPECT_FALSE(cmac.verify(msg, ByteSpan(tag.data(), 0)));
}

// ---- GCM -------------------------------------------------------------------

TEST(Gcm, NistTestCase1EmptyEverything) {
  AesGcm gcm(must_hex("00000000000000000000000000000000"));
  const Bytes nonce = must_hex("000000000000000000000000");
  const Bytes out = gcm.seal(nonce, {}, {});
  EXPECT_EQ(hex_encode(out), "58e2fccefa7e3061367f1d57a4e7455a");
}

TEST(Gcm, NistTestCase2SingleZeroBlock) {
  AesGcm gcm(must_hex("00000000000000000000000000000000"));
  const Bytes nonce = must_hex("000000000000000000000000");
  const Bytes pt = must_hex("00000000000000000000000000000000");
  const Bytes out = gcm.seal(nonce, {}, pt);
  EXPECT_EQ(hex_encode(out),
            "0388dace60b6a392f328c2b971b2fe78ab6e47d42cec13bdf53a67b21257bddf");
}

TEST(Gcm, NistTestCase3FourBlocks) {
  AesGcm gcm(must_hex("feffe9928665731c6d6a8f9467308308"));
  const Bytes nonce = must_hex("cafebabefacedbaddecaf888");
  const Bytes pt = must_hex(
      "d9313225f88406e5a55909c5aff5269a"
      "86a7a9531534f7da2e4c303d8a318a72"
      "1c3c0c95956809532fcf0e2449a6b525"
      "b16aedf5aa0de657ba637b391aafd255");
  const Bytes out = gcm.seal(nonce, {}, pt);
  EXPECT_EQ(hex_encode(out),
            "42831ec2217774244b7221b784d0d49c"
            "e3aa212f2c02a4e035c17e2329aca12e"
            "21d514b25466931c7d8f6a5aac84aa05"
            "1ba30b396a0aac973d58e091473f5985"
            "4d5c2af327cd64a62cf35abd2ba6fab4");
}

TEST(Gcm, RoundtripWithAadAndTamperRejection) {
  ChaChaRng rng(6);
  AesGcm gcm(rng.bytes(16));
  Bytes nonce = rng.bytes(12);
  Bytes aad = rng.bytes(23);
  Bytes pt = rng.bytes(77);
  Bytes sealed = gcm.seal(nonce, aad, pt);
  auto opened = gcm.open(nonce, aad, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(hex_encode(*opened), hex_encode(pt));
  // Any single-byte tamper must be rejected.
  for (std::size_t i = 0; i < sealed.size(); i += 7) {
    Bytes bad = sealed;
    bad[i] ^= 0x40;
    EXPECT_FALSE(gcm.open(nonce, aad, bad).has_value()) << "i=" << i;
  }
  // Wrong AAD rejected.
  Bytes bad_aad = aad;
  bad_aad[0] ^= 1;
  EXPECT_FALSE(gcm.open(nonce, bad_aad, sealed).has_value());
}

// ---- SHA-2 -----------------------------------------------------------------

TEST(Sha256, NistVectors) {
  EXPECT_EQ(hex_encode(Sha256::hash(to_bytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(hex_encode(Sha256::hash({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(hex_encode(Sha256::hash(to_bytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(hex_encode(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  ChaChaRng rng(8);
  Bytes data = rng.bytes(300);
  for (std::size_t split = 0; split <= data.size(); split += 37) {
    Sha256 h;
    h.update(ByteSpan(data.data(), split));
    h.update(ByteSpan(data.data() + split, data.size() - split));
    EXPECT_EQ(hex_encode(h.finish()), hex_encode(Sha256::hash(data)));
  }
}

TEST(Sha512, NistVectors) {
  EXPECT_EQ(hex_encode(Sha512::hash(to_bytes("abc"))),
            "ddaf35a193617abacc417349ae204131"
            "12e6fa4e89a97ea20a9eeee64b55d39a"
            "2192992a274fc1a836ba3c23a3feebbd"
            "454d4423643ce80e2a9ac94fa54ca49f");
  EXPECT_EQ(hex_encode(Sha512::hash({})),
            "cf83e1357eefb8bdf1542850d66d8007"
            "d620e4050b5715dc83f4a921d36ce9ce"
            "47d0d13c5d85f2b0ff8318d2877eec2f"
            "63b931bd47417a81a538327af927da3e");
}

TEST(Sha512, TwoBlockMessage) {
  EXPECT_EQ(
      hex_encode(Sha512::hash(to_bytes(
          "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno"
          "ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"))),
      "8e959b75dae313da8cf4f72814fc143f"
      "8f7779c6eb9f7fa17299aeadb6889018"
      "501d289e4900f7e4331b99dec4b5433a"
      "c7d329eeb6dd26545e96e55b874be909");
}

// ---- HMAC / HKDF -----------------------------------------------------------

TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(hex_encode(hmac_sha256(key, to_bytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(hex_encode(hmac_sha256(to_bytes("Jefe"),
                                   to_bytes("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  EXPECT_EQ(hex_encode(hmac_sha256(
                key, to_bytes("Test Using Larger Than Block-Size Key - "
                              "Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hkdf, Rfc5869Case1) {
  const Bytes ikm(22, 0x0b);
  const Bytes salt = must_hex("000102030405060708090a0b0c");
  const Bytes info = must_hex("f0f1f2f3f4f5f6f7f8f9");
  const Bytes okm = hkdf(salt, ikm, info, 42);
  EXPECT_EQ(hex_encode(okm),
            "3cb25f25faacd57a90434f64d0362f2a"
            "2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(Hkdf, DistinctLabelsGiveIndependentKeys) {
  ChaChaRng rng(9);
  Bytes ikm = rng.bytes(32);
  auto k1 = derive_key16(ikm, "label-one");
  auto k2 = derive_key16(ikm, "label-two");
  EXPECT_NE(hex_encode(k1), hex_encode(k2));
  auto k1_again = derive_key16(ikm, "label-one");
  EXPECT_EQ(hex_encode(k1), hex_encode(k1_again));
}

// ---- ChaCha20 / Poly1305 ---------------------------------------------------

TEST(ChaCha20, Rfc8439BlockFunction) {
  const Bytes key = must_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const Bytes nonce = must_hex("000000090000004a00000000");
  std::uint8_t block[64];
  chacha20_block(key.data(), 1, nonce.data(), block);
  EXPECT_EQ(hex_encode(ByteSpan(block, 64)),
            "10f1e7e4d13b5915500fdd1fa32071c4"
            "c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2"
            "b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(ChaCha20, Rfc8439Encryption) {
  const Bytes key = must_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const Bytes nonce = must_hex("000000000000004a00000000");
  const Bytes pt = to_bytes(
      "Ladies and Gentlemen of the class of '99: If I could offer you only "
      "one tip for the future, sunscreen would be it.");
  Bytes ct(pt.size());
  chacha20_xcrypt(key.data(), 1, nonce.data(), pt, ct);
  EXPECT_EQ(hex_encode(ct),
            "6e2e359a2568f98041ba0728dd0d6981"
            "e97e7aec1d4360c20a27afccfd9fae0b"
            "f91b65c5524733ab8f593dabcd62b357"
            "1639d624e65152ab8f530c359f0861d8"
            "07ca0dbf500d6a6156a38e088a22b65e"
            "52bc514d16ccf806818ce91ab7793736"
            "5af90bbf74a35be6b40b8eedf2785e42"
            "874d");
}

TEST(Poly1305, Rfc8439Vector) {
  const Bytes key = must_hex(
      "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b");
  const auto tag =
      poly1305(key.data(), to_bytes("Cryptographic Forum Research Group"));
  EXPECT_EQ(hex_encode(tag), "a8061dc1305136c6c22b8baf0c0127a9");
}

TEST(ChaChaPoly, Rfc8439AeadVector) {
  const Bytes key = must_hex(
      "808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f");
  const Bytes nonce = must_hex("070000004041424344454647");
  const Bytes aad = must_hex("50515253c0c1c2c3c4c5c6c7");
  const Bytes pt = to_bytes(
      "Ladies and Gentlemen of the class of '99: If I could offer you only "
      "one tip for the future, sunscreen would be it.");
  ChaCha20Poly1305 aead(key);
  const Bytes sealed = aead.seal(nonce, aad, pt);
  EXPECT_EQ(hex_encode(ByteSpan(sealed.data() + pt.size(), 16)),
            "1ae10b594f09e26a7e902ecbd0600691");
  auto opened = aead.open(nonce, aad, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(to_string(*opened), to_string(pt));
}

// ---- AEAD interface (parameterized over suites) ------------------------------

class AeadSuiteTest : public ::testing::TestWithParam<AeadSuite> {};

TEST_P(AeadSuiteTest, RoundtripAcrossSizes) {
  ChaChaRng rng(10);
  Bytes key = rng.bytes(32);
  auto aead = Aead::create(GetParam(), key);
  ASSERT_NE(aead, nullptr);
  for (std::size_t len : {0u, 1u, 16u, 63u, 64u, 65u, 128u, 1000u, 1500u}) {
    Bytes nonce = rng.bytes(12);
    Bytes aad = rng.bytes(48);
    Bytes pt = rng.bytes(len);
    Bytes sealed = aead->seal(nonce, aad, pt);
    EXPECT_EQ(sealed.size(), len + Aead::kTagSize);
    auto opened = aead->open(nonce, aad, sealed);
    ASSERT_TRUE(opened.has_value()) << "len=" << len;
    EXPECT_EQ(hex_encode(*opened), hex_encode(pt));
  }
}

TEST_P(AeadSuiteTest, TamperAnywhereRejects) {
  ChaChaRng rng(11);
  Bytes key = rng.bytes(32);
  auto aead = Aead::create(GetParam(), key);
  Bytes nonce = rng.bytes(12);
  Bytes aad = rng.bytes(16);
  Bytes pt = rng.bytes(64);
  Bytes sealed = aead->seal(nonce, aad, pt);
  for (std::size_t i = 0; i < sealed.size(); ++i) {
    Bytes bad = sealed;
    bad[i] ^= 0x01;
    EXPECT_FALSE(aead->open(nonce, aad, bad).has_value()) << "byte " << i;
  }
}

TEST_P(AeadSuiteTest, WrongNonceOrKeyRejects) {
  ChaChaRng rng(12);
  Bytes key = rng.bytes(32);
  auto aead = Aead::create(GetParam(), key);
  Bytes nonce = rng.bytes(12);
  Bytes pt = rng.bytes(32);
  Bytes sealed = aead->seal(nonce, {}, pt);

  Bytes other_nonce = nonce;
  other_nonce[11] ^= 1;
  EXPECT_FALSE(aead->open(other_nonce, {}, sealed).has_value());

  Bytes other_key = key;
  other_key[0] ^= 1;
  auto aead2 = Aead::create(GetParam(), other_key);
  EXPECT_FALSE(aead2->open(nonce, {}, sealed).has_value());
}

TEST_P(AeadSuiteTest, TruncatedCiphertextRejects) {
  ChaChaRng rng(13);
  auto aead = Aead::create(GetParam(), rng.bytes(32));
  Bytes nonce = rng.bytes(12);
  Bytes sealed = aead->seal(nonce, {}, rng.bytes(40));
  EXPECT_FALSE(aead->open(nonce, {}, ByteSpan(sealed.data(), 10)).has_value());
  EXPECT_FALSE(aead->open(nonce, {}, ByteSpan(sealed.data(), 0)).has_value());
}

INSTANTIATE_TEST_SUITE_P(AllSuites, AeadSuiteTest,
                         ::testing::Values(AeadSuite::chacha20_poly1305,
                                           AeadSuite::aes128_gcm,
                                           AeadSuite::aes128_ctr_cmac),
                         [](const auto& info) {
                           switch (info.param) {
                             case AeadSuite::chacha20_poly1305:
                               return "ChaCha20Poly1305";
                             case AeadSuite::aes128_gcm: return "AesGcm";
                             case AeadSuite::aes128_ctr_cmac:
                               return "AesCtrCmac";
                           }
                           return "Unknown";
                         });

// ---- Field arithmetic ------------------------------------------------------

TEST(Fe25519, RoundtripBytes) {
  ChaChaRng rng(14);
  for (int i = 0; i < 50; ++i) {
    Bytes b = rng.bytes(32);
    b[31] &= 0x7f;  // below 2^255
    // Values >= p won't roundtrip identically; mask to < p by clearing a bit.
    b[31] &= 0x3f;
    Fe f = fe_frombytes(b.data());
    std::uint8_t out[32];
    fe_tobytes(out, f);
    EXPECT_EQ(hex_encode(ByteSpan(out, 32)), hex_encode(b));
  }
}

TEST(Fe25519, NonCanonicalReduces) {
  // p encodes as zero.
  Bytes p_bytes = must_hex(
      "edffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff7f");
  Fe f = fe_frombytes(p_bytes.data());
  EXPECT_TRUE(fe_iszero(f));
  // p + 1 encodes as one.
  Bytes p1 = p_bytes;
  p1[0] = 0xee;
  Fe g = fe_frombytes(p1.data());
  std::uint8_t out[32];
  fe_tobytes(out, g);
  EXPECT_EQ(out[0], 1);
  for (int i = 1; i < 32; ++i) EXPECT_EQ(out[i], 0);
}

TEST(Fe25519, AlgebraicIdentities) {
  ChaChaRng rng(15);
  for (int i = 0; i < 20; ++i) {
    Bytes ab = rng.bytes(32);
    ab[31] &= 0x3f;
    Bytes bb = rng.bytes(32);
    bb[31] &= 0x3f;
    Fe a = fe_frombytes(ab.data());
    Fe b = fe_frombytes(bb.data());
    // a*b == b*a
    EXPECT_TRUE(fe_equal(fe_mul(a, b), fe_mul(b, a)));
    // (a+b)^2 == a^2 + 2ab + b^2
    Fe lhs = fe_sq(fe_add(a, b));
    Fe rhs = fe_add(fe_add(fe_sq(a), fe_sq(b)),
                    fe_add(fe_mul(a, b), fe_mul(a, b)));
    EXPECT_TRUE(fe_equal(lhs, rhs));
    // a * a^-1 == 1 (a != 0 w.h.p.)
    if (!fe_iszero(a)) {
      EXPECT_TRUE(fe_equal(fe_mul(a, fe_invert(a)), fe_one()));
    }
    // a - a == 0
    EXPECT_TRUE(fe_iszero(fe_sub(a, a)));
  }
}

TEST(Fe25519, SqrtM1SquaresToMinusOne) {
  const Fe i = fe_sqrtm1();
  EXPECT_TRUE(fe_equal(fe_sq(i), fe_neg(fe_one())));
}

// ---- X25519 ----------------------------------------------------------------

TEST(X25519, Rfc7748Vector1) {
  X25519PrivateKey scalar{};
  X25519PublicKey point{};
  auto s = must_hex(
      "a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
  auto u = must_hex(
      "e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
  std::copy(s.begin(), s.end(), scalar.begin());
  std::copy(u.begin(), u.end(), point.begin());
  EXPECT_EQ(hex_encode(x25519(scalar, point)),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552");
}

TEST(X25519, Rfc7748Vector2) {
  X25519PrivateKey scalar{};
  X25519PublicKey point{};
  auto s = must_hex(
      "4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
  auto u = must_hex(
      "e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
  std::copy(s.begin(), s.end(), scalar.begin());
  std::copy(u.begin(), u.end(), point.begin());
  EXPECT_EQ(hex_encode(x25519(scalar, point)),
            "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957");
}

TEST(X25519, Rfc7748DiffieHellman) {
  X25519PrivateKey alice_priv{}, bob_priv{};
  auto a = must_hex(
      "77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
  auto b = must_hex(
      "5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");
  std::copy(a.begin(), a.end(), alice_priv.begin());
  std::copy(b.begin(), b.end(), bob_priv.begin());

  const auto alice_pub = x25519_base(alice_priv);
  const auto bob_pub = x25519_base(bob_priv);
  EXPECT_EQ(hex_encode(alice_pub),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a");
  EXPECT_EQ(hex_encode(bob_pub),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f");

  const auto k1 = x25519_shared(alice_priv, bob_pub);
  const auto k2 = x25519_shared(bob_priv, alice_pub);
  EXPECT_EQ(hex_encode(k1), hex_encode(k2));
  EXPECT_EQ(hex_encode(k1),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742");
}

TEST(X25519, RandomPairsAgree) {
  ChaChaRng rng(16);
  for (int i = 0; i < 8; ++i) {
    auto kp1 = X25519KeyPair::generate(rng);
    auto kp2 = X25519KeyPair::generate(rng);
    EXPECT_EQ(hex_encode(x25519_shared(kp1.priv, kp2.pub)),
              hex_encode(x25519_shared(kp2.priv, kp1.pub)));
  }
}

// ---- Ed25519 ---------------------------------------------------------------

TEST(Ed25519, Rfc8032Test1EmptyMessage) {
  Ed25519Seed seed{};
  auto s = must_hex(
      "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60");
  std::copy(s.begin(), s.end(), seed.begin());
  const auto pub = ed25519_public_key(seed);
  EXPECT_EQ(hex_encode(pub),
            "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a");
  const auto sig = ed25519_sign(seed, pub, {});
  EXPECT_EQ(hex_encode(sig),
            "e5564300c360ac729086e2cc806e828a"
            "84877f1eb8e5d974d873e06522490155"
            "5fb8821590a33bacc61e39701cf9b46b"
            "d25bf5f0595bbe24655141438e7a100b");
  EXPECT_TRUE(ed25519_verify(pub, {}, sig));
}

TEST(Ed25519, Rfc8032Test2OneByte) {
  Ed25519Seed seed{};
  auto s = must_hex(
      "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb");
  std::copy(s.begin(), s.end(), seed.begin());
  const auto pub = ed25519_public_key(seed);
  EXPECT_EQ(hex_encode(pub),
            "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c");
  const Bytes msg = must_hex("72");
  const auto sig = ed25519_sign(seed, pub, msg);
  EXPECT_EQ(hex_encode(sig),
            "92a009a9f0d4cab8720e820b5f642540"
            "a2b27b5416503f8fb3762223ebdb69da"
            "085ac1e43e15996e458f3613d0f11d8c"
            "387b2eaeb4302aeeb00d291612bb0c00");
  EXPECT_TRUE(ed25519_verify(pub, msg, sig));
}

TEST(Ed25519, Rfc8032Test3TwoBytes) {
  Ed25519Seed seed{};
  auto s = must_hex(
      "c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7");
  std::copy(s.begin(), s.end(), seed.begin());
  const auto pub = ed25519_public_key(seed);
  EXPECT_EQ(hex_encode(pub),
            "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025");
  const Bytes msg = must_hex("af82");
  const auto sig = ed25519_sign(seed, pub, msg);
  EXPECT_EQ(hex_encode(sig),
            "6291d657deec24024827e69c3abe01a3"
            "0ce548a284743a445e3680d7db5ac3ac"
            "18ff9b538d16f290ae67f760984dc659"
            "4a7c15e9716ed28dc027beceea1ec40a");
  EXPECT_TRUE(ed25519_verify(pub, msg, sig));
}

TEST(Ed25519, TamperedSignatureRejected) {
  ChaChaRng rng(17);
  auto kp = Ed25519KeyPair::generate(rng);
  const Bytes msg = to_bytes("attack at dawn");
  auto sig = kp.sign(msg);
  EXPECT_TRUE(ed25519_verify(kp.pub, msg, sig));
  for (std::size_t i = 0; i < sig.size(); i += 5) {
    auto bad = sig;
    bad[i] ^= 0x20;
    EXPECT_FALSE(ed25519_verify(kp.pub, msg, bad)) << "byte " << i;
  }
  EXPECT_FALSE(ed25519_verify(kp.pub, to_bytes("attack at dusk"), sig));
  auto kp2 = Ed25519KeyPair::generate(rng);
  EXPECT_FALSE(ed25519_verify(kp2.pub, msg, sig));
}

TEST(Ed25519, NonCanonicalScalarRejected) {
  ChaChaRng rng(18);
  auto kp = Ed25519KeyPair::generate(rng);
  const Bytes msg = to_bytes("msg");
  auto sig = kp.sign(msg);
  // Force S >= L by setting S to L itself (bytes of the group order).
  auto l_bytes = must_hex(
      "edd3f55c1a631258d69cf7a2def9de1400000000000000000000000000000010");
  std::copy(l_bytes.begin(), l_bytes.end(), sig.begin() + 32);
  EXPECT_FALSE(ed25519_verify(kp.pub, msg, sig));
}

TEST(Ed25519, SignIsDeterministic) {
  ChaChaRng rng(19);
  auto kp = Ed25519KeyPair::generate(rng);
  const Bytes msg = to_bytes("deterministic");
  EXPECT_EQ(hex_encode(kp.sign(msg)), hex_encode(kp.sign(msg)));
}

// ---- RNG -------------------------------------------------------------------

TEST(Rng, DeterministicWithSeed) {
  ChaChaRng a(1234), b(1234), c(1235);
  EXPECT_EQ(hex_encode(a.bytes(64)), hex_encode(b.bytes(64)));
  ChaChaRng a2(1234);
  EXPECT_NE(hex_encode(a2.bytes(64)), hex_encode(c.bytes(64)));
}

TEST(Rng, UniformBoundsRespected) {
  ChaChaRng rng(20);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform(7), 7u);
    const double d = rng.uniform_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
  // uniform(1) is always 0.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform(1), 0u);
}

TEST(Rng, OsSeededInstancesDiffer) {
  auto a = ChaChaRng::from_os_entropy();
  auto b = ChaChaRng::from_os_entropy();
  EXPECT_NE(hex_encode(a.bytes(32)), hex_encode(b.bytes(32)));
}

// ---- util ------------------------------------------------------------------

TEST(Hex, EncodeDecodeRoundtrip) {
  ChaChaRng rng(21);
  Bytes data = rng.bytes(57);
  auto decoded = hex_decode(hex_encode(data));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}

TEST(Hex, RejectsMalformed) {
  EXPECT_FALSE(hex_decode("abc").has_value());    // odd length
  EXPECT_FALSE(hex_decode("zz").has_value());     // bad digit
  EXPECT_TRUE(hex_decode("").has_value());        // empty ok
  EXPECT_TRUE(hex_decode("AbCd").has_value());    // mixed case ok
}

TEST(Bytes, ConstantTimeEqual) {
  Bytes a = {1, 2, 3};
  Bytes b = {1, 2, 3};
  Bytes c = {1, 2, 4};
  EXPECT_TRUE(ct_equal(a, b));
  EXPECT_FALSE(ct_equal(a, c));
  EXPECT_FALSE(ct_equal(a, ByteSpan(a.data(), 2)));
  EXPECT_TRUE(ct_equal({}, {}));
}

TEST(Bytes, EndianHelpers) {
  std::uint8_t buf[8];
  store_be32(buf, 0x01020304);
  EXPECT_EQ(load_be32(buf), 0x01020304u);
  EXPECT_EQ(buf[0], 0x01);
  store_le32(buf, 0x01020304);
  EXPECT_EQ(load_le32(buf), 0x01020304u);
  EXPECT_EQ(buf[0], 0x04);
  store_be64(buf, 0x0102030405060708ULL);
  EXPECT_EQ(load_be64(buf), 0x0102030405060708ULL);
  store_le64(buf, 0x0102030405060708ULL);
  EXPECT_EQ(load_le64(buf), 0x0102030405060708ULL);
}

}  // namespace
}  // namespace apna::crypto

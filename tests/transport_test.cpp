// Transport conformance suite — the SAME assertions run against both
// backends (net/transport.h) so the simulator and the real UDP socket can
// never drift:
//  * validated delivery: a sent PacketBuf arrives bound, owned and
//    byte-identical, with tx/rx stats accounted;
//  * move-only ownership: the rx handler keeps the PacketBuf alive past
//    later deliveries — the transport never aliases or reuses it;
//  * in-order burst delivery (EventLoop FIFO / loopback UDP);
//  * the wire-level adversary: truncated and flag-tampered datagrams die
//    in PacketView::bind (rx_rejected), oversize datagrams die at the RX
//    buffer (rx_truncated), and none of them reach the handler;
//  * steady-state RX recycles pooled buffers (the zero-copy discipline
//    survives the syscall boundary).
//
// The UDP half skips — never fails — when the environment forbids sockets
// (UdpTransport::open returns Errc::internal in sandboxed CI).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "net/transport.h"
#include "wire/packet_buf.h"

namespace apna::net {
namespace {

wire::Packet make_packet(std::uint32_t tag) {
  wire::Packet p;
  p.src_aid = 64512;
  p.dst_aid = 64513;
  p.src_ephid.fill(static_cast<std::uint8_t>(tag * 7 + 1));
  p.dst_ephid.fill(static_cast<std::uint8_t>(tag * 11 + 2));
  p.proto = wire::NextProto::data;
  p.payload.assign(48, static_cast<std::uint8_t>(tag));
  return p;
}

/// One connected endpoint pair of the backend under test. The loop member
/// is only populated for the sim backend (UDP needs no shared fabric).
struct Endpoints {
  std::unique_ptr<EventLoop> loop;
  std::unique_ptr<Transport> a;
  std::unique_ptr<Transport> b;
  PeerId a_to_b = 0;  // peer id of b in a's table
  PeerId b_to_a = 0;  // peer id of a in b's table
};

std::unique_ptr<Endpoints> make_endpoints(const std::string& backend) {
  auto ep = std::make_unique<Endpoints>();
  if (backend == "sim") {
    ep->loop = std::make_unique<EventLoop>();
    auto a = std::make_unique<SimTransport>(*ep->loop);
    auto b = std::make_unique<SimTransport>(*ep->loop);
    ep->a_to_b = a->add_peer(*b);
    ep->b_to_a = b->add_peer(*a);
    ep->a = std::move(a);
    ep->b = std::move(b);
    return ep;
  }
  UdpTransport::Config cfg;
  auto a = UdpTransport::open(cfg);
  auto b = UdpTransport::open(cfg);
  if (!a.ok() || !b.ok()) return nullptr;  // sandboxed environment
  auto a_to_b = (*a)->add_peer("127.0.0.1", (*b)->local_port());
  auto b_to_a = (*b)->add_peer("127.0.0.1", (*a)->local_port());
  if (!a_to_b.ok() || !b_to_a.ok()) return nullptr;
  ep->a_to_b = *a_to_b;
  ep->b_to_a = *b_to_a;
  ep->a = std::move(*a);
  ep->b = std::move(*b);
  return ep;
}

/// Polls `t` until `want` packets landed in its handler or `budget_ms`
/// expires. The sim backend delivers everything on the first poll; the UDP
/// backend may need several epoll wakes.
std::size_t pump(Transport& t, std::size_t want, int budget_ms = 2000) {
  std::size_t got = t.poll(0);
  for (int waited = 0; got < want && waited < budget_ms; waited += 10)
    got += t.poll(10);
  return got;
}

class TransportConformance : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    ep_ = make_endpoints(GetParam());
    if (!ep_)
      GTEST_SKIP() << "UDP sockets unavailable in this environment";
    EXPECT_STREQ(ep_->a->backend(), GetParam());
  }

  std::unique_ptr<Endpoints> ep_;
};

TEST_P(TransportConformance, DeliversValidatedOwnedPackets) {
  std::vector<wire::PacketBuf> got;
  std::vector<PeerId> from;
  ep_->b->set_rx([&](PeerId f, wire::PacketBuf p) {
    from.push_back(f);
    got.push_back(std::move(p));  // take ownership — move-only handoff
  });

  const wire::Packet original = make_packet(1);
  const wire::PacketBuf image = original.seal();
  ASSERT_TRUE(ep_->a->send(ep_->a_to_b, original.seal()).ok());
  ASSERT_EQ(pump(*ep_->b, 1), 1u);

  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(from[0], ep_->b_to_a);
  // Byte-identical wire image: the transport moved or copied the frame,
  // never re-encoded it.
  const ByteSpan sent = image.view().bytes();
  const ByteSpan rcvd = got[0].view().bytes();
  ASSERT_EQ(rcvd.size(), sent.size());
  EXPECT_EQ(std::memcmp(rcvd.data(), sent.data(), sent.size()), 0);

  EXPECT_EQ(ep_->a->stats().tx_packets, 1u);
  EXPECT_EQ(ep_->a->stats().tx_bytes, sent.size());
  EXPECT_EQ(ep_->b->stats().rx_packets, 1u);
  EXPECT_EQ(ep_->b->stats().rx_rejected, 0u);
}

TEST_P(TransportConformance, HandlerKeepsOwnershipAcrossLaterDeliveries) {
  std::vector<wire::PacketBuf> kept;
  ep_->b->set_rx([&](PeerId, wire::PacketBuf p) {
    kept.push_back(std::move(p));
  });

  constexpr std::size_t kN = 8;
  for (std::size_t i = 0; i < kN; ++i)
    ASSERT_TRUE(ep_->a->send(ep_->a_to_b,
                             make_packet(static_cast<std::uint32_t>(i))
                                 .seal()).ok());
  ASSERT_EQ(pump(*ep_->b, kN), kN);

  // Every kept buffer must still carry ITS packet's bytes — later
  // deliveries (and their pooled buffers) never alias an owned PacketBuf.
  ASSERT_EQ(kept.size(), kN);
  for (std::size_t i = 0; i < kN; ++i) {
    const ByteSpan payload = kept[i].view().payload();
    ASSERT_EQ(payload.size(), 48u);
    EXPECT_EQ(payload[0], static_cast<std::uint8_t>(i)) << "packet " << i;
  }
}

TEST_P(TransportConformance, DeliversBurstInOrder) {
  // The sim loop is FIFO by construction; loopback UDP between two local
  // sockets is FIFO in practice. Either way the conformance contract is
  // the same: a single-sender burst arrives in send order.
  std::vector<std::uint8_t> order;
  ep_->b->set_rx([&](PeerId, wire::PacketBuf p) {
    order.push_back(p.view().payload()[0]);
  });
  constexpr std::size_t kN = 32;
  for (std::size_t i = 0; i < kN; ++i)
    ASSERT_TRUE(ep_->a->send(ep_->a_to_b,
                             make_packet(static_cast<std::uint32_t>(i))
                                 .seal()).ok());
  ASSERT_EQ(pump(*ep_->b, kN), kN);
  ASSERT_EQ(order.size(), kN);
  for (std::size_t i = 0; i < kN; ++i)
    EXPECT_EQ(order[i], static_cast<std::uint8_t>(i)) << "position " << i;
}

TEST_P(TransportConformance, TruncatedDatagramDiesInBind) {
  std::size_t handled = 0;
  ep_->b->set_rx([&](PeerId, wire::PacketBuf) { ++handled; });

  const wire::PacketBuf image = make_packet(3).seal();
  const ByteSpan bytes = image.view().bytes();
  // Cut mid-payload: the length fields no longer match the frame.
  ASSERT_TRUE(ep_->a->send_raw(ep_->a_to_b,
                               ByteSpan(bytes.data(), bytes.size() - 5))
                  .ok());
  // A runt far below the minimum header.
  ASSERT_TRUE(ep_->a->send_raw(ep_->a_to_b, ByteSpan(bytes.data(), 3)).ok());

  pump(*ep_->b, 1, 200);  // nothing should arrive; bounded wait
  EXPECT_EQ(handled, 0u);
  EXPECT_EQ(ep_->b->stats().rx_packets, 0u);
  EXPECT_EQ(ep_->b->stats().rx_rejected, 2u);
}

TEST_P(TransportConformance, TamperedFlagsDieInBind) {
  std::size_t handled = 0;
  ep_->b->set_rx([&](PeerId, wire::PacketBuf) { ++handled; });

  const wire::PacketBuf image = make_packet(4).seal();
  const ByteSpan bytes = image.view().bytes();
  Bytes tampered(bytes.begin(), bytes.end());
  tampered[wire::kOffFlags] |= 0x80;  // outside kKnownFlagsMask
  ASSERT_TRUE(ep_->a->send_raw(ep_->a_to_b,
                               ByteSpan(tampered.data(), tampered.size()))
                  .ok());

  pump(*ep_->b, 1, 200);
  EXPECT_EQ(handled, 0u);
  EXPECT_EQ(ep_->b->stats().rx_rejected, 1u);

  // The same image untampered passes — the rejection above was the flag
  // bit, not the harness.
  ASSERT_TRUE(ep_->a->send_raw(ep_->a_to_b, bytes).ok());
  EXPECT_EQ(pump(*ep_->b, 1), 1u);
  EXPECT_EQ(handled, 1u);
}

TEST_P(TransportConformance, OversizeDatagramCountedAsTruncated) {
  std::size_t handled = 0;
  ep_->b->set_rx([&](PeerId, wire::PacketBuf) { ++handled; });

  // Larger than the 2048-byte RX buffer both backends default to.
  Bytes oversize(3000, 0xab);
  ASSERT_TRUE(ep_->a->send_raw(ep_->a_to_b,
                               ByteSpan(oversize.data(), oversize.size()))
                  .ok());
  pump(*ep_->b, 1, 200);
  EXPECT_EQ(handled, 0u);
  EXPECT_EQ(ep_->b->stats().rx_truncated, 1u);
  EXPECT_EQ(ep_->b->stats().rx_rejected, 0u);  // died before bind()
}

TEST_P(TransportConformance, UnknownPeerIsNoRoute) {
  EXPECT_EQ(ep_->a->send(999, make_packet(5).seal()).code(), Errc::no_route);
  EXPECT_EQ(ep_->a->stats().tx_packets, 0u);
}

TEST_P(TransportConformance, SteadyStateRxRecyclesPooledBuffers) {
  // Warm-up: the first packets may miss the pool; afterwards every RX
  // acquire must be served from recycled storage (the handler drops the
  // PacketBuf, returning its buffer to this thread's pool).
  ep_->b->set_rx([](PeerId, wire::PacketBuf) {});  // drop → recycle
  constexpr std::size_t kWarm = 16, kMeasured = 64;
  for (std::size_t i = 0; i < kWarm; ++i)
    ASSERT_TRUE(ep_->a->send(ep_->a_to_b, make_packet(0).seal()).ok());
  ASSERT_EQ(pump(*ep_->b, kWarm), kWarm);

  const std::uint64_t hits0 = wire::BufferPool::local().stats().hits;
  for (std::size_t i = 0; i < kMeasured; ++i) {
    ASSERT_TRUE(ep_->a->send(ep_->a_to_b, make_packet(1).seal()).ok());
    ASSERT_EQ(pump(*ep_->b, 1), 1u);  // lock-step: one in flight at a time
  }
  const std::uint64_t hits = wire::BufferPool::local().stats().hits - hits0;
  // Each round acquires at least twice (TX seal + RX buffer on UDP; TX
  // seal on sim) — all from the warm pool.
  EXPECT_GE(hits, kMeasured);
}

INSTANTIATE_TEST_SUITE_P(Backends, TransportConformance,
                         ::testing::Values("sim", "udp"),
                         [](const testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

// ---- UDP peer-table bound under an address-spoofing flood --------------------
//
// 10⁴ distinct source addresses (each ephemeral-port socket is a distinct
// UDP source — the loopback equivalent of a spoofed-source flood) hit one
// receiver whose learned-peer table holds 32 slots. The table must stay
// bounded: new sources recycle the LRU learned slot, the explicitly added
// (pinned) peer is never displaced, and no source falls back to
// kUnknownPeer while unpinned slots exist.
TEST(UdpPeerTable, SpoofedSourceFloodStaysBoundedAndEvictsLru) {
  UdpTransport::Config cfg;
  cfg.max_peers = 32;
  auto opened = UdpTransport::open(cfg);
  if (!opened.ok()) GTEST_SKIP() << "UDP sockets unavailable";
  std::unique_ptr<UdpTransport> rx = std::move(*opened);

  // Pin one peer on a port the flood's ephemeral sources can never use.
  auto pinned = rx->add_peer("127.0.0.1", 9);
  ASSERT_TRUE(pinned.ok());

  std::uint64_t handled = 0;
  bool saw_unknown = false, saw_pinned_id = false;
  rx->set_rx([&](PeerId from, wire::PacketBuf) {
    ++handled;
    if (from == kUnknownPeer) saw_unknown = true;
    if (from == *pinned) saw_pinned_id = true;
  });

  const wire::PacketBuf image = make_packet(6).seal();
  const ByteSpan bytes = image.view().bytes();
  sockaddr_in dst{};
  dst.sin_family = AF_INET;
  dst.sin_port = htons(rx->local_port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &dst.sin_addr), 1);

  constexpr std::size_t kSources = 10'000;
  for (std::size_t i = 0; i < kSources; ++i) {
    // One throwaway socket per source: the kernel assigns a fresh ephemeral
    // port on sendto, so every iteration presents a distinct peer address.
    const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    ASSERT_GE(fd, 0);
    (void)::sendto(fd, bytes.data(), bytes.size(), 0,
                   reinterpret_cast<const sockaddr*>(&dst), sizeof(dst));
    ::close(fd);
    if (i % 64 == 63) {
      (void)rx->poll(0);  // drain as we go so the rcvbuf never overruns
      ASSERT_LE(rx->peer_count(), cfg.max_peers) << "after source " << i;
    }
  }
  while (rx->poll(10) > 0) {
  }

  // The flood is lossy on principle (UDP), but the properties are not: the
  // table never grew past the bound, every displaced slot was counted, and
  // sources beyond the 31 learned slots evicted LRU rather than falling
  // back to kUnknownPeer or touching the pinned slot.
  EXPECT_GT(handled, 1'000u);
  EXPECT_LE(rx->peer_count(), cfg.max_peers);
  EXPECT_FALSE(saw_unknown);
  EXPECT_FALSE(saw_pinned_id);
  // Each source sent one datagram, so nearly every received packet after
  // the 31 learned slots filled displaced one learned peer. Not exactly
  // every: the kernel recycles ephemeral ports of closed sockets, and a
  // reused port can match a still-resident slot (a refresh, not an
  // eviction) — hence the slack.
  EXPECT_GE(rx->stats().peers_evicted + 100,
            rx->stats().rx_packets - (cfg.max_peers - 1));
  // The pinned peer survived the whole storm: re-adding it resolves to the
  // same slot instead of learning a new one.
  auto again = rx->add_peer("127.0.0.1", 9);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *pinned);
}

}  // namespace
}  // namespace apna::net

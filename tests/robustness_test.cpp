// Parser robustness: every wire format must reject truncations and survive
// arbitrary byte corruption without crashing (malformed input is attacker
// controlled — §II adversaries inject arbitrary control and data messages).
#include <gtest/gtest.h>

#include <functional>

#include "core/messages.h"
#include "crypto/rng.h"
#include "wire/apna_header.h"
#include "wire/ipv4.h"

namespace apna {
namespace {

crypto::ChaChaRng& rng() {
  static crypto::ChaChaRng r(20'26);
  return r;
}

core::EphIdCertificate sample_cert() {
  core::EphIdCertificate c;
  rng().fill(MutByteSpan(c.ephid.bytes.data(), 16));
  c.exp_time = 12345;
  c.pub = core::EphIdKeyPair::generate(rng()).pub;
  c.aid = 64512;
  rng().fill(MutByteSpan(c.aa_ephid.bytes.data(), 16));
  c.flags = core::kCertReceiveOnly;
  rng().fill(MutByteSpan(c.sig.data(), 64));
  return c;
}

/// A named serializer/parser pair under test.
struct Format {
  const char* name;
  std::function<Bytes()> make;
  std::function<bool(ByteSpan)> parses;  // returns ok-ness, must not crash
};

std::vector<Format> formats() {
  std::vector<Format> out;
  out.push_back({"Packet",
                 [] {
                   wire::Packet p;
                   p.src_aid = 1;
                   p.dst_aid = 2;
                   p.set_nonce(7);
                   p.stamp_path(100);
                   p.payload = rng().bytes(33);
                   return p.serialize();
                 },
                 [](ByteSpan d) { return wire::Packet::parse(d).ok(); }});
  out.push_back({"Certificate", [] { return sample_cert().serialize(); },
                 [](ByteSpan d) {
                   return core::EphIdCertificate::parse(d).ok();
                 }});
  out.push_back({"BootstrapRequest",
                 [] {
                   core::BootstrapRequest m;
                   m.subscriber_id = 1;
                   m.credential = rng().bytes(10);
                   m.host_pub = crypto::X25519KeyPair::generate(rng()).pub;
                   return m.serialize();
                 },
                 [](ByteSpan d) {
                   return core::BootstrapRequest::parse(d).ok();
                 }});
  out.push_back({"BootstrapResponse",
                 [] {
                   core::BootstrapResponse m;
                   m.hid = 7;
                   rng().fill(MutByteSpan(m.ctrl_ephid.bytes.data(), 16));
                   m.ctrl_exp_time = 99;
                   rng().fill(MutByteSpan(m.id_info_sig.data(), 64));
                   m.ms_cert = sample_cert();
                   m.dns_cert = sample_cert();
                   m.aid = 64512;
                   return m.serialize();
                 },
                 [](ByteSpan d) {
                   return core::BootstrapResponse::parse(d).ok();
                 }});
  out.push_back({"EphIdRequest",
                 [] {
                   core::EphIdRequest m;
                   m.ephid_pub = core::EphIdKeyPair::generate(rng()).pub;
                   return m.serialize();
                 },
                 [](ByteSpan d) { return core::EphIdRequest::parse(d).ok(); }});
  out.push_back({"EphIdResponse",
                 [] {
                   core::EphIdResponse m;
                   m.cert = sample_cert();
                   return m.serialize();
                 },
                 [](ByteSpan d) {
                   return core::EphIdResponse::parse(d).ok();
                 }});
  out.push_back({"HandshakeInit",
                 [] {
                   core::HandshakeInit m;
                   m.client_cert = sample_cert();
                   m.client_nonce = 5;
                   m.early_data = rng().bytes(20);
                   return m.serialize();
                 },
                 [](ByteSpan d) {
                   return core::HandshakeInit::parse(d).ok();
                 }});
  out.push_back({"HandshakeResponse",
                 [] {
                   core::HandshakeResponse m;
                   m.serving_cert = sample_cert();
                   m.server_nonce = 6;
                   return m.serialize();
                 },
                 [](ByteSpan d) {
                   return core::HandshakeResponse::parse(d).ok();
                 }});
  out.push_back({"DnsQuery",
                 [] {
                   core::DnsQuery q;
                   q.name = "robustness.example";
                   return q.serialize();
                 },
                 [](ByteSpan d) { return core::DnsQuery::parse(d).ok(); }});
  out.push_back({"DnsResponse",
                 [] {
                   core::DnsResponse m;
                   m.status = 0;
                   core::DnsRecord rec;
                   rec.name = "x.example";
                   rec.cert = sample_cert();
                   rng().fill(MutByteSpan(rec.sig.data(), 64));
                   m.record = rec;
                   return m.serialize();
                 },
                 [](ByteSpan d) { return core::DnsResponse::parse(d).ok(); }});
  out.push_back({"DnsPublish",
                 [] {
                   core::DnsPublish m;
                   m.name = "pub.example";
                   m.cert = sample_cert();
                   return m.serialize();
                 },
                 [](ByteSpan d) { return core::DnsPublish::parse(d).ok(); }});
  out.push_back({"ShutoffRequest",
                 [] {
                   core::ShutoffRequest m;
                   m.offending_packet = rng().bytes(80);
                   rng().fill(MutByteSpan(m.sig.data(), 64));
                   m.dst_cert = sample_cert();
                   return m.serialize();
                 },
                 [](ByteSpan d) {
                   return core::ShutoffRequest::parse(d).ok();
                 }});
  out.push_back({"EphIdRevokeRequest",
                 [] {
                   core::EphIdRevokeRequest m;
                   rng().fill(MutByteSpan(m.ephid.bytes.data(), 16));
                   rng().fill(MutByteSpan(m.sig.data(), 64));
                   m.cert = sample_cert();
                   return m.serialize();
                 },
                 [](ByteSpan d) {
                   return core::EphIdRevokeRequest::parse(d).ok();
                 }});
  out.push_back({"IcmpMessage",
                 [] {
                   core::IcmpMessage m;
                   m.type = core::IcmpType::echo_request;
                   m.data = rng().bytes(24);
                   return m.serialize();
                 },
                 [](ByteSpan d) { return core::IcmpMessage::parse(d).ok(); }});
  out.push_back({"Ipv4Packet",
                 [] {
                   wire::Ipv4Packet p;
                   p.hdr.src = 1;
                   p.hdr.dst = 2;
                   p.hdr.proto = wire::IpProto::udp;
                   p.src_port = 3;
                   p.dst_port = 4;
                   p.payload = rng().bytes(30);
                   return p.serialize();
                 },
                 [](ByteSpan d) { return wire::Ipv4Packet::parse(d).ok(); }});
  out.push_back({"GreApnaPacket",
                 [] {
                   wire::GreApnaPacket g;
                   g.outer.src = 1;
                   g.outer.dst = 2;
                   g.apna.src_aid = 3;
                   g.apna.dst_aid = 4;
                   g.apna.payload = rng().bytes(25);
                   return g.serialize();
                 },
                 [](ByteSpan d) {
                   return wire::GreApnaPacket::parse(d).ok();
                 }});
  return out;
}

TEST(Robustness, WellFormedInputsParse) {
  for (const auto& f : formats()) {
    const Bytes wire_bytes = f.make();
    EXPECT_TRUE(f.parses(wire_bytes)) << f.name;
  }
}

TEST(Robustness, EveryTruncationHandledWithoutCrash) {
  for (const auto& f : formats()) {
    const Bytes wire_bytes = f.make();
    for (std::size_t len = 0; len < wire_bytes.size(); ++len) {
      // Must return (not crash); truncations of fixed-layout formats must
      // not parse. (Some variable formats tolerate truncation that lands
      // on a field boundary; we only demand memory safety + a decision.)
      (void)f.parses(ByteSpan(wire_bytes.data(), len));
    }
    // The empty input never parses.
    EXPECT_FALSE(f.parses({})) << f.name;
  }
}

TEST(Robustness, RandomCorruptionNeverCrashes) {
  for (const auto& f : formats()) {
    Bytes wire_bytes = f.make();
    for (int trial = 0; trial < 200; ++trial) {
      Bytes bad = wire_bytes;
      const std::size_t flips = 1 + rng().uniform(5);
      for (std::size_t i = 0; i < flips; ++i)
        bad[rng().uniform(bad.size())] ^=
            static_cast<std::uint8_t>(1 + rng().uniform(255));
      (void)f.parses(bad);  // decision without UB is the requirement
    }
  }
}

TEST(Robustness, RandomGarbageNeverCrashes) {
  for (const auto& f : formats()) {
    for (int trial = 0; trial < 100; ++trial) {
      const Bytes garbage = rng().bytes(rng().uniform(512));
      (void)f.parses(garbage);
    }
  }
}

TEST(Robustness, LengthFieldLiesRejected) {
  // A Packet whose payload-length field claims more than is present.
  wire::Packet p;
  p.src_aid = 1;
  p.dst_aid = 2;
  p.payload = rng().bytes(40);
  Bytes wire_bytes = p.serialize();
  store_be16(wire_bytes.data() + 50, 2000);  // length field in the extension
  EXPECT_FALSE(wire::Packet::parse(wire_bytes).ok());
  store_be16(wire_bytes.data() + 50, 10);  // shorter than actual → trailing
  EXPECT_FALSE(wire::Packet::parse(wire_bytes).ok());
}

}  // namespace
}  // namespace apna

// Service tests: Registry Service (Fig 2), Management Service (Fig 3) and
// the Accountability Agent (Fig 5), at the unit level (no simulated
// network; the integration tests cover wiring; the DNS service lives in
// dns_test.cpp since the resolver rewrite).
#include <gtest/gtest.h>

#include "core/packet_auth.h"
#include "crypto/x25519.h"
#include "services/accountability_agent.h"
#include "services/management_service.h"
#include "services/registry_service.h"
#include "services/service_identity.h"
#include "services/subscriber_registry.h"
#include "util/hex.h"

namespace apna::services {
namespace {

struct AsFixture {
  crypto::ChaChaRng rng{2024};
  net::EventLoop loop;
  core::AsState as{64512, core::AsSecrets::generate(rng)};
  core::AsDirectory dir;
  SubscriberRegistry subs;
  RegistryService rs{as, subs, loop, rng};
  ServiceIdentity aa_ident = make_service_identity(
      as, rs.allocate_hid(), loop.now_seconds() + 86400, 0, nullptr, rng);
  ServiceIdentity ms_ident = make_service_identity(
      as, rs.allocate_hid(), loop.now_seconds() + 86400, 0,
      &aa_ident.cert.ephid, rng);
  ServiceIdentity dns_ident = make_service_identity(
      as, rs.allocate_hid(), loop.now_seconds() + 86400, 0,
      &aa_ident.cert.ephid, rng);
  ManagementService ms{as, loop, rng, ms_ident};
  AccountabilityAgent aa{as, dir, loop, aa_ident};

  AsFixture() {
    rs.set_service_info(ms_ident.cert, dns_ident.cert, aa_ident.cert.ephid);
    core::AsPublicInfo info;
    info.aid = as.aid;
    info.sign_pub = as.secrets.sign.pub;
    info.dh_pub = as.secrets.dh.pub;
    info.aa_ephid = aa_ident.cert.ephid;
    dir.register_as(info);
    subs.add_subscriber(1, to_bytes("password-1"));
    subs.add_subscriber(2, to_bytes("password-2"));
  }

  /// A bootstrapped "host" driven manually (the Host class has its own
  /// tests; here we poke the services directly).
  struct ManualHost {
    core::Hid hid;
    core::EphId ctrl;
    core::HostAsKeys keys;
    crypto::X25519KeyPair lt;
  };

  Result<ManualHost> bootstrap(std::uint32_t subscriber,
                               const std::string& password) {
    ManualHost h;
    h.lt = crypto::X25519KeyPair::generate(rng);
    core::BootstrapRequest req;
    req.subscriber_id = subscriber;
    req.credential = to_bytes(password);
    req.host_pub = h.lt.pub;
    auto resp = rs.bootstrap(req);
    if (!resp) return resp.error();
    h.hid = resp->hid;
    h.ctrl = resp->ctrl_ephid;
    h.keys = core::HostAsKeys::derive(
        crypto::x25519_shared(h.lt.priv, as.secrets.dh.pub));
    return h;
  }
};

// ---- Registry Service (Fig 2) ---------------------------------------------------

TEST(RegistryService, BootstrapHappyPath) {
  AsFixture f;
  auto h = f.bootstrap(1, "password-1");
  ASSERT_TRUE(h.ok());
  // host_info updated with the host's record.
  EXPECT_TRUE(f.as.host_db.contains(h->hid));
  // Control EphID decodes to the HID with a long lifetime (§IV-B).
  auto plain = f.as.codec.open(h->ctrl);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->hid, h->hid);
  EXPECT_GE(plain->exp_time, f.loop.now_seconds() + 3600);
  // Both sides derive the same kHA.
  const auto host_record = f.as.host_db.find(h->hid);
  EXPECT_EQ(hex_encode(host_record->keys.mac), hex_encode(h->keys.mac));
  EXPECT_EQ(hex_encode(host_record->keys.enc), hex_encode(h->keys.enc));
}

TEST(RegistryService, BadCredentialRejected) {
  AsFixture f;
  EXPECT_EQ(f.bootstrap(1, "wrong").code(), Errc::unauthorized);
  EXPECT_EQ(f.bootstrap(999, "password-1").code(), Errc::unauthorized);
  EXPECT_EQ(f.rs.stats().rejected_auth, 2u);
}

TEST(RegistryService, SignedIdInfoVerifies) {
  AsFixture f;
  core::BootstrapRequest req;
  req.subscriber_id = 1;
  req.credential = to_bytes("password-1");
  req.host_pub = crypto::X25519KeyPair::generate(f.rng).pub;
  auto resp = f.rs.bootstrap(req);
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(crypto::ed25519_verify(f.as.secrets.sign.pub,
                                     resp->id_info_tbs(), resp->id_info_sig));
  EXPECT_TRUE(resp->ms_cert.verify(f.as.secrets.sign.pub,
                                   f.loop.now_seconds()).ok());
  EXPECT_TRUE(resp->dns_cert.verify(f.as.secrets.sign.pub,
                                    f.loop.now_seconds()).ok());
}

TEST(RegistryService, RebootstrapRevokesOldHid) {
  // Identity-minting defence (§VI-A): "if a host requests a new HID, the
  // previous HID and all associated EphIDs are revoked".
  AsFixture f;
  auto h1 = f.bootstrap(1, "password-1");
  ASSERT_TRUE(h1.ok());
  auto h2 = f.bootstrap(1, "password-1");
  ASSERT_TRUE(h2.ok());
  EXPECT_NE(h1->hid, h2->hid);
  EXPECT_FALSE(f.as.host_db.contains(h1->hid));
  EXPECT_TRUE(f.as.revoked.is_hid_revoked(h1->hid));
  EXPECT_TRUE(f.as.host_db.contains(h2->hid));
  EXPECT_EQ(f.rs.stats().hid_rotations, 1u);
}

// ---- Management Service (Fig 3) ----------------------------------------------------

Bytes make_request(AsFixture::ManualHost& h, crypto::Rng& rng,
                   std::uint64_t nonce,
                   core::EphIdLifetime lt = core::EphIdLifetime::short_term,
                   std::uint8_t flags = 0,
                   core::EphIdKeyPair* kp_out = nullptr) {
  auto kp = core::EphIdKeyPair::generate(rng);
  if (kp_out) *kp_out = kp;
  core::EphIdRequest req;
  req.ephid_pub = kp.pub;
  req.flags = flags;
  req.lifetime = lt;
  req.pop_sig = kp.sign(req.pop_tbs());
  return core::seal_control(h.keys, nonce, true, req.serialize());
}

TEST(ManagementService, IssuesValidCertificate) {
  AsFixture f;
  auto h = f.bootstrap(1, "password-1");
  ASSERT_TRUE(h.ok());
  core::EphIdKeyPair kp;
  const Bytes sealed = make_request(*h, f.rng, 1,
                                    core::EphIdLifetime::short_term, 0, &kp);
  auto resp = f.ms.issue_sealed(h->ctrl, sealed, f.loop.now_seconds(), f.rng);
  ASSERT_TRUE(resp.ok());

  auto opened = core::open_control(h->keys, false, *resp);
  ASSERT_TRUE(opened.ok());
  auto parsed = core::EphIdResponse::parse(*opened);
  ASSERT_TRUE(parsed.ok());
  const auto& cert = parsed->cert;
  EXPECT_TRUE(cert.verify(f.as.secrets.sign.pub, f.loop.now_seconds()).ok());
  EXPECT_EQ(cert.pub, kp.pub);
  EXPECT_EQ(cert.aid, f.as.aid);
  EXPECT_EQ(cert.aa_ephid, f.aa_ident.cert.ephid);
  // The EphID inside decodes to the host's HID (accountability binding).
  auto plain = f.as.codec.open(cert.ephid);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->hid, h->hid);
  EXPECT_EQ(plain->exp_time, cert.exp_time);
  EXPECT_EQ(f.ms.stats().issued, 1u);
}

TEST(ManagementService, LifetimeClassesHonored) {
  AsFixture f;
  auto h = f.bootstrap(1, "password-1");
  ASSERT_TRUE(h.ok());
  const core::ExpTime now = f.loop.now_seconds();
  std::uint64_t nonce = 1;
  for (auto [lt, expect_s] :
       std::vector<std::pair<core::EphIdLifetime, core::ExpTime>>{
           {core::EphIdLifetime::short_term, 900},
           {core::EphIdLifetime::medium_term, 7200},
           {core::EphIdLifetime::long_term, 86400}}) {
    const Bytes sealed = make_request(*h, f.rng, nonce++, lt);
    auto resp = f.ms.issue_sealed(h->ctrl, sealed, now, f.rng);
    ASSERT_TRUE(resp.ok());
    auto opened = core::open_control(h->keys, false, *resp);
    auto parsed = core::EphIdResponse::parse(*opened);
    EXPECT_EQ(parsed->cert.exp_time, now + expect_s);
  }
}

TEST(ManagementService, ReceiveOnlyFlagPropagates) {
  AsFixture f;
  auto h = f.bootstrap(1, "password-1");
  const Bytes sealed = make_request(*h, f.rng, 1,
                                    core::EphIdLifetime::long_term,
                                    core::kRequestReceiveOnly);
  auto resp = f.ms.issue_sealed(h->ctrl, sealed, f.loop.now_seconds(), f.rng);
  ASSERT_TRUE(resp.ok());
  auto opened = core::open_control(h->keys, false, *resp);
  auto parsed = core::EphIdResponse::parse(*opened);
  EXPECT_TRUE(parsed->cert.receive_only());
}

TEST(ManagementService, BadProofOfPossessionRejected) {
  // A request whose PoP signature does not verify under the key being
  // certified must be refused: the MS would otherwise certify a public key
  // its sender cannot use (or one copied from someone else's request).
  AsFixture f;
  auto h = f.bootstrap(1, "password-1");
  ASSERT_TRUE(h.ok());
  auto kp = core::EphIdKeyPair::generate(f.rng);
  core::EphIdRequest req;
  req.ephid_pub = kp.pub;
  req.flags = 0;
  req.lifetime = core::EphIdLifetime::short_term;
  req.pop_sig = kp.sign(req.pop_tbs());
  req.pop_sig[3] ^= 0x10;  // corrupt the otherwise-valid signature
  const Bytes sealed =
      core::seal_control(h->keys, 1, true, req.serialize());
  EXPECT_EQ(
      f.ms.issue_sealed(h->ctrl, sealed, f.loop.now_seconds(), f.rng).code(),
      Errc::bad_signature);
  EXPECT_EQ(f.ms.stats().rejected_bad_pop, 1u);
  EXPECT_EQ(f.ms.stats().issued, 0u);
}

TEST(ManagementService, PopSignatureOverWrongKeyRejected) {
  // Signing with a DIFFERENT key than the one being certified (a stolen
  // public key with the thief's own signature) must also fail.
  AsFixture f;
  auto h = f.bootstrap(1, "password-1");
  ASSERT_TRUE(h.ok());
  auto victim = core::EphIdKeyPair::generate(f.rng);
  auto thief = core::EphIdKeyPair::generate(f.rng);
  core::EphIdRequest req;
  req.ephid_pub = victim.pub;  // certifying the victim's key...
  req.flags = 0;
  req.lifetime = core::EphIdLifetime::short_term;
  req.pop_sig = thief.sign(req.pop_tbs());  // ...with the thief's signature
  const Bytes sealed =
      core::seal_control(h->keys, 1, true, req.serialize());
  EXPECT_EQ(
      f.ms.issue_sealed(h->ctrl, sealed, f.loop.now_seconds(), f.rng).code(),
      Errc::bad_signature);
  EXPECT_EQ(f.ms.stats().rejected_bad_pop, 1u);
}

TEST(ManagementService, ExpiredControlEphIdRejected) {
  AsFixture f;
  auto h = f.bootstrap(1, "password-1");
  const Bytes sealed = make_request(*h, f.rng, 1);
  // Jump past the control EphID lifetime (24 h default).
  const core::ExpTime later = f.loop.now_seconds() + 25 * 3600;
  EXPECT_EQ(f.ms.issue_sealed(h->ctrl, sealed, later, f.rng).code(),
            Errc::expired);
  EXPECT_EQ(f.ms.stats().rejected_expired, 1u);
}

TEST(ManagementService, UnknownHostRejected) {
  AsFixture f;
  auto h = f.bootstrap(1, "password-1");
  const Bytes sealed = make_request(*h, f.rng, 1);
  f.as.host_db.erase(h->hid);
  EXPECT_EQ(f.ms.issue_sealed(h->ctrl, sealed, f.loop.now_seconds(),
                              f.rng).code(),
            Errc::unknown_host);
}

TEST(ManagementService, RevokedHidRejected) {
  AsFixture f;
  auto h = f.bootstrap(1, "password-1");
  f.as.revoked.revoke_hid(h->hid);
  const Bytes sealed = make_request(*h, f.rng, 1);
  EXPECT_EQ(f.ms.issue_sealed(h->ctrl, sealed, f.loop.now_seconds(),
                              f.rng).code(),
            Errc::revoked);
}

TEST(ManagementService, GarbledRequestRejected) {
  AsFixture f;
  auto h = f.bootstrap(1, "password-1");
  Bytes sealed = make_request(*h, f.rng, 1);
  sealed[sealed.size() / 2] ^= 1;
  EXPECT_EQ(f.ms.issue_sealed(h->ctrl, sealed, f.loop.now_seconds(),
                              f.rng).code(),
            Errc::decrypt_failed);
  // A request sealed under another host's key also fails.
  auto h2 = f.bootstrap(2, "password-2");
  const Bytes sealed2 = make_request(*h2, f.rng, 1);
  EXPECT_FALSE(f.ms.issue_sealed(h->ctrl, sealed2, f.loop.now_seconds(),
                                 f.rng).ok());
}

TEST(ManagementService, ForeignEphIdAsControlRejected) {
  AsFixture f;
  auto h = f.bootstrap(1, "password-1");
  const Bytes sealed = make_request(*h, f.rng, 1);
  core::EphId forged;
  f.rng.fill(MutByteSpan(forged.bytes.data(), 16));
  EXPECT_EQ(f.ms.issue_sealed(forged, sealed, f.loop.now_seconds(),
                              f.rng).code(),
            Errc::decrypt_failed);
}

// ---- Accountability Agent (Fig 5) -----------------------------------------------------

struct ShutoffFixture : AsFixture {
  // A second AS hosting the victim (requester).
  crypto::ChaChaRng rng_b{2025};
  core::AsState as_b{64513, core::AsSecrets::generate(rng_b)};

  ManualHost attacker;          // customer of as (the AA's AS)
  core::EphIdKeyPair victim_kp; // victim in as_b
  core::EphIdCertificate victim_cert;
  core::EphIdKeyPair attacker_kp;
  core::EphIdCertificate attacker_cert;

  ShutoffFixture() {
    core::AsPublicInfo info_b;
    info_b.aid = as_b.aid;
    info_b.sign_pub = as_b.secrets.sign.pub;
    info_b.dh_pub = as_b.secrets.dh.pub;
    dir.register_as(info_b);

    auto a = bootstrap(1, "password-1");
    attacker = *a;

    victim_kp = core::EphIdKeyPair::generate(rng_b);
    victim_cert.ephid = as_b.codec.issue(77, loop.now_seconds() + 900, rng_b);
    victim_cert.exp_time = loop.now_seconds() + 900;
    victim_cert.pub = victim_kp.pub;
    victim_cert.aid = as_b.aid;
    victim_cert.aa_ephid = as_b.codec.issue(1, loop.now_seconds() + 900, rng_b);
    victim_cert.sign_with(as_b.secrets.sign);

    attacker_kp = core::EphIdKeyPair::generate(rng);
    attacker_cert.ephid =
        as.codec.issue(attacker.hid, loop.now_seconds() + 900, rng);
    attacker_cert.exp_time = loop.now_seconds() + 900;
    attacker_cert.pub = attacker_kp.pub;
    attacker_cert.aid = as.aid;
    attacker_cert.aa_ephid = aa_ident.cert.ephid;
    attacker_cert.sign_with(as.secrets.sign);
  }

  /// A packet the attacker host genuinely sent to the victim.
  wire::Packet offending_packet() {
    wire::Packet pkt;
    pkt.src_aid = as.aid;
    pkt.src_ephid = attacker_cert.ephid.bytes;
    pkt.dst_aid = as_b.aid;
    pkt.dst_ephid = victim_cert.ephid.bytes;
    pkt.proto = wire::NextProto::data;
    pkt.payload = to_bytes("flood");
    core::stamp_packet_mac(crypto::AesCmac(ByteSpan(attacker.keys.mac.data(),
                                                    16)),
                           pkt);
    return pkt;
  }

  core::ShutoffRequest valid_request() {
    core::ShutoffRequest req;
    req.offending_packet = offending_packet().serialize();
    req.sig = victim_kp.sign(req.offending_packet);
    req.dst_cert = victim_cert;
    return req;
  }
};

TEST(AccountabilityAgent, ValidShutoffRevokesEphId) {
  ShutoffFixture f;
  const auto req = f.valid_request();
  ASSERT_TRUE(f.aa.process(req, f.loop.now_seconds()).ok());
  EXPECT_TRUE(f.as.revoked.is_revoked(f.attacker_cert.ephid));
  EXPECT_EQ(f.aa.stats().accepted, 1u);
  EXPECT_EQ(f.aa.stats().revocation_instructions, 1u);
  // Other EphIDs of the host survive (fate-sharing is per EphID, §III-B).
  const auto other =
      f.as.codec.issue(f.attacker.hid, f.loop.now_seconds() + 900, f.rng);
  EXPECT_FALSE(f.as.revoked.is_revoked(other));
}

TEST(AccountabilityAgent, RoguePacketRejected) {
  // "the destination cannot make a shutoff request with a rogue packet" —
  // a packet the attacker never sent fails the kHA MAC check.
  ShutoffFixture f;
  auto req = f.valid_request();
  auto pkt = wire::Packet::parse(req.offending_packet).take();
  pkt.payload = to_bytes("forged content");  // MAC now wrong
  req.offending_packet = pkt.serialize();
  req.sig = f.victim_kp.sign(req.offending_packet);
  EXPECT_EQ(f.aa.process(req, f.loop.now_seconds()).code(), Errc::bad_mac);
  EXPECT_FALSE(f.as.revoked.is_revoked(f.attacker_cert.ephid));
  EXPECT_EQ(f.aa.stats().rejected_bad_mac, 1u);
}

TEST(AccountabilityAgent, NonRecipientUnauthorized) {
  // Only the packet's recipient may request a shutoff (§VI-C).
  ShutoffFixture f;
  // A bystander in AS B with their own valid cert tries to shut off.
  core::EphIdKeyPair bystander_kp = core::EphIdKeyPair::generate(f.rng_b);
  core::EphIdCertificate bystander_cert = f.victim_cert;
  bystander_cert.ephid =
      f.as_b.codec.issue(78, f.loop.now_seconds() + 900, f.rng_b);
  bystander_cert.pub = bystander_kp.pub;
  bystander_cert.sign_with(f.as_b.secrets.sign);

  core::ShutoffRequest req;
  req.offending_packet = f.offending_packet().serialize();
  req.sig = bystander_kp.sign(req.offending_packet);
  req.dst_cert = bystander_cert;
  EXPECT_EQ(f.aa.process(req, f.loop.now_seconds()).code(),
            Errc::unauthorized);
  EXPECT_FALSE(f.as.revoked.is_revoked(f.attacker_cert.ephid));
}

TEST(AccountabilityAgent, StolenCertWithoutKeyRejected) {
  // Requester presents the victim's cert but cannot sign with its key.
  ShutoffFixture f;
  auto req = f.valid_request();
  core::EphIdKeyPair wrong = core::EphIdKeyPair::generate(f.rng);
  req.sig = wrong.sign(req.offending_packet);
  EXPECT_EQ(f.aa.process(req, f.loop.now_seconds()).code(),
            Errc::bad_signature);
}

TEST(AccountabilityAgent, UnknownRequesterAsRejected) {
  ShutoffFixture f;
  auto req = f.valid_request();
  req.dst_cert.aid = 59999;  // not in the directory
  req.dst_cert.sign_with(f.as_b.secrets.sign);
  // (Signature over the modified cert is fine; the AS is simply unknown.)
  auto pkt = wire::Packet::parse(req.offending_packet).take();
  pkt.dst_aid = 59999;
  core::stamp_packet_mac(
      crypto::AesCmac(ByteSpan(f.attacker.keys.mac.data(), 16)), pkt);
  req.offending_packet = pkt.serialize();
  req.sig = f.victim_kp.sign(req.offending_packet);
  EXPECT_EQ(f.aa.process(req, f.loop.now_seconds()).code(),
            Errc::bad_certificate);
}

TEST(AccountabilityAgent, ForeignSourceEphIdRejected) {
  // The offending packet's source is not a customer of this AS.
  ShutoffFixture f;
  auto pkt = f.offending_packet();
  pkt.src_ephid = f.victim_cert.ephid.bytes;  // an AS-B EphID
  core::ShutoffRequest req;
  req.offending_packet = pkt.serialize();
  req.sig = f.victim_kp.sign(req.offending_packet);
  req.dst_cert = f.victim_cert;
  EXPECT_EQ(f.aa.process(req, f.loop.now_seconds()).code(),
            Errc::decrypt_failed);
}

TEST(AccountabilityAgent, EscalatesAfterTooManyShutoffs) {
  // §VIII-G2: repeated shutoffs against one host revoke the HID itself.
  ShutoffFixture f;
  const std::uint32_t limit = 16;  // RevocationList default
  for (std::uint32_t i = 0; i < limit; ++i) {
    // Fresh EphID per incident (per-flow granularity).
    core::EphIdCertificate cert = f.attacker_cert;
    cert.ephid =
        f.as.codec.issue(f.attacker.hid, f.loop.now_seconds() + 900, f.rng);
    cert.sign_with(f.as.secrets.sign);
    wire::Packet pkt;
    pkt.src_aid = f.as.aid;
    pkt.src_ephid = cert.ephid.bytes;
    pkt.dst_aid = f.as_b.aid;
    pkt.dst_ephid = f.victim_cert.ephid.bytes;
    pkt.proto = wire::NextProto::data;
    pkt.payload = to_bytes("flood");
    core::stamp_packet_mac(
        crypto::AesCmac(ByteSpan(f.attacker.keys.mac.data(), 16)), pkt);
    core::ShutoffRequest req;
    req.offending_packet = pkt.serialize();
    req.sig = f.victim_kp.sign(req.offending_packet);
    req.dst_cert = f.victim_cert;
    ASSERT_TRUE(f.aa.process(req, f.loop.now_seconds()).ok()) << i;
  }
  EXPECT_EQ(f.aa.stats().hid_escalations, 1u);
  EXPECT_TRUE(f.as.revoked.is_hid_revoked(f.attacker.hid));
  EXPECT_FALSE(f.as.host_db.contains(f.attacker.hid));
}

}  // namespace
}  // namespace apna::services

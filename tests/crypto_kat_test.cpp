// Known-answer tests for the crypto layer against published RFC/NIST vectors.
//
// Sources:
//   SHA-256 / SHA-512 — FIPS 180-4 (NIST CAVP example messages)
//   HMAC-SHA256       — RFC 4231 test cases 1-4, 6, 7
//   ChaCha20/Poly1305 — RFC 8439 §2.3.2, §2.4.2, §2.5.2, §2.8.2
//   AES-128           — FIPS 197 Appendix B / C.1 (both backends)
//   AES-128-GCM       — NIST GCM spec (McGrew-Viega) test cases 1-4
//   X25519            — RFC 7748 §5.2 and §6.1
//   Ed25519           — RFC 8032 §7.1 tests 1-3
//
// These pin the implementations so backend swaps (e.g. AES-NI vs soft, future
// vectorized GHASH) can be validated against the exact same answers.

#include <array>
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "crypto/aes.h"
#include "crypto/chacha20.h"
#include "crypto/drbg.h"
#include "crypto/ed25519.h"
#include "crypto/gcm.h"
#include "crypto/hmac.h"
#include "crypto/sha2.h"
#include "crypto/x25519.h"
#include "util/bytes.h"
#include "util/hex.h"

namespace {

using apna::Bytes;
using apna::ByteSpan;
using apna::hex_encode;
using apna::must_hex;
using apna::to_bytes;

template <std::size_t N>
std::array<std::uint8_t, N> must_hex_array(std::string_view hex) {
  Bytes b = must_hex(hex);
  EXPECT_EQ(b.size(), N) << "bad vector literal: " << hex;
  std::array<std::uint8_t, N> out{};
  std::copy_n(b.begin(), std::min(b.size(), N), out.begin());
  return out;
}

// ---------------------------------------------------------------- SHA-256 --

struct ShaVector {
  std::string msg;
  const char* digest_hex;
};

TEST(Sha256Kat, Fips180_4) {
  const ShaVector vecs[] = {
      {"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"},
      {"abc",
       "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"},
      {"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
       "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"},
  };
  for (const auto& v : vecs) {
    auto d = apna::crypto::Sha256::hash(to_bytes(v.msg));
    EXPECT_EQ(hex_encode(d), v.digest_hex) << "msg=\"" << v.msg << '"';
  }
}

TEST(Sha256Kat, MillionA) {
  apna::crypto::Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(hex_encode(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Kat, IncrementalMatchesOneShot) {
  // Split points crossing the 64-byte block boundary.
  const Bytes msg = must_hex(std::string(130, 'a') /* 65 bytes */);
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    apna::crypto::Sha256 h;
    h.update(ByteSpan(msg.data(), split));
    h.update(ByteSpan(msg.data() + split, msg.size() - split));
    EXPECT_EQ(h.finish(), apna::crypto::Sha256::hash(msg)) << "split=" << split;
  }
}

TEST(Sha512Kat, Fips180_4) {
  EXPECT_EQ(hex_encode(apna::crypto::Sha512::hash(to_bytes("abc"))),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
            "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f");
  EXPECT_EQ(hex_encode(apna::crypto::Sha512::hash(to_bytes(""))),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce"
            "47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e");
}

// ------------------------------------------------------------ HMAC-SHA256 --

TEST(HmacSha256Kat, Rfc4231) {
  struct {
    Bytes key;
    Bytes data;
    const char* mac_hex;
  } vecs[] = {
      // Test Case 1
      {Bytes(20, 0x0b), to_bytes("Hi There"),
       "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"},
      // Test Case 2
      {to_bytes("Jefe"), to_bytes("what do ya want for nothing?"),
       "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"},
      // Test Case 3
      {Bytes(20, 0xaa), Bytes(50, 0xdd),
       "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"},
      // Test Case 4
      {must_hex("0102030405060708090a0b0c0d0e0f10111213141516171819"),
       Bytes(50, 0xcd),
       "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b"},
      // Test Case 6 (key larger than block size)
      {Bytes(131, 0xaa),
       to_bytes("Test Using Larger Than Block-Size Key - Hash Key First"),
       "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"},
      // Test Case 7 (key and data larger than block size)
      {Bytes(131, 0xaa),
       to_bytes("This is a test using a larger than block-size key and a "
                "larger than block-size data. The key needs to be hashed "
                "before being used by the HMAC algorithm."),
       "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"},
  };
  int i = 1;
  for (const auto& v : vecs) {
    EXPECT_EQ(hex_encode(apna::crypto::hmac_sha256(v.key, v.data)), v.mac_hex)
        << "RFC 4231 test case " << i;
    ++i;
    if (i == 5) ++i;  // case 5 is a truncated-output case; not applicable
  }
}

// --------------------------------------------------------------- ChaCha20 --

TEST(ChaCha20Kat, BlockFunctionRfc8439_232) {
  const auto key = must_hex_array<32>(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const auto nonce = must_hex_array<12>("000000090000004a00000000");
  std::uint8_t block[64];
  apna::crypto::chacha20_block(key.data(), 1, nonce.data(), block);
  EXPECT_EQ(hex_encode(ByteSpan(block, 64)),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(ChaCha20Kat, EncryptionRfc8439_242) {
  const auto key = must_hex_array<32>(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const auto nonce = must_hex_array<12>("000000000000004a00000000");
  const Bytes pt = to_bytes(
      "Ladies and Gentlemen of the class of '99: If I could offer you only "
      "one tip for the future, sunscreen would be it.");
  Bytes ct(pt.size());
  apna::crypto::chacha20_xcrypt(key.data(), 1, nonce.data(), pt, ct);
  EXPECT_EQ(hex_encode(ct),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
            "f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8"
            "07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736"
            "5af90bbf74a35be6b40b8eedf2785e42874d");
  // Round trip: XOR with the same keystream restores the plaintext.
  Bytes rt(ct.size());
  apna::crypto::chacha20_xcrypt(key.data(), 1, nonce.data(), ct, rt);
  EXPECT_EQ(rt, pt);
}

TEST(Poly1305Kat, Rfc8439_252) {
  const auto key = must_hex_array<32>(
      "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b");
  const Bytes msg = to_bytes("Cryptographic Forum Research Group");
  EXPECT_EQ(hex_encode(apna::crypto::poly1305(key.data(), msg)),
            "a8061dc1305136c6c22b8baf0c0127a9");
}

TEST(ChaCha20Poly1305Kat, AeadRfc8439_282) {
  const auto key = must_hex_array<32>(
      "808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f");
  const Bytes nonce = must_hex("070000004041424344454647");
  const Bytes aad = must_hex("50515253c0c1c2c3c4c5c6c7");
  const Bytes pt = to_bytes(
      "Ladies and Gentlemen of the class of '99: If I could offer you only "
      "one tip for the future, sunscreen would be it.");
  apna::crypto::ChaCha20Poly1305 aead(key);
  const Bytes sealed = aead.seal(nonce, aad, pt);
  EXPECT_EQ(hex_encode(sealed),
            "d31a8d34648e60db7b86afbc53ef7ec2a4aded51296e08fea9e2b5a736ee62d6"
            "3dbea45e8ca9671282fafb69da92728b1a71de0a9e060b2905d6a5b67ecd3b36"
            "92ddbd7f2d778b8c9803aee328091b58fab324e4fad675945585808b4831d7bc"
            "3ff4def08e4b7a9de576d26586cec64b6116"
            "1ae10b594f09e26a7e902ecbd0600691");
  auto opened = aead.open(nonce, aad, sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, pt);
  // Any tag bit flip must fail closed.
  Bytes tampered = sealed;
  tampered.back() ^= 0x01;
  EXPECT_FALSE(aead.open(nonce, aad, tampered).has_value());
}

// ---------------------------------------------------------------- AES-128 --

void expect_aes_ecb(apna::crypto::Aes128::Backend backend) {
  struct {
    const char* key;
    const char* pt;
    const char* ct;
  } vecs[] = {
      // FIPS 197 Appendix B
      {"2b7e151628aed2a6abf7158809cf4f3c", "3243f6a8885a308d313198a2e0370734",
       "3925841d02dc09fbdc118597196a0b32"},
      // FIPS 197 Appendix C.1
      {"000102030405060708090a0b0c0d0e0f", "00112233445566778899aabbccddeeff",
       "69c4e0d86a7b0430d8cdb78070b4c55a"},
  };
  for (const auto& v : vecs) {
    apna::crypto::Aes128 aes(must_hex(v.key), backend);
    const Bytes pt = must_hex(v.pt);
    std::uint8_t ct[16];
    aes.encrypt_block(pt.data(), ct);
    EXPECT_EQ(hex_encode(ByteSpan(ct, 16)), v.ct)
        << "backend=" << aes.backend();
  }
}

TEST(Aes128Kat, SoftBackendFips197) {
  expect_aes_ecb(apna::crypto::Aes128::Backend::soft);
}

TEST(Aes128Kat, AutoBackendFips197) {
  // Exercises AES-NI when the CPU has it; degrades to soft elsewhere, so the
  // suite is green on any host while still covering the NI path where it
  // matters.
  expect_aes_ecb(apna::crypto::Aes128::Backend::auto_detect);
}

TEST(Aes128Kat, BackendsAgreeOnBulkBlocks) {
  const Bytes key = must_hex("2b7e151628aed2a6abf7158809cf4f3c");
  apna::crypto::Aes128 soft(key, apna::crypto::Aes128::Backend::soft);
  apna::crypto::Aes128 autod(key, apna::crypto::Aes128::Backend::auto_detect);
  Bytes in(16 * 17);
  for (std::size_t i = 0; i < in.size(); ++i)
    in[i] = static_cast<std::uint8_t>(i * 131 + 7);
  Bytes a(in.size()), b(in.size());
  soft.encrypt_blocks(in.data(), a.data(), in.size() / 16);
  autod.encrypt_blocks(in.data(), b.data(), in.size() / 16);
  EXPECT_EQ(a, b);
  // auto_detect resolves to the widest CPU-supported tier (after the
  // APNA_CRYPTO_BACKEND cap); every compiled tier must agree with soft.
  using Backend = apna::crypto::Aes128::Backend;
  EXPECT_STREQ(autod.backend(),
               apna::crypto::Aes128::backend_name(
                   apna::crypto::Aes128::best_backend()));
  // best_backend() folds in both cpuid and the APNA_CRYPTO_BACKEND cap, so
  // this also holds under a forced-soft run (where best IS soft).
  EXPECT_EQ(autod.tier(), apna::crypto::Aes128::best_backend());
  if (apna::crypto::Aes128::best_backend() != Backend::soft) {
    EXPECT_NE(autod.tier(), Backend::soft);
  }
  for (Backend tier : {Backend::aesni, Backend::avx2, Backend::vaes_avx512}) {
    apna::crypto::Aes128 forced(key, tier);
    if (forced.tier() != tier) continue;  // CPU lacks it: downgraded, skip
    Bytes c(in.size());
    forced.encrypt_blocks(in.data(), c.data(), in.size() / 16);
    EXPECT_EQ(a, c) << "tier " << forced.backend();
  }
}

// ------------------------------------------------------------ AES-128-GCM --

TEST(AesGcmKat, NistTestCases) {
  struct {
    const char* key;
    const char* iv;
    const char* pt;
    const char* aad;
    const char* ct_and_tag;
  } vecs[] = {
      // GCM spec test case 1
      {"00000000000000000000000000000000", "000000000000000000000000", "", "",
       "58e2fccefa7e3061367f1d57a4e7455a"},
      // Test case 2
      {"00000000000000000000000000000000", "000000000000000000000000",
       "00000000000000000000000000000000", "",
       "0388dace60b6a392f328c2b971b2fe78ab6e47d42cec13bdf53a67b21257bddf"},
      // Test case 3
      {"feffe9928665731c6d6a8f9467308308", "cafebabefacedbaddecaf888",
       "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
       "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
       "",
       "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
       "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985"
       "4d5c2af327cd64a62cf35abd2ba6fab4"},
      // Test case 4 (with AAD, partial final block)
      {"feffe9928665731c6d6a8f9467308308", "cafebabefacedbaddecaf888",
       "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
       "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
       "feedfacedeadbeeffeedfacedeadbeefabaddad2",
       "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
       "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091"
       "5bc94fbc3221a5db94fae95ae7121a47"},
  };
  int i = 1;
  for (const auto& v : vecs) {
    apna::crypto::AesGcm gcm(must_hex(v.key));
    const Bytes iv = must_hex(v.iv);
    const Bytes pt = must_hex(v.pt);
    const Bytes aad = must_hex(v.aad);
    const Bytes sealed = gcm.seal(iv, aad, pt);
    EXPECT_EQ(hex_encode(sealed), v.ct_and_tag) << "GCM test case " << i;
    auto opened = gcm.open(iv, aad, sealed);
    ASSERT_TRUE(opened.has_value()) << "GCM test case " << i;
    EXPECT_EQ(*opened, pt) << "GCM test case " << i;
    ++i;
  }
}

// ----------------------------------------------------------------- X25519 --

TEST(X25519Kat, Rfc7748_52) {
  const auto scalar1 = must_hex_array<32>(
      "a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
  const auto point1 = must_hex_array<32>(
      "e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
  EXPECT_EQ(hex_encode(apna::crypto::x25519(scalar1, point1)),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552");

  const auto scalar2 = must_hex_array<32>(
      "4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
  const auto point2 = must_hex_array<32>(
      "e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
  EXPECT_EQ(hex_encode(apna::crypto::x25519(scalar2, point2)),
            "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957");
}

TEST(X25519Kat, Rfc7748_61_DiffieHellman) {
  const auto alice_priv = must_hex_array<32>(
      "77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
  const auto bob_priv = must_hex_array<32>(
      "5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");
  const auto alice_pub = apna::crypto::x25519_base(alice_priv);
  const auto bob_pub = apna::crypto::x25519_base(bob_priv);
  EXPECT_EQ(hex_encode(alice_pub),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a");
  EXPECT_EQ(hex_encode(bob_pub),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f");
  const auto k_alice = apna::crypto::x25519_shared(alice_priv, bob_pub);
  const auto k_bob = apna::crypto::x25519_shared(bob_priv, alice_pub);
  EXPECT_EQ(k_alice, k_bob);
  EXPECT_EQ(hex_encode(k_alice),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742");
}

// ---------------------------------------------------------------- Ed25519 --

TEST(Ed25519Kat, Rfc8032_71) {
  struct {
    const char* seed;
    const char* pub;
    const char* msg;
    const char* sig;
  } vecs[] = {
      // Test 1 (empty message)
      {"9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60",
       "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a", "",
       "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
       "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b"},
      // Test 2 (1 byte)
      {"4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb",
       "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c",
       "72",
       "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
       "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00"},
      // Test 3 (2 bytes)
      {"c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7",
       "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025",
       "af82",
       "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac"
       "18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a"},
  };
  int i = 1;
  for (const auto& v : vecs) {
    const auto seed = must_hex_array<32>(v.seed);
    const auto pub = apna::crypto::ed25519_public_key(seed);
    EXPECT_EQ(hex_encode(pub), v.pub) << "RFC 8032 test " << i;
    const Bytes msg = must_hex(v.msg);
    const auto sig = apna::crypto::ed25519_sign(seed, pub, msg);
    EXPECT_EQ(hex_encode(sig), v.sig) << "RFC 8032 test " << i;
    EXPECT_TRUE(apna::crypto::ed25519_verify(pub, msg, sig));
    // Flipping any of message, signature, or key must fail verification.
    auto bad_sig = sig;
    bad_sig[0] ^= 0x01;
    EXPECT_FALSE(apna::crypto::ed25519_verify(pub, msg, bad_sig));
    Bytes bad_msg = msg;
    bad_msg.push_back(0x00);
    EXPECT_FALSE(apna::crypto::ed25519_verify(pub, bad_msg, sig));
    ++i;
  }
}

// ------------------------------------------------------- HMAC-DRBG (SP 800-90A) --

// NIST CAVP HMAC_DRBG SHA-256 vector (no reseed, no personalization, count
// 0): instantiate, generate 1024 bits twice, compare the SECOND output.
TEST(HmacDrbgKat, NistCavpSha256NoReseed) {
  const Bytes entropy = must_hex(
      "ca851911349384bffe89de1cbdc46e6831e44d34a4fb935ee285dd14b71a7488");
  const Bytes nonce = must_hex("659ba96c601dc69fc902940805ec0ca8");
  apna::crypto::HmacDrbg drbg(entropy, nonce, {});
  std::array<std::uint8_t, 128> out{};
  ASSERT_TRUE(drbg.generate(out));
  ASSERT_TRUE(drbg.generate(out));
  EXPECT_EQ(
      hex_encode(out),
      "e528e9abf2dece54d47c7e75e5fe302149f817ea9fb4bee6f4199697d04d5b89"
      "d54fbb978a15b5c443c9ec21036d2460b6f73ebad0dc2aba6e624abf07745bc1"
      "07694bb7547bb0995f70de25d6b29e2d3011bb19d27676c07162c8b5ccde0668"
      "961df86803482cb37ed6d5c0bb8d50cf1f50d476aa0458bdaba806f48be9dcb8");
}

// fips140-shaped known answers (drbg_nopr_hmac_sha256 shapes), pinned from
// an independent SP 800-90A reference implementation: instantiate with
// entropy+nonce+personalization, then (1) plain generate x2, (2) reseed
// with additional input before generating, (3) additional input on both
// generate calls. The vector is always the SECOND generate output.
TEST(HmacDrbgKat, Fips140InstantiateGenerateShapes) {
  const Bytes entropy = must_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const Bytes nonce = must_hex("202122232425262728292a2b2c2d2e2f");
  const Bytes pers = to_bytes("apna-fips140-kat");
  std::array<std::uint8_t, 64> out{};

  {
    apna::crypto::HmacDrbg drbg(entropy, nonce, pers);
    ASSERT_TRUE(drbg.generate(out));
    ASSERT_TRUE(drbg.generate(out));
    EXPECT_EQ(
        hex_encode(out),
        "4591c5022d4917ff082f3f4f55324aa397b4708bfb72fb72fff6282f3a6dd62d"
        "25bf81c9dc646f3bf495e317f2a14096faa71df6bdd73cb5ba221a925f7959ac");
  }
  {
    apna::crypto::HmacDrbg drbg(entropy, nonce, pers);
    drbg.reseed(must_hex("404142434445464748494a4b4c4d4e4f"
                         "505152535455565758595a5b5c5d5e5f"),
                to_bytes("additional-input"));
    ASSERT_TRUE(drbg.generate(out));
    ASSERT_TRUE(drbg.generate(out));
    EXPECT_EQ(
        hex_encode(out),
        "7cd6601df690817ef69d5c841e48a7e15ca7e95e5e469b9967b0a0e7832269ca"
        "1a49f8ffd02296c3a8f018b3e3339d71d8f6a25ea99598c96134b54401dbf0ac");
  }
  {
    apna::crypto::HmacDrbg drbg(entropy, nonce, pers);
    ASSERT_TRUE(drbg.generate(out, to_bytes("add-1")));
    ASSERT_TRUE(drbg.generate(out, to_bytes("add-2")));
    EXPECT_EQ(
        hex_encode(out),
        "6821bdb9c4ab20708942ef43a834b5290c6de6682eaea6f2b5fa8259ab34fd24"
        "ea93f567478315c52e934d9b6fa49a6484c1b7091c3e9882dcc2ceb3a54d2715");
  }
}

// The (seed, stream) pool ctor is LE64(seed) ‖ LE64(stream) entropy with
// personalization "apna-pool" — pinned so ServicePool per-request outputs
// can never silently change seed derivation.
TEST(HmacDrbgKat, PoolCtorPinnedAndStreamSeparated) {
  apna::crypto::HmacDrbg drbg(0x5eedc0de, 7);
  std::array<std::uint8_t, 32> out{};
  ASSERT_TRUE(drbg.generate(out));
  EXPECT_EQ(
      hex_encode(out),
      "95018ca0497d9b18932e4d38e50c86f28f2608974c8db394c830c31ec1e5ee70");

  // Same (seed, stream) → identical; different stream → disjoint output.
  apna::crypto::HmacDrbg again(0x5eedc0de, 7);
  apna::crypto::HmacDrbg other(0x5eedc0de, 8);
  std::array<std::uint8_t, 32> b{}, c{};
  ASSERT_TRUE(again.generate(b));
  ASSERT_TRUE(other.generate(c));
  EXPECT_EQ(hex_encode(b), hex_encode(out));
  EXPECT_NE(hex_encode(c), hex_encode(out));
}

TEST(HmacDrbgKat, ReseedIntervalEnforcedAndFillStirs) {
  const Bytes entropy = must_hex("00112233445566778899aabbccddeeff");
  apna::crypto::HmacDrbg drbg(entropy, {}, {}, /*reseed_interval=*/3);
  std::array<std::uint8_t, 16> out{};
  EXPECT_EQ(drbg.reseed_counter(), 1u);
  ASSERT_TRUE(drbg.generate(out));
  ASSERT_TRUE(drbg.generate(out));
  ASSERT_TRUE(drbg.generate(out));
  // Interval exhausted: generate refuses until a reseed.
  EXPECT_TRUE(drbg.needs_reseed());
  EXPECT_FALSE(drbg.generate(out));
  drbg.reseed(entropy);
  EXPECT_EQ(drbg.reseed_counter(), 1u);
  ASSERT_TRUE(drbg.generate(out));

  // fill() must never fail (Rng contract): past the interval it performs a
  // deterministic entropy-free state-stir. Two same-seeded instances stay
  // in lockstep through the stir.
  apna::crypto::HmacDrbg a(entropy, {}, {}, 2), b2(entropy, {}, {}, 2);
  std::array<std::uint8_t, 16> av{}, bv{};
  for (int i = 0; i < 6; ++i) {
    a.fill(av);
    b2.fill(bv);
    EXPECT_EQ(hex_encode(av), hex_encode(bv)) << "draw " << i;
  }
}

}  // namespace

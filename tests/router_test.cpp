// Border-router tests: every abort arm of the Fig 4 pipelines, transit
// behaviour, MTU/ICMP feedback, and the baseline mode.
#include <gtest/gtest.h>

#include "core/packet_auth.h"
#include "router/border_router.h"
#include "router/forwarding_pool.h"

namespace apna::router {
namespace {

struct BrFixture {
  crypto::ChaChaRng rng{31337};
  core::AsState as{64512, core::AsSecrets::generate(rng)};
  core::ExpTime now = 1'700'000'000;

  // Captured forwarding actions (owned copies of what the BR moved out).
  std::vector<wire::PacketBuf> external;
  std::vector<std::pair<core::Hid, wire::PacketBuf>> internal;
  bool external_fails = false;

  std::unique_ptr<BorderRouter> br;

  core::Hid host_hid = 7;
  core::HostAsKeys host_keys;

  BrFixture() {
    crypto::SharedSecret seed{};
    rng.fill(MutByteSpan(seed.data(), 32));
    host_keys = core::HostAsKeys::derive(seed);
    core::HostRecord rec;
    rec.hid = host_hid;
    rec.keys = host_keys;
    as.host_db.upsert(rec);

    BorderRouter::Callbacks cb;
    cb.send_external = [this](wire::PacketBuf p) -> Result<void> {
      if (external_fails) return Result<void>(Errc::no_route, "injected");
      external.push_back(std::move(p));
      return Result<void>::success();
    };
    cb.deliver_internal = [this](core::Hid hid,
                                 wire::PacketBuf p) -> Result<void> {
      internal.emplace_back(hid, std::move(p));
      return Result<void>::success();
    };
    cb.now = [this] { return now; };
    br = std::make_unique<BorderRouter>(as, std::move(cb));
  }

  core::EphId make_ephid(core::Hid hid, core::ExpTime exp) {
    return as.codec.issue(hid, exp, rng);
  }

  wire::Packet outgoing_packet(const core::EphId& src) {
    wire::Packet pkt;
    pkt.src_aid = as.aid;
    pkt.src_ephid = src.bytes;
    pkt.dst_aid = 64513;
    rng.fill(MutByteSpan(pkt.dst_ephid.data(), 16));
    pkt.proto = wire::NextProto::data;
    pkt.payload = rng.bytes(100);
    core::stamp_packet_mac(crypto::AesCmac(ByteSpan(host_keys.mac.data(), 16)),
                           pkt);
    return pkt;
  }

  wire::Packet incoming_packet(const core::EphId& dst) {
    wire::Packet pkt;
    pkt.src_aid = 64513;
    rng.fill(MutByteSpan(pkt.src_ephid.data(), 16));
    pkt.dst_aid = as.aid;
    pkt.dst_ephid = dst.bytes;
    pkt.proto = wire::NextProto::data;
    pkt.payload = rng.bytes(100);
    return pkt;
  }
};

// ---- Outgoing pipeline (Fig 4 bottom) ------------------------------------------

TEST(BorderRouterOut, ValidPacketForwarded) {
  BrFixture f;
  const auto src = f.make_ephid(f.host_hid, f.now + 900);
  f.br->on_outgoing(f.outgoing_packet(src).seal());
  EXPECT_EQ(f.br->stats().forwarded_out, 1u);
  EXPECT_EQ(f.external.size(), 1u);
  EXPECT_EQ(f.br->stats().total_drops(), 0u);
}

TEST(BorderRouterOut, ExpiredSourceEphIdDropped) {
  BrFixture f;
  const auto src = f.make_ephid(f.host_hid, f.now - 1);
  f.br->on_outgoing(f.outgoing_packet(src).seal());
  EXPECT_EQ(f.br->stats().drop_expired, 1u);
  EXPECT_TRUE(f.external.empty());
}

TEST(BorderRouterOut, RevokedEphIdDropped) {
  BrFixture f;
  const auto src = f.make_ephid(f.host_hid, f.now + 900);
  f.as.revoked.revoke_ephid(src, f.now + 900, f.host_hid);
  f.br->on_outgoing(f.outgoing_packet(src).seal());
  EXPECT_EQ(f.br->stats().drop_revoked, 1u);
}

TEST(BorderRouterOut, RevokedHidDropped) {
  BrFixture f;
  const auto src = f.make_ephid(f.host_hid, f.now + 900);
  f.as.revoked.revoke_hid(f.host_hid);
  f.br->on_outgoing(f.outgoing_packet(src).seal());
  EXPECT_EQ(f.br->stats().drop_revoked, 1u);
}

TEST(BorderRouterOut, UnknownHidDropped) {
  BrFixture f;
  const auto src = f.make_ephid(999, f.now + 900);  // HID not in host_info
  auto pkt = f.outgoing_packet(src);
  f.br->on_outgoing(pkt.seal());
  EXPECT_EQ(f.br->stats().drop_unknown_host, 1u);
}

TEST(BorderRouterOut, BadMacDropped) {
  // EphID spoofing (§VI-A): valid EphID but no kHA → MAC fails.
  BrFixture f;
  const auto src = f.make_ephid(f.host_hid, f.now + 900);
  auto pkt = f.outgoing_packet(src);
  pkt.mac[0] ^= 1;
  f.br->on_outgoing(pkt.seal());
  EXPECT_EQ(f.br->stats().drop_bad_mac, 1u);

  // Also: MAC computed with a DIFFERENT host's key.
  crypto::SharedSecret other_seed{};
  f.rng.fill(MutByteSpan(other_seed.data(), 32));
  const auto other_keys = core::HostAsKeys::derive(other_seed);
  auto pkt2 = f.outgoing_packet(src);
  core::stamp_packet_mac(crypto::AesCmac(ByteSpan(other_keys.mac.data(), 16)),
                         pkt2);
  f.br->on_outgoing(pkt2.seal());
  EXPECT_EQ(f.br->stats().drop_bad_mac, 2u);
}

TEST(BorderRouterOut, ForgedEphIdDropped) {
  BrFixture f;
  core::EphId forged;
  f.rng.fill(MutByteSpan(forged.bytes.data(), 16));
  f.br->on_outgoing(f.outgoing_packet(forged).seal());
  EXPECT_EQ(f.br->stats().drop_bad_ephid, 1u);
}

TEST(BorderRouterOut, PayloadTamperAfterMacDropped) {
  BrFixture f;
  const auto src = f.make_ephid(f.host_hid, f.now + 900);
  auto pkt = f.outgoing_packet(src);
  pkt.payload[5] ^= 1;  // on-path modification inside the AS
  f.br->on_outgoing(pkt.seal());
  EXPECT_EQ(f.br->stats().drop_bad_mac, 1u);
}

TEST(BorderRouterOut, OversizedPacketGetsPacketTooBig) {
  BrFixture f;
  BorderRouter::Config cfg;
  cfg.mtu = 256;
  BorderRouter::Callbacks cb;
  std::vector<wire::PacketBuf> external;
  std::vector<std::pair<core::Hid, wire::PacketBuf>> internal;
  cb.send_external = [&](wire::PacketBuf p) -> Result<void> {
    external.push_back(std::move(p));
    return Result<void>::success();
  };
  cb.deliver_internal = [&](core::Hid h, wire::PacketBuf p) -> Result<void> {
    internal.emplace_back(h, std::move(p));
    return Result<void>::success();
  };
  cb.now = [&] { return f.now; };
  BorderRouter br(f.as, std::move(cb), cfg);

  // Router identity so it can emit ICMP.
  RouterIdentity rid;
  rid.aid = f.as.aid;
  rid.ephid = f.make_ephid(99, f.now + 900);
  crypto::SharedSecret s{};
  f.rng.fill(MutByteSpan(s.data(), 32));
  rid.mac_key = core::HostAsKeys::derive(s).mac;
  br.set_identity(rid);

  const auto src = f.make_ephid(f.host_hid, f.now + 900);
  auto pkt = f.outgoing_packet(src);
  pkt.payload = f.rng.bytes(500);  // exceed MTU 256
  core::stamp_packet_mac(
      crypto::AesCmac(ByteSpan(f.host_keys.mac.data(), 16)), pkt);
  br.on_outgoing(pkt.seal());
  EXPECT_EQ(br.stats().drop_too_big, 1u);
  EXPECT_EQ(br.stats().icmp_sent, 1u);
  // Feedback went back into the local AS toward the source host.
  ASSERT_EQ(internal.size(), 1u);
  EXPECT_EQ(internal[0].first, f.host_hid);
  auto icmp = core::IcmpMessage::parse(internal[0].second.view().payload());
  ASSERT_TRUE(icmp.ok());
  EXPECT_EQ(icmp->type, core::IcmpType::packet_too_big);
  EXPECT_EQ(icmp->code, 256u);
}

// ---- Incoming pipeline (Fig 4 top) ------------------------------------------------

TEST(BorderRouterIn, ValidPacketDelivered) {
  BrFixture f;
  const auto dst = f.make_ephid(f.host_hid, f.now + 900);
  f.br->on_ingress(f.incoming_packet(dst).seal());
  EXPECT_EQ(f.br->stats().delivered_in, 1u);
  ASSERT_EQ(f.internal.size(), 1u);
  EXPECT_EQ(f.internal[0].first, f.host_hid);
}

TEST(BorderRouterIn, ExpiredDstDropped) {
  BrFixture f;
  const auto dst = f.make_ephid(f.host_hid, f.now - 10);
  f.br->on_ingress(f.incoming_packet(dst).seal());
  EXPECT_EQ(f.br->stats().drop_expired, 1u);
  EXPECT_TRUE(f.internal.empty());
}

TEST(BorderRouterIn, RevokedDstDropped) {
  BrFixture f;
  const auto dst = f.make_ephid(f.host_hid, f.now + 900);
  f.as.revoked.revoke_ephid(dst, f.now + 900, f.host_hid);
  f.br->on_ingress(f.incoming_packet(dst).seal());
  EXPECT_EQ(f.br->stats().drop_revoked, 1u);
}

TEST(BorderRouterIn, UnknownDstHidDropped) {
  BrFixture f;
  const auto dst = f.make_ephid(424242, f.now + 900);
  f.br->on_ingress(f.incoming_packet(dst).seal());
  EXPECT_EQ(f.br->stats().drop_unknown_host, 1u);
}

TEST(BorderRouterIn, GarbageDstEphIdDropped) {
  BrFixture f;
  core::EphId forged;
  f.rng.fill(MutByteSpan(forged.bytes.data(), 16));
  f.br->on_ingress(f.incoming_packet(forged).seal());
  EXPECT_EQ(f.br->stats().drop_bad_ephid, 1u);
}

TEST(BorderRouterIn, TransitForwardedWithoutCrypto) {
  // "Transit ASes do not perform additional operations" — a packet for a
  // third AS passes through untouched even with a garbage EphID.
  BrFixture f;
  wire::Packet pkt;
  pkt.src_aid = 64513;
  pkt.dst_aid = 64999;  // not ours
  f.rng.fill(MutByteSpan(pkt.src_ephid.data(), 16));
  f.rng.fill(MutByteSpan(pkt.dst_ephid.data(), 16));
  pkt.payload = f.rng.bytes(10);
  f.br->on_ingress(pkt.seal());
  EXPECT_EQ(f.br->stats().transited, 1u);
  ASSERT_EQ(f.external.size(), 1u);
  EXPECT_EQ(f.external[0].view().dst_aid(), 64999u);
}

TEST(BorderRouterIn, TransitNoRouteCounted) {
  BrFixture f;
  f.external_fails = true;
  wire::Packet pkt;
  pkt.src_aid = 64513;
  pkt.dst_aid = 64999;
  f.br->on_ingress(pkt.seal());
  EXPECT_EQ(f.br->stats().drop_no_route, 1u);
}

// ---- Baseline mode (E11) -------------------------------------------------------------

TEST(BorderRouterBaseline, ForwardsWithoutChecks) {
  BrFixture f;
  BorderRouter::Config cfg;
  cfg.mode = BorderRouter::Mode::baseline;
  BorderRouter::Callbacks cb;
  std::vector<std::pair<core::Hid, wire::PacketBuf>> internal;
  cb.send_external = [](wire::PacketBuf) { return Result<void>::success(); };
  cb.deliver_internal = [&](core::Hid h, wire::PacketBuf p) -> Result<void> {
    internal.emplace_back(h, std::move(p));
    return Result<void>::success();
  };
  cb.now = [&] { return f.now; };
  BorderRouter br(f.as, std::move(cb), cfg);

  // Expired EphID + bad MAC still sails through the baseline.
  const auto src = f.make_ephid(f.host_hid, f.now - 1);
  auto pkt = f.outgoing_packet(src);
  pkt.mac[0] ^= 1;
  br.on_outgoing(pkt.seal());
  EXPECT_EQ(br.stats().forwarded_out, 1u);

  // Ingress delivers by raw bytes.
  wire::Packet in;
  in.src_aid = 64513;
  in.dst_aid = f.as.aid;
  store_be32(in.dst_ephid.data(), 7);
  br.on_ingress(in.seal());
  ASSERT_EQ(internal.size(), 1u);
  EXPECT_EQ(internal[0].first, 7u);
}

// ---- ForwardingPool kernel auto-selection --------------------------------------------

TEST(ForwardingPoolKernel, AutoSelectsScalarForOneThreadOrSmallBursts) {
  BrFixture f;
  ForwardingPool::Config cfg;
  cfg.batch_min_burst = 128;

  // 1 thread: scalar regardless of burst size (the pre-fusion BENCH_e2
  // regression — batched 0.95-0.98x scalar on one core).
  cfg.threads = 1;
  {
    ForwardingPool pool(*f.br, cfg);
    EXPECT_FALSE(pool.batched_for(64));
    EXPECT_FALSE(pool.batched_for(128));
    EXPECT_FALSE(pool.batched_for(4096));
  }
  // Multi-thread: batched once the burst reaches the threshold.
  cfg.threads = 4;
  {
    ForwardingPool pool(*f.br, cfg);
    EXPECT_FALSE(pool.batched_for(0));
    EXPECT_FALSE(pool.batched_for(127));
    EXPECT_TRUE(pool.batched_for(128));
    EXPECT_TRUE(pool.batched_for(4096));
  }
  // Explicit kernels override the heuristic in both directions.
  cfg.threads = 1;
  cfg.kernel = ForwardingPool::Kernel::batched;
  {
    ForwardingPool pool(*f.br, cfg);
    EXPECT_TRUE(pool.batched_for(1));
  }
  cfg.threads = 4;
  cfg.kernel = ForwardingPool::Kernel::scalar;
  {
    ForwardingPool pool(*f.br, cfg);
    EXPECT_FALSE(pool.batched_for(4096));
  }
}

// ---- Pure pipelines (used by bench E2) -----------------------------------------------

TEST(BorderRouterChecks, CheckFunctionsAreSideEffectFree) {
  BrFixture f;
  const auto src = f.make_ephid(f.host_hid, f.now + 900);
  const auto pkt = f.outgoing_packet(src).seal();
  for (int i = 0; i < 3; ++i)
    EXPECT_TRUE(f.br->check_outgoing(pkt.view(), f.now).ok());
  const auto dst = f.make_ephid(f.host_hid, f.now + 900);
  const auto in = f.incoming_packet(dst).seal();
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(f.br->check_incoming(in.view(), f.now).value(), f.host_hid);
  EXPECT_EQ(f.br->stats().forwarded_out, 0u);
  EXPECT_EQ(f.br->stats().delivered_in, 0u);
}

}  // namespace
}  // namespace apna::router

// Steady-state zero-allocation check for the router fast path.
//
// The zero-copy packet API exists so the Fig 4 forwarding pipeline can run
// without touching the heap: buffers are recycled through wire::BufferPool,
// checks run in place over PacketViews, and handoffs move (or pool-copy)
// the wire image. This suite replaces global operator new/delete with a
// counting hook and asserts that, after a warm-up pass, forwarding a burst
// performs ZERO heap allocations per packet — and zero PacketView::
// to_owned() deep copies (the audited control-plane-only copy point).
//
// Runs in the Release leg of ci.sh so a copy/allocation regression fails
// CI, not just the benchmark.
#include <gtest/gtest.h>

#include "core/packet_auth.h"
#include "router/border_router.h"
#include "router/forwarding_pool.h"
#include "util/alloc_count_hook.h"

namespace apna::router {
namespace {

struct AllocFixture {
  crypto::ChaChaRng rng{12021};
  core::AsState as{64512, core::AsSecrets::generate(rng)};
  core::ExpTime now = 1'700'000'000;
  std::vector<core::HostAsKeys> host_keys;
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;

  AllocFixture() {
    for (core::Hid hid = 1; hid <= 64; ++hid) {
      crypto::SharedSecret seed{};
      rng.fill(MutByteSpan(seed.data(), 32));
      core::HostRecord rec;
      rec.hid = hid;
      rec.keys = core::HostAsKeys::derive(seed);
      as.host_db.upsert(rec);
      host_keys.push_back(rec.keys);
    }
  }

  std::unique_ptr<BorderRouter> make_router() {
    BorderRouter::Callbacks cb;
    // Consuming callbacks: the handed-off buffer dies here and its storage
    // returns to the pool, exactly like a transmit queue draining.
    cb.send_external = [this](wire::PacketBuf) -> Result<void> {
      ++sent;
      return Result<void>::success();
    };
    cb.deliver_internal = [this](core::Hid, wire::PacketBuf) -> Result<void> {
      ++delivered;
      return Result<void>::success();
    };
    cb.now = [this] { return now; };
    return std::make_unique<BorderRouter>(as, std::move(cb));
  }

  wire::PacketBuf egress_packet(core::Hid hid) {
    wire::Packet pkt;
    pkt.src_aid = as.aid;
    pkt.src_ephid = as.codec.issue(hid, now + 900, rng).bytes;
    pkt.dst_aid = 64513;
    rng.fill(MutByteSpan(pkt.dst_ephid.data(), 16));
    pkt.proto = wire::NextProto::data;
    pkt.payload = rng.bytes(400);
    core::stamp_packet_mac(
        crypto::AesCmac(ByteSpan(host_keys[hid - 1].mac.data(), 16)), pkt);
    return pkt.seal();
  }
};

TEST(ZeroAlloc, BurstClassifyAndApplySteadyState) {
  AllocFixture f;
  auto br = f.make_router();

  constexpr std::size_t kBurst = 128;
  std::vector<wire::PacketBuf> bufs;
  std::vector<wire::PacketView> views;
  for (std::size_t i = 0; i < kBurst; ++i)
    bufs.push_back(f.egress_packet(static_cast<core::Hid>(1 + i % 64)));
  for (const auto& b : bufs) views.push_back(b.view());
  std::vector<BorderRouter::Verdict> verdicts(views.size());
  BorderRouter::Stats stats;

  auto run_round = [&](bool batched) {
    br->classify_outgoing_burst(views, f.now, verdicts, stats, batched);
    br->apply_outgoing_verdicts(views, verdicts, stats);
  };

  // Warm-up: populates the thread's BufferPool free list.
  for (int i = 0; i < 4; ++i) run_round(true);

  constexpr int kRounds = 50;
  const wire::CopyAudit audit0 = wire::copy_audit();
  const std::uint64_t allocs0 = util::heap_alloc_count();
  for (int i = 0; i < kRounds; ++i) run_round(true);
  for (int i = 0; i < kRounds; ++i) run_round(false);  // scalar twin too
  const std::uint64_t allocs = util::heap_alloc_count() -
                               allocs0;
  const wire::CopyAudit audit1 = wire::copy_audit();

  EXPECT_EQ(allocs, 0u)
      << "forwarding " << (2 * kRounds * kBurst)
      << " packets allocated " << allocs << " times";
  // Every forwarded packet is exactly one pooled handoff copy...
  EXPECT_EQ(audit1.copies - audit0.copies, 2u * kRounds * kBurst);
  // ... and never a deep to_owned() parse or a re-serialization.
  EXPECT_EQ(audit1.to_owned, audit0.to_owned);
  EXPECT_EQ(audit1.seals, audit0.seals);
  EXPECT_EQ(stats.total_drops(), 0u);
  EXPECT_EQ(f.sent, (4u + 2u * kRounds) * kBurst);
}

TEST(ZeroAlloc, SingleBufferMovePathSteadyState) {
  // The simulator shape: on_outgoing() takes ownership and moves the SAME
  // buffer to send_external — zero allocations AND zero copies once the
  // pool is warm.
  AllocFixture f;
  auto br = f.make_router();

  const wire::PacketBuf proto_pkt = f.egress_packet(5);

  // Warm-up.
  for (int i = 0; i < 4; ++i)
    br->on_outgoing(wire::PacketBuf::copy_of(proto_pkt.view()));

  constexpr int kIters = 500;
  const wire::CopyAudit audit0 = wire::copy_audit();
  const std::uint64_t allocs0 = util::heap_alloc_count();
  for (int i = 0; i < kIters; ++i) {
    // One pooled copy to mint the packet (stands in for the host's seal);
    // the router itself must add nothing.
    br->on_outgoing(wire::PacketBuf::copy_of(proto_pkt.view()));
  }
  const std::uint64_t allocs = util::heap_alloc_count() -
                               allocs0;
  const wire::CopyAudit audit1 = wire::copy_audit();

  EXPECT_EQ(allocs, 0u);
  EXPECT_EQ(audit1.copies - audit0.copies, kIters);  // only the mint copies
  EXPECT_EQ(audit1.to_owned, audit0.to_owned);
  EXPECT_EQ(br->stats().forwarded_out, 4u + kIters);
}

TEST(ZeroAlloc, ForwardingPoolSteadyState) {
  // The M-worker pool: classification on workers, actions on the caller —
  // still allocation-free per packet once warm.
  AllocFixture f;
  auto br = f.make_router();

  constexpr std::size_t kBurst = 96;
  std::vector<wire::PacketBuf> bufs;
  std::vector<wire::PacketView> views;
  for (std::size_t i = 0; i < kBurst; ++i)
    bufs.push_back(f.egress_packet(static_cast<core::Hid>(1 + i % 64)));
  for (const auto& b : bufs) views.push_back(b.view());

  ForwardingPool::Config cfg;
  cfg.threads = 2;
  cfg.chunk_packets = 32;
  ForwardingPool pool(*br, cfg);

  for (int i = 0; i < 4; ++i) pool.process_outgoing(views, f.now);

  constexpr int kRounds = 50;
  const std::uint64_t allocs0 = util::heap_alloc_count();
  for (int i = 0; i < kRounds; ++i) pool.process_outgoing(views, f.now);
  const std::uint64_t allocs = util::heap_alloc_count() -
                               allocs0;

  EXPECT_EQ(allocs, 0u)
      << "pool forwarded " << (kRounds * kBurst) << " packets with "
      << allocs << " heap allocations";
  EXPECT_EQ(pool.stats().total_drops(), 0u);
}

}  // namespace
}  // namespace apna::router

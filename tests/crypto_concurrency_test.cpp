// Concurrency coverage for the crypto substrate under the pooled-service
// threading model (the TSan target): per-slot HMAC-DRBGs must never share
// state across worker threads, and ed25519_verify_batch must be safe to run
// from many threads at once (it keeps all scratch on the stack / in local
// vectors; the only shared data is immutable curve constants).
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "crypto/drbg.h"
#include "crypto/ed25519.h"
#include "crypto/rng.h"
#include "dns/resolver.h"
#include "services/dns_zone.h"
#include "util/hex.h"

namespace apna::crypto {
namespace {

TEST(CryptoConcurrency, PerSlotDrbgsAreIndependentAcrossThreads) {
  // One HmacDrbg per simulated worker slot, hammered concurrently: every
  // slot's stream must equal a sequential re-run of the same (seed, slot)
  // instance — any cross-slot state sharing breaks equality, and any
  // aliased access trips TSan.
  constexpr std::size_t kSlots = 8;
  constexpr std::size_t kDraws = 512;
  constexpr std::uint64_t kSeed = 0xfeedface;

  std::vector<std::unique_ptr<HmacDrbg>> slot_drbgs;
  for (std::size_t i = 0; i < kSlots; ++i)
    slot_drbgs.push_back(std::make_unique<HmacDrbg>(kSeed, i));

  std::vector<Bytes> streams(kSlots, Bytes(kDraws * 32));
  {
    std::vector<std::thread> threads;
    for (std::size_t i = 0; i < kSlots; ++i)
      threads.emplace_back([&, i] {
        for (std::size_t d = 0; d < kDraws; ++d)
          slot_drbgs[i]->fill(
              MutByteSpan(streams[i].data() + d * 32, 32));
      });
    for (auto& t : threads) t.join();
  }

  for (std::size_t i = 0; i < kSlots; ++i) {
    HmacDrbg ref(kSeed, i);
    Bytes expect(kDraws * 32);
    for (std::size_t d = 0; d < kDraws; ++d)
      ref.fill(MutByteSpan(expect.data() + d * 32, 32));
    EXPECT_EQ(hex_encode(streams[i]), hex_encode(expect)) << "slot " << i;
  }
}

TEST(CryptoConcurrency, BatchVerifyIsThreadSafeWithPrivateDrbgs) {
  // The ServicePool shape: each worker runs ed25519_verify_batch on its own
  // chunk with its own slot DRBG supplying the z coefficients. Verdicts
  // must match scalar verification on every thread, every iteration.
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kSigs = 12;
  constexpr int kIters = 8;

  std::vector<Ed25519PublicKey> pubs;
  std::vector<Bytes> msgs;
  std::vector<Ed25519Signature> sigs;
  ChaChaRng rng(99);
  for (std::size_t i = 0; i < kSigs; ++i) {
    Ed25519Seed seed{};
    rng.fill(seed);
    const auto pub = ed25519_public_key(seed);
    Bytes msg = rng.bytes(48);
    sigs.push_back(ed25519_sign(seed, pub, msg));
    pubs.push_back(pub);
    msgs.push_back(std::move(msg));
  }
  // One corrupted signature: every thread must isolate exactly it.
  sigs[5][7] ^= 0x20;

  std::vector<Ed25519BatchItem> items;
  for (std::size_t i = 0; i < kSigs; ++i)
    items.push_back({&pubs[i], msgs[i], &sigs[i]});

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      HmacDrbg drbg(0xabad1dea, t);
      bool out[kSigs];
      for (int it = 0; it < kIters; ++it) {
        const bool all =
            ed25519_verify_batch({items.data(), items.size()}, out, drbg);
        if (all) mismatches.fetch_add(1);
        for (std::size_t i = 0; i < kSigs; ++i)
          if (out[i] != (i != 5)) mismatches.fetch_add(1);
      }
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(CryptoConcurrency, ResolverPoolSlotRngsNeverShareState) {
  // The real pool: ResolverPool instantiates HmacDrbg(rng_seed, slot) per
  // worker slot. Drawing from all slots concurrently (as workers would)
  // must be race-free and give each slot the stream a fresh (seed, slot)
  // instance produces.
  services::DnsZone zone;
  net::EventLoop loop;
  dns::Resolver resolver(zone, loop, dns::Resolver::Config{});
  dns::ResolverPool::Config cfg;
  cfg.threads = 4;
  cfg.rng_seed = 0x7001;
  dns::ResolverPool pool(resolver, cfg);
  ASSERT_EQ(pool.threads(), 4u);

  constexpr std::size_t kDraws = 256;
  std::vector<Bytes> streams(4, Bytes(kDraws * 16));
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < 4; ++i)
    threads.emplace_back([&, i] {
      for (std::size_t d = 0; d < kDraws; ++d)
        pool.slot_rng(i).fill(
            MutByteSpan(streams[i].data() + d * 16, 16));
    });
  for (auto& t : threads) t.join();

  for (std::size_t i = 0; i < 4; ++i) {
    HmacDrbg ref(0x7001, i);
    Bytes expect(kDraws * 16);
    for (std::size_t d = 0; d < kDraws; ++d)
      ref.fill(MutByteSpan(expect.data() + d * 16, 16));
    EXPECT_EQ(hex_encode(streams[i]), hex_encode(expect)) << "slot " << i;
  }
}

}  // namespace
}  // namespace apna::crypto

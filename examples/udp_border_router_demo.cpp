// Two-process border-router demo — the data plane over a REAL wire.
//
// A border-router process and a host process exchange APNA packets over a
// loopback UDP socket pair (net::UdpTransport): the host seals egress
// packets for a handful of flows (valid, MAC-tampered, and truncated
// frames), the router drains the socket into pooled PacketBufs and runs
// them through a flow-hash-steered ForwardingPool — the same zero-copy
// pipeline the simulator drives, now fed by recvfrom().
//
// The two processes never exchange keys: both derive the IDENTICAL AS
// state from one fixed RNG seed (AsSecrets::generate and the host-key
// derivations are deterministic), standing in for the Fig 2/3 control
// plane so the demo stays two files and one socket.
//
// What to look for in the output:
//  * valid packets  -> forwarded_out   (Fig 4 checks passed, EphID decrypt
//                                       + host MAC verify, flow cache hot)
//  * tampered MACs  -> drop_bad_mac    (caught by the router pipeline)
//  * truncated data -> rx_rejected     (never reach the pipeline at all —
//                                       PacketView::bind refuses them at
//                                       the transport boundary)
//
// Usage:
//   ./udp_border_router_demo                    # forks the host (default)
//   ./udp_border_router_demo --role=router --port=40123
//   ./udp_border_router_demo --role=host --port=40123
//
// Exits 0 when every expected count matches (or when the environment
// forbids UDP sockets — the demo skips instead of failing).
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/as_state.h"
#include "core/packet_auth.h"
#include "net/sim.h"
#include "net/transport.h"
#include "router/border_router.h"
#include "router/forwarding_pool.h"

using namespace apna;

namespace {

constexpr core::Hid kHosts = 8;        // flows (one EphID per host)
constexpr std::size_t kRepeats = 25;   // valid packets per flow
constexpr std::size_t kTampered = 20;  // MAC-flipped packets
constexpr std::size_t kTruncated = 20; // cut-off datagrams
constexpr std::size_t kValid = kHosts * kRepeats;

/// Both processes build this from the same seed: identical kA (EphID
/// codec), identical host<->AS keys. The control-plane stand-in.
struct DemoState {
  crypto::ChaChaRng rng{0x0a94a5eedULL};
  core::AsState as{64512, core::AsSecrets::generate(rng)};
  core::ExpTime now = net::kEpochSeconds;
  std::vector<core::HostAsKeys> host_keys;

  DemoState() {
    for (core::Hid hid = 1; hid <= kHosts; ++hid) {
      crypto::SharedSecret seed{};
      rng.fill(MutByteSpan(seed.data(), 32));
      core::HostRecord rec;
      rec.hid = hid;
      rec.keys = core::HostAsKeys::derive(seed);
      as.host_db.upsert(rec);
      host_keys.push_back(rec.keys);
    }
  }
};

// ---- Host process ------------------------------------------------------------

int run_host(std::uint16_t router_port) {
  DemoState st;
  auto t = net::UdpTransport::open({});
  if (!t.ok()) {
    std::printf("[host] UDP sockets unavailable — skipping\n");
    return 0;
  }
  auto to_router = (*t)->add_peer("127.0.0.1", router_port);
  if (!to_router.ok()) return 1;

  // One sealed wire image per flow; every send transmits straight from the
  // image (send_raw), so repeats cost no buffer churn at all.
  std::vector<wire::PacketBuf> flows;
  for (core::Hid hid = 1; hid <= kHosts; ++hid) {
    wire::Packet pkt;
    pkt.src_aid = st.as.aid;
    pkt.dst_aid = 64513;
    pkt.src_ephid = st.as.codec.issue(hid, st.now + 900, st.rng).bytes;
    st.rng.fill(MutByteSpan(pkt.dst_ephid.data(), 16));
    pkt.proto = wire::NextProto::data;
    pkt.payload = st.rng.bytes(64);
    core::stamp_packet_mac(
        crypto::AesCmac(ByteSpan(st.host_keys[hid - 1].mac.data(), 16)), pkt);
    flows.push_back(pkt.seal());
  }

  std::size_t sent = 0;
  const auto pace = [&] {  // never outrun the router's SO_RCVBUF
    if (++sent % 32 == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  };
  for (std::size_t r = 0; r < kRepeats; ++r)
    for (const wire::PacketBuf& f : flows) {
      (void)(*t)->send_raw(*to_router, f.view().bytes());
      pace();
    }
  for (std::size_t i = 0; i < kTampered; ++i) {  // flip one MAC byte
    Bytes bad(flows[i % kHosts].view().bytes().begin(),
              flows[i % kHosts].view().bytes().end());
    bad[wire::kOffMac] ^= 0x01;
    (void)(*t)->send_raw(*to_router, ByteSpan(bad.data(), bad.size()));
    pace();
  }
  for (std::size_t i = 0; i < kTruncated; ++i) {  // cut mid-header
    const ByteSpan img = flows[i % kHosts].view().bytes();
    (void)(*t)->send_raw(*to_router, ByteSpan(img.data(), 10));
    pace();
  }
  std::printf("[host] sent %zu valid + %zu tampered + %zu truncated "
              "datagrams to 127.0.0.1:%u\n",
              kValid, kTampered, kTruncated, router_port);
  return 0;
}

// ---- Router process ----------------------------------------------------------

int run_router(net::UdpTransport& t, bool expect_exact) {
  DemoState st;
  router::BorderRouter::Callbacks cb;
  cb.send_external = [](wire::PacketBuf) { return Result<void>::success(); };
  cb.deliver_internal = [](core::Hid, wire::PacketBuf) {
    return Result<void>::success();
  };
  cb.now = [&st] { return st.now; };
  router::BorderRouter br(st.as, std::move(cb));

  router::ForwardingPool::Config cfg;
  cfg.threads = 2;  // flow-hash steering: each flow owns one worker's cache
  router::ForwardingPool pool(br, cfg);

  constexpr std::size_t kBurst = 64;
  std::vector<wire::PacketBuf> owned;
  std::vector<wire::PacketView> views;
  owned.reserve(kBurst);
  views.reserve(kBurst);
  t.set_rx([&](net::PeerId, wire::PacketBuf p) {
    views.push_back(p.view());
    owned.push_back(std::move(p));
  });

  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  auto last_rx = start;
  std::uint64_t seen = 0;
  for (;;) {
    const std::size_t got = t.poll(50);
    while (owned.size() < kBurst && t.poll(0) > 0) {
    }
    if (!owned.empty()) {
      pool.process_outgoing(views, st.now);
      views.clear();
      owned.clear();
    }
    const std::uint64_t inbound = t.stats().rx_packets + t.stats().rx_rejected;
    if (got > 0 || inbound != seen) last_rx = Clock::now();
    seen = inbound;
    const auto now = Clock::now();
    // Stop after 1 s of silence once traffic arrived; 15 s overall cap.
    if (seen > 0 && now - last_rx > std::chrono::seconds(1)) break;
    if (now - start > std::chrono::seconds(15)) break;
  }

  const auto ps = pool.stats();
  const auto& ts = t.stats();
  const auto cache = pool.flow_cache_stats();
  std::printf("[router] rx %llu datagrams: forwarded %llu | bad-MAC drops "
              "%llu | bind-rejected %llu | flow-cache hit rate %.1f%% | "
              "cross-worker duplicates %llu\n",
              static_cast<unsigned long long>(ts.rx_packets + ts.rx_rejected),
              static_cast<unsigned long long>(ps.forwarded_out),
              static_cast<unsigned long long>(ps.drop_bad_mac),
              static_cast<unsigned long long>(ts.rx_rejected),
              100.0 * cache.hit_rate(),
              static_cast<unsigned long long>(cache.cross_worker_duplicates));

  if (!expect_exact) return 0;
  // Loopback with a 1 MiB SO_RCVBUF holds the whole demo's traffic even if
  // the router never reads during the blast, so the counts are exact.
  bool ok = true;
  if (ps.forwarded_out != kValid) ok = false;
  if (ps.drop_bad_mac != kTampered) ok = false;
  if (ts.rx_rejected != kTruncated) ok = false;
  if (cache.cross_worker_duplicates != 0) ok = false;
  std::printf("[router] expected %zu forwarded / %zu bad-MAC / %zu rejected "
              "/ 0 duplicates: %s\n",
              kValid, kTampered, kTruncated, ok ? "MATCH" : "MISMATCH");
  return ok ? 0 : 1;
}

std::string arg_value(int argc, char** argv, const char* key) {
  const std::size_t n = std::strlen(key);
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], key, n) == 0 && argv[i][n] == '=')
      return argv[i] + n + 1;
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  const std::string role = arg_value(argc, argv, "--role");
  const std::string port_s = arg_value(argc, argv, "--port");
  const std::uint16_t port =
      port_s.empty() ? 0 : static_cast<std::uint16_t>(std::stoul(port_s));

  if (role == "host") {
    if (port == 0) {
      std::fprintf(stderr, "--role=host needs --port=<router port>\n");
      return 1;
    }
    return run_host(port);
  }

  // Router side: bind first so the port exists before any host starts.
  net::UdpTransport::Config cfg;
  cfg.bind_port = port;
  auto t = net::UdpTransport::open(cfg);
  if (!t.ok()) {
    std::printf("UDP sockets unavailable in this environment — demo "
                "skipped\n");
    return 0;
  }
  std::printf("[router] listening on 127.0.0.1:%u (%s mode)\n",
              (*t)->local_port(), role.empty() ? "fork-a-host" : "router");

  if (role == "router") return run_router(**t, /*expect_exact=*/false);

  // Default: two REAL processes. Fork before the pool spins up its worker
  // threads (fork + threads don't mix); the child never touches the
  // inherited router socket.
  const std::uint16_t router_port = (*t)->local_port();
  const pid_t child = ::fork();
  if (child < 0) {
    std::perror("fork");
    return 1;
  }
  if (child == 0) ::_exit(run_host(router_port));

  const int rc = run_router(**t, /*expect_exact=*/true);
  int status = 0;
  ::waitpid(child, &status, 0);
  const bool child_ok = WIFEXITED(status) && WEXITSTATUS(status) == 0;
  if (!child_ok) std::fprintf(stderr, "host child failed\n");
  std::printf("%s\n", (rc == 0 && child_ok) ? "demo OK" : "demo FAILED");
  return (rc == 0 && child_ok) ? 0 : 1;
}

// dns_client_server — the §VII-A web-service scenario.
//
// A shop server publishes a *receive-only* EphID in DNS (so shutoff abuse
// cannot take its published address down), clients resolve the name over
// encrypted DNS, and the server hands each client a serving EphID during
// connection establishment. One client uses 0-RTT early data (§VII-C).
//
//   $ ./examples/dns_client_server
#include <cstdio>

#include "apna/internet.h"

using namespace apna;

int main() {
  Internet net;
  AutonomousSystem& isp_a = net.add_as(100, "client-isp");
  AutonomousSystem& isp_b = net.add_as(200, "hosting-isp");
  net.link(100, 200, 8000);  // 8 ms one-way

  host::Host& server = isp_b.add_host("shop-server");
  host::Host& alice = isp_a.add_host("alice");
  host::Host& carol = isp_a.add_host("carol");

  // Server provisioning: a long-lived receive-only EphID for DNS plus
  // serving EphIDs for actual traffic.
  (void)provision_ephids(server, net.loop(), 1,
                         core::EphIdLifetime::long_term,
                         core::kRequestReceiveOnly);
  (void)provision_ephids(server, net.loop(), 2);
  (void)provision_ephids(alice, net.loop(), 1);
  (void)provision_ephids(carol, net.loop(), 1);

  const core::EphIdCertificate* ro = nullptr;
  for (const auto& e : server.pool().entries())
    if (e->receive_only()) ro = &e->cert;

  server.publish_name("shop.example", *ro, 0, [&](Result<void> r) {
    std::printf("[server] published shop.example -> receive-only EphID %s "
                "(%s)\n",
                ro->ephid.hex().substr(0, 16).c_str(),
                r.ok() ? "ok" : "failed");
  });
  net.run();

  // The "shop" application: answer requests.
  server.set_data_handler([&server](std::uint64_t sid, ByteSpan req) {
    std::printf("[server] request on session %llu: \"%s\"\n",
                (unsigned long long)sid, to_string(req).c_str());
    (void)server.send_data(sid, to_bytes("200 OK: 1x rubber duck shipped"));
  });

  // Client 1: conservative establishment (resolve, handshake, then send —
  // the paper's 1.5 RTT path).
  alice.set_data_handler([&](std::uint64_t, ByteSpan resp) {
    std::printf("[alice] response at t=%.1f ms: \"%s\"\n",
                net.loop().now() / 1000.0, to_string(resp).c_str());
  });
  alice.resolve("shop.example", [&](Result<core::DnsRecord> r) {
    if (!r.ok()) {
      std::printf("[alice] resolution failed\n");
      return;
    }
    std::printf("[alice] resolved shop.example (signed record, "
                "receive-only=%d)\n",
                r->cert.receive_only());
    auto sid = alice.connect(r->cert, {}, [&, sid_holder = std::make_shared<std::uint64_t>()](
                                         Result<std::uint64_t> ok) {
      if (ok.ok())
        (void)alice.send_data(*ok, to_bytes("GET /duck alice"));
    });
    (void)sid;
  });

  // Client 2: 0-RTT — the request rides in the very first packet,
  // encrypted under the receive-only EphID's key (§VII-C trade-off).
  carol.set_data_handler([&](std::uint64_t, ByteSpan resp) {
    std::printf("[carol] response at t=%.1f ms: \"%s\"\n",
                net.loop().now() / 1000.0, to_string(resp).c_str());
  });
  carol.resolve("shop.example", [&](Result<core::DnsRecord> r) {
    if (!r.ok()) return;
    host::Host::ConnectOptions opts;
    opts.early_data = to_bytes("GET /duck carol (0-RTT)");
    (void)carol.connect(r->cert, opts, [](Result<std::uint64_t>) {});
  });

  net.run();

  std::printf("\n[world] server handshakes accepted: %llu; DNS sessions at "
              "ISP A: %llu; zone size: %zu\n",
              (unsigned long long)server.stats().handshakes_accepted,
              (unsigned long long)isp_a.dns().stats().sessions,
              net.zone().size());
  (void)isp_b;
  return 0;
}

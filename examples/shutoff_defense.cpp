// shutoff_defense — the accountability story (Fig 5 / §VI-C) as a timeline.
//
// A botnet host floods a victim across the Internet. The victim presents
// one flood packet as evidence to the attacker's OWN AS, which verifies
// that its customer really sent it and revokes the EphID at its border
// routers — the flood dies one AS away from its source. A forged shutoff
// attempt against an innocent host is rejected.
//
//   $ ./examples/shutoff_defense
#include <cstdio>

#include "apna/internet.h"

using namespace apna;

int main() {
  Internet net;
  AutonomousSystem& bot_isp = net.add_as(666, "bot-isp");
  AutonomousSystem& transit = net.add_as(701, "transit");
  AutonomousSystem& victim_isp = net.add_as(702, "victim-isp");
  net.link(666, 701, 3000);
  net.link(701, 702, 3000);

  host::Host& bot = bot_isp.add_host("bot");
  host::Host& victim = victim_isp.add_host("victim");
  host::Host& innocent = bot_isp.add_host("innocent");
  (void)provision_ephids(bot, net.loop(), 1);
  (void)provision_ephids(victim, net.loop(), 1);
  (void)provision_ephids(innocent, net.loop(), 1);

  std::uint64_t flood_frames = 0;
  victim.set_data_handler([&](std::uint64_t, ByteSpan) { ++flood_frames; });

  // Capture one flood packet as it enters the victim's AS (the victim's
  // own copy of a delivered packet).
  std::optional<wire::PacketBuf> evidence;
  net.network().add_tap(
      [&](std::uint32_t, std::uint32_t to, const wire::PacketView& p) {
        if (to == 702 && p.proto() == wire::NextProto::data)
          evidence = wire::PacketBuf::copy_of(p);
      });

  // --- t=0: the flood starts ------------------------------------------------
  auto sid = bot.connect(victim.pool().entries().front()->cert, {},
                         [](Result<std::uint64_t>) {});
  for (int i = 0; i < 50; ++i)
    (void)bot.send_data(*sid, to_bytes("JUNK JUNK JUNK"));
  net.run();
  std::printf("t=%6.1f ms  flood delivered: %llu frames at the victim\n",
              net.loop().now() / 1000.0, (unsigned long long)flood_frames);

  // --- the victim files a shutoff against the flood source -------------------
  (void)victim.request_shutoff(evidence->view(), [&](Result<void> r) {
    std::printf("t=%6.1f ms  shutoff %s by AS %u\n",
                net.loop().now() / 1000.0,
                r.ok() ? "ACCEPTED" : "rejected", bot_isp.aid());
  });
  net.run();

  // --- the flood continues, but dies at the bot's own border router ----------
  const auto delivered_before = flood_frames;
  for (int i = 0; i < 50; ++i)
    (void)bot.send_data(*sid, to_bytes("JUNK JUNK JUNK"));
  net.run();
  std::printf("t=%6.1f ms  post-shutoff flood: +%llu frames delivered; "
              "%llu packets dropped at AS %u egress (revoked EphID)\n",
              net.loop().now() / 1000.0,
              (unsigned long long)(flood_frames - delivered_before),
              (unsigned long long)bot_isp.br().stats().drop_revoked,
              bot_isp.aid());

  // --- abuse attempt: shut off an innocent host with a forged packet ----------
  // The attacker fabricates a packet claiming the innocent host sent it.
  wire::Packet forged = evidence->view().to_owned();
  forged.src_ephid = innocent.pool().entries().front()->cert.ephid.bytes;
  const wire::PacketBuf forged_buf = forged.seal();
  (void)victim.request_shutoff(forged_buf.view(), [&](Result<void> r) {
    std::printf("t=%6.1f ms  forged shutoff against innocent host: %s "
                "(packet was never MAC'd by that host)\n",
                net.loop().now() / 1000.0,
                r.ok() ? "ACCEPTED (BUG!)" : "rejected");
  });
  net.run();

  std::printf("\nAA at AS %u: accepted=%llu bad-mac rejections=%llu\n",
              bot_isp.aid(),
              (unsigned long long)bot_isp.aa().stats().accepted,
              (unsigned long long)bot_isp.aa().stats().rejected_bad_mac);
  (void)transit;
  return 0;
}

// Quickstart — the full APNA lifecycle in ~80 lines (Fig 1):
//   build two ASes, bootstrap hosts, issue EphIDs, establish an encrypted
//   connection and exchange data.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "apna/internet.h"

using namespace apna;

int main() {
  // 1. The world: two ASes connected by a 5 ms link, plus the global AS
  //    directory (RPKI stand-in) and a shared DNS zone.
  Internet net;
  AutonomousSystem& swisscom = net.add_as(3303, "swisscom");
  AutonomousSystem& dtag = net.add_as(3320, "dtag");
  net.link(3303, 3320, 5000);

  // 2. Host bootstrapping (Fig 2): authenticate to the AS, DH-derive the
  //    host<->AS keys, receive the control EphID and service certificates.
  host::Host& alice = swisscom.add_host("alice");
  host::Host& bob = dtag.add_host("bob");
  std::printf("alice bootstrapped: HID=%u in AS %u\n", alice.hid(),
              alice.aid());
  std::printf("bob   bootstrapped: HID=%u in AS %u\n", bob.hid(), bob.aid());

  // 3. EphID issuance (Fig 3): each host asks its Management Service for a
  //    data-plane EphID; the request and certificate travel encrypted.
  auto alice_eph = provision_ephids(alice, net.loop(), 1);
  auto bob_eph = provision_ephids(bob, net.loop(), 1);
  if (!alice_eph.ok() || !bob_eph.ok()) {
    std::printf("EphID issuance failed\n");
    return 1;
  }
  const auto& bob_cert = bob.pool().entries().front()->cert;
  std::printf("bob's EphID: %s (expires %u)\n",
              bob.pool().entries().front()->cert.ephid.hex().c_str(),
              bob_cert.exp_time);

  // 4. Connection establishment (§IV-D1) + encrypted communication.
  bob.set_data_handler([&bob](std::uint64_t sid, ByteSpan data) {
    std::printf("bob received: \"%s\" -> replying\n",
                to_string(data).c_str());
    (void)bob.send_data(sid, to_bytes("hi alice, all packets here are "
                                      "encrypted and attributable"));
  });
  alice.set_data_handler([](std::uint64_t, ByteSpan data) {
    std::printf("alice received: \"%s\"\n", to_string(data).c_str());
  });

  auto session = alice.connect(bob_cert, {}, [&](Result<std::uint64_t> r) {
    std::printf("handshake %s at t=%.2f ms\n", r.ok() ? "done" : "FAILED",
                net.loop().now() / 1000.0);
  });
  if (!session.ok()) {
    std::printf("connect failed\n");
    return 1;
  }
  (void)alice.send_data(*session, to_bytes("hello bob"));
  net.run();

  // 5. What the network saw: packets attributable at the source AS,
  //    opaque everywhere else.
  std::printf("\nAS %u egress: %llu packets forwarded, %llu drops\n",
              swisscom.aid(),
              (unsigned long long)swisscom.br().stats().forwarded_out,
              (unsigned long long)swisscom.br().stats().total_drops());
  std::printf("alice sent %llu packets; bob received %llu\n",
              (unsigned long long)alice.stats().packets_sent,
              (unsigned long long)bob.stats().packets_received);
  return 0;
}

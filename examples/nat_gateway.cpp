// nat_gateway — incremental deployment (§VII-B, §VII-D, §VIII-E).
//
// Three ways into APNA without being a native, directly-attached host:
//   1. a laptop behind a NAT-mode access point (the café WiFi),
//   2. an unmodified legacy IPv4 client behind an APNA gateway,
//   3. a customer of a small ISP consuming APNA-as-a-Service from its
//      upstream provider.
// All three talk to the same native APNA server.
//
//   $ ./examples/nat_gateway
#include <cstdio>

#include "apna/internet.h"
#include "gateway/apnaas.h"
#include "gateway/ipv4_gateway.h"
#include "gateway/nat_ap.h"

using namespace apna;

int main() {
  Internet net;
  AutonomousSystem& access_isp = net.add_as(100, "access-isp");
  AutonomousSystem& hosting_isp = net.add_as(300, "hosting-isp");
  net.link(100, 300, 6000);

  // The native server everyone talks to.
  host::Host& server = hosting_isp.add_host("server");
  (void)provision_ephids(server, net.loop(), 3);
  server.set_data_handler([&server](std::uint64_t sid, ByteSpan d) {
    std::printf("  [server] got \"%s\"\n", to_string(d).c_str());
    (void)server.send_data(sid, to_bytes("ack"));
  });
  bool pub = false;
  server.publish_name("api.example", server.pool().entries().front()->cert,
                      0, [&](Result<void> r) { pub = r.ok(); });
  net.run();

  // --- 1. Café WiFi: NAT-mode AP -------------------------------------------
  std::printf("== NAT-mode access point (§VII-B) ==\n");
  gw::NatAccessPoint cafe({.name = "cafe-ap"}, access_isp, net.directory());
  host::Host& laptop = cafe.add_inner_host("laptop");
  (void)provision_ephids(laptop, net.loop(), 1);
  auto sid = laptop.connect(server.pool().entries().front()->cert, {},
                            [](Result<std::uint64_t>) {});
  (void)laptop.send_data(*sid, to_bytes("hello from behind the cafe NAT"));
  net.run();
  const auto& eph = laptop.pool().entries().front()->cert.ephid;
  std::printf("  laptop's EphID maps to AP HID %u at the ISP; the AP can "
              "identify inner host %u\n",
              access_isp.state().codec.open(eph)->hid,
              cafe.identify(eph).value());

  // --- 2. Legacy IPv4 client via gateway ------------------------------------
  std::printf("== legacy IPv4 client via APNA gateway (§VII-D) ==\n");
  gw::Ipv4Gateway gateway({.name = "gw"}, access_isp);
  (void)provision_ephids(gateway.gw_host(), net.loop(), 2);
  gateway.attach_legacy_host(0xC0A80105, [](const wire::Ipv4Packet& p) {
    std::printf("  [legacy] reply from %u.%u.%u.%u: \"%s\"\n",
                p.hdr.src >> 24, (p.hdr.src >> 16) & 0xff,
                (p.hdr.src >> 8) & 0xff, p.hdr.src & 0xff,
                to_string(p.payload).c_str());
  });
  gateway.legacy_resolve("api.example", [&](Result<std::uint32_t> ip) {
    if (!ip.ok()) return;
    std::printf("  [legacy] api.example resolved to synthetic %u.%u.%u.%u\n",
                *ip >> 24, (*ip >> 16) & 0xff, (*ip >> 8) & 0xff, *ip & 0xff);
    wire::Ipv4Packet pkt;
    pkt.hdr.src = 0xC0A80105;
    pkt.hdr.dst = *ip;
    pkt.hdr.proto = wire::IpProto::tcp;
    pkt.src_port = 43210;
    pkt.dst_port = 80;
    pkt.payload = to_bytes("GET /v1/status (plain IPv4 in, APNA out)");
    gateway.on_legacy_packet(pkt);
  });
  net.run();

  // --- 3. APNA-as-a-Service -----------------------------------------------------
  std::printf("== APNA-as-a-Service for a downstream ISP (§VIII-E) ==\n");
  gw::DownstreamAs small_isp({.name = "small-isp"}, access_isp,
                             net.directory());
  host::Host& customer = small_isp.add_customer("customer-7");
  (void)provision_ephids(customer, net.loop(), 1);
  auto sid3 = customer.connect(server.pool().entries().front()->cert, {},
                               [](Result<std::uint64_t>) {});
  (void)customer.send_data(*sid3, to_bytes("hi from a small-ISP customer"));
  net.run();
  std::printf("  customer EphID is issued by upstream AS %u -> anonymity "
              "set = the big ISP's customers\n",
              customer.pool().entries().front()->cert.aid);

  std::printf("\nserver handled %llu handshakes; ISP egress drops: %llu\n",
              (unsigned long long)server.stats().handshakes_accepted,
              (unsigned long long)access_isp.br().stats().total_drops());
  (void)pub;
  return 0;
}

// as_day_simulation — a compressed "day in the life" of a small APNA
// internet: five ASes, dozens of hosts, trace-driven flow arrivals, DNS,
// per-flow EphIDs, two misbehaving hosts that get shut off (one by its
// victim, one by a transit AS via the §VIII-C path stamp), and the §VIII-G2
// revocation-list housekeeping — ending in an operations report.
//
//   $ ./examples/as_day_simulation
#include <cstdio>
#include <vector>

#include "apna/internet.h"
#include "trace/trace_gen.h"

using namespace apna;

namespace {

AutonomousSystem::Config make_as(core::Aid aid, const std::string& name) {
  AutonomousSystem::Config cfg;
  cfg.aid = aid;
  cfg.name = name;
  cfg.br.stamp_path = true;  // §VIII-C extension enabled network-wide
  return cfg;
}

}  // namespace

int main() {
  Internet net{2026};
  auto& access1 = net.add_as(make_as(101, "access-east"));
  auto& access2 = net.add_as(make_as(102, "access-west"));
  auto& transit = net.add_as(make_as(200, "backbone"));
  auto& hosting1 = net.add_as(make_as(301, "cloud-a"));
  auto& hosting2 = net.add_as(make_as(302, "cloud-b"));
  net.link(101, 200, 3000);
  net.link(102, 200, 5000);
  net.link(200, 301, 2000);
  net.link(200, 302, 4000);

  // --- Servers publish names -------------------------------------------------
  const char* services[] = {"mail.example", "video.example", "shop.example",
                            "news.example", "game.example", "api.example"};
  std::vector<host::Host*> servers;
  std::uint64_t served_requests = 0;
  for (int i = 0; i < 6; ++i) {
    auto& hosting = (i % 2 == 0) ? hosting1 : hosting2;
    host::Host& srv = hosting.add_host(std::string("srv-") + services[i]);
    (void)provision_ephids(srv, net.loop(), 1, core::EphIdLifetime::long_term,
                           core::kRequestReceiveOnly);
    (void)provision_ephids(srv, net.loop(), 2);
    const core::EphIdCertificate* ro = nullptr;
    for (const auto& e : srv.pool().entries())
      if (e->receive_only()) ro = &e->cert;
    srv.publish_name(services[i], *ro, 0, [](Result<void>) {});
    srv.set_data_handler([&served_requests, &srv](std::uint64_t sid,
                                                  ByteSpan) {
      ++served_requests;
      (void)srv.send_data(sid, to_bytes("response"));
    });
    servers.push_back(&srv);
  }
  net.run();

  // --- Client population -------------------------------------------------------
  // Clients run the §VIII-G1 lifecycle manager instead of a fixed
  // pre-provisioned pool: each keeps 4 short-term EphIDs stocked, renewed
  // proactively with jittered scheduling so the access ISPs' Management
  // Services see a spread-out request stream, not a stampede.
  std::vector<host::Host*> clients;
  host::EphIdLifecycleManager::Config renew;
  renew.classes[host::lifetime_index(core::EphIdLifetime::short_term)] =
      host::RenewalPolicy{.min_ready = 4, .lead_s = 120};
  renew.check_interval_us = 10 * net::kUsPerSecond;
  renew.jitter_us = 5 * net::kUsPerSecond;
  for (int i = 0; i < 24; ++i) {
    auto& access = (i % 2 == 0) ? access1 : access2;
    const auto g = static_cast<host::Granularity>(i % 4 == 3 ? 0 : 2);
    host::Host& c = access.add_host("user-" + std::to_string(i), g);
    c.start_auto_renew(renew);
    clients.push_back(&c);
  }
  net.loop().run_until(net.loop().now() + net::kUsPerSecond);

  // --- Trace-driven workload -----------------------------------------------------
  // One simulated "day" compressed to 120 virtual seconds; arrivals sampled
  // from the diurnal generator.
  trace::TraceConfig tc;
  tc.duration_s = 120;
  tc.night_floor_per_s = 2;
  tc.day_peak_per_s = 12;
  tc.scale = 1;
  trace::TraceGenerator gen(tc);
  const auto arrivals = gen.arrivals_per_second();

  crypto::ChaChaRng pick(7);
  std::uint64_t flows_started = 0, responses = 0;
  for (std::uint32_t sec = 0; sec < tc.duration_s; ++sec) {
    for (std::uint32_t k = 0; k < arrivals[sec]; ++k) {
      net.loop().schedule_at(
          net::TimeUs{sec} * net::kUsPerSecond + k * 1000, [&] {
            host::Host* c = clients[pick.uniform(clients.size())];
            const char* name = services[pick.uniform(6)];
            c->set_data_handler([&responses](std::uint64_t, ByteSpan) {
              ++responses;
            });
            c->resolve(name, [c, &flows_started](Result<core::DnsRecord> r) {
              if (!r.ok()) return;
              auto sid = c->connect(r->cert, {}, [](Result<std::uint64_t>) {});
              if (sid.ok()) {
                ++flows_started;
                (void)c->send_data(*sid, to_bytes("request"));
              }
            });
          });
    }
  }

  // --- Two incidents -----------------------------------------------------------------
  // 1) user-0 floods shop.example; the victim server shuts it off.
  std::optional<wire::PacketBuf> evidence1;
  net.network().add_tap([&](std::uint32_t, std::uint32_t to,
                            const wire::PacketView& p) {
    // Flood frames are the only large payloads headed to cloud-a.
    if (to == 301 && p.proto() == wire::NextProto::data && !evidence1 &&
        p.src_aid() == 101 && p.payload().size() > 250)
      evidence1 = wire::PacketBuf::copy_of(p);
  });
  net.loop().schedule_at(30 * net::kUsPerSecond, [&] {
    host::Host* bot = clients[0];
    (void)bot->resolve("shop.example", [bot](Result<core::DnsRecord> r) {
      if (!r.ok()) return;
      auto sid = bot->connect(r->cert, {}, [](Result<std::uint64_t>) {});
      if (!sid.ok()) return;
      for (int i = 0; i < 200; ++i)
        (void)bot->send_data(*sid, Bytes(300, 'F'));
    });
  });
  net.loop().schedule_at(40 * net::kUsPerSecond, [&] {
    if (!evidence1) return;
    auto rr = servers[2]->request_shutoff(evidence1->view(),
                                          [](Result<void> r) {
      std::printf("[incident-1] victim-initiated shutoff: %s\n",
                  r.ok() ? "accepted" : "rejected");
    });
    if (!rr.ok())
      std::printf("[incident-1] shutoff request failed locally: %s\n",
                  errc_name(rr.error().code));
  });

  // 2) user-1 floods api.example; the BACKBONE's agent uses the §VIII-C
  //    path stamp to shut it off at the source AS.
  std::optional<wire::PacketBuf> evidence2;
  net.network().add_tap([&](std::uint32_t from, std::uint32_t,
                            const wire::PacketView& p) {
    if (from == 200 && p.proto() == wire::NextProto::data && !evidence2 &&
        p.src_aid() == 102 && p.payload().size() > 80)
      evidence2 = wire::PacketBuf::copy_of(p);
  });
  net.loop().schedule_at(60 * net::kUsPerSecond, [&] {
    host::Host* bot = clients[1];
    (void)bot->resolve("api.example", [bot](Result<core::DnsRecord> r) {
      if (!r.ok()) return;
      auto sid = bot->connect(r->cert, {}, [](Result<std::uint64_t>) {});
      if (!sid.ok()) return;
      for (int i = 0; i < 200; ++i)
        (void)bot->send_data(*sid, Bytes(100, 'F'));
    });
  });
  net.loop().schedule_at(70 * net::kUsPerSecond, [&] {
    if (!evidence2) return;
    const auto req = transit.aa().make_onpath_request(evidence2->view());
    const auto r =
        access2.aa().process(req, net.loop().now_seconds());
    std::printf("[incident-2] transit-AS (on-path) shutoff: %s\n",
                r.ok() ? "accepted" : "rejected");
  });

  // --- §VIII-G2 housekeeping: hourly revocation-list purge --------------------------
  std::size_t purged_total = 0;
  net.loop().schedule_at(110 * net::kUsPerSecond, [&] {
    for (auto* as :
         {&access1, &access2, &transit, &hosting1, &hosting2})
      purged_total += as->state().revoked.purge_expired(
          net.loop().now_seconds());
  });

  // The renewal ticks re-schedule themselves forever; run the day to its
  // horizon, then retire the renewal loops and drain what remains.
  net.loop().run_until((tc.duration_s + 5) * net::kUsPerSecond);
  std::uint64_t renewals = 0;
  for (host::Host* c : clients) {
    if (const auto* lc = c->lifecycle()) renewals += lc->stats().renewed;
    c->stop_auto_renew();
  }
  net.run();

  // --- Day report ----------------------------------------------------------------------
  std::printf("\n===== day report (120 virtual seconds) =====\n");
  std::printf("flows started: %llu | requests served: %llu | responses "
              "delivered: %llu\n",
              (unsigned long long)flows_started,
              (unsigned long long)served_requests,
              (unsigned long long)responses);
  for (auto* as : {&access1, &access2, &transit, &hosting1, &hosting2}) {
    const auto& br = as->br().stats();
    std::printf(
        "AS %3u  egress=%6llu  delivered=%6llu  transit=%6llu  drops=%4llu "
        "(revoked=%llu)  ephids-issued=%llu  shutoffs=%llu(+%llu on-path)\n",
        as->aid(), (unsigned long long)br.forwarded_out,
        (unsigned long long)br.delivered_in,
        (unsigned long long)br.transited,
        (unsigned long long)br.total_drops(),
        (unsigned long long)br.drop_revoked,
        (unsigned long long)as->ms().stats().issued,
        (unsigned long long)as->aa().stats().accepted,
        (unsigned long long)as->aa().stats().onpath_accepted);
  }
  std::printf("revocation entries purged by housekeeping: %zu\n",
              purged_total);
  std::printf("lifecycle renewals across the client population: %llu\n",
              (unsigned long long)renewals);
  std::printf("every delivered packet above was encrypted end-to-end and "
              "attributable at its source AS.\n");
  return 0;
}

// privacy_observatory — what a pervasive on-path observer actually sees
// (§II-B adversary; §VI-B analysis).
//
// A surveillance tap records every inter-AS packet while one host runs two
// application flows. The example then plays analyst: tries to read
// payloads, link flows to a common sender, and identify the host — first
// with per-flow EphIDs (the APNA default), then with per-host EphIDs to
// show the §VIII-A granularity trade-off actually materialize on the wire.
//
//   $ ./examples/privacy_observatory
#include <cstdio>
#include <set>

#include "apna/internet.h"

using namespace apna;

namespace {

struct Observation {
  std::size_t packets = 0;
  std::set<std::string> source_ephids;
  std::size_t plaintext_hits = 0;
  std::size_t decodable_ephids = 0;
};

Observation run_scenario(host::Granularity granularity) {
  Internet net{static_cast<std::uint64_t>(granularity) + 99};
  AutonomousSystem& home = net.add_as(10, "home-isp");
  AutonomousSystem& far = net.add_as(20, "far-isp");
  net.link(10, 20, 5000);

  host::Host& user = home.add_host("user", granularity);
  host::Host& site1 = far.add_host("news-site");
  host::Host& site2 = far.add_host("health-site");
  (void)provision_ephids(user, net.loop(), 4);
  (void)provision_ephids(site1, net.loop(), 1);
  (void)provision_ephids(site2, net.loop(), 1);

  Observation obs;
  const std::string secret = "my-sensitive-query";
  // The observer controls the inter-AS link (but not the home ISP).
  net.network().add_tap([&](std::uint32_t from, std::uint32_t,
                            const wire::PacketView& p) {
    if (from != 10) return;
    ++obs.packets;
    core::EphId e;
    e.bytes = p.src_ephid();
    obs.source_ephids.insert(e.hex());
    // Try to read the payload (the wire image IS the packet).
    const std::string s(p.bytes().begin(), p.bytes().end());
    if (s.find(secret) != std::string::npos) ++obs.plaintext_hits;
    // Try to decode the EphID with the *other* AS's key (the observer may
    // collude with the far ISP, but not with the user's own ISP).
    if (far.state().codec.open(e).ok()) ++obs.decodable_ephids;
  });

  auto s1 = user.connect(site1.pool().entries().front()->cert, {},
                         [](Result<std::uint64_t>) {});
  host::Host::ConnectOptions o2;
  o2.app = "health";
  auto s2 = user.connect(site2.pool().entries().front()->cert, o2,
                         [](Result<std::uint64_t>) {});
  (void)user.send_data(*s1, to_bytes(secret + " about politics"));
  (void)user.send_data(*s2, to_bytes(secret + " about my condition"));
  net.run();
  return obs;
}

}  // namespace

int main() {
  std::printf("The observer records all inter-AS traffic of the user's "
              "ISP.\nTwo flows (news + health) run under two EphID "
              "policies:\n\n");
  std::printf("%-14s %10s %16s %18s %16s\n", "granularity", "packets",
              "source EphIDs", "plaintext leaks", "EphIDs decoded");

  for (auto g : {host::Granularity::per_flow, host::Granularity::per_host}) {
    const Observation obs = run_scenario(g);
    std::printf("%-14s %10zu %16zu %18zu %16zu\n",
                host::granularity_name(g), obs.packets,
                obs.source_ephids.size(), obs.plaintext_hits,
                obs.decodable_ephids);
  }

  std::printf(
      "\nReading the table:\n"
      " * plaintext leaks = 0     — pervasive network-layer encryption "
      "(§IV-D2).\n"
      " * EphIDs decoded = 0      — identifiers are opaque outside the "
      "issuing AS (§III-B).\n"
      " * per-flow: >=2 source EphIDs — the observer cannot tell the two\n"
      "   flows share a sender (sender-flow unlinkability, §II-B).\n"
      " * per-host: 1 source EphID  — all flows visibly share a sender;\n"
      "   identity still hidden, but linkability is the price of the\n"
      "   cheaper policy (§VIII-A).\n");
  return 0;
}

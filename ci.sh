#!/usr/bin/env bash
# CI entry point: tier-1 verification in three configurations.
#
#   1. Release with warnings-as-errors for all APNA targets
#   2. ASan + UBSan (Debug)
#   3. ThreadSanitizer over the router/core concurrency tests, the
#      control-plane pool test, the crypto-labelled suites (per-slot DRBG
#      independence, concurrent batch verification), the persistence
#      coordinator's multi-threaded sink, and the bounded scenario storms
#      (the sharded data plane's stress suite, the M-worker issuance pool
#      and the attack-script interleavings; bounded runtime — TSan over the
#      full integration matrix would dominate CI time for no extra signal)
#
# 1 and 2 must build every library, test, bench and example target and pass
# the full ctest suite. Run from the repo root: ./ci.sh
set -euo pipefail

cd "$(dirname "$0")"

jobs=$(nproc 2>/dev/null || echo 2)

run_config() {
  local name=$1
  shift
  local build_dir="build-${name}"
  echo "=== [${name}] configure"
  cmake -B "${build_dir}" -S . "$@"
  echo "=== [${name}] build"
  cmake --build "${build_dir}" -j "${jobs}"
  echo "=== [${name}] test"
  ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"
}

run_config ci       -DCMAKE_BUILD_TYPE=Release -DAPNA_WERROR=ON
# Zero-copy contract, explicitly in the Release leg: the operator-new-hook
# test must see 0 heap allocations per forwarded packet in steady state
# (optimized builds are where a copy/allocation regression actually shows).
ctest --test-dir build-ci --output-on-failure -L alloc
# Bench smoke, explicitly in the Release leg: tiny-iteration runs of the
# baseline-emitting benches (E1/E2/E7/E9) so they cannot compile- or
# bit-rot; their hard assertions (0 allocs/forwarded packet — including the
# loopback UDP leg — the E1 allocs/request ceiling, cached-vs-uncached and
# cross-tier crypto equivalence) run here too.
ctest --test-dir build-ci --output-on-failure -L bench
# Real-socket leg, explicitly in the Release leg: the transport conformance
# suite (both backends) plus the two-process loopback demo ride the `net`
# label; both skip cleanly where the environment forbids sockets. Bounded —
# loopback traffic only, smoke-sized windows.
ctest --test-dir build-ci --output-on-failure -L net
# Scenario leg, explicitly in Release: the Internet-scale scripts in --smoke
# trim (10⁶-host memory gate, attack storms, multi-AS sweep, DNS NXDOMAIN
# storm — each re-runs itself to verify byte-identical JSON) plus the
# scenario property tests. Release only: the 10⁶-host provisioning loop is
# what the gate measures, and sanitizer legs would spend minutes proving
# nothing new about it.
ctest --test-dir build-ci --output-on-failure -L scenario
# DNS resolver leg, explicitly in Release: the wire codec, sharded
# TTL/negative cache, domain-policy trie and upstream timeout/backoff suites
# (bench_smoke_e7 — the 50k-name bytes/name + negative-bound gates — rides
# the bench label above).
ctest --test-dir build-ci --output-on-failure -L dns
# Durability leg, explicitly in Release: journal framing under every
# truncation point and bit flip, snapshot self-checksums, fault-injected
# short-write/fsync failures and full AsState snapshot+journal recovery
# (the kill_recover scenario's bit-identical verdict gate rides the
# scenario label above).
ctest --test-dir build-ci --output-on-failure -L persist
# Forced-soft crypto leg, explicitly in Release: re-run the KAT suite with
# the backend capped to the portable C implementation. The wide SIMD tiers
# are equivalence-tested against soft in-process; this run is the converse
# guard — the soft fallback itself must stay correct on a host (or cap)
# without AES-NI/AVX2/VAES, where it IS the production path.
APNA_CRYPTO_BACKEND=soft ctest --test-dir build-ci --output-on-failure \
  -R '^crypto_kat_test$'

run_config sanitize -DCMAKE_BUILD_TYPE=Debug -DAPNA_SANITIZE=ON -DAPNA_WERROR=ON
# Wire-image property suites, explicitly under ASan/UBSan: PacketView::bind
# and Packet::parse over truncations/mutations are exactly the code where
# an out-of-bounds read would hide.
ctest --test-dir build-sanitize --output-on-failure -L wire
# Control-plane service fabric, explicitly under ASan/UBSan: the span codec
# (MsgWriter/MsgReader truncation properties) and the pooled issuance path
# are where a control-message bounds bug would hide.
ctest --test-dir build-sanitize --output-on-failure -L services
# Real-socket RX under ASan/UBSan: recvfrom into pooled storage, the
# MSG_TRUNC oversize arm, and bind() over adversarial datagrams are exactly
# where a syscall-boundary bounds bug would hide.
ctest --test-dir build-sanitize --output-on-failure -L net
# DNS resolver under ASan/UBSan: the name codec's per-byte truncation
# properties, the arena-backed cache (size-class slabs, backward-shift
# deletion) and the trie edge splits are where a bounds bug would hide.
ctest --test-dir build-sanitize --output-on-failure -L dns
# Durability layer under ASan/UBSan: replay_journal walks attacker-shaped
# bytes (every truncation point, every bit flip) and the snapshot reader
# parses self-described lengths — exactly where an out-of-bounds read or a
# torn-frame over-read would hide.
ctest --test-dir build-sanitize --output-on-failure -L persist

echo "=== [tsan] configure"
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DAPNA_TSAN=ON \
  -DAPNA_WERROR=ON -DAPNA_BUILD_BENCH=OFF -DAPNA_BUILD_EXAMPLES=OFF
echo "=== [tsan] build (concurrency-labelled tests only)"
# scenario_test rides the TSan leg too: its bounded storm scripts (bogus-
# EphID flood, shutoff storm, revocation waves) drive the multi-worker
# ForwardingPool, per-worker FlowCaches and the striped revocation tables
# under racing epoch bumps — the attack-time interleavings the fixed-size
# concurrency tests don't reach.
# dns_concurrency_test rides the TSan leg too: resolver lookups racing zone
# put/erase and domain-policy churn, plus the M-worker ResolverPool — the
# lock-striped cache's epoch-stamping discipline under real interleavings.
# The crypto label rides the TSan leg too: per-slot HMAC-DRBG independence
# and concurrent ed25519_verify_batch (crypto_concurrency_test) are exactly
# where a shared-scratch race would hide, and the KAT/property suites are
# cheap enough to keep as ballast.
# persist_test rides the TSan leg too: service threads (AA revocations, RS
# enrollment) funnel journal records through one PersistCoordinator sink
# while the main thread rotates snapshots — the group-commit buffer's
# locking discipline under real interleavings.
cmake --build build-tsan -j "${jobs}" \
  --target router_concurrency_test router_test core_test control_plane_test \
  flow_cache_test scenario_test dns_concurrency_test persist_test \
  crypto_test crypto_kat_test crypto_property_test crypto_concurrency_test
echo "=== [tsan] test"
ctest --test-dir build-tsan --output-on-failure -j "${jobs}" \
  -R '^(router_concurrency_test|router_test|core_test|control_plane_test|flow_cache_test|scenario_test|dns_concurrency_test|persist_test)$'
ctest --test-dir build-tsan --output-on-failure -j "${jobs}" -L crypto

echo "=== CI green: Release(-Werror), ASan/UBSan and TSan legs all passed"

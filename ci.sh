#!/usr/bin/env bash
# CI entry point: tier-1 verification in two configurations.
#
#   1. Release with warnings-as-errors for all APNA targets
#   2. ASan + UBSan (Debug)
#
# Both must build every library, test, bench and example target and pass the
# full ctest suite. Run from the repo root: ./ci.sh
set -euo pipefail

cd "$(dirname "$0")"

jobs=$(nproc 2>/dev/null || echo 2)

run_config() {
  local name=$1
  shift
  local build_dir="build-${name}"
  echo "=== [${name}] configure"
  cmake -B "${build_dir}" -S . "$@"
  echo "=== [${name}] build"
  cmake --build "${build_dir}" -j "${jobs}"
  echo "=== [${name}] test"
  ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"
}

run_config ci       -DCMAKE_BUILD_TYPE=Release -DAPNA_WERROR=ON
run_config sanitize -DCMAKE_BUILD_TYPE=Debug -DAPNA_SANITIZE=ON -DAPNA_WERROR=ON

echo "=== CI green: Release(-Werror) and ASan/UBSan both passed"

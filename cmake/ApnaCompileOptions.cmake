# Shared compile settings for every APNA target, exposed as the interface
# target `apna::options`. Layer libraries link it PUBLIC so tests, benches and
# examples inherit the include root and language level.

add_library(apna_options INTERFACE)
add_library(apna::options ALIAS apna_options)

target_compile_features(apna_options INTERFACE cxx_std_20)
# CMAKE_CURRENT_SOURCE_DIR here is the directory of the including listfile
# (the repo root), so this stays correct if apna is embedded via
# add_subdirectory from a super-project.
target_include_directories(apna_options INTERFACE "${CMAKE_CURRENT_SOURCE_DIR}/src")

if(CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
  target_compile_options(apna_options INTERFACE -Wall -Wextra)
  if(APNA_WERROR)
    target_compile_options(apna_options INTERFACE -Werror)
  endif()
  if(CMAKE_CXX_COMPILER_ID STREQUAL "GNU" AND CMAKE_CXX_COMPILER_VERSION VERSION_LESS 13)
    # GCC 12's -O2 inliner emits spurious -Wstringop-overflow / -Warray-bounds
    # reports from libstdc++ vector growth paths (GCC PR 105329 and friends).
    # Keep them as warnings so -Werror builds stay usable on this toolchain.
    # -Wrestrict: PR 105651 (std::string operator+ chains).
    target_compile_options(apna_options INTERFACE
      -Wno-error=stringop-overflow -Wno-error=array-bounds -Wno-error=restrict)
  endif()
endif()

if(APNA_SANITIZE AND APNA_TSAN)
  message(FATAL_ERROR "APNA_SANITIZE (ASan/UBSan) and APNA_TSAN (ThreadSanitizer) cannot be combined in one build")
endif()

if(APNA_SANITIZE)
  if(CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
    target_compile_options(apna_options INTERFACE
      -fsanitize=address,undefined -fno-omit-frame-pointer -fno-sanitize-recover=all)
    target_link_options(apna_options INTERFACE -fsanitize=address,undefined)
  else()
    message(WARNING "APNA_SANITIZE requested but compiler ${CMAKE_CXX_COMPILER_ID} is not supported; ignoring")
  endif()
endif()

if(APNA_TSAN)
  if(CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
    # ThreadSanitizer for the sharded data plane (router/core concurrency
    # tests). RelWithDebInfo is the intended build type: TSan at -O0 is too
    # slow for the stress tests' iteration counts.
    target_compile_options(apna_options INTERFACE
      -fsanitize=thread -fno-omit-frame-pointer -fno-sanitize-recover=all)
    target_link_options(apna_options INTERFACE -fsanitize=thread)
  else()
    message(WARNING "APNA_TSAN requested but compiler ${CMAKE_CXX_COMPILER_ID} is not supported; ignoring")
  endif()
endif()

# apna_add_library(<layer> SOURCES <srcs...> [DEPS <libs...>])
#
# Declares the per-layer static library `apna_<layer>` (alias `apna::<layer>`)
# with explicit link edges. Layering violations (an #include of a layer that is
# not in DEPS) fail at link time instead of silently working.
function(apna_add_library layer)
  cmake_parse_arguments(ARG "" "" "SOURCES;DEPS" ${ARGN})
  set(target apna_${layer})
  if(ARG_SOURCES)
    add_library(${target} STATIC ${ARG_SOURCES})
    target_link_libraries(${target} PUBLIC apna::options ${ARG_DEPS})
  else()
    # Header-only layer: interface target so dependents still get the edge.
    add_library(${target} INTERFACE)
    target_link_libraries(${target} INTERFACE apna::options ${ARG_DEPS})
  endif()
  add_library(apna::${layer} ALIAS ${target})
endfunction()

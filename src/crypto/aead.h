// Unified AEAD interface over the three CCA-secure suites in this repo.
//
// §IV-A: "any conventional CCA-secure scheme [27],[36] can be used" for
// payload encryption. We provide:
//   * chacha20_poly1305 — default; best worst-case choice (fast without any
//                         hardware support).
//   * aes128_gcm        — the GCM scheme the paper cites [27]; our GHASH is
//                         portable and slow, kept for interoperability and
//                         the E9 ablation.
//   * aes128_ctr_cmac   — Encrypt-then-MAC generic composition [7], the same
//                         paradigm the EphID construction uses (§V-A1); the
//                         fastest suite on AES-NI hardware (see E9).
// The suite is negotiated in the connection handshake; bench E9 compares all
// three.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "util/bytes.h"

namespace apna::crypto {

enum class AeadSuite : std::uint8_t {
  chacha20_poly1305 = 1,
  aes128_gcm = 2,
  aes128_ctr_cmac = 3,
};

const char* aead_suite_name(AeadSuite s);

/// Authenticated encryption with associated data. Stateless w.r.t. nonces:
/// callers manage nonce uniqueness (sessions use a send counter).
class Aead {
 public:
  static constexpr std::size_t kNonceSize = 12;
  static constexpr std::size_t kTagSize = 16;

  virtual ~Aead() = default;

  virtual AeadSuite suite() const = 0;

  /// Returns ciphertext ‖ 16-byte tag.
  virtual Bytes seal(ByteSpan nonce12, ByteSpan aad,
                     ByteSpan plaintext) const = 0;

  /// Verifies + decrypts; nullopt on any failure (CCA security: the caller
  /// learns nothing beyond "invalid").
  virtual std::optional<Bytes> open(ByteSpan nonce12, ByteSpan aad,
                                    ByteSpan ciphertext_and_tag) const = 0;

  /// Constructs the requested suite from 32 bytes of keying material (AES
  /// suites derive their 16-byte key from it via HKDF).
  static std::unique_ptr<Aead> create(AeadSuite suite, ByteSpan key32);
};

}  // namespace apna::crypto

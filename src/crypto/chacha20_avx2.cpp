// 8-way ChaCha20 keystream kernel, AVX2 vertical vectorization: every state
// word lives in one ymm register with one 32-bit lane per block, so the
// twenty rounds run on all eight blocks at once and only the final
// transpose touches lane boundaries. Compiled with -mavx2; callers gate on
// chacha20_avx2_supported().
#include <cstdint>
#include <cstring>

#include "crypto/chacha20.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define APNA_HAVE_CHACHA_AVX2_BUILD 1
#endif

namespace apna::crypto::detail {

bool chacha20_avx2_supported() {
#if defined(APNA_HAVE_CHACHA_AVX2_BUILD)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

#if defined(APNA_HAVE_CHACHA_AVX2_BUILD)

namespace {

inline __m256i rotl7(__m256i x) {
  return _mm256_or_si256(_mm256_slli_epi32(x, 7), _mm256_srli_epi32(x, 25));
}
inline __m256i rotl12(__m256i x) {
  return _mm256_or_si256(_mm256_slli_epi32(x, 12), _mm256_srli_epi32(x, 20));
}
// 16- and 8-bit rotations are byte permutations: one vpshufb beats two
// shifts plus an or.
inline __m256i rotl16(__m256i x) {
  const __m256i m = _mm256_set_epi8(13, 12, 15, 14, 9, 8, 11, 10,  //
                                    5, 4, 7, 6, 1, 0, 3, 2,        //
                                    13, 12, 15, 14, 9, 8, 11, 10,  //
                                    5, 4, 7, 6, 1, 0, 3, 2);
  return _mm256_shuffle_epi8(x, m);
}
inline __m256i rotl8(__m256i x) {
  const __m256i m = _mm256_set_epi8(14, 13, 12, 15, 10, 9, 8, 11,  //
                                    6, 5, 4, 7, 2, 1, 0, 3,        //
                                    14, 13, 12, 15, 10, 9, 8, 11,  //
                                    6, 5, 4, 7, 2, 1, 0, 3);
  return _mm256_shuffle_epi8(x, m);
}

inline void qround(__m256i& a, __m256i& b, __m256i& c, __m256i& d) {
  a = _mm256_add_epi32(a, b); d = rotl16(_mm256_xor_si256(d, a));
  c = _mm256_add_epi32(c, d); b = rotl12(_mm256_xor_si256(b, c));
  a = _mm256_add_epi32(a, b); d = rotl8(_mm256_xor_si256(d, a));
  c = _mm256_add_epi32(c, d); b = rotl7(_mm256_xor_si256(b, c));
}

/// Transposes rows r[0..7] (8 × 32-bit lanes each) in place: output row j
/// holds the former lane j of every input row.
inline void transpose8x8(__m256i r[8]) {
  __m256i t[8], u[8];
  t[0] = _mm256_unpacklo_epi32(r[0], r[1]);
  t[1] = _mm256_unpackhi_epi32(r[0], r[1]);
  t[2] = _mm256_unpacklo_epi32(r[2], r[3]);
  t[3] = _mm256_unpackhi_epi32(r[2], r[3]);
  t[4] = _mm256_unpacklo_epi32(r[4], r[5]);
  t[5] = _mm256_unpackhi_epi32(r[4], r[5]);
  t[6] = _mm256_unpacklo_epi32(r[6], r[7]);
  t[7] = _mm256_unpackhi_epi32(r[6], r[7]);
  u[0] = _mm256_unpacklo_epi64(t[0], t[2]);
  u[1] = _mm256_unpackhi_epi64(t[0], t[2]);
  u[2] = _mm256_unpacklo_epi64(t[1], t[3]);
  u[3] = _mm256_unpackhi_epi64(t[1], t[3]);
  u[4] = _mm256_unpacklo_epi64(t[4], t[6]);
  u[5] = _mm256_unpackhi_epi64(t[4], t[6]);
  u[6] = _mm256_unpacklo_epi64(t[5], t[7]);
  u[7] = _mm256_unpackhi_epi64(t[5], t[7]);
  r[0] = _mm256_permute2x128_si256(u[0], u[4], 0x20);
  r[1] = _mm256_permute2x128_si256(u[1], u[5], 0x20);
  r[2] = _mm256_permute2x128_si256(u[2], u[6], 0x20);
  r[3] = _mm256_permute2x128_si256(u[3], u[7], 0x20);
  r[4] = _mm256_permute2x128_si256(u[0], u[4], 0x31);
  r[5] = _mm256_permute2x128_si256(u[1], u[5], 0x31);
  r[6] = _mm256_permute2x128_si256(u[2], u[6], 0x31);
  r[7] = _mm256_permute2x128_si256(u[3], u[7], 0x31);
}

inline std::uint32_t le32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;  // x86 is little-endian
}

}  // namespace

void chacha20_blocks8_avx2(const std::uint8_t key[32], std::uint32_t counter,
                           const std::uint8_t nonce[12],
                           std::uint8_t out[512]) {
  std::uint32_t init[16];
  init[0] = 0x61707865; init[1] = 0x3320646e;
  init[2] = 0x79622d32; init[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) init[4 + i] = le32(key + 4 * i);
  init[12] = counter;
  for (int i = 0; i < 3; ++i) init[13 + i] = le32(nonce + 4 * i);

  __m256i s[16];
  for (int i = 0; i < 16; ++i) s[i] = _mm256_set1_epi32(
      static_cast<int>(init[i]));
  // Per-lane counters counter+0 .. counter+7 (wrap mod 2^32, matching the
  // scalar sequence).
  s[12] = _mm256_add_epi32(s[12], _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7));
  const __m256i c12 = s[12];

  __m256i w[16];
  for (int i = 0; i < 16; ++i) w[i] = s[i];
  for (int round = 0; round < 10; ++round) {
    qround(w[0], w[4], w[8], w[12]);
    qround(w[1], w[5], w[9], w[13]);
    qround(w[2], w[6], w[10], w[14]);
    qround(w[3], w[7], w[11], w[15]);
    qround(w[0], w[5], w[10], w[15]);
    qround(w[1], w[6], w[11], w[12]);
    qround(w[2], w[7], w[8], w[13]);
    qround(w[3], w[4], w[9], w[14]);
  }
  for (int i = 0; i < 16; ++i)
    w[i] = _mm256_add_epi32(w[i], i == 12 ? c12 : s[i]);

  // Two 8x8 transposes (words 0-7 and 8-15); block j is then row j of the
  // first group followed by row j of the second.
  transpose8x8(w);
  transpose8x8(w + 8);
  for (int j = 0; j < 8; ++j) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 64 * j), w[j]);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 64 * j + 32),
                        w[8 + j]);
  }
}

#else  // !APNA_HAVE_CHACHA_AVX2_BUILD

void chacha20_blocks8_avx2(const std::uint8_t key[32], std::uint32_t counter,
                           const std::uint8_t nonce[12],
                           std::uint8_t out[512]) {
  chacha20_blocks4_sse2(key, counter, nonce, out);
  chacha20_blocks4_sse2(key, counter + 4, nonce, out + 256);
}

#endif

}  // namespace apna::crypto::detail

#include "crypto/gcm.h"

#include <cstring>

#include "crypto/modes.h"

namespace apna::crypto {

namespace {

// GF(2^128) multiplication in GCM's reflected-bit convention
// (SP 800-38D algorithm 1). z = x * y.
void gf128_mul(const std::uint8_t x[16], const std::uint8_t y[16],
               std::uint8_t z[16]) {
  std::uint64_t v_hi = load_be64(y);
  std::uint64_t v_lo = load_be64(y + 8);
  std::uint64_t z_hi = 0, z_lo = 0;

  for (int i = 0; i < 128; ++i) {
    const int byte = i >> 3;
    const int bit = 7 - (i & 7);
    if ((x[byte] >> bit) & 1) {
      z_hi ^= v_hi;
      z_lo ^= v_lo;
    }
    const bool lsb = (v_lo & 1) != 0;
    v_lo = (v_lo >> 1) | (v_hi << 63);
    v_hi >>= 1;
    if (lsb) v_hi ^= 0xe100000000000000ULL;  // R = 11100001 ‖ 0^120
  }
  store_be64(z, z_hi);
  store_be64(z + 8, z_lo);
}

void ghash_update(const std::uint8_t h[16], std::uint8_t y[16],
                  ByteSpan data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const std::size_t n = std::min<std::size_t>(16, data.size() - off);
    for (std::size_t i = 0; i < n; ++i) y[i] ^= data[off + i];
    std::uint8_t tmp[16];
    gf128_mul(y, h, tmp);
    std::memcpy(y, tmp, 16);
    off += n;
  }
}

}  // namespace

AesGcm::AesGcm(ByteSpan key16) : aes_(key16) {
  std::array<std::uint8_t, 16> zero{};
  aes_.encrypt_block(zero.data(), h_.data());
}

std::array<std::uint8_t, 16> AesGcm::ghash(ByteSpan aad, ByteSpan ct) const {
  std::array<std::uint8_t, 16> y{};
  ghash_update(h_.data(), y.data(), aad);
  ghash_update(h_.data(), y.data(), ct);
  std::uint8_t lengths[16];
  store_be64(lengths, static_cast<std::uint64_t>(aad.size()) * 8);
  store_be64(lengths + 8, static_cast<std::uint64_t>(ct.size()) * 8);
  ghash_update(h_.data(), y.data(), ByteSpan(lengths, 16));
  return y;
}

Bytes AesGcm::seal(ByteSpan nonce, ByteSpan aad, ByteSpan plaintext) const {
  std::uint8_t j0[16];
  std::memcpy(j0, nonce.data(), kNonceSize);
  store_be32(j0 + 12, 1);

  std::uint8_t ctr[16];
  std::memcpy(ctr, j0, 16);
  store_be32(ctr + 12, 2);

  Bytes out(plaintext.size() + kTagSize);
  aes_ctr_xcrypt(aes_, ctr, plaintext, MutByteSpan(out.data(), plaintext.size()));

  auto s = ghash(aad, ByteSpan(out.data(), plaintext.size()));
  std::uint8_t ek_j0[16];
  aes_.encrypt_block(j0, ek_j0);
  for (int i = 0; i < 16; ++i)
    out[plaintext.size() + i] = static_cast<std::uint8_t>(s[i] ^ ek_j0[i]);
  return out;
}

std::optional<Bytes> AesGcm::open(ByteSpan nonce, ByteSpan aad,
                                  ByteSpan ciphertext_and_tag) const {
  if (nonce.size() != kNonceSize) return std::nullopt;
  if (ciphertext_and_tag.size() < kTagSize) return std::nullopt;
  const std::size_t ct_len = ciphertext_and_tag.size() - kTagSize;
  ByteSpan ct = ciphertext_and_tag.subspan(0, ct_len);
  ByteSpan tag = ciphertext_and_tag.subspan(ct_len);

  std::uint8_t j0[16];
  std::memcpy(j0, nonce.data(), kNonceSize);
  store_be32(j0 + 12, 1);

  auto s = ghash(aad, ct);
  std::uint8_t ek_j0[16];
  aes_.encrypt_block(j0, ek_j0);
  std::uint8_t expect[16];
  for (int i = 0; i < 16; ++i)
    expect[i] = static_cast<std::uint8_t>(s[i] ^ ek_j0[i]);
  if (!ct_equal(ByteSpan(expect, 16), tag)) return std::nullopt;

  std::uint8_t ctr[16];
  std::memcpy(ctr, j0, 16);
  store_be32(ctr + 12, 2);
  Bytes pt(ct_len);
  aes_ctr_xcrypt(aes_, ctr, ct, pt);
  return pt;
}

}  // namespace apna::crypto

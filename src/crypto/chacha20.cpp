#include "crypto/chacha20.h"

#include <cstring>

#include "crypto/aes.h"

#if defined(__x86_64__) || defined(__i386__)
#include <emmintrin.h>
#define APNA_HAVE_CHACHA_SSE2_BUILD 1
#endif

namespace apna::crypto {

namespace {

inline std::uint32_t rotl32(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) {
  a += b; d ^= a; d = rotl32(d, 16);
  c += d; b ^= c; b = rotl32(b, 12);
  a += b; d ^= a; d = rotl32(d, 8);
  c += d; b ^= c; b = rotl32(b, 7);
}

}  // namespace

void chacha20_block(const std::uint8_t key[32], std::uint32_t counter,
                    const std::uint8_t nonce[12], std::uint8_t out[64]) {
  std::uint32_t s[16];
  s[0] = 0x61707865; s[1] = 0x3320646e; s[2] = 0x79622d32; s[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) s[4 + i] = load_le32(key + 4 * i);
  s[12] = counter;
  for (int i = 0; i < 3; ++i) s[13 + i] = load_le32(nonce + 4 * i);

  std::uint32_t w[16];
  std::memcpy(w, s, sizeof(w));
  for (int round = 0; round < 10; ++round) {
    quarter_round(w[0], w[4], w[8], w[12]);
    quarter_round(w[1], w[5], w[9], w[13]);
    quarter_round(w[2], w[6], w[10], w[14]);
    quarter_round(w[3], w[7], w[11], w[15]);
    quarter_round(w[0], w[5], w[10], w[15]);
    quarter_round(w[1], w[6], w[11], w[12]);
    quarter_round(w[2], w[7], w[8], w[13]);
    quarter_round(w[3], w[4], w[9], w[14]);
  }
  for (int i = 0; i < 16; ++i) store_le32(out + 4 * i, w[i] + s[i]);
}

namespace detail {

#if defined(APNA_HAVE_CHACHA_SSE2_BUILD)

namespace {

inline __m128i rotl_sse2(__m128i x, int n) {
  return _mm_or_si128(_mm_slli_epi32(x, n), _mm_srli_epi32(x, 32 - n));
}

inline void qround_sse2(__m128i& a, __m128i& b, __m128i& c, __m128i& d) {
  a = _mm_add_epi32(a, b); d = rotl_sse2(_mm_xor_si128(d, a), 16);
  c = _mm_add_epi32(c, d); b = rotl_sse2(_mm_xor_si128(b, c), 12);
  a = _mm_add_epi32(a, b); d = rotl_sse2(_mm_xor_si128(d, a), 8);
  c = _mm_add_epi32(c, d); b = rotl_sse2(_mm_xor_si128(b, c), 7);
}

/// Transposes rows r[0..3] (4 × 32-bit lanes each) in place.
inline void transpose4x4_sse2(__m128i r[4]) {
  const __m128i t0 = _mm_unpacklo_epi32(r[0], r[1]);
  const __m128i t1 = _mm_unpackhi_epi32(r[0], r[1]);
  const __m128i t2 = _mm_unpacklo_epi32(r[2], r[3]);
  const __m128i t3 = _mm_unpackhi_epi32(r[2], r[3]);
  r[0] = _mm_unpacklo_epi64(t0, t2);
  r[1] = _mm_unpackhi_epi64(t0, t2);
  r[2] = _mm_unpacklo_epi64(t1, t3);
  r[3] = _mm_unpackhi_epi64(t1, t3);
}

}  // namespace

void chacha20_blocks4_sse2(const std::uint8_t key[32], std::uint32_t counter,
                           const std::uint8_t nonce[12],
                           std::uint8_t out[256]) {
  std::uint32_t init[16];
  init[0] = 0x61707865; init[1] = 0x3320646e;
  init[2] = 0x79622d32; init[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) init[4 + i] = load_le32(key + 4 * i);
  init[12] = counter;
  for (int i = 0; i < 3; ++i) init[13 + i] = load_le32(nonce + 4 * i);

  __m128i s[16];
  for (int i = 0; i < 16; ++i)
    s[i] = _mm_set1_epi32(static_cast<int>(init[i]));
  s[12] = _mm_add_epi32(s[12], _mm_setr_epi32(0, 1, 2, 3));
  const __m128i c12 = s[12];

  __m128i w[16];
  for (int i = 0; i < 16; ++i) w[i] = s[i];
  for (int round = 0; round < 10; ++round) {
    qround_sse2(w[0], w[4], w[8], w[12]);
    qround_sse2(w[1], w[5], w[9], w[13]);
    qround_sse2(w[2], w[6], w[10], w[14]);
    qround_sse2(w[3], w[7], w[11], w[15]);
    qround_sse2(w[0], w[5], w[10], w[15]);
    qround_sse2(w[1], w[6], w[11], w[12]);
    qround_sse2(w[2], w[7], w[8], w[13]);
    qround_sse2(w[3], w[4], w[9], w[14]);
  }
  for (int i = 0; i < 16; ++i)
    w[i] = _mm_add_epi32(w[i], i == 12 ? c12 : s[i]);

  // Four 4x4 transposes; block j is row j of each word-quad in order.
  transpose4x4_sse2(w);
  transpose4x4_sse2(w + 4);
  transpose4x4_sse2(w + 8);
  transpose4x4_sse2(w + 12);
  for (int j = 0; j < 4; ++j)
    for (int g = 0; g < 4; ++g)
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(out + 64 * j + 16 * g), w[4 * g + j]);
}

#else  // !APNA_HAVE_CHACHA_SSE2_BUILD

void chacha20_blocks4_sse2(const std::uint8_t key[32], std::uint32_t counter,
                           const std::uint8_t nonce[12],
                           std::uint8_t out[256]) {
  for (int j = 0; j < 4; ++j)
    chacha20_block(key, counter + static_cast<std::uint32_t>(j), nonce,
                   out + 64 * j);
}

#endif

}  // namespace detail

namespace {

/// ChaCha20 lane width, picked once: 8 (AVX2), 4 (SSE2) or 1 (scalar).
/// Honors the APNA_CRYPTO_BACKEND cap — `soft` forces scalar, `aesni` caps
/// at SSE2 (the paper-baseline x86 level), avx2/vaes allow the 8-way path.
std::size_t chacha_lanes() {
  using Backend = Aes128::Backend;
  static const std::size_t lanes = [] {
    const Backend cap = detail::env_backend_cap();
    if (cap == Backend::soft) return std::size_t{1};
#if defined(APNA_HAVE_CHACHA_SSE2_BUILD)
    const bool avx2_ok =
        (cap == Backend::auto_detect || cap >= Backend::avx2) &&
        detail::chacha20_avx2_supported();
    return avx2_ok ? std::size_t{8} : std::size_t{4};
#else
    return std::size_t{1};
#endif
  }();
  return lanes;
}

}  // namespace

void chacha20_xcrypt(const std::uint8_t key[32], std::uint32_t counter,
                     const std::uint8_t nonce[12], ByteSpan in,
                     MutByteSpan out) {
  const std::size_t lanes = chacha_lanes();
  std::uint8_t ks[8 * 64];
  std::size_t off = 0;
  while (off < in.size()) {
    const std::size_t need = (in.size() - off + 63) / 64;
    std::size_t gen;
    if (lanes == 8 && need >= 8) {
      detail::chacha20_blocks8_avx2(key, counter, nonce, ks);
      gen = 8;
    } else if (lanes >= 4 && need >= 4) {
      detail::chacha20_blocks4_sse2(key, counter, nonce, ks);
      gen = 4;
    } else {
      chacha20_block(key, counter, nonce, ks);
      gen = 1;
    }
    counter += static_cast<std::uint32_t>(gen);
    const std::size_t n = std::min(in.size() - off, gen * 64);
    for (std::size_t i = 0; i < n; ++i)
      out[off + i] = static_cast<std::uint8_t>(in[off + i] ^ ks[i]);
    off += n;
  }
}

namespace {

/// Incremental Poly1305 accumulator (5 x 26-bit limbs mod 2^130-5), the
/// shared core of the one-shot poly1305() and the streaming AEAD tag (which
/// authenticates aad ‖ pad ‖ ct ‖ pad ‖ lens WITHOUT materializing that
/// concatenation — the allocation-free seal_into/open_into path).
struct Poly1305Core {
  std::uint32_t r0, r1, r2, r3, r4;
  std::uint32_t s1, s2, s3, s4;
  std::uint32_t h0 = 0, h1 = 0, h2 = 0, h3 = 0, h4 = 0;

  explicit Poly1305Core(const std::uint8_t key[32]) {
    // r with RFC 8439 clamping.
    r0 = load_le32(key + 0) & 0x3ffffff;
    r1 = (load_le32(key + 3) >> 2) & 0x3ffff03;
    r2 = (load_le32(key + 6) >> 4) & 0x3ffc0ff;
    r3 = (load_le32(key + 9) >> 6) & 0x3f03fff;
    r4 = (load_le32(key + 12) >> 8) & 0x00fffff;
    s1 = r1 * 5; s2 = r2 * 5; s3 = r3 * 5; s4 = r4 * 5;
  }

  /// Absorbs one 17-byte padded block (block[n] = 1 marks the 2^(8n) bit;
  /// bytes beyond it are zero).
  void absorb(const std::uint8_t block[17]) {
    h0 += load_le32(block + 0) & 0x3ffffff;
    h1 += (load_le32(block + 3) >> 2) & 0x3ffffff;
    h2 += (load_le32(block + 6) >> 4) & 0x3ffffff;
    h3 += (load_le32(block + 9) >> 6) & 0x3ffffff;
    h4 += (load_le32(block + 12) >> 8) | (std::uint32_t{block[16]} << 24);

    const std::uint64_t d0 =
        (std::uint64_t)h0 * r0 + (std::uint64_t)h1 * s4 +
        (std::uint64_t)h2 * s3 + (std::uint64_t)h3 * s2 +
        (std::uint64_t)h4 * s1;
    const std::uint64_t d1 =
        (std::uint64_t)h0 * r1 + (std::uint64_t)h1 * r0 +
        (std::uint64_t)h2 * s4 + (std::uint64_t)h3 * s3 +
        (std::uint64_t)h4 * s2;
    const std::uint64_t d2 =
        (std::uint64_t)h0 * r2 + (std::uint64_t)h1 * r1 +
        (std::uint64_t)h2 * r0 + (std::uint64_t)h3 * s4 +
        (std::uint64_t)h4 * s3;
    const std::uint64_t d3 =
        (std::uint64_t)h0 * r3 + (std::uint64_t)h1 * r2 +
        (std::uint64_t)h2 * r1 + (std::uint64_t)h3 * r0 +
        (std::uint64_t)h4 * s4;
    const std::uint64_t d4 =
        (std::uint64_t)h0 * r4 + (std::uint64_t)h1 * r3 +
        (std::uint64_t)h2 * r2 + (std::uint64_t)h3 * r1 +
        (std::uint64_t)h4 * r0;

    std::uint64_t c;
    c = d0 >> 26; h0 = d0 & 0x3ffffff;
    const std::uint64_t e1 = d1 + c; c = e1 >> 26; h1 = e1 & 0x3ffffff;
    const std::uint64_t e2 = d2 + c; c = e2 >> 26; h2 = e2 & 0x3ffffff;
    const std::uint64_t e3 = d3 + c; c = e3 >> 26; h3 = e3 & 0x3ffffff;
    const std::uint64_t e4 = d4 + c; c = e4 >> 26;
    h4 = static_cast<std::uint32_t>(e4 & 0x3ffffff);
    h0 += static_cast<std::uint32_t>(c * 5);
    h1 += h0 >> 26; h0 &= 0x3ffffff;
  }

  /// Absorbs one FULL 16-byte block (the 2^128 marker implied) — the AEAD
  /// mac data is always 16-aligned.
  void absorb_full(const std::uint8_t block16[16]) {
    std::uint8_t block[17];
    std::memcpy(block, block16, 16);
    block[16] = 1;
    absorb(block);
  }

  std::array<std::uint8_t, 16> finish(const std::uint8_t key[32]) {
    // Full carry and reduction mod 2^130-5.
    std::uint32_t c;
    c = h1 >> 26; h1 &= 0x3ffffff; h2 += c;
    c = h2 >> 26; h2 &= 0x3ffffff; h3 += c;
    c = h3 >> 26; h3 &= 0x3ffffff; h4 += c;
    c = h4 >> 26; h4 &= 0x3ffffff; h0 += c * 5;
    c = h0 >> 26; h0 &= 0x3ffffff; h1 += c;

    // Compute h + -p and select.
    std::uint32_t g0 = h0 + 5; c = g0 >> 26; g0 &= 0x3ffffff;
    std::uint32_t g1 = h1 + c; c = g1 >> 26; g1 &= 0x3ffffff;
    std::uint32_t g2 = h2 + c; c = g2 >> 26; g2 &= 0x3ffffff;
    std::uint32_t g3 = h3 + c; c = g3 >> 26; g3 &= 0x3ffffff;
    std::uint32_t g4 = h4 + c - (1u << 26);

    const std::uint32_t mask = (g4 >> 31) - 1;  // all-ones if h >= p
    h0 = (h0 & ~mask) | (g0 & mask);
    h1 = (h1 & ~mask) | (g1 & mask);
    h2 = (h2 & ~mask) | (g2 & mask);
    h3 = (h3 & ~mask) | (g3 & mask);
    h4 = (h4 & ~mask) | (g4 & mask);

    // h = h % 2^128, then add s = key[16..32].
    std::uint64_t f0 = (std::uint64_t)(h0 | (h1 << 26)) + load_le32(key + 16);
    std::uint64_t f1 =
        (std::uint64_t)((h1 >> 6) | (h2 << 20)) + load_le32(key + 20);
    std::uint64_t f2 =
        (std::uint64_t)((h2 >> 12) | (h3 << 14)) + load_le32(key + 24);
    std::uint64_t f3 =
        (std::uint64_t)((h3 >> 18) | (h4 << 8)) + load_le32(key + 28);
    f1 += f0 >> 32;
    f2 += f1 >> 32;
    f3 += f2 >> 32;

    std::array<std::uint8_t, 16> tag;
    store_le32(tag.data() + 0, static_cast<std::uint32_t>(f0));
    store_le32(tag.data() + 4, static_cast<std::uint32_t>(f1));
    store_le32(tag.data() + 8, static_cast<std::uint32_t>(f2));
    store_le32(tag.data() + 12, static_cast<std::uint32_t>(f3));
    return tag;
  }
};

/// Streams a span into the core at 16-byte granularity with zero padding
/// to the next block boundary (the RFC 8439 AEAD layout) — no
/// concatenation buffer.
void aead_absorb_padded(Poly1305Core& core, ByteSpan data) {
  std::size_t off = 0;
  for (; off + 16 <= data.size(); off += 16) core.absorb_full(data.data() + off);
  if (off < data.size()) {
    std::uint8_t block[16] = {};
    std::memcpy(block, data.data() + off, data.size() - off);
    core.absorb_full(block);
  }
}

/// The RFC 8439 §2.8 tag over aad ‖ pad ‖ ct ‖ pad ‖ len(aad) ‖ len(ct).
std::array<std::uint8_t, 16> aead_tag(const std::uint8_t otk[32], ByteSpan aad,
                                      ByteSpan ct) {
  Poly1305Core core(otk);
  aead_absorb_padded(core, aad);
  aead_absorb_padded(core, ct);
  std::uint8_t lens[16];
  store_le64(lens, aad.size());
  store_le64(lens + 8, ct.size());
  core.absorb_full(lens);
  return core.finish(otk);
}

}  // namespace

std::array<std::uint8_t, 16> poly1305(const std::uint8_t key[32],
                                      ByteSpan msg) {
  Poly1305Core core(key);
  std::size_t off = 0;
  while (off < msg.size()) {
    const std::size_t n = std::min<std::size_t>(16, msg.size() - off);
    std::uint8_t block[17] = {};
    std::memcpy(block, msg.data() + off, n);
    block[n] = 1;  // the 2^(8*n) bit
    core.absorb(block);
    off += n;
  }
  return core.finish(key);
}

ChaCha20Poly1305::ChaCha20Poly1305(ByteSpan key32) {
  std::memcpy(key_.data(), key32.data(), 32);
}

void ChaCha20Poly1305::seal_into(ByteSpan nonce, ByteSpan aad,
                                 ByteSpan plaintext, MutByteSpan out) const {
  std::uint8_t otk[64];
  chacha20_block(key_.data(), 0, nonce.data(), otk);

  chacha20_xcrypt(key_.data(), 1, nonce.data(), plaintext,
                  MutByteSpan(out.data(), plaintext.size()));
  const auto tag =
      aead_tag(otk, aad, ByteSpan(out.data(), plaintext.size()));
  std::memcpy(out.data() + plaintext.size(), tag.data(), kTagSize);
}

bool ChaCha20Poly1305::open_into(ByteSpan nonce, ByteSpan aad,
                                 ByteSpan ciphertext_and_tag,
                                 MutByteSpan plaintext_out) const {
  if (nonce.size() != kNonceSize) return false;
  if (ciphertext_and_tag.size() < kTagSize) return false;
  const std::size_t ct_len = ciphertext_and_tag.size() - kTagSize;
  ByteSpan ct = ciphertext_and_tag.subspan(0, ct_len);
  ByteSpan tag = ciphertext_and_tag.subspan(ct_len);

  std::uint8_t otk[64];
  chacha20_block(key_.data(), 0, nonce.data(), otk);
  const auto expect = aead_tag(otk, aad, ct);
  if (!ct_equal(expect, tag)) return false;

  chacha20_xcrypt(key_.data(), 1, nonce.data(), ct, plaintext_out);
  return true;
}

Bytes ChaCha20Poly1305::seal(ByteSpan nonce, ByteSpan aad,
                             ByteSpan plaintext) const {
  Bytes out(plaintext.size() + kTagSize);
  seal_into(nonce, aad, plaintext, out);
  return out;
}

std::optional<Bytes> ChaCha20Poly1305::open(ByteSpan nonce, ByteSpan aad,
                                            ByteSpan ciphertext_and_tag) const {
  if (nonce.size() != kNonceSize) return std::nullopt;
  if (ciphertext_and_tag.size() < kTagSize) return std::nullopt;
  Bytes pt(ciphertext_and_tag.size() - kTagSize);
  if (!open_into(nonce, aad, ciphertext_and_tag, pt)) return std::nullopt;
  return pt;
}

}  // namespace apna::crypto

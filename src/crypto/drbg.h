// HMAC-DRBG (NIST SP 800-90A, HMAC-SHA256 variant).
//
// The pooled services (ServicePool, ResolverPool) give every worker slot its
// own DRBG so randomness never crosses a thread boundary: no shared-state
// contention on the hot path, and pooled output stays deterministic per
// (seed, burst index) regardless of worker count — each request's generator
// is reinstantiated from (seed, index), so which slot serves it cannot
// matter. The construction is the standard K/V HMAC chain:
//
//   update(data):  K = HMAC(K, V ‖ 0x00 ‖ data); V = HMAC(K, V)
//                  [and the 0x01 round when data is non-empty]
//   generate:      V = HMAC(K, V) repeatedly, output = the V chain
//
// matching the fips140 KAT shapes (drbg_nopr_hmac_sha256 /
// drbg_pr_hmac_sha256) pinned in crypto_kat_test.
#pragma once

#include <array>
#include <cstdint>

#include "crypto/rng.h"
#include "util/bytes.h"

namespace apna::crypto {

/// Deterministic HMAC-SHA256 DRBG. Not thread-safe — by design one instance
/// per worker slot (or per request); share nothing.
class HmacDrbg final : public Rng {
 public:
  /// SP 800-90A caps HMAC-DRBG at 2^48 generate calls between reseeds; the
  /// constructor accepts a smaller interval for testing the reseed path.
  static constexpr std::uint64_t kReseedInterval = 1ull << 48;

  /// Instantiate from entropy ‖ nonce ‖ personalization (any lengths; the
  /// seed material is their concatenation, per the spec).
  HmacDrbg(ByteSpan entropy, ByteSpan nonce, ByteSpan personalization,
           std::uint64_t reseed_interval = kReseedInterval);

  /// Convenience deterministic form for the pooled services: seed material
  /// is the 8-byte little-endian seed ‖ 8-byte little-endian stream index.
  HmacDrbg(std::uint64_t seed, std::uint64_t stream);

  /// SP 800-90A Reseed: mixes fresh entropy (and optional additional input)
  /// into K/V and resets the generate counter.
  void reseed(ByteSpan entropy, ByteSpan additional = {});

  /// SP 800-90A Generate. Returns false — producing nothing — when the
  /// reseed interval has been exhausted; the caller must reseed() first.
  [[nodiscard]] bool generate(MutByteSpan out, ByteSpan additional = {});

  /// True when the next generate() would demand a reseed.
  bool needs_reseed() const { return reseed_counter_ > reseed_interval_; }

  /// Generate calls since instantiation/reseed (starts at 1, per spec).
  std::uint64_t reseed_counter() const { return reseed_counter_; }

  /// Rng interface. With the default 2^48 interval this never trips the
  /// reseed requirement in practice; if a test-sized interval does trip it,
  /// fill() performs a deterministic state-stir reseed (entropy-free
  /// update) as a safety valve so the Rng contract (fill always succeeds)
  /// holds. Callers needing SP 800-90A semantics use generate()/reseed().
  void fill(MutByteSpan out) override;

 private:
  void update(ByteSpan data1, ByteSpan data2 = {}, ByteSpan data3 = {});

  std::array<std::uint8_t, 32> key_{};
  std::array<std::uint8_t, 32> v_{};
  std::uint64_t reseed_counter_ = 0;
  std::uint64_t reseed_interval_ = kReseedInterval;
};

}  // namespace apna::crypto

#include "crypto/drbg.h"

#include <cstring>

#include "crypto/sha2.h"

namespace apna::crypto {

namespace {

/// Streaming HMAC-SHA256 with a 32-byte key over up to five data pieces —
/// heap-free (ServicePool builds one DRBG per request; the reply path is
/// alloc-budgeted by bench_e1).
std::array<std::uint8_t, 32> hmac32(const std::array<std::uint8_t, 32>& key,
                                    ByteSpan p0, ByteSpan p1 = {},
                                    ByteSpan p2 = {}, ByteSpan p3 = {},
                                    ByteSpan p4 = {}) {
  std::array<std::uint8_t, 64> pad;
  pad.fill(0x36);
  for (std::size_t i = 0; i < 32; ++i) pad[i] ^= key[i];
  Sha256 inner;
  inner.update(pad);
  inner.update(p0);
  inner.update(p1);
  inner.update(p2);
  inner.update(p3);
  inner.update(p4);
  const auto inner_digest = inner.finish();
  pad.fill(0x5c);
  for (std::size_t i = 0; i < 32; ++i) pad[i] ^= key[i];
  Sha256 outer;
  outer.update(pad);
  outer.update(inner_digest);
  return outer.finish();
}

/// HMAC(K, V ‖ sep ‖ d1 ‖ d2 ‖ d3) — the SP 800-90A update round.
std::array<std::uint8_t, 32> round(const std::array<std::uint8_t, 32>& key,
                                   const std::array<std::uint8_t, 32>& v,
                                   std::uint8_t sep, ByteSpan d1, ByteSpan d2,
                                   ByteSpan d3) {
  const std::uint8_t sep_byte[1] = {sep};
  return hmac32(key, v, ByteSpan(sep_byte, 1), d1, d2, d3);
}

}  // namespace

void HmacDrbg::update(ByteSpan d1, ByteSpan d2, ByteSpan d3) {
  key_ = round(key_, v_, 0x00, d1, d2, d3);
  v_ = hmac32(key_, v_);
  if (d1.empty() && d2.empty() && d3.empty()) return;
  key_ = round(key_, v_, 0x01, d1, d2, d3);
  v_ = hmac32(key_, v_);
}

HmacDrbg::HmacDrbg(ByteSpan entropy, ByteSpan nonce, ByteSpan personalization,
                   std::uint64_t reseed_interval)
    : reseed_interval_(reseed_interval) {
  key_.fill(0x00);
  v_.fill(0x01);
  update(entropy, nonce, personalization);
  reseed_counter_ = 1;
}

HmacDrbg::HmacDrbg(std::uint64_t seed, std::uint64_t stream)
    : HmacDrbg(
          [&] {
            std::array<std::uint8_t, 16> material;
            store_le64(material.data(), seed);
            store_le64(material.data() + 8, stream);
            return material;
          }(),
          {}, ByteSpan(reinterpret_cast<const std::uint8_t*>("apna-pool"),
                       9)) {}

void HmacDrbg::reseed(ByteSpan entropy, ByteSpan additional) {
  update(entropy, additional);
  reseed_counter_ = 1;
}

bool HmacDrbg::generate(MutByteSpan out, ByteSpan additional) {
  if (reseed_counter_ > reseed_interval_) return false;
  if (!additional.empty()) update(additional);
  std::size_t off = 0;
  while (off < out.size()) {
    v_ = hmac32(key_, v_);
    const std::size_t n = std::min<std::size_t>(32, out.size() - off);
    std::memcpy(out.data() + off, v_.data(), n);
    off += n;
  }
  update(additional);
  ++reseed_counter_;
  return true;
}

void HmacDrbg::fill(MutByteSpan out) {
  if (!generate(out)) {
    // Deterministic state-stir: keeps the Rng contract (fill never fails)
    // for test-sized intervals without injecting entropy.
    reseed({});
    (void)generate(out);
  }
}

}  // namespace apna::crypto

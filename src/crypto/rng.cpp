#include "crypto/rng.h"

#include <cstring>
#include <random>

#include "crypto/chacha20.h"
#include "crypto/sha2.h"

namespace apna::crypto {

std::uint64_t Rng::uniform(std::uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = bound * ((~std::uint64_t{0}) / bound);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % bound;
}

double Rng::uniform_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

ChaChaRng::ChaChaRng(ByteSpan seed) {
  const auto digest = Sha256::hash(seed);
  std::memcpy(key_.data(), digest.data(), 32);
}

ChaChaRng::ChaChaRng(std::uint64_t seed) {
  std::uint8_t s[8];
  store_le64(s, seed);
  const auto digest = Sha256::hash(ByteSpan(s, 8));
  std::memcpy(key_.data(), digest.data(), 32);
}

ChaChaRng ChaChaRng::from_os_entropy() {
  std::random_device rd;
  std::uint8_t seed[32];
  for (int i = 0; i < 32; i += 4) store_le32(seed + i, rd());
  return ChaChaRng(ByteSpan(seed, 32));
}

void ChaChaRng::refill() {
  static constexpr std::uint8_t kNonce[12] = {'a', 'p', 'n', 'a', '-', 'd',
                                              'r', 'b', 'g', 0,   0,   0};
  chacha20_block(key_.data(), counter_++, kNonce, block_.data());
  pos_ = 0;
}

void ChaChaRng::fill(MutByteSpan out) {
  std::size_t off = 0;
  while (off < out.size()) {
    if (pos_ == 64) refill();
    const std::size_t n = std::min(out.size() - off, std::size_t{64} - pos_);
    std::memcpy(out.data() + off, block_.data() + pos_, n);
    pos_ += n;
    off += n;
  }
}

Rng& system_rng() {
  thread_local ChaChaRng rng = ChaChaRng::from_os_entropy();
  return rng;
}

}  // namespace apna::crypto

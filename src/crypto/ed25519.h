// Ed25519 signatures (RFC 8032).
//
// ASes sign EphID certificates and bootstrap messages with ed25519 (§V-A2:
// "To create digital signatures for certificates, we use the ed25519
// signature scheme"). Signing uses a precomputed fixed-base table so the MS
// can certify EphIDs at high rate (experiment E1).
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "crypto/rng.h"
#include "util/bytes.h"

namespace apna::crypto {

using Ed25519Seed = std::array<std::uint8_t, 32>;        // private seed
using Ed25519PublicKey = std::array<std::uint8_t, 32>;   // compressed point
using Ed25519Signature = std::array<std::uint8_t, 64>;   // R ‖ S

/// Derives the public key for a 32-byte seed.
Ed25519PublicKey ed25519_public_key(const Ed25519Seed& seed);

/// Signs `msg` (deterministic per RFC 8032).
Ed25519Signature ed25519_sign(const Ed25519Seed& seed,
                              const Ed25519PublicKey& pub, ByteSpan msg);

/// Verifies a signature. Rejects malformed points and non-canonical S.
bool ed25519_verify(const Ed25519PublicKey& pub, ByteSpan msg,
                    const Ed25519Signature& sig);

/// One signature of a batch-verification sweep.
struct Ed25519BatchItem {
  const Ed25519PublicKey* pub = nullptr;
  ByteSpan msg;
  const Ed25519Signature* sig = nullptr;
};

/// Batch verification: out[i] = ed25519_verify(*items[i].pub, items[i].msg,
/// *items[i].sig) for every item, with the expensive part amortized.
/// Returns true iff every signature verified.
///
/// How: after per-item screening that mirrors the scalar rejects exactly
/// (non-canonical S; undecodable A; R whose bytes cannot be an encode()
/// output), the survivors are checked with one random-linear-combination
/// equation  (Σ z_i S_i)·B − Σ (z_i k_i)·A_i − Σ z_i·R_i == identity,
/// evaluated by a shared-doubling multi-scalar multiplication: 252 point
/// doublings TOTAL instead of 252 per signature — per-signature cost decays
/// toward the window additions alone as the batch grows. The z_i are
/// 128-bit coefficients from `rng`, forced ≡ 1 (mod 8) so a single
/// small-order (torsion) discrepancy is caught deterministically, not just
/// with probability 7/8; like every cofactorless batch equation in the
/// literature, co-crafted torsion offsets that cancel across signatures
/// remain accepted only with the RLC's negligible probability for the
/// prime-order component.
///
/// On ANY batch-equation failure the sweep bisects recursively down to
/// scalar ed25519_verify leaves, so the accept/reject set is bit-identical
/// to calling ed25519_verify per item (property-tested over randomized
/// corrupted batches in crypto_property_test).
bool ed25519_verify_batch(std::span<const Ed25519BatchItem> items, bool* out,
                          Rng& rng);

/// AS / host long-term signing identity.
struct Ed25519KeyPair {
  Ed25519Seed seed;
  Ed25519PublicKey pub;

  static Ed25519KeyPair generate(Rng& rng);
  Ed25519Signature sign(ByteSpan msg) const { return ed25519_sign(seed, pub, msg); }
};

}  // namespace apna::crypto

// Ed25519 signatures (RFC 8032).
//
// ASes sign EphID certificates and bootstrap messages with ed25519 (§V-A2:
// "To create digital signatures for certificates, we use the ed25519
// signature scheme"). Signing uses a precomputed fixed-base table so the MS
// can certify EphIDs at high rate (experiment E1).
#pragma once

#include <array>
#include <cstdint>

#include "crypto/rng.h"
#include "util/bytes.h"

namespace apna::crypto {

using Ed25519Seed = std::array<std::uint8_t, 32>;        // private seed
using Ed25519PublicKey = std::array<std::uint8_t, 32>;   // compressed point
using Ed25519Signature = std::array<std::uint8_t, 64>;   // R ‖ S

/// Derives the public key for a 32-byte seed.
Ed25519PublicKey ed25519_public_key(const Ed25519Seed& seed);

/// Signs `msg` (deterministic per RFC 8032).
Ed25519Signature ed25519_sign(const Ed25519Seed& seed,
                              const Ed25519PublicKey& pub, ByteSpan msg);

/// Verifies a signature. Rejects malformed points and non-canonical S.
bool ed25519_verify(const Ed25519PublicKey& pub, ByteSpan msg,
                    const Ed25519Signature& sig);

/// AS / host long-term signing identity.
struct Ed25519KeyPair {
  Ed25519Seed seed;
  Ed25519PublicKey pub;

  static Ed25519KeyPair generate(Rng& rng);
  Ed25519Signature sign(ByteSpan msg) const { return ed25519_sign(seed, pub, msg); }
};

}  // namespace apna::crypto

// SHA-256 and SHA-512 (FIPS 180-4).
//
// SHA-256 backs HMAC/HKDF key derivation (host↔AS keys, session keys);
// SHA-512 is required internally by Ed25519 (RFC 8032).
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace apna::crypto {

/// Incremental SHA-256.
class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;

  Sha256();
  void update(ByteSpan data);
  std::array<std::uint8_t, kDigestSize> finish();

  static std::array<std::uint8_t, kDigestSize> hash(ByteSpan data);

 private:
  void compress(const std::uint8_t block[64]);
  std::array<std::uint32_t, 8> h_;
  std::uint64_t total_len_ = 0;
  std::array<std::uint8_t, 64> buf_{};
  std::size_t buf_len_ = 0;
};

/// Incremental SHA-512.
class Sha512 {
 public:
  static constexpr std::size_t kDigestSize = 64;
  static constexpr std::size_t kBlockSize = 128;

  Sha512();
  void update(ByteSpan data);
  std::array<std::uint8_t, kDigestSize> finish();

  static std::array<std::uint8_t, kDigestSize> hash(ByteSpan data);

 private:
  void compress(const std::uint8_t block[128]);
  std::array<std::uint64_t, 8> h_;
  std::uint64_t total_len_ = 0;  // bytes (< 2^61 is plenty here)
  std::array<std::uint8_t, 128> buf_{};
  std::size_t buf_len_ = 0;
};

}  // namespace apna::crypto

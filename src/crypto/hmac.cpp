#include "crypto/hmac.h"

#include <cstring>

#include "crypto/sha2.h"

namespace apna::crypto {

std::array<std::uint8_t, 32> hmac_sha256(ByteSpan key, ByteSpan data) {
  std::array<std::uint8_t, 64> k{};
  if (key.size() > 64) {
    const auto digest = Sha256::hash(key);
    std::memcpy(k.data(), digest.data(), digest.size());
  } else if (!key.empty()) {
    std::memcpy(k.data(), key.data(), key.size());
  }

  std::array<std::uint8_t, 64> ipad, opad;
  for (int i = 0; i < 64; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(data);
  const auto inner_digest = inner.finish();

  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest);
  return outer.finish();
}

std::array<std::uint8_t, 32> hkdf_extract(ByteSpan salt, ByteSpan ikm) {
  return hmac_sha256(salt, ikm);
}

Bytes hkdf_expand(ByteSpan prk, ByteSpan info, std::size_t out_len) {
  Bytes out;
  out.reserve(out_len);
  std::array<std::uint8_t, 32> t{};
  std::size_t t_len = 0;
  std::uint8_t counter = 1;
  while (out.size() < out_len) {
    Bytes block;
    block.reserve(t_len + info.size() + 1);
    block.insert(block.end(), t.begin(), t.begin() + t_len);
    append(block, info);
    block.push_back(counter++);
    t = hmac_sha256(prk, block);
    t_len = t.size();
    const std::size_t take = std::min(t.size(), out_len - out.size());
    out.insert(out.end(), t.begin(), t.begin() + take);
  }
  return out;
}

Bytes hkdf(ByteSpan salt, ByteSpan ikm, ByteSpan info, std::size_t out_len) {
  const auto prk = hkdf_extract(salt, ikm);
  return hkdf_expand(prk, info, out_len);
}

std::array<std::uint8_t, 16> derive_key16(ByteSpan ikm, std::string_view label) {
  const Bytes info = to_bytes(label);
  const Bytes okm = hkdf(ByteSpan{}, ikm, info, 16);
  std::array<std::uint8_t, 16> out;
  std::memcpy(out.data(), okm.data(), 16);
  return out;
}

std::array<std::uint8_t, 32> derive_key32(ByteSpan ikm, std::string_view label) {
  const Bytes info = to_bytes(label);
  const Bytes okm = hkdf(ByteSpan{}, ikm, info, 32);
  std::array<std::uint8_t, 32> out;
  std::memcpy(out.data(), okm.data(), 32);
  return out;
}

}  // namespace apna::crypto

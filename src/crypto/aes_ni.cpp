// AES-NI backend. This translation unit is compiled with -maes; callers must
// check aesni_supported() before using the other entry points, mirroring the
// paper's use of the Intel AES-NI instruction set (§V-A2, §V-B2).
#include <cstdint>

#include "crypto/aes.h"

#if defined(__x86_64__) || defined(__i386__)
#include <wmmintrin.h>
#define APNA_HAVE_AESNI_BUILD 1
#endif

namespace apna::crypto::detail {

bool aesni_supported() {
#if defined(APNA_HAVE_AESNI_BUILD)
  return __builtin_cpu_supports("aes") != 0;
#else
  return false;
#endif
}

#if defined(APNA_HAVE_AESNI_BUILD)

namespace {
template <int Rcon>
inline __m128i expand_step(__m128i key) {
  __m128i tmp = _mm_aeskeygenassist_si128(key, Rcon);
  tmp = _mm_shuffle_epi32(tmp, _MM_SHUFFLE(3, 3, 3, 3));
  key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
  key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
  key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
  return _mm_xor_si128(key, tmp);
}
}  // namespace

void aesni_expand_key128(const std::uint8_t key[16], std::uint8_t rk[176]) {
  __m128i k = _mm_loadu_si128(reinterpret_cast<const __m128i*>(key));
  __m128i* out = reinterpret_cast<__m128i*>(rk);
  _mm_storeu_si128(out + 0, k);
  k = expand_step<0x01>(k); _mm_storeu_si128(out + 1, k);
  k = expand_step<0x02>(k); _mm_storeu_si128(out + 2, k);
  k = expand_step<0x04>(k); _mm_storeu_si128(out + 3, k);
  k = expand_step<0x08>(k); _mm_storeu_si128(out + 4, k);
  k = expand_step<0x10>(k); _mm_storeu_si128(out + 5, k);
  k = expand_step<0x20>(k); _mm_storeu_si128(out + 6, k);
  k = expand_step<0x40>(k); _mm_storeu_si128(out + 7, k);
  k = expand_step<0x80>(k); _mm_storeu_si128(out + 8, k);
  k = expand_step<0x1b>(k); _mm_storeu_si128(out + 9, k);
  k = expand_step<0x36>(k); _mm_storeu_si128(out + 10, k);
}

void aesni_encrypt_blocks(const std::uint8_t rk[176], const std::uint8_t* in,
                          std::uint8_t* out, std::size_t nblocks) {
  const __m128i* keys = reinterpret_cast<const __m128i*>(rk);
  __m128i k[11];
  for (int i = 0; i <= 10; ++i) k[i] = _mm_loadu_si128(keys + i);

  // 8 independent blocks in flight hide the full aesenc latency chain on
  // modern cores (latency ~4 cycles, throughput 1-2/cycle: 4 blocks leave
  // bubbles, 8 saturate the unit); a 4-wide tail mops up what remains.
  std::size_t i = 0;
  const __m128i* src = reinterpret_cast<const __m128i*>(in);
  __m128i* dst = reinterpret_cast<__m128i*>(out);
  for (; i + 8 <= nblocks; i += 8) {
    __m128i b0 = _mm_loadu_si128(src + i + 0);
    __m128i b1 = _mm_loadu_si128(src + i + 1);
    __m128i b2 = _mm_loadu_si128(src + i + 2);
    __m128i b3 = _mm_loadu_si128(src + i + 3);
    __m128i b4 = _mm_loadu_si128(src + i + 4);
    __m128i b5 = _mm_loadu_si128(src + i + 5);
    __m128i b6 = _mm_loadu_si128(src + i + 6);
    __m128i b7 = _mm_loadu_si128(src + i + 7);
    b0 = _mm_xor_si128(b0, k[0]);
    b1 = _mm_xor_si128(b1, k[0]);
    b2 = _mm_xor_si128(b2, k[0]);
    b3 = _mm_xor_si128(b3, k[0]);
    b4 = _mm_xor_si128(b4, k[0]);
    b5 = _mm_xor_si128(b5, k[0]);
    b6 = _mm_xor_si128(b6, k[0]);
    b7 = _mm_xor_si128(b7, k[0]);
    for (int r = 1; r < 10; ++r) {
      b0 = _mm_aesenc_si128(b0, k[r]);
      b1 = _mm_aesenc_si128(b1, k[r]);
      b2 = _mm_aesenc_si128(b2, k[r]);
      b3 = _mm_aesenc_si128(b3, k[r]);
      b4 = _mm_aesenc_si128(b4, k[r]);
      b5 = _mm_aesenc_si128(b5, k[r]);
      b6 = _mm_aesenc_si128(b6, k[r]);
      b7 = _mm_aesenc_si128(b7, k[r]);
    }
    b0 = _mm_aesenclast_si128(b0, k[10]);
    b1 = _mm_aesenclast_si128(b1, k[10]);
    b2 = _mm_aesenclast_si128(b2, k[10]);
    b3 = _mm_aesenclast_si128(b3, k[10]);
    b4 = _mm_aesenclast_si128(b4, k[10]);
    b5 = _mm_aesenclast_si128(b5, k[10]);
    b6 = _mm_aesenclast_si128(b6, k[10]);
    b7 = _mm_aesenclast_si128(b7, k[10]);
    _mm_storeu_si128(dst + i + 0, b0);
    _mm_storeu_si128(dst + i + 1, b1);
    _mm_storeu_si128(dst + i + 2, b2);
    _mm_storeu_si128(dst + i + 3, b3);
    _mm_storeu_si128(dst + i + 4, b4);
    _mm_storeu_si128(dst + i + 5, b5);
    _mm_storeu_si128(dst + i + 6, b6);
    _mm_storeu_si128(dst + i + 7, b7);
  }
  for (; i + 4 <= nblocks; i += 4) {
    __m128i b0 = _mm_loadu_si128(src + i + 0);
    __m128i b1 = _mm_loadu_si128(src + i + 1);
    __m128i b2 = _mm_loadu_si128(src + i + 2);
    __m128i b3 = _mm_loadu_si128(src + i + 3);
    b0 = _mm_xor_si128(b0, k[0]);
    b1 = _mm_xor_si128(b1, k[0]);
    b2 = _mm_xor_si128(b2, k[0]);
    b3 = _mm_xor_si128(b3, k[0]);
    for (int r = 1; r < 10; ++r) {
      b0 = _mm_aesenc_si128(b0, k[r]);
      b1 = _mm_aesenc_si128(b1, k[r]);
      b2 = _mm_aesenc_si128(b2, k[r]);
      b3 = _mm_aesenc_si128(b3, k[r]);
    }
    b0 = _mm_aesenclast_si128(b0, k[10]);
    b1 = _mm_aesenclast_si128(b1, k[10]);
    b2 = _mm_aesenclast_si128(b2, k[10]);
    b3 = _mm_aesenclast_si128(b3, k[10]);
    _mm_storeu_si128(dst + i + 0, b0);
    _mm_storeu_si128(dst + i + 1, b1);
    _mm_storeu_si128(dst + i + 2, b2);
    _mm_storeu_si128(dst + i + 3, b3);
  }
  for (; i < nblocks; ++i) {
    __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in) + i);
    b = _mm_xor_si128(b, k[0]);
    for (int r = 1; r < 10; ++r) b = _mm_aesenc_si128(b, k[r]);
    b = _mm_aesenclast_si128(b, k[10]);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out) + i, b);
  }
}

void aesni_cbcmac_absorb(const std::uint8_t rk[176], std::uint8_t x[16],
                         const std::uint8_t* data, std::size_t nblocks) {
  const __m128i* keys = reinterpret_cast<const __m128i*>(rk);
  __m128i k[11];
  for (int i = 0; i <= 10; ++i) k[i] = _mm_loadu_si128(keys + i);
  __m128i state = _mm_loadu_si128(reinterpret_cast<const __m128i*>(x));
  for (std::size_t b = 0; b < nblocks; ++b) {
    const __m128i blk =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data) + b);
    state = _mm_xor_si128(state, blk);
    state = _mm_xor_si128(state, k[0]);
    for (int r = 1; r < 10; ++r) state = _mm_aesenc_si128(state, k[r]);
    state = _mm_aesenclast_si128(state, k[10]);
  }
  _mm_storeu_si128(reinterpret_cast<__m128i*>(x), state);
}

void aesni_cbcmac_absorb_8(const std::uint8_t* const rk[8],
                           std::uint8_t* const x[8],
                           const std::uint8_t* const data[8],
                           std::size_t nblocks) {
  // Eight states live in xmm registers for the whole run; round keys are
  // re-loaded per use (L1-resident — the loads hide entirely inside the
  // serial aesenc latency of each chain).
  __m128i s[8];
  const __m128i* k[8];
  const std::uint8_t* d[8];
  for (int l = 0; l < 8; ++l) {
    s[l] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(x[l]));
    k[l] = reinterpret_cast<const __m128i*>(rk[l]);
    d[l] = data[l];
  }
  for (std::size_t b = 0; b < nblocks; ++b) {
    for (int l = 0; l < 8; ++l) {
      const __m128i blk = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(d[l] + 16 * b));
      s[l] = _mm_xor_si128(_mm_xor_si128(s[l], blk),
                           _mm_loadu_si128(k[l] + 0));
    }
    for (int r = 1; r < 10; ++r)
      for (int l = 0; l < 8; ++l)
        s[l] = _mm_aesenc_si128(s[l], _mm_loadu_si128(k[l] + r));
    for (int l = 0; l < 8; ++l)
      s[l] = _mm_aesenclast_si128(s[l], _mm_loadu_si128(k[l] + 10));
  }
  for (int l = 0; l < 8; ++l)
    _mm_storeu_si128(reinterpret_cast<__m128i*>(x[l]), s[l]);
}

#else  // !APNA_HAVE_AESNI_BUILD

void aesni_expand_key128(const std::uint8_t key[16], std::uint8_t rk[176]) {
  soft_expand_key128(key, rk);
}
void aesni_encrypt_blocks(const std::uint8_t rk[176], const std::uint8_t* in,
                          std::uint8_t* out, std::size_t nblocks) {
  for (std::size_t i = 0; i < nblocks; ++i)
    soft_encrypt_block(rk, in + 16 * i, out + 16 * i);
}

void aesni_cbcmac_absorb(const std::uint8_t rk[176], std::uint8_t x[16],
                         const std::uint8_t* data, std::size_t nblocks) {
  for (std::size_t b = 0; b < nblocks; ++b) {
    for (int i = 0; i < 16; ++i) x[i] ^= data[16 * b + i];
    soft_encrypt_block(rk, x, x);
  }
}

void aesni_cbcmac_absorb_8(const std::uint8_t* const rk[8],
                           std::uint8_t* const x[8],
                           const std::uint8_t* const data[8],
                           std::size_t nblocks) {
  for (int l = 0; l < 8; ++l)
    aesni_cbcmac_absorb(rk[l], x[l], data[l], nblocks);
}

#endif

}  // namespace apna::crypto::detail

// AES-128-GCM authenticated encryption (NIST SP 800-38D).
//
// One of the conventional CCA-secure schemes the paper proposes for payload
// encryption (§IV-A cites GCM [27]). GHASH here is a portable bit-serial
// implementation — correct and dependency-free; the repo's default payload
// suite is ChaCha20-Poly1305 which is faster in software (see aead.h).
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "crypto/aes.h"
#include "util/bytes.h"

namespace apna::crypto {

/// AES-128-GCM with 12-byte nonces and 16-byte tags.
class AesGcm {
 public:
  static constexpr std::size_t kKeySize = 16;
  static constexpr std::size_t kNonceSize = 12;
  static constexpr std::size_t kTagSize = 16;

  explicit AesGcm(ByteSpan key16);

  /// Returns ciphertext ‖ tag.
  Bytes seal(ByteSpan nonce, ByteSpan aad, ByteSpan plaintext) const;

  /// Verifies and decrypts ciphertext ‖ tag. nullopt on any failure.
  std::optional<Bytes> open(ByteSpan nonce, ByteSpan aad,
                            ByteSpan ciphertext_and_tag) const;

 private:
  std::array<std::uint8_t, 16> ghash(ByteSpan aad, ByteSpan ct) const;

  Aes128 aes_;
  std::array<std::uint8_t, 16> h_{};  // hash subkey H = AES_k(0^128)
};

}  // namespace apna::crypto

// VAES/AVX-512 tier: 512-bit AES kernels, 16 blocks per sweep as 4 zmm
// registers × 4 lanes each. Compiled with -mvaes -mavx512f -mavx512bw when
// the toolchain supports them (cmake probes; otherwise the stub below keeps
// the tier reporting unsupported). Callers gate on vaes_avx512_supported().
//
// vaesenc applies a DISTINCT round key to every 128-bit lane of the key
// operand — that is what makes the 16-chain CBC-MAC work under sixteen
// different key schedules: the schedules are transposed once into
// lane-packed zmm form at kernel entry, then every round is 4 instructions
// for all 16 chains.
#include <cstdint>

#include "crypto/aes.h"

#if defined(APNA_HAVE_VAES_TOOLCHAIN) && \
    (defined(__x86_64__) || defined(__i386__))
#include <immintrin.h>
#define APNA_HAVE_VAES_BUILD 1
#endif

namespace apna::crypto::detail {

bool vaes_avx512_supported() {
#if defined(APNA_HAVE_VAES_BUILD)
  return __builtin_cpu_supports("vaes") != 0 &&
         __builtin_cpu_supports("avx512f") != 0 &&
         __builtin_cpu_supports("avx512bw") != 0;
#else
  return false;
#endif
}

#if defined(APNA_HAVE_VAES_BUILD)

void vaes_encrypt_blocks(const std::uint8_t rk[176], const std::uint8_t* in,
                         std::uint8_t* out, std::size_t nblocks) {
  // One key for all lanes: broadcast each round key across the zmm.
  __m512i k[11];
  for (int r = 0; r <= 10; ++r)
    k[r] = _mm512_broadcast_i32x4(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(rk) + r));

  std::size_t i = 0;
  for (; i + 16 <= nblocks; i += 16) {
    __m512i b0 = _mm512_loadu_si512(in + 16 * i + 0);
    __m512i b1 = _mm512_loadu_si512(in + 16 * i + 64);
    __m512i b2 = _mm512_loadu_si512(in + 16 * i + 128);
    __m512i b3 = _mm512_loadu_si512(in + 16 * i + 192);
    b0 = _mm512_xor_si512(b0, k[0]);
    b1 = _mm512_xor_si512(b1, k[0]);
    b2 = _mm512_xor_si512(b2, k[0]);
    b3 = _mm512_xor_si512(b3, k[0]);
    for (int r = 1; r < 10; ++r) {
      b0 = _mm512_aesenc_epi128(b0, k[r]);
      b1 = _mm512_aesenc_epi128(b1, k[r]);
      b2 = _mm512_aesenc_epi128(b2, k[r]);
      b3 = _mm512_aesenc_epi128(b3, k[r]);
    }
    b0 = _mm512_aesenclast_epi128(b0, k[10]);
    b1 = _mm512_aesenclast_epi128(b1, k[10]);
    b2 = _mm512_aesenclast_epi128(b2, k[10]);
    b3 = _mm512_aesenclast_epi128(b3, k[10]);
    _mm512_storeu_si512(out + 16 * i + 0, b0);
    _mm512_storeu_si512(out + 16 * i + 64, b1);
    _mm512_storeu_si512(out + 16 * i + 128, b2);
    _mm512_storeu_si512(out + 16 * i + 192, b3);
  }
  // Remainder: the 8/4/1-wide aesni tails.
  if (i < nblocks) aesni_encrypt_blocks(rk, in + 16 * i, out + 16 * i,
                                        nblocks - i);
}

void vaes_cbcmac_absorb_16(const std::uint8_t* const rk[16],
                           std::uint8_t* const x[16],
                           const std::uint8_t* const data[16],
                           std::size_t nblocks) {
  // Transpose the 16 key schedules into lane-packed form: kp[r][g] carries
  // round r's keys for lanes 4g..4g+3. 11 rounds × 4 groups, built once —
  // the cost amortizes over the chain length.
  __m512i kp[11][4];
  for (int r = 0; r <= 10; ++r) {
    for (int g = 0; g < 4; ++g) {
      __m512i v = _mm512_castsi128_si512(_mm_loadu_si128(
          reinterpret_cast<const __m128i*>(rk[4 * g + 0]) + r));
      v = _mm512_inserti32x4(
          v,
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(rk[4 * g + 1]) + r),
          1);
      v = _mm512_inserti32x4(
          v,
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(rk[4 * g + 2]) + r),
          2);
      kp[r][g] = _mm512_inserti32x4(
          v,
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(rk[4 * g + 3]) + r),
          3);
    }
  }

  __m512i s[4];
  for (int g = 0; g < 4; ++g) {
    __m512i v = _mm512_castsi128_si512(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(x[4 * g + 0])));
    v = _mm512_inserti32x4(
        v, _mm_loadu_si128(reinterpret_cast<const __m128i*>(x[4 * g + 1])), 1);
    v = _mm512_inserti32x4(
        v, _mm_loadu_si128(reinterpret_cast<const __m128i*>(x[4 * g + 2])), 2);
    s[g] = _mm512_inserti32x4(
        v, _mm_loadu_si128(reinterpret_cast<const __m128i*>(x[4 * g + 3])), 3);
  }

  for (std::size_t b = 0; b < nblocks; ++b) {
    for (int g = 0; g < 4; ++g) {
      __m512i blk = _mm512_castsi128_si512(_mm_loadu_si128(
          reinterpret_cast<const __m128i*>(data[4 * g + 0] + 16 * b)));
      blk = _mm512_inserti32x4(
          blk,
          _mm_loadu_si128(
              reinterpret_cast<const __m128i*>(data[4 * g + 1] + 16 * b)),
          1);
      blk = _mm512_inserti32x4(
          blk,
          _mm_loadu_si128(
              reinterpret_cast<const __m128i*>(data[4 * g + 2] + 16 * b)),
          2);
      blk = _mm512_inserti32x4(
          blk,
          _mm_loadu_si128(
              reinterpret_cast<const __m128i*>(data[4 * g + 3] + 16 * b)),
          3);
      s[g] = _mm512_xor_si512(_mm512_xor_si512(s[g], blk), kp[0][g]);
    }
    for (int r = 1; r < 10; ++r)
      for (int g = 0; g < 4; ++g)
        s[g] = _mm512_aesenc_epi128(s[g], kp[r][g]);
    for (int g = 0; g < 4; ++g)
      s[g] = _mm512_aesenclast_epi128(s[g], kp[10][g]);
  }

  for (int g = 0; g < 4; ++g) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(x[4 * g + 0]),
                     _mm512_extracti32x4_epi32(s[g], 0));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(x[4 * g + 1]),
                     _mm512_extracti32x4_epi32(s[g], 1));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(x[4 * g + 2]),
                     _mm512_extracti32x4_epi32(s[g], 2));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(x[4 * g + 3]),
                     _mm512_extracti32x4_epi32(s[g], 3));
  }
}

#else  // !APNA_HAVE_VAES_BUILD

void vaes_encrypt_blocks(const std::uint8_t rk[176], const std::uint8_t* in,
                         std::uint8_t* out, std::size_t nblocks) {
  aesni_encrypt_blocks(rk, in, out, nblocks);
}

void vaes_cbcmac_absorb_16(const std::uint8_t* const rk[16],
                           std::uint8_t* const x[16],
                           const std::uint8_t* const data[16],
                           std::size_t nblocks) {
  for (int l = 0; l < 16; ++l) aesni_cbcmac_absorb(rk[l], x[l], data[l],
                                                   nblocks);
}

#endif

}  // namespace apna::crypto::detail

// AES block-cipher modes used by APNA:
//  * CTR       — EphID payload encryption (Fig 6) and the CTR half of the
//                Encrypt-then-MAC AEAD suite.
//  * CBC-MAC   — fixed-one-block authentication tag inside the EphID
//                construction (secure because the input length is fixed to
//                16 B, exactly the argument of §VI-A / footnote 3).
//  * CMAC      — RFC 4493 variable-length MAC; used for the per-packet
//                source-authentication MAC under k_HA (§IV-D2) and for
//                infrastructure-internal message authentication.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "crypto/aes.h"
#include "util/bytes.h"

namespace apna::crypto {

/// Encrypts/decrypts `in` into `out` with AES-CTR. `counter_block` is the
/// initial 16-byte counter; the low 32 bits (big-endian) increment per block.
/// CTR is an involution: the same call decrypts. `in` and `out` may alias.
void aes_ctr_xcrypt(const Aes128& aes,
                    const std::uint8_t counter_block[16],
                    ByteSpan in, MutByteSpan out);

/// Convenience allocating variant.
Bytes aes_ctr(const Aes128& aes, const std::uint8_t counter_block[16],
              ByteSpan in);

/// Raw CBC-MAC over data whose length MUST be a multiple of 16 bytes and
/// MUST be fixed per key (CBC-MAC is insecure for variable lengths — the
/// paper cites [6]; EphID construction always MACs exactly one block).
std::array<std::uint8_t, 16> aes_cbc_mac(const Aes128& aes, ByteSpan data);

/// AES-CMAC (RFC 4493): secure for variable-length messages.
/// Immutable after construction; safe for concurrent mac() calls.
class AesCmac {
 public:
  /// `backend` forces the underlying AES tier (testing / benchmarking);
  /// the default auto-detects exactly as Aes128 does.
  explicit AesCmac(ByteSpan key16,
                   Aes128::Backend backend = Aes128::Backend::auto_detect);

  /// Resolved AES tier name of this key ("soft" ... "vaes_avx512").
  const char* backend() const;

  /// Full 16-byte tag over `data`.
  std::array<std::uint8_t, 16> mac(ByteSpan data) const;

  /// Tag over the concatenation a ‖ b (used for header ‖ payload MACs
  /// without copying the packet).
  std::array<std::uint8_t, 16> mac2(ByteSpan a, ByteSpan b) const;

  /// Truncated-tag verification in constant time.
  bool verify(ByteSpan data, ByteSpan tag) const;

 private:
  friend void aes_cmac_many(std::span<const struct CmacJob> jobs,
                            std::array<std::uint8_t, 16>* tags);
  Aes128 aes_;
  std::array<std::uint8_t, 16> k1_{};  // subkey for complete final block
  std::array<std::uint8_t, 16> k2_{};  // subkey for padded final block
};

/// One lane of a batched CMAC sweep: the tag over a ‖ b under `key`
/// (typically: packet MAC preamble ‖ payload, each packet under its own
/// host key).
struct CmacJob {
  const AesCmac* key = nullptr;
  ByteSpan a;
  ByteSpan b;
};

/// Computes tags[i] == jobs[i].key->mac2(jobs[i].a, jobs[i].b) for every
/// job — but interleaves independent CBC chains through the AES unit. The
/// lane width follows the narrowest tier in each group of consecutive
/// hardware-backed keys: 16 chains on avx2 / vaes_avx512
/// (detail::{avx2,vaes}_cbcmac_absorb_16), 8 on plain aesni
/// (detail::aesni_cbcmac_absorb_8). A lone CBC chain is latency-bound;
/// many keep the unit saturated, so a burst of per-packet MACs (Fig 4's
/// one-MAC-per-packet) costs a fraction of the serial sweep. Tags are
/// bit-identical to the scalar mac2 on every tier (pinned by
/// crypto_property_test); soft-tier keys take the scalar loop.
void aes_cmac_many(std::span<const CmacJob> jobs,
                   std::array<std::uint8_t, 16>* tags);

}  // namespace apna::crypto

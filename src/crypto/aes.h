// AES-128 block cipher with runtime AES-NI dispatch.
//
// APNA's data plane is built exclusively on AES (§V-A1: "AES ... is the only
// cipher with widespread hardware support"). Only the forward (encrypt)
// direction is ever needed: CTR, CBC-MAC, CMAC and GCM all use the encrypt
// permutation, and EphID "decryption" is CTR keystream reuse.
//
// Two backends:
//  * AES-NI (compiled in aes_ni.cpp with -maes), selected at runtime when the
//    CPU advertises support — this models the paper's use of Intel AES-NI.
//  * A portable byte-oriented software implementation (FIPS-197), always
//    available so the library runs on any host.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace apna::crypto {

/// AES-128, encrypt direction only. Immutable after construction; safe to
/// share across threads for concurrent encrypt_block calls.
class Aes128 {
 public:
  static constexpr std::size_t kBlockSize = 16;
  static constexpr std::size_t kKeySize = 16;
  static constexpr std::size_t kRounds = 10;

  /// Backend selection: auto picks AES-NI when the CPU supports it; soft
  /// forces the portable implementation (tests exercise both paths on any
  /// machine).
  enum class Backend { auto_detect, soft };

  /// Expands the 16-byte key. Aborts if key.size() != 16 (programmer error).
  explicit Aes128(ByteSpan key, Backend backend = Backend::auto_detect);

  /// Encrypts one 16-byte block. `in` and `out` may alias.
  void encrypt_block(const std::uint8_t in[kBlockSize],
                     std::uint8_t out[kBlockSize]) const;

  /// Encrypts `n` contiguous blocks (the AES-NI backend keeps 8 blocks in
  /// flight to hide aesenc latency).
  void encrypt_blocks(const std::uint8_t* in, std::uint8_t* out,
                      std::size_t n) const;

  /// CBC-MAC absorption: x = AES(x ^ block_i) chained over `n` blocks.
  /// The AES-NI backend keeps round keys in registers across the chain —
  /// this is the per-packet MAC verification inner loop (Fig 4).
  void cbc_mac_absorb(std::uint8_t x[kBlockSize], const std::uint8_t* data,
                      std::size_t nblocks) const;

  /// True when the running CPU supports the AES-NI instruction set.
  static bool has_aesni();

  /// "aesni" or "soft" — reported by benchmarks (E9) for reproducibility.
  const char* backend() const { return use_ni_ ? "aesni" : "soft"; }

  /// Raw expanded key schedule / backend flag — consumed by the multi-lane
  /// CBC-MAC driver (modes.cpp aes_cmac_many), which interleaves chains
  /// under DIFFERENT keys and therefore reads schedules directly. Internal.
  const std::uint8_t* round_key_bytes() const { return round_keys_.data(); }
  bool uses_aesni() const { return use_ni_; }

 private:
  alignas(16) std::array<std::uint8_t, (kRounds + 1) * kBlockSize> round_keys_;
  bool use_ni_;
};

namespace detail {
// Software backend (aes_soft.cpp).
void soft_expand_key128(const std::uint8_t key[16], std::uint8_t rk[176]);
void soft_encrypt_block(const std::uint8_t rk[176], const std::uint8_t in[16],
                        std::uint8_t out[16]);
// AES-NI backend (aes_ni.cpp, compiled with -maes).
bool aesni_supported();
void aesni_expand_key128(const std::uint8_t key[16], std::uint8_t rk[176]);
void aesni_encrypt_blocks(const std::uint8_t rk[176], const std::uint8_t* in,
                          std::uint8_t* out, std::size_t nblocks);
void aesni_cbcmac_absorb(const std::uint8_t rk[176], std::uint8_t x[16],
                         const std::uint8_t* data, std::size_t nblocks);
/// Interleaves EIGHT independent CBC-MAC chains (each with its own key
/// schedule): for every lane l, absorbs `nblocks` 16-byte blocks starting
/// at data[l] into x[l]. A single CBC chain is latency-bound (each aesenc
/// waits on the previous); eight chains keep the AES unit saturated, which
/// is what makes the batched per-packet MAC stage of the router's fused
/// pipeline pay off. Callers pad unused lanes with duplicates of a live
/// lane (the wasted work rides in the latency shadow).
void aesni_cbcmac_absorb_8(const std::uint8_t* const rk[8],
                           std::uint8_t* const x[8],
                           const std::uint8_t* const data[8],
                           std::size_t nblocks);
}  // namespace detail

}  // namespace apna::crypto

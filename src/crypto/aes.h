// AES-128 block cipher with runtime multi-tier SIMD dispatch.
//
// APNA's data plane is built exclusively on AES (§V-A1: "AES ... is the only
// cipher with widespread hardware support"). Only the forward (encrypt)
// direction is ever needed: CTR, CBC-MAC, CMAC and GCM all use the encrypt
// permutation, and EphID "decryption" is CTR keystream reuse.
//
// Four backend tiers, selected by cpuid at construction (widest first):
//  * vaes_avx512 — VAES on 512-bit registers (aes_vaes.cpp, -mvaes): 16
//    blocks per sweep as 4 zmm × 4 lanes; multi-chain CBC-MAC carries 16
//    chains with per-lane round keys (vaesenc applies a distinct key to
//    each 128-bit lane).
//  * avx2        — VEX-encoded AES-NI (aes_avx2.cpp, -maes -mavx2): the
//    same 16-wide shapes on xmm registers; deeper interleave than the
//    aesni tier, three-operand forms avoid the mov traffic.
//  * aesni       — 8-wide xmm interleave (aes_ni.cpp, -maes), the paper's
//    Intel AES-NI baseline.
//  * soft        — portable byte-oriented FIPS-197, always available.
//
// The tier can be forced for testing: either the constructor Backend
// argument or the APNA_CRYPTO_BACKEND environment variable (soft | aesni |
// avx2 | vaes_avx512; the env var caps auto-detection and is read once).
// Forcing a tier the CPU cannot run downgrades to the widest supported
// tier below it — never up, never a crash.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace apna::crypto {

/// AES-128, encrypt direction only. Immutable after construction; safe to
/// share across threads for concurrent encrypt_block calls.
class Aes128 {
 public:
  static constexpr std::size_t kBlockSize = 16;
  static constexpr std::size_t kKeySize = 16;
  static constexpr std::size_t kRounds = 10;

  /// Backend tier. auto_detect picks the widest tier the CPU supports,
  /// capped by APNA_CRYPTO_BACKEND when set; naming a tier caps selection
  /// at that tier (still downgrading to what the CPU can run, so forced
  /// builds are portable). soft always wins when requested.
  enum class Backend : std::uint8_t {
    auto_detect = 0,
    soft = 1,
    aesni = 2,
    avx2 = 3,
    vaes_avx512 = 4,
  };

  /// Expands the 16-byte key. Aborts if key.size() != 16 (programmer error).
  explicit Aes128(ByteSpan key, Backend backend = Backend::auto_detect);

  /// Encrypts one 16-byte block. `in` and `out` may alias.
  void encrypt_block(const std::uint8_t in[kBlockSize],
                     std::uint8_t out[kBlockSize]) const;

  /// Encrypts `n` contiguous blocks. The hardware tiers keep 8 (aesni) or
  /// 16 (avx2 / vaes_avx512) independent blocks in flight to hide aesenc
  /// latency — this is the EphID open sweep of the router's fused pipeline
  /// (EphIdCodec::open_batch_gather) widening with zero call-site changes.
  void encrypt_blocks(const std::uint8_t* in, std::uint8_t* out,
                      std::size_t n) const;

  /// CBC-MAC absorption: x = AES(x ^ block_i) chained over `n` blocks.
  /// A single chain is latency-bound on every tier, so this stays the
  /// 1-chain kernel; the multi-chain driver is crypto::aes_cmac_many.
  void cbc_mac_absorb(std::uint8_t x[kBlockSize], const std::uint8_t* data,
                      std::size_t nblocks) const;

  /// True when the running CPU supports the AES-NI instruction set.
  static bool has_aesni();

  /// Widest tier the CPU supports, after the APNA_CRYPTO_BACKEND cap.
  static Backend best_backend();

  /// Resolves a requested tier against CPU support (and, for auto_detect,
  /// the environment cap): the tier construction would actually use.
  static Backend resolve_backend(Backend requested);

  /// Tier name: "soft", "aesni", "avx2" or "vaes_avx512" — reported by the
  /// benchmarks (E9, and machine_shape in every BENCH JSON) so baselines
  /// from different machines are comparable.
  const char* backend() const;
  static const char* backend_name(Backend b);

  /// This instance's resolved tier.
  Backend tier() const { return tier_; }

  /// Raw expanded key schedule / tier — consumed by the multi-lane CBC-MAC
  /// driver (modes.cpp aes_cmac_many), which interleaves chains under
  /// DIFFERENT keys and therefore reads schedules directly. Internal.
  const std::uint8_t* round_key_bytes() const { return round_keys_.data(); }
  bool uses_aesni() const { return tier_ != Backend::soft; }

 private:
  alignas(16) std::array<std::uint8_t, (kRounds + 1) * kBlockSize> round_keys_;
  Backend tier_;
};

namespace detail {
/// The APNA_CRYPTO_BACKEND cap, parsed once (auto_detect when unset or
/// unrecognized). Non-AES SIMD dispatch (ChaCha20) honors the same cap so
/// one knob forces the whole crypto layer down a tier.
Aes128::Backend env_backend_cap();
// Software backend (aes_soft.cpp).
void soft_expand_key128(const std::uint8_t key[16], std::uint8_t rk[176]);
void soft_encrypt_block(const std::uint8_t rk[176], const std::uint8_t in[16],
                        std::uint8_t out[16]);
// AES-NI backend (aes_ni.cpp, compiled with -maes).
bool aesni_supported();
void aesni_expand_key128(const std::uint8_t key[16], std::uint8_t rk[176]);
void aesni_encrypt_blocks(const std::uint8_t rk[176], const std::uint8_t* in,
                          std::uint8_t* out, std::size_t nblocks);
void aesni_cbcmac_absorb(const std::uint8_t rk[176], std::uint8_t x[16],
                         const std::uint8_t* data, std::size_t nblocks);
/// Interleaves EIGHT independent CBC-MAC chains (each with its own key
/// schedule): for every lane l, absorbs `nblocks` 16-byte blocks starting
/// at data[l] into x[l]. A single CBC chain is latency-bound (each aesenc
/// waits on the previous); eight chains keep the AES unit saturated, which
/// is what makes the batched per-packet MAC stage of the router's fused
/// pipeline pay off. Callers pad unused lanes with duplicates of a live
/// lane (the wasted work rides in the latency shadow). The non-AESNI
/// fallback (non-x86 builds) is the scalar chain per lane; the forced-soft
/// equivalence suite in crypto_property_test pins it against mac2.
void aesni_cbcmac_absorb_8(const std::uint8_t* const rk[8],
                           std::uint8_t* const x[8],
                           const std::uint8_t* const data[8],
                           std::size_t nblocks);
// AVX2 tier (aes_avx2.cpp, compiled with -maes -mavx2): 16-wide siblings.
bool avx2_aes_supported();
void avx2_encrypt_blocks(const std::uint8_t rk[176], const std::uint8_t* in,
                         std::uint8_t* out, std::size_t nblocks);
void avx2_cbcmac_absorb_16(const std::uint8_t* const rk[16],
                           std::uint8_t* const x[16],
                           const std::uint8_t* const data[16],
                           std::size_t nblocks);
// VAES/AVX-512 tier (aes_vaes.cpp, compiled with -mvaes -mavx512f
// -mavx512bw when the compiler has them): 16 blocks per sweep as 4 zmm.
bool vaes_avx512_supported();
void vaes_encrypt_blocks(const std::uint8_t rk[176], const std::uint8_t* in,
                         std::uint8_t* out, std::size_t nblocks);
void vaes_cbcmac_absorb_16(const std::uint8_t* const rk[16],
                           std::uint8_t* const x[16],
                           const std::uint8_t* const data[16],
                           std::size_t nblocks);
}  // namespace detail

}  // namespace apna::crypto

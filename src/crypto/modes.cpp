#include "crypto/modes.h"

#include <cstring>

namespace apna::crypto {

namespace {

inline void increment_be32_tail(std::uint8_t block[16]) {
  for (int i = 15; i >= 12; --i) {
    if (++block[i] != 0) break;
  }
}

// Doubles a value in GF(2^128) with the CMAC polynomial (x^128 + x^7 + x^2 +
// x + 1); used for RFC 4493 subkey generation.
void gf128_double(std::array<std::uint8_t, 16>& v) {
  const std::uint8_t carry = static_cast<std::uint8_t>(v[0] >> 7);
  for (int i = 0; i < 15; ++i)
    v[i] = static_cast<std::uint8_t>((v[i] << 1) | (v[i + 1] >> 7));
  v[15] = static_cast<std::uint8_t>(v[15] << 1);
  if (carry) v[15] ^= 0x87;
}

}  // namespace

void aes_ctr_xcrypt(const Aes128& aes, const std::uint8_t counter_block[16],
                    ByteSpan in, MutByteSpan out) {
  std::uint8_t ctr[16];
  std::memcpy(ctr, counter_block, 16);

  // Generate keystream in batches so the AES-NI backend can pipeline.
  constexpr std::size_t kBatchBlocks = 32;
  std::uint8_t ctr_batch[kBatchBlocks * 16];
  std::uint8_t ks[kBatchBlocks * 16];

  std::size_t off = 0;
  while (off < in.size()) {
    const std::size_t remaining = in.size() - off;
    const std::size_t blocks =
        std::min(kBatchBlocks, (remaining + 15) / 16);
    for (std::size_t b = 0; b < blocks; ++b) {
      std::memcpy(ctr_batch + 16 * b, ctr, 16);
      increment_be32_tail(ctr);
    }
    aes.encrypt_blocks(ctr_batch, ks, blocks);
    const std::size_t nbytes = std::min(remaining, blocks * 16);
    for (std::size_t i = 0; i < nbytes; ++i)
      out[off + i] = static_cast<std::uint8_t>(in[off + i] ^ ks[i]);
    off += nbytes;
  }
}

Bytes aes_ctr(const Aes128& aes, const std::uint8_t counter_block[16],
              ByteSpan in) {
  Bytes out(in.size());
  aes_ctr_xcrypt(aes, counter_block, in, out);
  return out;
}

std::array<std::uint8_t, 16> aes_cbc_mac(const Aes128& aes, ByteSpan data) {
  std::array<std::uint8_t, 16> x{};
  const std::size_t blocks = data.size() / 16;
  for (std::size_t b = 0; b < blocks; ++b) {
    for (int i = 0; i < 16; ++i) x[i] ^= data[16 * b + i];
    aes.encrypt_block(x.data(), x.data());
  }
  return x;
}

AesCmac::AesCmac(ByteSpan key16, Aes128::Backend backend)
    : aes_(key16, backend) {
  std::array<std::uint8_t, 16> l{};
  aes_.encrypt_block(l.data(), l.data());
  k1_ = l;
  gf128_double(k1_);
  k2_ = k1_;
  gf128_double(k2_);
}

const char* AesCmac::backend() const { return aes_.backend(); }

std::array<std::uint8_t, 16> AesCmac::mac(ByteSpan data) const {
  return mac2(data, {});
}

namespace {
// Streaming CMAC state: holds back up to one block so the final block can
// receive the RFC 4493 subkey treatment. Blocks are processed straight from
// the input spans (no concatenation buffer).
struct CmacStream {
  const Aes128& aes;
  std::array<std::uint8_t, 16> x{};
  std::uint8_t buf[16];
  std::size_t buf_len = 0;
  bool any = false;

  explicit CmacStream(const Aes128& a) : aes(a) {}

  void absorb_block(const std::uint8_t* p) {
    for (int i = 0; i < 16; ++i) x[i] ^= p[i];
    aes.encrypt_block(x.data(), x.data());
  }

  void update(ByteSpan data) {
    if (data.empty()) return;
    any = true;
    std::size_t off = 0;
    // Flush a previously held-back full block only once new data proves it
    // is not the final one.
    if (buf_len == 16) {
      absorb_block(buf);
      buf_len = 0;
    }
    if (buf_len > 0) {
      const std::size_t take = std::min(data.size(), 16 - buf_len);
      std::memcpy(buf + buf_len, data.data(), take);
      buf_len += take;
      off = take;
      if (buf_len == 16 && off < data.size()) {
        absorb_block(buf);
        buf_len = 0;
      }
    }
    // Bulk full blocks, keeping at least one byte for the buffer. The
    // fused kernel holds AES round keys in registers across the chain.
    if (off + 16 < data.size()) {
      const std::size_t bulk = (data.size() - off - 1) / 16;
      aes.cbc_mac_absorb(x.data(), data.data() + off, bulk);
      off += 16 * bulk;
    }
    if (off < data.size()) {
      std::memcpy(buf, data.data() + off, data.size() - off);
      buf_len = data.size() - off;
    }
  }

  std::array<std::uint8_t, 16> finish(
      const std::array<std::uint8_t, 16>& k1,
      const std::array<std::uint8_t, 16>& k2) {
    std::uint8_t block[16] = {};
    const std::array<std::uint8_t, 16>* subkey;
    if (any && buf_len == 16) {
      std::memcpy(block, buf, 16);
      subkey = &k1;
    } else {
      std::memcpy(block, buf, buf_len);
      block[buf_len] = 0x80;
      subkey = &k2;
    }
    for (int i = 0; i < 16; ++i)
      x[i] = static_cast<std::uint8_t>(x[i] ^ block[i] ^ (*subkey)[i]);
    aes.encrypt_block(x.data(), x.data());
    return x;
  }
};
}  // namespace

std::array<std::uint8_t, 16> AesCmac::mac2(ByteSpan a, ByteSpan b) const {
  CmacStream s(aes_);
  s.update(a);
  s.update(b);
  return s.finish(k1_, k2_);
}

bool AesCmac::verify(ByteSpan data, ByteSpan tag) const {
  if (tag.empty() || tag.size() > 16) return false;
  const auto full = mac(data);
  return ct_equal(ByteSpan(full.data(), tag.size()), tag);
}

// ---- Multi-lane CMAC --------------------------------------------------------

namespace {

constexpr std::size_t kCmacLanesMax = 16;

/// Per-lane extent walk over one CMAC input a ‖ b, decomposed into at most
/// four contiguous block runs: [a's full blocks][one staged straddle
/// block][b's full blocks][one staged final block]. The RFC 4493 subkey
/// treatment is folded into the staged final block, so absorbing the
/// extents in order with the raw CBC kernel IS the full CMAC.
struct CmacLaneWalk {
  std::array<std::uint8_t, 16> x{};
  const std::uint8_t* rk = nullptr;
  const std::uint8_t* ext_ptr[4] = {};
  std::size_t ext_blocks[4] = {};
  int ext = 0;
  std::size_t off = 0;
  std::uint8_t straddle[16];
  std::uint8_t final_blk[16];

  void init(const CmacJob& job, const std::uint8_t* rk_in,
            const std::array<std::uint8_t, 16>& k1,
            const std::array<std::uint8_t, 16>& k2) {
    rk = rk_in;
    const ByteSpan a = job.a;
    const ByteSpan b = job.b;
    const std::size_t total = a.size() + b.size();
    const std::size_t full = total == 0 ? 0 : (total - 1) / 16;

    // a's own full blocks (capped so the final block is never consumed
    // early).
    const std::size_t a_full = std::min(a.size() / 16, full);
    ext_ptr[0] = a.data();
    ext_blocks[0] = a_full;
    std::size_t consumed = 16 * a_full;

    if (consumed < 16 * full && consumed < a.size()) {
      // One straddle block mixing a's tail with b's head.
      const std::size_t a_rem = a.size() - consumed;
      std::memcpy(straddle, a.data() + consumed, a_rem);
      std::memcpy(straddle + a_rem, b.data(), 16 - a_rem);
      ext_ptr[1] = straddle;
      ext_blocks[1] = 1;
      consumed += 16;
    }
    if (consumed < 16 * full) {
      // b's remaining full blocks, read in place.
      ext_ptr[2] = b.data() + (consumed - a.size());
      ext_blocks[2] = full - consumed / 16;
    }
    // Final block: complete blocks XOR K1, padded blocks XOR K2.
    const std::size_t fin = total - 16 * full;  // 0 (empty input) or 1..16
    std::uint8_t raw[16] = {};
    for (std::size_t i = 0; i < fin; ++i) {
      const std::size_t pos = 16 * full + i;
      raw[i] = pos < a.size() ? a[pos] : b[pos - a.size()];
    }
    const bool complete = total > 0 && fin == 16;
    if (!complete) raw[fin] = 0x80;
    const std::array<std::uint8_t, 16>& sub = complete ? k1 : k2;
    for (int i = 0; i < 16; ++i)
      final_blk[i] = static_cast<std::uint8_t>(raw[i] ^ sub[i]);
    ext_ptr[3] = final_blk;
    ext_blocks[3] = 1;
  }

  void skip_empty() {
    while (ext < 4 && off == ext_blocks[ext]) {
      ++ext;
      off = 0;
    }
  }
  bool done() {
    skip_empty();
    return ext == 4;
  }
  std::size_t run() const { return ext_blocks[ext] - off; }
  const std::uint8_t* ptr() const { return ext_ptr[ext] + 16 * off; }
};

}  // namespace

void aes_cmac_many(std::span<const CmacJob> jobs,
                   std::array<std::uint8_t, 16>* tags) {
  using Backend = Aes128::Backend;
  std::size_t base = 0;
  while (base < jobs.size()) {
    // Scan the next run of hardware-backed keys (stopping at any soft-tier
    // key) and track the narrowest tier: the whole group must use a kernel
    // every lane's key supports.
    std::size_t hw = 0;
    Backend group = Backend::vaes_avx512;
    while (hw < kCmacLanesMax && base + hw < jobs.size()) {
      const Backend t = jobs[base + hw].key->aes_.tier();
      if (t == Backend::soft) break;
      group = std::min(group, t);
      ++hw;
    }
    if (hw < 2) {
      // Soft-tier key or a lone hardware job: the scalar reference path.
      tags[base] = jobs[base].key->mac2(jobs[base].a, jobs[base].b);
      ++base;
      continue;
    }
    // 16 lanes when a wide kernel exists and there are enough jobs to beat
    // two 8-wide sweeps; otherwise the aesni 8-chain kernel.
    const std::size_t width =
        (group >= Backend::avx2 && hw > 8) ? std::size_t{16} : std::size_t{8};
    const std::size_t n = std::min(hw, width);

    CmacLaneWalk walk[kCmacLanesMax];
    for (std::size_t j = 0; j < n; ++j) {
      const AesCmac& key = *jobs[base + j].key;
      walk[j].init(jobs[base + j], key.aes_.round_key_bytes(), key.k1_,
                   key.k2_);
    }

    // Lockstep scheduler: every pass absorbs the largest run all still-
    // active lanes can sustain contiguously; finished (and padding) lanes
    // duplicate an active lane, their wasted work riding in the latency
    // shadow of the real chains.
    for (;;) {
      bool active[kCmacLanesMax] = {};
      std::size_t run = 0, pad_src = width;
      for (std::size_t j = 0; j < n; ++j) {
        if (walk[j].done()) continue;
        active[j] = true;
        const std::size_t r = walk[j].run();
        if (pad_src == width) {
          pad_src = j;
          run = r;
        } else {
          run = std::min(run, r);
        }
      }
      if (pad_src == width) break;  // all lanes finished

      const std::uint8_t* rk[kCmacLanesMax];
      std::uint8_t* xs[kCmacLanesMax];
      const std::uint8_t* dp[kCmacLanesMax];
      std::uint8_t dummy_x[16];
      std::memcpy(dummy_x, walk[pad_src].x.data(), 16);
      for (std::size_t l = 0; l < width; ++l) {
        if (l < n && active[l]) {
          rk[l] = walk[l].rk;
          xs[l] = walk[l].x.data();
          dp[l] = walk[l].ptr();
        } else {
          rk[l] = walk[pad_src].rk;
          xs[l] = dummy_x;
          dp[l] = walk[pad_src].ptr();
        }
      }
      if (width == 16) {
        if (group == Backend::vaes_avx512)
          detail::vaes_cbcmac_absorb_16(rk, xs, dp, run);
        else
          detail::avx2_cbcmac_absorb_16(rk, xs, dp, run);
      } else {
        detail::aesni_cbcmac_absorb_8(rk, xs, dp, run);
      }
      for (std::size_t j = 0; j < n; ++j)
        if (active[j]) walk[j].off += run;
    }
    for (std::size_t j = 0; j < n; ++j) tags[base + j] = walk[j].x;
    base += n;
  }
}

}  // namespace apna::crypto

#include "crypto/modes.h"

#include <cstring>

namespace apna::crypto {

namespace {

inline void increment_be32_tail(std::uint8_t block[16]) {
  for (int i = 15; i >= 12; --i) {
    if (++block[i] != 0) break;
  }
}

// Doubles a value in GF(2^128) with the CMAC polynomial (x^128 + x^7 + x^2 +
// x + 1); used for RFC 4493 subkey generation.
void gf128_double(std::array<std::uint8_t, 16>& v) {
  const std::uint8_t carry = static_cast<std::uint8_t>(v[0] >> 7);
  for (int i = 0; i < 15; ++i)
    v[i] = static_cast<std::uint8_t>((v[i] << 1) | (v[i + 1] >> 7));
  v[15] = static_cast<std::uint8_t>(v[15] << 1);
  if (carry) v[15] ^= 0x87;
}

}  // namespace

void aes_ctr_xcrypt(const Aes128& aes, const std::uint8_t counter_block[16],
                    ByteSpan in, MutByteSpan out) {
  std::uint8_t ctr[16];
  std::memcpy(ctr, counter_block, 16);

  // Generate keystream in batches so the AES-NI backend can pipeline.
  constexpr std::size_t kBatchBlocks = 32;
  std::uint8_t ctr_batch[kBatchBlocks * 16];
  std::uint8_t ks[kBatchBlocks * 16];

  std::size_t off = 0;
  while (off < in.size()) {
    const std::size_t remaining = in.size() - off;
    const std::size_t blocks =
        std::min(kBatchBlocks, (remaining + 15) / 16);
    for (std::size_t b = 0; b < blocks; ++b) {
      std::memcpy(ctr_batch + 16 * b, ctr, 16);
      increment_be32_tail(ctr);
    }
    aes.encrypt_blocks(ctr_batch, ks, blocks);
    const std::size_t nbytes = std::min(remaining, blocks * 16);
    for (std::size_t i = 0; i < nbytes; ++i)
      out[off + i] = static_cast<std::uint8_t>(in[off + i] ^ ks[i]);
    off += nbytes;
  }
}

Bytes aes_ctr(const Aes128& aes, const std::uint8_t counter_block[16],
              ByteSpan in) {
  Bytes out(in.size());
  aes_ctr_xcrypt(aes, counter_block, in, out);
  return out;
}

std::array<std::uint8_t, 16> aes_cbc_mac(const Aes128& aes, ByteSpan data) {
  std::array<std::uint8_t, 16> x{};
  const std::size_t blocks = data.size() / 16;
  for (std::size_t b = 0; b < blocks; ++b) {
    for (int i = 0; i < 16; ++i) x[i] ^= data[16 * b + i];
    aes.encrypt_block(x.data(), x.data());
  }
  return x;
}

AesCmac::AesCmac(ByteSpan key16) : aes_(key16) {
  std::array<std::uint8_t, 16> l{};
  aes_.encrypt_block(l.data(), l.data());
  k1_ = l;
  gf128_double(k1_);
  k2_ = k1_;
  gf128_double(k2_);
}

std::array<std::uint8_t, 16> AesCmac::mac(ByteSpan data) const {
  return mac2(data, {});
}

namespace {
// Streaming CMAC state: holds back up to one block so the final block can
// receive the RFC 4493 subkey treatment. Blocks are processed straight from
// the input spans (no concatenation buffer).
struct CmacStream {
  const Aes128& aes;
  std::array<std::uint8_t, 16> x{};
  std::uint8_t buf[16];
  std::size_t buf_len = 0;
  bool any = false;

  explicit CmacStream(const Aes128& a) : aes(a) {}

  void absorb_block(const std::uint8_t* p) {
    for (int i = 0; i < 16; ++i) x[i] ^= p[i];
    aes.encrypt_block(x.data(), x.data());
  }

  void update(ByteSpan data) {
    if (data.empty()) return;
    any = true;
    std::size_t off = 0;
    // Flush a previously held-back full block only once new data proves it
    // is not the final one.
    if (buf_len == 16) {
      absorb_block(buf);
      buf_len = 0;
    }
    if (buf_len > 0) {
      const std::size_t take = std::min(data.size(), 16 - buf_len);
      std::memcpy(buf + buf_len, data.data(), take);
      buf_len += take;
      off = take;
      if (buf_len == 16 && off < data.size()) {
        absorb_block(buf);
        buf_len = 0;
      }
    }
    // Bulk full blocks, keeping at least one byte for the buffer. The
    // fused kernel holds AES round keys in registers across the chain.
    if (off + 16 < data.size()) {
      const std::size_t bulk = (data.size() - off - 1) / 16;
      aes.cbc_mac_absorb(x.data(), data.data() + off, bulk);
      off += 16 * bulk;
    }
    if (off < data.size()) {
      std::memcpy(buf, data.data() + off, data.size() - off);
      buf_len = data.size() - off;
    }
  }

  std::array<std::uint8_t, 16> finish(
      const std::array<std::uint8_t, 16>& k1,
      const std::array<std::uint8_t, 16>& k2) {
    std::uint8_t block[16] = {};
    const std::array<std::uint8_t, 16>* subkey;
    if (any && buf_len == 16) {
      std::memcpy(block, buf, 16);
      subkey = &k1;
    } else {
      std::memcpy(block, buf, buf_len);
      block[buf_len] = 0x80;
      subkey = &k2;
    }
    for (int i = 0; i < 16; ++i)
      x[i] = static_cast<std::uint8_t>(x[i] ^ block[i] ^ (*subkey)[i]);
    aes.encrypt_block(x.data(), x.data());
    return x;
  }
};
}  // namespace

std::array<std::uint8_t, 16> AesCmac::mac2(ByteSpan a, ByteSpan b) const {
  CmacStream s(aes_);
  s.update(a);
  s.update(b);
  return s.finish(k1_, k2_);
}

bool AesCmac::verify(ByteSpan data, ByteSpan tag) const {
  if (tag.empty() || tag.size() > 16) return false;
  const auto full = mac(data);
  return ct_equal(ByteSpan(full.data(), tag.size()), tag);
}

}  // namespace apna::crypto

#include "crypto/fe25519.h"

#include <cstring>

namespace apna::crypto {

namespace {
using u64 = std::uint64_t;
using u128 = unsigned __int128;

constexpr u64 kMask = (u64{1} << 51) - 1;

// Adds the carry chain once: after this, limbs fit in 51 bits + epsilon.
inline void carry_once(std::array<u64, 5>& h) {
  u64 c;
  c = h[0] >> 51; h[0] &= kMask; h[1] += c;
  c = h[1] >> 51; h[1] &= kMask; h[2] += c;
  c = h[2] >> 51; h[2] &= kMask; h[3] += c;
  c = h[3] >> 51; h[3] &= kMask; h[4] += c;
  c = h[4] >> 51; h[4] &= kMask; h[0] += c * 19;
}

/// Builds the little-endian byte representation of 2^k - c (k < 256, small c).
void make_exponent(std::uint8_t out[32], int k, std::uint32_t c) {
  std::memset(out, 0, 32);
  out[k / 8] = static_cast<std::uint8_t>(1u << (k % 8));  // 2^k
  // Subtract c with borrow.
  std::uint64_t borrow = c;
  for (int i = 0; i < 32 && borrow; ++i) {
    const std::uint64_t cur = out[i];
    const std::uint64_t sub = borrow & 0xff;
    if (cur >= sub) {
      out[i] = static_cast<std::uint8_t>(cur - sub);
      borrow >>= 8;
    } else {
      out[i] = static_cast<std::uint8_t>(cur + 256 - sub);
      borrow = (borrow >> 8) + 1;
    }
  }
}

}  // namespace

Fe fe_zero() { return Fe{}; }

Fe fe_one() {
  Fe r;
  r.v[0] = 1;
  return r;
}

Fe fe_add(const Fe& a, const Fe& b) {
  Fe r;
  for (int i = 0; i < 5; ++i) r.v[i] = a.v[i] + b.v[i];
  carry_once(r.v);
  return r;
}

Fe fe_sub(const Fe& a, const Fe& b) {
  // Add 2p before subtracting so limbs stay non-negative.
  Fe r;
  r.v[0] = a.v[0] + 0xFFFFFFFFFFFDAULL - b.v[0];
  r.v[1] = a.v[1] + 0xFFFFFFFFFFFFEULL - b.v[1];
  r.v[2] = a.v[2] + 0xFFFFFFFFFFFFEULL - b.v[2];
  r.v[3] = a.v[3] + 0xFFFFFFFFFFFFEULL - b.v[3];
  r.v[4] = a.v[4] + 0xFFFFFFFFFFFFEULL - b.v[4];
  carry_once(r.v);
  return r;
}

Fe fe_neg(const Fe& a) { return fe_sub(fe_zero(), a); }

Fe fe_mul(const Fe& a, const Fe& b) {
  const u64 a0 = a.v[0], a1 = a.v[1], a2 = a.v[2], a3 = a.v[3], a4 = a.v[4];
  const u64 b0 = b.v[0], b1 = b.v[1], b2 = b.v[2], b3 = b.v[3], b4 = b.v[4];
  const u64 b1_19 = b1 * 19, b2_19 = b2 * 19, b3_19 = b3 * 19, b4_19 = b4 * 19;

  u128 t0 = (u128)a0 * b0 + (u128)a1 * b4_19 + (u128)a2 * b3_19 +
            (u128)a3 * b2_19 + (u128)a4 * b1_19;
  u128 t1 = (u128)a0 * b1 + (u128)a1 * b0 + (u128)a2 * b4_19 +
            (u128)a3 * b3_19 + (u128)a4 * b2_19;
  u128 t2 = (u128)a0 * b2 + (u128)a1 * b1 + (u128)a2 * b0 +
            (u128)a3 * b4_19 + (u128)a4 * b3_19;
  u128 t3 = (u128)a0 * b3 + (u128)a1 * b2 + (u128)a2 * b1 + (u128)a3 * b0 +
            (u128)a4 * b4_19;
  u128 t4 = (u128)a0 * b4 + (u128)a1 * b3 + (u128)a2 * b2 + (u128)a3 * b1 +
            (u128)a4 * b0;

  Fe r;
  u64 c;
  r.v[0] = (u64)t0 & kMask; c = (u64)(t0 >> 51);
  t1 += c;
  r.v[1] = (u64)t1 & kMask; c = (u64)(t1 >> 51);
  t2 += c;
  r.v[2] = (u64)t2 & kMask; c = (u64)(t2 >> 51);
  t3 += c;
  r.v[3] = (u64)t3 & kMask; c = (u64)(t3 >> 51);
  t4 += c;
  r.v[4] = (u64)t4 & kMask; c = (u64)(t4 >> 51);
  r.v[0] += c * 19;
  c = r.v[0] >> 51; r.v[0] &= kMask; r.v[1] += c;
  return r;
}

Fe fe_sq(const Fe& a) { return fe_mul(a, a); }

Fe fe_mul_small(const Fe& a, std::uint64_t s) {
  Fe r;
  u128 c = 0;
  for (int i = 0; i < 5; ++i) {
    const u128 t = (u128)a.v[i] * s + c;
    r.v[i] = (u64)t & kMask;
    c = t >> 51;
  }
  r.v[0] += (u64)c * 19;
  carry_once(r.v);
  return r;
}

Fe fe_frombytes(const std::uint8_t in[32]) {
  Fe r;
  r.v[0] = load_le64(in) & kMask;
  r.v[1] = (load_le64(in + 6) >> 3) & kMask;
  r.v[2] = (load_le64(in + 12) >> 6) & kMask;
  r.v[3] = (load_le64(in + 19) >> 1) & kMask;
  r.v[4] = (load_le64(in + 24) >> 12) & kMask;
  return r;
}

void fe_tobytes(std::uint8_t out[32], const Fe& a) {
  std::array<u64, 5> h = a.v;
  carry_once(h);
  carry_once(h);

  // q = floor((h + 19) / 2^255) ∈ {0, 1}
  u64 q = (h[0] + 19) >> 51;
  q = (h[1] + q) >> 51;
  q = (h[2] + q) >> 51;
  q = (h[3] + q) >> 51;
  q = (h[4] + q) >> 51;

  h[0] += 19 * q;
  h[1] += h[0] >> 51; h[0] &= kMask;
  h[2] += h[1] >> 51; h[1] &= kMask;
  h[3] += h[2] >> 51; h[2] &= kMask;
  h[4] += h[3] >> 51; h[3] &= kMask;
  h[4] &= kMask;  // drop the 2^255 bit

  store_le64(out, h[0] | (h[1] << 51));
  store_le64(out + 8, (h[1] >> 13) | (h[2] << 38));
  store_le64(out + 16, (h[2] >> 26) | (h[3] << 25));
  store_le64(out + 24, (h[3] >> 39) | (h[4] << 12));
}

Fe fe_pow(const Fe& x, const std::uint8_t exponent_le[32]) {
  Fe result = fe_one();
  bool started = false;
  for (int byte = 31; byte >= 0; --byte) {
    for (int bit = 7; bit >= 0; --bit) {
      if (started) result = fe_sq(result);
      if ((exponent_le[byte] >> bit) & 1) {
        result = started ? fe_mul(result, x) : x;
        started = true;
      }
    }
  }
  return started ? result : fe_one();
}

Fe fe_invert(const Fe& x) {
  std::uint8_t e[32];
  make_exponent(e, 255, 21);  // p - 2 = 2^255 - 21
  return fe_pow(x, e);
}

Fe fe_pow2523(const Fe& x) {
  std::uint8_t e[32];
  make_exponent(e, 252, 3);  // (p - 5) / 8 = 2^252 - 3
  return fe_pow(x, e);
}

bool fe_iszero(const Fe& a) {
  std::uint8_t b[32];
  fe_tobytes(b, a);
  std::uint8_t acc = 0;
  for (int i = 0; i < 32; ++i) acc |= b[i];
  return acc == 0;
}

bool fe_isnegative(const Fe& a) {
  std::uint8_t b[32];
  fe_tobytes(b, a);
  return (b[0] & 1) != 0;
}

bool fe_equal(const Fe& a, const Fe& b) {
  std::uint8_t ba[32], bb[32];
  fe_tobytes(ba, a);
  fe_tobytes(bb, b);
  return ct_equal(ByteSpan(ba, 32), ByteSpan(bb, 32));
}

void fe_cswap(Fe& a, Fe& b, std::uint64_t bit) {
  const u64 mask = ~(bit - 1);  // all-ones iff bit == 1
  for (int i = 0; i < 5; ++i) {
    const u64 t = mask & (a.v[i] ^ b.v[i]);
    a.v[i] ^= t;
    b.v[i] ^= t;
  }
}

const Fe& fe_sqrtm1() {
  static const Fe value = [] {
    std::uint8_t e[32];
    make_exponent(e, 253, 5);  // (p - 1) / 4 = 2^253 - 5
    Fe two = fe_add(fe_one(), fe_one());
    return fe_pow(two, e);
  }();
  return value;
}

}  // namespace apna::crypto

// AVX2 tier: VEX-encoded AES-NI kernels, 16 independent blocks/chains in
// flight. This translation unit is compiled with -maes -mavx2; callers gate
// on avx2_aes_supported() at runtime.
//
// There is no 256-bit aesenc without VAES — the win of this tier over the
// aesni one is depth, not width: 16-wide interleave (vs 8) rides deeper
// out-of-order windows, and the three-operand VEX forms remove the
// register-copy mov traffic the legacy encodings force around spills.
#include <cstdint>

#include "crypto/aes.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define APNA_HAVE_AVX2_AES_BUILD 1
#endif

namespace apna::crypto::detail {

bool avx2_aes_supported() {
#if defined(APNA_HAVE_AVX2_AES_BUILD)
  return __builtin_cpu_supports("aes") != 0 &&
         __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

#if defined(APNA_HAVE_AVX2_AES_BUILD)

void avx2_encrypt_blocks(const std::uint8_t rk[176], const std::uint8_t* in,
                         std::uint8_t* out, std::size_t nblocks) {
  const __m128i* keys = reinterpret_cast<const __m128i*>(rk);
  __m128i k[11];
  for (int i = 0; i <= 10; ++i) k[i] = _mm_loadu_si128(keys + i);

  const __m128i* src = reinterpret_cast<const __m128i*>(in);
  __m128i* dst = reinterpret_cast<__m128i*>(out);
  std::size_t i = 0;
  for (; i + 16 <= nblocks; i += 16) {
    __m128i b[16];
#pragma GCC unroll 16
    for (int l = 0; l < 16; ++l)
      b[l] = _mm_xor_si128(_mm_loadu_si128(src + i + l), k[0]);
    for (int r = 1; r < 10; ++r) {
#pragma GCC unroll 16
      for (int l = 0; l < 16; ++l) b[l] = _mm_aesenc_si128(b[l], k[r]);
    }
#pragma GCC unroll 16
    for (int l = 0; l < 16; ++l) {
      b[l] = _mm_aesenclast_si128(b[l], k[10]);
      _mm_storeu_si128(dst + i + l, b[l]);
    }
  }
  // Remainder: the 8/4/1-wide aesni tails.
  if (i < nblocks) aesni_encrypt_blocks(rk, in + 16 * i, out + 16 * i,
                                        nblocks - i);
}

void avx2_cbcmac_absorb_16(const std::uint8_t* const rk[16],
                           std::uint8_t* const x[16],
                           const std::uint8_t* const data[16],
                           std::size_t nblocks) {
  // Sixteen chain states; the register file holds them all (x86-64 has 16
  // xmm registers), so round keys are re-loaded per use — L1-resident, the
  // loads hide inside each chain's serial aesenc latency.
  __m128i s[16];
  const __m128i* k[16];
#pragma GCC unroll 16
  for (int l = 0; l < 16; ++l) {
    s[l] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(x[l]));
    k[l] = reinterpret_cast<const __m128i*>(rk[l]);
  }
  for (std::size_t b = 0; b < nblocks; ++b) {
#pragma GCC unroll 16
    for (int l = 0; l < 16; ++l) {
      const __m128i blk = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(data[l] + 16 * b));
      s[l] = _mm_xor_si128(_mm_xor_si128(s[l], blk),
                           _mm_loadu_si128(k[l] + 0));
    }
    for (int r = 1; r < 10; ++r) {
#pragma GCC unroll 16
      for (int l = 0; l < 16; ++l)
        s[l] = _mm_aesenc_si128(s[l], _mm_loadu_si128(k[l] + r));
    }
#pragma GCC unroll 16
    for (int l = 0; l < 16; ++l)
      s[l] = _mm_aesenclast_si128(s[l], _mm_loadu_si128(k[l] + 10));
  }
#pragma GCC unroll 16
  for (int l = 0; l < 16; ++l)
    _mm_storeu_si128(reinterpret_cast<__m128i*>(x[l]), s[l]);
}

#else  // !APNA_HAVE_AVX2_AES_BUILD

void avx2_encrypt_blocks(const std::uint8_t rk[176], const std::uint8_t* in,
                         std::uint8_t* out, std::size_t nblocks) {
  aesni_encrypt_blocks(rk, in, out, nblocks);
}

void avx2_cbcmac_absorb_16(const std::uint8_t* const rk[16],
                           std::uint8_t* const x[16],
                           const std::uint8_t* const data[16],
                           std::size_t nblocks) {
  for (int l = 0; l < 16; ++l) aesni_cbcmac_absorb(rk[l], x[l], data[l],
                                                   nblocks);
}

#endif

}  // namespace apna::crypto::detail

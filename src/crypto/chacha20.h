// ChaCha20 stream cipher and Poly1305 one-time MAC (RFC 8439), combined as
// the ChaCha20-Poly1305 AEAD.
//
// The paper requires "any conventional CCA-secure scheme" for payload
// encryption (§IV-A). ChaCha20-Poly1305 is this repo's default software
// suite: it is fast without hardware support, unlike GCM whose portable
// GHASH is slow. ChaCha20 also drives the deterministic RNG (drbg.h).
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "util/bytes.h"

namespace apna::crypto {

/// Raw ChaCha20 block function: fills `out` with the 64-byte keystream block
/// for (key, counter, nonce).
void chacha20_block(const std::uint8_t key[32], std::uint32_t counter,
                    const std::uint8_t nonce[12], std::uint8_t out[64]);

/// XORs `in` with the ChaCha20 keystream starting at block `counter`.
/// Internally generates keystream multiple blocks at a time (8-way AVX2 /
/// 4-way SSE2, vertical vectorization: one register lane per block), picked
/// at first use by cpuid and capped by APNA_CRYPTO_BACKEND — `soft` forces
/// the scalar block loop, `aesni` caps at SSE2. Output is bit-identical to
/// the scalar chacha20_block sequence on every tier (pinned by
/// crypto_property_test).
void chacha20_xcrypt(const std::uint8_t key[32], std::uint32_t counter,
                     const std::uint8_t nonce[12], ByteSpan in,
                     MutByteSpan out);

namespace detail {
/// Writes 4 consecutive keystream blocks (counter .. counter+3) into
/// out[0..256). SSE2 on x86 (baseline, no special compile flags); the
/// scalar loop elsewhere.
void chacha20_blocks4_sse2(const std::uint8_t key[32], std::uint32_t counter,
                           const std::uint8_t nonce[12],
                           std::uint8_t out[256]);
/// True when the CPU can run the 8-way AVX2 kernel.
bool chacha20_avx2_supported();
/// Writes 8 consecutive keystream blocks into out[0..512). Callers gate on
/// chacha20_avx2_supported(); the fallback is two 4-way sweeps.
void chacha20_blocks8_avx2(const std::uint8_t key[32], std::uint32_t counter,
                           const std::uint8_t nonce[12],
                           std::uint8_t out[512]);
}  // namespace detail

/// Poly1305 one-time authenticator over `msg` with the 32-byte one-time key.
std::array<std::uint8_t, 16> poly1305(const std::uint8_t key[32], ByteSpan msg);

/// ChaCha20-Poly1305 AEAD (RFC 8439 §2.8): 32-byte key, 12-byte nonce,
/// 16-byte tag.
class ChaCha20Poly1305 {
 public:
  static constexpr std::size_t kKeySize = 32;
  static constexpr std::size_t kNonceSize = 12;
  static constexpr std::size_t kTagSize = 16;

  explicit ChaCha20Poly1305(ByteSpan key32);

  /// Returns ciphertext ‖ tag.
  Bytes seal(ByteSpan nonce, ByteSpan aad, ByteSpan plaintext) const;

  /// Verifies and decrypts; nullopt on failure.
  std::optional<Bytes> open(ByteSpan nonce, ByteSpan aad,
                            ByteSpan ciphertext_and_tag) const;

  /// Allocation-free form: writes ciphertext ‖ tag into `out`, which must
  /// be exactly plaintext.size() + kTagSize bytes (callers reserve the
  /// space in pooled storage — the control-plane hot paths). Byte output
  /// is identical to seal().
  void seal_into(ByteSpan nonce, ByteSpan aad, ByteSpan plaintext,
                 MutByteSpan out) const;

  /// Allocation-free open: verifies and decrypts into `plaintext_out`
  /// (exactly ciphertext_and_tag.size() - kTagSize bytes). Returns false —
  /// writing nothing — on any authentication failure.
  bool open_into(ByteSpan nonce, ByteSpan aad, ByteSpan ciphertext_and_tag,
                 MutByteSpan plaintext_out) const;

 private:
  std::array<std::uint8_t, 32> key_;
};

}  // namespace apna::crypto

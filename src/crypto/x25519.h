// X25519 Diffie-Hellman (RFC 7748).
//
// APNA's key exchanges all run over Curve25519 (§V-A2: "cryptographic
// primitives based on Curve25519 ... Key exchange is done using the
// elliptic-curve variant of Diffie-Hellman"): host↔AS bootstrap keys
// (Fig 2) and per-connection session keys between EphID key pairs (§IV-D1).
#pragma once

#include <array>
#include <cstdint>

#include "crypto/rng.h"
#include "util/bytes.h"

namespace apna::crypto {

using X25519PrivateKey = std::array<std::uint8_t, 32>;
using X25519PublicKey = std::array<std::uint8_t, 32>;
using SharedSecret = std::array<std::uint8_t, 32>;

/// scalar · point (general X25519 function). `scalar` is clamped internally.
X25519PublicKey x25519(const X25519PrivateKey& scalar,
                       const X25519PublicKey& u_point);

/// scalar · basepoint(9): derives the public key.
X25519PublicKey x25519_base(const X25519PrivateKey& scalar);

/// Ephemeral key pair bound to an EphID (K+_EphID, K-_EphID in the paper).
struct X25519KeyPair {
  X25519PrivateKey priv;
  X25519PublicKey pub;

  static X25519KeyPair generate(Rng& rng);
};

/// Raw DH shared secret; callers must run it through a KDF before use.
SharedSecret x25519_shared(const X25519PrivateKey& priv,
                           const X25519PublicKey& peer_pub);

}  // namespace apna::crypto

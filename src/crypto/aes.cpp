#include "crypto/aes.h"

#include <cassert>
#include <cstring>

namespace apna::crypto {

Aes128::Aes128(ByteSpan key, Backend backend)
    : use_ni_(backend == Backend::auto_detect && detail::aesni_supported()) {
  assert(key.size() == kKeySize && "Aes128 requires a 16-byte key");
  if (use_ni_) {
    detail::aesni_expand_key128(key.data(), round_keys_.data());
  } else {
    detail::soft_expand_key128(key.data(), round_keys_.data());
  }
}

void Aes128::encrypt_block(const std::uint8_t in[kBlockSize],
                           std::uint8_t out[kBlockSize]) const {
  if (use_ni_) {
    detail::aesni_encrypt_blocks(round_keys_.data(), in, out, 1);
  } else {
    detail::soft_encrypt_block(round_keys_.data(), in, out);
  }
}

void Aes128::encrypt_blocks(const std::uint8_t* in, std::uint8_t* out,
                            std::size_t n) const {
  if (use_ni_) {
    detail::aesni_encrypt_blocks(round_keys_.data(), in, out, n);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    detail::soft_encrypt_block(round_keys_.data(), in + 16 * i, out + 16 * i);
  }
}

void Aes128::cbc_mac_absorb(std::uint8_t x[kBlockSize],
                            const std::uint8_t* data,
                            std::size_t nblocks) const {
  if (use_ni_) {
    detail::aesni_cbcmac_absorb(round_keys_.data(), x, data, nblocks);
    return;
  }
  for (std::size_t b = 0; b < nblocks; ++b) {
    for (int i = 0; i < 16; ++i) x[i] ^= data[16 * b + i];
    detail::soft_encrypt_block(round_keys_.data(), x, x);
  }
}

bool Aes128::has_aesni() { return detail::aesni_supported(); }

}  // namespace apna::crypto

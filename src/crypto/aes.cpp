#include "crypto/aes.h"

#include <cassert>
#include <cstdlib>
#include <cstring>

namespace apna::crypto {

namespace detail {

/// APNA_CRYPTO_BACKEND cap, parsed once. auto_detect means "no cap".
Aes128::Backend env_backend_cap() {
  using Backend = Aes128::Backend;
  static const Backend cap = [] {
    const char* v = std::getenv("APNA_CRYPTO_BACKEND");
    if (v == nullptr) return Backend::auto_detect;
    if (std::strcmp(v, "soft") == 0) return Backend::soft;
    if (std::strcmp(v, "aesni") == 0) return Backend::aesni;
    if (std::strcmp(v, "avx2") == 0) return Backend::avx2;
    if (std::strcmp(v, "vaes_avx512") == 0) return Backend::vaes_avx512;
    return Backend::auto_detect;  // unknown value: ignore the cap
  }();
  return cap;
}

}  // namespace detail

namespace {

using Backend = Aes128::Backend;

/// Widest tier the CPU can run, ignoring the environment.
Backend widest_supported() {
  if (detail::vaes_avx512_supported()) return Backend::vaes_avx512;
  if (detail::avx2_aes_supported()) return Backend::avx2;
  if (detail::aesni_supported()) return Backend::aesni;
  return Backend::soft;
}

/// Downgrades `want` to what the CPU supports (never upgrades).
Backend clamp_to_cpu(Backend want) {
  const Backend widest = widest_supported();
  return static_cast<std::uint8_t>(want) <= static_cast<std::uint8_t>(widest)
             ? want
             : widest;
}

}  // namespace

Backend Aes128::best_backend() {
  const Backend cap = detail::env_backend_cap();
  const Backend widest = widest_supported();
  if (cap == Backend::auto_detect) return widest;
  return clamp_to_cpu(cap);
}

Backend Aes128::resolve_backend(Backend requested) {
  if (requested == Backend::auto_detect) return best_backend();
  if (requested == Backend::soft) return Backend::soft;
  return clamp_to_cpu(requested);
}

const char* Aes128::backend_name(Backend b) {
  switch (b) {
    case Backend::soft: return "soft";
    case Backend::aesni: return "aesni";
    case Backend::avx2: return "avx2";
    case Backend::vaes_avx512: return "vaes_avx512";
    case Backend::auto_detect: break;
  }
  return "auto";
}

const char* Aes128::backend() const { return backend_name(tier_); }

Aes128::Aes128(ByteSpan key, Backend backend)
    : tier_(resolve_backend(backend)) {
  assert(key.size() == kKeySize && "Aes128 requires a 16-byte key");
  if (tier_ != Backend::soft) {
    detail::aesni_expand_key128(key.data(), round_keys_.data());
  } else {
    detail::soft_expand_key128(key.data(), round_keys_.data());
  }
}

void Aes128::encrypt_block(const std::uint8_t in[kBlockSize],
                           std::uint8_t out[kBlockSize]) const {
  if (tier_ != Backend::soft) {
    detail::aesni_encrypt_blocks(round_keys_.data(), in, out, 1);
  } else {
    detail::soft_encrypt_block(round_keys_.data(), in, out);
  }
}

void Aes128::encrypt_blocks(const std::uint8_t* in, std::uint8_t* out,
                            std::size_t n) const {
  switch (tier_) {
    case Backend::vaes_avx512:
      detail::vaes_encrypt_blocks(round_keys_.data(), in, out, n);
      return;
    case Backend::avx2:
      detail::avx2_encrypt_blocks(round_keys_.data(), in, out, n);
      return;
    case Backend::aesni:
      detail::aesni_encrypt_blocks(round_keys_.data(), in, out, n);
      return;
    default:
      break;
  }
  for (std::size_t i = 0; i < n; ++i) {
    detail::soft_encrypt_block(round_keys_.data(), in + 16 * i, out + 16 * i);
  }
}

void Aes128::cbc_mac_absorb(std::uint8_t x[kBlockSize],
                            const std::uint8_t* data,
                            std::size_t nblocks) const {
  if (tier_ != Backend::soft) {
    detail::aesni_cbcmac_absorb(round_keys_.data(), x, data, nblocks);
    return;
  }
  for (std::size_t b = 0; b < nblocks; ++b) {
    for (int i = 0; i < 16; ++i) x[i] ^= data[16 * b + i];
    detail::soft_encrypt_block(round_keys_.data(), x, x);
  }
}

bool Aes128::has_aesni() { return detail::aesni_supported(); }

}  // namespace apna::crypto

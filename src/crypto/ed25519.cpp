// Ed25519 over twisted Edwards curve -x^2 + y^2 = 1 + d x^2 y^2.
//
// Point arithmetic uses extended coordinates (X:Y:Z:T with T = XY/Z);
// formulas add-2008-hwcd-3 / dbl-2008-hwcd specialized to a = -1. Curve
// constants (d, 2d, base point) are derived at startup from first
// principles (d = -121665/121666, By = 4/5) instead of being transcribed,
// and validated by the RFC 8032 known-answer tests.
#include "crypto/ed25519.h"

#include <cstring>
#include <vector>

#include "crypto/fe25519.h"
#include "crypto/sha2.h"

namespace apna::crypto {

namespace {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

// ---- Curve constants (computed once) ---------------------------------------

struct CurveConstants {
  Fe d;    // -121665 / 121666
  Fe d2;   // 2d
};

const CurveConstants& constants() {
  static const CurveConstants c = [] {
    CurveConstants out;
    Fe num = fe_neg(fe_mul_small(fe_one(), 121665));
    Fe den = fe_mul_small(fe_one(), 121666);
    out.d = fe_mul(num, fe_invert(den));
    out.d2 = fe_add(out.d, out.d);
    return out;
  }();
  return c;
}

// ---- Group elements ---------------------------------------------------------

struct Ge {
  Fe x, y, z, t;
};

Ge ge_identity() { return Ge{fe_zero(), fe_one(), fe_one(), fe_zero()}; }

Ge ge_add(const Ge& p, const Ge& q) {
  const Fe a = fe_mul(fe_sub(p.y, p.x), fe_sub(q.y, q.x));
  const Fe b = fe_mul(fe_add(p.y, p.x), fe_add(q.y, q.x));
  const Fe c = fe_mul(fe_mul(p.t, constants().d2), q.t);
  const Fe d = fe_add(fe_mul(p.z, q.z), fe_mul(p.z, q.z));
  const Fe e = fe_sub(b, a);
  const Fe f = fe_sub(d, c);
  const Fe g = fe_add(d, c);
  const Fe h = fe_add(b, a);
  return Ge{fe_mul(e, f), fe_mul(g, h), fe_mul(f, g), fe_mul(e, h)};
}

Ge ge_double(const Ge& p) {
  const Fe a = fe_sq(p.x);
  const Fe b = fe_sq(p.y);
  const Fe zz = fe_sq(p.z);
  const Fe c = fe_add(zz, zz);
  const Fe e = fe_sub(fe_sub(fe_sq(fe_add(p.x, p.y)), a), b);
  const Fe g = fe_sub(b, a);          // a=-1: G = D + B with D = -A
  const Fe f = fe_sub(g, c);
  const Fe h = fe_neg(fe_add(a, b));  // H = D - B
  return Ge{fe_mul(e, f), fe_mul(g, h), fe_mul(f, g), fe_mul(e, h)};
}

Ge ge_neg(const Ge& p) { return Ge{fe_neg(p.x), p.y, p.z, fe_neg(p.t)}; }

void ge_tobytes(std::uint8_t out[32], const Ge& p) {
  const Fe zinv = fe_invert(p.z);
  const Fe x = fe_mul(p.x, zinv);
  const Fe y = fe_mul(p.y, zinv);
  fe_tobytes(out, y);
  if (fe_isnegative(x)) out[31] ^= 0x80;
}

/// Decompresses a point; returns false for non-curve encodings.
bool ge_frombytes(Ge& out, const std::uint8_t in[32]) {
  const bool sign = (in[31] & 0x80) != 0;
  const Fe y = fe_frombytes(in);
  const Fe y2 = fe_sq(y);
  const Fe u = fe_sub(y2, fe_one());                       // y^2 - 1
  const Fe v = fe_add(fe_mul(y2, constants().d), fe_one());  // d y^2 + 1

  // x = u v^3 (u v^7)^((p-5)/8)
  const Fe v3 = fe_mul(fe_sq(v), v);
  const Fe v7 = fe_mul(fe_sq(v3), v);
  Fe x = fe_mul(fe_mul(u, v3), fe_pow2523(fe_mul(u, v7)));

  const Fe vx2 = fe_mul(v, fe_sq(x));
  if (!fe_equal(vx2, u)) {
    if (!fe_equal(vx2, fe_neg(u))) return false;
    x = fe_mul(x, fe_sqrtm1());
  }
  if (fe_iszero(x) && sign) return false;  // -0 is not a valid encoding
  if (fe_isnegative(x) != sign) x = fe_neg(x);

  out.x = x;
  out.y = y;
  out.z = fe_one();
  out.t = fe_mul(x, y);
  return true;
}

/// Variable-base scalar multiplication, 4-bit fixed window.
Ge ge_scalarmult(const Ge& p, const std::uint8_t scalar_le[32]) {
  // Precompute 1..15 multiples of p.
  Ge table[16];
  table[0] = ge_identity();
  table[1] = p;
  for (int i = 2; i < 16; ++i) table[i] = ge_add(table[i - 1], p);

  Ge r = ge_identity();
  bool started = false;
  for (int i = 63; i >= 0; --i) {
    const std::uint8_t byte = scalar_le[i / 2];
    const std::uint8_t nib = (i % 2 == 1) ? (byte >> 4) : (byte & 0xf);
    if (started) {
      r = ge_double(ge_double(ge_double(ge_double(r))));
    }
    if (nib != 0) {
      r = started ? ge_add(r, table[nib]) : table[nib];
      started = true;
    } else if (!started) {
      continue;
    }
  }
  return started ? r : ge_identity();
}

// ---- Base point and fixed-base table ---------------------------------------

const Ge& base_point() {
  static const Ge b = [] {
    // B.y = 4/5, x even (sign bit 0): the standard encoding is LE(4/5).
    const Fe four = fe_mul_small(fe_one(), 4);
    const Fe five = fe_mul_small(fe_one(), 5);
    const Fe y = fe_mul(four, fe_invert(five));
    std::uint8_t enc[32];
    fe_tobytes(enc, y);  // sign bit 0
    Ge b_pt;
    const bool ok = ge_frombytes(b_pt, enc);
    (void)ok;
    return b_pt;
  }();
  return b;
}

// Fixed-base table: table[i][j-1] = j * 16^i * B, i in [0,64), j in [1,15].
// Makes signing a sequence of ≤64 point additions (experiment E1 depends on
// fast certificate issuance).
struct BaseTable {
  Ge entry[64][15];
};

const BaseTable& base_table() {
  static const BaseTable t = [] {
    BaseTable bt;
    Ge power = base_point();  // 16^i * B
    for (int i = 0; i < 64; ++i) {
      bt.entry[i][0] = power;
      for (int j = 1; j < 15; ++j)
        bt.entry[i][j] = ge_add(bt.entry[i][j - 1], power);
      power = ge_double(ge_double(ge_double(ge_double(power))));
    }
    return bt;
  }();
  return t;
}

Ge ge_scalarmult_base(const std::uint8_t scalar_le[32]) {
  const BaseTable& bt = base_table();
  Ge r = ge_identity();
  bool started = false;
  for (int i = 0; i < 64; ++i) {
    const std::uint8_t byte = scalar_le[i / 2];
    const std::uint8_t nib = (i % 2 == 0) ? (byte & 0xf) : (byte >> 4);
    if (nib == 0) continue;
    const Ge& e = bt.entry[i][nib - 1];
    r = started ? ge_add(r, e) : e;
    started = true;
  }
  return started ? r : ge_identity();
}

// ---- Scalar arithmetic mod L ------------------------------------------------
// L = 2^252 + 27742317777372353535851937790883648493
//   = 0x1000...014DEF9DEA2F79CD65812631A5CF5D3ED

constexpr u64 kL[4] = {0x5812631a5cf5d3edULL, 0x14def9dea2f79cd6ULL,
                       0x0000000000000000ULL, 0x1000000000000000ULL};

// 512-bit big integer as 8 little-endian 64-bit words.
struct U512 {
  u64 w[8] = {};
};

int u512_cmp_shifted(const U512& x, const u64 l[4], int shift_words,
                     int shift_bits) {
  // Compares x with L << (64*shift_words + shift_bits). L is 253 bits so the
  // shifted value spans at most 5 words starting at shift_words.
  u64 shifted[9] = {};
  for (int i = 0; i < 4; ++i) {
    shifted[shift_words + i] |= shift_bits ? (l[i] << shift_bits) : l[i];
    if (shift_bits && shift_words + i + 1 < 9)
      shifted[shift_words + i + 1] |= l[i] >> (64 - shift_bits);
  }
  for (int i = 8; i >= 0; --i) {
    const u64 xi = (i < 8) ? x.w[i] : 0;
    if (xi != shifted[i]) return xi < shifted[i] ? -1 : 1;
  }
  return 0;
}

void u512_sub_shifted(U512& x, const u64 l[4], int shift_words,
                      int shift_bits) {
  u64 shifted[8] = {};
  for (int i = 0; i < 4; ++i) {
    if (shift_words + i < 8)
      shifted[shift_words + i] |= shift_bits ? (l[i] << shift_bits) : l[i];
    if (shift_bits && shift_words + i + 1 < 8)
      shifted[shift_words + i + 1] |= l[i] >> (64 - shift_bits);
  }
  u64 borrow = 0;
  for (int i = 0; i < 8; ++i) {
    const u64 xi = x.w[i];
    const u64 t = xi - shifted[i];
    const u64 b1 = xi < shifted[i] ? 1 : 0;
    const u64 t2 = t - borrow;
    const u64 b2 = t < borrow ? 1 : 0;
    x.w[i] = t2;
    borrow = b1 | b2;
  }
}

/// x mod L by binary long division (x up to 512 bits).
void u512_mod_l(U512& x) {
  // L has bit length 253; highest useful shift is 512 - 253 = 259 bits.
  for (int shift = 259; shift >= 0; --shift) {
    const int sw = shift / 64, sb = shift % 64;
    if (u512_cmp_shifted(x, kL, sw, sb) >= 0) u512_sub_shifted(x, kL, sw, sb);
  }
}

void load_u512(U512& x, ByteSpan le_bytes) {
  std::uint8_t buf[64] = {};
  std::memcpy(buf, le_bytes.data(), std::min<std::size_t>(le_bytes.size(), 64));
  for (int i = 0; i < 8; ++i) x.w[i] = load_le64(buf + 8 * i);
}

void store_scalar(std::uint8_t out[32], const U512& x) {
  for (int i = 0; i < 4; ++i) store_le64(out + 8 * i, x.w[i]);
}

/// Reduces a 64-byte value (e.g. SHA-512 output) mod L.
void sc_reduce(std::uint8_t out[32], ByteSpan wide) {
  U512 x;
  load_u512(x, wide);
  u512_mod_l(x);
  store_scalar(out, x);
}

/// out = (a * b + c) mod L, all 32-byte little-endian scalars.
void sc_muladd(std::uint8_t out[32], const std::uint8_t a[32],
               const std::uint8_t b[32], const std::uint8_t c[32]) {
  u64 aw[4], bw[4];
  for (int i = 0; i < 4; ++i) {
    aw[i] = load_le64(a + 8 * i);
    bw[i] = load_le64(b + 8 * i);
  }
  U512 x;
  for (int i = 0; i < 4; ++i) {
    u128 carry = 0;
    for (int j = 0; j < 4; ++j) {
      const u128 cur = (u128)aw[i] * bw[j] + x.w[i + j] + carry;
      x.w[i + j] = (u64)cur;
      carry = cur >> 64;
    }
    x.w[i + 4] += (u64)carry;
  }
  // Add c.
  u128 carry = 0;
  for (int i = 0; i < 8; ++i) {
    const u128 cur = (u128)x.w[i] + (i < 4 ? load_le64(c + 8 * i) : 0) + carry;
    x.w[i] = (u64)cur;
    carry = cur >> 64;
  }
  u512_mod_l(x);
  store_scalar(out, x);
}

/// True iff s (32-byte LE) is < L — canonical per RFC 8032 verification.
bool sc_is_canonical(const std::uint8_t s[32]) {
  for (int i = 3; i >= 0; --i) {
    const u64 w = load_le64(s + 8 * i);
    if (w != kL[i]) return w < kL[i];
  }
  return false;  // s == L
}

void clamp(std::uint8_t s[32]) {
  s[0] &= 248;
  s[31] &= 127;
  s[31] |= 64;
}

}  // namespace

Ed25519PublicKey ed25519_public_key(const Ed25519Seed& seed) {
  auto h = Sha512::hash(ByteSpan(seed.data(), seed.size()));
  std::uint8_t s[32];
  std::memcpy(s, h.data(), 32);
  clamp(s);
  const Ge a = ge_scalarmult_base(s);
  Ed25519PublicKey pub;
  ge_tobytes(pub.data(), a);
  return pub;
}

Ed25519Signature ed25519_sign(const Ed25519Seed& seed,
                              const Ed25519PublicKey& pub, ByteSpan msg) {
  auto h = Sha512::hash(ByteSpan(seed.data(), seed.size()));
  std::uint8_t s[32];
  std::memcpy(s, h.data(), 32);
  clamp(s);

  // r = SHA512(prefix ‖ msg) mod L
  Sha512 hr;
  hr.update(ByteSpan(h.data() + 32, 32));
  hr.update(msg);
  const auto r_wide = hr.finish();
  std::uint8_t r[32];
  sc_reduce(r, ByteSpan(r_wide.data(), r_wide.size()));

  const Ge r_point = ge_scalarmult_base(r);
  Ed25519Signature sig{};
  ge_tobytes(sig.data(), r_point);

  // k = SHA512(R ‖ pub ‖ msg) mod L
  Sha512 hk;
  hk.update(ByteSpan(sig.data(), 32));
  hk.update(ByteSpan(pub.data(), 32));
  hk.update(msg);
  const auto k_wide = hk.finish();
  std::uint8_t k[32];
  sc_reduce(k, ByteSpan(k_wide.data(), k_wide.size()));

  // S = (r + k*s) mod L
  sc_muladd(sig.data() + 32, k, s, r);
  return sig;
}

bool ed25519_verify(const Ed25519PublicKey& pub, ByteSpan msg,
                    const Ed25519Signature& sig) {
  if (!sc_is_canonical(sig.data() + 32)) return false;

  Ge a;
  if (!ge_frombytes(a, pub.data())) return false;

  Sha512 hk;
  hk.update(ByteSpan(sig.data(), 32));
  hk.update(ByteSpan(pub.data(), 32));
  hk.update(msg);
  const auto k_wide = hk.finish();
  std::uint8_t k[32];
  sc_reduce(k, ByteSpan(k_wide.data(), k_wide.size()));

  // Check encode(S·B − k·A) == R.
  const Ge sb = ge_scalarmult_base(sig.data() + 32);
  const Ge ka = ge_scalarmult(ge_neg(a), k);
  const Ge r_check = ge_add(sb, ka);
  std::uint8_t r_enc[32];
  ge_tobytes(r_enc, r_check);
  return ct_equal(ByteSpan(r_enc, 32), ByteSpan(sig.data(), 32));
}

// ---- Batch verification -----------------------------------------------------

namespace {

/// One screened, batch-ready signature: decoded points and derived scalars.
struct BatchEntry {
  std::size_t index;            // position in the caller's item array
  Ge neg_a;                     // −A_i
  Ge neg_r;                     // −R_i
  std::uint8_t s[32];           // S_i
  std::uint8_t k[32];           // SHA512(R ‖ A ‖ msg) mod L
};

std::uint8_t nibble_at(const std::uint8_t s[32], int pos) {
  const std::uint8_t byte = s[pos / 2];
  return (pos % 2 == 1) ? static_cast<std::uint8_t>(byte >> 4)
                        : static_cast<std::uint8_t>(byte & 0xf);
}

bool ge_is_identity(const Ge& p) {
  return fe_iszero(p.x) && fe_equal(p.y, p.z);
}

/// Evaluates the random-linear-combination equation over entries[lo, hi):
/// (Σ z_i S_i)·B + Σ (z_i k_i)·(−A_i) + Σ z_i·(−R_i) == identity, with
/// fresh z_i drawn per call. A shared-doubling Straus multi-scalar walk:
/// every point gets a 1..15 multiples table, then one pass over the 64
/// nibble positions does 4 doublings per position for the WHOLE sum.
bool rlc_check(const std::vector<BatchEntry>& entries, std::size_t lo,
               std::size_t hi, Rng& rng) {
  const std::size_t n = hi - lo;
  const std::size_t m = 2 * n + 1;  // −A_i, −R_i pairs plus B

  std::vector<std::array<Ge, 15>> tables(m);
  std::vector<std::array<std::uint8_t, 32>> scalars(m);

  std::uint8_t sb_coeff[32] = {};  // Σ z_i S_i mod L
  const std::uint8_t zero32[32] = {};

  for (std::size_t j = 0; j < n; ++j) {
    const BatchEntry& e = entries[lo + j];
    // z_i: 128-bit, forced ≡ 1 (mod 8) — nonzero by construction, and the
    // low three bits carry each signature's torsion component through the
    // sum unscaled.
    std::uint8_t z[32] = {};
    rng.fill(MutByteSpan(z, 16));
    z[0] = static_cast<std::uint8_t>((z[0] & ~std::uint8_t{7}) | 1);

    sc_muladd(sb_coeff, z, e.s, sb_coeff);              // += z_i S_i
    sc_muladd(scalars[2 * j].data(), z, e.k, zero32);   // z_i k_i
    std::memcpy(scalars[2 * j + 1].data(), z, 32);      // z_i

    auto build = [](std::array<Ge, 15>& t, const Ge& p) {
      t[0] = p;
      for (int i = 1; i < 15; ++i) t[i] = ge_add(t[i - 1], p);
    };
    build(tables[2 * j], e.neg_a);
    build(tables[2 * j + 1], e.neg_r);
  }
  scalars[m - 1] = std::to_array(sb_coeff);
  tables[m - 1][0] = base_point();
  for (int i = 1; i < 15; ++i)
    tables[m - 1][i] = ge_add(tables[m - 1][i - 1], base_point());

  Ge acc = ge_identity();
  bool started = false;
  for (int pos = 63; pos >= 0; --pos) {
    if (started)
      acc = ge_double(ge_double(ge_double(ge_double(acc))));
    for (std::size_t j = 0; j < m; ++j) {
      const std::uint8_t nib = nibble_at(scalars[j].data(), pos);
      if (nib == 0) continue;
      acc = started ? ge_add(acc, tables[j][nib - 1]) : tables[j][nib - 1];
      started = true;
    }
  }
  return !started || ge_is_identity(acc);
}

/// Verifies entries[lo, hi): RLC first, bisecting on failure down to scalar
/// ed25519_verify leaves so the result is bit-identical to the scalar path.
void batch_bisect(const std::vector<BatchEntry>& entries, std::size_t lo,
                  std::size_t hi, std::span<const Ed25519BatchItem> items,
                  bool* out, Rng& rng) {
  if (hi == lo) return;
  if (hi - lo == 1) {
    const Ed25519BatchItem& it = items[entries[lo].index];
    out[entries[lo].index] = ed25519_verify(*it.pub, it.msg, *it.sig);
    return;
  }
  if (rlc_check(entries, lo, hi, rng)) {
    for (std::size_t j = lo; j < hi; ++j) out[entries[j].index] = true;
    return;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  batch_bisect(entries, lo, mid, items, out, rng);
  batch_bisect(entries, mid, hi, items, out, rng);
}

}  // namespace

bool ed25519_verify_batch(std::span<const Ed25519BatchItem> items, bool* out,
                          Rng& rng) {
  std::vector<BatchEntry> entries;
  entries.reserve(items.size());

  for (std::size_t i = 0; i < items.size(); ++i) {
    const Ed25519BatchItem& it = items[i];
    out[i] = false;
    // Screens mirror the scalar rejects exactly. encode() only ever emits
    // canonical valid-curve encodings, so bytes that fail to decode — or
    // that decode but do not re-encode to themselves — can never equal
    // encode(S·B − k·A): scalar verification rejects them too.
    if (!sc_is_canonical(it.sig->data() + 32)) continue;
    Ge a;
    if (!ge_frombytes(a, it.pub->data())) continue;
    Ge r;
    if (!ge_frombytes(r, it.sig->data())) continue;
    std::uint8_t r_reenc[32];
    ge_tobytes(r_reenc, r);
    if (std::memcmp(r_reenc, it.sig->data(), 32) != 0) continue;

    BatchEntry e;
    e.index = i;
    e.neg_a = ge_neg(a);
    e.neg_r = ge_neg(r);
    std::memcpy(e.s, it.sig->data() + 32, 32);

    Sha512 hk;
    hk.update(ByteSpan(it.sig->data(), 32));
    hk.update(ByteSpan(it.pub->data(), 32));
    hk.update(it.msg);
    const auto k_wide = hk.finish();
    sc_reduce(e.k, ByteSpan(k_wide.data(), k_wide.size()));
    entries.push_back(e);
  }

  batch_bisect(entries, 0, entries.size(), items, out, rng);

  bool all = true;
  for (std::size_t i = 0; i < items.size(); ++i) all = all && out[i];
  return all;
}

Ed25519KeyPair Ed25519KeyPair::generate(Rng& rng) {
  Ed25519KeyPair kp;
  rng.fill(MutByteSpan(kp.seed.data(), kp.seed.size()));
  kp.pub = ed25519_public_key(kp.seed);
  return kp;
}

}  // namespace apna::crypto

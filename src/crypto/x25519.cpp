#include "crypto/x25519.h"

#include <cstring>

#include "crypto/fe25519.h"

namespace apna::crypto {

X25519PublicKey x25519(const X25519PrivateKey& scalar,
                       const X25519PublicKey& u_point) {
  std::uint8_t k[32];
  std::memcpy(k, scalar.data(), 32);
  k[0] &= 248;
  k[31] &= 127;
  k[31] |= 64;

  const Fe x1 = fe_frombytes(u_point.data());
  Fe x2 = fe_one(), z2 = fe_zero();
  Fe x3 = x1, z3 = fe_one();
  std::uint64_t swap = 0;

  for (int t = 254; t >= 0; --t) {
    const std::uint64_t k_t = (k[t / 8] >> (t % 8)) & 1;
    swap ^= k_t;
    fe_cswap(x2, x3, swap);
    fe_cswap(z2, z3, swap);
    swap = k_t;

    const Fe a = fe_add(x2, z2);
    const Fe aa = fe_sq(a);
    const Fe b = fe_sub(x2, z2);
    const Fe bb = fe_sq(b);
    const Fe e = fe_sub(aa, bb);
    const Fe c = fe_add(x3, z3);
    const Fe d = fe_sub(x3, z3);
    const Fe da = fe_mul(d, a);
    const Fe cb = fe_mul(c, b);
    x3 = fe_sq(fe_add(da, cb));
    z3 = fe_mul(x1, fe_sq(fe_sub(da, cb)));
    x2 = fe_mul(aa, bb);
    z2 = fe_mul(e, fe_add(aa, fe_mul_small(e, 121665)));
  }
  fe_cswap(x2, x3, swap);
  fe_cswap(z2, z3, swap);

  const Fe out = fe_mul(x2, fe_invert(z2));
  X25519PublicKey result;
  fe_tobytes(result.data(), out);
  return result;
}

X25519PublicKey x25519_base(const X25519PrivateKey& scalar) {
  X25519PublicKey base{};
  base[0] = 9;
  return x25519(scalar, base);
}

X25519KeyPair X25519KeyPair::generate(Rng& rng) {
  X25519KeyPair kp;
  rng.fill(MutByteSpan(kp.priv.data(), kp.priv.size()));
  kp.pub = x25519_base(kp.priv);
  return kp;
}

SharedSecret x25519_shared(const X25519PrivateKey& priv,
                           const X25519PublicKey& peer_pub) {
  return x25519(priv, peer_pub);
}

}  // namespace apna::crypto

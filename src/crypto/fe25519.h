// Field arithmetic mod p = 2^255 - 19, shared by X25519 and Ed25519.
//
// Representation: 5 unsigned 51-bit limbs (radix 2^51), products via
// unsigned __int128. Mirrors the curve25519-donna-c64 layout. Functions are
// branch-light but NOT fully constant-time; this is a research prototype and
// the known-answer tests (RFC 7748 / RFC 8032) anchor correctness.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace apna::crypto {

/// One field element; limbs may carry up to ~2^54 between reductions.
struct Fe {
  std::array<std::uint64_t, 5> v{};
};

Fe fe_zero();
Fe fe_one();
Fe fe_add(const Fe& a, const Fe& b);
Fe fe_sub(const Fe& a, const Fe& b);
Fe fe_neg(const Fe& a);
Fe fe_mul(const Fe& a, const Fe& b);
Fe fe_sq(const Fe& a);
/// Multiplication by a small constant (≤ 2^20), e.g. 121666.
Fe fe_mul_small(const Fe& a, std::uint64_t s);

/// Deserializes 32 little-endian bytes; the top bit is ignored (RFC 7748).
Fe fe_frombytes(const std::uint8_t in[32]);
/// Serializes to the unique canonical representative in [0, p).
void fe_tobytes(std::uint8_t out[32], const Fe& a);

/// x^e for a 256-bit little-endian exponent (square-and-multiply).
Fe fe_pow(const Fe& x, const std::uint8_t exponent_le[32]);
/// x^(p-2) — multiplicative inverse (0 maps to 0).
Fe fe_invert(const Fe& x);
/// x^((p-5)/8) — used in square-root extraction for point decompression.
Fe fe_pow2523(const Fe& x);

bool fe_iszero(const Fe& a);
/// Parity bit (canonical form & 1); the "sign" in point compression.
bool fe_isnegative(const Fe& a);
bool fe_equal(const Fe& a, const Fe& b);

/// Constant-time conditional swap (swap iff bit == 1). Used by the ladder.
void fe_cswap(Fe& a, Fe& b, std::uint64_t bit);

/// sqrt(-1) mod p, computed once at startup as 2^((p-1)/4).
const Fe& fe_sqrtm1();

}  // namespace apna::crypto

// Random number generation.
//
// All randomness in the library flows through the Rng interface so that
// tests and simulations can inject a deterministic generator (reproducible
// runs) while production code uses an OS-seeded ChaCha20-based DRBG.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace apna::crypto {

/// Abstract randomness source. Implementations need not be thread-safe;
/// share one Rng per thread or guard externally.
class Rng {
 public:
  virtual ~Rng() = default;

  /// Fills `out` with random bytes.
  virtual void fill(MutByteSpan out) = 0;

  Bytes bytes(std::size_t n) {
    Bytes out(n);
    fill(out);
    return out;
  }

  std::uint32_t next_u32() {
    std::uint8_t b[4];
    fill(MutByteSpan(b, 4));
    return load_le32(b);
  }

  std::uint64_t next_u64() {
    std::uint8_t b[8];
    fill(MutByteSpan(b, 8));
    return load_le64(b);
  }

  /// Uniform value in [0, bound) via rejection sampling. bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double uniform_double();
};

/// ChaCha20-based deterministic random bit generator. Given the same seed it
/// produces the same stream — the backbone of reproducible simulations.
class ChaChaRng final : public Rng {
 public:
  /// Deterministic: seeds from an arbitrary byte string (hashed to 32 B).
  explicit ChaChaRng(ByteSpan seed);

  /// Deterministic: convenience 64-bit seed.
  explicit ChaChaRng(std::uint64_t seed);

  /// OS-seeded (std::random_device entropy).
  static ChaChaRng from_os_entropy();

  void fill(MutByteSpan out) override;

 private:
  void refill();

  std::array<std::uint8_t, 32> key_;
  std::uint32_t counter_ = 0;
  std::array<std::uint8_t, 64> block_{};
  std::size_t pos_ = 64;  // exhausted
};

/// Process-wide OS-seeded RNG for call sites without an injected Rng.
/// One instance per thread.
Rng& system_rng();

}  // namespace apna::crypto

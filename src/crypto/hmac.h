// HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869).
//
// APNA derives all symmetric keys by KDF: the two host↔AS keys from the DH
// result (§IV-B "deriving the two keys from the result of the DH exchange"),
// the AS-internal EphID keys kA' and kA'' from kA (§V-A1), and session keys
// from the X25519 shared secret (§IV-D1).
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace apna::crypto {

/// HMAC-SHA256 of `data` under `key` (any key length).
std::array<std::uint8_t, 32> hmac_sha256(ByteSpan key, ByteSpan data);

/// HKDF-Extract: PRK = HMAC(salt, ikm).
std::array<std::uint8_t, 32> hkdf_extract(ByteSpan salt, ByteSpan ikm);

/// HKDF-Expand: `out_len` bytes (≤ 255*32) of keying material bound to
/// `info`, from a PRK produced by hkdf_extract.
Bytes hkdf_expand(ByteSpan prk, ByteSpan info, std::size_t out_len);

/// One-shot extract+expand.
Bytes hkdf(ByteSpan salt, ByteSpan ikm, ByteSpan info, std::size_t out_len);

/// Convenience: derives a fixed 16-byte (AES) subkey labelled by `label`.
std::array<std::uint8_t, 16> derive_key16(ByteSpan ikm, std::string_view label);

/// Convenience: derives a fixed 32-byte subkey labelled by `label`.
std::array<std::uint8_t, 32> derive_key32(ByteSpan ikm, std::string_view label);

}  // namespace apna::crypto

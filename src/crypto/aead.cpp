#include "crypto/aead.h"

#include <cassert>

#include "crypto/chacha20.h"
#include "crypto/gcm.h"
#include "crypto/hmac.h"
#include "crypto/modes.h"

namespace apna::crypto {

const char* aead_suite_name(AeadSuite s) {
  switch (s) {
    case AeadSuite::chacha20_poly1305: return "chacha20-poly1305";
    case AeadSuite::aes128_gcm: return "aes128-gcm";
    case AeadSuite::aes128_ctr_cmac: return "aes128-ctr-cmac";
  }
  return "unknown";
}

namespace {

class ChaChaAead final : public Aead {
 public:
  explicit ChaChaAead(ByteSpan key32) : impl_(key32) {}
  AeadSuite suite() const override { return AeadSuite::chacha20_poly1305; }
  Bytes seal(ByteSpan n, ByteSpan aad, ByteSpan pt) const override {
    return impl_.seal(n, aad, pt);
  }
  std::optional<Bytes> open(ByteSpan n, ByteSpan aad,
                            ByteSpan ct) const override {
    return impl_.open(n, aad, ct);
  }

 private:
  ChaCha20Poly1305 impl_;
};

class GcmAead final : public Aead {
 public:
  explicit GcmAead(ByteSpan key32)
      : impl_(derive_key16(key32, "apna-aead-gcm")) {}
  AeadSuite suite() const override { return AeadSuite::aes128_gcm; }
  Bytes seal(ByteSpan n, ByteSpan aad, ByteSpan pt) const override {
    return impl_.seal(n, aad, pt);
  }
  std::optional<Bytes> open(ByteSpan n, ByteSpan aad,
                            ByteSpan ct) const override {
    return impl_.open(n, aad, ct);
  }

 private:
  AesGcm impl_;
};

// Encrypt-then-MAC generic composition [Bellare-Namprempre]: AES-CTR under
// k_enc, then CMAC over nonce ‖ aad ‖ ciphertext under an independent k_mac.
class EtmAead final : public Aead {
 public:
  explicit EtmAead(ByteSpan key32)
      : enc_(derive_key16(key32, "apna-aead-etm-enc")),
        mac_(derive_key16(key32, "apna-aead-etm-mac")) {}

  AeadSuite suite() const override { return AeadSuite::aes128_ctr_cmac; }

  Bytes seal(ByteSpan nonce, ByteSpan aad, ByteSpan pt) const override {
    std::uint8_t ctr[16] = {};
    std::memcpy(ctr, nonce.data(), std::min<std::size_t>(nonce.size(), 12));
    Bytes out(pt.size() + kTagSize);
    aes_ctr_xcrypt(enc_, ctr, pt, MutByteSpan(out.data(), pt.size()));
    const auto tag =
        mac_.mac2(mac_preamble(nonce, aad), ByteSpan(out.data(), pt.size()));
    std::memcpy(out.data() + pt.size(), tag.data(), kTagSize);
    return out;
  }

  std::optional<Bytes> open(ByteSpan nonce, ByteSpan aad,
                            ByteSpan ct_tag) const override {
    if (ct_tag.size() < kTagSize) return std::nullopt;
    const std::size_t ct_len = ct_tag.size() - kTagSize;
    ByteSpan ct = ct_tag.subspan(0, ct_len);
    const auto tag = mac_.mac2(mac_preamble(nonce, aad), ct);
    if (!ct_equal(ByteSpan(tag.data(), kTagSize), ct_tag.subspan(ct_len)))
      return std::nullopt;
    std::uint8_t ctr[16] = {};
    std::memcpy(ctr, nonce.data(), std::min<std::size_t>(nonce.size(), 12));
    Bytes pt(ct_len);
    aes_ctr_xcrypt(enc_, ctr, ct, pt);
    return pt;
  }

 private:
  // Length-prefixed preamble makes (nonce, aad, ct) parsing unambiguous.
  static Bytes mac_preamble(ByteSpan nonce, ByteSpan aad) {
    Bytes p;
    p.reserve(nonce.size() + aad.size() + 8);
    std::uint8_t lens[8];
    store_be32(lens, static_cast<std::uint32_t>(nonce.size()));
    store_be32(lens + 4, static_cast<std::uint32_t>(aad.size()));
    append(p, ByteSpan(lens, 8));
    append(p, nonce);
    append(p, aad);
    return p;
  }

  Aes128 enc_;
  AesCmac mac_;
};

}  // namespace

std::unique_ptr<Aead> Aead::create(AeadSuite suite, ByteSpan key32) {
  assert(key32.size() == 32);
  switch (suite) {
    case AeadSuite::chacha20_poly1305:
      return std::make_unique<ChaChaAead>(key32);
    case AeadSuite::aes128_gcm:
      return std::make_unique<GcmAead>(key32);
    case AeadSuite::aes128_ctr_cmac:
      return std::make_unique<EtmAead>(key32);
  }
  return nullptr;
}

}  // namespace apna::crypto

// DNS service (§VII-A).
//
// Stores signed records binding names to (receive-only) EphID certificates.
// Queries and publications run over ordinary APNA encrypted sessions — "DNS
// queries are encrypted just like any other data communication" — so only
// the DNS server and the querying host see names. Record signatures by the
// DNS service's EphID key stand in for DNSSEC.
//
// The zone store is shared: several ASes' DNS services can serve one global
// zone, modelling public DNS. A host may therefore query a *trusted* DNS in
// a different AS to keep its queries away from its own AS (§VII-A
// "Protecting DNS Queries").
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/as_state.h"
#include "core/handshake.h"
#include "core/messages.h"
#include "crypto/rng.h"
#include "net/sim.h"
#include "services/service_identity.h"
#include "services/service_runtime.h"
#include "wire/packet_buf.h"

namespace apna::services {

/// Shared name → record store (the global zone data).
class DnsZone {
 public:
  void put(const core::DnsRecord& rec) {
    std::lock_guard lock(mu_);
    records_[rec.name] = rec;
  }
  std::optional<core::DnsRecord> get(const std::string& name) const {
    std::lock_guard lock(mu_);
    auto it = records_.find(name);
    if (it == records_.end()) return std::nullopt;
    return it->second;
  }
  bool erase(const std::string& name) {
    std::lock_guard lock(mu_);
    return records_.erase(name) > 0;
  }
  std::size_t size() const {
    std::lock_guard lock(mu_);
    return records_.size();
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, core::DnsRecord> records_;
};

/// Session-layer operation codes carried in DNS data frames.
enum class DnsOp : std::uint8_t { query = 0, publish = 1, response = 2 };

class DnsService : public ControlService {
 public:
  /// Plain copyable counters — what stats() returns.
  struct Stats {
    std::uint64_t queries = 0;
    std::uint64_t nxdomain = 0;
    std::uint64_t publications = 0;
    std::uint64_t sessions = 0;
    std::uint64_t rejected = 0;
  };

  DnsService(core::AsState& as, const core::AsDirectory& directory,
             net::EventLoop& loop, crypto::Rng& rng, ServiceIdentity ident,
             DnsZone& zone)
      : as_(as),
        directory_(directory),
        loop_(loop),
        rng_(rng),
        ident_(std::move(ident)),
        zone_(zone) {}

  // ---- ControlService --------------------------------------------------------
  const core::EphId& service_ephid() const override {
    return ident_.cert.ephid;
  }
  core::Hid service_hid() const override { return ident_.hid; }
  const char* service_name() const override { return "dns"; }

  /// Handshake or data packet addressed to the DNS EphID. Returns the
  /// sealed reply (handshake response, or a DnsResponse/status frame).
  Result<wire::PacketBuf> handle_packet(const wire::PacketView& pkt) override;

  /// Signs a record under the DNS service key (DNSSEC stand-in).
  core::DnsRecord sign_record(const std::string& name,
                              const core::EphIdCertificate& cert,
                              std::uint32_t ipv4) const;

  /// Local-resolver conveniences (in-AS callers and tests).
  Result<core::DnsResponse> resolve(const core::DnsQuery& q);
  Result<void> publish(const core::DnsPublish& p);

  const core::EphIdCertificate& cert() const { return ident_.cert; }
  const ServiceIdentity& identity() const { return ident_; }
  const crypto::Ed25519PublicKey& record_key() const {
    return ident_.kp.pub.sig;
  }
  Stats stats() const {
    Stats s;
    s.queries = counters_.queries.load(std::memory_order_relaxed);
    s.nxdomain = counters_.nxdomain.load(std::memory_order_relaxed);
    s.publications = counters_.publications.load(std::memory_order_relaxed);
    s.sessions = counters_.sessions.load(std::memory_order_relaxed);
    s.rejected = counters_.rejected.load(std::memory_order_relaxed);
    return s;
  }

 private:
  wire::PacketBuf make_reply(const wire::PacketView& req,
                             wire::NextProto proto, ByteSpan payload) const;
  Result<Bytes> handle_op(ByteSpan plaintext);

  struct Counters {
    std::atomic<std::uint64_t> queries{0};
    std::atomic<std::uint64_t> nxdomain{0};
    std::atomic<std::uint64_t> publications{0};
    std::atomic<std::uint64_t> sessions{0};
    std::atomic<std::uint64_t> rejected{0};
  };

  core::AsState& as_;
  const core::AsDirectory& directory_;
  net::EventLoop& loop_;
  crypto::Rng& rng_;
  ServiceIdentity ident_;
  DnsZone& zone_;
  Counters counters_;
  std::uint64_t nonce_ = 1;
  // Live sessions keyed by client EphID.
  std::unordered_map<core::EphId, core::Session, core::EphIdHash> sessions_;
};

}  // namespace apna::services

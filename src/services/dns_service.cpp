#include "services/dns_service.h"

#include "core/packet_auth.h"
#include "wire/codec.h"

namespace apna::services {

core::DnsRecord DnsService::sign_record(const std::string& name,
                                        const core::EphIdCertificate& cert,
                                        std::uint32_t ipv4) const {
  core::DnsRecord rec;
  rec.name = name;
  rec.cert = cert;
  rec.ipv4 = ipv4;
  rec.sig = ident_.kp.sign(rec.tbs());
  return rec;
}

Result<core::DnsResponse> DnsService::resolve(const core::DnsQuery& q) {
  ++stats_.queries;
  core::DnsResponse resp;
  if (auto rec = zone_.get(q.name)) {
    resp.status = 0;
    resp.record = *rec;
    // Validating-resolver model: the zone entry was signed by the DNS
    // service that accepted the publication; the serving resolver re-signs
    // so clients verify against the key of the server they actually speak
    // to (the DNSSEC chain stand-in ends at the resolver).
    resp.record->sig = ident_.kp.sign(resp.record->tbs());
  } else {
    ++stats_.nxdomain;
    resp.status = 1;
  }
  return resp;
}

Result<void> DnsService::publish(const core::DnsPublish& p) {
  // The published certificate must be valid and issued by a known AS; the
  // DNS then re-signs the record (the DNSSEC chain).
  if (auto ok = core::validate_peer_cert(p.cert, directory_,
                                         loop_.now_seconds());
      !ok) {
    ++stats_.rejected;
    return ok;
  }
  zone_.put(sign_record(p.name, p.cert, p.ipv4));
  ++stats_.publications;
  return Result<void>::success();
}

Result<Bytes> DnsService::handle_op(ByteSpan plaintext) {
  wire::Reader r(plaintext);
  auto op = r.u8();
  if (!op) return op.error();
  switch (static_cast<DnsOp>(*op)) {
    case DnsOp::query: {
      auto q = core::DnsQuery::parse(r.rest());
      if (!q) return q.error();
      auto resp = resolve(*q);
      if (!resp) return resp.error();
      wire::Writer w(400);
      w.u8(static_cast<std::uint8_t>(DnsOp::response));
      w.raw(resp->serialize());
      return w.take();
    }
    case DnsOp::publish: {
      auto p = core::DnsPublish::parse(r.rest());
      if (!p) return p.error();
      const auto result = publish(*p);
      wire::Writer w(2);
      w.u8(static_cast<std::uint8_t>(DnsOp::response));
      w.u8(static_cast<std::uint8_t>(result.code()));
      return w.take();
    }
    case DnsOp::response:
      break;
  }
  return Result<Bytes>(Errc::malformed, "unexpected DNS op");
}

wire::PacketBuf DnsService::make_reply(const wire::PacketView& req,
                                       wire::NextProto proto,
                                       Bytes payload) const {
  wire::Packet resp;
  resp.src_aid = as_.aid;
  resp.src_ephid = ident_.cert.ephid.bytes;
  resp.dst_aid = req.src_aid();
  resp.dst_ephid = req.src_ephid();
  resp.proto = proto;
  resp.payload = std::move(payload);
  wire::PacketBuf out = resp.seal();
  core::stamp_packet_mac(*ident_.cmac, out);
  return out;
}

Result<wire::PacketBuf> DnsService::handle_packet(
    const wire::PacketView& pkt) {
  const core::ExpTime now = loop_.now_seconds();

  if (pkt.proto() == wire::NextProto::handshake) {
    // Handshake payloads carry a one-byte kind prefix (0 = init, 1 = resp).
    wire::Reader hr(pkt.payload());
    auto kind = hr.u8();
    if (!kind || *kind != 0) {
      ++stats_.rejected;
      return Result<wire::PacketBuf>(Errc::malformed,
                                     "expected handshake init");
    }
    auto init = core::HandshakeInit::parse(hr.rest());
    if (!init) {
      ++stats_.rejected;
      return init.error();
    }
    // The DNS service serves directly from its service EphID.
    auto hs = core::handshake_respond(*init, directory_, now, ident_.kp,
                                      ident_.cert, ident_.kp, ident_.cert,
                                      rng_.next_u64());
    if (!hs) {
      ++stats_.rejected;
      return hs.error();
    }
    core::EphId client;
    client.bytes = pkt.src_ephid();
    sessions_.erase(client);
    sessions_.emplace(client, std::move(hs->session));
    ++stats_.sessions;

    wire::Writer w(300);
    w.u8(1);  // handshake response kind
    w.raw(hs->response.serialize());
    return make_reply(pkt, wire::NextProto::handshake, w.take());
  }

  if (pkt.proto() == wire::NextProto::data) {
    core::EphId client;
    client.bytes = pkt.src_ephid();
    auto it = sessions_.find(client);
    if (it == sessions_.end()) {
      ++stats_.rejected;
      return Result<wire::PacketBuf>(Errc::not_found, "no session for client");
    }
    auto pt = it->second.open(pkt.payload());
    if (!pt) {
      ++stats_.rejected;
      return pt.error();
    }
    auto reply = handle_op(*pt);
    if (!reply) {
      ++stats_.rejected;
      return reply.error();
    }
    return make_reply(pkt, wire::NextProto::data,
                      it->second.seal(*reply));
  }

  ++stats_.rejected;
  return Result<wire::PacketBuf>(Errc::malformed, "DNS expects handshake/data");
}

}  // namespace apna::services

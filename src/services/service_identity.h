// Infrastructure identities.
//
// Every AS service (MS, DNS, AA) and border router is itself an addressable
// entity: it holds a HID, host↔AS keys (so its packets carry valid source
// MACs like any host's, §VIII-B), an EphID key pair and an AS-signed
// certificate. Bootstrap hands hosts the MS/DNS certificates (Fig 2).
#pragma once

#include "core/as_state.h"
#include "core/cert.h"
#include "core/ids.h"
#include "core/keys.h"
#include "crypto/rng.h"

namespace apna::services {

struct ServiceIdentity {
  core::Hid hid = 0;
  core::HostAsKeys keys;        // kHA of this infrastructure entity
  core::EphIdKeyPair kp;        // K±_EphID
  core::EphIdCertificate cert;  // AS-signed, kCertService
  std::shared_ptr<const crypto::AesCmac> cmac;  // pre-scheduled keys.mac
};

/// Creates a service identity inside `as`: registers its host record,
/// issues its EphID, and signs its certificate. `aa_ephid` is the AS's
/// accountability agent endpoint embedded in every certificate (§IV-C);
/// pass the service's own EphID when creating the AA itself.
inline ServiceIdentity make_service_identity(
    core::AsState& as, core::Hid hid, core::ExpTime exp_time,
    std::uint8_t extra_flags, const core::EphId* aa_ephid, crypto::Rng& rng) {
  ServiceIdentity s;
  s.hid = hid;
  s.kp = core::EphIdKeyPair::generate(rng);

  // Infrastructure kHA need not come from a DH exchange (the entity lives
  // inside the AS); derive from fresh randomness.
  crypto::SharedSecret seed{};
  rng.fill(MutByteSpan(seed.data(), seed.size()));
  s.keys = core::HostAsKeys::derive(seed);
  s.cmac = std::make_shared<const crypto::AesCmac>(
      ByteSpan(s.keys.mac.data(), s.keys.mac.size()));

  core::HostRecord rec;
  rec.hid = hid;
  rec.keys = s.keys;
  rec.subscriber_id = 0;  // infrastructure, not a customer
  as.host_db.upsert(rec);

  s.cert.ephid = as.codec.issue(hid, exp_time, rng);
  s.cert.exp_time = exp_time;
  s.cert.pub = s.kp.pub;
  s.cert.aid = as.aid;
  s.cert.aa_ephid = aa_ephid ? *aa_ephid : s.cert.ephid;
  s.cert.flags = static_cast<std::uint8_t>(core::kCertService | extra_flags);
  s.cert.sign_with(as.secrets.sign);
  return s;
}

}  // namespace apna::services

// PersistCoordinator — one AS's durability pipeline.
//
// The single `persist::Sink` every control-plane mutation site is wired
// to (RS, MS, AA, DnsZone, resolver domain blocks). It does two things
// with each record:
//
//  * appends it to the current generation's journal (group commit,
//    configurable fsync policy — persist/journal.h), and
//  * folds the above-core metadata (issued EphIDs, domain blocks, DNS
//    records) into in-memory aggregates, because the snapshot image
//    needs them and no single core structure tracks them.
//
// write_snapshot() publishes a full AsState image as generation g+1 and
// rotates the journal to `journal-<g+1>.log`; recovery therefore needs
// snapshot g plus journals g, g+1, ... (see core/as_persist.h). The last
// `keep_generations` snapshot/journal pairs are retained so a corrupt
// newest snapshot can fall back a generation.
//
// Journal-write failure degrades the pipeline explicitly (counted,
// non-durable) — issuance never blocks on a sick disk.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "core/as_persist.h"
#include "core/as_state.h"
#include "persist/journal.h"
#include "persist/sink.h"
#include "persist/vfs.h"

namespace apna::services {

class PersistCoordinator final : public persist::Sink {
 public:
  struct Config {
    persist::JournalConfig journal;
    /// Auto-snapshot after this many journaled records (0 = manual only).
    std::uint64_t snapshot_every_records = 0;
    /// Snapshot/journal generations retained (min 1).
    std::uint32_t keep_generations = 2;
    std::uint64_t seed = 0;   // provenance, recorded in snapshot headers
    std::string git_sha;      // provenance
  };

  struct Stats {
    persist::JournalWriter::Stats journal;
    std::uint64_t snapshots_written = 0;
    std::uint64_t snapshot_failures = 0;
    std::uint64_t generation = 0;
    std::uint64_t issued_tracked = 0;
    std::uint64_t blocked_tracked = 0;
    std::uint64_t dns_tracked = 0;
  };

  PersistCoordinator(persist::Vfs& vfs, std::string dir, core::AsState& as,
                     Config cfg);
  PersistCoordinator(persist::Vfs& vfs, std::string dir, core::AsState& as)
      : PersistCoordinator(vfs, std::move(dir), as, Config()) {}
  ~PersistCoordinator() override;

  /// Creates the directory, writes the initial snapshot (the generation
  /// after the newest on disk, or 1) and opens its journal. Must succeed
  /// before records are emitted.
  Result<void> start();

  /// Re-seeds the metadata aggregates after a recovery, so the next
  /// snapshot still carries what the pre-crash AS vouched for.
  void seed(std::vector<core::IssuedEphIdMeta> issued,
            std::vector<std::string> blocked_domains,
            std::vector<core::DnsRecord> dns_records);

  // persist::Sink
  bool append(std::uint8_t type, ByteSpan payload) override;

  /// Publishes a new snapshot generation and rotates the journal.
  Result<void> write_snapshot();

  /// Flushes the journal's group-commit buffer (fsync per policy).
  Result<void> commit();

  bool degraded() const;
  Stats stats() const;
  const std::string& dir() const { return dir_; }

 private:
  Result<void> write_snapshot_locked();

  persist::Vfs& vfs_;
  std::string dir_;
  core::AsState& as_;
  Config cfg_;

  mutable std::mutex mu_;
  std::uint64_t generation_ = 0;
  std::uint64_t records_since_snapshot_ = 0;
  std::uint64_t snapshots_written_ = 0;
  std::uint64_t snapshot_failures_ = 0;
  std::unique_ptr<persist::JournalWriter> journal_;
  /// Totals carried across journal rotations (stats() = base + current).
  persist::JournalWriter::Stats journal_base_;

  // Above-core state the snapshot image carries (core/as_persist.h
  // AsSnapshotExtras). Ordered containers keep snapshots byte-stable for
  // a given mutation history.
  std::vector<core::IssuedEphIdMeta> issued_;
  std::set<std::string> blocked_;
  std::map<std::string, core::DnsRecord> dns_;
};

}  // namespace apna::services

#include "services/persist_coordinator.h"

#include <algorithm>
#include <utility>

#include "wire/codec.h"

namespace apna::services {
namespace {

/// Parses "<stem>-<gen>.<ext>"; returns the generation or 0 (no valid
/// generation is ever 0 — start() begins at 1).
std::uint64_t parse_generation(const std::string& name, std::string_view stem,
                               std::string_view ext) {
  if (name.size() <= stem.size() + 1 + ext.size()) return 0;
  if (name.compare(0, stem.size(), stem) != 0 || name[stem.size()] != '-')
    return 0;
  if (name.compare(name.size() - ext.size(), ext.size(), ext) != 0) return 0;
  const std::string digits =
      name.substr(stem.size() + 1, name.size() - stem.size() - 1 - ext.size());
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos)
    return 0;
  return std::stoull(digits);
}

void accumulate(persist::JournalWriter::Stats& into,
                const persist::JournalWriter::Stats& from) {
  into.appended += from.appended;
  into.dropped += from.dropped;
  into.commits += from.commits;
  into.sync_failures += from.sync_failures;
  into.degraded = into.degraded || from.degraded;
}

}  // namespace

PersistCoordinator::PersistCoordinator(persist::Vfs& vfs, std::string dir,
                                       core::AsState& as, Config cfg)
    : vfs_(vfs), dir_(std::move(dir)), as_(as), cfg_(cfg) {
  if (cfg_.keep_generations == 0) cfg_.keep_generations = 1;
}

PersistCoordinator::~PersistCoordinator() {
  if (journal_) (void)journal_->commit();
}

Result<void> PersistCoordinator::start() {
  if (auto made = vfs_.mkdirs(dir_); !made) return made;
  std::lock_guard lock(mu_);
  // Resume after the newest generation already on disk (never overwrite a
  // prior run's snapshot — recovery may still need it to fall back to).
  std::uint64_t newest = 0;
  for (const std::string& name : vfs_.list(dir_)) {
    newest = std::max(newest, parse_generation(name, "snapshot", ".snap"));
    newest = std::max(newest, parse_generation(name, "journal", ".log"));
  }
  generation_ = newest;
  // The initial snapshot makes the secrets durable before the first
  // journal record exists — a crash at any later point is recoverable.
  return write_snapshot_locked();
}

void PersistCoordinator::seed(std::vector<core::IssuedEphIdMeta> issued,
                              std::vector<std::string> blocked_domains,
                              std::vector<core::DnsRecord> dns_records) {
  std::lock_guard lock(mu_);
  issued_ = std::move(issued);
  blocked_.clear();
  for (std::string& d : blocked_domains) blocked_.insert(std::move(d));
  dns_.clear();
  for (core::DnsRecord& rec : dns_records) {
    std::string name = rec.name;
    dns_.emplace(std::move(name), std::move(rec));
  }
}

bool PersistCoordinator::append(std::uint8_t type, ByteSpan payload) {
  std::lock_guard lock(mu_);
  if (!journal_) return false;  // start() not run / failed — not durable

  // Fold the above-core records into the snapshot aggregates. The codecs
  // mirror core/as_persist.cpp apply_record; a payload that fails to
  // decode still goes to the journal (recovery counts it as malformed).
  wire::Reader r(payload);
  switch (static_cast<core::PersistRecordType>(type)) {
    case core::PersistRecordType::ephid_issued: {
      auto e = r.arr<16>();
      auto exp = r.u32();
      auto hid = r.u32();
      if (e && exp && hid) {
        core::IssuedEphIdMeta m;
        m.ephid.bytes = *e;
        m.exp_time = *exp;
        m.hid = *hid;
        issued_.push_back(m);
      }
      break;
    }
    case core::PersistRecordType::domain_block: {
      if (auto d = r.str()) blocked_.insert(d.take());
      break;
    }
    case core::PersistRecordType::dns_put: {
      if (auto rec = core::DnsRecord::parse(r)) {
        core::DnsRecord d = rec.take();
        std::string name = d.name;
        dns_.insert_or_assign(std::move(name), std::move(d));
      }
      break;
    }
    case core::PersistRecordType::dns_erase: {
      if (auto n = r.str()) dns_.erase(std::string(*n));
      break;
    }
    default:
      break;  // core-visible records need no aggregate
  }

  const bool appended = journal_->append(type, payload);
  if (appended && cfg_.snapshot_every_records != 0 &&
      ++records_since_snapshot_ >= cfg_.snapshot_every_records) {
    // Periodic cadence: a failed snapshot is counted and retried after
    // the next batch of records; journaling continues either way.
    (void)write_snapshot_locked();
  }
  return appended;
}

Result<void> PersistCoordinator::write_snapshot() {
  std::lock_guard lock(mu_);
  return write_snapshot_locked();
}

Result<void> PersistCoordinator::write_snapshot_locked() {
  // Flush the outgoing journal first: the snapshot must supersede every
  // record in generation g's journal, or rotation would lose the tail
  // still sitting in the group-commit buffer.
  if (journal_) {
    if (auto committed = journal_->commit(); !committed) {
      ++snapshot_failures_;
      return committed;
    }
  }

  const std::uint64_t next = generation_ + 1;
  std::vector<std::string> blocked(blocked_.begin(), blocked_.end());
  std::vector<core::DnsRecord> dns;
  dns.reserve(dns_.size());
  for (const auto& [name, rec] : dns_) dns.push_back(rec);

  core::AsSnapshotExtras extras;
  extras.issued = issued_;
  extras.blocked_domains = blocked;
  extras.dns_records = dns;
  persist::SnapshotInfo info;
  info.generation = next;
  info.seed = cfg_.seed;
  info.git_sha = cfg_.git_sha;

  if (auto written = core::write_as_snapshot(vfs_, dir_, as_, extras, info);
      !written) {
    ++snapshot_failures_;
    return written;  // keep journaling into the current generation
  }

  if (journal_) accumulate(journal_base_, journal_->stats());
  journal_ = std::make_unique<persist::JournalWriter>(
      vfs_, core::journal_path(dir_, next), /*truncate=*/true, cfg_.journal);
  generation_ = next;
  records_since_snapshot_ = 0;
  ++snapshots_written_;

  // Prune generations older than the retention window; best effort — a
  // leftover file only costs disk, never correctness.
  if (next > cfg_.keep_generations) {
    const std::uint64_t cutoff = next - cfg_.keep_generations;
    for (const std::string& name : vfs_.list(dir_)) {
      const std::uint64_t sg = parse_generation(name, "snapshot", ".snap");
      const std::uint64_t jg = parse_generation(name, "journal", ".log");
      if ((sg != 0 && sg <= cutoff) || (jg != 0 && jg <= cutoff))
        (void)vfs_.remove(dir_ + "/" + name);
    }
  }
  return Result<void>::success();
}

Result<void> PersistCoordinator::commit() {
  std::lock_guard lock(mu_);
  if (!journal_) return Result<void>(Errc::internal, "coordinator not started");
  return journal_->commit();
}

bool PersistCoordinator::degraded() const {
  std::lock_guard lock(mu_);
  return journal_base_.degraded || (journal_ && journal_->degraded());
}

PersistCoordinator::Stats PersistCoordinator::stats() const {
  std::lock_guard lock(mu_);
  Stats s;
  s.journal = journal_base_;
  if (journal_) accumulate(s.journal, journal_->stats());
  s.snapshots_written = snapshots_written_;
  s.snapshot_failures = snapshot_failures_;
  s.generation = generation_;
  s.issued_tracked = issued_.size();
  s.blocked_tracked = blocked_.size();
  s.dns_tracked = dns_.size();
  return s;
}

}  // namespace apna::services

#include "services/accountability_agent.h"

#include "core/as_persist.h"
#include "core/packet_auth.h"
#include "wire/msg_codec.h"

namespace apna::services {

AccountabilityAgent::Stats AccountabilityAgent::stats() const {
  Stats s;
  const auto ld = [](const std::atomic<std::uint64_t>& a) {
    return a.load(std::memory_order_relaxed);
  };
  s.accepted = ld(counters_.accepted);
  s.rejected_bad_cert = ld(counters_.rejected_bad_cert);
  s.rejected_bad_sig = ld(counters_.rejected_bad_sig);
  s.rejected_unauthorized = ld(counters_.rejected_unauthorized);
  s.rejected_not_our_host = ld(counters_.rejected_not_our_host);
  s.rejected_bad_mac = ld(counters_.rejected_bad_mac);
  s.rejected_malformed = ld(counters_.rejected_malformed);
  s.hid_escalations = ld(counters_.hid_escalations);
  s.revocation_instructions = ld(counters_.revocation_instructions);
  s.onpath_accepted = ld(counters_.onpath_accepted);
  s.voluntary_revocations = ld(counters_.voluntary_revocations);
  s.domain_blocks = ld(counters_.domain_blocks);
  return s;
}

Result<void> AccountabilityAgent::process(const core::ShutoffRequest& req,
                                          core::ExpTime now) {
  // Bind the offending packet's wire image first — everything hinges on
  // it. Zero-copy: all later field reads go through the view.
  auto pkt = wire::PacketView::bind(req.offending_packet);
  if (!pkt) {
    ++counters_.rejected_malformed;
    return Result<void>(Errc::malformed, "offending packet unparseable");
  }

  // 1. verifyCert(C_EphID_d) against the requester AS's published key.
  const auto requester_as = directory_.lookup(req.dst_cert.aid);
  if (!requester_as) {
    ++counters_.rejected_bad_cert;
    return Result<void>(Errc::bad_certificate, "unknown requester AS");
  }
  if (auto ok = req.dst_cert.verify(requester_as->sign_pub, now); !ok) {
    ++counters_.rejected_bad_cert;
    return ok;
  }

  // 2. verifySig(K+_EphID_d, {pkt}) — requester holds EphID_d's key.
  if (!crypto::ed25519_verify(req.dst_cert.pub.sig, req.offending_packet,
                              req.sig)) {
    ++counters_.rejected_bad_sig;
    return Result<void>(Errc::bad_signature, "requester signature invalid");
  }

  // 4 (cheap, so before the MAC): authorization — the requester must be the
  // packet's recipient (§IV-E: "we only authorize the recipient of a packet
  // to initiate a shutoff request"), or — §VIII-C extension — an on-path
  // AS whose AID the packet's path stamp records.
  core::EphId pkt_dst;
  pkt_dst.bytes = pkt->dst_ephid();
  const bool is_recipient =
      pkt_dst == req.dst_cert.ephid && pkt->dst_aid() == req.dst_cert.aid;
  bool is_onpath = false;
  if (!is_recipient && req.dst_cert.service() && pkt->has_path_stamp()) {
    for (std::size_t i = 0; i < pkt->path_stamp_count(); ++i) {
      if (pkt->path_stamp_at(i) == req.dst_cert.aid) {
        is_onpath = true;
        break;
      }
    }
  }
  if (!is_recipient && !is_onpath) {
    ++counters_.rejected_unauthorized;
    return Result<void>(Errc::unauthorized,
                        "requester is neither recipient nor on-path AS");
  }
  if (is_onpath) ++counters_.onpath_accepted;

  // 3. (HID_S, T) = E^-1_kA(EphID_s); T ≥ now; HID_S ∈ host_info.
  core::EphId src_ephid;
  src_ephid.bytes = pkt->src_ephid();
  auto plain = as_.codec.open(src_ephid);
  if (!plain) {
    ++counters_.rejected_not_our_host;
    return Result<void>(Errc::decrypt_failed, "source EphID not ours");
  }
  if (plain->exp_time < now) {
    ++counters_.rejected_not_our_host;
    return Result<void>(Errc::expired, "source EphID already expired");
  }
  const auto host = as_.host_db.find(plain->hid);
  if (!host) {
    ++counters_.rejected_not_our_host;
    return Result<void>(Errc::unknown_host, "source HID not registered");
  }

  // 5. verifyMAC(k_HSAS, pkt) — proof our customer actually sent it.
  if (!core::verify_packet_mac(*host->cmac, *pkt)) {
    ++counters_.rejected_bad_mac;
    return Result<void>(Errc::bad_mac, "packet not authenticated by source");
  }

  // 6. Instruct border routers to revoke EphID_s.
  if (auto r = instruct_revocation(src_ephid, plain->exp_time, plain->hid); !r)
    return r;

  ++counters_.accepted;
  return Result<void>::success();
}

Result<void> AccountabilityAgent::instruct_revocation(const core::EphId& ephid,
                                                      core::ExpTime exp_time,
                                                      core::Hid hid) {
  // MAC_kAS(revoke EphID_s) — build the instruction as the AA ...
  wire::MsgWriter w(32);
  w.str("revoke");
  w.raw(ephid.bytes);
  w.u32(exp_time);
  const ByteSpan instruction = w.span();
  const auto mac = as_.infra_mac.mac(instruction);

  // ... and verify it as the border routers do (Fig 5 bottom) before it
  // takes effect.
  if (!as_.infra_mac.verify(instruction, ByteSpan(mac.data(), mac.size())))
    return Result<void>(Errc::internal, "infra MAC self-check failed");
  ++counters_.revocation_instructions;

  const std::uint32_t host_count = as_.revoked.revoke_ephid(ephid, exp_time, hid);
  (void)host_count;
  core::emit_revoke_ephid(persist_, ephid, exp_time, hid);

  // §VIII-G2 escalation: too many revocations ⇒ revoke the HID itself.
  if (as_.revoked.over_limit(hid)) {
    as_.revoked.revoke_hid(hid);
    as_.host_db.erase(hid);
    core::emit_revoke_hid(persist_, hid);
    core::emit_host_erase(persist_, hid);
    ++counters_.hid_escalations;
  }
  return Result<void>::success();
}

Result<void> AccountabilityAgent::process_revoke(
    const core::EphIdRevokeRequest& req, core::ExpTime now) {
  // The certificate must be one WE issued, for exactly this EphID.
  if (req.cert.aid != as_.aid || !(req.cert.ephid == req.ephid)) {
    ++counters_.rejected_bad_cert;
    return Result<void>(Errc::bad_certificate, "certificate mismatch");
  }
  if (auto ok = req.cert.verify(as_.secrets.sign.pub, now); !ok) {
    ++counters_.rejected_bad_cert;
    return ok;
  }
  // Ownership: signed with the EphID's own key.
  if (!crypto::ed25519_verify(req.cert.pub.sig,
                              core::EphIdRevokeRequest::revoke_tbs(req.ephid),
                              req.sig)) {
    ++counters_.rejected_bad_sig;
    return Result<void>(Errc::bad_signature, "revoke signature invalid");
  }
  auto plain = as_.codec.open(req.ephid);
  if (!plain) {
    ++counters_.rejected_not_our_host;
    return Result<void>(Errc::decrypt_failed, "EphID not ours");
  }
  if (auto r = instruct_revocation(req.ephid, plain->exp_time, plain->hid); !r)
    return r;
  ++counters_.voluntary_revocations;
  return Result<void>::success();
}

Result<void> AccountabilityAgent::enforce_domain_policy(
    std::string_view name, const core::EphId& ephid, core::ExpTime now) {
  const DomainPolicy* policy = policy_;
  if (policy == nullptr) return Result<void>::success();
  std::string matched;
  if (!policy->blocked(name, &matched)) return Result<void>::success();
  ++counters_.domain_blocks;
  // Revoke through the same MAC_kAS tail as a granted shutoff request —
  // but only for EphIDs WE issued; a record published under a foreign
  // AS's EphID is blocked at the resolver, not revoked here.
  if (auto plain = as_.codec.open(ephid);
      plain && plain->exp_time >= now) {
    if (auto r = instruct_revocation(ephid, plain->exp_time, plain->hid); !r)
      return r;
  }
  return Result<void>(Errc::unauthorized, "domain blocked by policy");
}

core::ShutoffRequest AccountabilityAgent::make_onpath_request(
    const wire::PacketView& observed) const {
  core::ShutoffRequest req;
  req.offending_packet.assign(observed.bytes().begin(),
                              observed.bytes().end());
  req.sig = ident_.kp.sign(req.offending_packet);
  req.dst_cert = ident_.cert;  // a kCertService certificate
  return req;
}

Result<wire::PacketBuf> AccountabilityAgent::handle_packet(
    const wire::PacketView& pkt) {
  if (pkt.proto() != wire::NextProto::shutoff)
    return Result<wire::PacketBuf>(Errc::malformed,
                                   "AA expects shutoff packets");

  wire::MsgReader r(pkt);
  auto kind = r.u8();

  core::ShutoffResponse resp_msg;
  if (!kind) {
    ++counters_.rejected_malformed;
    resp_msg.status = static_cast<std::uint8_t>(Errc::malformed);
  } else if (*kind ==
             static_cast<std::uint8_t>(core::ShutoffKind::shutoff_request)) {
    auto req = core::ShutoffRequest::decode(r);
    if (!req || !r.done()) {
      ++counters_.rejected_malformed;
      resp_msg.status = static_cast<std::uint8_t>(Errc::malformed);
    } else {
      resp_msg.status =
          static_cast<std::uint8_t>(process(*req, loop_.now_seconds()).code());
    }
  } else if (*kind ==
             static_cast<std::uint8_t>(core::ShutoffKind::revoke_request)) {
    auto req = core::EphIdRevokeRequest::decode(r);
    if (!req || !r.done()) {
      ++counters_.rejected_malformed;
      resp_msg.status = static_cast<std::uint8_t>(Errc::malformed);
    } else {
      resp_msg.status = static_cast<std::uint8_t>(
          process_revoke(*req, loop_.now_seconds()).code());
    }
  } else {
    ++counters_.rejected_malformed;
    resp_msg.status = static_cast<std::uint8_t>(Errc::malformed);
  }

  wire::PacketWriter pw(as_.aid, ident_.cert.ephid.bytes, pkt.src_aid(),
                        pkt.src_ephid(), wire::NextProto::shutoff,
                        std::nullopt, 8);
  pw.u8(static_cast<std::uint8_t>(core::ShutoffKind::response));
  resp_msg.encode(pw);
  wire::PacketBuf out = pw.finish();
  core::stamp_packet_mac(*ident_.cmac, out);
  return out;
}

}  // namespace apna::services

// Accountability Agent — the shutoff protocol (Fig 5, §IV-E).
//
// Validation order follows the figure exactly, cheapest-reject-first where
// the figure allows it:
//   1. verifyCert(C_EphID_d)            — requester's certificate, against
//                                          the requester AS's key (RPKI).
//   2. verifySig(K+_EphID_d, {pkt})     — requester owns EphID_d.
//   3. (HID_S, T) = E^-1_kA(EphID_s)    — the offending packet really names
//      T ≥ now, HID_S ∈ host_info          one of OUR customers.
//   4. requester was the packet's recipient (dst EphID/AID match) —
//      authorization (§VI-C "only the destination host ... authorized").
//   5. verifyMAC(k_HSAS, pkt)           — our customer really sent it; a
//                                          rogue packet fails here.
//   6. MAC_kAS(revoke EphID_s) to the border routers, which verify and
//      insert into revoked_ids.
//
// process() is thread-safe (sharded AsState, immutable key material,
// atomic counters): services::ServicePool fans shutoff-verification bursts
// across M workers.
#pragma once

#include <atomic>
#include <cstdint>
#include <string_view>

#include "core/as_directory.h"
#include "core/as_state.h"
#include "core/messages.h"
#include "net/sim.h"
#include "persist/sink.h"
#include "services/service_identity.h"
#include "services/service_runtime.h"
#include "wire/packet_buf.h"

namespace apna::services {

/// Per-domain accountability policy hook (§VIII-G at domain granularity):
/// the DNS layer implements this over a longest-parent-suffix trie
/// (dns/domain_trie.h), so a rule at "evil.com" covers every subdomain.
/// Implementations must be safe for concurrent blocked() calls.
class DomainPolicy {
 public:
  virtual ~DomainPolicy() = default;
  /// True when `name` or any parent domain carries a block rule. When
  /// matched and `matched` is non-null, receives the rule's domain.
  virtual bool blocked(std::string_view name, std::string* matched) const = 0;
};

class AccountabilityAgent : public ControlService {
 public:
  /// Plain copyable counters — what stats() returns (live counters are
  /// atomics for the M-worker verification pool).
  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t rejected_bad_cert = 0;
    std::uint64_t rejected_bad_sig = 0;
    std::uint64_t rejected_unauthorized = 0;
    std::uint64_t rejected_not_our_host = 0;
    std::uint64_t rejected_bad_mac = 0;
    std::uint64_t rejected_malformed = 0;
    std::uint64_t hid_escalations = 0;        // §VIII-G2 limit exceeded
    std::uint64_t revocation_instructions = 0;  // MAC_kAS messages to BRs
    std::uint64_t onpath_accepted = 0;        // §VIII-C extension
    std::uint64_t voluntary_revocations = 0;  // §VIII-G2 host-initiated
    std::uint64_t domain_blocks = 0;          // DomainPolicy hits enforced
  };

  AccountabilityAgent(core::AsState& as, const core::AsDirectory& directory,
                      net::EventLoop& loop, ServiceIdentity ident)
      : as_(as), directory_(directory), loop_(loop), ident_(std::move(ident)) {}

  // ---- ControlService --------------------------------------------------------
  const core::EphId& service_ephid() const override {
    return ident_.cert.ephid;
  }
  core::Hid service_hid() const override { return ident_.hid; }
  const char* service_name() const override { return "accountability"; }

  /// Full packet path: parse the request in place, process, and build the
  /// signed response directly in pooled storage.
  Result<wire::PacketBuf> handle_packet(const wire::PacketView& pkt) override;

  /// The Fig 5 validation pipeline. Thread-safe.
  Result<void> process(const core::ShutoffRequest& req, core::ExpTime now);

  /// §VIII-G2 voluntary revocation: a host retires its own EphID.
  Result<void> process_revoke(const core::EphIdRevokeRequest& req,
                              core::ExpTime now);

  /// §VIII-C: builds a shutoff request this AS (as an ON-PATH AS) can send
  /// to another AS's agent about a packet its routers observed. The request
  /// is authorized at the remote agent only when the packet carries this
  /// AS's AID in its path stamp.
  core::ShutoffRequest make_onpath_request(
      const wire::PacketView& observed) const;

  /// Installs the per-domain policy (not owned; wire before concurrent
  /// use). Null disables domain enforcement.
  void set_domain_policy(const DomainPolicy* policy) { policy_ = policy; }
  const DomainPolicy* domain_policy() const { return policy_; }

  /// Attaches the durability hook: revocations and §VIII-G2 escalations
  /// this agent applies are journaled through `sink`. nullptr (default)
  /// keeps the shutoff path persistence-free.
  void set_persist_sink(persist::Sink* sink) { persist_ = sink; }

  /// Domain-granular shutoff riding the Fig-5 tail: when the configured
  /// policy blocks `name`, the EphID published under it is revoked through
  /// the same MAC_kAS instruction path as a shutoff request (including the
  /// §VIII-G2 escalation), and Errc::unauthorized is returned so the
  /// caller rejects the publication/record. Foreign EphIDs (not decodable
  /// under our kA) are still blocked, just with nothing to revoke locally.
  /// Success means the name is not blocked. Thread-safe.
  Result<void> enforce_domain_policy(std::string_view name,
                                     const core::EphId& ephid,
                                     core::ExpTime now);

  const core::EphIdCertificate& cert() const { return ident_.cert; }
  const ServiceIdentity& identity() const { return ident_; }
  Stats stats() const;

 private:
  /// Models "MAC_kAS(revoke EphID_s)" + BR-side verification (Fig 5 tail):
  /// builds the authenticated instruction, verifies it as a border router
  /// would, then applies it to revoked_ids.
  Result<void> instruct_revocation(const core::EphId& ephid,
                                   core::ExpTime exp_time, core::Hid hid);

  struct Counters {
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> rejected_bad_cert{0};
    std::atomic<std::uint64_t> rejected_bad_sig{0};
    std::atomic<std::uint64_t> rejected_unauthorized{0};
    std::atomic<std::uint64_t> rejected_not_our_host{0};
    std::atomic<std::uint64_t> rejected_bad_mac{0};
    std::atomic<std::uint64_t> rejected_malformed{0};
    std::atomic<std::uint64_t> hid_escalations{0};
    std::atomic<std::uint64_t> revocation_instructions{0};
    std::atomic<std::uint64_t> onpath_accepted{0};
    std::atomic<std::uint64_t> voluntary_revocations{0};
    std::atomic<std::uint64_t> domain_blocks{0};
  };

  core::AsState& as_;
  const core::AsDirectory& directory_;
  net::EventLoop& loop_;
  ServiceIdentity ident_;
  const DomainPolicy* policy_ = nullptr;  // wired once at AS assembly
  persist::Sink* persist_ = nullptr;      // wired once at AS assembly
  Counters counters_;
};

}  // namespace apna::services

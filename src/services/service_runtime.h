// Control-plane service fabric: the common service interface, the per-AS
// dispatcher, and the M-worker issuance/verification pool.
//
// The paper's §V-A measures the Management Service as the control-plane
// bottleneck and parallelizes it across 4 processes; this header is that
// parallelization as a first-class runtime, mirroring the data plane's
// router::ForwardingPool (PR 2) on the control side:
//
//  * ControlService   — what an AS-operated broker service IS to the
//    fabric: an addressable EphID endpoint that turns one inbound control
//    packet into at most one reply. MS, AA and DNS implement it. (The
//    Registry Service stays outside: Fig 2 bootstrap runs over the host's
//    physical attachment BEFORE the host holds any EphID, so it is never
//    reachable through packet dispatch.)
//  * ServiceDispatcher — routes inbound control packets to the service
//    owning the destination EphID and forwards replies through the AS
//    fabric. One instance per AS, event-loop resident.
//  * ServicePool      — fans bursts of independent control-plane jobs
//    (EphID issuance, shutoff verification) across M worker threads.
//    Job results are deterministic and thread-count independent: each
//    request gets its own counter-derived rng and reply nonce, so a
//    4-worker pool emits bit-identical responses to a single-threaded
//    loop (pinned by control_plane_test). Per-worker Stats slots are
//    merged on read, exactly like ForwardingPool.
//
// Threading model (see ARCHITECTURE.md "Concurrency model"): dispatcher on
// the event loop only; ServicePool::process_* may not be called from two
// threads at once (one in-flight burst), but the underlying service state
// (sharded AsState, immutable key schedules, atomic counters) is safe for
// the M concurrent workers.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/ids.h"
#include "core/messages.h"
#include "crypto/rng.h"
#include "util/result.h"
#include "wire/packet_buf.h"

namespace apna::services {

class ManagementService;
class AccountabilityAgent;

/// One AS-operated broker service as the fabric sees it: an EphID-addressed
/// endpoint turning an inbound control packet into at most one reply.
class ControlService {
 public:
  virtual ~ControlService() = default;

  /// Routing key — packets whose destination EphID equals this belong here.
  virtual const core::EphId& service_ephid() const = 0;
  /// The service's infrastructure HID (its intra-AS switch port).
  virtual core::Hid service_hid() const = 0;
  virtual const char* service_name() const = 0;

  /// Handles one inbound packet (view into the caller-owned buffer) and
  /// returns the reply packet, or an error for request packets that
  /// produce no reply at all (drops).
  virtual Result<wire::PacketBuf> handle_packet(const wire::PacketView& pkt) = 0;
};

/// Per-AS control-packet router: destination EphID → ControlService.
/// Event-loop resident (dispatch is not called concurrently); the counters
/// are still atomics so stats() can be read from anywhere.
class ServiceDispatcher {
 public:
  using ReplyFn = std::function<void(wire::PacketBuf)>;

  /// Plain copyable counters (returned by stats()).
  struct Stats {
    std::uint64_t dispatched = 0;      // packets routed to a service
    std::uint64_t replies = 0;         // replies forwarded into the fabric
    std::uint64_t unrouted = 0;        // no service owns the dst EphID
    std::uint64_t service_errors = 0;  // service produced no reply
  };

  explicit ServiceDispatcher(ReplyFn reply) : reply_(std::move(reply)) {}

  void add(ControlService& svc) { by_ephid_[svc.service_ephid()] = &svc; }

  ControlService* route(const core::EphId& dst_ephid) const {
    auto it = by_ephid_.find(dst_ephid);
    return it == by_ephid_.end() ? nullptr : it->second;
  }

  /// Full inbound path: route by destination EphID, invoke the service on
  /// a view of the (owned) buffer, forward the reply. Consumes the packet.
  void dispatch(wire::PacketBuf pkt);

  Stats stats() const;
  std::size_t service_count() const { return by_ephid_.size(); }

 private:
  std::unordered_map<core::EphId, ControlService*, core::EphIdHash> by_ephid_;
  ReplyFn reply_;
  struct Counters {
    std::atomic<std::uint64_t> dispatched{0};
    std::atomic<std::uint64_t> replies{0};
    std::atomic<std::uint64_t> unrouted{0};
    std::atomic<std::uint64_t> service_errors{0};
  };
  Counters counters_;
};

/// M-worker pool for bursts of independent control-plane jobs, modeled on
/// router::ForwardingPool: Config::threads is the TOTAL parallelism
/// (threads-1 background workers plus the calling thread, which claims
/// chunks while it waits; threads == 1 degenerates to a plain loop).
class ServicePool {
 public:
  struct Config {
    /// Total processing threads (calling thread included). 0 → one per
    /// hardware thread.
    std::size_t threads = 0;
    /// Jobs per claim unit. Also the batch width of the per-chunk
    /// ed25519_verify_batch PoP sweep — the default 16 amortizes the
    /// shared point doublings across the whole chunk.
    std::size_t chunk_jobs = 16;
    /// Base seed for the per-request rngs. Results depend on (seed,
    /// request index) only — never on worker assignment or thread count.
    /// Each request gets HmacDrbg(rng_seed, nonce0 + index); each worker
    /// SLOT additionally owns HmacDrbg(rng_seed, slot) for randomness that
    /// never surfaces in outputs (batch-verification coefficients).
    std::uint64_t rng_seed = 0x5eedc0de;
  };

  /// Plain copyable counters, merged across worker slots on read.
  struct Stats {
    std::uint64_t issuance_jobs = 0;
    std::uint64_t shutoff_jobs = 0;
    std::uint64_t failed_jobs = 0;
  };

  /// `aa` may be null when only issuance bursts are processed.
  ServicePool(ManagementService& ms, AccountabilityAgent* aa, Config cfg);
  explicit ServicePool(ManagementService& ms)
      : ServicePool(ms, nullptr, Config()) {}
  ~ServicePool();

  ServicePool(const ServicePool&) = delete;
  ServicePool& operator=(const ServicePool&) = delete;

  /// One Fig 3 issuance request: the requesting control EphID plus the
  /// E_kHA-sealed EphIdRequest. The caller owns the request bytes for the
  /// duration of the call.
  struct IssueJob {
    core::EphId ctrl;
    ByteSpan sealed_request;
  };

  /// Issues the whole burst across all processing threads; results[i] is
  /// the sealed response (or error) for burst[i]. Blocks until done.
  /// Deterministic: a contiguous block of reply nonces is reserved up
  /// front and request i uses nonce0+i and HmacDrbg(seed, nonce0+i).
  void process_issuance(std::span<const IssueJob> burst, core::ExpTime now,
                        std::span<Result<Bytes>> results);

  /// Shutoff-verification twin (Fig 5 validation pipeline per request).
  /// Requires an AccountabilityAgent; results[i] is process(burst[i]).
  void process_shutoffs(std::span<const core::ShutoffRequest> burst,
                        core::ExpTime now, std::span<Result<void>> results);

  Stats stats() const;
  std::size_t threads() const { return cfg_.threads; }

 private:
  enum class JobKind { issuance, shutoff };

  void run_burst(JobKind kind, const void* jobs, std::size_t n, void* results,
                 core::ExpTime now);
  void worker_main(std::size_t slot);
  void drain_chunks(std::size_t slot);
  void process_chunk(std::size_t slot, std::size_t begin, std::size_t end);

  struct alignas(64) Slot {
    mutable std::mutex mu;
    Stats stats;
    /// Worker-private DRBG (crypto::HmacDrbg, seeded per slot) for
    /// randomness that must never contend across threads and never shows
    /// up in deterministic outputs: the z coefficients of the chunk PoP
    /// batch verification. Owned exclusively by this slot's worker while a
    /// burst runs (crypto_concurrency_test stresses the no-sharing
    /// invariant under TSan).
    std::unique_ptr<crypto::Rng> drbg;
  };

  ManagementService& ms_;
  AccountabilityAgent* aa_;
  Config cfg_;

  // Burst descriptor, guarded by mu_ (same ordering argument as
  // ForwardingPool: workers observe next_chunk_ < chunks_total_ under mu_
  // after the descriptor writes).
  mutable std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  JobKind kind_ = JobKind::issuance;
  const void* jobs_ = nullptr;
  std::size_t jobs_n_ = 0;
  void* results_ = nullptr;
  core::ExpTime now_ = 0;
  std::uint64_t nonce0_ = 0;
  std::size_t next_chunk_ = 0;
  std::size_t chunks_done_ = 0;
  std::size_t chunks_total_ = 0;
  bool stop_ = false;

  std::unique_ptr<Slot[]> slots_;
  std::vector<std::thread> workers_;
};

}  // namespace apna::services

#include "services/management_service.h"

#include "core/as_persist.h"
#include "core/packet_auth.h"
#include "crypto/ed25519.h"

namespace apna::services {

Result<void> ManagementService::begin_issue(const core::EphId& ctrl_ephid,
                                            ByteSpan sealed_request,
                                            core::ExpTime now,
                                            PreparedIssue& prep) {
  // (HID, T1) = E^-1_kA(EphID_ctrl); abort if T1 < currTime (Fig 3).
  auto plain = as_.codec.open(ctrl_ephid);
  if (!plain) {
    ++counters_.rejected_bad_payload;
    return Result<void>(plain.error());
  }
  if (plain->exp_time < now) {
    ++counters_.rejected_expired;
    return Result<void>(Errc::expired, "control EphID expired");
  }
  // abort if HID ∉ host_info (also covers revoked HIDs — they are erased).
  if (as_.revoked.is_hid_revoked(plain->hid)) {
    ++counters_.rejected_revoked;
    return Result<void>(Errc::revoked, "HID revoked");
  }
  auto host = as_.host_db.find(plain->hid);
  if (!host) {
    ++counters_.rejected_unknown_host;
    return Result<void>(Errc::unknown_host, "HID not registered");
  }

  // K+_EphID = E^-1_kHA(request) — authenticated decryption into pooled
  // scratch; the decoded request is copied out, so the scratch dies here.
  wire::MsgWriter scratch(256);
  auto payload = core::open_control_into(scratch, host->keys,
                                         /*from_host=*/true, sealed_request);
  if (!payload) {
    ++counters_.rejected_bad_payload;
    return Result<void>(payload.error());
  }
  auto request = core::decode_msg<core::EphIdRequest>(*payload);
  if (!request) {
    ++counters_.rejected_bad_payload;
    return Result<void>(request.error());
  }

  prep.hid = plain->hid;
  prep.host = std::move(*host);
  prep.request = *request;
  prep.pop_tbs = prep.request.pop_tbs();
  return Result<void>::success();
}

Result<void> ManagementService::finish_issue(const PreparedIssue& prep,
                                             bool pop_ok, core::ExpTime now,
                                             crypto::Rng& rng,
                                             std::uint64_t reply_nonce,
                                             wire::MsgWriter& out) {
  // Never certify a public key the requester cannot use: the PoP signature
  // proves possession of the new EphID's Ed25519 secret.
  if (!pop_ok) {
    ++counters_.rejected_bad_pop;
    return Result<void>(Errc::bad_signature, "EphID proof-of-possession");
  }
  const core::EphIdRequest& request = prep.request;

  // EphID = E_kA(HID, ExpTime); C_EphID = {...} signed K-_AS.
  const core::ExpTime exp = now + policy_.seconds_for(request.lifetime);
  core::EphIdCertificate cert;
  cert.ephid = as_.codec.issue(prep.hid, exp, rng);
  cert.exp_time = exp;
  cert.pub = request.ephid_pub;
  cert.aid = as_.aid;
  cert.aa_ephid = ident_.cert.aa_ephid;
  cert.flags = (request.flags & core::kRequestReceiveOnly)
                   ? core::kCertReceiveOnly
                   : 0;
  cert.sign_with(as_.secrets.sign);

  // E_kHA(C_EphID): the reply is encrypted so observers cannot relate the
  // fresh EphID to the control EphID (§IV-C last paragraph). The response
  // encodes into pooled scratch, and the stack-AEAD seal encrypts straight
  // into `out` — the whole reply build touches one recycled buffer and the
  // heap not at all (asserted <= 4 allocs/request by bench_e1).
  wire::MsgWriter scratch(256);
  core::EphIdResponse resp;
  resp.cert = std::move(cert);
  resp.encode(scratch);
  core::seal_control_into(out, prep.host.keys, reply_nonce,
                          /*from_host=*/false, scratch.span());
  core::emit_ephid_issued(persist_, resp.cert.ephid, exp, prep.hid);
  ++counters_.issued;
  return Result<void>::success();
}

Result<void> ManagementService::issue_into(const core::EphId& ctrl_ephid,
                                           ByteSpan sealed_request,
                                           core::ExpTime now, crypto::Rng& rng,
                                           std::uint64_t reply_nonce,
                                           wire::MsgWriter& out) {
  PreparedIssue prep;
  if (auto begun = begin_issue(ctrl_ephid, sealed_request, now, prep); !begun)
    return begun;
  const bool pop_ok = crypto::ed25519_verify(
      prep.request.ephid_pub.sig, prep.pop_tbs, prep.request.pop_sig);
  return finish_issue(prep, pop_ok, now, rng, reply_nonce, out);
}

Result<Bytes> ManagementService::issue_sealed(const core::EphId& ctrl_ephid,
                                              ByteSpan sealed_request,
                                              core::ExpTime now,
                                              crypto::Rng& rng) {
  const std::uint64_t nonce = reserve_reply_nonces(1);
  wire::MsgWriter out(320);
  if (auto r = issue_into(ctrl_ephid, sealed_request, now, rng, nonce, out);
      !r)
    return Result<Bytes>(r.error());
  return out.take();
}

Result<wire::PacketBuf> ManagementService::handle_packet(
    const wire::PacketView& req) {
  if (req.proto() != wire::NextProto::control)
    return Result<wire::PacketBuf>(Errc::malformed,
                                   "MS expects control packets");

  core::EphId ctrl;
  ctrl.bytes = req.src_ephid();
  // The sealed response encodes DIRECTLY into the reply packet's payload
  // region; finish() patches the length and the MAC is stamped in place.
  wire::PacketWriter pw(as_.aid, ident_.cert.ephid.bytes, req.src_aid(),
                        req.src_ephid(), wire::NextProto::control);
  auto issued = issue_into(ctrl, req.payload(), loop_.now_seconds(), rng_,
                           reserve_reply_nonces(1), pw);
  if (!issued) return Result<wire::PacketBuf>(issued.error());
  wire::PacketBuf out = pw.finish();
  core::stamp_packet_mac(*ident_.cmac, out);
  return out;
}

}  // namespace apna::services

#include "services/management_service.h"

#include "core/packet_auth.h"

namespace apna::services {

Result<Bytes> ManagementService::issue_sealed(const core::EphId& ctrl_ephid,
                                              ByteSpan sealed_request,
                                              core::ExpTime now,
                                              crypto::Rng& rng) {
  // (HID, T1) = E^-1_kA(EphID_ctrl); abort if T1 < currTime (Fig 3).
  auto plain = as_.codec.open(ctrl_ephid);
  if (!plain) {
    ++stats_.rejected_bad_payload;
    return Result<Bytes>(plain.error());
  }
  if (plain->exp_time < now) {
    ++stats_.rejected_expired;
    return Result<Bytes>(Errc::expired, "control EphID expired");
  }
  // abort if HID ∉ host_info (also covers revoked HIDs — they are erased).
  if (as_.revoked.is_hid_revoked(plain->hid)) {
    ++stats_.rejected_revoked;
    return Result<Bytes>(Errc::revoked, "HID revoked");
  }
  const auto host = as_.host_db.find(plain->hid);
  if (!host) {
    ++stats_.rejected_unknown_host;
    return Result<Bytes>(Errc::unknown_host, "HID not registered");
  }

  // K+_EphID = E^-1_kHA(request) — authenticated decryption.
  auto payload = core::open_control(host->keys, /*from_host=*/true,
                                    sealed_request);
  if (!payload) {
    ++stats_.rejected_bad_payload;
    return Result<Bytes>(payload.error());
  }
  auto request = core::EphIdRequest::parse(*payload);
  if (!request) {
    ++stats_.rejected_bad_payload;
    return Result<Bytes>(request.error());
  }

  // EphID = E_kA(HID, ExpTime); C_EphID = {...} signed K-_AS.
  const core::ExpTime exp = now + policy_.seconds_for(request->lifetime);
  core::EphIdCertificate cert;
  cert.ephid = as_.codec.issue(plain->hid, exp, rng);
  cert.exp_time = exp;
  cert.pub = request->ephid_pub;
  cert.aid = as_.aid;
  cert.aa_ephid = ident_.cert.aa_ephid;
  cert.flags = (request->flags & core::kRequestReceiveOnly)
                   ? core::kCertReceiveOnly
                   : 0;
  cert.sign_with(as_.secrets.sign);

  // E_kHA(C_EphID): the reply is encrypted so observers cannot relate the
  // fresh EphID to the control EphID (§IV-C last paragraph).
  core::EphIdResponse resp;
  resp.cert = std::move(cert);
  const std::uint64_t nonce =
      reply_nonce_.fetch_add(1, std::memory_order_relaxed);
  Bytes sealed = core::seal_control(host->keys, nonce, /*from_host=*/false,
                                    resp.serialize());
  ++stats_.issued;
  return sealed;
}

Result<wire::PacketBuf> ManagementService::handle_packet(
    const wire::PacketView& req) {
  if (req.proto() != wire::NextProto::control)
    return Result<wire::PacketBuf>(Errc::malformed,
                                   "MS expects control packets");

  core::EphId ctrl;
  ctrl.bytes = req.src_ephid();
  auto sealed = issue_sealed(ctrl, req.payload(), loop_.now_seconds(), rng_);
  if (!sealed) return sealed.error();

  wire::Packet resp;
  resp.src_aid = as_.aid;
  resp.src_ephid = ident_.cert.ephid.bytes;
  resp.dst_aid = req.src_aid();
  resp.dst_ephid = req.src_ephid();
  resp.proto = wire::NextProto::control;
  resp.payload = sealed.take();
  wire::PacketBuf out = resp.seal();
  core::stamp_packet_mac(*ident_.cmac, out);
  return out;
}

}  // namespace apna::services

// Shared DNS zone store (§VII-A zone data).
//
// The authoritative name → signed-record table behind the DNS resolvers.
// The store is shared on purpose: several ASes' DNS services can serve one
// global zone, modelling public DNS, so a host may query a *trusted* DNS in
// a different AS to keep its queries away from its own AS (§VII-A
// "Protecting DNS Queries").
//
// Lock-striped like the rest of the per-AS tables (core/sharded.h): stripes
// keyed by a seeded name hash, atomic hit/miss/insert/erase counters
// exposed as a copyable Stats snapshot, and a borrow path (with_record)
// that runs a short functor under the stripe lock instead of copying the
// whole record out.
//
// Invalidation contract: the zone owns a core::VerdictEpoch and bumps it
// AFTER every mutation — including plain inserts. Unlike the forwarding
// epoch (where a new host cannot turn a cached pass into a drop), DNS
// caches hold NEGATIVE answers, so an insert can invalidate a cached
// NXDOMAIN; every put/erase therefore bumps. Downstream caches stamp
// entries with the generation they were filled under (dns/dns_cache.h).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "core/as_persist.h"
#include "core/messages.h"
#include "core/sharded.h"
#include "persist/sink.h"

namespace apna::services {

class DnsZone {
 public:
  /// Plain copyable counters — what stats() returns.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t inserts = 0;
    std::uint64_t erases = 0;
  };

  explicit DnsZone(std::size_t shard_count = core::kDefaultShardCount)
      : count_(core::round_up_pow2(shard_count == 0 ? 1 : shard_count)),
        mask_(count_ - 1),
        shards_(std::make_unique<Shard[]>(count_)) {}

  void put(const core::DnsRecord& rec) {
    {
      Shard& s = shard(rec.name);
      std::lock_guard lock(s.mu);
      s.map[rec.name] = rec;
    }
    core::emit_dns_put(persist_, rec);
    counters_.inserts.fetch_add(1, std::memory_order_relaxed);
    epoch_.bump();  // after the mutation is visible (core/sharded.h contract)
  }

  /// Copy-out lookup (cold paths and tests). Counts hit/miss.
  std::optional<core::DnsRecord> get(const std::string& name) const {
    const Shard& s = shard(name);
    std::lock_guard lock(s.mu);
    auto it = s.map.find(name);
    if (it == s.map.end()) {
      counters_.misses.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    counters_.hits.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }

  /// Borrow path for the hot lookup: runs `fn(const core::DnsRecord&)`
  /// under the stripe lock — no key or record copy (heterogeneous lookup),
  /// so misses and callers that only need a few fields never touch the
  /// heap. `fn` must be short and must not call back into the zone.
  /// Returns false on miss. Counts hit/miss.
  template <class Fn>
  bool with_record(std::string_view name, Fn&& fn) const {
    const Shard& s = shard(name);
    std::lock_guard lock(s.mu);
    auto it = s.map.find(name);
    if (it == s.map.end()) {
      counters_.misses.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    counters_.hits.fetch_add(1, std::memory_order_relaxed);
    fn(it->second);
    return true;
  }

  bool erase(const std::string& name) {
    bool erased;
    {
      Shard& s = shard(name);
      std::lock_guard lock(s.mu);
      erased = s.map.erase(name) > 0;
    }
    if (erased) {
      core::emit_dns_erase(persist_, name);
      counters_.erases.fetch_add(1, std::memory_order_relaxed);
      epoch_.bump();
    }
    return erased;
  }

  /// Attaches the durability hook: zone mutations are journaled through
  /// `sink` (nullptr — the default — costs one branch per mutation).
  void set_persist_sink(persist::Sink* sink) { persist_ = sink; }

  /// Visits every record under the stripe locks, one stripe at a time
  /// (policy sweeps, audits). Same functor rules as with_record.
  template <class Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < count_; ++i) {
      const Shard& s = shards_[i];
      std::lock_guard lock(s.mu);
      for (const auto& [name, rec] : s.map) fn(rec);
    }
  }

  std::size_t size() const {
    std::size_t n = 0;
    for (std::size_t i = 0; i < count_; ++i) {
      std::lock_guard lock(shards_[i].mu);
      n += shards_[i].map.size();
    }
    return n;
  }

  Stats stats() const {
    Stats s;
    s.hits = counters_.hits.load(std::memory_order_relaxed);
    s.misses = counters_.misses.load(std::memory_order_relaxed);
    s.inserts = counters_.inserts.load(std::memory_order_relaxed);
    s.erases = counters_.erases.load(std::memory_order_relaxed);
    return s;
  }

  /// Generation counter bumped after every put/erase — the invalidation
  /// channel for resolver caches (positive AND negative entries).
  const core::VerdictEpoch& epoch() const { return epoch_; }

 private:
  struct NameHashFn {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const { return name_hash(s); }
  };
  struct NameEqFn {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };

  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, core::DnsRecord, NameHashFn, NameEqFn> map;
  };

  struct Counters {
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> inserts{0};
    std::atomic<std::uint64_t> erases{0};
  };

  static std::size_t name_hash(std::string_view name) {
    // FNV-1a with a final mix; stripe selection uses the TOP bits so the
    // resolver cache (which stripes and probes on the LOW bits of its own
    // hash) never correlates with zone striping.
    std::uint64_t h = 1469598103934665603ull;
    for (const char c : name) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 1099511628211ull;
    }
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    return h;
  }

  Shard& shard(std::string_view name) const {
    return shards_[(name_hash(name) >> 56) & mask_];
  }

  std::size_t count_;
  std::size_t mask_;
  std::unique_ptr<Shard[]> shards_;
  persist::Sink* persist_ = nullptr;
  mutable Counters counters_;  // const lookups still count hits/misses
  core::VerdictEpoch epoch_;
};

}  // namespace apna::services

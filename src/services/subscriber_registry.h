// Subscriber database — the AS's existing customer records (§IV-B: "ASes
// already authenticate their customers"; "an AS can require a user to
// authenticate using login credentials that are created when the user
// subscribes").
//
// Also the enforcement point against identity minting (§VI-A): one live HID
// per subscriber; allocating a new HID revokes the previous one.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "core/ids.h"
#include "crypto/sha2.h"
#include "util/bytes.h"

namespace apna::services {

class SubscriberRegistry {
 public:
  /// Enrolls a customer with an authentication credential.
  void add_subscriber(std::uint32_t subscriber_id, ByteSpan credential) {
    std::lock_guard lock(mu_);
    Entry e;
    e.credential_digest = crypto::Sha256::hash(credential);
    subs_[subscriber_id] = e;
  }

  /// Validates a login attempt.
  bool authenticate(std::uint32_t subscriber_id, ByteSpan credential) const {
    std::lock_guard lock(mu_);
    auto it = subs_.find(subscriber_id);
    if (it == subs_.end()) return false;
    const auto digest = crypto::Sha256::hash(credential);
    return ct_equal(ByteSpan(digest.data(), digest.size()),
                    ByteSpan(it->second.credential_digest.data(), 32));
  }

  /// The subscriber's currently active HID (0 = none).
  core::Hid active_hid(std::uint32_t subscriber_id) const {
    std::lock_guard lock(mu_);
    auto it = subs_.find(subscriber_id);
    return it == subs_.end() ? 0 : it->second.active_hid;
  }

  /// Binds a new HID; returns the previous one (0 if none) so the caller
  /// can revoke it — "at any moment every host on the network is identified
  /// by a single HID" (§VI-A).
  core::Hid bind_hid(std::uint32_t subscriber_id, core::Hid hid) {
    std::lock_guard lock(mu_);
    auto& entry = subs_[subscriber_id];
    const core::Hid previous = entry.active_hid;
    entry.active_hid = hid;
    return previous;
  }

  std::size_t size() const {
    std::lock_guard lock(mu_);
    return subs_.size();
  }

 private:
  struct Entry {
    std::array<std::uint8_t, 32> credential_digest{};
    core::Hid active_hid = 0;
  };
  mutable std::mutex mu_;
  std::unordered_map<std::uint32_t, Entry> subs_;
};

}  // namespace apna::services

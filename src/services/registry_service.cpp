#include "services/registry_service.h"

#include "core/as_persist.h"
#include "crypto/x25519.h"

namespace apna::services {

Result<core::BootstrapResponse> RegistryService::bootstrap(
    const core::BootstrapRequest& req) {
  // "RS authenticates Host" — against the subscriber database.
  if (!subs_.authenticate(req.subscriber_id, req.credential)) {
    ++counters_.rejected_auth;
    return Result<core::BootstrapResponse>(Errc::unauthorized,
                                           "subscriber authentication failed");
  }

  // kHA = DH(K-_AS, K+_H), then two derived keys (Fig 2).
  const auto dh = crypto::x25519_shared(as_.secrets.dh.priv, req.host_pub);
  const auto keys = core::HostAsKeys::derive(dh);

  // Identity-minting defence (§VI-A): a fresh HID revokes the previous one
  // and everything issued under it.
  const core::Hid hid = allocate_hid();
  if (const core::Hid old = subs_.bind_hid(req.subscriber_id, hid); old != 0) {
    as_.host_db.erase(old);
    as_.revoked.revoke_hid(old);
    core::emit_host_erase(persist_, old);
    core::emit_revoke_hid(persist_, old);
    ++counters_.hid_rotations;
  }

  // m1 = E_kA(HID, kHA) to every AS entity — in-process the shared AsState
  // IS that database; we count the provisioning event.
  core::HostRecord rec;
  rec.hid = hid;
  rec.keys = keys;
  rec.host_pub = req.host_pub;
  rec.subscriber_id = req.subscriber_id;
  as_.host_db.upsert(rec);
  core::emit_host_upsert(persist_, rec);
  ++counters_.infra_updates;

  // Control EphID with its long lifetime, plus signed id_info.
  core::BootstrapResponse resp;
  resp.hid = hid;
  resp.ctrl_exp_time = loop_.now_seconds() + cfg_.ctrl_lifetime_s;
  resp.ctrl_ephid = as_.codec.issue(hid, resp.ctrl_exp_time, rng_);
  resp.id_info_sig = as_.secrets.sign.sign(resp.id_info_tbs());
  resp.ms_cert = ms_cert_;
  resp.dns_cert = dns_cert_;
  resp.aid = as_.aid;
  resp.aa_ephid = aa_ephid_;

  ++counters_.bootstrapped;
  return resp;
}

}  // namespace apna::services

#include "services/service_runtime.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "crypto/drbg.h"
#include "crypto/ed25519.h"
#include "crypto/rng.h"
#include "services/accountability_agent.h"
#include "services/management_service.h"
#include "wire/msg_codec.h"

namespace apna::services {

// ---- ServiceDispatcher ------------------------------------------------------

void ServiceDispatcher::dispatch(wire::PacketBuf pkt) {
  core::EphId dst;
  dst.bytes = pkt.view().dst_ephid();
  ControlService* svc = route(dst);
  if (!svc) {
    counters_.unrouted.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  counters_.dispatched.fetch_add(1, std::memory_order_relaxed);
  auto reply = svc->handle_packet(pkt.view());
  if (!reply) {
    counters_.service_errors.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  counters_.replies.fetch_add(1, std::memory_order_relaxed);
  if (reply_) reply_(reply.take());
}

ServiceDispatcher::Stats ServiceDispatcher::stats() const {
  Stats s;
  s.dispatched = counters_.dispatched.load(std::memory_order_relaxed);
  s.replies = counters_.replies.load(std::memory_order_relaxed);
  s.unrouted = counters_.unrouted.load(std::memory_order_relaxed);
  s.service_errors = counters_.service_errors.load(std::memory_order_relaxed);
  return s;
}

// ---- ServicePool ------------------------------------------------------------

ServicePool::ServicePool(ManagementService& ms, AccountabilityAgent* aa,
                         Config cfg)
    : ms_(ms), aa_(aa), cfg_(cfg) {
  if (cfg_.threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    cfg_.threads = hw == 0 ? 1 : hw;
  }
  if (cfg_.chunk_jobs == 0) cfg_.chunk_jobs = 16;
  slots_ = std::make_unique<Slot[]>(cfg_.threads);
  for (std::size_t i = 0; i < cfg_.threads; ++i)
    slots_[i].drbg = std::make_unique<crypto::HmacDrbg>(cfg_.rng_seed, i);
  workers_.reserve(cfg_.threads - 1);
  for (std::size_t i = 1; i < cfg_.threads; ++i)
    workers_.emplace_back([this, i] { worker_main(i); });
}

ServicePool::~ServicePool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ServicePool::process_chunk(std::size_t slot, std::size_t begin,
                                std::size_t end) {
  std::lock_guard slot_lock(slots_[slot].mu);
  if (kind_ == JobKind::issuance) {
    const auto* jobs = static_cast<const IssueJob*>(jobs_);
    auto* results = static_cast<Result<Bytes>*>(results_);
    const std::size_t m = end - begin;

    // Stage 1 — validate/decrypt/decode every request of the chunk.
    std::vector<ManagementService::PreparedIssue> preps(m);
    std::vector<Result<void>> begun;
    begun.reserve(m);
    for (std::size_t j = 0; j < m; ++j)
      begun.push_back(ms_.begin_issue(jobs[begin + j].ctrl,
                                      jobs[begin + j].sealed_request, now_,
                                      preps[j]));

    // Stage 2 — one ed25519_verify_batch sweep over the chunk's
    // proof-of-possession signatures (bit-identical to per-request scalar
    // verification; see ed25519.h). The z coefficients come from this
    // SLOT's private DRBG — they never influence the verdicts, so
    // determinism per (seed, burst index) is preserved.
    std::vector<crypto::Ed25519BatchItem> items;
    std::vector<std::size_t> item_index;
    items.reserve(m);
    item_index.reserve(m);
    for (std::size_t j = 0; j < m; ++j) {
      if (!begun[j]) continue;
      items.push_back({&preps[j].request.ephid_pub.sig,
                       ByteSpan(preps[j].pop_tbs.data(),
                                preps[j].pop_tbs.size()),
                       &preps[j].request.pop_sig});
      item_index.push_back(j);
    }
    std::vector<char> pop_ok(m, 0);
    if (!items.empty()) {
      auto verdicts = std::make_unique<bool[]>(items.size());
      (void)crypto::ed25519_verify_batch({items.data(), items.size()},
                                         verdicts.get(), *slots_[slot].drbg);
      for (std::size_t v = 0; v < items.size(); ++v)
        pop_ok[item_index[v]] = verdicts[v] ? 1 : 0;
    }

    // Stage 3 — finish each request with its own (seed, index)-derived
    // DRBG and reply nonce: results are bit-identical no matter which
    // worker (or how many workers) ran the request.
    for (std::size_t j = 0; j < m; ++j) {
      ++slots_[slot].stats.issuance_jobs;
      if (!begun[j]) {
        ++slots_[slot].stats.failed_jobs;
        results[begin + j] = Result<Bytes>(begun[j].error());
        continue;
      }
      crypto::HmacDrbg rng(cfg_.rng_seed, nonce0_ + begin + j);
      wire::MsgWriter out(320);
      auto issued = ms_.finish_issue(preps[j], pop_ok[j] != 0, now_, rng,
                                     nonce0_ + begin + j, out);
      if (issued) {
        results[begin + j] = out.take();
      } else {
        ++slots_[slot].stats.failed_jobs;
        results[begin + j] = Result<Bytes>(issued.error());
      }
    }
  } else {
    const auto* jobs = static_cast<const core::ShutoffRequest*>(jobs_);
    auto* results = static_cast<Result<void>*>(results_);
    for (std::size_t j = begin; j < end; ++j) {
      results[j] = aa_->process(jobs[j], now_);
      ++slots_[slot].stats.shutoff_jobs;
      if (!results[j]) ++slots_[slot].stats.failed_jobs;
    }
  }
}

void ServicePool::drain_chunks(std::size_t slot) {
  for (;;) {
    std::size_t begin, end;
    {
      std::lock_guard lock(mu_);
      if (next_chunk_ >= chunks_total_) return;
      begin = next_chunk_++ * cfg_.chunk_jobs;
      end = std::min(begin + cfg_.chunk_jobs, jobs_n_);
    }
    process_chunk(slot, begin, end);
    {
      std::lock_guard lock(mu_);
      if (++chunks_done_ == chunks_total_) cv_done_.notify_all();
    }
  }
}

void ServicePool::worker_main(std::size_t slot) {
  for (;;) {
    {
      std::unique_lock lock(mu_);
      cv_work_.wait(lock,
                    [this] { return stop_ || next_chunk_ < chunks_total_; });
      if (stop_) return;
    }
    drain_chunks(slot);
  }
}

void ServicePool::run_burst(JobKind kind, const void* jobs, std::size_t n,
                            void* results, core::ExpTime now) {
  if (n == 0) return;
  {
    std::lock_guard lock(mu_);
    kind_ = kind;
    jobs_ = jobs;
    jobs_n_ = n;
    results_ = results;
    now_ = now;
    next_chunk_ = 0;
    chunks_done_ = 0;
    chunks_total_ = (n + cfg_.chunk_jobs - 1) / cfg_.chunk_jobs;
  }
  cv_work_.notify_all();

  // The calling thread is processing context 0: claim chunks like any
  // worker instead of blocking, so threads == 1 needs no handoff at all.
  drain_chunks(0);
  {
    std::unique_lock lock(mu_);
    cv_done_.wait(lock, [this] { return chunks_done_ == chunks_total_; });
  }
}

void ServicePool::process_issuance(std::span<const IssueJob> burst,
                                   core::ExpTime now,
                                   std::span<Result<Bytes>> results) {
  assert(results.size() >= burst.size());
  // One contiguous nonce block per burst: request i uses nonce0+i, so the
  // emitted ciphertexts are independent of worker scheduling. Written
  // before run_burst's locked descriptor update, so workers observe it
  // through the same mu_ acquire that hands them their first chunk.
  nonce0_ = ms_.reserve_reply_nonces(burst.size());
  run_burst(JobKind::issuance, burst.data(), burst.size(), results.data(),
            now);
}

void ServicePool::process_shutoffs(std::span<const core::ShutoffRequest> burst,
                                   core::ExpTime now,
                                   std::span<Result<void>> results) {
  assert(aa_ != nullptr && "ServicePool built without an AccountabilityAgent");
  assert(results.size() >= burst.size());
  run_burst(JobKind::shutoff, burst.data(), burst.size(), results.data(), now);
}

ServicePool::Stats ServicePool::stats() const {
  Stats merged;
  for (std::size_t i = 0; i < cfg_.threads; ++i) {
    std::lock_guard slot_lock(slots_[i].mu);
    merged.issuance_jobs += slots_[i].stats.issuance_jobs;
    merged.shutoff_jobs += slots_[i].stats.shutoff_jobs;
    merged.failed_jobs += slots_[i].stats.failed_jobs;
  }
  return merged;
}

}  // namespace apna::services

// Management Service — EphID issuance (Fig 3, §V-A).
//
// Receives AEAD-encrypted EphID requests addressed to EphID_ms, validates
// the requester's control EphID (expiry, HID validity, message
// authenticity), then issues an EphID and the short-lived certificate
// C_EphID, returned encrypted under kHA so observers cannot link new EphIDs
// to the requesting control EphID (§IV-C).
//
// issue_sealed() is exactly the per-request server work measured in the
// paper's MS experiment (§V-A3); bench E1 drives it directly.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/as_state.h"
#include "core/messages.h"
#include "crypto/rng.h"
#include "net/sim.h"
#include "services/service_identity.h"
#include "wire/packet_buf.h"

namespace apna::services {

class ManagementService {
 public:
  /// §VIII-G1: three lifetime categories accommodating flow durations.
  struct LifetimePolicy {
    core::ExpTime short_s = 15 * 60;  // 98% of flows last < 15 min [11]
    core::ExpTime medium_s = 2 * 3600;
    core::ExpTime long_s = 24 * 3600;

    core::ExpTime seconds_for(core::EphIdLifetime lt) const {
      switch (lt) {
        case core::EphIdLifetime::short_term: return short_s;
        case core::EphIdLifetime::medium_term: return medium_s;
        case core::EphIdLifetime::long_term: return long_s;
      }
      return short_s;
    }
  };

  struct Stats {
    std::atomic<std::uint64_t> issued{0};
    std::atomic<std::uint64_t> rejected_expired{0};
    std::atomic<std::uint64_t> rejected_unknown_host{0};
    std::atomic<std::uint64_t> rejected_bad_payload{0};
    std::atomic<std::uint64_t> rejected_revoked{0};
  };

  ManagementService(core::AsState& as, net::EventLoop& loop, crypto::Rng& rng,
                    ServiceIdentity ident, LifetimePolicy policy)
      : as_(as),
        loop_(loop),
        rng_(rng),
        ident_(std::move(ident)),
        policy_(policy) {}
  ManagementService(core::AsState& as, net::EventLoop& loop, crypto::Rng& rng,
                    ServiceIdentity ident)
      : ManagementService(as, loop, rng, std::move(ident), LifetimePolicy()) {}

  /// Full packet path: validate the request in place, issue, build and
  /// seal the response packet (src = EphID_ms, dst = the requesting
  /// control EphID, MAC stamped on the wire image).
  Result<wire::PacketBuf> handle_packet(const wire::PacketView& req);

  /// The server side of Fig 3 for one request: everything except transport.
  /// Thread-safe; used concurrently by the E1 multi-worker benchmark.
  Result<Bytes> issue_sealed(const core::EphId& ctrl_ephid,
                             ByteSpan sealed_request, core::ExpTime now,
                             crypto::Rng& rng);

  const core::EphIdCertificate& cert() const { return ident_.cert; }
  const ServiceIdentity& identity() const { return ident_; }
  const Stats& stats() const { return stats_; }

 private:
  core::AsState& as_;
  net::EventLoop& loop_;
  crypto::Rng& rng_;
  ServiceIdentity ident_;
  LifetimePolicy policy_;
  Stats stats_;
  std::atomic<std::uint64_t> reply_nonce_{1};
};

}  // namespace apna::services

// Management Service — EphID issuance (Fig 3, §V-A).
//
// Receives AEAD-encrypted EphID requests addressed to EphID_ms, validates
// the requester's control EphID (expiry, HID validity, message
// authenticity), then issues an EphID and the short-lived certificate
// C_EphID, returned encrypted under kHA so observers cannot link new EphIDs
// to the requesting control EphID (§IV-C).
//
// issue_into() is exactly the per-request server work measured in the
// paper's MS experiment (§V-A3); bench E1 drives it directly — single
// threaded and fanned across M workers through services::ServicePool. It
// is thread-safe: the AS state is sharded/immutable, the counters are
// atomics, and the caller supplies the rng and the reply nonce (so pooled
// bursts stay deterministic regardless of worker scheduling).
#pragma once

#include <atomic>
#include <cstdint>

#include "core/as_state.h"
#include "core/messages.h"
#include "crypto/rng.h"
#include "net/sim.h"
#include "persist/sink.h"
#include "services/service_identity.h"
#include "services/service_runtime.h"
#include "wire/msg_codec.h"
#include "wire/packet_buf.h"

namespace apna::services {

class ManagementService : public ControlService {
 public:
  /// §VIII-G1: three lifetime categories accommodating flow durations.
  struct LifetimePolicy {
    core::ExpTime short_s = 15 * 60;  // 98% of flows last < 15 min [11]
    core::ExpTime medium_s = 2 * 3600;
    core::ExpTime long_s = 24 * 3600;

    core::ExpTime seconds_for(core::EphIdLifetime lt) const {
      switch (lt) {
        case core::EphIdLifetime::short_term: return short_s;
        case core::EphIdLifetime::medium_term: return medium_s;
        case core::EphIdLifetime::long_term: return long_s;
      }
      return short_s;
    }
  };

  /// Plain copyable counters — what stats() returns. The live counters are
  /// atomics (M pool workers issue concurrently); this snapshot is the one
  /// callers read, so no caller ever loads individual atomics racily.
  struct Stats {
    std::uint64_t issued = 0;
    std::uint64_t rejected_expired = 0;
    std::uint64_t rejected_unknown_host = 0;
    std::uint64_t rejected_bad_payload = 0;
    std::uint64_t rejected_revoked = 0;
    std::uint64_t rejected_bad_pop = 0;  // proof-of-possession sig invalid
  };

  ManagementService(core::AsState& as, net::EventLoop& loop, crypto::Rng& rng,
                    ServiceIdentity ident, LifetimePolicy policy)
      : as_(as),
        loop_(loop),
        rng_(rng),
        ident_(std::move(ident)),
        policy_(policy) {}
  ManagementService(core::AsState& as, net::EventLoop& loop, crypto::Rng& rng,
                    ServiceIdentity ident)
      : ManagementService(as, loop, rng, std::move(ident), LifetimePolicy()) {}

  // ---- ControlService --------------------------------------------------------
  const core::EphId& service_ephid() const override {
    return ident_.cert.ephid;
  }
  core::Hid service_hid() const override { return ident_.hid; }
  const char* service_name() const override { return "management"; }

  /// Full packet path: validate the request in place (views only), issue,
  /// and encode the sealed response DIRECTLY into the reply packet's wire
  /// image (src = EphID_ms, dst = the requesting control EphID, MAC
  /// stamped at its fixed offset) — no intermediate payload buffer.
  Result<wire::PacketBuf> handle_packet(const wire::PacketView& req) override;

  // ---- Issuance (the §V-A3 measured work) -----------------------------------

  /// The server side of Fig 3 for one request, everything except
  /// transport: appends the E_kHA-sealed EphIdResponse to `out`.
  /// Thread-safe; the rng and reply nonce come from the caller so pooled
  /// bursts are deterministic (ServicePool derives both from the request
  /// index). Verifies the request's proof-of-possession signature with the
  /// scalar ed25519_verify; ServicePool uses the begin/finish split below
  /// to amortize that check across a chunk with ed25519_verify_batch.
  Result<void> issue_into(const core::EphId& ctrl_ephid,
                          ByteSpan sealed_request, core::ExpTime now,
                          crypto::Rng& rng, std::uint64_t reply_nonce,
                          wire::MsgWriter& out);

  /// A validated, decrypted, decoded issuance request whose
  /// proof-of-possession signature has NOT yet been checked — the split
  /// point that lets ServicePool verify a whole chunk's PoP signatures in
  /// one ed25519_verify_batch sweep before finishing each request.
  struct PreparedIssue {
    core::Hid hid = 0;
    core::HostRecord host;
    core::EphIdRequest request;
    std::array<std::uint8_t, 16 + 64 + 2> pop_tbs{};
  };

  /// Fig 3 steps up to (not including) the PoP check: control-EphID open /
  /// expiry / revocation / host lookup / kHA open / request decode.
  Result<void> begin_issue(const core::EphId& ctrl_ephid,
                           ByteSpan sealed_request, core::ExpTime now,
                           PreparedIssue& prep);

  /// Fig 3 steps after the PoP check. `pop_ok` is the verdict for
  /// prep.request.pop_sig over prep.pop_tbs (scalar or batch verified —
  /// the two are bit-identical); false is counted and rejected here so
  /// both paths share the bookkeeping.
  Result<void> finish_issue(const PreparedIssue& prep, bool pop_ok,
                            core::ExpTime now, crypto::Rng& rng,
                            std::uint64_t reply_nonce, wire::MsgWriter& out);

  /// Bytes-returning convenience over issue_into (tests, single-thread
  /// bench path); draws the reply nonce from the internal counter.
  Result<Bytes> issue_sealed(const core::EphId& ctrl_ephid,
                             ByteSpan sealed_request, core::ExpTime now,
                             crypto::Rng& rng);

  /// Reserves a contiguous block of `n` reply nonces (ServicePool bursts:
  /// request i of a burst uses base+i, independent of worker scheduling).
  std::uint64_t reserve_reply_nonces(std::uint64_t n) {
    return reply_nonce_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Attaches the durability hook: issuance metadata (EphID, expiry, HID)
  /// is journaled through `sink` so a recovered AS still knows what it
  /// vouched for. nullptr (default) keeps the issue path at its E1
  /// allocation gate (the emit is one predicted branch).
  void set_persist_sink(persist::Sink* sink) { persist_ = sink; }

  const core::EphIdCertificate& cert() const { return ident_.cert; }
  const ServiceIdentity& identity() const { return ident_; }
  Stats stats() const {
    Stats s;
    s.issued = counters_.issued.load(std::memory_order_relaxed);
    s.rejected_expired =
        counters_.rejected_expired.load(std::memory_order_relaxed);
    s.rejected_unknown_host =
        counters_.rejected_unknown_host.load(std::memory_order_relaxed);
    s.rejected_bad_payload =
        counters_.rejected_bad_payload.load(std::memory_order_relaxed);
    s.rejected_revoked =
        counters_.rejected_revoked.load(std::memory_order_relaxed);
    s.rejected_bad_pop =
        counters_.rejected_bad_pop.load(std::memory_order_relaxed);
    return s;
  }

 private:
  struct Counters {
    std::atomic<std::uint64_t> issued{0};
    std::atomic<std::uint64_t> rejected_expired{0};
    std::atomic<std::uint64_t> rejected_unknown_host{0};
    std::atomic<std::uint64_t> rejected_bad_payload{0};
    std::atomic<std::uint64_t> rejected_revoked{0};
    std::atomic<std::uint64_t> rejected_bad_pop{0};
  };

  core::AsState& as_;
  net::EventLoop& loop_;
  crypto::Rng& rng_;
  ServiceIdentity ident_;
  LifetimePolicy policy_;
  persist::Sink* persist_ = nullptr;
  Counters counters_;
  std::atomic<std::uint64_t> reply_nonce_{1};
};

}  // namespace apna::services

// Registry Service — host bootstrapping (Fig 2).
//
// Authenticates the host against the subscriber registry, runs the DH
// exchange that establishes the two kHA keys, allocates a HID, issues the
// control EphID, signs id_info, provisions the AS infrastructure with
// (HID, kHA), and returns the MS/DNS service certificates.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/as_state.h"
#include "core/messages.h"
#include "crypto/rng.h"
#include "net/sim.h"
#include "persist/sink.h"
#include "services/subscriber_registry.h"

namespace apna::services {

class RegistryService {
 public:
  struct Config {
    /// Control EphIDs live long, "e.g., DHCP lease time" (§IV-B).
    core::ExpTime ctrl_lifetime_s = 24 * 3600;
  };

  /// Plain copyable counters — what stats() returns (same snapshot
  /// pattern as every service; the live counters are atomics).
  struct Stats {
    std::uint64_t bootstrapped = 0;
    std::uint64_t rejected_auth = 0;
    std::uint64_t hid_rotations = 0;   // identity-minting defence fired
    std::uint64_t infra_updates = 0;   // m1 messages to AS entities
  };

  RegistryService(core::AsState& as, SubscriberRegistry& subscribers,
                  net::EventLoop& loop, crypto::Rng& rng, Config cfg)
      : as_(as), subs_(subscribers), loop_(loop), rng_(rng), cfg_(cfg) {}
  RegistryService(core::AsState& as, SubscriberRegistry& subscribers,
                  net::EventLoop& loop, crypto::Rng& rng)
      : RegistryService(as, subscribers, loop, rng, Config()) {}

  /// Service certificates handed out at bootstrap (set by the AS fabric
  /// once MS/DNS/AA identities exist).
  void set_service_info(core::EphIdCertificate ms_cert,
                        core::EphIdCertificate dns_cert,
                        core::EphId aa_ephid) {
    ms_cert_ = std::move(ms_cert);
    dns_cert_ = std::move(dns_cert);
    aa_ephid_ = aa_ephid;
  }

  /// Attaches the durability hook: every host_info mutation this service
  /// makes (enrollment, HID rotation) is journaled through `sink`.
  /// nullptr (the default) keeps bootstrap free of persistence work.
  void set_persist_sink(persist::Sink* sink) { persist_ = sink; }

  /// Fig 2 end to end. Runs over the host's physical attachment (layer 2),
  /// before the host holds any EphID.
  Result<core::BootstrapResponse> bootstrap(const core::BootstrapRequest& req);

  /// HID allocation, also used for infrastructure identities.
  core::Hid allocate_hid() { return next_hid_++; }

  Stats stats() const {
    Stats s;
    s.bootstrapped = counters_.bootstrapped.load(std::memory_order_relaxed);
    s.rejected_auth = counters_.rejected_auth.load(std::memory_order_relaxed);
    s.hid_rotations = counters_.hid_rotations.load(std::memory_order_relaxed);
    s.infra_updates = counters_.infra_updates.load(std::memory_order_relaxed);
    return s;
  }

 private:
  struct Counters {
    std::atomic<std::uint64_t> bootstrapped{0};
    std::atomic<std::uint64_t> rejected_auth{0};
    std::atomic<std::uint64_t> hid_rotations{0};
    std::atomic<std::uint64_t> infra_updates{0};
  };

  core::AsState& as_;
  SubscriberRegistry& subs_;
  net::EventLoop& loop_;
  crypto::Rng& rng_;
  Config cfg_;
  core::Hid next_hid_ = 1;
  persist::Sink* persist_ = nullptr;
  core::EphIdCertificate ms_cert_;
  core::EphIdCertificate dns_cert_;
  core::EphId aa_ephid_;
  Counters counters_;
};

}  // namespace apna::services

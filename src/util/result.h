// Minimal expected-style result type for protocol-level failures.
//
// APNA operations fail for well-defined protocol reasons (expired EphID,
// revoked host, bad MAC, ...). Those are normal control flow, not
// exceptions, so protocol APIs return Result<T>. Programmer errors still
// assert/throw.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace apna {

/// Protocol error codes. Each maps to a drop/abort condition in the paper's
/// pseudo-code (Figs. 2-5) or to a local API misuse that callers can handle.
enum class Errc {
  ok = 0,
  expired,            // EphID or certificate past ExpTime (Fig 4 checks)
  revoked,            // EphID or HID on a revocation list
  unknown_host,       // HID not in host_info
  bad_mac,            // packet MAC verification failed
  bad_signature,      // certificate / shutoff signature invalid
  bad_certificate,    // malformed or untrusted certificate
  decrypt_failed,     // AEAD open or EphID open failed
  malformed,          // wire format violation
  unauthorized,       // shutoff requester not the packet recipient, etc.
  no_route,           // no path to destination AID / HID
  too_big,            // packet exceeds the link MTU (§II-C PMTUD)
  replayed,           // anti-replay window rejected the packet
  exhausted,          // resource limit (EphID pool, table size) hit
  not_found,          // DNS name or mapping absent
  internal,           // invariant violation surfaced as an error
};

/// Human-readable error code name (stable; used in logs and tests).
inline const char* errc_name(Errc e) {
  switch (e) {
    case Errc::ok: return "ok";
    case Errc::expired: return "expired";
    case Errc::revoked: return "revoked";
    case Errc::unknown_host: return "unknown_host";
    case Errc::bad_mac: return "bad_mac";
    case Errc::bad_signature: return "bad_signature";
    case Errc::bad_certificate: return "bad_certificate";
    case Errc::decrypt_failed: return "decrypt_failed";
    case Errc::malformed: return "malformed";
    case Errc::unauthorized: return "unauthorized";
    case Errc::no_route: return "no_route";
    case Errc::too_big: return "too_big";
    case Errc::replayed: return "replayed";
    case Errc::exhausted: return "exhausted";
    case Errc::not_found: return "not_found";
    case Errc::internal: return "internal";
  }
  return "unknown";
}

struct Error {
  Errc code = Errc::internal;
  std::string detail;
};

/// Result<T>: either a value or an Error. `Result<void>` specializes below.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}           // NOLINT(implicit)
  Result(Error e) : v_(std::move(e)) {}               // NOLINT(implicit)
  Result(Errc c, std::string detail = {}) : v_(Error{c, std::move(detail)}) {}

  bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  const T& value() const {
    assert(ok());
    return std::get<T>(v_);
  }
  T& value() {
    assert(ok());
    return std::get<T>(v_);
  }
  T take() {
    assert(ok());
    return std::move(std::get<T>(v_));
  }
  const Error& error() const {
    assert(!ok());
    return std::get<Error>(v_);
  }
  Errc code() const { return ok() ? Errc::ok : error().code; }

  const T& operator*() const { return value(); }
  const T* operator->() const { return &value(); }
  T& operator*() { return value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Error> v_;
};

template <>
class Result<void> {
 public:
  Result() = default;
  Result(Error e) : err_(std::move(e)) {}  // NOLINT(implicit)
  Result(Errc c, std::string detail = {}) : err_(Error{c, std::move(detail)}) {}

  static Result success() { return Result(); }

  bool ok() const { return !err_.has_value(); }
  explicit operator bool() const { return ok(); }
  const Error& error() const {
    assert(!ok());
    return *err_;
  }
  Errc code() const { return ok() ? Errc::ok : err_->code; }

 private:
  std::optional<Error> err_;
};

}  // namespace apna

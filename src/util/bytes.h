// Byte-buffer primitives shared by every APNA module.
//
// All protocol objects in this codebase serialize to/from `Bytes`. Helpers
// here cover endian loads/stores, constant-time comparison (required when
// checking MACs/tags), and secure wiping of key material.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace apna {

using Bytes = std::vector<std::uint8_t>;
using ByteSpan = std::span<const std::uint8_t>;
using MutByteSpan = std::span<std::uint8_t>;

/// Builds a Bytes buffer from a string literal / std::string payload.
inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

/// Renders a byte buffer as a std::string (for tests and examples).
inline std::string to_string(ByteSpan b) {
  return std::string(b.begin(), b.end());
}

/// Appends `src` to `dst`. Spelled as resize+memcpy rather than a range
/// insert: GCC 12's -Wstringop-overflow misfires on the inlined insert path
/// at -O2, and this form optimizes at least as well.
inline void append(Bytes& dst, ByteSpan src) {
  if (src.empty()) return;
  const std::size_t old_size = dst.size();
  dst.resize(old_size + src.size());
  std::memcpy(dst.data() + old_size, src.data(), src.size());
}

// ---- Endian helpers -------------------------------------------------------
// Network protocols in this repo use big-endian on the wire (matching IPv4 /
// GRE conventions); little-endian loads are used by crypto kernels.

inline std::uint32_t load_be32(const std::uint8_t* p) {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

inline void store_be32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

inline std::uint16_t load_be16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((std::uint16_t{p[0]} << 8) | p[1]);
}

inline void store_be16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v);
}

inline std::uint64_t load_be64(const std::uint8_t* p) {
  return (std::uint64_t{load_be32(p)} << 32) | load_be32(p + 4);
}

inline void store_be64(std::uint8_t* p, std::uint64_t v) {
  store_be32(p, static_cast<std::uint32_t>(v >> 32));
  store_be32(p + 4, static_cast<std::uint32_t>(v));
}

inline std::uint32_t load_le32(const std::uint8_t* p) {
  return std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) |
         (std::uint32_t{p[2]} << 16) | (std::uint32_t{p[3]} << 24);
}

inline void store_le32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

inline std::uint64_t load_le64(const std::uint8_t* p) {
  return std::uint64_t{load_le32(p)} | (std::uint64_t{load_le32(p + 4)} << 32);
}

inline void store_le64(std::uint8_t* p, std::uint64_t v) {
  store_le32(p, static_cast<std::uint32_t>(v));
  store_le32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

// ---- Security helpers -----------------------------------------------------

/// Constant-time equality for MAC/tag comparison. Returns true iff equal.
/// Length mismatch returns false without inspecting contents.
inline bool ct_equal(ByteSpan a, ByteSpan b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

/// Best-effort secure wipe of key material.
inline void secure_wipe(MutByteSpan b) {
  volatile std::uint8_t* p = b.data();
  for (std::size_t i = 0; i < b.size(); ++i) p[i] = 0;
}

/// XORs `src` into `dst` (sizes must match; caller guarantees).
inline void xor_into(MutByteSpan dst, ByteSpan src) {
  for (std::size_t i = 0; i < dst.size() && i < src.size(); ++i)
    dst[i] ^= src[i];
}

}  // namespace apna

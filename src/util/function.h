// Move-only type-erased callable.
//
// The zero-copy packet path moves wire::PacketBuf (a move-only buffer
// owner) into scheduled events and handlers; std::function requires
// copyable callables, so lambdas that capture a PacketBuf cannot be stored
// in one. UniqueFunction is the minimal replacement: same call semantics,
// one allocation per wrapped callable, no copy requirement. (C++23's
// std::move_only_function makes this obsolete; this repo targets C++20.)
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace apna::util {

template <typename Sig>
class UniqueFunction;

template <typename R, typename... Args>
class UniqueFunction<R(Args...)> {
 public:
  UniqueFunction() = default;
  UniqueFunction(std::nullptr_t) {}  // NOLINT(implicit)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, UniqueFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  UniqueFunction(F&& f)  // NOLINT(implicit)
      : impl_(std::make_unique<Impl<std::decay_t<F>>>(std::forward<F>(f))) {}

  UniqueFunction(UniqueFunction&&) noexcept = default;
  UniqueFunction& operator=(UniqueFunction&&) noexcept = default;
  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  explicit operator bool() const { return impl_ != nullptr; }

  R operator()(Args... args) {
    return impl_->call(std::forward<Args>(args)...);
  }

 private:
  struct Base {
    virtual ~Base() = default;
    virtual R call(Args&&... args) = 0;
  };
  template <typename F>
  struct Impl final : Base {
    explicit Impl(F fn) : f(std::move(fn)) {}
    R call(Args&&... args) override { return f(std::forward<Args>(args)...); }
    F f;
  };

  std::unique_ptr<Base> impl_;
};

}  // namespace apna::util

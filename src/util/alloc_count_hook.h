// Global heap-allocation counting hook — the zero-copy contract's probe.
//
// Replaces the process-wide operator new/delete with counting versions so
// a steady-state loop can assert "this forwarded N packets without a
// single heap allocation". Shared by tests/alloc_count_test.cpp and
// bench/bench_e2_forwarding.cpp so the CI test and the bench count the
// exact same allocation set.
//
// Include this header in EXACTLY ONE translation unit of a binary: it
// defines the (deliberately non-inline-replaceable) global allocation
// functions. Not a library header — never include it from src/.
#pragma once

// This TU replaces BOTH global new (malloc-backed) and delete (free), so
// every new/delete pairing stays matched by construction — but GCC's -O2
// inliner, seeing the malloc through the replaced new, flags inlined
// deletes elsewhere in the TU as -Wmismatched-new-delete (same GCC 12
// false-positive family as the demotions in ApnaCompileOptions.cmake).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

#include <atomic>
#include <cstdlib>
#include <new>

namespace apna::util {

inline std::atomic<std::uint64_t> g_heap_allocs{0};

/// Total operator-new calls in this process so far.
inline std::uint64_t heap_alloc_count() {
  return g_heap_allocs.load(std::memory_order_relaxed);
}

}  // namespace apna::util

void* operator new(std::size_t size) {
  apna::util::g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

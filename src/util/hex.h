// Hex encoding/decoding for fixtures, logging and test vectors.
#pragma once

#include <optional>
#include <string>

#include "util/bytes.h"

namespace apna {

/// Lower-case hex encoding of a byte span.
std::string hex_encode(ByteSpan data);

/// Decodes a hex string (case-insensitive, even length). Returns nullopt on
/// malformed input.
std::optional<Bytes> hex_decode(std::string_view hex);

/// Convenience for test code: decodes or aborts. Only call with literals.
Bytes must_hex(std::string_view hex);

}  // namespace apna

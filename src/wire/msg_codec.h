// Span-based control-message codec over pooled storage.
//
// The data plane got its zero-copy discipline from PacketBuf/PacketView;
// this header extends the same discipline ABOVE the APNA header, to the
// control messages of Figs 2/3/5:
//
//  * MsgWriter  — the encode side. Appends big-endian fields (the same
//    field vocabulary as wire::Writer) into a buffer drawn from the
//    per-thread BufferPool, so steady-state control traffic encodes into
//    recycled storage instead of hitting operator new. The buffer returns
//    to the pool when the writer dies (or when a PacketWriter seals it
//    into a PacketBuf, which recycles through the same pool).
//  * MsgReader  — the decode side: a wire::Reader bound directly to a
//    PacketView's payload. Parsing is in place — every accessor reads the
//    wire image where it lies; only explicitly owned fields copy out.
//  * PacketWriter — builds one CONTROL PACKET in a single pass: the Fig 7
//    header fields are written at their fixed offsets, the payload is
//    appended through the MsgWriter interface directly after the extension
//    prefix, and finish() patches the length field and hands the image
//    over as a PacketBuf. This removes the Packet-builder round trip
//    (payload Bytes -> Packet::seal() memcpy) from every service reply and
//    host transmission: one encode, zero intermediate payload buffers.
//
// Messages keep their legacy Bytes serialize()/parse(ByteSpan) methods as
// the REFERENCE codec: tests/control_plane_test.cpp proves encode() emits
// byte-identical output, so the two can never drift. Hot paths (services,
// host) use only the MsgWriter/MsgReader forms.
#pragma once

#include <cstring>
#include <optional>

#include "wire/packet_buf.h"

namespace apna::wire {

/// Appends big-endian fields into pooled storage. Same field vocabulary as
/// wire::Writer; the backing buffer comes from (and returns to) the
/// per-thread BufferPool, so a writer constructed per request performs no
/// heap allocation in steady state.
class MsgWriter {
 public:
  explicit MsgWriter(std::size_t reserve = 256)
      : buf_(BufferPool::local().acquire(reserve)) {}
  ~MsgWriter() { BufferPool::local().release(std::move(buf_)); }

  MsgWriter(const MsgWriter&) = delete;
  MsgWriter& operator=(const MsgWriter&) = delete;

  void u8(std::uint8_t v) {
    ensure(1);
    buf_[len_++] = v;
  }
  void u16(std::uint16_t v) {
    ensure(2);
    store_be16(buf_.data() + len_, v);
    len_ += 2;
  }
  void u32(std::uint32_t v) {
    ensure(4);
    store_be32(buf_.data() + len_, v);
    len_ += 4;
  }
  void u64(std::uint64_t v) {
    ensure(8);
    store_be64(buf_.data() + len_, v);
    len_ += 8;
  }
  /// Raw bytes, no length prefix (fixed-size fields).
  void raw(ByteSpan data) {
    ensure(data.size());
    if (!data.empty()) std::memcpy(buf_.data() + len_, data.data(), data.size());
    len_ += data.size();
  }
  template <std::size_t N>
  void raw(const std::array<std::uint8_t, N>& data) {
    raw(ByteSpan(data.data(), N));
  }
  /// Length-prefixed (u16) variable field.
  void var(ByteSpan data) {
    u16(static_cast<std::uint16_t>(data.size()));
    raw(data);
  }

  /// Reserves `n` writable bytes at the tail and advances past them; the
  /// caller fills the returned span IN PLACE (AEAD seal output, decrypt
  /// scratch). Valid until the next append.
  MutByteSpan append_uninitialized(std::size_t n) {
    ensure(n);
    MutByteSpan out(buf_.data() + len_, n);
    len_ += n;
    return out;
  }
  void str(std::string_view s) {
    u16(static_cast<std::uint16_t>(s.size()));
    raw(ByteSpan(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  }

  /// Everything written so far (valid until the next append).
  ByteSpan span() const { return ByteSpan(buf_.data(), len_); }
  std::size_t size() const { return len_; }

  /// Rewinds to empty; the pooled capacity is kept (scratch reuse).
  void clear() { len_ = base_; }

  /// The encoded bytes, sized exactly. NOTE: a taken Bytes leaves the pool
  /// for good (plain vector destruction does not recycle) — prefer span()
  /// for transient reads and PacketWriter::finish() for packets, which
  /// recycle; take() is for results that must outlive the writer.
  Bytes take() {
    buf_.resize(len_);
    len_ = base_ = 0;
    return std::move(buf_);
  }

 protected:
  void ensure(std::size_t n) {
    if (len_ + n > buf_.size())
      buf_.resize(std::max(buf_.size() * 2, len_ + n));
  }

  Bytes buf_;             // pooled storage; size() is capacity-in-use
  std::size_t len_ = 0;   // bytes written
  std::size_t base_ = 0;  // clear() floor (PacketWriter: the payload offset)
};

/// In-place control-message reader: a wire::Reader whose natural binding is
/// a PacketView's payload. All accessors read the wire image where it lies.
class MsgReader : public Reader {
 public:
  using Reader::Reader;
  explicit MsgReader(const PacketView& pkt) : Reader(pkt.payload()) {}
};

/// Builds one control packet directly in pooled storage: Fig 7 header
/// fields at their fixed offsets, then the payload appended through the
/// inherited MsgWriter interface, then one finish() that patches the
/// length field and binds the image as a PacketBuf. The control-plane
/// counterpart of Packet::seal() with the intermediate payload Bytes (and
/// its memcpy) removed.
class PacketWriter : public MsgWriter {
 public:
  PacketWriter(Aid src_aid, const EphIdBytes& src_ephid, Aid dst_aid,
               const EphIdBytes& dst_ephid, NextProto proto,
               std::optional<std::uint64_t> nonce = std::nullopt,
               std::size_t payload_reserve = 256)
      : MsgWriter(kOffExt + 8 + payload_reserve),
        payload_off_(
            static_cast<std::uint32_t>(kOffExt + (nonce ? 8 : 0))) {
    ensure(payload_off_);
    std::uint8_t* p = buf_.data();
    store_be32(p + kOffSrcAid, src_aid);
    std::memcpy(p + kOffSrcEphid, src_ephid.data(), 16);
    std::memcpy(p + kOffDstEphid, dst_ephid.data(), 16);
    store_be32(p + kOffDstAid, dst_aid);
    std::memset(p + kOffMac, 0, kMacSize);  // stamped in place after finish()
    p[kOffProto] = static_cast<std::uint8_t>(proto);
    p[kOffFlags] = nonce ? kFlagHasNonce : 0;
    if (nonce) store_be64(p + kOffExt, *nonce);
    len_ = base_ = payload_off_;
  }

  std::size_t payload_size() const { return len_ - payload_off_; }

  /// Patches the payload-length field and hands the image over as a
  /// PacketBuf (same builder contract as Packet::seal(): payload clamped
  /// to the u16 length field so the emitted image always binds). The
  /// writer is empty afterwards.
  PacketBuf finish() {
    if (payload_size() > 0xFFFF) len_ = payload_off_ + 0xFFFF;  // clamp
    store_be16(buf_.data() + kOffPayloadLen,
               static_cast<std::uint16_t>(len_ - payload_off_));
    CopyAudit& audit = copy_audit();
    ++audit.inplace_builds;
    return PacketBuf(take(), payload_off_);
  }

 private:
  std::uint32_t payload_off_;
};

}  // namespace apna::wire

// Bounds-checked wire serialization primitives.
//
// Every protocol object in APNA (headers, certificates, control messages)
// serializes through Writer/Reader so parsing failures surface as
// Errc::malformed instead of undefined behaviour.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "util/bytes.h"
#include "util/result.h"

namespace apna::wire {

/// Appends big-endian fields to a growing buffer.
class Writer {
 public:
  Writer() = default;
  explicit Writer(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    std::uint8_t b[2];
    store_be16(b, v);
    append(buf_, ByteSpan(b, 2));
  }
  void u32(std::uint32_t v) {
    std::uint8_t b[4];
    store_be32(b, v);
    append(buf_, ByteSpan(b, 4));
  }
  void u64(std::uint64_t v) {
    std::uint8_t b[8];
    store_be64(b, v);
    append(buf_, ByteSpan(b, 8));
  }
  /// Raw bytes, no length prefix (fixed-size fields).
  void raw(ByteSpan data) { append(buf_, data); }
  template <std::size_t N>
  void raw(const std::array<std::uint8_t, N>& data) {
    append(buf_, ByteSpan(data.data(), N));
  }
  /// Length-prefixed (u16) variable field.
  void var(ByteSpan data) {
    u16(static_cast<std::uint16_t>(data.size()));
    raw(data);
  }
  void str(std::string_view s) {
    u16(static_cast<std::uint16_t>(s.size()));
    raw(ByteSpan(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  }

  const Bytes& bytes() const& { return buf_; }
  Bytes take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Reads big-endian fields; every accessor reports malformed input.
class Reader {
 public:
  explicit Reader(ByteSpan data) : data_(data) {}

  Result<std::uint8_t> u8() {
    if (pos_ + 1 > data_.size()) return Errc::malformed;
    return data_[pos_++];
  }
  Result<std::uint16_t> u16() {
    if (pos_ + 2 > data_.size()) return Errc::malformed;
    const auto v = load_be16(data_.data() + pos_);
    pos_ += 2;
    return v;
  }
  Result<std::uint32_t> u32() {
    if (pos_ + 4 > data_.size()) return Errc::malformed;
    const auto v = load_be32(data_.data() + pos_);
    pos_ += 4;
    return v;
  }
  Result<std::uint64_t> u64() {
    if (pos_ + 8 > data_.size()) return Errc::malformed;
    const auto v = load_be64(data_.data() + pos_);
    pos_ += 8;
    return v;
  }
  /// Fixed-size field.
  Result<ByteSpan> raw(std::size_t n) {
    if (pos_ + n > data_.size()) return Errc::malformed;
    ByteSpan out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }
  template <std::size_t N>
  Result<std::array<std::uint8_t, N>> arr() {
    auto span = raw(N);
    if (!span) return span.error();
    std::array<std::uint8_t, N> out;
    std::copy(span->begin(), span->end(), out.begin());
    return out;
  }
  /// u16 length-prefixed field.
  Result<ByteSpan> var() {
    auto len = u16();
    if (!len) return len.error();
    return raw(*len);
  }
  Result<std::string> str() {
    auto span = var();
    if (!span) return span.error();
    return std::string(span->begin(), span->end());
  }

  /// All bytes not yet consumed.
  ByteSpan rest() const { return data_.subspan(pos_); }
  bool done() const { return pos_ == data_.size(); }
  std::size_t position() const { return pos_; }

 private:
  ByteSpan data_;
  std::size_t pos_ = 0;
};

}  // namespace apna::wire

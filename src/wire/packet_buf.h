// Zero-copy packet representation: one contiguous wire image per packet.
//
// The forwarding fast path (Fig 4 / §IV-D3) must run at line rate, which in
// software means: no per-packet heap allocation, no re-serialization at
// layer boundaries, no parse-by-copy. The transport, router, host and
// gateway layers therefore traffic in two types built around a single flat
// buffer holding the serialized Fig-7 header ‖ extension ‖ payload:
//
//  * PacketBuf  — the owning handle. Its storage comes from (and returns
//    to) BufferPool, a per-thread free-list, so steady-state traffic
//    recycles buffers instead of hitting operator new. Move-only: exactly
//    one owner at any time; moving a PacketBuf through the stack IS the
//    packet changing hands.
//  * PacketView — the non-owning parsed view: fixed-offset accessors plus
//    ByteSpan slices into the buffer, produced by the bounds-checking
//    bind(). A view never outlives the buffer (or Bytes) it was bound to.
//
// wire::Packet remains as the owned BUILDER for control-message
// construction; Packet::seal() -> PacketBuf and PacketView::to_owned() ->
// Packet are the explicit — and audited (copy_audit()) — copy points.
// Everything else (MAC stamp/verify, replay-nonce reads, EphID field
// access, NAT AID rewrites) operates in place on the wire image.
//
// Wire layout (fixed offsets; Fig 7 header + documented extension prefix):
//
//     off  0  src_aid      4 B
//     off  4  src_ephid   16 B
//     off 20  dst_ephid   16 B
//     off 36  dst_aid      4 B
//     off 40  mac          8 B        (the only field a host stamps late)
//     off 48  next-proto   1 B  ┐
//     off 49  flags        1 B  │ extension prefix
//     off 50  payload len  2 B  ┘
//     off 52  [nonce 8 B if kFlagHasNonce]
//             [count 1 B + count×4 B AIDs if kFlagHasPathStamp]
//             payload
#pragma once

#include <cstdint>

#include "util/bytes.h"
#include "util/result.h"
#include "wire/apna_header.h"

namespace apna::wire {

// Fixed field offsets into the wire image.
constexpr std::size_t kOffSrcAid = 0;
constexpr std::size_t kOffSrcEphid = 4;
constexpr std::size_t kOffDstEphid = 20;
constexpr std::size_t kOffDstAid = 36;
constexpr std::size_t kOffMac = 40;
constexpr std::size_t kOffProto = 48;
constexpr std::size_t kOffFlags = 49;
constexpr std::size_t kOffPayloadLen = 50;
constexpr std::size_t kOffExt = 52;
/// Header + mandatory extension prefix: the smallest bindable packet.
constexpr std::size_t kMinWireSize = kOffExt;
/// Every defined HeaderFlags bit; bind()/parse() reject the rest.
constexpr std::uint8_t kKnownFlagsMask = kFlagHasNonce | kFlagHasPathStamp;

/// Copy accounting for the explicit copy points (per thread). The router
/// fast path must keep `copies`/`to_owned` flat while forwarding — tests
/// and bench_e2 read these to prove it (and to report copied bytes/packet).
struct CopyAudit {
  std::uint64_t seals = 0;          // Packet::seal() serializations
  std::uint64_t seal_bytes = 0;
  std::uint64_t copies = 0;         // PacketBuf::copy_of() buffer copies
  std::uint64_t copy_bytes = 0;
  std::uint64_t to_owned = 0;       // PacketView::to_owned() deep parses
  std::uint64_t to_owned_bytes = 0;
  std::uint64_t inplace_builds = 0; // PacketWriter::finish() — encoded in
                                    // place, no intermediate payload copy
};
CopyAudit& copy_audit();  // mutable thread-local instance

/// Non-owning parsed view over one contiguous wire image.
///
/// bind() validates structure exactly once; afterwards every accessor is a
/// bounds-safe fixed-offset load. A PacketView is two pointers wide — pass
/// it by value, but never let it outlive the PacketBuf/Bytes it views.
class PacketView {
 public:
  PacketView() = default;

  /// Binds a view over `data`, validating the same invariants
  /// Packet::parse enforces (exact length, known proto/flags, extension
  /// consistency). bind(x) and Packet::parse(x) accept/reject identical
  /// inputs — pinned by wire_test round-trip/truncation properties.
  static Result<PacketView> bind(ByteSpan data);

  bool valid() const { return data_ != nullptr; }
  ByteSpan bytes() const { return ByteSpan(data_, size_); }
  std::size_t wire_size() const { return size_; }

  Aid src_aid() const { return load_be32(data_ + kOffSrcAid); }
  Aid dst_aid() const { return load_be32(data_ + kOffDstAid); }
  EphIdBytes src_ephid() const { return read_ephid(kOffSrcEphid); }
  EphIdBytes dst_ephid() const { return read_ephid(kOffDstEphid); }
  ByteSpan src_ephid_span() const { return ByteSpan(data_ + kOffSrcEphid, 16); }
  ByteSpan dst_ephid_span() const { return ByteSpan(data_ + kOffDstEphid, 16); }
  ByteSpan mac_span() const { return ByteSpan(data_ + kOffMac, kMacSize); }

  NextProto proto() const { return static_cast<NextProto>(data_[kOffProto]); }
  std::uint8_t flags() const { return data_[kOffFlags]; }
  bool has_nonce() const { return (flags() & kFlagHasNonce) != 0; }
  /// Valid iff has_nonce().
  std::uint64_t nonce() const { return load_be64(data_ + kOffExt); }

  bool has_path_stamp() const { return (flags() & kFlagHasPathStamp) != 0; }
  std::size_t path_stamp_count() const {
    return has_path_stamp() ? data_[stamp_off()] : 0;
  }
  Aid path_stamp_at(std::size_t i) const {
    return load_be32(data_ + stamp_off() + 1 + 4 * i);
  }

  ByteSpan payload() const {
    return ByteSpan(data_ + payload_off_, size_ - payload_off_);
  }

  /// Offset of the path-stamp region (== payload offset when no stamp).
  std::size_t stamp_off() const { return kOffExt + (has_nonce() ? 8 : 0); }

  /// Writes the MAC-covered header fields (identical bytes to
  /// Packet::write_mac_preamble) and returns the count. The path stamp and
  /// its flag bit are excluded — routers modify them in flight (§VIII-C).
  std::size_t write_mac_preamble(
      std::uint8_t out[Packet::kMacPreambleMax]) const;

  /// EXPLICIT deep copy into the owned builder form (audited). Control
  /// paths only; the forwarding path must never call this.
  Packet to_owned() const;

 private:
  friend class PacketBuf;

  EphIdBytes read_ephid(std::size_t off) const {
    EphIdBytes out;
    std::memcpy(out.data(), data_ + off, out.size());
    return out;
  }

  const std::uint8_t* data_ = nullptr;
  std::uint32_t size_ = 0;
  std::uint32_t payload_off_ = 0;
};

/// Per-thread buffer free-list. acquire() reuses a released buffer's
/// capacity when one is available (a "hit": no heap allocation in steady
/// state); release() retains up to a bounded number of buffers.
///
/// One pool per thread (BufferPool::local()) — no locks, no cross-thread
/// contention. PacketBuf never stores a pool pointer: storage is returned
/// to the RELEASING thread's pool, so buffers may migrate between threads
/// freely and there is no pool-lifetime hazard.
class BufferPool {
 public:
  struct Stats {
    std::uint64_t hits = 0;      // acquire served from the free-list
    std::uint64_t misses = 0;    // acquire had to allocate
    std::uint64_t recycled = 0;  // release kept the buffer
  };

  /// This thread's pool.
  static BufferPool& local();

  Bytes acquire(std::size_t size);
  void release(Bytes&& buf);

  const Stats& stats() const { return stats_; }
  std::size_t free_count() const { return free_.size(); }
  /// Drops all retained buffers (tests that measure cold-start behavior).
  void trim();

 private:
  static constexpr std::size_t kMaxRetained = 4096;
  std::vector<Bytes> free_;
  Stats stats_;
};

/// Owning handle to one pooled wire image. Move-only; the destructor
/// returns the storage to the current thread's BufferPool.
class PacketBuf {
 public:
  PacketBuf() = default;
  ~PacketBuf();

  PacketBuf(PacketBuf&& other) noexcept
      : buf_(std::move(other.buf_)), view_(other.view_) {
    other.view_ = PacketView();
  }
  PacketBuf& operator=(PacketBuf&& other) noexcept;
  PacketBuf(const PacketBuf&) = delete;
  PacketBuf& operator=(const PacketBuf&) = delete;

  /// Takes ownership of an already-serialized wire image (e.g. bytes that
  /// arrived from outside the process), validating it via bind().
  static Result<PacketBuf> adopt(Bytes wire);

  /// EXPLICIT pooled copy of a view's bytes (audited). This is the one
  /// copy a transport edge makes when it must extend a packet's lifetime
  /// beyond its caller's buffer — a memcpy into recycled storage, not a
  /// heap allocation in steady state.
  static PacketBuf copy_of(const PacketView& v);

  bool empty() const { return !view_.valid(); }
  const PacketView& view() const { return view_; }
  std::size_t wire_size() const { return view_.wire_size(); }

  /// The raw image, for in-place mutation (fault-injection taps, tests).
  /// A mutation that can change the STRUCTURE (the flags byte, the payload
  /// length field, a stamp count) desynchronizes the cached view — call
  /// rebind() afterwards and treat failure as a corrupt frame. Payload /
  /// fixed-field mutations need no rebind.
  MutByteSpan mutable_bytes() { return MutByteSpan(buf_.data(), buf_.size()); }

  /// Re-validates the (possibly mutated) image and refreshes the view.
  /// Errc::malformed ⇒ the bytes no longer parse; the view is unchanged
  /// and the buffer must not be interpreted as a packet any more.
  Result<void> rebind();

  // ---- In-place fixed-offset writes (the data-plane mutations) -------------
  void set_mac(ByteSpan mac8) {
    std::memcpy(buf_.data() + kOffMac, mac8.data(), kMacSize);
  }
  void set_src_aid(Aid aid) { store_be32(buf_.data() + kOffSrcAid, aid); }
  void set_dst_aid(Aid aid) { store_be32(buf_.data() + kOffDstAid, aid); }

 private:
  friend struct Packet;
  friend class PacketWriter;  // wire/msg_codec.h — direct in-place builds
  friend PacketBuf append_path_stamp(const PacketView&, Aid);

  /// `buf` must already be a valid wire image; `payload_off` its parsed
  /// payload offset (callers have just built or bound it).
  PacketBuf(Bytes buf, std::uint32_t payload_off);

  Bytes buf_;
  PacketView view_;
};

/// §VIII-C path stamping without re-serialization: splices `aid` into (a
/// pooled copy of) the stamp list, setting the flag if absent. The payload
/// and all MAC-covered bytes are byte-identical to the input. When the
/// stamp list is already full (255 entries — attacker-fillable, since the
/// stamp is unauthenticated), the packet is forwarded as a plain copy
/// WITHOUT this AS's AID: dropping it would hand an attacker a
/// stamp-stuffing DoS, so availability wins and only the §VIII-C on-path
/// shutoff authorization for this AS is lost for that packet.
PacketBuf append_path_stamp(const PacketView& v, Aid aid);

}  // namespace apna::wire

#include "wire/ipv4.h"

namespace apna::wire {

std::uint16_t ipv4_checksum(ByteSpan header20) {
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i + 1 < header20.size(); i += 2)
    sum += load_be16(header20.data() + i);
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

Bytes Ipv4Header::serialize(std::size_t payload_len) const {
  Writer w(kIpv4HeaderSize);
  w.u8(0x45);  // version 4, IHL 5
  w.u8(0);     // DSCP/ECN
  w.u16(static_cast<std::uint16_t>(kIpv4HeaderSize + payload_len));
  w.u16(0);    // identification
  w.u16(0);    // flags/fragment offset
  w.u8(ttl);
  w.u8(static_cast<std::uint8_t>(proto));
  w.u16(0);    // checksum placeholder
  w.u32(src);
  w.u32(dst);
  Bytes out = w.take();
  const std::uint16_t csum = ipv4_checksum(out);
  store_be16(out.data() + 10, csum);
  return out;
}

Result<Ipv4Header> Ipv4Header::parse(Reader& r) {
  const ByteSpan all = r.rest();
  if (all.size() < kIpv4HeaderSize)
    return Result<Ipv4Header>(Errc::malformed, "short ipv4 header");
  if (ipv4_checksum(all.subspan(0, kIpv4HeaderSize)) != 0)
    return Result<Ipv4Header>(Errc::malformed, "bad ipv4 checksum");

  Ipv4Header h;
  auto ver_ihl = r.u8();
  if (!ver_ihl || *ver_ihl != 0x45)
    return Result<Ipv4Header>(Errc::malformed, "unsupported version/ihl");
  (void)r.u8();  // DSCP
  auto total = r.u16();
  if (!total) return total.error();
  h.total_length = *total;
  (void)r.u16();  // identification
  (void)r.u16();  // flags/frag
  auto ttl = r.u8();
  if (!ttl) return ttl.error();
  h.ttl = *ttl;
  auto proto = r.u8();
  if (!proto) return proto.error();
  h.proto = static_cast<IpProto>(*proto);
  (void)r.u16();  // checksum (verified above)
  auto src = r.u32();
  if (!src) return src.error();
  h.src = *src;
  auto dst = r.u32();
  if (!dst) return dst.error();
  h.dst = *dst;
  return h;
}

Bytes Ipv4Packet::serialize() const {
  Writer body(payload.size() + 4);
  const bool has_ports =
      hdr.proto == IpProto::tcp || hdr.proto == IpProto::udp;
  if (has_ports) {
    body.u16(src_port);
    body.u16(dst_port);
  }
  body.raw(payload);
  const Bytes body_bytes = body.take();
  Bytes out = hdr.serialize(body_bytes.size());
  append(out, body_bytes);
  return out;
}

Result<Ipv4Packet> Ipv4Packet::parse(ByteSpan data) {
  Reader r(data);
  auto hdr = Ipv4Header::parse(r);
  if (!hdr) return hdr.error();
  Ipv4Packet p;
  p.hdr = *hdr;
  const bool has_ports =
      p.hdr.proto == IpProto::tcp || p.hdr.proto == IpProto::udp;
  if (has_ports) {
    auto sp = r.u16();
    if (!sp) return sp.error();
    p.src_port = *sp;
    auto dp = r.u16();
    if (!dp) return dp.error();
    p.dst_port = *dp;
  }
  const ByteSpan rest = r.rest();
  p.payload.assign(rest.begin(), rest.end());
  return p;
}

Bytes GreApnaPacket::serialize() const {
  const Bytes inner = apna.serialize();
  Writer w(kIpv4HeaderSize + kGreHeaderSize + inner.size());
  Ipv4Header ip = outer;
  ip.proto = IpProto::gre;
  w.raw(ip.serialize(kGreHeaderSize + inner.size()));
  // GRE header (RFC 2784): flags/version = 0, protocol type = APNA.
  w.u16(0x0000);
  w.u16(kGreProtoApna);
  w.raw(inner);
  return w.take();
}

Result<GreApnaPacket> GreApnaPacket::parse(ByteSpan data) {
  Reader r(data);
  auto ip = Ipv4Header::parse(r);
  if (!ip) return ip.error();
  if (ip->proto != IpProto::gre)
    return Result<GreApnaPacket>(Errc::malformed, "not a GRE packet");
  auto flags = r.u16();
  if (!flags) return flags.error();
  if (*flags != 0)
    return Result<GreApnaPacket>(Errc::malformed, "unsupported GRE flags");
  auto ptype = r.u16();
  if (!ptype) return ptype.error();
  if (*ptype != kGreProtoApna)
    return Result<GreApnaPacket>(Errc::malformed, "GRE payload is not APNA");
  auto apna = Packet::parse(r.rest());
  if (!apna) return apna.error();
  GreApnaPacket g;
  g.outer = *ip;
  g.apna = apna.take();
  return g;
}

}  // namespace apna::wire

#include "wire/apna_header.h"

namespace apna::wire {

Bytes Packet::serialize() const {
  Writer w(wire_size());
  w.u32(src_aid);
  w.raw(src_ephid);
  w.raw(dst_ephid);
  w.u32(dst_aid);
  w.raw(mac);
  w.u8(static_cast<std::uint8_t>(proto));
  w.u8(flags);
  const std::size_t body = wire_payload_size();
  w.u16(static_cast<std::uint16_t>(body));
  if (has_nonce()) w.u64(nonce);
  if (has_path_stamp()) {
    const std::size_t stamps = wire_stamp_count();
    w.u8(static_cast<std::uint8_t>(stamps));
    for (std::size_t i = 0; i < stamps; ++i) w.u32(path_stamp[i]);
  }
  w.raw(ByteSpan(payload.data(), body));
  return w.take();
}

std::size_t Packet::write_mac_preamble(
    std::uint8_t out[kMacPreambleMax]) const {
  std::uint8_t* p = out;
  store_be32(p, src_aid);
  p += 4;
  std::memcpy(p, src_ephid.data(), 16);
  p += 16;
  std::memcpy(p, dst_ephid.data(), 16);
  p += 16;
  store_be32(p, dst_aid);
  p += 4;
  *p++ = static_cast<std::uint8_t>(proto);
  // The path stamp (and its flag bit) are appended by routers in flight,
  // so the source MAC must not cover them (§VIII-C).
  *p++ = static_cast<std::uint8_t>(flags & ~kFlagHasPathStamp);
  store_be16(p, static_cast<std::uint16_t>(wire_payload_size()));
  p += 2;
  if (has_nonce()) {
    store_be64(p, nonce);
    p += 8;
  }
  return static_cast<std::size_t>(p - out);
}

Bytes Packet::mac_input() const {
  // Header sans MAC, then extension and payload — the immutable parts of the
  // packet that the source host vouches for.
  std::uint8_t preamble[kMacPreambleMax];
  const std::size_t n = write_mac_preamble(preamble);
  const std::size_t body = wire_payload_size();
  Bytes out;
  out.reserve(n + body);
  append(out, ByteSpan(preamble, n));
  append(out, ByteSpan(payload.data(), body));
  return out;
}

Result<Packet> Packet::parse(ByteSpan data) {
  Reader r(data);
  Packet p;

  auto src_aid = r.u32();
  if (!src_aid) return src_aid.error();
  p.src_aid = *src_aid;

  auto src_eph = r.arr<16>();
  if (!src_eph) return src_eph.error();
  p.src_ephid = *src_eph;

  auto dst_eph = r.arr<16>();
  if (!dst_eph) return dst_eph.error();
  p.dst_ephid = *dst_eph;

  auto dst_aid = r.u32();
  if (!dst_aid) return dst_aid.error();
  p.dst_aid = *dst_aid;

  auto mac = r.arr<kMacSize>();
  if (!mac) return mac.error();
  p.mac = *mac;

  auto proto = r.u8();
  if (!proto) return proto.error();
  if (*proto > static_cast<std::uint8_t>(NextProto::shutoff))
    return Result<Packet>(Errc::malformed, "unknown next-proto");
  p.proto = static_cast<NextProto>(*proto);

  auto flags = r.u8();
  if (!flags) return flags.error();
  if ((*flags & ~(kFlagHasNonce | kFlagHasPathStamp)) != 0)
    return Result<Packet>(Errc::malformed, "unknown flag bits");
  p.flags = *flags;

  auto len = r.u16();
  if (!len) return len.error();

  if (p.has_nonce()) {
    auto nonce = r.u64();
    if (!nonce) return nonce.error();
    p.nonce = *nonce;
  }

  if (p.has_path_stamp()) {
    auto count = r.u8();
    if (!count) return count.error();
    p.path_stamp.reserve(*count);
    for (std::uint8_t i = 0; i < *count; ++i) {
      auto aid = r.u32();
      if (!aid) return aid.error();
      p.path_stamp.push_back(*aid);
    }
  }

  auto payload = r.raw(*len);
  if (!payload) return payload.error();
  p.payload.assign(payload->begin(), payload->end());

  if (!r.done())
    return Result<Packet>(Errc::malformed, "trailing bytes after payload");
  return p;
}

}  // namespace apna::wire

#include "wire/packet_buf.h"

namespace apna::wire {

CopyAudit& copy_audit() {
  thread_local CopyAudit audit;
  return audit;
}

// ---- PacketView -------------------------------------------------------------

Result<PacketView> PacketView::bind(ByteSpan data) {
  if (data.size() < kMinWireSize)
    return Result<PacketView>(Errc::malformed, "short packet");

  const std::uint8_t proto = data[kOffProto];
  if (proto > static_cast<std::uint8_t>(NextProto::shutoff))
    return Result<PacketView>(Errc::malformed, "unknown next-proto");
  const std::uint8_t flags = data[kOffFlags];
  if ((flags & ~kKnownFlagsMask) != 0)
    return Result<PacketView>(Errc::malformed, "unknown flag bits");

  std::size_t off = kOffExt;
  if ((flags & kFlagHasNonce) != 0) {
    if (data.size() < off + 8)
      return Result<PacketView>(Errc::malformed, "truncated nonce");
    off += 8;
  }
  if ((flags & kFlagHasPathStamp) != 0) {
    if (data.size() < off + 1)
      return Result<PacketView>(Errc::malformed, "truncated path stamp");
    const std::size_t count = data[off];
    if (data.size() < off + 1 + 4 * count)
      return Result<PacketView>(Errc::malformed, "truncated path stamp");
    off += 1 + 4 * count;
  }

  // The extension's length field must account for every remaining byte:
  // truncation AND trailing garbage are both malformed, exactly as in
  // Packet::parse.
  const std::size_t len = load_be16(data.data() + kOffPayloadLen);
  if (data.size() != off + len)
    return Result<PacketView>(Errc::malformed,
                              "payload length / wire size mismatch");

  PacketView v;
  v.data_ = data.data();
  v.size_ = static_cast<std::uint32_t>(data.size());
  v.payload_off_ = static_cast<std::uint32_t>(off);
  return v;
}

std::size_t PacketView::write_mac_preamble(
    std::uint8_t out[Packet::kMacPreambleMax]) const {
  // Header sans MAC: bytes [0, 40) verbatim.
  std::memcpy(out, data_, kOffMac);
  std::uint8_t* p = out + kOffMac;
  *p++ = data_[kOffProto];
  // The path stamp (and its flag bit) are appended by routers in flight,
  // so the source MAC must not cover them (§VIII-C).
  *p++ = static_cast<std::uint8_t>(flags() & ~kFlagHasPathStamp);
  std::memcpy(p, data_ + kOffPayloadLen, 2);
  p += 2;
  if (has_nonce()) {
    std::memcpy(p, data_ + kOffExt, 8);
    p += 8;
  }
  return static_cast<std::size_t>(p - out);
}

Packet PacketView::to_owned() const {
  CopyAudit& audit = copy_audit();
  ++audit.to_owned;
  audit.to_owned_bytes += size_;

  Packet p;
  p.src_aid = src_aid();
  p.src_ephid = src_ephid();
  p.dst_ephid = dst_ephid();
  p.dst_aid = dst_aid();
  std::memcpy(p.mac.data(), data_ + kOffMac, kMacSize);
  p.proto = proto();
  p.flags = flags();
  if (has_nonce()) p.nonce = nonce();
  if (has_path_stamp()) {
    const std::size_t n = path_stamp_count();
    p.path_stamp.reserve(n);
    for (std::size_t i = 0; i < n; ++i) p.path_stamp.push_back(path_stamp_at(i));
  }
  const ByteSpan body = payload();
  p.payload.assign(body.begin(), body.end());
  return p;
}

// ---- BufferPool -------------------------------------------------------------

BufferPool& BufferPool::local() {
  thread_local BufferPool pool;
  return pool;
}

Bytes BufferPool::acquire(std::size_t size) {
  if (free_.empty()) {
    ++stats_.misses;
    return Bytes(size);
  }
  Bytes buf = std::move(free_.back());
  free_.pop_back();
  if (buf.capacity() >= size)
    ++stats_.hits;
  else
    ++stats_.misses;  // resize below reallocates
  buf.resize(size);
  return buf;
}

void BufferPool::release(Bytes&& buf) {
  if (buf.capacity() == 0 || free_.size() >= kMaxRetained) return;
  ++stats_.recycled;
  free_.push_back(std::move(buf));
}

void BufferPool::trim() {
  free_.clear();
  free_.shrink_to_fit();
}

// ---- PacketBuf --------------------------------------------------------------

PacketBuf::PacketBuf(Bytes buf, std::uint32_t payload_off)
    : buf_(std::move(buf)) {
  view_.data_ = buf_.data();
  view_.size_ = static_cast<std::uint32_t>(buf_.size());
  view_.payload_off_ = payload_off;
}

PacketBuf::~PacketBuf() { BufferPool::local().release(std::move(buf_)); }

PacketBuf& PacketBuf::operator=(PacketBuf&& other) noexcept {
  if (this == &other) return *this;
  BufferPool::local().release(std::move(buf_));
  buf_ = std::move(other.buf_);
  view_ = other.view_;
  other.view_ = PacketView();
  return *this;
}

Result<void> PacketBuf::rebind() {
  auto v = PacketView::bind(ByteSpan(buf_.data(), buf_.size()));
  if (!v) return v.error();
  view_ = *v;
  return Result<void>::success();
}

Result<PacketBuf> PacketBuf::adopt(Bytes wire) {
  auto v = PacketView::bind(wire);
  if (!v) return v.error();
  return PacketBuf(std::move(wire), v->payload_off_);
}

PacketBuf PacketBuf::copy_of(const PacketView& v) {
  CopyAudit& audit = copy_audit();
  ++audit.copies;
  audit.copy_bytes += v.wire_size();

  Bytes buf = BufferPool::local().acquire(v.wire_size());
  std::memcpy(buf.data(), v.bytes().data(), v.wire_size());
  return PacketBuf(std::move(buf), v.payload_off_);
}

// ---- Builder bridge ---------------------------------------------------------

PacketBuf Packet::seal() const {
  CopyAudit& audit = copy_audit();
  ++audit.seals;

  const std::size_t total = wire_size();
  audit.seal_bytes += total;
  Bytes buf = BufferPool::local().acquire(total);

  std::uint8_t* p = buf.data();
  store_be32(p + kOffSrcAid, src_aid);
  std::memcpy(p + kOffSrcEphid, src_ephid.data(), 16);
  std::memcpy(p + kOffDstEphid, dst_ephid.data(), 16);
  store_be32(p + kOffDstAid, dst_aid);
  std::memcpy(p + kOffMac, mac.data(), kMacSize);
  p[kOffProto] = static_cast<std::uint8_t>(proto);
  p[kOffFlags] = flags;
  const std::size_t body = wire_payload_size();
  store_be16(p + kOffPayloadLen, static_cast<std::uint16_t>(body));
  std::size_t off = kOffExt;
  if (has_nonce()) {
    store_be64(p + off, nonce);
    off += 8;
  }
  if (has_path_stamp()) {
    const std::size_t stamps = wire_stamp_count();
    p[off++] = static_cast<std::uint8_t>(stamps);
    for (std::size_t i = 0; i < stamps; ++i) {
      store_be32(p + off, path_stamp[i]);
      off += 4;
    }
  }
  const std::uint32_t payload_off = static_cast<std::uint32_t>(off);
  if (body != 0) std::memcpy(p + off, payload.data(), body);
  return PacketBuf(std::move(buf), payload_off);
}

// ---- In-flight mutation helpers ---------------------------------------------

PacketBuf append_path_stamp(const PacketView& v, Aid aid) {
  const std::size_t stamp_off = v.stamp_off();
  const std::size_t old_count = v.path_stamp_count();
  const bool had_stamp = v.has_path_stamp();
  if (old_count >= 0xFF) return PacketBuf::copy_of(v);  // stamp list full
  // Grow by one AID, plus the count byte when the stamp list is new.
  const std::size_t grow = 4 + (had_stamp ? 0 : 1);
  const ByteSpan src = v.bytes();

  Bytes buf = BufferPool::local().acquire(src.size() + grow);
  std::uint8_t* p = buf.data();
  // Prefix up to (and including, when present) the existing stamp list.
  const std::size_t prefix =
      stamp_off + (had_stamp ? 1 + 4 * old_count : 0);
  std::memcpy(p, src.data(), prefix);
  std::size_t off = prefix;
  if (!had_stamp) {
    p[kOffFlags] = static_cast<std::uint8_t>(v.flags() | kFlagHasPathStamp);
    p[off++] = 1;
  } else {
    p[stamp_off] = static_cast<std::uint8_t>(old_count + 1);
  }
  store_be32(p + off, aid);
  off += 4;
  // src[prefix..] is exactly the payload, so the new payload starts at off.
  std::memcpy(p + off, src.data() + prefix, src.size() - prefix);
  return PacketBuf(std::move(buf), static_cast<std::uint32_t>(off));
}

}  // namespace apna::wire

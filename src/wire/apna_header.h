// APNA network header — exactly the 48-byte layout of Fig 7:
//
//     Source AID      4 B
//     Source EphID   16 B
//     Dest EphID     16 B
//     Dest AID        4 B
//     MAC             8 B
//     ------------------
//     Total          48 B
//
// plus a 4-byte extension prefix on the payload (next-proto, flags, length)
// and the optional 8-byte anti-replay nonce of §VIII-D. The extension is a
// documented addition: the paper's Fig 9 shows an upper-layer protocol
// selector is required once real payloads are carried ("Protocol = UL");
// we place it after the fixed header so the Fig 7 48-byte header is intact.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"
#include "util/result.h"
#include "wire/codec.h"

namespace apna::wire {

class PacketBuf;  // wire/packet_buf.h — the owned flat wire image

/// AS identifier (4 B, "e.g., Autonomous System Number" §III-B).
using Aid = std::uint32_t;

/// Ephemeral identifier, 16 B (Fig 6). Opaque at the wire layer; core/ephid.h
/// knows the internal structure.
using EphIdBytes = std::array<std::uint8_t, 16>;

constexpr std::size_t kApnaHeaderSize = 48;
constexpr std::size_t kMacSize = 8;

/// Upper-layer protocol selector for payload demultiplexing.
enum class NextProto : std::uint8_t {
  data = 0,        // encrypted application payload
  handshake = 1,   // connection establishment (§IV-D1, §VII-A)
  control = 2,     // AS service RPC (EphID issuance, DNS)
  icmp = 3,        // network feedback (§VIII-B)
  shutoff = 4,     // accountability agent protocol (§IV-E)
};

/// Header flag bits.
enum HeaderFlags : std::uint8_t {
  kFlagHasNonce = 0x01,      // anti-replay nonce extension present (§VIII-D)
  kFlagHasPathStamp = 0x02,  // on-path AID record present (§VIII-C)
};

/// The owned APNA packet BUILDER: fixed header + extension + payload as
/// separate fields. Construction-side code (hosts and services assembling
/// control messages, tests) fills a Packet and calls seal() to produce the
/// contiguous wire::PacketBuf every transport/forwarding API consumes;
/// wire::PacketView::to_owned() is the matching (audited) reverse copy.
/// The data plane never traffics in this type.
///
/// Builder contract: payload fits a u16 length and the path stamp fits a
/// u8 count. serialize()/seal() clamp both so the emitted image is always
/// self-consistent (parse/bind accept it); staying within the limits is
/// the caller's job (the 1518 B link MTU keeps real traffic far below).
///
/// The optional path stamp is the §VIII-C extension ("there are proposals
/// to encode the forwarding paths into the packets ... the list of
/// authorized entities can be extended to include on-path ASes"): border
/// routers append their AID while forwarding, and the accountability agent
/// accepts shutoff requests from stamped ASes. It is deliberately NOT
/// covered by the source MAC — routers modify it in flight.
struct Packet {
  Aid src_aid = 0;
  EphIdBytes src_ephid{};
  EphIdBytes dst_ephid{};
  Aid dst_aid = 0;
  std::array<std::uint8_t, kMacSize> mac{};

  NextProto proto = NextProto::data;
  std::uint8_t flags = 0;
  std::uint64_t nonce = 0;  // valid iff flags & kFlagHasNonce
  std::vector<Aid> path_stamp;  // valid iff flags & kFlagHasPathStamp
  Bytes payload;

  bool has_nonce() const { return (flags & kFlagHasNonce) != 0; }
  void set_nonce(std::uint64_t n) {
    nonce = n;
    flags |= kFlagHasNonce;
  }
  bool has_path_stamp() const { return (flags & kFlagHasPathStamp) != 0; }
  void stamp_path(Aid aid) {
    path_stamp.push_back(aid);
    flags |= kFlagHasPathStamp;
  }

  /// Payload byte count as emitted on the wire (clamped to the u16 length
  /// field; see the builder contract above).
  std::size_t wire_payload_size() const {
    return payload.size() > 0xFFFF ? 0xFFFF : payload.size();
  }
  /// Path-stamp entry count as emitted on the wire (clamped to u8).
  std::size_t wire_stamp_count() const {
    return path_stamp.size() > 0xFF ? 0xFF : path_stamp.size();
  }

  /// Serialized wire size. Always equals serialize().size().
  std::size_t wire_size() const {
    return kApnaHeaderSize + 4 + (has_nonce() ? 8 : 0) +
           (has_path_stamp() ? 1 + 4 * wire_stamp_count() : 0) +
           wire_payload_size();
  }

  /// Full wire encoding (header ‖ ext ‖ payload).
  Bytes serialize() const;

  /// Serializes into a pooled contiguous buffer — the (audited) bridge from
  /// the builder to the zero-copy types of wire/packet_buf.h.
  PacketBuf seal() const;

  /// Bytes covered by the per-packet source MAC: everything except the MAC
  /// field itself (§IV-D2 — the host MACs the packet it injects).
  Bytes mac_input() const;

  /// Maximum size of the MAC preamble (header-sans-MAC + extension).
  static constexpr std::size_t kMacPreambleMax = 40 + 4 + 8;

  /// Writes the MAC-covered header fields (everything but the payload) into
  /// `out` and returns the byte count. The MAC input is preamble ‖ payload;
  /// this allocation-free form is what the forwarding fast path uses.
  std::size_t write_mac_preamble(std::uint8_t out[kMacPreambleMax]) const;

  static Result<Packet> parse(ByteSpan wire);
};

}  // namespace apna::wire

// Minimal IPv4 + GRE codecs for the incremental-deployment path (§VII-D).
//
// APNA-over-IPv4 encapsulates the APNA header and payload in a GRE tunnel
// (Fig 9): IPv4 ‖ GRE(Protocol Type = APNA) ‖ APNA header ‖ payload. IPv4
// addresses of APNA routers serve as AIDs; host IPv4 addresses serve as
// HIDs. The gateway module also uses the plain IPv4 header + 5-tuple for
// translating legacy traffic.
#pragma once

#include <cstdint>
#include <functional>

#include "util/bytes.h"
#include "util/result.h"
#include "wire/apna_header.h"

namespace apna::wire {

constexpr std::size_t kIpv4HeaderSize = 20;  // no options
constexpr std::size_t kGreHeaderSize = 4;    // basic RFC 2784 header

/// IP protocol numbers used by the deployment path.
enum class IpProto : std::uint8_t {
  icmp = 1,
  tcp = 6,
  udp = 17,
  gre = 47,
};

/// The EtherType-style protocol number we "request from IANA" for APNA
/// inside GRE (§VII-D). Private-use value.
constexpr std::uint16_t kGreProtoApna = 0x88B7;

struct Ipv4Header {
  std::uint8_t ttl = 64;
  IpProto proto = IpProto::gre;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint16_t total_length = 0;  // filled by serialize

  Bytes serialize(std::size_t payload_len) const;
  static Result<Ipv4Header> parse(Reader& r);
};

/// Computes the RFC 791 header checksum (for the fixed 20-byte header).
std::uint16_t ipv4_checksum(ByteSpan header20);

/// An IPv4 packet with opaque payload (what legacy hosts hand the gateway).
struct Ipv4Packet {
  Ipv4Header hdr;
  std::uint16_t src_port = 0;  // transport ports, 0 if proto has none
  std::uint16_t dst_port = 0;
  Bytes payload;

  Bytes serialize() const;
  static Result<Ipv4Packet> parse(ByteSpan wire);
};

/// Legacy 5-tuple flow key (§VII-D "identified by the standard 5-tuple").
struct FlowKey5 {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t proto = 0;

  bool operator==(const FlowKey5&) const = default;
};

struct FlowKey5Hash {
  std::size_t operator()(const FlowKey5& k) const {
    std::size_t h = k.src_ip;
    h = h * 1000003 ^ k.dst_ip;
    h = h * 1000003 ^ (std::size_t{k.src_port} << 16 | k.dst_port);
    h = h * 1000003 ^ k.proto;
    return h;
  }
};

/// GRE-encapsulated APNA packet (Fig 9).
struct GreApnaPacket {
  Ipv4Header outer;     // src/dst are APNA entities (routers/hosts)
  Packet apna;          // the APNA header + payload

  Bytes serialize() const;
  static Result<GreApnaPacket> parse(ByteSpan wire);
};

}  // namespace apna::wire

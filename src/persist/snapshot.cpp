#include "persist/snapshot.h"

#include <array>
#include <cstring>

#include "persist/crc32c.h"
#include "wire/codec.h"

namespace apna::persist {
namespace {

constexpr std::array<std::uint8_t, 8> kMagic = {'A', 'P', 'N', 'A',
                                                'S', 'N', 'P', '1'};
constexpr std::uint16_t kVersion = 1;
constexpr std::size_t kMaxHeaderLen = 4096;

void put_le32(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t get_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

Result<void> write_snapshot_file(Vfs& vfs, const std::string& path,
                                 const SnapshotInfo& info, ByteSpan payload) {
  wire::Writer header;
  header.raw(ByteSpan(kMagic.data(), kMagic.size()));
  header.u16(kVersion);
  header.u64(info.generation);
  header.u64(info.seed);
  header.str(info.git_sha);
  header.u32(static_cast<std::uint32_t>(payload.size()));
  header.u32(crc32c(payload));

  Bytes file;
  file.reserve(8 + header.bytes().size() + payload.size());
  put_le32(file, static_cast<std::uint32_t>(header.bytes().size()));
  put_le32(file, crc32c(header.bytes()));
  file.insert(file.end(), header.bytes().begin(), header.bytes().end());
  file.insert(file.end(), payload.begin(), payload.end());

  const std::string tmp = path + ".tmp";
  auto f = vfs.open_append(tmp, /*truncate=*/true);
  if (!f) return Result<void>(f.error());
  if (auto r = (*f)->append(ByteSpan(file.data(), file.size())); !r) {
    (void)vfs.remove(tmp);
    return r;
  }
  if (auto r = (*f)->sync(); !r) {
    (void)vfs.remove(tmp);
    return r;
  }
  f->reset();  // close before publishing
  return vfs.rename(tmp, path);
}

Result<LoadedSnapshot> read_snapshot_file(Vfs& vfs, const std::string& path) {
  auto data = vfs.read_all(path);
  if (!data)
    return Result<LoadedSnapshot>(Errc::not_found, "snapshot missing");
  const Bytes& raw = *data;
  if (raw.size() < 8)
    return Result<LoadedSnapshot>(Errc::malformed, "snapshot too short");
  const std::uint32_t header_len = get_le32(raw.data());
  const std::uint32_t header_crc = get_le32(raw.data() + 4);
  if (header_len == 0 || header_len > kMaxHeaderLen ||
      raw.size() - 8 < header_len)
    return Result<LoadedSnapshot>(Errc::malformed, "snapshot header length");
  const ByteSpan header(raw.data() + 8, header_len);
  if (crc32c(header) != header_crc)
    return Result<LoadedSnapshot>(Errc::malformed, "snapshot header crc");

  wire::Reader r(header);
  auto magic = r.arr<8>();
  if (!magic || std::memcmp(magic->data(), kMagic.data(), 8) != 0)
    return Result<LoadedSnapshot>(Errc::malformed, "snapshot magic");
  auto version = r.u16();
  if (!version || *version != kVersion)
    return Result<LoadedSnapshot>(Errc::malformed, "snapshot version");
  LoadedSnapshot out;
  auto gen = r.u64();
  auto seed = r.u64();
  auto sha = r.str();
  auto payload_len = r.u32();
  auto payload_crc = r.u32();
  if (!gen || !seed || !sha || !payload_len || !payload_crc)
    return Result<LoadedSnapshot>(Errc::malformed, "snapshot header fields");
  out.info.generation = *gen;
  out.info.seed = *seed;
  out.info.git_sha = *sha;

  const std::size_t payload_off = 8 + header_len;
  const ByteSpan payload(raw.data() + payload_off, raw.size() - payload_off);
  if (payload.size() != *payload_len)
    return Result<LoadedSnapshot>(Errc::malformed, "snapshot payload length");
  if (crc32c(payload) != *payload_crc)
    return Result<LoadedSnapshot>(Errc::malformed, "snapshot payload crc");
  out.payload.assign(payload.begin(), payload.end());
  return Result<LoadedSnapshot>(std::move(out));
}

}  // namespace apna::persist

// Append-only journal: length-prefixed, CRC32C-framed records with
// group commit and a configurable fsync policy.
//
// Frame layout (little-endian, matching the wire codec's conventions):
//
//   [u32 len][u32 crc32c][u8 type][payload ...]
//
// `len` counts type + payload bytes; the CRC covers the same span. A
// reader walks frames until the first violation — short header, insane
// length, short body, or CRC mismatch — and treats everything from
// there on as a torn tail: the journal's effective content is the
// longest valid prefix, never garbage, never an exception.
//
// Write failures flip the writer into a sticky non-durable degraded
// mode: subsequent records are counted as dropped and the service keeps
// running. fsync failures are counted but non-sticky (the data reached
// the file; only the durability barrier failed).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "persist/sink.h"
#include "persist/vfs.h"
#include "util/bytes.h"
#include "util/result.h"

namespace apna::persist {

/// Largest accepted frame body (type + payload). Anything bigger in a
/// length prefix is treated as corruption.
inline constexpr std::uint32_t kMaxFrameLen = 1u << 20;

enum class FsyncPolicy : std::uint8_t {
  never,            // leave durability to the OS
  every_commit,     // fsync after each group commit
  every_n_commits,  // fsync every cfg.sync_every_n_commits commits
};

struct JournalConfig {
  FsyncPolicy fsync = FsyncPolicy::every_commit;
  /// Auto-commit once this many records are buffered (group commit).
  std::size_t group_commit_records = 64;
  std::size_t sync_every_n_commits = 8;
};

/// Thread-safe journal writer; implements `Sink` so it can be handed
/// straight to the control-plane services.
class JournalWriter final : public Sink {
 public:
  struct Stats {
    std::uint64_t appended = 0;   // records accepted into the buffer
    std::uint64_t dropped = 0;    // records lost to degraded mode
    std::uint64_t commits = 0;
    std::uint64_t sync_failures = 0;
    bool degraded = false;
  };

  /// Opens `path` through `vfs`. `truncate` starts a fresh journal
  /// (new generation); otherwise appends to existing content.
  JournalWriter(Vfs& vfs, std::string path, bool truncate,
                JournalConfig cfg = {});

  bool append(std::uint8_t type, ByteSpan payload) override;

  /// Flushes buffered frames and applies the fsync policy.
  Result<void> commit();

  bool degraded() const;
  Stats stats() const;

 private:
  Result<void> commit_locked();

  mutable std::mutex mu_;
  Vfs& vfs_;
  std::string path_;
  JournalConfig cfg_;
  std::unique_ptr<VfsFile> file_;
  Bytes buf_;
  std::size_t buffered_records_ = 0;
  Stats stats_{};
};

struct ReplayResult {
  std::uint64_t records = 0;
  std::uint64_t bytes_consumed = 0;
  /// Torn/corrupt tail bytes discarded after the last valid frame.
  std::uint64_t bytes_discarded = 0;
  bool torn() const { return bytes_discarded != 0; }
};

/// Walks frames in `data`, invoking `fn(type, payload)` for each valid
/// one, stopping (without error) at the first torn or corrupt frame.
using ReplayFn = std::function<void(std::uint8_t, ByteSpan)>;
ReplayResult replay_journal(ByteSpan data, const ReplayFn& fn);

/// Reads `path` via `vfs` and replays it. A missing file is an empty
/// journal, not an error.
ReplayResult replay_journal_file(Vfs& vfs, const std::string& path,
                                 const ReplayFn& fn);

}  // namespace apna::persist

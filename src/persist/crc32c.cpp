#include "persist/crc32c.h"

#include <array>

namespace apna::persist {
namespace {

// Reflected Castagnoli polynomial (iSCSI / RFC 3720).
constexpr std::uint32_t kPoly = 0x82f63b78u;

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? (kPoly ^ (c >> 1)) : (c >> 1);
    t[i] = c;
  }
  return t;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32c(ByteSpan data, std::uint32_t seed) {
  std::uint32_t crc = ~seed;
  for (std::uint8_t b : data) crc = kTable[(crc ^ b) & 0xffu] ^ (crc >> 8);
  return ~crc;
}

}  // namespace apna::persist

#include "persist/journal.h"

#include "persist/crc32c.h"

namespace apna::persist {
namespace {

void put_le32(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t get_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

JournalWriter::JournalWriter(Vfs& vfs, std::string path, bool truncate,
                             JournalConfig cfg)
    : vfs_(vfs), path_(std::move(path)), cfg_(cfg) {
  auto f = vfs_.open_append(path_, truncate);
  if (f) {
    file_ = f.take();
  } else {
    stats_.degraded = true;
  }
}

bool JournalWriter::append(std::uint8_t type, ByteSpan payload) {
  std::lock_guard lk(mu_);
  if (stats_.degraded) {
    ++stats_.dropped;
    return false;
  }
  const std::uint32_t len = 1 + static_cast<std::uint32_t>(payload.size());
  put_le32(buf_, len);
  // CRC over type ‖ payload: seed with the type byte, continue over the
  // payload (crc32c is incremental).
  const std::uint8_t t = type;
  put_le32(buf_, crc32c(payload, crc32c(ByteSpan(&t, 1))));
  buf_.push_back(type);
  buf_.insert(buf_.end(), payload.begin(), payload.end());
  ++buffered_records_;
  ++stats_.appended;
  if (buffered_records_ >= cfg_.group_commit_records)
    (void)commit_locked();
  return !stats_.degraded;
}

Result<void> JournalWriter::commit() {
  std::lock_guard lk(mu_);
  return commit_locked();
}

Result<void> JournalWriter::commit_locked() {
  if (stats_.degraded)
    return Result<void>(Errc::internal, "journal degraded");
  if (buffered_records_ == 0) return Result<void>::success();
  const std::size_t records = buffered_records_;
  if (auto r = file_->append(ByteSpan(buf_.data(), buf_.size())); !r) {
    // Sticky degraded mode: the buffered records are gone and every
    // future append is counted as dropped — the control plane keeps
    // issuing, explicitly non-durable.
    stats_.degraded = true;
    stats_.dropped += records;
    stats_.appended -= records;
    buf_.clear();
    buffered_records_ = 0;
    return r;
  }
  buf_.clear();
  buffered_records_ = 0;
  ++stats_.commits;
  const bool want_sync =
      cfg_.fsync == FsyncPolicy::every_commit ||
      (cfg_.fsync == FsyncPolicy::every_n_commits &&
       cfg_.sync_every_n_commits != 0 &&
       stats_.commits % cfg_.sync_every_n_commits == 0);
  if (want_sync) {
    if (auto r = file_->sync(); !r) {
      ++stats_.sync_failures;  // counted, non-sticky: bytes reached the file
      return r;
    }
  }
  return Result<void>::success();
}

bool JournalWriter::degraded() const {
  std::lock_guard lk(mu_);
  return stats_.degraded;
}

JournalWriter::Stats JournalWriter::stats() const {
  std::lock_guard lk(mu_);
  return stats_;
}

ReplayResult replay_journal(ByteSpan data, const ReplayFn& fn) {
  ReplayResult out;
  std::size_t pos = 0;
  while (data.size() - pos >= 8) {
    const std::uint32_t len = get_le32(data.data() + pos);
    const std::uint32_t want_crc = get_le32(data.data() + pos + 4);
    if (len < 1 || len > kMaxFrameLen) break;          // insane length
    if (data.size() - pos - 8 < len) break;            // torn body
    const ByteSpan body(data.data() + pos + 8, len);
    if (crc32c(body) != want_crc) break;               // bit rot
    fn(body[0], body.subspan(1));
    pos += 8 + len;
    ++out.records;
  }
  out.bytes_consumed = pos;
  out.bytes_discarded = data.size() - pos;
  return out;
}

ReplayResult replay_journal_file(Vfs& vfs, const std::string& path,
                                 const ReplayFn& fn) {
  auto data = vfs.read_all(path);
  if (!data) return ReplayResult{};  // missing journal == empty journal
  return replay_journal(ByteSpan(data->data(), data->size()), fn);
}

}  // namespace apna::persist

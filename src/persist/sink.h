// The narrow hook control-plane services emit durability records
// through. Mutation sites (ManagementService, AccountabilityAgent,
// RegistryService, DnsZone, Resolver) hold a nullable `Sink*` that
// defaults to nullptr — the hot path pays one branch and keeps its
// allocation gates when persistence is not attached.
#pragma once

#include <cstdint>

#include "util/bytes.h"

namespace apna::persist {

class Sink {
 public:
  virtual ~Sink() = default;

  /// Emits one typed record. Returns false when the record was dropped
  /// (degraded, non-durable mode) — callers carry on regardless; the
  /// drop is counted by the sink, never surfaced as a service error.
  virtual bool append(std::uint8_t type, ByteSpan payload) = 0;
};

}  // namespace apna::persist

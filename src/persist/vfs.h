// Virtual filesystem seam for the durability layer.
//
// Everything the journal and snapshot code touches on disk goes through
// this interface, for two reasons:
//   * the scenario engine needs a deterministic in-memory backend
//     (`MemVfs`) so kill-and-recover runs stay byte-identical under
//     `--verify-determinism`, and
//   * robustness testing needs an injectable fault backend (`FaultVfs`)
//     that produces short writes, fsync failures and torn tails on
//     demand — recovery must degrade gracefully under all of them.
//
// `SystemVfs` is the real POSIX backend used by anything that wants the
// state to survive an actual process death.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/result.h"

namespace apna::persist {

/// An append-only file handle. Writers never seek: the journal only ever
/// appends, and snapshots are written whole-file then renamed into place.
class VfsFile {
 public:
  virtual ~VfsFile() = default;
  /// Appends `data`. A failed append may have written a prefix (short
  /// write) — that is exactly the torn-tail case recovery must survive.
  virtual Result<void> append(ByteSpan data) = 0;
  /// Durability barrier (fsync). May fail; callers must treat a failure
  /// as "recent appends may not survive a crash", not as data loss.
  virtual Result<void> sync() = 0;
};

class Vfs {
 public:
  virtual ~Vfs() = default;

  /// Opens `path` for appending, creating it if needed. With `truncate`
  /// any existing content is discarded first.
  virtual Result<std::unique_ptr<VfsFile>> open_append(
      const std::string& path, bool truncate) = 0;
  virtual Result<Bytes> read_all(const std::string& path) = 0;
  virtual bool exists(const std::string& path) = 0;
  /// Atomic within a directory on POSIX — the publish step of the
  /// temp-file + rename discipline.
  virtual Result<void> rename(const std::string& from,
                              const std::string& to) = 0;
  virtual Result<void> remove(const std::string& path) = 0;
  /// File names (not full paths) directly inside `dir`; empty if the
  /// directory does not exist.
  virtual std::vector<std::string> list(const std::string& dir) = 0;
  virtual Result<void> mkdirs(const std::string& dir) = 0;
};

/// Real POSIX filesystem.
class SystemVfs final : public Vfs {
 public:
  Result<std::unique_ptr<VfsFile>> open_append(const std::string& path,
                                               bool truncate) override;
  Result<Bytes> read_all(const std::string& path) override;
  bool exists(const std::string& path) override;
  Result<void> rename(const std::string& from, const std::string& to) override;
  Result<void> remove(const std::string& path) override;
  std::vector<std::string> list(const std::string& dir) override;
  Result<void> mkdirs(const std::string& dir) override;
};

/// Deterministic in-memory filesystem. Used by the scenario engine (so
/// `kill_recover` JSON is an exact function of script + seed) and by
/// tests, which can also mutate stored bytes directly to model bit rot
/// and truncation.
class MemVfs final : public Vfs {
 public:
  Result<std::unique_ptr<VfsFile>> open_append(const std::string& path,
                                               bool truncate) override;
  Result<Bytes> read_all(const std::string& path) override;
  bool exists(const std::string& path) override;
  Result<void> rename(const std::string& from, const std::string& to) override;
  Result<void> remove(const std::string& path) override;
  std::vector<std::string> list(const std::string& dir) override;
  Result<void> mkdirs(const std::string& dir) override;

  /// Test hooks: flip bits / cut a tail on a stored file.
  Result<void> corrupt(const std::string& path, std::size_t offset,
                       std::uint8_t xor_mask);
  Result<void> truncate(const std::string& path, std::size_t len);
  std::size_t file_size(const std::string& path);

 private:
  struct Entry {
    std::mutex mu;
    Bytes data;
  };
  class MemFile;

  std::mutex mu_;
  std::map<std::string, std::shared_ptr<Entry>> files_;
};

/// Fault-injecting decorator. Wraps any Vfs and makes its append/sync
/// paths fail on command; a byte budget produces genuine short writes
/// (a prefix lands, the rest does not) so torn journal tails are
/// exercised exactly as a crashed kernel would leave them.
class FaultVfs final : public Vfs {
 public:
  struct Faults {
    /// < 0: unlimited. Otherwise appends succeed until this many bytes
    /// have been written through the shim, then the append that crosses
    /// the boundary writes only the part that fits and fails.
    std::int64_t append_byte_budget = -1;
    /// Fail this many upcoming sync() calls (decrements per failure).
    int fail_next_syncs = 0;
    bool fail_all_syncs = false;
  };
  struct Counters {
    std::uint64_t appends_failed = 0;
    std::uint64_t syncs_failed = 0;
    std::uint64_t bytes_passed = 0;
  };

  explicit FaultVfs(Vfs& inner) : inner_(inner) {}

  Faults& faults() { return faults_; }
  const Counters& counters() const { return counters_; }

  Result<std::unique_ptr<VfsFile>> open_append(const std::string& path,
                                               bool truncate) override;
  Result<Bytes> read_all(const std::string& path) override {
    return inner_.read_all(path);
  }
  bool exists(const std::string& path) override { return inner_.exists(path); }
  Result<void> rename(const std::string& from, const std::string& to) override {
    return inner_.rename(from, to);
  }
  Result<void> remove(const std::string& path) override {
    return inner_.remove(path);
  }
  std::vector<std::string> list(const std::string& dir) override {
    return inner_.list(dir);
  }
  Result<void> mkdirs(const std::string& dir) override {
    return inner_.mkdirs(dir);
  }

 private:
  class FaultFile;

  Vfs& inner_;
  std::mutex mu_;
  Faults faults_;
  Counters counters_;
};

}  // namespace apna::persist

#include "persist/vfs.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace apna::persist {

// ---------------------------------------------------------------------------
// SystemVfs

namespace {

class PosixFile final : public VfsFile {
 public:
  explicit PosixFile(int fd) : fd_(fd) {}
  ~PosixFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Result<void> append(ByteSpan data) override {
    const std::uint8_t* p = data.data();
    std::size_t left = data.size();
    while (left > 0) {
      const ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Result<void>(Errc::internal, "vfs write failed");
      }
      p += static_cast<std::size_t>(n);
      left -= static_cast<std::size_t>(n);
    }
    return Result<void>::success();
  }

  Result<void> sync() override {
    if (::fsync(fd_) != 0)
      return Result<void>(Errc::internal, "vfs fsync failed");
    return Result<void>::success();
  }

 private:
  int fd_;
};

}  // namespace

Result<std::unique_ptr<VfsFile>> SystemVfs::open_append(
    const std::string& path, bool truncate) {
  int flags = O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC;
  if (truncate) flags |= O_TRUNC;
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0)
    return Result<std::unique_ptr<VfsFile>>(Errc::internal,
                                            "vfs open for append failed");
  return Result<std::unique_ptr<VfsFile>>(std::make_unique<PosixFile>(fd));
}

Result<Bytes> SystemVfs::read_all(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Result<Bytes>(Errc::not_found, "vfs open for read failed");
  Bytes out;
  std::uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Result<Bytes>(Errc::internal, "vfs read failed");
    }
    if (n == 0) break;
    out.insert(out.end(), buf, buf + n);
  }
  ::close(fd);
  return Result<Bytes>(std::move(out));
}

bool SystemVfs::exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

Result<void> SystemVfs::rename(const std::string& from, const std::string& to) {
  if (std::rename(from.c_str(), to.c_str()) != 0)
    return Result<void>(Errc::internal, "vfs rename failed");
  return Result<void>::success();
}

Result<void> SystemVfs::remove(const std::string& path) {
  if (std::remove(path.c_str()) != 0)
    return Result<void>(Errc::internal, "vfs remove failed");
  return Result<void>::success();
}

std::vector<std::string> SystemVfs::list(const std::string& dir) {
  std::vector<std::string> names;
  DIR* d = ::opendir(dir.c_str());
  if (!d) return names;
  while (struct dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(name);
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

Result<void> SystemVfs::mkdirs(const std::string& dir) {
  std::string prefix;
  std::size_t pos = 0;
  while (pos <= dir.size()) {
    const std::size_t slash = dir.find('/', pos);
    prefix = (slash == std::string::npos) ? dir : dir.substr(0, slash);
    pos = (slash == std::string::npos) ? dir.size() + 1 : slash + 1;
    if (prefix.empty()) continue;
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST)
      return Result<void>(Errc::internal, "vfs mkdir failed");
  }
  return Result<void>::success();
}

// ---------------------------------------------------------------------------
// MemVfs

class MemVfs::MemFile final : public VfsFile {
 public:
  explicit MemFile(std::shared_ptr<Entry> e) : entry_(std::move(e)) {}

  Result<void> append(ByteSpan data) override {
    std::lock_guard lk(entry_->mu);
    entry_->data.insert(entry_->data.end(), data.begin(), data.end());
    return Result<void>::success();
  }
  Result<void> sync() override { return Result<void>::success(); }

 private:
  std::shared_ptr<Entry> entry_;
};

Result<std::unique_ptr<VfsFile>> MemVfs::open_append(const std::string& path,
                                                     bool truncate) {
  std::lock_guard lk(mu_);
  auto& slot = files_[path];
  if (!slot) slot = std::make_shared<Entry>();
  if (truncate) {
    std::lock_guard elk(slot->mu);
    slot->data.clear();
  }
  return Result<std::unique_ptr<VfsFile>>(std::make_unique<MemFile>(slot));
}

Result<Bytes> MemVfs::read_all(const std::string& path) {
  std::shared_ptr<Entry> e;
  {
    std::lock_guard lk(mu_);
    auto it = files_.find(path);
    if (it == files_.end())
      return Result<Bytes>(Errc::not_found, "no such mem file");
    e = it->second;
  }
  std::lock_guard elk(e->mu);
  return Result<Bytes>(Bytes(e->data));
}

bool MemVfs::exists(const std::string& path) {
  std::lock_guard lk(mu_);
  return files_.count(path) != 0;
}

Result<void> MemVfs::rename(const std::string& from, const std::string& to) {
  std::lock_guard lk(mu_);
  auto it = files_.find(from);
  if (it == files_.end())
    return Result<void>(Errc::not_found, "mem rename: no such file");
  files_[to] = std::move(it->second);
  files_.erase(it);
  return Result<void>::success();
}

Result<void> MemVfs::remove(const std::string& path) {
  std::lock_guard lk(mu_);
  if (files_.erase(path) == 0)
    return Result<void>(Errc::not_found, "mem remove: no such file");
  return Result<void>::success();
}

std::vector<std::string> MemVfs::list(const std::string& dir) {
  const std::string prefix = dir.empty() || dir.back() == '/' ? dir : dir + "/";
  std::vector<std::string> names;
  std::lock_guard lk(mu_);
  for (const auto& [path, entry] : files_) {
    if (path.size() <= prefix.size() || path.compare(0, prefix.size(), prefix))
      continue;
    const std::string rest = path.substr(prefix.size());
    if (rest.find('/') == std::string::npos) names.push_back(rest);
  }
  return names;  // map iteration order is already sorted
}

Result<void> MemVfs::mkdirs(const std::string&) {
  return Result<void>::success();
}

Result<void> MemVfs::corrupt(const std::string& path, std::size_t offset,
                             std::uint8_t xor_mask) {
  std::lock_guard lk(mu_);
  auto it = files_.find(path);
  if (it == files_.end() || offset >= it->second->data.size())
    return Result<void>(Errc::not_found, "mem corrupt: bad path/offset");
  std::lock_guard elk(it->second->mu);
  it->second->data[offset] ^= xor_mask;
  return Result<void>::success();
}

Result<void> MemVfs::truncate(const std::string& path, std::size_t len) {
  std::lock_guard lk(mu_);
  auto it = files_.find(path);
  if (it == files_.end())
    return Result<void>(Errc::not_found, "mem truncate: no such file");
  std::lock_guard elk(it->second->mu);
  if (len < it->second->data.size()) it->second->data.resize(len);
  return Result<void>::success();
}

std::size_t MemVfs::file_size(const std::string& path) {
  std::lock_guard lk(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return 0;
  std::lock_guard elk(it->second->mu);
  return it->second->data.size();
}

// ---------------------------------------------------------------------------
// FaultVfs

class FaultVfs::FaultFile final : public VfsFile {
 public:
  FaultFile(FaultVfs& owner, std::unique_ptr<VfsFile> inner)
      : owner_(owner), inner_(std::move(inner)) {}

  Result<void> append(ByteSpan data) override {
    std::lock_guard lk(owner_.mu_);
    auto& f = owner_.faults_;
    auto& c = owner_.counters_;
    if (f.append_byte_budget < 0) {
      c.bytes_passed += data.size();
      return inner_->append(data);
    }
    const auto budget = static_cast<std::uint64_t>(f.append_byte_budget);
    if (data.size() <= budget) {
      f.append_byte_budget -= static_cast<std::int64_t>(data.size());
      c.bytes_passed += data.size();
      return inner_->append(data);
    }
    // Short write: the prefix that fits lands on the inner file, the
    // rest is lost — the caller sees a failure with a torn tail behind.
    if (budget > 0) {
      (void)inner_->append(data.first(budget));
      c.bytes_passed += budget;
    }
    f.append_byte_budget = 0;
    ++c.appends_failed;
    return Result<void>(Errc::internal, "injected short write");
  }

  Result<void> sync() override {
    std::lock_guard lk(owner_.mu_);
    auto& f = owner_.faults_;
    if (f.fail_all_syncs || f.fail_next_syncs > 0) {
      if (f.fail_next_syncs > 0) --f.fail_next_syncs;
      ++owner_.counters_.syncs_failed;
      return Result<void>(Errc::internal, "injected fsync failure");
    }
    return inner_->sync();
  }

 private:
  FaultVfs& owner_;
  std::unique_ptr<VfsFile> inner_;
};

Result<std::unique_ptr<VfsFile>> FaultVfs::open_append(const std::string& path,
                                                       bool truncate) {
  auto inner = inner_.open_append(path, truncate);
  if (!inner) return inner;
  return Result<std::unique_ptr<VfsFile>>(
      std::make_unique<FaultFile>(*this, inner.take()));
}

}  // namespace apna::persist

// Snapshot container: a self-checksummed file published atomically via
// temp-file + rename. The container is payload-agnostic — the core
// layer serializes a full AsState image into it; this layer owns the
// framing, provenance header and corruption detection.
//
// File layout:
//
//   [u32 header_len][u32 header_crc32c][header][payload]
//   header := "APNASNP1" u16 version u64 generation u64 seed
//             str git_sha u32 payload_len u32 payload_crc32c
//
// A loader that finds *any* violation (short file, bad magic/version,
// header or payload CRC mismatch, length mismatch) reports a clean
// error so recovery can fall back to the previous generation.
#pragma once

#include <cstdint>
#include <string>

#include "persist/vfs.h"
#include "util/bytes.h"
#include "util/result.h"

namespace apna::persist {

struct SnapshotInfo {
  std::uint64_t generation = 0;
  std::uint64_t seed = 0;       // run provenance (scenario/bench seed)
  std::string git_sha;          // build provenance
};

/// Writes `path + ".tmp"`, fsyncs, then renames over `path`.
Result<void> write_snapshot_file(Vfs& vfs, const std::string& path,
                                 const SnapshotInfo& info, ByteSpan payload);

struct LoadedSnapshot {
  SnapshotInfo info;
  Bytes payload;
};

Result<LoadedSnapshot> read_snapshot_file(Vfs& vfs, const std::string& path);

}  // namespace apna::persist

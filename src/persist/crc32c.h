// CRC32C (Castagnoli) — the frame checksum for the durability layer.
// Software table implementation: the journal/snapshot paths are not hot
// (group-committed control-plane mutations, not per-packet work), so a
// portable byte-at-a-time table is plenty and avoids an SSE4.2 gate.
#pragma once

#include <cstdint>

#include "util/bytes.h"

namespace apna::persist {

/// CRC32C over `data`. `seed` is a previously returned crc, allowing
/// incremental computation: crc32c(b, crc32c(a)) == crc32c(a ‖ b).
std::uint32_t crc32c(ByteSpan data, std::uint32_t seed = 0);

}  // namespace apna::persist

// Transport abstraction — how packets enter and leave a process.
//
// Everything above this layer (border router, forwarding pool, services)
// traffics in wire::PacketBuf and never cares whether the wire is the
// discrete-event simulator or a real kernel socket. A Transport endpoint
// owns that boundary:
//
//  * SimTransport  — endpoints connected over a net::EventLoop. Delivery is
//    a scheduled event that owns the moved PacketBuf, exactly like
//    network.h's fabric; deterministic, single-threaded, zero syscalls.
//  * UdpTransport  — a real nonblocking UDP socket + epoll (transport.cpp).
//    One APNA packet per datagram. RX acquires storage from the per-thread
//    wire::BufferPool, so the zero-copy discipline survives the syscall
//    boundary: in steady state a received datagram costs one recvfrom into
//    recycled storage and zero heap allocations; TX sends straight from the
//    wire image and recycles the buffer on return.
//
// Both backends funnel inbound bytes through the SAME validation tail
// (Transport::deliver): every datagram is re-validated by PacketView::bind
// before the handler ever sees it — truncated or tampered images are
// counted (rx_rejected) and their storage is returned to the pool, so a
// garbage flood cannot make the RX path allocate. A PacketBuf handed to the
// rx handler is therefore always bound and owned: the handler may move it
// down the forwarding path with no further checks. The conformance suite
// (tests/transport_test.cpp) runs the same assertions against both
// backends so the sim and UDP paths cannot drift.
//
// Threading: a Transport endpoint is single-threaded by contract — send(),
// poll() and the rx handler all run on the owning thread (the run-to-
// completion RX loop of a border-router process, or the event loop in the
// sim). Cross-thread handoff happens ABOVE the transport, in
// router::ForwardingPool's steered rings.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/sim.h"
#include "util/result.h"
#include "wire/packet_buf.h"

namespace apna::net {

/// Index into an endpoint's peer table (dense, starts at 0). UDP endpoints
/// learn new peers on first RX (bounded by Config::max_peers).
using PeerId = std::uint32_t;

/// RX from a source the peer table could not hold (see max_peers).
constexpr PeerId kUnknownPeer = 0xffffffffu;

/// Receives ownership of one validated inbound packet.
using TransportRxHandler = std::function<void(PeerId from, wire::PacketBuf)>;

struct TransportStats {
  std::uint64_t tx_packets = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t tx_errors = 0;    // send failures (e.g. full socket buffer)
  std::uint64_t rx_packets = 0;   // validated and delivered to the handler
  std::uint64_t rx_bytes = 0;
  std::uint64_t rx_rejected = 0;  // PacketView::bind refused the datagram
  std::uint64_t rx_truncated = 0; // datagram exceeded the RX buffer
  /// Learned peers displaced LRU to admit a new RX source (UDP backend;
  /// explicitly added peers are pinned and never evicted).
  std::uint64_t peers_evicted = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  virtual const char* backend() const = 0;

  /// Installs the inbound-packet handler (one; replacing is allowed).
  void set_rx(TransportRxHandler h) { rx_ = std::move(h); }

  /// Transmits one packet to `to`. Consumes the buffer (its storage is
  /// recycled on the owning thread once the bytes are on the wire).
  virtual Result<void> send(PeerId to, wire::PacketBuf pkt) = 0;

  /// Transmits raw bytes as one datagram WITHOUT validation — the
  /// wire-level adversary hook (conformance tests inject truncated and
  /// tampered images with it). The receiver's bind() is the defense.
  virtual Result<void> send_raw(PeerId to, ByteSpan bytes) = 0;

  /// Drains ready inbound datagrams into the rx handler. `timeout_ms` 0
  /// polls without blocking; > 0 blocks until traffic or timeout. Returns
  /// packets delivered to THIS endpoint's handler during the call.
  virtual std::size_t poll(int timeout_ms = 0) = 0;

  const TransportStats& stats() const { return stats_; }

 protected:
  Transport() = default;

  /// Shared RX validation tail: every inbound datagram — simulated or from
  /// a socket — becomes a PacketBuf here or dies here. Rejected storage
  /// goes back to the pool so adversarial floods stay allocation-free.
  /// Returns true when the packet reached the handler.
  bool deliver(PeerId from, Bytes datagram) {
    if (!wire::PacketView::bind(datagram)) {
      ++stats_.rx_rejected;
      wire::BufferPool::local().release(std::move(datagram));
      return false;
    }
    auto pkt = wire::PacketBuf::adopt(std::move(datagram));
    ++stats_.rx_packets;
    stats_.rx_bytes += pkt->wire_size();
    if (rx_) rx_(from, std::move(*pkt));
    return true;
  }

  TransportRxHandler rx_;
  TransportStats stats_;
};

/// Simulator backend: endpoints exchange packets over a shared EventLoop
/// with a fixed one-way latency. send() moves the buffer into the delivery
/// event (no copy, no re-validation — it was bound at construction);
/// send_raw() copies the raw bytes into pooled storage and re-validates at
/// the receiver, byte-for-byte the UDP discipline.
class SimTransport : public Transport {
 public:
  explicit SimTransport(EventLoop& loop, TimeUs latency = 0,
                        std::size_t rx_buf_bytes = kDefaultRxBufBytes)
      : loop_(loop), latency_(latency), rx_buf_bytes_(rx_buf_bytes) {}

  /// Largest datagram an endpoint accepts; parity with UdpTransport's RX
  /// buffer so oversize behavior cannot drift between backends.
  static constexpr std::size_t kDefaultRxBufBytes = 2048;

  const char* backend() const override { return "sim"; }

  /// Adds `other` to this endpoint's peer table. One direction; peers call
  /// it on each other for a duplex link. `other` must outlive this.
  PeerId add_peer(SimTransport& other) {
    peers_.push_back(&other);
    return static_cast<PeerId>(peers_.size() - 1);
  }

  Result<void> send(PeerId to, wire::PacketBuf pkt) override {
    if (to >= peers_.size())
      return Result<void>(Errc::no_route, "unknown peer");
    ++stats_.tx_packets;
    stats_.tx_bytes += pkt.wire_size();
    SimTransport* peer = peers_[to];
    const PeerId from = peer->peer_of(this);
    loop_.schedule_in(latency_, [peer, from, pkt = std::move(pkt)]() mutable {
      // Already bound (PacketBuf invariant) — deliver without re-copy.
      ++peer->stats_.rx_packets;
      peer->stats_.rx_bytes += pkt.wire_size();
      ++peer->delivered_;
      if (peer->rx_) peer->rx_(from, std::move(pkt));
    });
    return Result<void>::success();
  }

  Result<void> send_raw(PeerId to, ByteSpan bytes) override {
    if (to >= peers_.size())
      return Result<void>(Errc::no_route, "unknown peer");
    ++stats_.tx_packets;
    stats_.tx_bytes += bytes.size();
    Bytes raw = wire::BufferPool::local().acquire(bytes.size());
    std::memcpy(raw.data(), bytes.data(), bytes.size());
    SimTransport* peer = peers_[to];
    const PeerId from = peer->peer_of(this);
    loop_.schedule_in(latency_, [peer, from, raw = std::move(raw)]() mutable {
      if (raw.size() > peer->rx_buf_bytes_) {
        ++peer->stats_.rx_truncated;
        wire::BufferPool::local().release(std::move(raw));
        return;
      }
      if (peer->deliver(from, std::move(raw))) ++peer->delivered_;
    });
    return Result<void>::success();
  }

  /// Runs the shared loop dry (both endpoints' deliveries fire); returns
  /// packets that landed in THIS endpoint's handler. `timeout_ms` is
  /// ignored — simulated time is free.
  std::size_t poll(int timeout_ms = 0) override {
    (void)timeout_ms;
    const std::uint64_t before = delivered_;
    loop_.run();
    return static_cast<std::size_t>(delivered_ - before);
  }

 private:
  /// The peer id `other` should present as RX source on this endpoint (its
  /// slot in OUR table; kUnknownPeer when we never added it back).
  PeerId peer_of(const SimTransport* other) const {
    for (std::size_t i = 0; i < peers_.size(); ++i)
      if (peers_[i] == other) return static_cast<PeerId>(i);
    return kUnknownPeer;
  }

  EventLoop& loop_;
  TimeUs latency_;
  std::size_t rx_buf_bytes_;
  std::vector<SimTransport*> peers_;
  std::uint64_t delivered_ = 0;  // handler invocations (poll() delta)
};

/// Real-socket backend: nonblocking UDP + epoll (Linux). One APNA packet
/// per datagram; peers are added explicitly (add_peer) or learned from RX
/// source addresses. The peer table is bounded by Config::max_peers: when a
/// new source arrives at a full table, the least-recently-seen LEARNED peer
/// is evicted (its PeerId is reused — an address-spoofing flood can churn
/// the learned slots but cannot grow the table or displace pinned peers).
/// Explicitly added peers are pinned and never evicted; if every slot is
/// pinned, unknown sources deliver as kUnknownPeer.
class UdpTransport : public Transport {
 public:
  struct Config {
    std::string bind_host = "127.0.0.1";
    std::uint16_t bind_port = 0;      // 0 → ephemeral (see local_port())
    std::size_t rx_buf_bytes = 2048;  // max accepted datagram
    std::size_t rx_batch = 64;        // datagrams drained per epoll wake
    std::size_t max_peers = 64;       // learned-peer table bound
    int so_rcvbuf = 1 << 20;          // SO_RCVBUF hint (0 → kernel default)
  };

  /// Opens and binds the socket. Fails with Errc::internal when the
  /// environment forbids sockets (sandboxed CI) — callers degrade to the
  /// sim backend or skip.
  static Result<std::unique_ptr<UdpTransport>> open(const Config& cfg);

  ~UdpTransport() override;

  const char* backend() const override { return "udp"; }

  /// The bound port (after ephemeral resolution) — what a second process
  /// connects to.
  std::uint16_t local_port() const { return local_port_; }

  Result<PeerId> add_peer(const std::string& host, std::uint16_t port);

  /// Current peer-table occupancy (pinned + learned). Never exceeds
  /// Config::max_peers.
  std::size_t peer_count() const { return peers_.size(); }

  Result<void> send(PeerId to, wire::PacketBuf pkt) override;
  Result<void> send_raw(PeerId to, ByteSpan bytes) override;
  std::size_t poll(int timeout_ms = 0) override;

 private:
  // Out of line: PeerAddr is incomplete here, so anything that could
  // destroy the peer table (ctor EH cleanup included) lives in the .cpp.
  UdpTransport(const Config& cfg, int fd, int epoll_fd,
               std::uint16_t local_port);

  Result<void> send_bytes(PeerId to, ByteSpan bytes);
  /// Drains ready datagrams (up to rx_batch) from the socket. Returns
  /// packets delivered to the handler.
  std::size_t drain();

  struct PeerAddr;  // sockaddr_in + pinned/last_seen, hidden from the header
  /// The peer table slot for `addr`: refreshes recency on a match, learns
  /// a new source into a free slot, or evicts the LRU learned peer when
  /// the table is full (kUnknownPeer only when every slot is pinned).
  PeerId peer_for(const PeerAddr& addr);
  /// The least-recently-seen unpinned slot, kUnknownPeer when all pinned.
  PeerId lru_learned_slot() const;

  Config cfg_;
  int fd_ = -1;
  int epoll_fd_ = -1;
  std::uint16_t local_port_ = 0;
  std::vector<std::unique_ptr<PeerAddr>> peers_;
  std::uint64_t rx_seq_ = 0;  // recency clock for learned-peer LRU
};

}  // namespace apna::net

// Packet transport over the simulated topology.
//
// InterAsNetwork delivers packets between border routers along topology
// links; IntraSwitch delivers within one AS by HID. Both support taps
// (the §II adversary who "can eavesdrop on all control and data messages")
// and fault injection (drop/tamper) for failure testing.
//
// Zero-copy contract: a packet is one wire::PacketBuf. send()/deliver()
// take it by value and MOVE it into the scheduled delivery event — the same
// buffer the sender sealed is the buffer the receiving handler gets; the
// fabric never copies or re-serializes a packet. Handlers are looked up at
// DELIVERY time, not at schedule time, so re-registering (or detaching) an
// endpoint between schedule and delivery is safe — a stale registration
// never leaves a dangling handler reference captured in the event queue.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "net/sim.h"
#include "net/topology.h"
#include "util/result.h"
#include "wire/packet_buf.h"

namespace apna::net {

/// Receives ownership of a delivered packet.
using PacketHandler = std::function<void(wire::PacketBuf)>;

/// Observes packets in flight: from-AID, to-AID (0 for intra-AS hops), and
/// a view of the wire image. Used by privacy analyses and tests; the view
/// is valid only for the duration of the call.
using PacketTap = std::function<void(std::uint32_t from, std::uint32_t to,
                                     const wire::PacketView& pkt)>;

/// Per-link fault model for failure-injection tests. tamper mutates the
/// wire image in place (bit flips on the wire).
struct FaultModel {
  double drop_rate = 0.0;                          // [0,1]
  std::function<bool()> coin;                      // returns true → drop
  std::function<void(wire::PacketBuf&)> tamper;    // mutate in flight
};

/// Delivers packets between ASes along topology links.
class InterAsNetwork {
 public:
  InterAsNetwork(EventLoop& loop, const Topology& topo)
      : loop_(loop), topo_(topo) {}

  /// Registers the ingress handler of `aid`'s border router. Replacing a
  /// registration takes effect for every subsequent delivery, including
  /// packets already in flight (delivery-time lookup).
  void register_border_router(std::uint32_t aid, PacketHandler ingress) {
    brs_[aid] = std::move(ingress);
  }

  /// Transmits over the (from → to) link; to must be a neighbor of from.
  /// Consumes the packet (moved into the in-flight event).
  Result<void> send(std::uint32_t from_aid, std::uint32_t to_aid,
                    wire::PacketBuf pkt) {
    auto lat = topo_.link_latency(from_aid, to_aid);
    if (!lat) return Result<void>(Errc::no_route, "ASes not adjacent");
    if (!brs_.contains(to_aid))
      return Result<void>(Errc::no_route, "no BR registered for AID");

    for (const auto& tap : taps_) tap(from_aid, to_aid, pkt.view());

    if (faults_.coin && faults_.coin()) {
      ++stats_.dropped;
      return Result<void>::success();  // dropped silently, like a real wire
    }
    if (faults_.tamper) {
      faults_.tamper(pkt);
      // A structural mutation (flag/length bytes) changes the wire layout:
      // re-validate so the receiver's view can never read past the image.
      // A frame that no longer parses dies on the wire, like any corrupt
      // frame a real NIC would discard.
      if (!pkt.rebind()) {
        ++stats_.dropped;
        return Result<void>::success();
      }
    }

    ++stats_.transmitted;
    stats_.bytes += pkt.wire_size();
    loop_.schedule_in(*lat, [this, to_aid, pkt = std::move(pkt)]() mutable {
      // Delivery-time lookup: a register_border_router() call (rehash or
      // overwrite) while the packet was in flight must not dangle.
      auto it = brs_.find(to_aid);
      if (it != brs_.end()) it->second(std::move(pkt));
    });
    return Result<void>::success();
  }

  void add_tap(PacketTap tap) { taps_.push_back(std::move(tap)); }
  void set_faults(FaultModel f) { faults_ = std::move(f); }

  struct Stats {
    std::uint64_t transmitted = 0;
    std::uint64_t dropped = 0;
    std::uint64_t bytes = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  EventLoop& loop_;
  const Topology& topo_;
  std::unordered_map<std::uint32_t, PacketHandler> brs_;
  std::vector<PacketTap> taps_;
  FaultModel faults_;
  Stats stats_;
};

/// Intra-AS delivery fabric keyed by HID. The AS fabric decides the HID
/// (by opening the destination EphID); the switch only moves packets.
class IntraSwitch {
 public:
  IntraSwitch(EventLoop& loop, TimeUs hop_latency)
      : loop_(loop), hop_latency_(hop_latency) {}

  void attach(std::uint32_t hid, PacketHandler h) {
    ports_[hid] = std::move(h);
  }
  void detach(std::uint32_t hid) { ports_.erase(hid); }
  bool attached(std::uint32_t hid) const { return ports_.contains(hid); }

  /// Consumes the packet (moved into the in-flight event). Ports are
  /// resolved at delivery time — an attach/detach during the hop latency
  /// behaves like a real switch updating its table mid-flight.
  Result<void> deliver(std::uint32_t hid, wire::PacketBuf pkt) {
    if (!ports_.contains(hid))
      return Result<void>(Errc::unknown_host, "no port for HID");
    for (const auto& tap : taps_) tap(0, 0, pkt.view());
    ++stats_.delivered;
    loop_.schedule_in(hop_latency_, [this, hid, pkt = std::move(pkt)]() mutable {
      auto it = ports_.find(hid);
      if (it != ports_.end()) it->second(std::move(pkt));
    });
    return Result<void>::success();
  }

  void add_tap(PacketTap tap) { taps_.push_back(std::move(tap)); }

  struct Stats {
    std::uint64_t delivered = 0;
  };
  const Stats& stats() const { return stats_; }
  TimeUs hop_latency() const { return hop_latency_; }

 private:
  EventLoop& loop_;
  TimeUs hop_latency_;
  std::unordered_map<std::uint32_t, PacketHandler> ports_;
  std::vector<PacketTap> taps_;
  Stats stats_;
};

}  // namespace apna::net

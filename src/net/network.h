// Packet transport over the simulated topology.
//
// InterAsNetwork delivers packets between border routers along topology
// links; IntraSwitch delivers within one AS by HID. Both support taps
// (the §II adversary who "can eavesdrop on all control and data messages")
// and fault injection (drop/tamper) for failure testing.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "net/sim.h"
#include "net/topology.h"
#include "util/result.h"
#include "wire/apna_header.h"

namespace apna::net {

using PacketHandler = std::function<void(const wire::Packet&)>;

/// Observes packets in flight: from-AID, to-AID (0 for intra-AS hops), and
/// the full packet. Used by privacy analyses and tests.
using PacketTap =
    std::function<void(std::uint32_t from, std::uint32_t to,
                       const wire::Packet& pkt)>;

/// Per-link fault model for failure-injection tests.
struct FaultModel {
  double drop_rate = 0.0;                       // [0,1]
  std::function<bool()> coin;                   // returns true → drop
  std::function<void(wire::Packet&)> tamper;    // mutate in flight
};

/// Delivers packets between ASes along topology links.
class InterAsNetwork {
 public:
  InterAsNetwork(EventLoop& loop, const Topology& topo)
      : loop_(loop), topo_(topo) {}

  /// Registers the ingress handler of `aid`'s border router.
  void register_border_router(std::uint32_t aid, PacketHandler ingress) {
    brs_[aid] = std::move(ingress);
  }

  /// Transmits over the (from → to) link; to must be a neighbor of from.
  Result<void> send(std::uint32_t from_aid, std::uint32_t to_aid,
                    const wire::Packet& pkt) {
    auto lat = topo_.link_latency(from_aid, to_aid);
    if (!lat) return Result<void>(Errc::no_route, "ASes not adjacent");
    auto it = brs_.find(to_aid);
    if (it == brs_.end())
      return Result<void>(Errc::no_route, "no BR registered for AID");

    for (const auto& tap : taps_) tap(from_aid, to_aid, pkt);

    if (faults_.coin && faults_.coin()) {
      ++stats_.dropped;
      return Result<void>::success();  // dropped silently, like a real wire
    }
    wire::Packet delivered = pkt;
    if (faults_.tamper) faults_.tamper(delivered);

    ++stats_.transmitted;
    stats_.bytes += pkt.wire_size();
    PacketHandler& handler = it->second;
    loop_.schedule_in(*lat, [&handler, delivered = std::move(delivered)] {
      handler(delivered);
    });
    return Result<void>::success();
  }

  void add_tap(PacketTap tap) { taps_.push_back(std::move(tap)); }
  void set_faults(FaultModel f) { faults_ = std::move(f); }

  struct Stats {
    std::uint64_t transmitted = 0;
    std::uint64_t dropped = 0;
    std::uint64_t bytes = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  EventLoop& loop_;
  const Topology& topo_;
  std::unordered_map<std::uint32_t, PacketHandler> brs_;
  std::vector<PacketTap> taps_;
  FaultModel faults_;
  Stats stats_;
};

/// Intra-AS delivery fabric keyed by HID. The AS fabric decides the HID
/// (by opening the destination EphID); the switch only moves packets.
class IntraSwitch {
 public:
  IntraSwitch(EventLoop& loop, TimeUs hop_latency)
      : loop_(loop), hop_latency_(hop_latency) {}

  void attach(std::uint32_t hid, PacketHandler h) {
    ports_[hid] = std::move(h);
  }
  void detach(std::uint32_t hid) { ports_.erase(hid); }
  bool attached(std::uint32_t hid) const { return ports_.contains(hid); }

  Result<void> deliver(std::uint32_t hid, const wire::Packet& pkt) {
    auto it = ports_.find(hid);
    if (it == ports_.end())
      return Result<void>(Errc::unknown_host, "no port for HID");
    for (const auto& tap : taps_) tap(0, 0, pkt);
    ++stats_.delivered;
    PacketHandler& handler = it->second;
    loop_.schedule_in(hop_latency_, [&handler, pkt] { handler(pkt); });
    return Result<void>::success();
  }

  void add_tap(PacketTap tap) { taps_.push_back(std::move(tap)); }

  struct Stats {
    std::uint64_t delivered = 0;
  };
  const Stats& stats() const { return stats_; }
  TimeUs hop_latency() const { return hop_latency_; }

 private:
  EventLoop& loop_;
  TimeUs hop_latency_;
  std::unordered_map<std::uint32_t, PacketHandler> ports_;
  std::vector<PacketTap> taps_;
  Stats stats_;
};

}  // namespace apna::net

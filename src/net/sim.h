// Discrete-event simulator — the substrate standing in for the paper's
// hardware testbed (§V-B3). Deterministic: identical seeds and schedules
// reproduce identical runs.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "core/ids.h"
#include "util/function.h"

namespace apna::net {

/// Scheduled work. Move-only so events can own a wire::PacketBuf without
/// copying it (the zero-copy transport moves buffers into the loop).
using EventFn = util::UniqueFunction<void()>;

/// Simulated time in microseconds.
using TimeUs = std::uint64_t;

constexpr TimeUs kUsPerSecond = 1'000'000;

/// The simulation's Unix-time origin; EphID ExpTime values are derived from
/// it so certificate lifetimes behave like real timestamps (§V-A1).
constexpr core::ExpTime kEpochSeconds = 1'700'000'000;

class EventLoop {
 public:
  TimeUs now() const { return now_; }

  /// Wall-clock seconds for ExpTime fields (1 s granularity, §V-A1).
  core::ExpTime now_seconds() const {
    return kEpochSeconds + static_cast<core::ExpTime>(now_ / kUsPerSecond);
  }

  /// Schedules `fn` at absolute time `t`. A deadline already in the past
  /// is CLAMPED to now(): the event runs on the current tick, AFTER any
  /// events already queued for that tick (the seq_ FIFO tiebreak), and the
  /// clamp is counted in clamped_deadlines() — a caller computing
  /// deadlines from stale state can observe the drift instead of silently
  /// losing its ordering assumptions.
  void schedule_at(TimeUs t, EventFn fn) {
    if (t < now_) {
      ++clamped_;
      t = now_;
    }
    queue_.push(Event{t, seq_++, std::move(fn)});
  }

  void schedule_in(TimeUs delay, EventFn fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Advances simulated time without events (e.g. to expire EphIDs).
  void advance(TimeUs delta) { now_ += delta; }

  /// Runs until the queue drains. Returns events processed.
  std::size_t run() {
    std::size_t n = 0;
    while (!queue_.empty()) {
      step();
      ++n;
    }
    return n;
  }

  /// Runs events scheduled strictly before `t`, then sets now() = t.
  std::size_t run_until(TimeUs t) {
    std::size_t n = 0;
    while (!queue_.empty() && queue_.top().t < t) {
      step();
      ++n;
    }
    if (now_ < t) now_ = t;
    return n;
  }

  bool idle() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }
  /// schedule_at() calls whose past deadline was clamped to now().
  std::uint64_t clamped_deadlines() const { return clamped_; }

 private:
  struct Event {
    TimeUs t;
    std::uint64_t seq;  // FIFO tie-break for same-time events
    EventFn fn;

    bool operator>(const Event& o) const {
      return t != o.t ? t > o.t : seq > o.seq;
    }
  };

  void step() {
    // Moving out of the queue requires a const_cast because priority_queue
    // only exposes const top(); the element is popped immediately after.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.t;
    ev.fn();
  }

  TimeUs now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t clamped_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
};

}  // namespace apna::net

// UdpTransport — the real-socket data-plane backend (see transport.h).
//
// Shape: one nonblocking SOCK_DGRAM socket, one epoll instance, and a
// drain loop that pulls up to Config::rx_batch datagrams per wake into
// pooled storage. The paper's border router reaches line rate because the
// per-packet work is bounded (§IV-D3); this backend keeps the per-datagram
// software overhead equally bounded — one recvfrom into a recycled buffer,
// one bind() validation, one handler move. No per-packet allocation after
// the pool warms up.
#include "net/transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace apna::net {

struct UdpTransport::PeerAddr {
  sockaddr_in sin{};
  bool pinned = false;         // explicitly added — never evicted
  std::uint64_t last_seen = 0; // rx_seq_ stamp for learned-peer LRU

  bool operator==(const PeerAddr& o) const {
    return sin.sin_addr.s_addr == o.sin.sin_addr.s_addr &&
           sin.sin_port == o.sin.sin_port;
  }
};

Result<std::unique_ptr<UdpTransport>> UdpTransport::open(const Config& cfg) {
  using R = Result<std::unique_ptr<UdpTransport>>;
  const int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
  if (fd < 0) return R(Errc::internal, "socket() failed");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg.bind_port);
  if (::inet_pton(AF_INET, cfg.bind_host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return R(Errc::malformed, "bad bind host");
  }
  if (cfg.so_rcvbuf > 0) {
    // Best-effort: a loopback blast overruns the default rcvbuf long
    // before the forwarding path is the bottleneck.
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &cfg.so_rcvbuf,
                       sizeof(cfg.so_rcvbuf));
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return R(Errc::internal, "bind() failed");
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &blen) != 0) {
    ::close(fd);
    return R(Errc::internal, "getsockname() failed");
  }

  const int epfd = ::epoll_create1(0);
  if (epfd < 0) {
    ::close(fd);
    return R(Errc::internal, "epoll_create1() failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (::epoll_ctl(epfd, EPOLL_CTL_ADD, fd, &ev) != 0) {
    ::close(epfd);
    ::close(fd);
    return R(Errc::internal, "epoll_ctl() failed");
  }
  return R(std::unique_ptr<UdpTransport>(
      new UdpTransport(cfg, fd, epfd, ntohs(bound.sin_port))));
}

UdpTransport::UdpTransport(const Config& cfg, int fd, int epoll_fd,
                           std::uint16_t local_port)
    : cfg_(cfg), fd_(fd), epoll_fd_(epoll_fd), local_port_(local_port) {}

UdpTransport::~UdpTransport() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (fd_ >= 0) ::close(fd_);
}

Result<PeerId> UdpTransport::add_peer(const std::string& host,
                                      std::uint16_t port) {
  auto addr = std::make_unique<PeerAddr>();
  addr->sin.sin_family = AF_INET;
  addr->sin.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr->sin.sin_addr) != 1)
    return Result<PeerId>(Errc::malformed, "bad peer host");
  addr->pinned = true;
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    if (*peers_[i] == *addr) {
      peers_[i]->pinned = true;  // re-adding a learned peer pins it
      return static_cast<PeerId>(i);
    }
  }
  if (peers_.size() >= cfg_.max_peers) {
    // Explicit peers outrank learned ones: displace the LRU learned slot.
    const PeerId victim = lru_learned_slot();
    if (victim == kUnknownPeer)
      return Result<PeerId>(Errc::exhausted, "peer table full");
    ++stats_.peers_evicted;
    peers_[victim] = std::move(addr);
    return victim;
  }
  peers_.push_back(std::move(addr));
  return static_cast<PeerId>(peers_.size() - 1);
}

Result<void> UdpTransport::send_bytes(PeerId to, ByteSpan bytes) {
  if (to >= peers_.size())
    return Result<void>(Errc::no_route, "unknown peer");
  const PeerAddr& peer = *peers_[to];
  const ssize_t n =
      ::sendto(fd_, bytes.data(), bytes.size(), 0,
               reinterpret_cast<const sockaddr*>(&peer.sin), sizeof(peer.sin));
  if (n < 0) {
    // EAGAIN/ENOBUFS: the socket buffer is full — the datagram is gone,
    // exactly like a NIC TX queue overrun. Counted, not fatal.
    ++stats_.tx_errors;
    return Result<void>(Errc::exhausted, "sendto() failed");
  }
  ++stats_.tx_packets;
  stats_.tx_bytes += bytes.size();
  return Result<void>::success();
}

Result<void> UdpTransport::send(PeerId to, wire::PacketBuf pkt) {
  // Transmit straight from the wire image; the buffer recycles into this
  // thread's pool when `pkt` goes out of scope.
  return send_bytes(to, pkt.view().bytes());
}

Result<void> UdpTransport::send_raw(PeerId to, ByteSpan bytes) {
  return send_bytes(to, bytes);
}

PeerId UdpTransport::lru_learned_slot() const {
  PeerId victim = kUnknownPeer;
  std::uint64_t oldest = ~std::uint64_t{0};
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    if (peers_[i]->pinned) continue;
    if (peers_[i]->last_seen <= oldest) {
      oldest = peers_[i]->last_seen;
      victim = static_cast<PeerId>(i);
    }
  }
  return victim;
}

PeerId UdpTransport::peer_for(const PeerAddr& addr) {
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    if (*peers_[i] == addr) {
      peers_[i]->last_seen = ++rx_seq_;
      return static_cast<PeerId>(i);
    }
  }
  if (peers_.size() >= cfg_.max_peers) {
    // Table full: an address-spoofing flood must not grow memory, so a new
    // source RECYCLES the least-recently-seen learned slot instead of
    // appending. Pinned (explicitly added) peers are never displaced; when
    // every slot is pinned the source delivers as kUnknownPeer.
    const PeerId victim = lru_learned_slot();
    if (victim == kUnknownPeer) return kUnknownPeer;
    ++stats_.peers_evicted;
    auto replacement = std::make_unique<PeerAddr>(addr);
    replacement->last_seen = ++rx_seq_;
    peers_[victim] = std::move(replacement);
    return victim;
  }
  auto learned = std::make_unique<PeerAddr>(addr);
  learned->last_seen = ++rx_seq_;
  peers_.push_back(std::move(learned));
  return static_cast<PeerId>(peers_.size() - 1);
}

std::size_t UdpTransport::drain() {
  std::size_t delivered = 0;
  for (std::size_t i = 0; i < cfg_.rx_batch; ++i) {
    Bytes buf = wire::BufferPool::local().acquire(cfg_.rx_buf_bytes);
    PeerAddr from;
    socklen_t alen = sizeof(from.sin);
    // MSG_TRUNC makes recvfrom report the FULL datagram length even when
    // it exceeds the buffer, so oversize frames are detected, counted and
    // dropped instead of being silently clipped into a bind() failure.
    const ssize_t n =
        ::recvfrom(fd_, buf.data(), buf.size(), MSG_TRUNC,
                   reinterpret_cast<sockaddr*>(&from.sin), &alen);
    if (n < 0) {
      wire::BufferPool::local().release(std::move(buf));
      break;  // EAGAIN: socket drained
    }
    if (static_cast<std::size_t>(n) > cfg_.rx_buf_bytes) {
      ++stats_.rx_truncated;
      wire::BufferPool::local().release(std::move(buf));
      continue;
    }
    buf.resize(static_cast<std::size_t>(n));
    if (deliver(peer_for(from), std::move(buf))) ++delivered;
  }
  return delivered;
}

std::size_t UdpTransport::poll(int timeout_ms) {
  epoll_event ev;
  const int n = ::epoll_wait(epoll_fd_, &ev, 1, timeout_ms);
  if (n <= 0) return 0;
  return drain();
}

}  // namespace apna::net

// AS-level topology: which ASes peer, with what link latency, and the
// next-hop function border routers use for inter-domain forwarding
// ("Transit ASes do not perform additional operations and simply forward
// packets to the next AS on the path", §IV-D3).
#pragma once

#include <cstdint>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "net/sim.h"
#include "util/result.h"

namespace apna::net {

class Topology {
 public:
  void add_as(std::uint32_t aid) { adj_.try_emplace(aid); }

  /// Bidirectional AS-level link. one_way is the propagation latency.
  void add_link(std::uint32_t a, std::uint32_t b, TimeUs one_way) {
    add_as(a);
    add_as(b);
    adj_[a][b] = one_way;
    adj_[b][a] = one_way;
    routes_.clear();  // invalidate cache
  }

  bool linked(std::uint32_t a, std::uint32_t b) const {
    auto it = adj_.find(a);
    return it != adj_.end() && it->second.contains(b);
  }

  Result<TimeUs> link_latency(std::uint32_t a, std::uint32_t b) const {
    auto it = adj_.find(a);
    if (it == adj_.end()) return Errc::no_route;
    auto jt = it->second.find(b);
    if (jt == it->second.end()) return Errc::no_route;
    return jt->second;
  }

  /// Next hop from `from` towards `to` (min-hop BFS, cached).
  Result<std::uint32_t> next_hop(std::uint32_t from, std::uint32_t to) const {
    if (from == to) return to;
    const auto key = (std::uint64_t{from} << 32) | to;
    if (auto it = routes_.find(key); it != routes_.end()) {
      if (it->second == kNoRoute) return Errc::no_route;
      return it->second;
    }
    compute_routes_from(to);
    auto it = routes_.find(key);
    if (it == routes_.end() || it->second == kNoRoute) {
      routes_[key] = kNoRoute;
      return Errc::no_route;
    }
    return it->second;
  }

  /// Full AS path (for tests and the path-aware shutoff extension §VIII-C).
  std::vector<std::uint32_t> path(std::uint32_t from, std::uint32_t to) const {
    std::vector<std::uint32_t> p{from};
    std::uint32_t cur = from;
    while (cur != to) {
      auto nh = next_hop(cur, to);
      if (!nh) return {};
      cur = *nh;
      p.push_back(cur);
    }
    return p;
  }

  std::size_t as_count() const { return adj_.size(); }

 private:
  static constexpr std::uint32_t kNoRoute = 0xffffffff;

  // BFS rooted at `dst` fills next_hop for every source in one pass.
  void compute_routes_from(std::uint32_t dst) const {
    std::unordered_map<std::uint32_t, std::uint32_t> succ;  // node → next
    std::queue<std::uint32_t> q;
    q.push(dst);
    succ[dst] = dst;
    while (!q.empty()) {
      const std::uint32_t cur = q.front();
      q.pop();
      auto it = adj_.find(cur);
      if (it == adj_.end()) continue;
      for (const auto& [nbr, lat] : it->second) {
        if (succ.contains(nbr)) continue;
        succ[nbr] = cur;  // from nbr, go to cur to reach dst
        q.push(nbr);
      }
    }
    for (const auto& [node, next] : succ) {
      if (node == dst) continue;
      routes_[(std::uint64_t{node} << 32) | dst] = next;
    }
  }

  std::unordered_map<std::uint32_t,
                     std::unordered_map<std::uint32_t, TimeUs>>
      adj_;
  mutable std::unordered_map<std::uint64_t, std::uint32_t> routes_;
};

}  // namespace apna::net

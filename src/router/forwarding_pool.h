// ForwardingPool — the border router's M-worker data plane.
//
// Bursts are std::span<const wire::PacketView>: the caller owns the
// buffers; workers only read the wire images in place. Classification is
// allocation-free; the action phase hands each forwarded packet to the
// callbacks as one pooled copy (see BorderRouter::apply_*_verdicts).
//
// The paper sizes the forwarding experiment on a 16-core commodity server
// (§V-B3) and reaches line rate because every per-packet operation is
// symmetric crypto plus two table lookups (design choice 3). This pool is
// the software analogue of that device's RSS/receive-side scaling — and
// like RSS it steers by FLOW, not by position: under the default
// Steering::flow_hash dispatch each packet is assigned to the worker owning
// its flow EphID (core/flow_steer.h), the calling thread scatters the burst
// into per-worker RX rings, and every worker runs its ring to completion
// (classify, with its own hot FlowCache) before the forwarding actions —
// the TX side — are executed in burst order on the CALLING thread. So the
// single-threaded simulator event loop (or a real socket RX loop) can drive
// the pool without its callbacks ever running concurrently. The legacy
// Steering::chunk mode (workers dynamically claim fixed-size chunks) is
// kept for comparison: it load-balances a little better but splits one
// flow's packets across workers mid-burst, duplicating FlowCache entries —
// measured by flow_cache_stats().cross_worker_duplicates, which flow_hash
// holds at zero.
//
// Threading model (see ARCHITECTURE.md "Concurrency model"):
//  * Config::threads is the TOTAL processing parallelism: threads-1
//    background workers plus the calling thread, which processes ring 0
//    (or claims chunks) like any worker while it waits. threads == 1 means
//    no background workers at all — the pool degenerates to a plain loop
//    with no synchronization beyond one uncontended mutex.
//  * Each processing context owns a Stats slot; stats() merges the slots
//    (plus the action-phase counters) on read, taking each slot's lock, so
//    it is safe to call concurrently with processing.
//  * process_*() may not be called concurrently from two threads (one
//    in-flight burst at a time; the simulator/benchmark driver is one
//    thread by construction).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "router/border_router.h"

namespace apna::router {

class ForwardingPool {
 public:
  /// Which classify kernel runs inside the workers. The verdicts are
  /// identical for every choice; only the per-packet cost differs.
  enum class Kernel {
    /// Pick per burst: the batched kernels win when there is real
    /// parallelism and enough packets to fill the gather buffers, but on
    /// one thread with small bursts the gather/scatter overhead loses to
    /// the scalar loop (BENCH_e2: batched 0.95-0.98x scalar at 1 thread
    /// pre-fusion) — so auto selects scalar for threads == 1 or bursts
    /// below batch_min_burst.
    auto_select,
    scalar,
    batched,
  };

  /// How a burst is dispatched across the processing contexts.
  enum class Steering {
    /// One flow → one worker, by EphID hash (core/flow_steer.h): the
    /// egress key is src_ephid, the ingress key dst_ephid — the EphID
    /// whose verdict the FlowCache memoizes — so a flow's cache entry
    /// lives in exactly one worker. The default.
    flow_hash,
    /// Legacy dynamic chunk-claiming: better load balance on pathological
    /// skew, but duplicates hot flows' cache entries across workers
    /// (cross_worker_duplicates > 0). Kept for comparison and tests.
    chunk,
  };

  struct Config {
    /// Total processing threads (calling thread included). 0 → one per
    /// hardware thread.
    std::size_t threads = 0;
    /// Burst dispatch policy (see Steering). flow_hash needs threads > 1
    /// to matter; a 1-thread pool runs a plain loop either way.
    Steering steering = Steering::flow_hash;
    /// Steering::chunk only: packets per work unit; the claim granularity.
    /// Small enough to load-balance a 512-packet burst over many workers,
    /// big enough that the batched AES kernels see full gather buffers.
    std::size_t chunk_packets = 64;
    /// Kernel selection (see Kernel). Explicit Kernel::batched is how a
    /// single-threaded driver opts into the fused cached pipeline.
    Kernel kernel = Kernel::auto_select;
    /// Auto threshold: bursts smaller than this run scalar under
    /// Kernel::auto_select (covered by router_test.KernelAutoSelection).
    std::size_t batch_min_burst = 128;
    /// Per-worker verified-flow cache capacity (entries); 0 disables the
    /// caches. Each processing context owns its own core::FlowCache — no
    /// locks, no cross-thread sharing; revocations invalidate via
    /// AsState::epoch.
    std::size_t flow_cache_entries = 4096;
  };

  explicit ForwardingPool(BorderRouter& br) : ForwardingPool(br, Config()) {}
  ForwardingPool(BorderRouter& br, Config cfg);
  ~ForwardingPool();

  ForwardingPool(const ForwardingPool&) = delete;
  ForwardingPool& operator=(const ForwardingPool&) = delete;

  /// Classifies the egress burst across all processing threads, then runs
  /// the forwarding actions (send_external) on the calling thread in burst
  /// order. Blocks until the burst is fully processed.
  void process_outgoing(std::span<const wire::PacketView> burst,
                        core::ExpTime now);

  /// Ingress twin: transit + local delivery.
  void process_ingress(std::span<const wire::PacketView> burst, core::ExpTime now);

  /// Per-thread stats merged on read (classification drops from every
  /// worker slot + action-phase forward/deliver/transit counters).
  BorderRouter::Stats stats() const;

  /// Per-worker flow-cache counters merged on read (hit rate of the
  /// verified-flow caches across all processing contexts), plus the
  /// steering-quality probe: cross_worker_duplicates counts EphIDs
  /// currently cached by more than one worker (0 under flow_hash
  /// steering; chunk dispatch duplicates hot flows).
  core::FlowCache::Stats flow_cache_stats() const;

  /// Total processing threads (callers + workers).
  std::size_t threads() const { return cfg_.threads; }

  /// The auto_select decision for a burst of `burst_packets` under this
  /// pool's configuration (public so the threshold is unit-testable).
  bool batched_for(std::size_t burst_packets) const {
    switch (cfg_.kernel) {
      case Kernel::scalar: return false;
      case Kernel::batched: return true;
      case Kernel::auto_select: break;
    }
    return cfg_.threads > 1 && burst_packets >= cfg_.batch_min_burst;
  }

 private:
  void process_burst(std::span<const wire::PacketView> burst, core::ExpTime now,
                     bool ingress);
  void worker_main(std::size_t slot);
  /// Claims and classifies chunks until the current burst is exhausted
  /// (Steering::chunk). Returns once no work is left (the burst may still
  /// be in flight on other workers).
  void drain_chunks(std::size_t slot);
  /// Classifies this slot's steered RX ring run-to-completion
  /// (Steering::flow_hash): gather the ring's views, one classify pass
  /// against the slot's own FlowCache, scatter verdicts back to burst
  /// order (disjoint indices — no two slots write the same verdict).
  void run_ring(std::size_t slot);

  struct alignas(64) Slot {
    mutable std::mutex mu;
    BorderRouter::Stats stats;
    /// This processing context's verified-flow cache (null when disabled).
    /// Only ever touched by the slot's owner under the slot lock — the
    /// cache itself is single-owner by design.
    std::unique_ptr<core::FlowCache> cache;
    /// Steered RX ring: burst indices assigned to this slot. Written by
    /// the calling thread BEFORE the burst is published under mu_ (the
    /// workers are quiescent between bursts); read by the owner during
    /// run_ring. gather/scratch are the owner's reusable buffers —
    /// allocation-free once warm.
    std::vector<std::uint32_t> ring;
    std::vector<wire::PacketView> gather;
    std::vector<BorderRouter::Verdict> scratch;
    /// Last steered burst sequence this slot completed (guarded by mu_).
    std::uint64_t done_seq = 0;
  };

  BorderRouter& br_;
  Config cfg_;

  // Burst state, guarded by mu_. Workers read the burst descriptor after
  // observing next_chunk_ < chunks_total_ (chunk mode) or a burst_seq_
  // bump (steered mode) under mu_, which orders the descriptor — and ring
  // — writes before any processing.
  mutable std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  const wire::PacketView* burst_ = nullptr;
  std::size_t burst_n_ = 0;
  BorderRouter::Verdict* verdicts_ = nullptr;
  core::ExpTime now_ = 0;
  bool ingress_ = false;
  bool batched_ = true;  // this burst's kernel choice (batched_for)
  bool steered_ = false; // this burst's dispatch (flow_hash with threads>1)
  std::uint64_t burst_seq_ = 0;       // steered-burst generation
  std::size_t workers_pending_ = 0;   // steered: rings not yet completed
  std::size_t next_chunk_ = 0;
  std::size_t chunks_done_ = 0;
  std::size_t chunks_total_ = 0;
  bool stop_ = false;

  BorderRouter::Stats action_stats_;  // caller-thread action phase, under mu_
  std::unique_ptr<Slot[]> slots_;     // [0, threads): callers use slot 0
  std::vector<std::thread> workers_;  // threads - 1 background workers
  std::vector<BorderRouter::Verdict> verdict_buf_;
};

}  // namespace apna::router

#include "router/forwarding_pool.h"

#include <algorithm>
#include <unordered_map>

#include "core/flow_steer.h"

namespace apna::router {

ForwardingPool::ForwardingPool(BorderRouter& br, Config cfg)
    : br_(br), cfg_(cfg) {
  if (cfg_.threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    cfg_.threads = hw == 0 ? 1 : hw;
  }
  if (cfg_.chunk_packets == 0) cfg_.chunk_packets = 64;
  slots_ = std::make_unique<Slot[]>(cfg_.threads);
  if (cfg_.flow_cache_entries > 0)
    for (std::size_t i = 0; i < cfg_.threads; ++i)
      slots_[i].cache =
          std::make_unique<core::FlowCache>(cfg_.flow_cache_entries);
  workers_.reserve(cfg_.threads - 1);
  for (std::size_t i = 1; i < cfg_.threads; ++i)
    workers_.emplace_back([this, i] { worker_main(i); });
}

ForwardingPool::~ForwardingPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ForwardingPool::drain_chunks(std::size_t slot) {
  for (;;) {
    const wire::PacketView* burst;
    BorderRouter::Verdict* verdicts;
    core::ExpTime now;
    bool ingress, batched;
    std::size_t begin, end;
    {
      std::lock_guard lock(mu_);
      if (next_chunk_ >= chunks_total_) return;
      begin = next_chunk_++ * cfg_.chunk_packets;
      end = std::min(begin + cfg_.chunk_packets, burst_n_);
      burst = burst_;
      verdicts = verdicts_;
      now = now_;
      ingress = ingress_;
      batched = batched_;
    }
    {
      std::lock_guard slot_lock(slots_[slot].mu);
      const std::span<const wire::PacketView> chunk(burst + begin, end - begin);
      const std::span<BorderRouter::Verdict> out(verdicts + begin,
                                                 end - begin);
      core::FlowCache* cache = slots_[slot].cache.get();
      if (ingress) {
        br_.classify_ingress_burst(chunk, now, out, slots_[slot].stats,
                                   batched, cache);
      } else {
        br_.classify_outgoing_burst(chunk, now, out, slots_[slot].stats,
                                    batched, cache);
      }
    }
    {
      std::lock_guard lock(mu_);
      if (++chunks_done_ == chunks_total_) cv_done_.notify_all();
    }
  }
}

void ForwardingPool::run_ring(std::size_t slot) {
  Slot& s = slots_[slot];
  const wire::PacketView* burst;
  BorderRouter::Verdict* verdicts;
  core::ExpTime now;
  bool ingress, batched;
  {
    std::lock_guard lock(mu_);
    burst = burst_;
    verdicts = verdicts_;
    now = now_;
    ingress = ingress_;
    batched = batched_;
  }
  if (s.ring.empty()) return;
  std::lock_guard slot_lock(s.mu);
  // Gather the steered views so the (contiguous-span) classify kernels and
  // this slot's cache see one run-to-completion pass over the whole ring.
  s.gather.clear();
  for (const std::uint32_t idx : s.ring) s.gather.push_back(burst[idx]);
  s.scratch.resize(s.ring.size());
  core::FlowCache* cache = s.cache.get();
  if (ingress) {
    br_.classify_ingress_burst(s.gather, now, s.scratch, s.stats, batched,
                               cache);
  } else {
    br_.classify_outgoing_burst(s.gather, now, s.scratch, s.stats, batched,
                                cache);
  }
  // Scatter back to burst order. Rings partition the burst, so no two
  // slots ever write the same verdict index.
  for (std::size_t j = 0; j < s.ring.size(); ++j)
    verdicts[s.ring[j]] = s.scratch[j];
}

void ForwardingPool::worker_main(std::size_t slot) {
  for (;;) {
    bool steered;
    {
      std::unique_lock lock(mu_);
      cv_work_.wait(lock, [this, slot] {
        return stop_ || next_chunk_ < chunks_total_ ||
               (steered_ && slots_[slot].done_seq != burst_seq_);
      });
      if (stop_) return;
      steered = steered_ && slots_[slot].done_seq != burst_seq_;
    }
    if (steered) {
      run_ring(slot);
      std::lock_guard lock(mu_);
      slots_[slot].done_seq = burst_seq_;
      if (--workers_pending_ == 0) cv_done_.notify_all();
    } else {
      drain_chunks(slot);
    }
  }
}

void ForwardingPool::process_burst(std::span<const wire::PacketView> burst,
                                   core::ExpTime now, bool ingress) {
  if (burst.empty()) return;
  verdict_buf_.resize(burst.size());
  // A 1-thread pool runs the plain chunk loop regardless of policy — there
  // is only one cache, so steering has nothing to separate.
  const bool steered =
      cfg_.steering == Steering::flow_hash && cfg_.threads > 1;
  if (steered) {
    // Scatter the burst into per-worker RX rings by flow hash BEFORE
    // publishing the burst: the workers are quiescent between bursts, and
    // the mu_ release below orders these writes ahead of any ring read.
    for (std::size_t i = 0; i < cfg_.threads; ++i) slots_[i].ring.clear();
    for (std::size_t i = 0; i < burst.size(); ++i) {
      const ByteSpan key =
          ingress ? burst[i].dst_ephid_span() : burst[i].src_ephid_span();
      slots_[core::steer_worker(key, cfg_.threads)].ring.push_back(
          static_cast<std::uint32_t>(i));
    }
  }
  {
    std::lock_guard lock(mu_);
    burst_ = burst.data();
    burst_n_ = burst.size();
    verdicts_ = verdict_buf_.data();
    now_ = now;
    ingress_ = ingress;
    batched_ = batched_for(burst.size());
    steered_ = steered;
    next_chunk_ = 0;
    chunks_done_ = 0;
    if (steered) {
      chunks_total_ = 0;  // keep the chunk-claim predicate false
      ++burst_seq_;
      workers_pending_ = cfg_.threads - 1;
    } else {
      chunks_total_ =
          (burst.size() + cfg_.chunk_packets - 1) / cfg_.chunk_packets;
    }
  }
  cv_work_.notify_all();

  // The calling thread is processing context 0: run its own ring / claim
  // chunks like any worker instead of blocking, so threads == 1 needs no
  // handoff at all.
  if (steered) {
    run_ring(0);
    std::unique_lock lock(mu_);
    cv_done_.wait(lock, [this] { return workers_pending_ == 0; });
  } else {
    drain_chunks(0);
    std::unique_lock lock(mu_);
    cv_done_.wait(lock, [this] { return chunks_done_ == chunks_total_; });
  }
  // Action phase on the calling thread, burst order, OUTSIDE mu_: the
  // callbacks may be arbitrarily slow or call back into stats() without
  // blocking (or self-deadlocking on) the pool's lock. Counters go to a
  // local first and merge under mu_ so stats() never tears action_stats_.
  BorderRouter::Stats action;
  if (ingress) {
    br_.apply_ingress_verdicts(burst, verdict_buf_, action);
  } else {
    br_.apply_outgoing_verdicts(burst, verdict_buf_, action);
  }
  {
    std::lock_guard lock(mu_);
    action_stats_ += action;
  }
}

void ForwardingPool::process_outgoing(std::span<const wire::PacketView> burst,
                                      core::ExpTime now) {
  process_burst(burst, now, /*ingress=*/false);
}

void ForwardingPool::process_ingress(std::span<const wire::PacketView> burst,
                                     core::ExpTime now) {
  process_burst(burst, now, /*ingress=*/true);
}

BorderRouter::Stats ForwardingPool::stats() const {
  BorderRouter::Stats merged;
  {
    std::lock_guard lock(mu_);
    merged += action_stats_;
  }
  for (std::size_t i = 0; i < cfg_.threads; ++i) {
    std::lock_guard slot_lock(slots_[i].mu);
    merged += slots_[i].stats;
  }
  return merged;
}

core::FlowCache::Stats ForwardingPool::flow_cache_stats() const {
  core::FlowCache::Stats merged;
  // EphID → number of worker caches currently holding it. Each cache holds
  // an EphID at most once (same-key inserts refresh in place), so a count
  // above one means the flow's verdict was re-derived on another worker —
  // exactly what flow-hash steering exists to prevent.
  std::unordered_map<core::EphId, std::uint32_t, core::EphIdHash> owners;
  for (std::size_t i = 0; i < cfg_.threads; ++i) {
    std::lock_guard slot_lock(slots_[i].mu);
    if (!slots_[i].cache) continue;
    merged += slots_[i].cache->stats();
    slots_[i].cache->for_each_entry(
        [&owners](const core::FlowCache::Entry& e) { ++owners[e.ephid]; });
  }
  for (const auto& [ephid, workers] : owners)
    if (workers > 1) merged.cross_worker_duplicates += workers - 1;
  return merged;
}

}  // namespace apna::router

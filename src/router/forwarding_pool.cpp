#include "router/forwarding_pool.h"

#include <algorithm>

namespace apna::router {

ForwardingPool::ForwardingPool(BorderRouter& br, Config cfg)
    : br_(br), cfg_(cfg) {
  if (cfg_.threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    cfg_.threads = hw == 0 ? 1 : hw;
  }
  if (cfg_.chunk_packets == 0) cfg_.chunk_packets = 64;
  slots_ = std::make_unique<Slot[]>(cfg_.threads);
  if (cfg_.flow_cache_entries > 0)
    for (std::size_t i = 0; i < cfg_.threads; ++i)
      slots_[i].cache =
          std::make_unique<core::FlowCache>(cfg_.flow_cache_entries);
  workers_.reserve(cfg_.threads - 1);
  for (std::size_t i = 1; i < cfg_.threads; ++i)
    workers_.emplace_back([this, i] { worker_main(i); });
}

ForwardingPool::~ForwardingPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ForwardingPool::drain_chunks(std::size_t slot) {
  for (;;) {
    const wire::PacketView* burst;
    BorderRouter::Verdict* verdicts;
    core::ExpTime now;
    bool ingress, batched;
    std::size_t begin, end;
    {
      std::lock_guard lock(mu_);
      if (next_chunk_ >= chunks_total_) return;
      begin = next_chunk_++ * cfg_.chunk_packets;
      end = std::min(begin + cfg_.chunk_packets, burst_n_);
      burst = burst_;
      verdicts = verdicts_;
      now = now_;
      ingress = ingress_;
      batched = batched_;
    }
    {
      std::lock_guard slot_lock(slots_[slot].mu);
      const std::span<const wire::PacketView> chunk(burst + begin, end - begin);
      const std::span<BorderRouter::Verdict> out(verdicts + begin,
                                                 end - begin);
      core::FlowCache* cache = slots_[slot].cache.get();
      if (ingress) {
        br_.classify_ingress_burst(chunk, now, out, slots_[slot].stats,
                                   batched, cache);
      } else {
        br_.classify_outgoing_burst(chunk, now, out, slots_[slot].stats,
                                    batched, cache);
      }
    }
    {
      std::lock_guard lock(mu_);
      if (++chunks_done_ == chunks_total_) cv_done_.notify_all();
    }
  }
}

void ForwardingPool::worker_main(std::size_t slot) {
  for (;;) {
    {
      std::unique_lock lock(mu_);
      cv_work_.wait(lock,
                    [this] { return stop_ || next_chunk_ < chunks_total_; });
      if (stop_) return;
    }
    drain_chunks(slot);
  }
}

void ForwardingPool::process_burst(std::span<const wire::PacketView> burst,
                                   core::ExpTime now, bool ingress) {
  if (burst.empty()) return;
  verdict_buf_.resize(burst.size());
  {
    std::lock_guard lock(mu_);
    burst_ = burst.data();
    burst_n_ = burst.size();
    verdicts_ = verdict_buf_.data();
    now_ = now;
    ingress_ = ingress;
    batched_ = batched_for(burst.size());
    next_chunk_ = 0;
    chunks_done_ = 0;
    chunks_total_ =
        (burst.size() + cfg_.chunk_packets - 1) / cfg_.chunk_packets;
  }
  cv_work_.notify_all();

  // The calling thread is processing context 0: claim chunks like any
  // worker instead of blocking, so threads == 1 needs no handoff at all.
  drain_chunks(0);
  {
    std::unique_lock lock(mu_);
    cv_done_.wait(lock, [this] { return chunks_done_ == chunks_total_; });
  }
  // Action phase on the calling thread, burst order, OUTSIDE mu_: the
  // callbacks may be arbitrarily slow or call back into stats() without
  // blocking (or self-deadlocking on) the pool's lock. Counters go to a
  // local first and merge under mu_ so stats() never tears action_stats_.
  BorderRouter::Stats action;
  if (ingress) {
    br_.apply_ingress_verdicts(burst, verdict_buf_, action);
  } else {
    br_.apply_outgoing_verdicts(burst, verdict_buf_, action);
  }
  {
    std::lock_guard lock(mu_);
    action_stats_ += action;
  }
}

void ForwardingPool::process_outgoing(std::span<const wire::PacketView> burst,
                                      core::ExpTime now) {
  process_burst(burst, now, /*ingress=*/false);
}

void ForwardingPool::process_ingress(std::span<const wire::PacketView> burst,
                                     core::ExpTime now) {
  process_burst(burst, now, /*ingress=*/true);
}

BorderRouter::Stats ForwardingPool::stats() const {
  BorderRouter::Stats merged;
  {
    std::lock_guard lock(mu_);
    merged += action_stats_;
  }
  for (std::size_t i = 0; i < cfg_.threads; ++i) {
    std::lock_guard slot_lock(slots_[i].mu);
    merged += slots_[i].stats;
  }
  return merged;
}

core::FlowCache::Stats ForwardingPool::flow_cache_stats() const {
  core::FlowCache::Stats merged;
  for (std::size_t i = 0; i < cfg_.threads; ++i) {
    std::lock_guard slot_lock(slots_[i].mu);
    if (slots_[i].cache) merged += slots_[i].cache->stats();
  }
  return merged;
}

}  // namespace apna::router

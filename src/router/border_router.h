// Border router — the data-plane forwarding pipelines of Fig 4 (§IV-D3,
// §V-B).
//
// Outgoing (leaving the source AS):
//   (HID_S, exp) = E^-1_kA(EphID_s)   — 1 symmetric decryption
//   exp ≥ now, EphID_s ∉ revoked_ids  — lookup 1
//   HID_S ∈ host_info                 — lookup 2
//   verifyMAC(k_HA, packet)           — 1 MAC verification
// Incoming (at the destination AS):
//   same checks on EphID_d, then intra-domain forwarding by HID.
// Transit: forward by AID only, no crypto (design choice 3 — "forwarding
// devices perform only symmetric cryptographic operations").
//
// Zero-copy contract: the router trafficks in wire::PacketView (checks) and
// wire::PacketBuf (ownership transfer). Every check reads the wire image in
// place; a forwarded packet is the SAME buffer that arrived — moved through
// send_external / deliver_internal, never copied, never re-serialized. In
// steady state the fast path performs zero heap allocations per forwarded
// packet (pinned by tests/alloc_count_test and bench_e2). The only copies
// left are the explicit ones: append_path_stamp (when Config::stamp_path is
// on) splices a pooled buffer, and apply_*_verdicts makes one pooled
// copy_of per forwarded view because the caller retains burst ownership.
// PacketView::to_owned() does not appear on the forwarding path at all.
//
// Two data paths share the same checks:
//
//  * The single-threaded simulator path: on_outgoing()/on_ingress() take
//    ownership of one packet, run the checks, the forwarding actions AND
//    the control-plane niceties (ICMP feedback, path stamping) on the
//    event-loop thread. check_outgoing()/check_incoming() are its
//    side-effect-free cores, benchmarked by E2.
//
//  * The concurrent fast path: classify_*_burst() runs the same checks over
//    a std::span<const wire::PacketView> burst from ANY number of worker
//    threads — all AS state it touches is lock-striped (core/sharded.h) or
//    immutable, and outcome counters go to a caller-owned Stats (one per
//    worker, merged on read). Verdicts are then turned into forwarding
//    actions by apply_*_verdicts() on a single thread (the callbacks —
//    simulator event loop — are not thread-safe). With `batched` set, EphID
//    authentication and MAC verification run through the batched kernels
//    (EphIdCodec::open_batch, verify_packet_macs); verdicts are identical
//    to the scalar path either way. The concurrent path does not emit ICMP
//    feedback (a real line-rate device punts error signalling off the fast
//    path the same way).
//
// router/forwarding_pool.h packages the classify/apply split into an
// M-worker pool; Mode::baseline implements a plain IPv4-style router (AID
// longest-match stand-in) for E11.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <span>

#include "core/as_state.h"
#include "core/flow_cache.h"
#include "core/messages.h"
#include "core/packet_auth.h"
#include "core/replay.h"
#include "util/result.h"
#include "wire/apna_header.h"
#include "wire/packet_buf.h"

namespace apna::router {

/// The BR's own sending identity, used for ICMP feedback (§VIII-B: "An
/// entity (e.g., router or host) ... uses one of its EphIDs as the source").
struct RouterIdentity {
  core::EphId ephid;
  core::Aid aid = 0;
  std::array<std::uint8_t, 16> mac_key{};  // kHA-mac of the router
};

class BorderRouter {
 public:
  enum class Mode { apna, baseline };

  struct Callbacks {
    /// Transmit towards the packet's dst_aid over the inter-AS fabric
    /// (next hop is resolved by the AS fabric / topology). Consumes the
    /// buffer — the callee owns it from here (zero-copy handoff).
    std::function<Result<void>(wire::PacketBuf)> send_external;
    /// Deliver to a local host by HID (intra-domain forwarding). Consumes
    /// the buffer.
    std::function<Result<void>(core::Hid, wire::PacketBuf)> deliver_internal;
    /// Current wall-clock seconds (the simulation clock).
    std::function<core::ExpTime()> now;
  };

  struct Stats {
    std::uint64_t forwarded_out = 0;    // egress, passed all checks
    std::uint64_t delivered_in = 0;     // ingress, delivered to a local host
    std::uint64_t transited = 0;        // not ours: forwarded to next AS
    std::uint64_t icmp_sent = 0;
    // Drop reasons (Fig 4's four abort arms + parse/MTU).
    std::uint64_t drop_expired = 0;
    std::uint64_t drop_revoked = 0;
    std::uint64_t drop_unknown_host = 0;
    std::uint64_t drop_bad_mac = 0;
    std::uint64_t drop_bad_ephid = 0;   // EphID fails authenticated decryption
    std::uint64_t drop_no_route = 0;
    std::uint64_t drop_too_big = 0;
    std::uint64_t drop_replayed = 0;  // §VIII-D in-network filter

    std::uint64_t total_drops() const {
      return drop_expired + drop_revoked + drop_unknown_host + drop_bad_mac +
             drop_bad_ephid + drop_no_route + drop_too_big + drop_replayed;
    }

    /// Accumulates another counter set (per-worker stats merged on read).
    Stats& operator+=(const Stats& o) {
      forwarded_out += o.forwarded_out;
      delivered_in += o.delivered_in;
      transited += o.transited;
      icmp_sent += o.icmp_sent;
      drop_expired += o.drop_expired;
      drop_revoked += o.drop_revoked;
      drop_unknown_host += o.drop_unknown_host;
      drop_bad_mac += o.drop_bad_mac;
      drop_bad_ephid += o.drop_bad_ephid;
      drop_no_route += o.drop_no_route;
      drop_too_big += o.drop_too_big;
      drop_replayed += o.drop_replayed;
      return *this;
    }

    /// Subtracts an earlier snapshot of the same monotone counters — the
    /// scenario engine reports per-phase deltas of a long-lived pool.
    Stats& operator-=(const Stats& o) {
      forwarded_out -= o.forwarded_out;
      delivered_in -= o.delivered_in;
      transited -= o.transited;
      icmp_sent -= o.icmp_sent;
      drop_expired -= o.drop_expired;
      drop_revoked -= o.drop_revoked;
      drop_unknown_host -= o.drop_unknown_host;
      drop_bad_mac -= o.drop_bad_mac;
      drop_bad_ephid -= o.drop_bad_ephid;
      drop_no_route -= o.drop_no_route;
      drop_too_big -= o.drop_too_big;
      drop_replayed -= o.drop_replayed;
      return *this;
    }
  };

  struct Config {
    Mode mode = Mode::apna;
    std::size_t mtu = 1518;          // link MTU for PMTUD (§II-C)
    bool send_icmp_errors = true;    // unreachable / packet-too-big feedback
    /// §VIII-C extension: append this AS's AID to forwarded packets so
    /// on-path ASes can be authorized for shutoff requests.
    bool stamp_path = false;
    /// §VIII-D future-work extension: in-network replay detection at the
    /// source AS's egress ("ideally replayed packets should be filtered
    /// near [the] replay location").
    bool replay_filter = false;
    /// Stripe count for the per-source replay-window table.
    std::size_t replay_shards = core::kDefaultShardCount;
  };

  BorderRouter(core::AsState& as, Callbacks cb, Config cfg)
      : as_(as),
        cb_(std::move(cb)),
        cfg_(cfg),
        replay_filter_(core::ShardedReplayFilter::Config{
            cfg.replay_shards, 1024,
            core::ReplayWindow::StartPolicy::grace}) {}
  BorderRouter(core::AsState& as, Callbacks cb)
      : BorderRouter(as, std::move(cb), Config()) {}

  void set_identity(RouterIdentity ident) { ident_ = ident; }

  // ---- Pure pipelines (benchmarked) ----------------------------------------

  /// Fig 4 bottom. Returns ok when the packet may leave the AS.
  /// Thread-safe: touches only immutable keys and lock-striped tables.
  Result<void> check_outgoing(const wire::PacketView& pkt,
                              core::ExpTime now) const;

  /// Fig 4 top, local-destination branch. Returns the destination HID.
  /// Thread-safe, like check_outgoing.
  Result<core::Hid> check_incoming(const wire::PacketView& pkt,
                                   core::ExpTime now) const;

  /// Baseline (plain-IP-style) pipeline: header sanity only.
  Result<void> check_baseline(const wire::PacketView& pkt) const;

  // ---- Concurrent fast path (classify on M threads, apply on one) ----------

  /// One packet's outcome on the concurrent fast path.
  struct Verdict {
    Errc err = Errc::ok;  // ok ⇒ forward / deliver / transit
    bool local = false;   // ingress only: deliver to `hid` vs transit
    core::Hid hid = 0;    // ingress only: destination host when local
  };

  /// Runs the egress pipeline (MTU + Fig 4 checks + §VIII-D replay filter
  /// when configured) over a burst of views. Drop reasons are counted into
  /// the caller-owned `stats` (passes are counted by
  /// apply_outgoing_verdicts or by the caller). Safe to call from many
  /// threads concurrently; `batched` selects the fused batch pipeline
  /// (identical verdicts either way). Allocation-free.
  ///
  /// `cache` (optional, caller-owned, NOT thread-safe — one per worker
  /// thread) memoizes verified EphID verdicts: a generation-valid hit
  /// skips the EphID decrypt+auth and both striped lookups, but NEVER the
  /// per-packet MAC (§IV-D2). With `batched` the burst runs as one fused
  /// pass per chunk: probe cache → gather misses → one widened AES sweep
  /// over misses only → striped checks for misses → batched packet-CMAC
  /// for hits and verified misses together → insert fresh verdicts (after
  /// the MAC batch, so an eviction can never invalidate a borrowed key
  /// schedule mid-chunk). Verdicts are bit-identical with and without the
  /// cache, including bursts that straddle a revocation: every revocation
  /// bumps AsState::epoch, so stale entries miss and re-verify against the
  /// striped tables (pinned by flow_cache_test / router_concurrency_test).
  void classify_outgoing_burst(std::span<const wire::PacketView> burst,
                               core::ExpTime now, std::span<Verdict> verdicts,
                               Stats& stats, bool batched = true,
                               core::FlowCache* cache = nullptr) const;

  /// Ingress twin: transit detection + Fig 4 top checks for local packets.
  /// Cache hits skip all crypto (ingress has no per-packet MAC check — the
  /// MAC is verified at the source AS).
  void classify_ingress_burst(std::span<const wire::PacketView> burst,
                              core::ExpTime now, std::span<Verdict> verdicts,
                              Stats& stats, bool batched = true,
                              core::FlowCache* cache = nullptr) const;

  /// Executes the forwarding actions for a classified egress burst on the
  /// CALLING thread (the callbacks are single-threaded): send_external for
  /// every passing packet (path-stamped when configured). The burst views
  /// stay caller-owned, so each forwarded packet is handed off as one
  /// pooled copy_of (no heap allocation in steady state; no copy at all
  /// when no send callback is installed). Successes count into
  /// `stats.forwarded_out`, send failures into `stats.drop_no_route`.
  void apply_outgoing_verdicts(std::span<const wire::PacketView> burst,
                               std::span<const Verdict> verdicts,
                               Stats& stats);

  /// Ingress twin: deliver_internal for local verdicts, send_external for
  /// transits.
  void apply_ingress_verdicts(std::span<const wire::PacketView> burst,
                              std::span<const Verdict> verdicts,
                              Stats& stats);

  // ---- Forwarding entry points (single-threaded simulator path) ------------

  /// Packet from a local host headed out of the AS. Takes ownership: a
  /// passing packet's buffer is moved, unmodified, to send_external.
  void on_outgoing(wire::PacketBuf pkt);

  /// Packet arriving from a neighbor AS (or looped back for local
  /// delivery): destination AS check, then deliver or transit — again
  /// moving the same buffer.
  void on_ingress(wire::PacketBuf pkt);

  const Stats& stats() const { return stats_; }
  core::Aid aid() const { return as_.aid; }
  const Config& config() const { return cfg_; }

 private:
  /// What ICMP feedback needs from an offending packet, snapshotted before
  /// the buffer's ownership moves (views must not outlive their buffer).
  struct IcmpQuote {
    core::Aid src_aid = 0;
    wire::EphIdBytes src_ephid{};
    wire::NextProto proto = wire::NextProto::data;
    std::array<std::uint8_t, wire::kApnaHeaderSize> header{};
    std::size_t header_len = 0;
  };
  IcmpQuote make_quote(const wire::PacketView& pkt) const;
  /// True when this router can emit ICMP at all — gates the one pre-move
  /// quote snapshot so the common path never pays it needlessly.
  bool icmp_armed() const {
    return cfg_.send_icmp_errors && !ident_.ephid.is_zero();
  }

  static void count_drop(Stats& stats, Errc code);
  void count_drop(Errc code) { count_drop(stats_, code); }
  /// The one egress action both data paths share: optional §VIII-C path
  /// stamp, send_external, and drop accounting on failure. Consumes the
  /// buffer. Returns true when the packet went out (the caller counts the
  /// success); a missing callback counts as sent (checks-only drivers).
  /// Keeping this single keeps the simulator and concurrent paths'
  /// counters in lockstep.
  bool send_external_stamped(wire::PacketBuf pkt, Stats& stats);
  /// Burst-shape egress: pooled copy_of + send_external_stamped. No copy
  /// (and unconditional success) when no send callback is installed.
  bool forward_view(const wire::PacketView& pkt, Stats& stats);
  void maybe_icmp_error(const IcmpQuote& offending, core::IcmpType type,
                        std::uint32_t code);
  /// Pre-move convenience: quotes straight from the still-live view.
  void maybe_icmp_error(const wire::PacketView& offending,
                        core::IcmpType type, std::uint32_t code) {
    if (!icmp_armed()) return;
    maybe_icmp_error(make_quote(offending), type, code);
  }
  /// Shared tail of both classify paths: replay filter + drop accounting.
  void finish_outgoing_classify(std::span<const wire::PacketView> burst,
                                std::span<Verdict> verdicts,
                                Stats& stats) const;
  /// MTU + Fig 4 checks for one egress packet (the scalar classify kernel;
  /// replay filtering and accounting happen in finish_outgoing_classify).
  /// With a cache, hits skip straight to the per-packet MAC and verified
  /// misses are inserted under `gen`.
  Errc outgoing_checks(const wire::PacketView& pkt, core::ExpTime now,
                       core::FlowCache* cache, std::uint64_t gen) const;
  /// Scalar ingress kernel for one locally-destined packet (cache-aware
  /// twin of check_incoming; fills v.hid on success).
  void ingress_checks(const wire::PacketView& pkt, core::ExpTime now,
                      core::FlowCache* cache, std::uint64_t gen,
                      Verdict& v) const;

  core::AsState& as_;
  Callbacks cb_;
  Config cfg_;
  RouterIdentity ident_;
  Stats stats_;
  /// Per-source-EphID replay windows (only consulted with replay_filter).
  /// Lock-striped and internally synchronized, hence usable — and mutated —
  /// from the const classify path on many threads.
  mutable core::ShardedReplayFilter replay_filter_;
};

}  // namespace apna::router

// Border router — the data-plane forwarding pipelines of Fig 4 (§IV-D3,
// §V-B).
//
// Outgoing (leaving the source AS):
//   (HID_S, exp) = E^-1_kA(EphID_s)   — 1 symmetric decryption
//   exp ≥ now, EphID_s ∉ revoked_ids  — lookup 1
//   HID_S ∈ host_info                 — lookup 2
//   verifyMAC(k_HA, packet)           — 1 MAC verification
// Incoming (at the destination AS):
//   same checks on EphID_d, then intra-domain forwarding by HID.
// Transit: forward by AID only, no crypto (design choice 3 — "forwarding
// devices perform only symmetric cryptographic operations").
//
// check_outgoing()/check_incoming() are side-effect-free so bench E2 can
// measure exactly the per-packet pipeline cost; on_outgoing()/on_ingress()
// add the forwarding actions for the simulator. Mode::baseline implements
// a plain IPv4-style router (AID longest-match stand-in) for E11.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>

#include "core/as_state.h"
#include "core/messages.h"
#include "core/packet_auth.h"
#include "core/replay.h"
#include "util/result.h"
#include "wire/apna_header.h"

namespace apna::router {

/// The BR's own sending identity, used for ICMP feedback (§VIII-B: "An
/// entity (e.g., router or host) ... uses one of its EphIDs as the source").
struct RouterIdentity {
  core::EphId ephid;
  core::Aid aid = 0;
  std::array<std::uint8_t, 16> mac_key{};  // kHA-mac of the router
};

class BorderRouter {
 public:
  enum class Mode { apna, baseline };

  struct Callbacks {
    /// Transmit towards dst_aid over the inter-AS fabric (next hop is
    /// resolved by the AS fabric / topology).
    std::function<Result<void>(const wire::Packet&)> send_external;
    /// Deliver to a local host by HID (intra-domain forwarding).
    std::function<Result<void>(core::Hid, const wire::Packet&)>
        deliver_internal;
    /// Current wall-clock seconds (the simulation clock).
    std::function<core::ExpTime()> now;
  };

  struct Stats {
    std::uint64_t forwarded_out = 0;    // egress, passed all checks
    std::uint64_t delivered_in = 0;     // ingress, delivered to a local host
    std::uint64_t transited = 0;        // not ours: forwarded to next AS
    std::uint64_t icmp_sent = 0;
    // Drop reasons (Fig 4's four abort arms + parse/MTU).
    std::uint64_t drop_expired = 0;
    std::uint64_t drop_revoked = 0;
    std::uint64_t drop_unknown_host = 0;
    std::uint64_t drop_bad_mac = 0;
    std::uint64_t drop_bad_ephid = 0;   // EphID fails authenticated decryption
    std::uint64_t drop_no_route = 0;
    std::uint64_t drop_too_big = 0;
    std::uint64_t drop_replayed = 0;  // §VIII-D in-network filter

    std::uint64_t total_drops() const {
      return drop_expired + drop_revoked + drop_unknown_host + drop_bad_mac +
             drop_bad_ephid + drop_no_route + drop_too_big + drop_replayed;
    }
  };

  struct Config {
    Mode mode = Mode::apna;
    std::size_t mtu = 1518;          // link MTU for PMTUD (§II-C)
    bool send_icmp_errors = true;    // unreachable / packet-too-big feedback
    /// §VIII-C extension: append this AS's AID to forwarded packets so
    /// on-path ASes can be authorized for shutoff requests.
    bool stamp_path = false;
    /// §VIII-D future-work extension: in-network replay detection at the
    /// source AS's egress ("ideally replayed packets should be filtered
    /// near [the] replay location").
    bool replay_filter = false;
  };

  BorderRouter(core::AsState& as, Callbacks cb, Config cfg)
      : as_(as), cb_(std::move(cb)), cfg_(cfg) {}
  BorderRouter(core::AsState& as, Callbacks cb)
      : BorderRouter(as, std::move(cb), Config()) {}

  void set_identity(RouterIdentity ident) { ident_ = ident; }

  // ---- Pure pipelines (benchmarked) ----------------------------------------

  /// Fig 4 bottom. Returns ok when the packet may leave the AS.
  Result<void> check_outgoing(const wire::Packet& pkt,
                              core::ExpTime now) const;

  /// Fig 4 top, local-destination branch. Returns the destination HID.
  Result<core::Hid> check_incoming(const wire::Packet& pkt,
                                   core::ExpTime now) const;

  /// Baseline (plain-IP-style) pipeline: header sanity only.
  Result<void> check_baseline(const wire::Packet& pkt) const;

  // ---- Forwarding entry points ----------------------------------------------

  /// Packet from a local host headed out of the AS.
  void on_outgoing(const wire::Packet& pkt);

  /// Packet arriving from a neighbor AS (or looped back for local
  /// delivery): destination AS check, then deliver or transit.
  void on_ingress(const wire::Packet& pkt);

  const Stats& stats() const { return stats_; }
  core::Aid aid() const { return as_.aid; }

 private:
  void count_drop(Errc code);
  void maybe_icmp_error(const wire::Packet& offending, core::IcmpType type,
                        std::uint32_t code);

  core::AsState& as_;
  Callbacks cb_;
  Config cfg_;
  RouterIdentity ident_;
  Stats stats_;
  /// Per-source-EphID replay windows (only populated with replay_filter).
  std::unordered_map<core::EphId, core::ReplayWindow, core::EphIdHash>
      replay_windows_;
};

}  // namespace apna::router

#include "router/border_router.h"

#include <algorithm>
#include <optional>

namespace apna::router {

Result<void> BorderRouter::check_outgoing(const wire::PacketView& pkt,
                                          core::ExpTime now) const {
  if (cfg_.mode == Mode::baseline) return check_baseline(pkt);

  core::EphId src;
  src.bytes = pkt.src_ephid();

  // (HID_S, expTime) = E^-1_kA(EphID_s)
  auto plain = as_.codec.open(src);
  if (!plain) return Result<void>(Errc::decrypt_failed, "source EphID invalid");
  // if expTime < currTime drop
  if (plain->exp_time < now) return Result<void>(Errc::expired, "src EphID");
  // if EphID_s ∈ revoked_EphIDs drop
  if (as_.revoked.is_revoked(src))
    return Result<void>(Errc::revoked, "src EphID revoked");
  if (as_.revoked.is_hid_revoked(plain->hid))
    return Result<void>(Errc::revoked, "src HID revoked");
  // if HID_S ∉ host_info drop
  const auto host = as_.host_db.find(plain->hid);
  if (!host) return Result<void>(Errc::unknown_host, "src HID unknown");
  // if !verifyMAC(k_HSAS, packet) drop — in place over the wire image.
  if (!core::verify_packet_mac(*host->cmac, pkt))
    return Result<void>(Errc::bad_mac, "packet MAC invalid");
  return Result<void>::success();
}

Result<core::Hid> BorderRouter::check_incoming(const wire::PacketView& pkt,
                                               core::ExpTime now) const {
  if (cfg_.mode == Mode::baseline) {
    // Baseline delivers by the low 32 bits of the destination identifier.
    return core::Hid{load_be32(pkt.dst_ephid_span().data())};
  }

  core::EphId dst;
  dst.bytes = pkt.dst_ephid();

  auto plain = as_.codec.open(dst);
  if (!plain)
    return Result<core::Hid>(Errc::decrypt_failed, "dst EphID invalid");
  if (plain->exp_time < now)
    return Result<core::Hid>(Errc::expired, "dst EphID");
  if (as_.revoked.is_revoked(dst))
    return Result<core::Hid>(Errc::revoked, "dst EphID revoked");
  if (as_.revoked.is_hid_revoked(plain->hid))
    return Result<core::Hid>(Errc::revoked, "dst HID revoked");
  if (!as_.host_db.contains(plain->hid))
    return Result<core::Hid>(Errc::unknown_host, "dst HID unknown");
  return plain->hid;
}

Result<void> BorderRouter::check_baseline(const wire::PacketView& pkt) const {
  // A plain router validates nothing cryptographic; reject only nonsense.
  if (pkt.dst_aid() == 0)
    return Result<void>(Errc::malformed, "zero destination AID");
  return Result<void>::success();
}

// ---- Concurrent fast path ---------------------------------------------------

namespace {
/// Portable prefetch shim for the pipeline look-aheads.
inline void prefetch_ro(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p);
#else
  (void)p;
#endif
}
/// How many packets ahead the fused pipeline warms lines (cache buckets,
/// EphID bytes, stripe heads, MAC offsets).
constexpr std::size_t kPrefetchAhead = 4;
}  // namespace

Errc BorderRouter::outgoing_checks(const wire::PacketView& pkt,
                                   core::ExpTime now, core::FlowCache* cache,
                                   std::uint64_t gen) const {
  if (pkt.wire_size() > cfg_.mtu) return Errc::too_big;
  if (cfg_.mode == Mode::baseline || cache == nullptr)
    return check_outgoing(pkt, now).code();

  core::EphId src;
  src.bytes = pkt.src_ephid();
  if (const core::FlowCache::Entry* e = cache->find(src, gen)) {
    // Memoized EphID verdict: only the clock edge and the per-packet MAC
    // (never cached, §IV-D2) remain.
    if (e->exp_time < now) return Errc::expired;
    return core::verify_packet_mac(*e->cmac, pkt) ? Errc::ok : Errc::bad_mac;
  }
  // Miss: the uncached Fig 4 sequence, with the ingredients kept for
  // insertion. Check ORDER is identical to check_outgoing.
  auto plain = as_.codec.open(src);
  if (!plain) return Errc::decrypt_failed;
  if (plain->exp_time < now) return Errc::expired;
  if (as_.revoked.is_revoked(src) || as_.revoked.is_hid_revoked(plain->hid))
    return Errc::revoked;
  const auto host = as_.host_db.find(plain->hid);
  if (!host) return Errc::unknown_host;
  // The EphID-level verdict is cacheable whatever this packet's MAC says:
  // the MAC is per-packet and re-verified on every hit.
  cache->insert(src, plain->hid, plain->exp_time, gen, host->cmac);
  return core::verify_packet_mac(*host->cmac, pkt) ? Errc::ok : Errc::bad_mac;
}

void BorderRouter::finish_outgoing_classify(
    std::span<const wire::PacketView> burst, std::span<Verdict> verdicts,
    Stats& stats) const {
  for (std::size_t i = 0; i < burst.size(); ++i) {
    Verdict& v = verdicts[i];
    if (v.err == Errc::ok && cfg_.replay_filter && burst[i].has_nonce()) {
      core::EphId src;
      src.bytes = burst[i].src_ephid();
      if (!replay_filter_.accept(src, burst[i].nonce())) v.err = Errc::replayed;
    }
    if (v.err != Errc::ok) count_drop(stats, v.err);
  }
}

void BorderRouter::classify_outgoing_burst(
    std::span<const wire::PacketView> burst, core::ExpTime now,
    std::span<Verdict> verdicts, Stats& stats, bool batched,
    core::FlowCache* cache) const {
  // One generation per burst: entries verified mid-burst are stamped with
  // the generation observed HERE, so a revocation racing the burst leaves
  // them conservatively stale (same visibility contract as the striped
  // tables — in-flight packets may see either side of a concurrent
  // revocation; every packet of the NEXT burst sees it).
  const std::uint64_t gen = cache ? as_.epoch.current() : 0;

  if (cfg_.mode == Mode::baseline || !batched) {
    for (std::size_t i = 0; i < burst.size(); ++i)
      verdicts[i] = Verdict{outgoing_checks(burst[i], now, cache, gen), false,
                            0};
    finish_outgoing_classify(burst, verdicts, stats);
    return;
  }

  // Fused batch pipeline, one pass per chunk: probe the flow cache, gather
  // the misses, run ONE widened AES sweep over the misses only, striped
  // checks for the misses, then a single batched packet-CMAC stage that
  // covers hits and verified misses together (hits skip EphID crypto and
  // the table stripes but never the per-packet MAC). Chunking keeps every
  // gather buffer on the stack; check ORDER stays identical to
  // check_outgoing so both paths produce the same error codes.
  constexpr std::size_t kChunk = 32;
  const core::FlowCache::Entry* hits[kChunk];
  const std::uint8_t* miss_eph[kChunk];  // gather list into the wire images
  std::size_t miss_at[kChunk];
  core::EphIdPlain plain[kChunk];
  std::uint8_t id_ok[kChunk];
  // HostRecord copies keep the pre-scheduled cmac shared_ptr alive while
  // the verify jobs borrow raw pointers to it.
  std::optional<core::HostRecord> recs[kChunk];
  core::PacketMacJob jobs[kChunk];
  std::size_t job_at[kChunk];
  std::uint8_t mac_ok[kChunk];
  std::size_t fresh[kChunk];  // miss indices whose EphID fully verified

  for (std::size_t base = 0; base < burst.size(); base += kChunk) {
    const std::size_t m = std::min(kChunk, burst.size() - base);

    // Stage 1 — probe. Warm the next packets' EphID bytes and cache
    // buckets a few slots ahead of use.
    std::size_t nmiss = 0;
    for (std::size_t i = 0; i < m; ++i) {
      if (i + kPrefetchAhead < m) {
        const wire::PacketView& ahead = burst[base + i + kPrefetchAhead];
        prefetch_ro(ahead.bytes().data() + wire::kOffSrcEphid);
      }
      const wire::PacketView& pkt = burst[base + i];
      Verdict& v = verdicts[base + i];
      v = Verdict{};
      hits[i] = nullptr;
      if (pkt.wire_size() > cfg_.mtu) {
        v.err = Errc::too_big;
        continue;
      }
      if (cache) {
        core::EphId src;
        src.bytes = pkt.src_ephid();
        if (const core::FlowCache::Entry* e = cache->find(src, gen)) {
          if (e->exp_time < now) {
            v.err = Errc::expired;
          } else {
            hits[i] = e;  // MAC still pending (stage 4)
          }
          continue;
        }
      }
      miss_eph[nmiss] = pkt.bytes().data() + wire::kOffSrcEphid;
      miss_at[nmiss++] = i;
    }

    // Stage 2 — one widened AES sweep over the misses only, gathered
    // straight from the wire images.
    as_.codec.open_batch_gather(miss_eph, nmiss, plain, id_ok);

    // Stage 3 — striped lookups for the misses, stripe heads prefetched
    // ahead of use.
    std::size_t nfresh = 0;
    for (std::size_t j = 0; j < nmiss; ++j) {
      if (j + kPrefetchAhead < nmiss) {
        core::EphId ahead;
        ahead.bytes = burst[base + miss_at[j + kPrefetchAhead]].src_ephid();
        as_.revoked.prefetch(ahead);
        if (id_ok[j + kPrefetchAhead])
          as_.host_db.prefetch(plain[j + kPrefetchAhead].hid);
      }
      const std::size_t i = miss_at[j];
      Verdict& v = verdicts[base + i];
      recs[j].reset();
      core::EphId src;
      src.bytes = burst[base + i].src_ephid();
      if (!id_ok[j]) {
        v.err = Errc::decrypt_failed;
      } else if (plain[j].exp_time < now) {
        v.err = Errc::expired;
      } else if (as_.revoked.is_revoked(src) ||
                 as_.revoked.is_hid_revoked(plain[j].hid)) {
        v.err = Errc::revoked;
      } else if (!(recs[j] = as_.host_db.find(plain[j].hid))) {
        v.err = Errc::unknown_host;
      } else {
        fresh[nfresh++] = j;
      }
    }

    // Stage 4 — one batched packet-CMAC stage for everything still alive:
    // cache hits borrow the entry's key schedule, fresh misses the copied
    // HostRecord's. MAC offsets are prefetched while the job list builds.
    std::size_t njobs = 0;
    for (std::size_t j = 0; j < nfresh; ++j) {
      const std::size_t i = miss_at[fresh[j]];
      const wire::PacketView& pkt = burst[base + i];
      prefetch_ro(pkt.bytes().data() + wire::kOffMac);
      jobs[njobs] = core::PacketMacJob{&pkt, recs[fresh[j]]->cmac.get()};
      job_at[njobs++] = base + i;
    }
    for (std::size_t i = 0; i < m; ++i) {
      if (hits[i] == nullptr) continue;
      const wire::PacketView& pkt = burst[base + i];
      prefetch_ro(pkt.bytes().data() + wire::kOffMac);
      jobs[njobs] = core::PacketMacJob{&pkt, hits[i]->cmac.get()};
      job_at[njobs++] = base + i;
    }
    core::verify_packet_macs(std::span<const core::PacketMacJob>(jobs, njobs),
                             std::span<std::uint8_t>(mac_ok, njobs));
    for (std::size_t j = 0; j < njobs; ++j)
      if (!mac_ok[j]) verdicts[job_at[j]].err = Errc::bad_mac;

    // Stage 5 — insert the fresh EphID verdicts AFTER the MAC batch ran,
    // so an insertion's eviction can never free a key schedule a pending
    // job still borrows. Inserted whatever the packet's own MAC said: the
    // EphID-level verdict is independent of the per-packet MAC.
    if (cache) {
      for (std::size_t j = 0; j < nfresh; ++j) {
        const std::size_t mj = fresh[j];
        core::EphId src;
        src.bytes = burst[base + miss_at[mj]].src_ephid();
        cache->insert(src, plain[mj].hid, plain[mj].exp_time, gen,
                      recs[mj]->cmac);
      }
    }
  }
  finish_outgoing_classify(burst, verdicts, stats);
}

void BorderRouter::ingress_checks(const wire::PacketView& pkt,
                                  core::ExpTime now, core::FlowCache* cache,
                                  std::uint64_t gen, Verdict& v) const {
  core::EphId dst;
  dst.bytes = pkt.dst_ephid();
  if (cache) {
    if (const core::FlowCache::Entry* e = cache->find(dst, gen)) {
      // Ingress hits skip ALL crypto — there is no per-packet MAC check at
      // the destination AS (Fig 4 top).
      if (e->exp_time < now) {
        v.err = Errc::expired;
      } else {
        v.hid = e->hid;
      }
      return;
    }
  }
  auto plain = as_.codec.open(dst);
  if (!plain) {
    v.err = Errc::decrypt_failed;
    return;
  }
  if (plain->exp_time < now) {
    v.err = Errc::expired;
    return;
  }
  if (as_.revoked.is_revoked(dst) || as_.revoked.is_hid_revoked(plain->hid)) {
    v.err = Errc::revoked;
    return;
  }
  // find (not contains): the copied record's cmac makes the entry usable
  // for EGRESS hits of the same EphID too — one cache serves both
  // directions.
  const auto host = as_.host_db.find(plain->hid);
  if (!host) {
    v.err = Errc::unknown_host;
    return;
  }
  v.hid = plain->hid;
  if (cache)
    cache->insert(dst, plain->hid, plain->exp_time, gen, host->cmac);
}

void BorderRouter::classify_ingress_burst(
    std::span<const wire::PacketView> burst, core::ExpTime now,
    std::span<Verdict> verdicts, Stats& stats, bool batched,
    core::FlowCache* cache) const {
  const std::uint64_t gen = cache ? as_.epoch.current() : 0;

  if (cfg_.mode == Mode::baseline || !batched) {
    for (std::size_t i = 0; i < burst.size(); ++i) {
      const wire::PacketView& pkt = burst[i];
      Verdict& v = verdicts[i];
      v = Verdict{};
      if (pkt.dst_aid() != as_.aid) continue;  // transit, no crypto
      v.local = true;
      if (cfg_.mode == Mode::baseline || cache == nullptr) {
        auto hid = check_incoming(pkt, now);
        if (hid) {
          v.hid = *hid;
        } else {
          v.err = hid.error().code;
        }
      } else {
        ingress_checks(pkt, now, cache, gen, v);
      }
      if (v.err != Errc::ok) count_drop(stats, v.err);
    }
    return;
  }

  // Fused ingress pipeline: transit packets skip crypto entirely (design
  // choice 3); locally-destined packets probe the flow cache, and only the
  // misses reach the widened AES sweep and the striped tables.
  constexpr std::size_t kChunk = 32;
  const std::uint8_t* miss_eph[kChunk];
  core::EphIdPlain plain[kChunk];
  std::uint8_t id_ok[kChunk];
  std::size_t miss_at[kChunk];

  for (std::size_t base = 0; base < burst.size(); base += kChunk) {
    const std::size_t m = std::min(kChunk, burst.size() - base);

    // Stage 1 — transit split + cache probe.
    std::size_t nmiss = 0;
    for (std::size_t i = 0; i < m; ++i) {
      if (i + kPrefetchAhead < m) {
        const wire::PacketView& ahead = burst[base + i + kPrefetchAhead];
        prefetch_ro(ahead.bytes().data() + wire::kOffDstEphid);
      }
      const wire::PacketView& pkt = burst[base + i];
      Verdict& v = verdicts[base + i];
      v = Verdict{};
      if (pkt.dst_aid() != as_.aid) continue;
      v.local = true;
      if (cache) {
        core::EphId dst;
        dst.bytes = pkt.dst_ephid();
        if (const core::FlowCache::Entry* e = cache->find(dst, gen)) {
          if (e->exp_time < now) {
            v.err = Errc::expired;
            count_drop(stats, v.err);
          } else {
            v.hid = e->hid;
          }
          continue;
        }
      }
      miss_eph[nmiss] = pkt.bytes().data() + wire::kOffDstEphid;
      miss_at[nmiss++] = i;
    }

    // Stage 2 — widened AES sweep over the misses only.
    as_.codec.open_batch_gather(miss_eph, nmiss, plain, id_ok);

    // Stage 3 — striped checks + insertion (no MAC stage at ingress, so
    // fresh verdicts can be inserted as they verify).
    for (std::size_t j = 0; j < nmiss; ++j) {
      if (j + kPrefetchAhead < nmiss) {
        core::EphId ahead;
        ahead.bytes = burst[base + miss_at[j + kPrefetchAhead]].dst_ephid();
        as_.revoked.prefetch(ahead);
        if (id_ok[j + kPrefetchAhead])
          as_.host_db.prefetch(plain[j + kPrefetchAhead].hid);
      }
      Verdict& v = verdicts[base + miss_at[j]];
      core::EphId dst;
      dst.bytes = burst[base + miss_at[j]].dst_ephid();
      if (!id_ok[j]) {
        v.err = Errc::decrypt_failed;
      } else if (plain[j].exp_time < now) {
        v.err = Errc::expired;
      } else if (as_.revoked.is_revoked(dst) ||
                 as_.revoked.is_hid_revoked(plain[j].hid)) {
        v.err = Errc::revoked;
      } else if (cache == nullptr) {
        // Uncached: a membership check suffices — no record copy.
        if (as_.host_db.contains(plain[j].hid)) {
          v.hid = plain[j].hid;
        } else {
          v.err = Errc::unknown_host;
        }
      } else if (const auto host = as_.host_db.find(plain[j].hid)) {
        // find (not contains): the copied record's cmac makes the fresh
        // entry usable for EGRESS hits of the same EphID too.
        v.hid = plain[j].hid;
        cache->insert(dst, plain[j].hid, plain[j].exp_time, gen, host->cmac);
      } else {
        v.err = Errc::unknown_host;
      }
      if (v.err != Errc::ok) count_drop(stats, v.err);
    }
  }
}

bool BorderRouter::send_external_stamped(wire::PacketBuf pkt, Stats& stats) {
  if (!cb_.send_external) return true;  // checks-only driver
  if (cfg_.stamp_path) {
    // §VIII-C: splice this AS's AID into (a pooled copy of) the stamp
    // list. The only in-flight modification a router makes.
    pkt = wire::append_path_stamp(pkt.view(), as_.aid);
  }
  if (auto sent = cb_.send_external(std::move(pkt)); !sent) {
    count_drop(stats, sent.error().code);
    return false;
  }
  return true;
}

bool BorderRouter::forward_view(const wire::PacketView& pkt, Stats& stats) {
  if (!cb_.send_external) return true;
  // The caller owns the burst, so the handoff is one pooled copy (recycled
  // storage — no heap allocation in steady state; see BufferPool).
  return send_external_stamped(wire::PacketBuf::copy_of(pkt), stats);
}

void BorderRouter::apply_outgoing_verdicts(
    std::span<const wire::PacketView> burst, std::span<const Verdict> verdicts,
    Stats& stats) {
  for (std::size_t i = 0; i < burst.size(); ++i) {
    if (verdicts[i].err != Errc::ok) continue;  // already counted
    if (forward_view(burst[i], stats)) ++stats.forwarded_out;
  }
}

void BorderRouter::apply_ingress_verdicts(
    std::span<const wire::PacketView> burst, std::span<const Verdict> verdicts,
    Stats& stats) {
  for (std::size_t i = 0; i < burst.size(); ++i) {
    const Verdict& v = verdicts[i];
    if (v.err != Errc::ok) continue;
    if (!v.local) {
      // Transit: "simply forward packets to the next AS on the path".
      if (forward_view(burst[i], stats)) ++stats.transited;
      continue;
    }
    if (!cb_.deliver_internal) {
      ++stats.delivered_in;
      continue;
    }
    if (auto ok = cb_.deliver_internal(v.hid, wire::PacketBuf::copy_of(burst[i]));
        ok) {
      ++stats.delivered_in;
    } else {
      count_drop(stats, ok.error().code);
    }
  }
}

// ---- Accounting and feedback ------------------------------------------------

void BorderRouter::count_drop(Stats& stats, Errc code) {
  switch (code) {
    case Errc::expired: ++stats.drop_expired; break;
    case Errc::revoked: ++stats.drop_revoked; break;
    case Errc::unknown_host: ++stats.drop_unknown_host; break;
    case Errc::bad_mac: ++stats.drop_bad_mac; break;
    case Errc::decrypt_failed: ++stats.drop_bad_ephid; break;
    case Errc::no_route: ++stats.drop_no_route; break;
    case Errc::too_big: ++stats.drop_too_big; break;
    case Errc::replayed: ++stats.drop_replayed; break;
    default: ++stats.drop_bad_ephid; break;
  }
}

BorderRouter::IcmpQuote BorderRouter::make_quote(
    const wire::PacketView& pkt) const {
  IcmpQuote q;
  q.src_aid = pkt.src_aid();
  q.src_ephid = pkt.src_ephid();
  q.proto = pkt.proto();
  // Quote the offending header (48 B) like classic ICMP quotes headers.
  q.header_len = std::min<std::size_t>(pkt.wire_size(), wire::kApnaHeaderSize);
  std::memcpy(q.header.data(), pkt.bytes().data(), q.header_len);
  return q;
}

void BorderRouter::maybe_icmp_error(const IcmpQuote& offending,
                                    core::IcmpType type, std::uint32_t code) {
  if (!cfg_.send_icmp_errors || ident_.ephid.is_zero()) return;
  if (offending.proto == wire::NextProto::icmp) return;  // no ICMP storms

  // §VIII-B: feedback goes to the source EphID in the offending packet,
  // from one of the router's own EphIDs, MAC'd like any host packet.
  core::IcmpMessage msg;
  msg.type = type;
  msg.code = code;
  msg.data.assign(offending.header.begin(),
                  offending.header.begin() + offending.header_len);

  wire::Packet icmp;
  icmp.src_aid = ident_.aid;
  icmp.src_ephid = ident_.ephid.bytes;
  icmp.dst_aid = offending.src_aid;
  icmp.dst_ephid = offending.src_ephid;
  icmp.proto = wire::NextProto::icmp;
  icmp.payload = msg.serialize();
  // Control-plane construction: build → seal → stamp in place.
  wire::PacketBuf buf = icmp.seal();
  core::stamp_packet_mac(crypto::AesCmac(ByteSpan(ident_.mac_key.data(), 16)),
                         buf);
  ++stats_.icmp_sent;

  if (icmp.dst_aid == as_.aid) {
    // The offender is local: deliver the feedback internally.
    on_ingress(std::move(buf));
  } else if (cb_.send_external) {
    (void)cb_.send_external(std::move(buf));
  }
}

// ---- Single-threaded simulator path -----------------------------------------

void BorderRouter::on_outgoing(wire::PacketBuf pkt) {
  const core::ExpTime now = cb_.now();
  const wire::PacketView& v = pkt.view();

  // Drop paths quote straight from the live view — no per-packet copy.
  if (v.wire_size() > cfg_.mtu) {
    ++stats_.drop_too_big;
    maybe_icmp_error(v, core::IcmpType::packet_too_big,
                     static_cast<std::uint32_t>(cfg_.mtu));
    return;
  }
  if (auto ok = check_outgoing(v, now); !ok) {
    count_drop(ok.error().code);
    return;
  }
  // §VIII-D (future-work extension): filter replays at the source AS, where
  // packets are already attributed to a sender.
  if (cfg_.replay_filter && v.has_nonce()) {
    core::EphId src;
    src.bytes = v.src_ephid();
    if (auto fresh = replay_filter_.accept(src, v.nonce()); !fresh) {
      ++stats_.drop_replayed;
      return;
    }
  }
  // The send consumes the buffer, so the post-move failure feedback needs
  // a snapshot — taken only when ICMP can actually fire.
  IcmpQuote quote;
  if (icmp_armed()) quote = make_quote(v);
  if (!send_external_stamped(std::move(pkt), stats_)) {
    maybe_icmp_error(quote, core::IcmpType::dest_unreachable, 0);
    return;
  }
  ++stats_.forwarded_out;
}

void BorderRouter::on_ingress(wire::PacketBuf pkt) {
  const core::ExpTime now = cb_.now();
  const wire::PacketView& v = pkt.view();
  if (v.dst_aid() != as_.aid) {
    // Transit: "simply forward packets to the next AS on the path".
    if (send_external_stamped(std::move(pkt), stats_)) ++stats_.transited;
    return;
  }
  auto hid = check_incoming(v, now);
  if (!hid) {
    count_drop(hid.error().code);
    maybe_icmp_error(v, core::IcmpType::dest_unreachable, 1);
    return;
  }
  if (!cb_.deliver_internal) {
    ++stats_.delivered_in;
    return;
  }
  // Delivery consumes the buffer; snapshot for the post-move failure arm.
  IcmpQuote quote;
  if (icmp_armed()) quote = make_quote(v);
  if (auto ok = cb_.deliver_internal(*hid, std::move(pkt)); !ok) {
    count_drop(ok.error().code);
    maybe_icmp_error(quote, core::IcmpType::dest_unreachable, 2);
    return;
  }
  ++stats_.delivered_in;
}

}  // namespace apna::router

#include "router/border_router.h"

namespace apna::router {

Result<void> BorderRouter::check_outgoing(const wire::Packet& pkt,
                                          core::ExpTime now) const {
  if (cfg_.mode == Mode::baseline) return check_baseline(pkt);

  core::EphId src;
  src.bytes = pkt.src_ephid;

  // (HID_S, expTime) = E^-1_kA(EphID_s)
  auto plain = as_.codec.open(src);
  if (!plain) return Result<void>(Errc::decrypt_failed, "source EphID invalid");
  // if expTime < currTime drop
  if (plain->exp_time < now) return Result<void>(Errc::expired, "src EphID");
  // if EphID_s ∈ revoked_EphIDs drop
  if (as_.revoked.is_revoked(src))
    return Result<void>(Errc::revoked, "src EphID revoked");
  if (as_.revoked.is_hid_revoked(plain->hid))
    return Result<void>(Errc::revoked, "src HID revoked");
  // if HID_S ∉ host_info drop
  const auto host = as_.host_db.find(plain->hid);
  if (!host) return Result<void>(Errc::unknown_host, "src HID unknown");
  // if !verifyMAC(k_HSAS, packet) drop
  if (!core::verify_packet_mac(*host->cmac, pkt))
    return Result<void>(Errc::bad_mac, "packet MAC invalid");
  return Result<void>::success();
}

Result<core::Hid> BorderRouter::check_incoming(const wire::Packet& pkt,
                                               core::ExpTime now) const {
  if (cfg_.mode == Mode::baseline) {
    // Baseline delivers by the low 32 bits of the destination identifier.
    return core::Hid{load_be32(pkt.dst_ephid.data())};
  }

  core::EphId dst;
  dst.bytes = pkt.dst_ephid;

  auto plain = as_.codec.open(dst);
  if (!plain)
    return Result<core::Hid>(Errc::decrypt_failed, "dst EphID invalid");
  if (plain->exp_time < now)
    return Result<core::Hid>(Errc::expired, "dst EphID");
  if (as_.revoked.is_revoked(dst))
    return Result<core::Hid>(Errc::revoked, "dst EphID revoked");
  if (as_.revoked.is_hid_revoked(plain->hid))
    return Result<core::Hid>(Errc::revoked, "dst HID revoked");
  if (!as_.host_db.contains(plain->hid))
    return Result<core::Hid>(Errc::unknown_host, "dst HID unknown");
  return plain->hid;
}

Result<void> BorderRouter::check_baseline(const wire::Packet& pkt) const {
  // A plain router validates nothing cryptographic; reject only nonsense.
  if (pkt.dst_aid == 0)
    return Result<void>(Errc::malformed, "zero destination AID");
  return Result<void>::success();
}

void BorderRouter::count_drop(Errc code) {
  switch (code) {
    case Errc::expired: ++stats_.drop_expired; break;
    case Errc::revoked: ++stats_.drop_revoked; break;
    case Errc::unknown_host: ++stats_.drop_unknown_host; break;
    case Errc::bad_mac: ++stats_.drop_bad_mac; break;
    case Errc::decrypt_failed: ++stats_.drop_bad_ephid; break;
    case Errc::no_route: ++stats_.drop_no_route; break;
    default: ++stats_.drop_bad_ephid; break;
  }
}

void BorderRouter::maybe_icmp_error(const wire::Packet& offending,
                                    core::IcmpType type, std::uint32_t code) {
  if (!cfg_.send_icmp_errors || ident_.ephid.is_zero()) return;
  if (offending.proto == wire::NextProto::icmp) return;  // no ICMP storms

  // §VIII-B: feedback goes to the source EphID in the offending packet,
  // from one of the router's own EphIDs, MAC'd like any host packet.
  core::IcmpMessage msg;
  msg.type = type;
  msg.code = code;
  // Quote the offending header (48 B) like classic ICMP quotes headers.
  const Bytes hdr = offending.serialize();
  msg.data.assign(hdr.begin(),
                  hdr.begin() + std::min<std::size_t>(hdr.size(),
                                                      wire::kApnaHeaderSize));

  wire::Packet icmp;
  icmp.src_aid = ident_.aid;
  icmp.src_ephid = ident_.ephid.bytes;
  icmp.dst_aid = offending.src_aid;
  icmp.dst_ephid = offending.src_ephid;
  icmp.proto = wire::NextProto::icmp;
  icmp.payload = msg.serialize();
  core::stamp_packet_mac(crypto::AesCmac(ByteSpan(ident_.mac_key.data(), 16)),
                         icmp);
  ++stats_.icmp_sent;

  if (icmp.dst_aid == as_.aid) {
    // The offender is local: deliver the feedback internally.
    on_ingress(icmp);
  } else {
    (void)cb_.send_external(icmp);
  }
}

void BorderRouter::on_outgoing(const wire::Packet& pkt) {
  const core::ExpTime now = cb_.now();
  if (pkt.wire_size() > cfg_.mtu) {
    ++stats_.drop_too_big;
    maybe_icmp_error(pkt, core::IcmpType::packet_too_big,
                     static_cast<std::uint32_t>(cfg_.mtu));
    return;
  }
  if (auto ok = check_outgoing(pkt, now); !ok) {
    count_drop(ok.error().code);
    return;
  }
  // §VIII-D (future-work extension): filter replays at the source AS, where
  // packets are already attributed to a sender.
  if (cfg_.replay_filter && pkt.has_nonce()) {
    core::EphId src;
    src.bytes = pkt.src_ephid;
    auto [it, inserted] = replay_windows_.try_emplace(src, 1024);
    if (auto fresh = it->second.accept(pkt.nonce); !fresh) {
      ++stats_.drop_replayed;
      return;
    }
  }
  if (cfg_.stamp_path) {
    wire::Packet stamped = pkt;
    stamped.stamp_path(as_.aid);
    if (auto sent = cb_.send_external(stamped); !sent) {
      count_drop(sent.error().code);
      maybe_icmp_error(pkt, core::IcmpType::dest_unreachable, 0);
      return;
    }
    ++stats_.forwarded_out;
    return;
  }
  if (auto sent = cb_.send_external(pkt); !sent) {
    count_drop(sent.error().code);
    maybe_icmp_error(pkt, core::IcmpType::dest_unreachable, 0);
    return;
  }
  ++stats_.forwarded_out;
}

void BorderRouter::on_ingress(const wire::Packet& pkt) {
  const core::ExpTime now = cb_.now();
  if (pkt.dst_aid != as_.aid) {
    // Transit: "simply forward packets to the next AS on the path".
    if (cfg_.stamp_path) {
      wire::Packet stamped = pkt;
      stamped.stamp_path(as_.aid);
      if (auto sent = cb_.send_external(stamped); !sent) {
        count_drop(sent.error().code);
        return;
      }
      ++stats_.transited;
      return;
    }
    if (auto sent = cb_.send_external(pkt); !sent) {
      count_drop(sent.error().code);
      return;
    }
    ++stats_.transited;
    return;
  }
  auto hid = check_incoming(pkt, now);
  if (!hid) {
    count_drop(hid.error().code);
    maybe_icmp_error(pkt, core::IcmpType::dest_unreachable, 1);
    return;
  }
  if (auto ok = cb_.deliver_internal(*hid, pkt); !ok) {
    count_drop(ok.error().code);
    maybe_icmp_error(pkt, core::IcmpType::dest_unreachable, 2);
    return;
  }
  ++stats_.delivered_in;
}

}  // namespace apna::router

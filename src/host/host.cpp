#include "host/host.h"

#include "crypto/x25519.h"
#include "wire/codec.h"

namespace apna::host {

namespace {
constexpr std::uint8_t kDnsOpQuery = 0;    // mirrors services::DnsOp
constexpr std::uint8_t kDnsOpPublish = 1;
constexpr std::uint8_t kDnsOpResponse = 2;
}  // namespace

Host::Host(Config cfg, const core::AsDirectory& directory,
           net::EventLoop& loop)
    : cfg_(std::move(cfg)),
      directory_(directory),
      loop_(loop),
      rng_(cfg_.rng_seed != 0
               ? crypto::ChaChaRng(cfg_.rng_seed)
               : crypto::ChaChaRng(to_bytes(cfg_.name))) {}

// ---- Bootstrap ---------------------------------------------------------------

Result<void> Host::bootstrap(const BootstrapFn& rs) {
  long_term_ = crypto::X25519KeyPair::generate(rng_);

  core::BootstrapRequest req;
  req.subscriber_id = cfg_.subscriber_id;
  req.credential = cfg_.credential;
  req.host_pub = long_term_.pub;

  auto resp = rs(req);
  if (!resp) return resp.error();

  // All bootstrapping messages are authenticated (§IV-B): check id_info and
  // both service certificates against the AS's published key.
  const auto as_info = directory_.lookup(resp->aid);
  if (!as_info)
    return Result<void>(Errc::bad_certificate, "bootstrap from unknown AS");
  if (!crypto::ed25519_verify(as_info->sign_pub, resp->id_info_tbs(),
                              resp->id_info_sig))
    return Result<void>(Errc::bad_signature, "id_info signature invalid");
  // Each service certificate is validated against ITS issuing AS — behind
  // an access point (§VII-B) the MS certificate comes from the AP's realm
  // while the DNS certificate comes from the parent ISP.
  const core::ExpTime now = loop_.now_seconds();
  if (auto ok = core::validate_peer_cert(resp->ms_cert, directory_, now); !ok)
    return ok;
  if (auto ok = core::validate_peer_cert(resp->dns_cert, directory_, now); !ok)
    return ok;

  // kHA from the DH exchange with the AS (Fig 2).
  kha_ = core::HostAsKeys::derive(
      crypto::x25519_shared(long_term_.priv, as_info->dh_pub));
  kha_cmac_ = std::make_shared<const crypto::AesCmac>(
      ByteSpan(kha_.mac.data(), kha_.mac.size()));

  aid_ = resp->aid;
  hid_ = resp->hid;
  ctrl_ephid_ = resp->ctrl_ephid;
  ctrl_exp_ = resp->ctrl_exp_time;
  ms_cert_ = resp->ms_cert;
  dns_cert_ = resp->dns_cert;
  aa_ephid_ = resp->aa_ephid;
  bootstrapped_ = true;
  return Result<void>::success();
}

// ---- Packet plumbing ------------------------------------------------------------

wire::PacketWriter Host::start_packet(core::Aid dst_aid,
                                      const core::EphId& dst_ephid,
                                      const core::EphId& src_ephid,
                                      wire::NextProto proto) {
  std::optional<std::uint64_t> nonce;
  if (cfg_.add_replay_nonce && proto == wire::NextProto::data)
    nonce = ++packet_seq_;  // §VIII-D header nonce
  return wire::PacketWriter(aid_, src_ephid.bytes, dst_aid, dst_ephid.bytes,
                            proto, nonce);
}

void Host::transmit(wire::PacketWriter& pw, const OwnedEphId* src_owned) {
  // §VII-A invariant: receive-only EphIDs are never used as a source.
  if (src_owned != nullptr && src_owned->receive_only()) return;
  // The host's one encode: the payload was appended in place behind the
  // header; finish() binds the image and the kHA MAC is stamped at its
  // fixed offset.
  wire::PacketBuf buf = pw.finish();
  core::stamp_packet_mac(*kha_cmac_, buf);
  ++stats_.packets_sent;
  if (send_) send_(std::move(buf));
}

void Host::transmit_ctrl(wire::PacketWriter& pw) { transmit(pw, nullptr); }

// ---- EphID issuance (client of Fig 3) ---------------------------------------------

namespace {
Result<void> check_can_request(bool bootstrapped, core::ExpTime ctrl_exp,
                               core::ExpTime now) {
  if (!bootstrapped) return Result<void>(Errc::internal, "not bootstrapped");
  if (ctrl_exp < now)
    return Result<void>(Errc::expired, "control EphID expired");
  return Result<void>::success();
}
}  // namespace

void Host::request_ephid(core::EphIdLifetime lifetime, std::uint8_t flags,
                         EphIdCallback cb) {
  if (auto ok = check_can_request(bootstrapped_, ctrl_exp_,
                                  loop_.now_seconds());
      !ok) {
    cb(Result<const OwnedEphId*>(ok.error()));
    return;
  }
  // The HOST generates the key pair (§IV-C) and sends only the public half.
  core::EphIdKeyPair kp = core::EphIdKeyPair::generate(rng_);

  core::EphIdRequest req;
  req.ephid_pub = kp.pub;
  req.flags = flags;
  req.lifetime = lifetime;
  // Proof of possession: the MS only certifies keys whose holder can sign.
  req.pop_sig = kp.sign(req.pop_tbs());

  wire::MsgWriter plain(160);
  req.encode(plain);
  wire::PacketWriter pw = start_packet(aid_, ms_cert_.ephid, ctrl_ephid_,
                                       wire::NextProto::control);
  core::seal_control_into(pw, kha_, ctrl_nonce_++, /*from_host=*/true,
                          plain.span());
  PendingEphId pending;
  pending.expected_pub = kp.pub;
  pending.kp = std::move(kp);
  pending.lifetime = lifetime;
  pending.cb = std::move(cb);
  pending_ephids_.push_back(std::move(pending));
  transmit_ctrl(pw);
}

void Host::request_ephid_for(const core::EphIdPublicKeys& pub,
                             const crypto::Ed25519Signature& pop_sig,
                             core::EphIdLifetime lifetime, std::uint8_t flags,
                             CertCallback cb) {
  if (auto ok = check_can_request(bootstrapped_, ctrl_exp_,
                                  loop_.now_seconds());
      !ok) {
    cb(Result<core::EphIdCertificate>(ok.error()));
    return;
  }
  core::EphIdRequest req;
  req.ephid_pub = pub;
  req.flags = flags;
  req.lifetime = lifetime;
  // The inner host's own PoP signature rides along unchanged: pop_tbs()
  // deliberately binds only the key material, so the proxy hop (different
  // control EphID, different AS) does not invalidate it.
  req.pop_sig = pop_sig;
  wire::MsgWriter plain(160);
  req.encode(plain);
  wire::PacketWriter pw = start_packet(aid_, ms_cert_.ephid, ctrl_ephid_,
                                       wire::NextProto::control);
  core::seal_control_into(pw, kha_, ctrl_nonce_++, /*from_host=*/true,
                          plain.span());
  PendingEphId pending;
  pending.expected_pub = pub;
  pending.lifetime = lifetime;
  pending.cert_cb = std::move(cb);
  pending_ephids_.push_back(std::move(pending));
  transmit_ctrl(pw);
}

void Host::forward_as_own(wire::PacketBuf pkt) {
  core::stamp_packet_mac(*kha_cmac_, pkt);  // in place on the wire image
  ++stats_.packets_sent;
  if (send_) send_(std::move(pkt));
}

void Host::forward_as_own_burst(std::span<wire::PacketBuf> pkts) {
  core::stamp_packet_macs(*kha_cmac_, pkts);  // batched in-place re-MAC
  stats_.packets_sent += pkts.size();
  if (!send_) return;
  for (wire::PacketBuf& pkt : pkts) send_(std::move(pkt));
}

void Host::on_control(const wire::PacketView& pkt) {
  if (pending_ephids_.empty()) return;
  PendingEphId pending = std::move(pending_ephids_.front());
  pending_ephids_.pop_front();

  auto fail = [&](const Error& e) {
    if (pending.cb) pending.cb(Result<const OwnedEphId*>(e));
    if (pending.cert_cb) pending.cert_cb(Result<core::EphIdCertificate>(e));
  };

  auto payload = core::open_control(kha_, /*from_host=*/false, pkt.payload());
  if (!payload) {
    fail(payload.error());
    return;
  }
  auto resp = core::decode_msg<core::EphIdResponse>(*payload);
  if (!resp) {
    fail(resp.error());
    return;
  }
  // The certificate must match the request: correct key binding, valid AS
  // signature.
  if (!(resp->cert.pub == pending.expected_pub)) {
    fail(Error{Errc::bad_certificate, "certificate binds a different key"});
    return;
  }
  if (auto ok = core::validate_peer_cert(resp->cert, directory_,
                                         loop_.now_seconds());
      !ok) {
    fail(ok.error());
    return;
  }
  if (pending.kp) {
    const OwnedEphId* owned = pool_.add(std::move(*pending.kp),
                                        resp.take().cert, pending.lifetime);
    pending.cb(owned);
  } else {
    pending.cert_cb(resp.take().cert);
  }
}

// ---- Connections -------------------------------------------------------------------

std::uint64_t Host::session_key_hash(const core::EphId& mine,
                                     const core::EphId& peer) const {
  return core::EphIdHash{}(mine) * 0x9e3779b97f4a7c15ULL ^
         core::EphIdHash{}(peer);
}

Host::SessionState* Host::find_session(const core::EphId& mine,
                                       const core::EphId& peer) {
  auto it = session_index_.find(session_key_hash(mine, peer));
  if (it == session_index_.end()) return nullptr;
  auto st = sessions_.find(it->second);
  return st == sessions_.end() ? nullptr : &st->second;
}

Result<std::uint64_t> Host::connect(const core::EphIdCertificate& peer_cert,
                                    ConnectOptions opts, ConnectCallback cb) {
  const core::ExpTime now = loop_.now_seconds();
  if (opts.flow.empty()) opts.flow = "flow-" + std::to_string(next_flow_id_++);

  OwnedEphId* owned = pool_.pick(cfg_.granularity, opts.app, opts.flow,
                                 packet_seq_, now);
  if (!owned)
    return Result<std::uint64_t>(Errc::exhausted,
                                 "no usable EphID in pool; request one first");

  auto hs = core::handshake_initiate(peer_cert, directory_, now, owned->kp,
                                     owned->cert, cfg_.suite, opts.early_data,
                                     rng_.next_u64());
  if (!hs) return Result<std::uint64_t>(hs.error());

  const std::uint64_t id = next_session_id_++;
  SessionState st;
  st.id = id;
  st.early_session = std::move(hs->early_session);
  st.peer_aid = peer_cert.aid;
  st.peer_ephid = peer_cert.ephid;
  st.my_ephid = owned->cert.ephid;
  st.my_owned = owned;
  st.peer_cert = peer_cert;
  st.contacted_cert = peer_cert;
  st.initiator = true;
  st.established = false;
  // 0-RTT sending is an explicit opt-in (§VII-C documents its early-data
  // caveat); otherwise data waits for the serving certificate.
  st.zero_rtt = !opts.early_data.empty();
  st.on_connected = std::move(cb);

  session_index_[session_key_hash(st.my_ephid, st.peer_ephid)] = id;

  wire::PacketWriter pw = start_packet(peer_cert.aid, peer_cert.ephid,
                                       st.my_ephid,
                                       wire::NextProto::handshake);
  pw.u8(static_cast<std::uint8_t>(HandshakeKind::init));
  hs->init.encode(pw);
  sessions_.emplace(id, std::move(st));
  transmit(pw, owned);
  return id;
}

Result<void> Host::send_data(std::uint64_t session_id, ByteSpan data) {
  auto it = sessions_.find(session_id);
  if (it == sessions_.end())
    return Result<void>(Errc::not_found, "unknown session");
  SessionState& st = it->second;

  if (st.established) {
    core::Session& sess = *st.session;
    wire::PacketWriter pw = start_packet(st.peer_aid, st.peer_ephid,
                                         st.my_ephid, wire::NextProto::data);
    pw.raw(sess.seal(data));
    transmit(pw, st.my_owned);
    return Result<void>::success();
  }
  if (st.initiator && st.zero_rtt && st.early_session) {
    // 0-RTT: encrypt against the contacted EphID (§VII-C), accepting the
    // documented early-data caveat.
    wire::PacketWriter pw = start_packet(st.peer_aid, st.contacted_cert.ephid,
                                         st.my_ephid, wire::NextProto::data);
    pw.raw(st.early_session->seal(data));
    transmit(pw, st.my_owned);
    return Result<void>::success();
  }
  st.pending.emplace_back(data.begin(), data.end());
  return Result<void>::success();
}

Result<void> Host::close_session(std::uint64_t id, bool retire_ephid) {
  auto it = sessions_.find(id);
  if (it == sessions_.end())
    return Result<void>(Errc::not_found, "unknown session");
  SessionState& st = it->second;

  // Drop demux entries (including the contacted-EphID alias, if any).
  session_index_.erase(session_key_hash(st.my_ephid, st.peer_ephid));
  if (!(st.contacted_cert.ephid == st.my_ephid))
    session_index_.erase(
        session_key_hash(st.contacted_cert.ephid, st.peer_ephid));

  const core::EphId my_ephid = st.my_ephid;
  sessions_.erase(it);

  if (retire_ephid) {
    // Fate-sharing check: another live session on the same EphID keeps it.
    for (const auto& [other_id, other] : sessions_) {
      if (other.my_ephid == my_ephid) return Result<void>::success();
    }
    if (pool_.find(my_ephid) != nullptr)
      return revoke_own_ephid(my_ephid, [](Result<void>) {});
  }
  return Result<void>::success();
}

const core::EphIdCertificate* Host::session_peer_cert(std::uint64_t id) const {
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : &it->second.peer_cert;
}

std::optional<std::pair<core::EphId, core::EphId>> Host::session_ephids(
    std::uint64_t id) const {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return std::nullopt;
  return std::make_pair(it->second.my_ephid, it->second.peer_ephid);
}

void Host::on_handshake(const wire::PacketView& pkt) {
  wire::MsgReader r(pkt);
  auto kind = r.u8();
  if (!kind) return;

  if (*kind == static_cast<std::uint8_t>(HandshakeKind::init)) {
    auto init = core::decode_msg<core::HandshakeInit>(r.rest());
    if (!init) {
      ++stats_.handshakes_rejected;
      return;
    }
    core::EphId contacted;
    contacted.bytes = pkt.dst_ephid();
    OwnedEphId* contacted_owned = pool_.find(contacted);
    if (!contacted_owned) {
      ++stats_.handshakes_rejected;
      return;
    }
    OwnedEphId* serving = contacted_owned->receive_only()
                              ? pool_.pick_serving(contacted,
                                                   loop_.now_seconds())
                              : contacted_owned;
    if (!serving) {
      ++stats_.handshakes_rejected;
      return;
    }
    auto hs = core::handshake_respond(
        *init, directory_, loop_.now_seconds(), contacted_owned->kp,
        contacted_owned->cert, serving->kp, serving->cert, rng_.next_u64());
    if (!hs) {
      ++stats_.handshakes_rejected;
      return;
    }

    const std::uint64_t id = next_session_id_++;
    SessionState st;
    st.id = id;
    st.session = std::move(hs->session);
    st.early_session = std::move(hs->early_session);
    st.peer_aid = pkt.src_aid();
    st.peer_ephid = hs->client_cert.ephid;
    st.my_ephid = serving->cert.ephid;
    st.my_owned = serving;
    st.peer_cert = hs->client_cert;
    st.contacted_cert = contacted_owned->cert;
    st.initiator = false;
    st.established = true;

    session_index_[session_key_hash(st.my_ephid, st.peer_ephid)] = id;
    if (!(contacted == st.my_ephid))
      session_index_[session_key_hash(contacted, st.peer_ephid)] = id;

    ++stats_.handshakes_accepted;

    // Respond from the SERVING EphID (never the receive-only one).
    wire::PacketWriter pw = start_packet(pkt.src_aid(), st.peer_ephid,
                                         st.my_ephid,
                                         wire::NextProto::handshake);
    pw.u8(static_cast<std::uint8_t>(HandshakeKind::response));
    hs->response.encode(pw);

    const Bytes early = std::move(hs->early_data);
    sessions_.emplace(id, std::move(st));
    transmit(pw, serving);

    if (!early.empty()) {
      ++stats_.data_frames_received;
      if (on_data_) on_data_(id, early);
    }
    return;
  }

  if (*kind == static_cast<std::uint8_t>(HandshakeKind::response)) {
    auto resp = core::decode_msg<core::HandshakeResponse>(r.rest());
    if (!resp) return;
    core::EphId mine;
    mine.bytes = pkt.dst_ephid();
    core::EphId from;
    from.bytes = pkt.src_ephid();

    // Host-to-host: serving == contacted, the index already matches.
    SessionState* st = find_session(mine, from);
    if (!st) {
      // Client-server: the response comes from a serving EphID we have not
      // seen; match a pending initiated session on (mine, src_aid).
      for (auto& [id, cand] : sessions_) {
        if (cand.initiator && !cand.established && cand.my_ephid == mine &&
            cand.peer_aid == pkt.src_aid() &&
            resp->serving_cert.ephid == from) {
          st = &cand;
          break;
        }
      }
    }
    if (!st || st->established) return;

    if (resp->serving_cert.ephid == st->contacted_cert.ephid) {
      // Same EphID serves: the early session IS the data session.
      st->session = std::move(st->early_session);
      st->early_session.reset();
    } else {
      auto finished =
          core::handshake_finish(*resp, directory_, loop_.now_seconds(),
                                 st->my_owned->kp, st->my_owned->cert,
                                 st->contacted_cert);
      if (!finished) {
        ++stats_.handshakes_rejected;
        if (st->on_connected) st->on_connected(Result<std::uint64_t>(finished.error()));
        return;
      }
      st->session = finished.take();
      st->peer_ephid = resp->serving_cert.ephid;
      st->peer_cert = resp->serving_cert;
      session_index_[session_key_hash(st->my_ephid, st->peer_ephid)] = st->id;
    }
    st->established = true;

    // Flush queued data.
    while (!st->pending.empty()) {
      Bytes data = std::move(st->pending.front());
      st->pending.pop_front();
      wire::PacketWriter pw_out = start_packet(st->peer_aid, st->peer_ephid,
                                               st->my_ephid,
                                               wire::NextProto::data);
      pw_out.raw(st->session->seal(data));
      transmit(pw_out, st->my_owned);
    }
    if (st->is_dns) flush_dns_queue(st->id);
    if (st->on_connected) st->on_connected(st->id);
    return;
  }
}

void Host::on_data(const wire::PacketView& pkt, wire::PacketBuf& owner) {
  // §VIII-D: header-nonce replay filter per source EphID.
  if (cfg_.add_replay_nonce && pkt.has_nonce()) {
    core::EphId src;
    src.bytes = pkt.src_ephid();
    auto [it, inserted] = replay_windows_.try_emplace(src, 1024);
    if (auto fresh = it->second.accept(pkt.nonce()); !fresh) {
      ++stats_.replay_drops;
      return;
    }
  }

  core::EphId mine, peer;
  mine.bytes = pkt.dst_ephid();
  peer.bytes = pkt.src_ephid();
  SessionState* st = find_session(mine, peer);
  if (!st) {
    ++stats_.unsolicited;
    last_unsolicited_ = std::move(owner);  // keep the buffer, no copy
    return;
  }

  // Frames addressed to the contacted (receive-only) EphID use early keys.
  core::Session* sess = nullptr;
  if (st->session && mine == st->my_ephid) {
    sess = &*st->session;
  } else if (st->early_session) {
    sess = &*st->early_session;
  } else if (st->session) {
    sess = &*st->session;
  }
  if (!sess) {
    ++stats_.unsolicited;
    return;
  }
  auto pt = sess->open(pkt.payload());
  if (!pt) {
    if (pt.error().code == Errc::replayed)
      ++stats_.replay_drops;
    else
      ++stats_.decrypt_drops;
    return;
  }
  ++stats_.data_frames_received;
  if (st->is_dns) {
    handle_dns_frame(*st, *pt);
    return;
  }
  if (on_data_) on_data_(st->id, *pt);
}

// ---- ICMP ------------------------------------------------------------------------

Result<void> Host::ping(const core::Endpoint& target, EchoCallback cb) {
  const core::ExpTime now = loop_.now_seconds();
  OwnedEphId* owned =
      pool_.pick(Granularity::per_host, "icmp", "icmp", packet_seq_, now);
  const core::EphId src = owned ? owned->cert.ephid : ctrl_ephid_;

  const std::uint64_t nonce = rng_.next_u64();
  core::IcmpMessage msg;
  msg.type = core::IcmpType::echo_request;
  msg.code = 0;
  msg.data.resize(16);
  store_be64(msg.data.data(), nonce);
  store_be64(msg.data.data() + 8, loop_.now());

  pending_pings_.emplace_back(nonce, std::move(cb));
  wire::PacketWriter pw = start_packet(target.aid, target.ephid, src,
                                       wire::NextProto::icmp);
  msg.encode(pw);
  transmit(pw, owned);
  return Result<void>::success();
}

void Host::on_icmp_packet(const wire::PacketView& pkt) {
  auto msg = core::decode_msg<core::IcmpMessage>(pkt.payload());
  if (!msg) return;
  ++stats_.icmp_received;

  core::Endpoint from;
  from.aid = pkt.src_aid();
  from.ephid.bytes = pkt.src_ephid();

  switch (msg->type) {
    case core::IcmpType::echo_request: {
      // Reply from the EphID that was pinged — it is a valid return address
      // (§VIII-B: "using the source EphID in a packet, one can send an ICMP
      // message to the source host").
      core::EphId pinged;
      pinged.bytes = pkt.dst_ephid();
      OwnedEphId* owned = pool_.find(pinged);
      const core::EphId src =
          owned ? owned->cert.ephid
                : (pinged == ctrl_ephid_ ? ctrl_ephid_ : core::EphId{});
      if (src.is_zero() && !owned) return;  // not ours; ignore
      core::IcmpMessage reply;
      reply.type = core::IcmpType::echo_reply;
      reply.code = 0;
      reply.data = msg->data;
      wire::PacketWriter pw = start_packet(pkt.src_aid(), from.ephid, src,
                                           wire::NextProto::icmp);
      reply.encode(pw);
      transmit(pw, owned);
      return;
    }
    case core::IcmpType::echo_reply: {
      if (msg->data.size() < 16) return;
      const std::uint64_t nonce = load_be64(msg->data.data());
      const net::TimeUs t0 = load_be64(msg->data.data() + 8);
      for (auto it = pending_pings_.begin(); it != pending_pings_.end(); ++it) {
        if (it->first == nonce) {
          EchoCallback cb = std::move(it->second);
          pending_pings_.erase(it);
          cb(loop_.now() - t0);
          return;
        }
      }
      return;
    }
    default:
      if (on_icmp_) on_icmp_(from, *msg);
      return;
  }
}

// ---- Shutoff ------------------------------------------------------------------------

Result<void> Host::request_shutoff(const wire::PacketView& offending,
                                   ShutoffCallback cb) {
  core::EphId victim_ephid;
  victim_ephid.bytes = offending.dst_ephid();
  OwnedEphId* owned = pool_.find(victim_ephid);
  if (!owned)
    return Result<void>(Errc::unauthorized,
                        "we do not own the packet's destination EphID");

  // The offending packet IS its wire image — embed it verbatim.
  const ByteSpan pkt_bytes = offending.bytes();
  core::ShutoffRequest req;
  req.offending_packet.assign(pkt_bytes.begin(), pkt_bytes.end());
  req.sig = owned->kp.sign(pkt_bytes);
  req.dst_cert = owned->cert;

  // Locate the source's accountability agent: from the peer's certificate
  // when we have a session with it, else from the published directory info.
  core::Endpoint aa;
  aa.aid = offending.src_aid();
  core::EphId src;
  src.bytes = offending.src_ephid();
  bool found = false;
  for (const auto& [id, st] : sessions_) {
    if (st.peer_ephid == src) {
      aa.ephid = st.peer_cert.aa_ephid;
      found = true;
      break;
    }
  }
  if (!found) {
    const auto as_info = directory_.lookup(offending.src_aid());
    if (!as_info)
      return Result<void>(Errc::not_found, "source AS unknown; no AA address");
    aa.ephid = as_info->aa_ephid;
  }

  pending_shutoffs_.push_back(std::move(cb));
  // The request may concern a RECEIVE-ONLY EphID (0-RTT flood): the
  // ownership proof is the signature + certificate above, but the request
  // packet itself must be sourced from a sendable EphID (§VII-A).
  const core::EphId src_ephid =
      owned->receive_only()
          ? [&]() -> core::EphId {
              OwnedEphId* sender = pool_.pick(Granularity::per_host, "shutoff",
                                              "shutoff", packet_seq_,
                                              loop_.now_seconds());
              return sender ? sender->cert.ephid : ctrl_ephid_;
            }()
          : owned->cert.ephid;
  wire::PacketWriter pw = start_packet(aa.aid, aa.ephid, src_ephid,
                                       wire::NextProto::shutoff);
  pw.u8(static_cast<std::uint8_t>(core::ShutoffKind::shutoff_request));
  req.encode(pw);
  transmit_ctrl(pw);
  return Result<void>::success();
}

Result<void> Host::revoke_own_ephid(const core::EphId& ephid,
                                    ShutoffCallback cb) {
  OwnedEphId* owned = pool_.find(ephid);
  if (!owned)
    return Result<void>(Errc::not_found, "EphID not in pool");

  core::EphIdRevokeRequest req;
  req.ephid = ephid;
  req.cert = owned->cert;
  req.sig = owned->kp.sign(core::EphIdRevokeRequest::revoke_tbs(ephid));

  // Mark locally retired immediately so the pool stops assigning it;
  // the AS-side revocation confirmation arrives via the callback.
  owned->revoked_locally = true;

  pending_shutoffs_.push_back(std::move(cb));
  // Voluntary revocation goes to OUR OWN AS's agent, sourced from the
  // control EphID (the revoked EphID must not source new traffic).
  wire::PacketWriter pw = start_packet(aid_, aa_ephid_, ctrl_ephid_,
                                       wire::NextProto::shutoff);
  pw.u8(static_cast<std::uint8_t>(core::ShutoffKind::revoke_request));
  req.encode(pw);
  transmit_ctrl(pw);
  return Result<void>::success();
}

void Host::on_shutoff_response(const wire::PacketView& pkt) {
  if (pending_shutoffs_.empty()) return;
  wire::MsgReader r(pkt);
  auto kind = r.u8();
  if (!kind || *kind != static_cast<std::uint8_t>(core::ShutoffKind::response))
    return;
  auto resp = core::decode_msg<core::ShutoffResponse>(r.rest());
  ShutoffCallback cb = std::move(pending_shutoffs_.front());
  pending_shutoffs_.pop_front();
  if (!resp) {
    cb(Result<void>(resp.error()));
    return;
  }
  if (resp->status == 0) {
    cb(Result<void>::success());
  } else {
    cb(Result<void>(static_cast<Errc>(resp->status), "shutoff rejected"));
  }
}

// ---- DNS client -----------------------------------------------------------------------

void Host::resolve(const std::string& name, ResolveCallback cb) {
  resolve_via(dns_cert_, name, std::move(cb));
}

void Host::resolve_via(const core::EphIdCertificate& dns_cert,
                       const std::string& name, ResolveCallback cb) {
  wire::MsgWriter w(name.size() + 4);
  w.u8(kDnsOpQuery);
  core::DnsQuery q;
  q.name = name;
  q.encode(w);
  DnsPending req;
  req.op = kDnsOpQuery;
  req.body = w.take();
  req.on_resolve = std::move(cb);
  dns_rpc(dns_cert, std::move(req));
}

void Host::publish_name(const std::string& name,
                        const core::EphIdCertificate& cert, std::uint32_t ipv4,
                        PublishCallback cb) {
  core::DnsPublish p;
  p.name = name;
  p.cert = cert;
  p.ipv4 = ipv4;
  wire::MsgWriter w(400);
  w.u8(kDnsOpPublish);
  p.encode(w);
  DnsPending req;
  req.op = kDnsOpPublish;
  req.body = w.take();
  req.on_publish = std::move(cb);
  dns_rpc(dns_cert_, std::move(req));
  (void)cb;
}

void Host::dns_rpc(const core::EphIdCertificate& dns_cert, DnsPending req) {
  const std::string key = dns_cert.ephid.hex();
  auto it = dns_sessions_.find(key);
  if (it != dns_sessions_.end()) {
    const std::uint64_t id = it->second;
    dns_queues_[id].push_back(std::move(req));
    if (dns_ready_[id]) flush_dns_queue(id);
    return;
  }
  ConnectOptions opts;
  opts.app = "dns";
  auto result = connect(dns_cert, std::move(opts),
                        [this](Result<std::uint64_t> r) {
                          if (r) {
                            dns_ready_[*r] = true;
                            flush_dns_queue(*r);
                          }
                        });
  if (!result) {
    if (req.on_resolve) req.on_resolve(Result<core::DnsRecord>(result.error()));
    if (req.on_publish) req.on_publish(Result<void>(result.error()));
    return;
  }
  const std::uint64_t id = *result;
  sessions_.at(id).is_dns = true;
  dns_sessions_[key] = id;
  dns_ready_[id] = false;
  dns_queues_[id].push_back(std::move(req));
}

void Host::flush_dns_queue(std::uint64_t session_id) {
  auto qit = dns_queues_.find(session_id);
  if (qit == dns_queues_.end()) return;
  auto sit = sessions_.find(session_id);
  if (sit == sessions_.end() || !sit->second.established) return;
  SessionState& st = sit->second;

  for (auto& req : qit->second) {
    if (req.body.empty()) continue;  // already sent
    wire::PacketWriter pw = start_packet(st.peer_aid, st.peer_ephid,
                                         st.my_ephid, wire::NextProto::data);
    pw.raw(st.session->seal(req.body));
    req.body.clear();  // mark in-flight
    transmit(pw, st.my_owned);
  }
}

void Host::handle_dns_frame(SessionState& st, ByteSpan frame) {
  wire::MsgReader r(frame);
  auto op = r.u8();
  if (!op || *op != kDnsOpResponse) return;

  auto qit = dns_queues_.find(st.id);
  if (qit == dns_queues_.end() || qit->second.empty()) return;
  DnsPending req = std::move(qit->second.front());
  qit->second.pop_front();

  if (req.op == kDnsOpQuery) {
    auto resp = core::decode_msg<core::DnsResponse>(r.rest());
    if (!resp || resp->status != 0 || !resp->record) {
      if (req.on_resolve)
        req.on_resolve(Result<core::DnsRecord>(Errc::not_found, "NXDOMAIN"));
      return;
    }
    // DNSSEC stand-in: verify the record signature with the DNS service's
    // key, and the embedded certificate against its issuing AS.
    core::DnsRecord rec = *resp->record;
    wire::MsgWriter tbs(256);
    rec.tbs_into(tbs);
    if (!crypto::ed25519_verify(st.peer_cert.pub.sig, tbs.span(), rec.sig)) {
      if (req.on_resolve)
        req.on_resolve(
            Result<core::DnsRecord>(Errc::bad_signature, "record sig"));
      return;
    }
    if (auto ok = core::validate_peer_cert(rec.cert, directory_,
                                           loop_.now_seconds());
        !ok) {
      if (req.on_resolve) req.on_resolve(Result<core::DnsRecord>(ok.error()));
      return;
    }
    if (req.on_resolve) req.on_resolve(rec);
    return;
  }

  // Publish acknowledgement.
  auto status = r.u8();
  if (req.on_publish) {
    if (status && *status == 0)
      req.on_publish(Result<void>::success());
    else
      req.on_publish(Result<void>(Errc::unauthorized, "publish rejected"));
  }
}

// ---- EphID auto-renewal (§VIII-G1 lifecycle) --------------------------------------

void Host::start_auto_renew(EphIdLifecycleManager::Config cfg) {
  if (cfg.check_interval_us == 0) cfg.check_interval_us = net::kUsPerSecond;
  lifecycle_.emplace(cfg);
  const std::uint64_t gen = ++auto_renew_gen_;
  // First tick runs immediately-ish (jitter only), so a freshly started
  // host stocks its classes without waiting a full interval.
  loop_.schedule_in(lifecycle_->next_delay(rng_) % cfg.check_interval_us,
                    [this, gen] { auto_renew_tick(gen); });
}

void Host::stop_auto_renew() {
  lifecycle_.reset();
  ++auto_renew_gen_;  // any scheduled tick becomes a no-op
}

void Host::auto_renew_tick(std::uint64_t gen) {
  if (!lifecycle_ || gen != auto_renew_gen_) return;
  const auto deficits = lifecycle_->plan(pool_, loop_.now_seconds(),
                                         loop_.now());
  for (std::size_t i = 0; i < kLifetimeClasses; ++i) {
    const auto lt = static_cast<core::EphIdLifetime>(i);
    for (std::size_t n = 0; n < deficits[i]; ++n) {
      lifecycle_->on_requested(lt, loop_.now());
      request_ephid(lt, 0, [this, gen, lt](Result<const OwnedEphId*> r) {
        if (!lifecycle_ || gen != auto_renew_gen_) return;
        if (r)
          lifecycle_->on_issued(lt);
        else
          lifecycle_->on_failed(lt);
      });
    }
  }
  // Jittered, backoff-aware re-schedule: the loop keeps running until
  // stop_auto_renew() flips the generation.
  loop_.schedule_in(lifecycle_->next_delay(rng_),
                    [this, gen] { auto_renew_tick(gen); });
}

// ---- Receive dispatch --------------------------------------------------------------

void Host::on_packet(wire::PacketBuf pkt) {
  ++stats_.packets_received;
  const wire::PacketView& v = pkt.view();
  switch (v.proto()) {
    case wire::NextProto::control: on_control(v); return;
    case wire::NextProto::handshake: on_handshake(v); return;
    case wire::NextProto::data: on_data(v, pkt); return;
    case wire::NextProto::icmp: on_icmp_packet(v); return;
    case wire::NextProto::shutoff: on_shutoff_response(v); return;
  }
}

}  // namespace apna::host

// EphID pool + lifecycle management.
//
// Usage granularities (§VIII-A):
//   per_host        — one EphID for everything (cheap, fully linkable,
//                     shutoff kills every flow).
//   per_application — one EphID per application label (the AS/host can
//                     pinpoint a misbehaving application).
//   per_flow        — one EphID per flow (the paper's "typical use case").
//   per_packet      — rotate across the pool per packet (strongest privacy;
//                     demultiplexing needs extra machinery [23], which is
//                     why the pool cycles over a finite set here).
//
// Lifetime classes (§VIII-G1): every owned EphID remembers which of the
// three issuance classes it came from, so the pool can answer per-class
// questions ("how many short-term EphIDs are still usable?") and the
// EphIdLifecycleManager can keep each enabled class stocked.
//
// The lifecycle manager is the host-side control loop of Fig 3 at scale:
// a host "needs to acquire and manage EphIDs for every new flow", so it
// must renew PROACTIVELY — ahead of expiry, with jittered scheduling (so a
// whole AS's hosts do not stampede the MS at the same instant) and
// exponential backoff while the MS is failing. Rollover never rebinds a
// live session: sessions stay pinned to their issuing EphID (they hold the
// OwnedEphId pointer), while NEW flows prefer the freshest certificate.
//
// The pool also records flow→EphID assignments so experiment E7 can compute
// linkable-flow fractions and shutoff blast radius per policy.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/cert.h"
#include "core/keys.h"
#include "core/messages.h"
#include "crypto/rng.h"
#include "net/sim.h"

namespace apna::host {

enum class Granularity : std::uint8_t {
  per_host = 0,
  per_application = 1,
  per_flow = 2,
  per_packet = 3,
};

inline const char* granularity_name(Granularity g) {
  switch (g) {
    case Granularity::per_host: return "per-host";
    case Granularity::per_application: return "per-application";
    case Granularity::per_flow: return "per-flow";
    case Granularity::per_packet: return "per-packet";
  }
  return "?";
}

constexpr std::size_t kLifetimeClasses = 3;

inline std::size_t lifetime_index(core::EphIdLifetime lt) {
  return static_cast<std::size_t>(lt);
}

/// An EphID this host owns: the certificate plus the private key halves.
struct OwnedEphId {
  core::EphIdKeyPair kp;
  core::EphIdCertificate cert;
  core::EphIdLifetime lifetime = core::EphIdLifetime::short_term;
  std::uint64_t flows_assigned = 0;
  bool revoked_locally = false;  // preemptive revocation (§VIII-G2)

  bool receive_only() const { return cert.receive_only(); }
};

class EphIdPool {
 public:
  /// Adds a freshly issued EphID. Returns a stable pointer.
  const OwnedEphId* add(core::EphIdKeyPair kp, core::EphIdCertificate cert,
                        core::EphIdLifetime lifetime =
                            core::EphIdLifetime::short_term) {
    entries_.push_back(std::make_unique<OwnedEphId>());
    entries_.back()->kp = std::move(kp);
    entries_.back()->cert = std::move(cert);
    entries_.back()->lifetime = lifetime;
    return entries_.back().get();
  }

  /// Selects the source EphID for (app, flow) under `policy`. `packet_seq`
  /// drives per-packet rotation. Returns nullptr when no usable EphID
  /// exists (callers then request issuance — "a host needs to acquire and
  /// manage EphIDs for every new flow").
  OwnedEphId* pick(Granularity policy, std::string_view app,
                   std::string_view flow, std::uint64_t packet_seq,
                   core::ExpTime now) {
    switch (policy) {
      case Granularity::per_host:
        return first_usable(now);
      case Granularity::per_application:
        return sticky(std::string("app:").append(app), now);
      case Granularity::per_flow:
        return sticky(std::string("flow:").append(app).append("/").append(flow),
                      now);
      case Granularity::per_packet: {
        // Rotate over all usable EphIDs.
        std::vector<OwnedEphId*> usable = all_usable(now);
        if (usable.empty()) return nullptr;
        return usable[packet_seq % usable.size()];
      }
    }
    return nullptr;
  }

  OwnedEphId* find(const core::EphId& ephid) {
    for (auto& e : entries_)
      if (e->cert.ephid == ephid) return e.get();
    return nullptr;
  }
  const OwnedEphId* find(const core::EphId& ephid) const {
    for (const auto& e : entries_)
      if (e->cert.ephid == ephid) return e.get();
    return nullptr;
  }

  /// A serving EphID for client-server mode: usable, not receive-only,
  /// different from `contacted` (§VII-A).
  OwnedEphId* pick_serving(const core::EphId& contacted, core::ExpTime now) {
    for (auto& e : entries_) {
      if (usable(*e, now) && !(e->cert.ephid == contacted)) return e.get();
    }
    return nullptr;
  }

  std::size_t size() const { return entries_.size(); }

  std::size_t usable_count(core::ExpTime now) const {
    std::size_t n = 0;
    for (const auto& e : entries_)
      if (usable(*e, now)) ++n;
    return n;
  }

  /// Usable sendable EphIDs of one lifetime class whose certificates are
  /// still valid at `horizon` (pass `now` for plain validity; pass
  /// `now + lead` to ask "which survive the renewal lead time?").
  std::size_t usable_count(core::EphIdLifetime lt, core::ExpTime horizon) const {
    std::size_t n = 0;
    for (const auto& e : entries_)
      if (e->lifetime == lt && usable(*e, horizon)) ++n;
    return n;
  }

  /// Earliest expiry among usable EphIDs of `lt`; nullopt when none.
  std::optional<core::ExpTime> earliest_expiry(core::EphIdLifetime lt,
                                               core::ExpTime now) const {
    std::optional<core::ExpTime> best;
    for (const auto& e : entries_)
      if (e->lifetime == lt && usable(*e, now) &&
          (!best || e->cert.exp_time < *best))
        best = e->cert.exp_time;
    return best;
  }

  /// Distinct EphIDs actually assigned to flows (experiment E7).
  std::size_t assigned_ephids() const {
    std::unordered_map<const OwnedEphId*, bool> seen;
    for (const auto& [k, v] : sticky_) seen[v] = true;
    return seen.size();
  }

  /// Largest number of flows sharing one EphID — the shutoff blast radius.
  std::uint64_t max_flows_per_ephid() const {
    std::uint64_t m = 0;
    for (const auto& e : entries_) m = std::max(m, e->flows_assigned);
    return m;
  }

  const std::deque<std::unique_ptr<OwnedEphId>>& entries() const {
    return entries_;
  }

 private:
  static bool usable(const OwnedEphId& e, core::ExpTime now) {
    return !e.revoked_locally && !e.receive_only() && e.cert.exp_time >= now;
  }

  OwnedEphId* first_usable(core::ExpTime now) {
    for (auto& e : entries_)
      if (usable(*e, now)) return e.get();
    return nullptr;
  }

  std::vector<OwnedEphId*> all_usable(core::ExpTime now) {
    std::vector<OwnedEphId*> out;
    for (auto& e : entries_)
      if (usable(*e, now)) out.push_back(e.get());
    return out;
  }

  OwnedEphId* sticky(const std::string& key, core::ExpTime now) {
    if (auto it = sticky_.find(key); it != sticky_.end()) {
      if (usable(*it->second, now)) return it->second;
      sticky_.erase(it);
    }
    // Rollover policy: NEW flows prefer an unused EphID with the freshest
    // certificate, so renewal naturally drains near-expiry EphIDs without
    // rebinding the sessions still pinned to them. Otherwise reuse the
    // least-loaded (freshest on ties).
    OwnedEphId* best = nullptr;
    for (auto& e : entries_) {
      if (!usable(*e, now)) continue;
      if (!best) {
        best = e.get();
        continue;
      }
      const bool best_unused = best->flows_assigned == 0;
      const bool e_unused = e->flows_assigned == 0;
      if (e_unused != best_unused) {
        if (e_unused) best = e.get();
        continue;
      }
      if (e_unused) {
        if (e->cert.exp_time > best->cert.exp_time) best = e.get();
      } else if (e->flows_assigned < best->flows_assigned ||
                 (e->flows_assigned == best->flows_assigned &&
                  e->cert.exp_time > best->cert.exp_time)) {
        best = e.get();
      }
    }
    if (!best) return nullptr;
    best->flows_assigned++;
    sticky_[key] = best;
    return best;
  }

  std::deque<std::unique_ptr<OwnedEphId>> entries_;
  std::unordered_map<std::string, OwnedEphId*> sticky_;
};

// ---- Lifecycle management (§VIII-G1 renewal) --------------------------------

/// Renewal policy for one lifetime class.
struct RenewalPolicy {
  /// Keep at least this many usable sendable EphIDs of the class.
  std::size_t min_ready = 1;
  /// Treat an EphID as "draining" when it expires within this lead time;
  /// replacements are requested before the old certificate lapses.
  core::ExpTime lead_s = 120;
};

/// Decides WHEN to renew and HOW MANY to request; the host supplies the
/// transport (request_ephid) and the timers (net::EventLoop). Plain state
/// machine, event-loop resident — deliberately free of callbacks so it can
/// be unit-tested without a network.
class EphIdLifecycleManager {
 public:
  struct Config {
    /// Per-class policies, indexed by core::EphIdLifetime; disabled
    /// classes are never renewed.
    std::array<std::optional<RenewalPolicy>, kLifetimeClasses> classes{};
    /// Base tick cadence.
    net::TimeUs check_interval_us = 5 * net::kUsPerSecond;
    /// Uniform jitter added to every tick so a population of hosts spreads
    /// its renewal load across the interval instead of phase-locking on
    /// the MS (§V-A: issuance is the control-plane bottleneck).
    net::TimeUs jitter_us = net::kUsPerSecond;
    /// Exponential backoff cap while the MS keeps failing: the interval is
    /// stretched by 2^min(consecutive_failures, backoff_max_exp).
    std::uint32_t backoff_max_exp = 6;
    /// A renewal request with no reply after this long is written off as
    /// failed (a lost control packet, or an MS error that produces no
    /// response at all, must not pin the in-flight count forever).
    net::TimeUs request_timeout_us = 30 * net::kUsPerSecond;
  };

  struct Stats {
    std::uint64_t ticks = 0;
    std::uint64_t requested = 0;
    std::uint64_t renewed = 0;
    std::uint64_t failed = 0;
    std::uint64_t timed_out = 0;  // subset of failed: no reply at all
  };

  explicit EphIdLifecycleManager(Config cfg) : cfg_(cfg) {}

  const Config& config() const { return cfg_; }

  /// Replacements each class needs right now: the shortfall between
  /// min_ready and the EphIDs that will still be valid after the renewal
  /// lead time, minus requests already in flight. Requests older than
  /// request_timeout_us are first written off as failed (engaging the
  /// backoff), so a reply that never comes cannot wedge the planner.
  std::array<std::size_t, kLifetimeClasses> plan(const EphIdPool& pool,
                                                 core::ExpTime now,
                                                 net::TimeUs now_us) {
    ++stats_.ticks;
    expire_in_flight(now_us);
    std::array<std::size_t, kLifetimeClasses> out{};
    for (std::size_t i = 0; i < kLifetimeClasses; ++i) {
      if (!cfg_.classes[i]) continue;
      const RenewalPolicy& p = *cfg_.classes[i];
      const auto lt = static_cast<core::EphIdLifetime>(i);
      const std::size_t ready =
          pool.usable_count(lt, now + p.lead_s) + in_flight_[i].size();
      if (ready < p.min_ready) out[i] = p.min_ready - ready;
    }
    return out;
  }

  void on_requested(core::EphIdLifetime lt, net::TimeUs now_us) {
    in_flight_[lifetime_index(lt)].push_back(now_us);
    ++stats_.requested;
  }
  void on_issued(core::EphIdLifetime lt) {
    settle(lt);
    ++stats_.renewed;
    consecutive_failures_ = 0;
  }
  void on_failed(core::EphIdLifetime lt) {
    settle(lt);
    ++stats_.failed;
    ++consecutive_failures_;
  }

  /// Next tick delay: base interval stretched by the failure backoff, plus
  /// uniform jitter drawn from the (deterministic, per-host) rng.
  net::TimeUs next_delay(crypto::Rng& rng) {
    const std::uint32_t exp = std::min(
        {consecutive_failures_, cfg_.backoff_max_exp, std::uint32_t{32}});
    const net::TimeUs base = cfg_.check_interval_us << exp;
    const net::TimeUs jitter =
        cfg_.jitter_us == 0 ? 0 : rng.next_u64() % cfg_.jitter_us;
    return base + jitter;
  }

  std::uint32_t consecutive_failures() const { return consecutive_failures_; }
  std::size_t in_flight(core::EphIdLifetime lt) const {
    return in_flight_[lifetime_index(lt)].size();
  }
  const Stats& stats() const { return stats_; }

 private:
  void settle(core::EphIdLifetime lt) {
    auto& v = in_flight_[lifetime_index(lt)];
    if (!v.empty()) v.erase(v.begin());  // oldest first (FIFO replies)
  }

  void expire_in_flight(net::TimeUs now_us) {
    for (auto& v : in_flight_) {
      while (!v.empty() && v.front() + cfg_.request_timeout_us <= now_us) {
        v.erase(v.begin());
        ++stats_.failed;
        ++stats_.timed_out;
        ++consecutive_failures_;
      }
    }
  }

  Config cfg_;
  std::array<std::vector<net::TimeUs>, kLifetimeClasses> in_flight_;
  std::uint32_t consecutive_failures_ = 0;
  Stats stats_;
};

}  // namespace apna::host

// EphID pool with the four usage granularities of §VIII-A.
//
//   per_host        — one EphID for everything (cheap, fully linkable,
//                     shutoff kills every flow).
//   per_application — one EphID per application label (the AS/host can
//                     pinpoint a misbehaving application).
//   per_flow        — one EphID per flow (the paper's "typical use case").
//   per_packet      — rotate across the pool per packet (strongest privacy;
//                     demultiplexing needs extra machinery [23], which is
//                     why the pool cycles over a finite set here).
//
// The pool also records flow→EphID assignments so experiment E7 can compute
// linkable-flow fractions and shutoff blast radius per policy.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/cert.h"
#include "core/keys.h"

namespace apna::host {

enum class Granularity : std::uint8_t {
  per_host = 0,
  per_application = 1,
  per_flow = 2,
  per_packet = 3,
};

inline const char* granularity_name(Granularity g) {
  switch (g) {
    case Granularity::per_host: return "per-host";
    case Granularity::per_application: return "per-application";
    case Granularity::per_flow: return "per-flow";
    case Granularity::per_packet: return "per-packet";
  }
  return "?";
}

/// An EphID this host owns: the certificate plus the private key halves.
struct OwnedEphId {
  core::EphIdKeyPair kp;
  core::EphIdCertificate cert;
  std::uint64_t flows_assigned = 0;
  bool revoked_locally = false;  // preemptive revocation (§VIII-G2)

  bool receive_only() const { return cert.receive_only(); }
};

class EphIdPool {
 public:
  /// Adds a freshly issued EphID. Returns a stable pointer.
  const OwnedEphId* add(core::EphIdKeyPair kp, core::EphIdCertificate cert) {
    entries_.push_back(std::make_unique<OwnedEphId>());
    entries_.back()->kp = std::move(kp);
    entries_.back()->cert = std::move(cert);
    return entries_.back().get();
  }

  /// Selects the source EphID for (app, flow) under `policy`. `packet_seq`
  /// drives per-packet rotation. Returns nullptr when no usable EphID
  /// exists (callers then request issuance — "a host needs to acquire and
  /// manage EphIDs for every new flow").
  OwnedEphId* pick(Granularity policy, std::string_view app,
                   std::string_view flow, std::uint64_t packet_seq,
                   core::ExpTime now) {
    switch (policy) {
      case Granularity::per_host:
        return first_usable(now);
      case Granularity::per_application:
        return sticky(std::string("app:").append(app), now);
      case Granularity::per_flow:
        return sticky(std::string("flow:").append(app).append("/").append(flow),
                      now);
      case Granularity::per_packet: {
        // Rotate over all usable EphIDs.
        std::vector<OwnedEphId*> usable = all_usable(now);
        if (usable.empty()) return nullptr;
        return usable[packet_seq % usable.size()];
      }
    }
    return nullptr;
  }

  OwnedEphId* find(const core::EphId& ephid) {
    for (auto& e : entries_)
      if (e->cert.ephid == ephid) return e.get();
    return nullptr;
  }
  const OwnedEphId* find(const core::EphId& ephid) const {
    for (const auto& e : entries_)
      if (e->cert.ephid == ephid) return e.get();
    return nullptr;
  }

  /// A serving EphID for client-server mode: usable, not receive-only,
  /// different from `contacted` (§VII-A).
  OwnedEphId* pick_serving(const core::EphId& contacted, core::ExpTime now) {
    for (auto& e : entries_) {
      if (usable(*e, now) && !(e->cert.ephid == contacted)) return e.get();
    }
    return nullptr;
  }

  std::size_t size() const { return entries_.size(); }

  std::size_t usable_count(core::ExpTime now) const {
    std::size_t n = 0;
    for (const auto& e : entries_)
      if (usable(*e, now)) ++n;
    return n;
  }

  /// Distinct EphIDs actually assigned to flows (experiment E7).
  std::size_t assigned_ephids() const {
    std::unordered_map<const OwnedEphId*, bool> seen;
    for (const auto& [k, v] : sticky_) seen[v] = true;
    return seen.size();
  }

  /// Largest number of flows sharing one EphID — the shutoff blast radius.
  std::uint64_t max_flows_per_ephid() const {
    std::uint64_t m = 0;
    for (const auto& e : entries_) m = std::max(m, e->flows_assigned);
    return m;
  }

  const std::deque<std::unique_ptr<OwnedEphId>>& entries() const {
    return entries_;
  }

 private:
  static bool usable(const OwnedEphId& e, core::ExpTime now) {
    return !e.revoked_locally && !e.receive_only() && e.cert.exp_time >= now;
  }

  OwnedEphId* first_usable(core::ExpTime now) {
    for (auto& e : entries_)
      if (usable(*e, now)) return e.get();
    return nullptr;
  }

  std::vector<OwnedEphId*> all_usable(core::ExpTime now) {
    std::vector<OwnedEphId*> out;
    for (auto& e : entries_)
      if (usable(*e, now)) out.push_back(e.get());
    return out;
  }

  OwnedEphId* sticky(const std::string& key, core::ExpTime now) {
    if (auto it = sticky_.find(key); it != sticky_.end()) {
      if (usable(*it->second, now)) return it->second;
      sticky_.erase(it);
    }
    // Prefer an EphID with no flows yet; otherwise reuse the least loaded.
    OwnedEphId* best = nullptr;
    for (auto& e : entries_) {
      if (!usable(*e, now)) continue;
      if (e->flows_assigned == 0) {
        best = e.get();
        break;
      }
      if (!best || e->flows_assigned < best->flows_assigned) best = e.get();
    }
    if (!best) return nullptr;
    best->flows_assigned++;
    sticky_[key] = best;
    return best;
  }

  std::deque<std::unique_ptr<OwnedEphId>> entries_;
  std::unordered_map<std::string, OwnedEphId*> sticky_;
};

}  // namespace apna::host

// The APNA host stack.
//
// One object per end host. Drives the full §III-C lifecycle:
//   1. bootstrap()            — Fig 2, via the AS's Registry Service
//   2. request_ephid()        — Fig 3, encrypted RPC to the MS
//   3. connect()/accept       — §IV-D1 / §VII-A connection establishment
//   4. send_data()            — §IV-D2: AEAD payload + per-packet MAC
// plus ICMP (§VIII-B), shutoff requests (Fig 5, client side), the DNS
// client (§VII-A) and the §VIII-A granularity policies.
//
// Everything after bootstrap is asynchronous over the simulated network:
// methods send packets and invoke callbacks when replies arrive.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>

#include "core/as_directory.h"
#include "core/handshake.h"
#include "core/messages.h"
#include "core/packet_auth.h"
#include "core/replay.h"
#include "crypto/rng.h"
#include "host/ephid_pool.h"
#include "net/sim.h"
#include "util/result.h"
#include "wire/apna_header.h"
#include "wire/msg_codec.h"
#include "wire/packet_buf.h"

namespace apna::host {

/// Handshake sub-type byte carried at the start of handshake payloads.
enum class HandshakeKind : std::uint8_t { init = 0, response = 1 };

class Host {
 public:
  struct Config {
    std::string name = "host";
    std::uint32_t subscriber_id = 0;
    Bytes credential;
    Granularity granularity = Granularity::per_flow;
    crypto::AeadSuite suite = crypto::AeadSuite::chacha20_poly1305;
    bool add_replay_nonce = true;  // §VIII-D header nonce on data packets
    std::uint64_t rng_seed = 0;    // 0 = derive from name
  };

  /// Uplink transmit hook. Consumes the sealed wire image (zero-copy
  /// handoff into the AS fabric).
  using SendFn = std::function<void(wire::PacketBuf)>;
  using BootstrapFn =
      std::function<Result<core::BootstrapResponse>(const core::BootstrapRequest&)>;
  using EphIdCallback = std::function<void(Result<const OwnedEphId*>)>;
  using ConnectCallback = std::function<void(Result<std::uint64_t>)>;
  using DataHandler =
      std::function<void(std::uint64_t session_id, ByteSpan data)>;
  using IcmpHandler = std::function<void(const core::Endpoint& from,
                                         const core::IcmpMessage& msg)>;
  using EchoCallback = std::function<void(net::TimeUs rtt_us)>;
  using ShutoffCallback = std::function<void(Result<void>)>;
  using ResolveCallback = std::function<void(Result<core::DnsRecord>)>;
  using PublishCallback = std::function<void(Result<void>)>;

  struct ConnectOptions {
    Bytes early_data;          // non-empty ⇒ 0-RTT (§VII-C)
    std::string app = "app";   // granularity labels (§VIII-A)
    std::string flow;          // defaults to a fresh flow id
  };

  struct Stats {
    std::uint64_t packets_sent = 0;
    std::uint64_t packets_received = 0;
    std::uint64_t data_frames_received = 0;
    std::uint64_t handshakes_accepted = 0;
    std::uint64_t handshakes_rejected = 0;
    std::uint64_t replay_drops = 0;
    std::uint64_t decrypt_drops = 0;
    std::uint64_t unsolicited = 0;  // data packets with no matching session
    std::uint64_t icmp_received = 0;
  };

  Host(Config cfg, const core::AsDirectory& directory, net::EventLoop& loop);

  // ---- Attachment & bootstrap ------------------------------------------------

  void set_uplink(SendFn send) { send_ = std::move(send); }

  /// Fig 2 over the physical attachment. Verifies id_info and the service
  /// certificates against the AS's published key before accepting them.
  Result<void> bootstrap(const BootstrapFn& rs);

  bool bootstrapped() const { return bootstrapped_; }
  core::Aid aid() const { return aid_; }
  core::Hid hid() const { return hid_; }
  const core::EphId& ctrl_ephid() const { return ctrl_ephid_; }
  const std::string& name() const { return cfg_.name; }
  const core::EphIdCertificate& dns_cert() const { return dns_cert_; }

  /// Entry point for packets the AS fabric delivers to this host. Takes
  /// ownership of the buffer; receive handlers parse it in place.
  void on_packet(wire::PacketBuf pkt);

  // ---- EphID management (Fig 3 client side) -----------------------------------

  void request_ephid(core::EphIdLifetime lifetime, std::uint8_t flags,
                     EphIdCallback cb);

  /// Proxy issuance (§VII-B NAT-mode): requests an EphID bound to keys
  /// supplied by SOMEONE ELSE (an inner host behind an AP). The certificate
  /// is returned without entering this host's pool — the private keys live
  /// with the inner host ("the AP uses an ephemeral public key that is
  /// supplied by its host"), so the proof-of-possession signature must also
  /// come from the inner host and is forwarded verbatim.
  using CertCallback = std::function<void(Result<core::EphIdCertificate>)>;
  void request_ephid_for(const core::EphIdPublicKeys& pub,
                         const crypto::Ed25519Signature& pop_sig,
                         core::EphIdLifetime lifetime, std::uint8_t flags,
                         CertCallback cb);

  /// Re-originates a packet as this host's own traffic: re-stamps the kHA
  /// MAC IN PLACE on the wire image and transmits the same buffer (§VII-B
  /// NAT-mode: "the AP replaces the MAC using its shared key with the AS
  /// before forwarding the packets").
  void forward_as_own(wire::PacketBuf pkt);

  /// Burst variant: re-MACs the whole burst in place through the batched
  /// stamping path (core::stamp_packet_macs — one pre-scheduled key, no
  /// per-call overhead) and transmits in order, consuming every buffer.
  /// The NAT-mode AP's uplink uses this.
  void forward_as_own_burst(std::span<wire::PacketBuf> pkts);

  /// Re-requests `lifetime`-class EphIDs proactively ahead of expiry: the
  /// lifecycle manager (host/ephid_pool.h) keeps every enabled class
  /// stocked with jittered refresh scheduling and exponential backoff on
  /// MS failure, driven by net::EventLoop timers. Live sessions stay
  /// pinned to their issuing EphID across rollover; only NEW flows move to
  /// the fresh certificates. Off by default (the tick re-schedules itself,
  /// so an idle loop.run() would never drain with it enabled).
  void start_auto_renew(EphIdLifecycleManager::Config cfg);
  /// Stops the renewal loop; the already-scheduled tick becomes a no-op.
  void stop_auto_renew();
  bool auto_renew_active() const { return lifecycle_.has_value(); }
  /// Lifecycle state/stats while auto-renew is active (else nullptr).
  const EphIdLifecycleManager* lifecycle() const {
    return lifecycle_ ? &*lifecycle_ : nullptr;
  }

  EphIdPool& pool() { return pool_; }
  const EphIdPool& pool() const { return pool_; }

  // ---- Connections (§IV-D) -----------------------------------------------------

  /// Initiates a connection to the owner of `peer_cert`. The session id is
  /// returned immediately; `cb` fires when the handshake completes (or
  /// immediately for 0-RTT early data, which is sent in the first packet).
  Result<std::uint64_t> connect(const core::EphIdCertificate& peer_cert,
                                ConnectOptions opts, ConnectCallback cb);

  /// Sends application data. Queues until the handshake completes unless
  /// the session was opened with early data (0-RTT).
  Result<void> send_data(std::uint64_t session_id, ByteSpan data);

  void set_data_handler(DataHandler h) { on_data_ = std::move(h); }

  /// Closes a session and drops its keys. With `retire_ephid`, the
  /// session's source EphID is also voluntarily revoked at the AS
  /// (§VIII-G2 "a host could revoke an EphID that is no longer needed") —
  /// but only when no other live session still uses it (flows sharing an
  /// EphID are fate-sharing, §III-B).
  Result<void> close_session(std::uint64_t id, bool retire_ephid = false);

  /// Peer certificate of an established/accepted session (for shutoff).
  const core::EphIdCertificate* session_peer_cert(std::uint64_t id) const;
  /// The EphIDs a session currently uses (mine, peer's).
  std::optional<std::pair<core::EphId, core::EphId>> session_ephids(
      std::uint64_t id) const;

  // ---- ICMP (§VIII-B) ------------------------------------------------------------

  Result<void> ping(const core::Endpoint& target, EchoCallback cb);
  void set_icmp_handler(IcmpHandler h) { on_icmp_ = std::move(h); }

  // ---- Shutoff (Fig 5 client side) ----------------------------------------------

  /// Asks the sender's AS to revoke the source EphID of `offending`.
  /// This host must own the packet's destination EphID. The request embeds
  /// the offending wire image verbatim (no re-serialization).
  Result<void> request_shutoff(const wire::PacketView& offending,
                               ShutoffCallback cb);

  /// §VIII-G2: voluntarily retires one of this host's own EphIDs at its AS
  /// ("a host could revoke an EphID that is no longer needed"). The pool
  /// stops using it immediately; the callback reports the AS-side result.
  Result<void> revoke_own_ephid(const core::EphId& ephid, ShutoffCallback cb);

  /// The last data/handshake packet received with no matching session —
  /// what a DDoS victim hands to request_shutoff(). The buffer is kept as
  /// received (moved, not copied).
  const std::optional<wire::PacketBuf>& last_unsolicited() const {
    return last_unsolicited_;
  }

  // ---- DNS client (§VII-A) --------------------------------------------------------

  /// Resolves via this AS's DNS service (the bootstrap-provided cert).
  void resolve(const std::string& name, ResolveCallback cb);
  /// Resolves via an arbitrary trusted DNS ("the host can use a DNS server
  /// that he trusts and that is not operated by the AS", §VII-A).
  void resolve_via(const core::EphIdCertificate& dns_cert,
                   const std::string& name, ResolveCallback cb);
  /// Publishes a name → certificate binding (server-side task, §VII-A).
  void publish_name(const std::string& name,
                    const core::EphIdCertificate& cert, std::uint32_t ipv4,
                    PublishCallback cb);

  const Stats& stats() const { return stats_; }
  crypto::Rng& rng() { return rng_; }

 private:
  struct SessionState {
    std::uint64_t id = 0;
    std::optional<core::Session> session;        // established keys
    std::optional<core::Session> early_session;  // 0-RTT keys (initiator and
                                                 // responder keep it around)
    core::Aid peer_aid = 0;
    core::EphId peer_ephid;       // current peer EphID (serving one after HS)
    core::EphId my_ephid;
    OwnedEphId* my_owned = nullptr;
    core::EphIdCertificate peer_cert;
    core::EphIdCertificate contacted_cert;  // what we dialed (client side)
    bool established = false;
    bool initiator = false;
    bool zero_rtt = false;        // opted into 0-RTT sending (§VII-C)
    bool is_dns = false;          // frames go to the DNS client, not the app
    std::deque<Bytes> pending;    // data queued until established
    ConnectCallback on_connected;
  };

  // Packet plumbing. Packets are built IN PLACE with wire::PacketWriter —
  // header fields at their fixed offsets, payload appended through the
  // MsgWriter interface — then MAC-stamped on the wire image in
  // transmit(). One encode per packet, no intermediate payload buffer.
  wire::PacketWriter start_packet(core::Aid dst_aid,
                                  const core::EphId& dst_ephid,
                                  const core::EphId& src_ephid,
                                  wire::NextProto proto);
  void transmit(wire::PacketWriter& pw, const OwnedEphId* src_owned);
  void transmit_ctrl(wire::PacketWriter& pw);
  void auto_renew_tick(std::uint64_t gen);

  // Receive paths (views into the buffer owned by on_packet).
  void on_control(const wire::PacketView& pkt);
  void on_handshake(const wire::PacketView& pkt);
  void on_data(const wire::PacketView& pkt, wire::PacketBuf& owner);
  void on_icmp_packet(const wire::PacketView& pkt);
  void on_shutoff_response(const wire::PacketView& pkt);
  void handle_dns_frame(SessionState& st, ByteSpan frame);

  SessionState* find_session(const core::EphId& mine, const core::EphId& peer);
  std::uint64_t session_key_hash(const core::EphId& mine,
                                 const core::EphId& peer) const;

  // DNS client plumbing.
  struct DnsPending {
    std::uint8_t op;  // DnsOp value
    Bytes body;
    ResolveCallback on_resolve;
    PublishCallback on_publish;
  };
  void dns_rpc(const core::EphIdCertificate& dns_cert, DnsPending req);
  void flush_dns_queue(std::uint64_t session_id);

  Config cfg_;
  const core::AsDirectory& directory_;
  net::EventLoop& loop_;
  crypto::ChaChaRng rng_;

  SendFn send_;
  bool bootstrapped_ = false;
  core::Aid aid_ = 0;
  core::Hid hid_ = 0;
  core::EphId ctrl_ephid_;
  core::ExpTime ctrl_exp_ = 0;
  core::HostAsKeys kha_{};
  std::shared_ptr<const crypto::AesCmac> kha_cmac_;  // pre-scheduled kHA-mac
  crypto::X25519KeyPair long_term_;  // K±_H
  core::EphIdCertificate ms_cert_;
  core::EphIdCertificate dns_cert_;
  core::EphId aa_ephid_;

  std::uint64_t ctrl_nonce_ = 1;
  std::uint64_t packet_seq_ = 0;
  std::uint64_t next_session_id_ = 1;
  std::uint64_t next_flow_id_ = 1;

  EphIdPool pool_;
  struct PendingEphId {
    std::optional<core::EphIdKeyPair> kp;  // nullopt for proxied requests
    core::EphIdPublicKeys expected_pub;
    core::EphIdLifetime lifetime = core::EphIdLifetime::short_term;
    EphIdCallback cb;        // own requests
    CertCallback cert_cb;    // proxied requests
  };
  std::deque<PendingEphId> pending_ephids_;

  std::unordered_map<std::uint64_t, SessionState> sessions_;
  std::unordered_map<std::uint64_t, std::uint64_t> session_index_;  // pairhash → id

  std::unordered_map<core::EphId, core::ReplayWindow, core::EphIdHash>
      replay_windows_;

  std::deque<std::pair<std::uint64_t, EchoCallback>> pending_pings_;  // nonce
  std::deque<ShutoffCallback> pending_shutoffs_;

  std::unordered_map<std::uint64_t, std::deque<DnsPending>> dns_queues_;
  std::unordered_map<std::uint64_t, bool> dns_ready_;
  std::unordered_map<std::string, std::uint64_t> dns_sessions_;  // cert → sess

  std::optional<EphIdLifecycleManager> lifecycle_;
  std::uint64_t auto_renew_gen_ = 0;  // invalidates stale scheduled ticks

  DataHandler on_data_;
  IcmpHandler on_icmp_;
  std::optional<wire::PacketBuf> last_unsolicited_;
  Stats stats_;
};

}  // namespace apna::host
